// Slammer PRNG forensics: the cycle structure behind Figure 3.
//
// Prints, for each sqlsort.dll version's effective LCG increment:
//   * the full cycle census (the 64 cycles of Figure 3c),
//   * two individual infected hosts' behaviour — one on a long cycle, one
//     trapped on a short cycle that looks like a targeted DoS,
//   * the cycle-length sums across the D/H/I sensor blocks, the statistic
//     that predicts which blocks observe fewer unique Slammer sources.
//
//   $ ./slammer_cycle_forensics
#include <cstdio>

#include "prng/lcg_cycles.h"
#include "telescope/ims.h"
#include "worms/slammer.h"

#include "bench_util.h"

using namespace hotspots;

int main(int argc, char** argv) {
  const std::string metrics_out = bench::MetricsOutArg(argc, argv);
  const auto increments = worms::SlammerEffectiveIncrements();
  std::printf("intended increment: 0x%08X (destroyed by the OR bug)\n",
              worms::kSlammerIntendedIncrement);

  for (int version = 0; version < 3; ++version) {
    const auto analyzer = worms::SlammerCycleAnalyzer(version);
    std::printf("\n=== sqlsort.dll IAT 0x%08X -> effective b = 0x%08X ===\n",
                worms::kSqlsortIatEntries[static_cast<std::size_t>(version)],
                increments[static_cast<std::size_t>(version)]);

    std::printf("  cycle census (%llu cycles total):\n",
                static_cast<unsigned long long>(analyzer.TotalCycles()));
    for (const auto& cls : analyzer.Census()) {
      std::printf("    length %-12llu x %llu cycles\n",
                  static_cast<unsigned long long>(cls.length),
                  static_cast<unsigned long long>(cls.num_cycles));
    }
  }

  // Two concrete hosts under DLL version 1 (the paper's b = 0x8831FA24).
  const auto analyzer = worms::SlammerCycleAnalyzer(1);
  std::printf("\n=== individual infected hosts (b = 0x8831FA24) ===\n");
  prng::Xoshiro256 rng{31};
  std::uint32_t long_seed = 0;
  std::uint32_t short_seed = 0;
  while (long_seed == 0 || short_seed == 0) {
    const std::uint32_t seed = rng.NextU32();
    const std::uint64_t length = analyzer.CycleLength(seed);
    if (length >= (1u << 30) && long_seed == 0) long_seed = seed;
    if (length <= (1u << 16) && short_seed == 0) short_seed = seed;
  }
  for (const auto& [name, seed] :
       {std::pair{"host A (long cycle)", long_seed},
        std::pair{"host B (short cycle)", short_seed}}) {
    std::printf("  %s: seed 0x%08X on a cycle of period %llu -> can ever "
                "target %.6f%% of the IPv4 space\n",
                name, seed,
                static_cast<unsigned long long>(analyzer.CycleLength(seed)),
                100.0 * analyzer.HitProbability(seed));
  }

  // Block-level prediction: sum of lengths of cycles traversing each block.
  std::printf("\n=== cycle-length sums across IMS blocks (b = 0x8831FA24) "
              "===\n");
  std::printf("  %-6s %-14s %s\n", "block", "sum/2^32", "expected sources per "
                                            "10,000 infected hosts");
  for (const auto& ims : telescope::ImsBlocks()) {
    if (ims.block.length() < 16) continue;  // Skip the /8 (trivially ~1.0).
    const double sum =
        static_cast<double>(analyzer.SumCycleLengthsThrough(ims.block)) /
        4294967296.0;
    std::printf("  %-6s %-14.4f %.0f\n", ims.label.c_str(), sum,
                analyzer.ExpectedUniqueSources(ims.block, 10'000));
  }
  std::printf("\nBlocks traversed by fewer long cycles observe fewer unique "
              "Slammer sources — the paper's H-block deficit.\n");
  bench::DumpMetrics(metrics_out, "slammer_cycle_forensics");
  return 0;
}
