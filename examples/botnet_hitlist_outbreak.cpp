// Botnet hit-list outbreak: from captured IRC commands to a blind sensor
// fleet.
//
// 1. A bot controller issues propagation commands over a channel.
// 2. A passive signature capture extracts the commands (Table-1 style).
// 3. The commanded hit-list becomes a worm, released against a clustered
//    vulnerable population.
// 4. A fleet of /24 darknet sensors — one per populated /16 — watches; we
//    print how few of them ever alert (the Figure-5b effect).
//
//   $ ./botnet_hitlist_outbreak
#include <cstdio>

#include "botnet/bot.h"
#include "botnet/capture.h"
#include "botnet/controller.h"
#include "core/detection_study.h"
#include "core/placement.h"
#include "core/scenario.h"

#include "bench_util.h"

using namespace hotspots;

int main(int argc, char** argv) {
  const std::string metrics_out = bench::MetricsOutArg(argc, argv);
  // --- Step 1+2: command channel and capture -----------------------------
  botnet::BotController controller{"#0wned", botnet::PaperCommandRepertoire(),
                                   2024};
  const auto traffic = controller.EmitTraffic(30 * 24 * 3600.0, 14, 400);
  botnet::SignatureCapture capture;
  capture.FeedAll(traffic);

  std::printf("captured %zu propagation commands out of %llu channel lines:\n",
              capture.log().size(),
              static_cast<unsigned long long>(capture.lines_scanned()));
  for (const auto& entry : capture.log()) {
    std::printf("  t=%9.0fs  %-34s -> %s\n", entry.time,
                entry.command.raw.c_str(),
                entry.command.TargetPrefix().ToString().c_str());
  }

  // --- Step 3: population and commanded worm ----------------------------
  core::ScenarioBuilder builder;
  core::ClusteredPopulationConfig config;
  config.total_hosts = 30'000;
  config.slash8_clusters = 20;
  config.nonempty_slash16s = 500;
  config.seed = 7;
  core::Scenario scenario = builder.BuildClustered(config);

  // Use the most *specific* commanded prefix that actually covers hosts,
  // falling back to a greedy /16 hit-list like the Section-5.2 experiment.
  const auto hitlist = core::GreedyHitList(scenario, 50);
  const auto worm = botnet::MakeWormForPrefixes(hitlist.prefixes);
  std::printf("\nhit-list: %zu /16s covering %.1f%% of the vulnerable "
              "population\n",
              hitlist.prefixes.size(), 100.0 * hitlist.coverage);

  // --- Step 4: detection study ------------------------------------------
  prng::Xoshiro256 rng{99};
  const auto sensors = core::PlaceSensorPerCluster16(scenario, rng);
  core::DetectionStudyConfig study;
  study.engine.end_time = 800.0;
  study.engine.stop_at_infected_fraction = 0.95;
  const auto outcome = core::RunDetectionStudy(scenario, *worm, sensors, study);

  std::printf("outbreak: %.1f%% of population infected by t=%.0fs\n",
              100.0 * outcome.run.FinalInfectedFraction(),
              outcome.run.end_time);
  std::printf("sensors alerted: %zu / %zu (%.1f%%)\n", outcome.alerted_sensors,
              outcome.total_sensors,
              100.0 * outcome.alerted_sensors / outcome.total_sensors);
  std::printf("-> a quorum detector requiring >50%% of sensors would %s\n",
              outcome.alerted_sensors * 2 > outcome.total_sensors
                  ? "fire"
                  : "NEVER fire despite the outbreak");
  bench::DumpMetrics(metrics_out, "botnet_hitlist_outbreak");
  return 0;
}
