// Global vs local detection — the paper's closing argument, runnable.
//
// "While global distributed detection systems have an important function,
// it is critical to invest in local detection systems to protect networks
// from the targeted impact of hotspots."
//
// This example releases a bot-style hit-list worm aimed at a handful of
// /16s and compares:
//   * a GLOBAL quorum detector over a large randomly placed sensor fleet
//     (never fires — the hotspot starves almost every sensor), and
//   * a LOCAL detector: a single /24 darknet inside the targeted network
//     (alerts within seconds).
//
//   $ ./global_vs_local_detection
#include <cstdio>

#include "core/detection_study.h"
#include "core/placement.h"
#include "core/scenario.h"
#include "telescope/alerting.h"
#include "worms/hitlist.h"

#include "bench_util.h"

using namespace hotspots;

int main(int argc, char** argv) {
  const std::string metrics_out = bench::MetricsOutArg(argc, argv);
  core::ScenarioBuilder builder;
  core::ClusteredPopulationConfig config;
  config.total_hosts = 40'000;
  config.nonempty_slash16s = 600;
  config.slash8_clusters = 30;
  config.seed = 0x10CA;
  core::Scenario scenario = builder.BuildClustered(config);

  // The attacker targets the 20 densest /16s — a bot 'advscan' style
  // hit-list.
  const auto selection = core::GreedyHitList(scenario, 20);
  worms::HitListWorm worm{selection.prefixes};
  std::printf("threat: hit-list of 5 /16s covering %.1f%% of the vulnerable "
              "population\n\n",
              100.0 * selection.coverage);

  // --- Global fleet: 2,000 random /24 darknets + 50% quorum -------------
  prng::Xoshiro256 rng{21};
  const auto global_fleet = core::PlaceRandomSensors(scenario, 2000, rng);
  core::DetectionStudyConfig study;
  study.engine.end_time = 600.0;
  study.engine.stop_at_infected_fraction = 0.95 * selection.coverage;
  study.alert_threshold = 5;
  const auto global_outcome =
      core::RunDetectionStudy(scenario, worm, global_fleet, study);
  const auto quorum = telescope::QuorumDetectionTime(
      global_outcome.alert_times, global_outcome.total_sensors, 0.5);
  std::printf("GLOBAL fleet (%zu random /24 sensors):\n",
              global_outcome.total_sensors);
  std::printf("  sensors alerted: %zu (%.2f%%); 50%%-quorum detector: %s\n",
              global_outcome.alerted_sensors,
              100.0 * global_outcome.alerted_sensors /
                  static_cast<double>(global_outcome.total_sensors),
              quorum ? "fired" : "NEVER fired");
  std::printf("  meanwhile the worm infected %.1f%% of its targets by "
              "t=%.0fs\n\n",
              100.0 * global_outcome.run.FinalInfectedFraction() /
                  selection.coverage,
              global_outcome.run.end_time);

  // --- Local detector: one /24 inside the hottest targeted /16 ----------
  std::vector<net::Prefix> local;
  net::Prefix monitored_slash16 = selection.prefixes.front();
  // Walk the targeted /16s sparsest-first: dense clusters may have hosts in
  // every /24, leaving no unused space for a darknet.
  std::vector<net::Prefix> targets_sparse_first{selection.prefixes.rbegin(),
                                                selection.prefixes.rend()};
  for (const net::Prefix& targeted : targets_sparse_first) {
    const std::uint32_t base24 = targeted.base().value() >> 8;
    for (std::uint32_t i = 0; i < 256 && local.empty(); ++i) {
      if (!scenario.occupied_slash24s.contains(base24 + i)) {
        local.push_back(net::Prefix{net::Ipv4{(base24 + i) << 8}, 24});
        monitored_slash16 = targeted;
      }
    }
    if (!local.empty()) break;
  }
  if (local.empty()) {
    std::printf("every /24 of the targeted /16s hosts machines; no darknet "
                "space available for a local sensor.\n");
    bench::DumpMetrics(metrics_out, "global_vs_local_detection");
    return 0;
  }
  const auto local_outcome =
      core::RunDetectionStudy(scenario, worm, local, study);
  std::printf("LOCAL detector (one /24 inside the targeted /16 %s):\n",
              monitored_slash16.ToString().c_str());
  if (!local_outcome.alert_times.empty()) {
    const double alert_time = local_outcome.alert_times.front();
    double infected_at_alert = 0.0;
    for (const auto& point : local_outcome.curve) {
      if (point.time >= alert_time) {
        infected_at_alert = point.infected_fraction;
        break;
      }
    }
    std::printf("  alerted at t=%.1fs — when only %.2f%% of the vulnerable "
                "population was infected\n",
                alert_time, 100.0 * infected_at_alert);
  } else {
    std::printf("  (did not alert)\n");
  }
  std::printf("\nHotspots starve globally scoped detectors; the network "
              "being targeted sees the threat immediately.\n");
  bench::DumpMetrics(metrics_out, "global_vs_local_detection");
  return 0;
}
