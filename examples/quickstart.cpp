// Quickstart: simulate a worm outbreak and watch it from a darknet.
//
// Builds a small clustered vulnerable population, releases a uniform
// scanning worm (the paper's baseline) and a CodeRedII-style local
// preference worm, observes both from the 11 IMS-like darknet blocks, and
// prints how non-uniform the observations are.  With --trace-out FILE the
// CodeRedII run is additionally captured to a binary probe trace and
// replayed back through a fresh telescope to show the counters reproduce
// bit-identically from the file.
//
//   $ ./quickstart
//   $ ./quickstart --trace-out codered.trace
#include <cstdio>
#include <memory>

#include "analysis/uniformity.h"
#include "core/scenario.h"
#include "sim/engine.h"
#include "telescope/ims.h"
#include "topology/reachability.h"
#include "trace/replay.h"
#include "trace/writer.h"
#include "worms/codered2.h"
#include "worms/uniform.h"

#include "bench_util.h"

using namespace hotspots;

namespace {

void RunAndReport(const char* title, core::Scenario& scenario,
                  const sim::Worm& worm,
                  const std::string& trace_path = {}) {
  scenario.population.ResetAllToVulnerable();

  // Environmental pipeline: NAT routing only (no filtering, no loss).
  const topology::Reachability reachability{nullptr, nullptr, nullptr, 0.0};

  sim::EngineConfig config;
  config.scan_rate = 10.0;   // The paper's probe rate.
  config.end_time = 400.0;
  config.stop_at_infected_fraction = 0.95;
  sim::Engine engine{scenario.population, worm, reachability, nullptr, config};
  engine.SeedRandomInfections(25);

  telescope::Telescope ims = telescope::MakeImsTelescope();
  std::unique_ptr<trace::TraceWriter> writer;
  if (!trace_path.empty()) {
    trace::TraceWriterOptions writer_options;
    writer_options.seed = config.seed;
    writer = std::make_unique<trace::TraceWriter>(trace_path, writer_options);
  }
  const sim::RunResult result = engine.Run({&ims, writer.get()});
  if (writer != nullptr) writer->Finish();

  std::printf("=== %s ===\n", title);
  std::printf("  infected %llu / %llu hosts in %.0f simulated seconds "
              "(%llu probes)\n",
              static_cast<unsigned long long>(result.final_infected),
              static_cast<unsigned long long>(result.eligible_population),
              result.end_time,
              static_cast<unsigned long long>(result.total_probes));

  std::printf("  %-6s %-10s %-8s\n", "block", "probes", "sources");
  for (std::size_t i = 0; i < ims.size(); ++i) {
    const auto& sensor = ims.sensor(static_cast<int>(i));
    std::printf("  %-6s %-10llu %-8llu\n", sensor.label().c_str(),
                static_cast<unsigned long long>(sensor.probe_count()),
                static_cast<unsigned long long>(sensor.UniqueSourceCount()));
  }

  // Hotspot analysis over the D/20 block's per-/24 histogram.
  const auto* block = ims.FindByLabel("D/20");
  std::vector<std::uint64_t> counts;
  for (const auto& row : block->Histogram()) {
    counts.push_back(row.stats.probes);
  }
  const auto report = analysis::AnalyzeUniformity(counts);
  std::printf("  D/20 per-/24: chi2/dof=%.2f gini=%.3f -> %s\n\n",
              report.chi_square_dof > 0
                  ? report.chi_square / report.chi_square_dof
                  : 0.0,
              report.gini,
              report.LooksNonUniform() ? "HOTSPOTS" : "uniform-looking");

  if (writer != nullptr) {
    std::printf("  captured %llu probe records -> %s\n",
                static_cast<unsigned long long>(writer->records_written()),
                trace_path.c_str());
    // Replay the file through a fresh telescope: same counters, no engine.
    telescope::Telescope replayed = telescope::MakeImsTelescope();
    trace::ReplayFile(trace_path, replayed);
    bool identical = true;
    for (std::size_t i = 0; i < ims.size(); ++i) {
      const auto& live = ims.sensor(static_cast<int>(i));
      const auto& replay = replayed.sensor(static_cast<int>(i));
      identical = identical && live.probe_count() == replay.probe_count() &&
                  live.UniqueSourceCount() == replay.UniqueSourceCount();
    }
    std::printf("  replayed it through a fresh telescope: per-sensor counters "
                "%s\n\n",
                identical ? "bit-identical" : "DIFFER (bug!)");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string metrics_out = bench::MetricsOutArg(argc, argv);
  const std::string trace_out = bench::TraceOutArg(argc, argv);
  // A small population so the quickstart finishes in seconds.
  core::ScenarioBuilder builder;
  for (const auto& ims : telescope::ImsBlocks()) builder.Avoid(ims.block);
  core::ClusteredPopulationConfig config;
  config.total_hosts = 20'000;
  config.slash8_clusters = 12;
  config.nonempty_slash16s = 300;
  config.seed = 42;
  core::Scenario scenario = builder.BuildClustered(config);

  std::printf("population: %zu hosts in %zu /16 clusters across %zu /8s\n\n",
              scenario.population.size(), scenario.slash16_clusters.size(),
              scenario.slash8_clusters.size());

  const worms::UniformWorm uniform;
  RunAndReport("uniform scanning (baseline)", scenario, uniform);

  const worms::CodeRed2Worm codered;
  RunAndReport("CodeRedII local preference", scenario, codered, trace_out);

  std::printf("Deviation from the uniform baseline = hotspots. See DESIGN.md "
              "and the bench/ binaries for the paper's full experiments.\n");
  bench::DumpMetrics(metrics_out, "quickstart");
  return 0;
}
