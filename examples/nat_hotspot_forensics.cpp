// NAT hotspot forensics: reproduce the CodeRedII / 192.168 interaction.
//
// Runs the paper's quarantine experiment (Section 4.3.1): one CodeRedII
// infected host with a public address, then the same worm at 192.168.0.2
// behind a NAT.  Prints where the probes land across the 11 IMS blocks —
// the private-addressed host produces the M-block hotspot.
//
// With --trace-out FILE the NATed run's probe stream is also captured to a
// binary trace (replayable with tools/trace_tool) through the quarantine
// harness's observer hook.
//
//   $ ./nat_hotspot_forensics [probes]
//   $ ./nat_hotspot_forensics --trace-out nated.trace 100000
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/quarantine.h"
#include "telescope/ims.h"
#include "trace/writer.h"
#include "worms/codered2.h"

#include "bench_util.h"

using namespace hotspots;

namespace {

void Report(const char* title, telescope::Telescope& ims,
            const core::QuarantineResult& result) {
  std::printf("=== %s ===\n", title);
  std::printf("  %llu infection attempts emitted, %llu on monitored blocks\n",
              static_cast<unsigned long long>(result.probes_emitted),
              static_cast<unsigned long long>(result.probes_on_sensors));
  for (std::size_t i = 0; i < ims.size(); ++i) {
    const auto& sensor = ims.sensor(static_cast<int>(i));
    if (sensor.label() == "Z/8") continue;  // /8 dominates; print last.
    std::printf("  %-6s %8llu probes\n", sensor.label().c_str(),
                static_cast<unsigned long long>(sensor.probe_count()));
  }
  std::printf("  %-6s %8llu probes\n\n", "Z/8",
              static_cast<unsigned long long>(
                  ims.FindByLabel("Z/8")->probe_count()));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string metrics_out = bench::MetricsOutArg(argc, argv);
  const std::string trace_out = bench::TraceOutArg(argc, argv);
  // Paper: 7,567,093 (public) and 7,567,361 (NATed) attempts.
  const std::uint64_t probes =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7'567'093ull;

  worms::CodeRed2Worm worm;
  telescope::Telescope ims = telescope::MakeImsTelescope();

  // Run 1: infected host on a public academic address.
  auto public_scanner =
      worm.MakeQuarantineScanner(net::Ipv4{141, 213, 4, 4}, 0x1234);
  const auto public_result =
      core::RunQuarantine(*public_scanner, net::Ipv4{141, 213, 4, 4}, probes,
                          ims);
  Report("quarantined CodeRedII, public address 141.213.4.4 (Fig 4b)", ims,
         public_result);

  // Run 2: same worm behind a NAT at 192.168.0.2.  With --trace-out, the
  // quarantine harness tees the probe stream into a trace writer.
  ims.ResetAll();
  std::unique_ptr<trace::TraceWriter> writer;
  if (!trace_out.empty()) {
    trace::TraceWriterOptions writer_options;
    writer_options.seed = 0x1234;
    writer = std::make_unique<trace::TraceWriter>(trace_out, writer_options);
  }
  auto nat_scanner =
      worm.MakeQuarantineScanner(net::Ipv4{192, 168, 0, 2}, 0x1234);
  const auto nat_result = core::RunQuarantine(
      *nat_scanner, net::Ipv4{192, 168, 0, 2}, probes, ims, writer.get());
  if (writer != nullptr) {
    writer->Finish();
    std::printf("captured %llu probe records -> %s (inspect with "
                "tools/trace_tool)\n\n",
                static_cast<unsigned long long>(writer->records_written()),
                trace_out.c_str());
  }
  Report("quarantined CodeRedII, NATed address 192.168.0.2 (Fig 4c)", ims,
         nat_result);

  std::printf("The M/22 block lives inside 192.0.0.0/8: the NATed host's "
              "local preference aims at 192/8, and everything outside "
              "192.168/16 leaks onto the real Internet.\n");
  bench::DumpMetrics(metrics_out, "nat_hotspot_forensics");
  return 0;
}
