file(REMOVE_RECURSE
  "CMakeFiles/hotspots_telescope.dir/alerting.cc.o"
  "CMakeFiles/hotspots_telescope.dir/alerting.cc.o.d"
  "CMakeFiles/hotspots_telescope.dir/event_series.cc.o"
  "CMakeFiles/hotspots_telescope.dir/event_series.cc.o.d"
  "CMakeFiles/hotspots_telescope.dir/ims.cc.o"
  "CMakeFiles/hotspots_telescope.dir/ims.cc.o.d"
  "CMakeFiles/hotspots_telescope.dir/sensor.cc.o"
  "CMakeFiles/hotspots_telescope.dir/sensor.cc.o.d"
  "CMakeFiles/hotspots_telescope.dir/telescope.cc.o"
  "CMakeFiles/hotspots_telescope.dir/telescope.cc.o.d"
  "libhotspots_telescope.a"
  "libhotspots_telescope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspots_telescope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
