# Empty dependencies file for hotspots_telescope.
# This may be replaced when dependencies are built.
