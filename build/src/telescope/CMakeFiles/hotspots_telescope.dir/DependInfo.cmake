
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telescope/alerting.cc" "src/telescope/CMakeFiles/hotspots_telescope.dir/alerting.cc.o" "gcc" "src/telescope/CMakeFiles/hotspots_telescope.dir/alerting.cc.o.d"
  "/root/repo/src/telescope/event_series.cc" "src/telescope/CMakeFiles/hotspots_telescope.dir/event_series.cc.o" "gcc" "src/telescope/CMakeFiles/hotspots_telescope.dir/event_series.cc.o.d"
  "/root/repo/src/telescope/ims.cc" "src/telescope/CMakeFiles/hotspots_telescope.dir/ims.cc.o" "gcc" "src/telescope/CMakeFiles/hotspots_telescope.dir/ims.cc.o.d"
  "/root/repo/src/telescope/sensor.cc" "src/telescope/CMakeFiles/hotspots_telescope.dir/sensor.cc.o" "gcc" "src/telescope/CMakeFiles/hotspots_telescope.dir/sensor.cc.o.d"
  "/root/repo/src/telescope/telescope.cc" "src/telescope/CMakeFiles/hotspots_telescope.dir/telescope.cc.o" "gcc" "src/telescope/CMakeFiles/hotspots_telescope.dir/telescope.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/hotspots_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hotspots_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/hotspots_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/prng/CMakeFiles/hotspots_prng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
