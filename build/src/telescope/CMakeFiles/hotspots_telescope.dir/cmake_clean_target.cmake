file(REMOVE_RECURSE
  "libhotspots_telescope.a"
)
