file(REMOVE_RECURSE
  "CMakeFiles/hotspots_topology.dir/filtering.cc.o"
  "CMakeFiles/hotspots_topology.dir/filtering.cc.o.d"
  "CMakeFiles/hotspots_topology.dir/nat.cc.o"
  "CMakeFiles/hotspots_topology.dir/nat.cc.o.d"
  "CMakeFiles/hotspots_topology.dir/org.cc.o"
  "CMakeFiles/hotspots_topology.dir/org.cc.o.d"
  "CMakeFiles/hotspots_topology.dir/reachability.cc.o"
  "CMakeFiles/hotspots_topology.dir/reachability.cc.o.d"
  "libhotspots_topology.a"
  "libhotspots_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspots_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
