# Empty compiler generated dependencies file for hotspots_topology.
# This may be replaced when dependencies are built.
