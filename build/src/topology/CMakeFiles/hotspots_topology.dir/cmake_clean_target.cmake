file(REMOVE_RECURSE
  "libhotspots_topology.a"
)
