
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/filtering.cc" "src/topology/CMakeFiles/hotspots_topology.dir/filtering.cc.o" "gcc" "src/topology/CMakeFiles/hotspots_topology.dir/filtering.cc.o.d"
  "/root/repo/src/topology/nat.cc" "src/topology/CMakeFiles/hotspots_topology.dir/nat.cc.o" "gcc" "src/topology/CMakeFiles/hotspots_topology.dir/nat.cc.o.d"
  "/root/repo/src/topology/org.cc" "src/topology/CMakeFiles/hotspots_topology.dir/org.cc.o" "gcc" "src/topology/CMakeFiles/hotspots_topology.dir/org.cc.o.d"
  "/root/repo/src/topology/reachability.cc" "src/topology/CMakeFiles/hotspots_topology.dir/reachability.cc.o" "gcc" "src/topology/CMakeFiles/hotspots_topology.dir/reachability.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/hotspots_net.dir/DependInfo.cmake"
  "/root/repo/build/src/prng/CMakeFiles/hotspots_prng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
