# CMake generated Testfile for 
# Source directory: /root/repo/src/worms
# Build directory: /root/repo/build/src/worms
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
