# Empty dependencies file for hotspots_worms.
# This may be replaced when dependencies are built.
