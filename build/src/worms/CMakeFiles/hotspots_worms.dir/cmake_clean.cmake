file(REMOVE_RECURSE
  "CMakeFiles/hotspots_worms.dir/blaster.cc.o"
  "CMakeFiles/hotspots_worms.dir/blaster.cc.o.d"
  "CMakeFiles/hotspots_worms.dir/codered1.cc.o"
  "CMakeFiles/hotspots_worms.dir/codered1.cc.o.d"
  "CMakeFiles/hotspots_worms.dir/codered2.cc.o"
  "CMakeFiles/hotspots_worms.dir/codered2.cc.o.d"
  "CMakeFiles/hotspots_worms.dir/hitlist.cc.o"
  "CMakeFiles/hotspots_worms.dir/hitlist.cc.o.d"
  "CMakeFiles/hotspots_worms.dir/localpref.cc.o"
  "CMakeFiles/hotspots_worms.dir/localpref.cc.o.d"
  "CMakeFiles/hotspots_worms.dir/permutation.cc.o"
  "CMakeFiles/hotspots_worms.dir/permutation.cc.o.d"
  "CMakeFiles/hotspots_worms.dir/slammer.cc.o"
  "CMakeFiles/hotspots_worms.dir/slammer.cc.o.d"
  "CMakeFiles/hotspots_worms.dir/uniform.cc.o"
  "CMakeFiles/hotspots_worms.dir/uniform.cc.o.d"
  "CMakeFiles/hotspots_worms.dir/witty.cc.o"
  "CMakeFiles/hotspots_worms.dir/witty.cc.o.d"
  "libhotspots_worms.a"
  "libhotspots_worms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspots_worms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
