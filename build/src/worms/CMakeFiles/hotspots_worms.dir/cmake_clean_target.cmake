file(REMOVE_RECURSE
  "libhotspots_worms.a"
)
