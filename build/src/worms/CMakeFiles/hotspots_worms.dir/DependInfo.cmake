
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/worms/blaster.cc" "src/worms/CMakeFiles/hotspots_worms.dir/blaster.cc.o" "gcc" "src/worms/CMakeFiles/hotspots_worms.dir/blaster.cc.o.d"
  "/root/repo/src/worms/codered1.cc" "src/worms/CMakeFiles/hotspots_worms.dir/codered1.cc.o" "gcc" "src/worms/CMakeFiles/hotspots_worms.dir/codered1.cc.o.d"
  "/root/repo/src/worms/codered2.cc" "src/worms/CMakeFiles/hotspots_worms.dir/codered2.cc.o" "gcc" "src/worms/CMakeFiles/hotspots_worms.dir/codered2.cc.o.d"
  "/root/repo/src/worms/hitlist.cc" "src/worms/CMakeFiles/hotspots_worms.dir/hitlist.cc.o" "gcc" "src/worms/CMakeFiles/hotspots_worms.dir/hitlist.cc.o.d"
  "/root/repo/src/worms/localpref.cc" "src/worms/CMakeFiles/hotspots_worms.dir/localpref.cc.o" "gcc" "src/worms/CMakeFiles/hotspots_worms.dir/localpref.cc.o.d"
  "/root/repo/src/worms/permutation.cc" "src/worms/CMakeFiles/hotspots_worms.dir/permutation.cc.o" "gcc" "src/worms/CMakeFiles/hotspots_worms.dir/permutation.cc.o.d"
  "/root/repo/src/worms/slammer.cc" "src/worms/CMakeFiles/hotspots_worms.dir/slammer.cc.o" "gcc" "src/worms/CMakeFiles/hotspots_worms.dir/slammer.cc.o.d"
  "/root/repo/src/worms/uniform.cc" "src/worms/CMakeFiles/hotspots_worms.dir/uniform.cc.o" "gcc" "src/worms/CMakeFiles/hotspots_worms.dir/uniform.cc.o.d"
  "/root/repo/src/worms/witty.cc" "src/worms/CMakeFiles/hotspots_worms.dir/witty.cc.o" "gcc" "src/worms/CMakeFiles/hotspots_worms.dir/witty.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/hotspots_net.dir/DependInfo.cmake"
  "/root/repo/build/src/prng/CMakeFiles/hotspots_prng.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hotspots_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/hotspots_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
