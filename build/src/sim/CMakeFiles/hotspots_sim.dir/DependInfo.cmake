
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/engine.cc" "src/sim/CMakeFiles/hotspots_sim.dir/engine.cc.o" "gcc" "src/sim/CMakeFiles/hotspots_sim.dir/engine.cc.o.d"
  "/root/repo/src/sim/population.cc" "src/sim/CMakeFiles/hotspots_sim.dir/population.cc.o" "gcc" "src/sim/CMakeFiles/hotspots_sim.dir/population.cc.o.d"
  "/root/repo/src/sim/study.cc" "src/sim/CMakeFiles/hotspots_sim.dir/study.cc.o" "gcc" "src/sim/CMakeFiles/hotspots_sim.dir/study.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/hotspots_net.dir/DependInfo.cmake"
  "/root/repo/build/src/prng/CMakeFiles/hotspots_prng.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/hotspots_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
