# Empty compiler generated dependencies file for hotspots_sim.
# This may be replaced when dependencies are built.
