file(REMOVE_RECURSE
  "CMakeFiles/hotspots_sim.dir/engine.cc.o"
  "CMakeFiles/hotspots_sim.dir/engine.cc.o.d"
  "CMakeFiles/hotspots_sim.dir/population.cc.o"
  "CMakeFiles/hotspots_sim.dir/population.cc.o.d"
  "CMakeFiles/hotspots_sim.dir/study.cc.o"
  "CMakeFiles/hotspots_sim.dir/study.cc.o.d"
  "libhotspots_sim.a"
  "libhotspots_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspots_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
