file(REMOVE_RECURSE
  "libhotspots_sim.a"
)
