file(REMOVE_RECURSE
  "libhotspots_net.a"
)
