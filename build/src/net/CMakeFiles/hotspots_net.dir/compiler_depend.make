# Empty compiler generated dependencies file for hotspots_net.
# This may be replaced when dependencies are built.
