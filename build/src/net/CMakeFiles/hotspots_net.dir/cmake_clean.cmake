file(REMOVE_RECURSE
  "CMakeFiles/hotspots_net.dir/interval_set.cc.o"
  "CMakeFiles/hotspots_net.dir/interval_set.cc.o.d"
  "CMakeFiles/hotspots_net.dir/ipv4.cc.o"
  "CMakeFiles/hotspots_net.dir/ipv4.cc.o.d"
  "CMakeFiles/hotspots_net.dir/prefix.cc.o"
  "CMakeFiles/hotspots_net.dir/prefix.cc.o.d"
  "CMakeFiles/hotspots_net.dir/special_ranges.cc.o"
  "CMakeFiles/hotspots_net.dir/special_ranges.cc.o.d"
  "libhotspots_net.a"
  "libhotspots_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspots_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
