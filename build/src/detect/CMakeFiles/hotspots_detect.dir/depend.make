# Empty dependencies file for hotspots_detect.
# This may be replaced when dependencies are built.
