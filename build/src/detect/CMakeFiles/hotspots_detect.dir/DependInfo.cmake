
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/prevalence.cc" "src/detect/CMakeFiles/hotspots_detect.dir/prevalence.cc.o" "gcc" "src/detect/CMakeFiles/hotspots_detect.dir/prevalence.cc.o.d"
  "/root/repo/src/detect/trw.cc" "src/detect/CMakeFiles/hotspots_detect.dir/trw.cc.o" "gcc" "src/detect/CMakeFiles/hotspots_detect.dir/trw.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/hotspots_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
