file(REMOVE_RECURSE
  "libhotspots_detect.a"
)
