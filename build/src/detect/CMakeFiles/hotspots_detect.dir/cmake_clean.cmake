file(REMOVE_RECURSE
  "CMakeFiles/hotspots_detect.dir/prevalence.cc.o"
  "CMakeFiles/hotspots_detect.dir/prevalence.cc.o.d"
  "CMakeFiles/hotspots_detect.dir/trw.cc.o"
  "CMakeFiles/hotspots_detect.dir/trw.cc.o.d"
  "libhotspots_detect.a"
  "libhotspots_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspots_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
