file(REMOVE_RECURSE
  "CMakeFiles/hotspots_prng.dir/cycle_finder.cc.o"
  "CMakeFiles/hotspots_prng.dir/cycle_finder.cc.o.d"
  "CMakeFiles/hotspots_prng.dir/lcg_cycles.cc.o"
  "CMakeFiles/hotspots_prng.dir/lcg_cycles.cc.o.d"
  "CMakeFiles/hotspots_prng.dir/spectral.cc.o"
  "CMakeFiles/hotspots_prng.dir/spectral.cc.o.d"
  "CMakeFiles/hotspots_prng.dir/tickcount.cc.o"
  "CMakeFiles/hotspots_prng.dir/tickcount.cc.o.d"
  "libhotspots_prng.a"
  "libhotspots_prng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspots_prng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
