# Empty compiler generated dependencies file for hotspots_prng.
# This may be replaced when dependencies are built.
