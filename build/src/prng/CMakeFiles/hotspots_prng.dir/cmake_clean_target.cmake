file(REMOVE_RECURSE
  "libhotspots_prng.a"
)
