
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prng/cycle_finder.cc" "src/prng/CMakeFiles/hotspots_prng.dir/cycle_finder.cc.o" "gcc" "src/prng/CMakeFiles/hotspots_prng.dir/cycle_finder.cc.o.d"
  "/root/repo/src/prng/lcg_cycles.cc" "src/prng/CMakeFiles/hotspots_prng.dir/lcg_cycles.cc.o" "gcc" "src/prng/CMakeFiles/hotspots_prng.dir/lcg_cycles.cc.o.d"
  "/root/repo/src/prng/spectral.cc" "src/prng/CMakeFiles/hotspots_prng.dir/spectral.cc.o" "gcc" "src/prng/CMakeFiles/hotspots_prng.dir/spectral.cc.o.d"
  "/root/repo/src/prng/tickcount.cc" "src/prng/CMakeFiles/hotspots_prng.dir/tickcount.cc.o" "gcc" "src/prng/CMakeFiles/hotspots_prng.dir/tickcount.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/hotspots_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
