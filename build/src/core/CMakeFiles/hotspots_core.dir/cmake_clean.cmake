file(REMOVE_RECURSE
  "CMakeFiles/hotspots_core.dir/containment.cc.o"
  "CMakeFiles/hotspots_core.dir/containment.cc.o.d"
  "CMakeFiles/hotspots_core.dir/detection_study.cc.o"
  "CMakeFiles/hotspots_core.dir/detection_study.cc.o.d"
  "CMakeFiles/hotspots_core.dir/hotspot.cc.o"
  "CMakeFiles/hotspots_core.dir/hotspot.cc.o.d"
  "CMakeFiles/hotspots_core.dir/placement.cc.o"
  "CMakeFiles/hotspots_core.dir/placement.cc.o.d"
  "CMakeFiles/hotspots_core.dir/quarantine.cc.o"
  "CMakeFiles/hotspots_core.dir/quarantine.cc.o.d"
  "CMakeFiles/hotspots_core.dir/scenario.cc.o"
  "CMakeFiles/hotspots_core.dir/scenario.cc.o.d"
  "libhotspots_core.a"
  "libhotspots_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspots_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
