# Empty dependencies file for hotspots_core.
# This may be replaced when dependencies are built.
