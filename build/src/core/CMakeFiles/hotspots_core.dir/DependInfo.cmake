
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/containment.cc" "src/core/CMakeFiles/hotspots_core.dir/containment.cc.o" "gcc" "src/core/CMakeFiles/hotspots_core.dir/containment.cc.o.d"
  "/root/repo/src/core/detection_study.cc" "src/core/CMakeFiles/hotspots_core.dir/detection_study.cc.o" "gcc" "src/core/CMakeFiles/hotspots_core.dir/detection_study.cc.o.d"
  "/root/repo/src/core/hotspot.cc" "src/core/CMakeFiles/hotspots_core.dir/hotspot.cc.o" "gcc" "src/core/CMakeFiles/hotspots_core.dir/hotspot.cc.o.d"
  "/root/repo/src/core/placement.cc" "src/core/CMakeFiles/hotspots_core.dir/placement.cc.o" "gcc" "src/core/CMakeFiles/hotspots_core.dir/placement.cc.o.d"
  "/root/repo/src/core/quarantine.cc" "src/core/CMakeFiles/hotspots_core.dir/quarantine.cc.o" "gcc" "src/core/CMakeFiles/hotspots_core.dir/quarantine.cc.o.d"
  "/root/repo/src/core/scenario.cc" "src/core/CMakeFiles/hotspots_core.dir/scenario.cc.o" "gcc" "src/core/CMakeFiles/hotspots_core.dir/scenario.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/hotspots_net.dir/DependInfo.cmake"
  "/root/repo/build/src/prng/CMakeFiles/hotspots_prng.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hotspots_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/hotspots_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/telescope/CMakeFiles/hotspots_telescope.dir/DependInfo.cmake"
  "/root/repo/build/src/worms/CMakeFiles/hotspots_worms.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/hotspots_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
