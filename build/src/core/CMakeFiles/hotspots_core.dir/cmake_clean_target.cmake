file(REMOVE_RECURSE
  "libhotspots_core.a"
)
