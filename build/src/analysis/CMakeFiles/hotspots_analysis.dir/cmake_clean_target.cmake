file(REMOVE_RECURSE
  "libhotspots_analysis.a"
)
