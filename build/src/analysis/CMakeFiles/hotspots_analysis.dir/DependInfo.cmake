
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/block_comparison.cc" "src/analysis/CMakeFiles/hotspots_analysis.dir/block_comparison.cc.o" "gcc" "src/analysis/CMakeFiles/hotspots_analysis.dir/block_comparison.cc.o.d"
  "/root/repo/src/analysis/seed_forensics.cc" "src/analysis/CMakeFiles/hotspots_analysis.dir/seed_forensics.cc.o" "gcc" "src/analysis/CMakeFiles/hotspots_analysis.dir/seed_forensics.cc.o.d"
  "/root/repo/src/analysis/uniformity.cc" "src/analysis/CMakeFiles/hotspots_analysis.dir/uniformity.cc.o" "gcc" "src/analysis/CMakeFiles/hotspots_analysis.dir/uniformity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/hotspots_net.dir/DependInfo.cmake"
  "/root/repo/build/src/prng/CMakeFiles/hotspots_prng.dir/DependInfo.cmake"
  "/root/repo/build/src/worms/CMakeFiles/hotspots_worms.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hotspots_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/hotspots_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
