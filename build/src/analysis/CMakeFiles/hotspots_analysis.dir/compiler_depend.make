# Empty compiler generated dependencies file for hotspots_analysis.
# This may be replaced when dependencies are built.
