file(REMOVE_RECURSE
  "CMakeFiles/hotspots_analysis.dir/block_comparison.cc.o"
  "CMakeFiles/hotspots_analysis.dir/block_comparison.cc.o.d"
  "CMakeFiles/hotspots_analysis.dir/seed_forensics.cc.o"
  "CMakeFiles/hotspots_analysis.dir/seed_forensics.cc.o.d"
  "CMakeFiles/hotspots_analysis.dir/uniformity.cc.o"
  "CMakeFiles/hotspots_analysis.dir/uniformity.cc.o.d"
  "libhotspots_analysis.a"
  "libhotspots_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspots_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
