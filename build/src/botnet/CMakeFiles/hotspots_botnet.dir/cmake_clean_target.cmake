file(REMOVE_RECURSE
  "libhotspots_botnet.a"
)
