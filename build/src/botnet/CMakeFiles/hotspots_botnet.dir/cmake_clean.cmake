file(REMOVE_RECURSE
  "CMakeFiles/hotspots_botnet.dir/bot.cc.o"
  "CMakeFiles/hotspots_botnet.dir/bot.cc.o.d"
  "CMakeFiles/hotspots_botnet.dir/capture.cc.o"
  "CMakeFiles/hotspots_botnet.dir/capture.cc.o.d"
  "CMakeFiles/hotspots_botnet.dir/command.cc.o"
  "CMakeFiles/hotspots_botnet.dir/command.cc.o.d"
  "CMakeFiles/hotspots_botnet.dir/controller.cc.o"
  "CMakeFiles/hotspots_botnet.dir/controller.cc.o.d"
  "libhotspots_botnet.a"
  "libhotspots_botnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspots_botnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
