# Empty compiler generated dependencies file for hotspots_botnet.
# This may be replaced when dependencies are built.
