
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/botnet/bot.cc" "src/botnet/CMakeFiles/hotspots_botnet.dir/bot.cc.o" "gcc" "src/botnet/CMakeFiles/hotspots_botnet.dir/bot.cc.o.d"
  "/root/repo/src/botnet/capture.cc" "src/botnet/CMakeFiles/hotspots_botnet.dir/capture.cc.o" "gcc" "src/botnet/CMakeFiles/hotspots_botnet.dir/capture.cc.o.d"
  "/root/repo/src/botnet/command.cc" "src/botnet/CMakeFiles/hotspots_botnet.dir/command.cc.o" "gcc" "src/botnet/CMakeFiles/hotspots_botnet.dir/command.cc.o.d"
  "/root/repo/src/botnet/controller.cc" "src/botnet/CMakeFiles/hotspots_botnet.dir/controller.cc.o" "gcc" "src/botnet/CMakeFiles/hotspots_botnet.dir/controller.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/hotspots_net.dir/DependInfo.cmake"
  "/root/repo/build/src/prng/CMakeFiles/hotspots_prng.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hotspots_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/worms/CMakeFiles/hotspots_worms.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/hotspots_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
