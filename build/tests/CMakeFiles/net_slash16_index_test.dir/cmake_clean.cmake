file(REMOVE_RECURSE
  "CMakeFiles/net_slash16_index_test.dir/net_slash16_index_test.cc.o"
  "CMakeFiles/net_slash16_index_test.dir/net_slash16_index_test.cc.o.d"
  "net_slash16_index_test"
  "net_slash16_index_test.pdb"
  "net_slash16_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_slash16_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
