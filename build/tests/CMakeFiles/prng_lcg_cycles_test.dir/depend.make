# Empty dependencies file for prng_lcg_cycles_test.
# This may be replaced when dependencies are built.
