file(REMOVE_RECURSE
  "CMakeFiles/prng_lcg_cycles_test.dir/prng_lcg_cycles_test.cc.o"
  "CMakeFiles/prng_lcg_cycles_test.dir/prng_lcg_cycles_test.cc.o.d"
  "prng_lcg_cycles_test"
  "prng_lcg_cycles_test.pdb"
  "prng_lcg_cycles_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prng_lcg_cycles_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
