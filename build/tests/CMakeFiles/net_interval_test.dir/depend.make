# Empty dependencies file for net_interval_test.
# This may be replaced when dependencies are built.
