file(REMOVE_RECURSE
  "CMakeFiles/net_interval_test.dir/net_interval_test.cc.o"
  "CMakeFiles/net_interval_test.dir/net_interval_test.cc.o.d"
  "net_interval_test"
  "net_interval_test.pdb"
  "net_interval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_interval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
