# Empty compiler generated dependencies file for prng_tickcount_test.
# This may be replaced when dependencies are built.
