file(REMOVE_RECURSE
  "CMakeFiles/prng_tickcount_test.dir/prng_tickcount_test.cc.o"
  "CMakeFiles/prng_tickcount_test.dir/prng_tickcount_test.cc.o.d"
  "prng_tickcount_test"
  "prng_tickcount_test.pdb"
  "prng_tickcount_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prng_tickcount_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
