file(REMOVE_RECURSE
  "CMakeFiles/core_quarantine_test.dir/core_quarantine_test.cc.o"
  "CMakeFiles/core_quarantine_test.dir/core_quarantine_test.cc.o.d"
  "core_quarantine_test"
  "core_quarantine_test.pdb"
  "core_quarantine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_quarantine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
