# Empty dependencies file for core_quarantine_test.
# This may be replaced when dependencies are built.
