# Empty compiler generated dependencies file for sim_flat_table_test.
# This may be replaced when dependencies are built.
