# Empty dependencies file for blaster_footprint_test.
# This may be replaced when dependencies are built.
