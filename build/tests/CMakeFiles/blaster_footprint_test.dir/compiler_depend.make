# Empty compiler generated dependencies file for blaster_footprint_test.
# This may be replaced when dependencies are built.
