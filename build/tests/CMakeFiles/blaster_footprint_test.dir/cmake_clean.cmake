file(REMOVE_RECURSE
  "CMakeFiles/blaster_footprint_test.dir/blaster_footprint_test.cc.o"
  "CMakeFiles/blaster_footprint_test.dir/blaster_footprint_test.cc.o.d"
  "blaster_footprint_test"
  "blaster_footprint_test.pdb"
  "blaster_footprint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blaster_footprint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
