file(REMOVE_RECURSE
  "CMakeFiles/worms_test.dir/worms_test.cc.o"
  "CMakeFiles/worms_test.dir/worms_test.cc.o.d"
  "worms_test"
  "worms_test.pdb"
  "worms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
