# Empty dependencies file for worms_test.
# This may be replaced when dependencies are built.
