# Empty dependencies file for telescope_event_series_test.
# This may be replaced when dependencies are built.
