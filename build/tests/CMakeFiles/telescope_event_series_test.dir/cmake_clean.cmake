file(REMOVE_RECURSE
  "CMakeFiles/telescope_event_series_test.dir/telescope_event_series_test.cc.o"
  "CMakeFiles/telescope_event_series_test.dir/telescope_event_series_test.cc.o.d"
  "telescope_event_series_test"
  "telescope_event_series_test.pdb"
  "telescope_event_series_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telescope_event_series_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
