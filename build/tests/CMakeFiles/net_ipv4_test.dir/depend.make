# Empty dependencies file for net_ipv4_test.
# This may be replaced when dependencies are built.
