file(REMOVE_RECURSE
  "CMakeFiles/net_ipv4_test.dir/net_ipv4_test.cc.o"
  "CMakeFiles/net_ipv4_test.dir/net_ipv4_test.cc.o.d"
  "net_ipv4_test"
  "net_ipv4_test.pdb"
  "net_ipv4_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_ipv4_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
