
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bench_util_test.cc" "tests/CMakeFiles/bench_util_test.dir/bench_util_test.cc.o" "gcc" "tests/CMakeFiles/bench_util_test.dir/bench_util_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hotspots_core.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/hotspots_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/botnet/CMakeFiles/hotspots_botnet.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/hotspots_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/worms/CMakeFiles/hotspots_worms.dir/DependInfo.cmake"
  "/root/repo/build/src/telescope/CMakeFiles/hotspots_telescope.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hotspots_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/hotspots_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/prng/CMakeFiles/hotspots_prng.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hotspots_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
