file(REMOVE_RECURSE
  "CMakeFiles/sim_rate_test.dir/sim_rate_test.cc.o"
  "CMakeFiles/sim_rate_test.dir/sim_rate_test.cc.o.d"
  "sim_rate_test"
  "sim_rate_test.pdb"
  "sim_rate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_rate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
