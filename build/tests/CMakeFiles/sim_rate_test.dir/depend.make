# Empty dependencies file for sim_rate_test.
# This may be replaced when dependencies are built.
