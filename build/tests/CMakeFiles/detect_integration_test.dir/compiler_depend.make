# Empty compiler generated dependencies file for detect_integration_test.
# This may be replaced when dependencies are built.
