file(REMOVE_RECURSE
  "CMakeFiles/detect_integration_test.dir/detect_integration_test.cc.o"
  "CMakeFiles/detect_integration_test.dir/detect_integration_test.cc.o.d"
  "detect_integration_test"
  "detect_integration_test.pdb"
  "detect_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detect_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
