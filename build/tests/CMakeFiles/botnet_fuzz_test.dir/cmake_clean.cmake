file(REMOVE_RECURSE
  "CMakeFiles/botnet_fuzz_test.dir/botnet_fuzz_test.cc.o"
  "CMakeFiles/botnet_fuzz_test.dir/botnet_fuzz_test.cc.o.d"
  "botnet_fuzz_test"
  "botnet_fuzz_test.pdb"
  "botnet_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/botnet_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
