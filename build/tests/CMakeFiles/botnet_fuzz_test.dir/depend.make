# Empty dependencies file for botnet_fuzz_test.
# This may be replaced when dependencies are built.
