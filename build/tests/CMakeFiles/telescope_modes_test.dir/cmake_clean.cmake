file(REMOVE_RECURSE
  "CMakeFiles/telescope_modes_test.dir/telescope_modes_test.cc.o"
  "CMakeFiles/telescope_modes_test.dir/telescope_modes_test.cc.o.d"
  "telescope_modes_test"
  "telescope_modes_test.pdb"
  "telescope_modes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telescope_modes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
