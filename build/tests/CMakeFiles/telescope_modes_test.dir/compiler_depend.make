# Empty compiler generated dependencies file for telescope_modes_test.
# This may be replaced when dependencies are built.
