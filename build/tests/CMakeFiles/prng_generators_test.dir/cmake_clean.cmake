file(REMOVE_RECURSE
  "CMakeFiles/prng_generators_test.dir/prng_generators_test.cc.o"
  "CMakeFiles/prng_generators_test.dir/prng_generators_test.cc.o.d"
  "prng_generators_test"
  "prng_generators_test.pdb"
  "prng_generators_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prng_generators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
