# Empty compiler generated dependencies file for prng_generators_test.
# This may be replaced when dependencies are built.
