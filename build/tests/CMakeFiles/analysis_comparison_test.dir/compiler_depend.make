# Empty compiler generated dependencies file for analysis_comparison_test.
# This may be replaced when dependencies are built.
