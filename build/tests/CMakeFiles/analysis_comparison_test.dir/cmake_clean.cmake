file(REMOVE_RECURSE
  "CMakeFiles/analysis_comparison_test.dir/analysis_comparison_test.cc.o"
  "CMakeFiles/analysis_comparison_test.dir/analysis_comparison_test.cc.o.d"
  "analysis_comparison_test"
  "analysis_comparison_test.pdb"
  "analysis_comparison_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_comparison_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
