file(REMOVE_RECURSE
  "CMakeFiles/sim_study_test.dir/sim_study_test.cc.o"
  "CMakeFiles/sim_study_test.dir/sim_study_test.cc.o.d"
  "sim_study_test"
  "sim_study_test.pdb"
  "sim_study_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_study_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
