# Empty dependencies file for sim_study_test.
# This may be replaced when dependencies are built.
