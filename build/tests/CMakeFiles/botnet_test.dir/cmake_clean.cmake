file(REMOVE_RECURSE
  "CMakeFiles/botnet_test.dir/botnet_test.cc.o"
  "CMakeFiles/botnet_test.dir/botnet_test.cc.o.d"
  "botnet_test"
  "botnet_test.pdb"
  "botnet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/botnet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
