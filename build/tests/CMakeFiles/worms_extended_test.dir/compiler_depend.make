# Empty compiler generated dependencies file for worms_extended_test.
# This may be replaced when dependencies are built.
