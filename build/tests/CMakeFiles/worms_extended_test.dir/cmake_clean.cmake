file(REMOVE_RECURSE
  "CMakeFiles/worms_extended_test.dir/worms_extended_test.cc.o"
  "CMakeFiles/worms_extended_test.dir/worms_extended_test.cc.o.d"
  "worms_extended_test"
  "worms_extended_test.pdb"
  "worms_extended_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worms_extended_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
