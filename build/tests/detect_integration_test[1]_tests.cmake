add_test([=[DetectIntegrationTest.TrwFlagsInfectedHostsAndPrevalenceAssembles]=]  /root/repo/build/tests/detect_integration_test [==[--gtest_filter=DetectIntegrationTest.TrwFlagsInfectedHostsAndPrevalenceAssembles]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[DetectIntegrationTest.TrwFlagsInfectedHostsAndPrevalenceAssembles]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  detect_integration_test_TESTS DetectIntegrationTest.TrwFlagsInfectedHostsAndPrevalenceAssembles)
