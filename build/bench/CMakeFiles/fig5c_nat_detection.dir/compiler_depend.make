# Empty compiler generated dependencies file for fig5c_nat_detection.
# This may be replaced when dependencies are built.
