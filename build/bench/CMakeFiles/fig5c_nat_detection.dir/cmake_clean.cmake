file(REMOVE_RECURSE
  "CMakeFiles/fig5c_nat_detection.dir/fig5c_nat_detection.cc.o"
  "CMakeFiles/fig5c_nat_detection.dir/fig5c_nat_detection.cc.o.d"
  "fig5c_nat_detection"
  "fig5c_nat_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5c_nat_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
