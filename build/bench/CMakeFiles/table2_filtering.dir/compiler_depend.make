# Empty compiler generated dependencies file for table2_filtering.
# This may be replaced when dependencies are built.
