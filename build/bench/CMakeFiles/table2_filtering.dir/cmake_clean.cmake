file(REMOVE_RECURSE
  "CMakeFiles/table2_filtering.dir/table2_filtering.cc.o"
  "CMakeFiles/table2_filtering.dir/table2_filtering.cc.o.d"
  "table2_filtering"
  "table2_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
