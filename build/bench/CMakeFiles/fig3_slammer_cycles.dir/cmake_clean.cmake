file(REMOVE_RECURSE
  "CMakeFiles/fig3_slammer_cycles.dir/fig3_slammer_cycles.cc.o"
  "CMakeFiles/fig3_slammer_cycles.dir/fig3_slammer_cycles.cc.o.d"
  "fig3_slammer_cycles"
  "fig3_slammer_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_slammer_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
