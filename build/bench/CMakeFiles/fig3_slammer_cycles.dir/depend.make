# Empty dependencies file for fig3_slammer_cycles.
# This may be replaced when dependencies are built.
