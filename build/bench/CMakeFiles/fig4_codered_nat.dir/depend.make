# Empty dependencies file for fig4_codered_nat.
# This may be replaced when dependencies are built.
