file(REMOVE_RECURSE
  "CMakeFiles/fig4_codered_nat.dir/fig4_codered_nat.cc.o"
  "CMakeFiles/fig4_codered_nat.dir/fig4_codered_nat.cc.o.d"
  "fig4_codered_nat"
  "fig4_codered_nat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_codered_nat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
