# Empty dependencies file for ablation_lifecycle.
# This may be replaced when dependencies are built.
