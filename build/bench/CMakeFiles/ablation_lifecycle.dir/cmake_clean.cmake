file(REMOVE_RECURSE
  "CMakeFiles/ablation_lifecycle.dir/ablation_lifecycle.cc.o"
  "CMakeFiles/ablation_lifecycle.dir/ablation_lifecycle.cc.o.d"
  "ablation_lifecycle"
  "ablation_lifecycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
