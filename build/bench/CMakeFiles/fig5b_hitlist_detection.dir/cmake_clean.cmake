file(REMOVE_RECURSE
  "CMakeFiles/fig5b_hitlist_detection.dir/fig5b_hitlist_detection.cc.o"
  "CMakeFiles/fig5b_hitlist_detection.dir/fig5b_hitlist_detection.cc.o.d"
  "fig5b_hitlist_detection"
  "fig5b_hitlist_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_hitlist_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
