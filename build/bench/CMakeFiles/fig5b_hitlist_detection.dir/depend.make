# Empty dependencies file for fig5b_hitlist_detection.
# This may be replaced when dependencies are built.
