file(REMOVE_RECURSE
  "CMakeFiles/ablation_prng_lineage.dir/ablation_prng_lineage.cc.o"
  "CMakeFiles/ablation_prng_lineage.dir/ablation_prng_lineage.cc.o.d"
  "ablation_prng_lineage"
  "ablation_prng_lineage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_prng_lineage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
