# Empty dependencies file for ablation_prng_lineage.
# This may be replaced when dependencies are built.
