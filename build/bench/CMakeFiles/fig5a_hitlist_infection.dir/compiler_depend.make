# Empty compiler generated dependencies file for fig5a_hitlist_infection.
# This may be replaced when dependencies are built.
