file(REMOVE_RECURSE
  "CMakeFiles/fig5a_hitlist_infection.dir/fig5a_hitlist_infection.cc.o"
  "CMakeFiles/fig5a_hitlist_infection.dir/fig5a_hitlist_infection.cc.o.d"
  "fig5a_hitlist_infection"
  "fig5a_hitlist_infection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_hitlist_infection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
