file(REMOVE_RECURSE
  "CMakeFiles/fig2_slammer_sources.dir/fig2_slammer_sources.cc.o"
  "CMakeFiles/fig2_slammer_sources.dir/fig2_slammer_sources.cc.o.d"
  "fig2_slammer_sources"
  "fig2_slammer_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_slammer_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
