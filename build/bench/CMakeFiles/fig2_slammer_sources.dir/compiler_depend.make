# Empty compiler generated dependencies file for fig2_slammer_sources.
# This may be replaced when dependencies are built.
