# Empty dependencies file for ablation_engine_dt.
# This may be replaced when dependencies are built.
