file(REMOVE_RECURSE
  "CMakeFiles/ablation_engine_dt.dir/ablation_engine_dt.cc.o"
  "CMakeFiles/ablation_engine_dt.dir/ablation_engine_dt.cc.o.d"
  "ablation_engine_dt"
  "ablation_engine_dt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_engine_dt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
