file(REMOVE_RECURSE
  "CMakeFiles/ablation_sensor_mode.dir/ablation_sensor_mode.cc.o"
  "CMakeFiles/ablation_sensor_mode.dir/ablation_sensor_mode.cc.o.d"
  "ablation_sensor_mode"
  "ablation_sensor_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sensor_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
