# Empty compiler generated dependencies file for ablation_sensor_mode.
# This may be replaced when dependencies are built.
