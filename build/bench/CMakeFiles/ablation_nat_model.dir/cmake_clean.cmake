file(REMOVE_RECURSE
  "CMakeFiles/ablation_nat_model.dir/ablation_nat_model.cc.o"
  "CMakeFiles/ablation_nat_model.dir/ablation_nat_model.cc.o.d"
  "ablation_nat_model"
  "ablation_nat_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nat_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
