# Empty dependencies file for ablation_nat_model.
# This may be replaced when dependencies are built.
