file(REMOVE_RECURSE
  "CMakeFiles/fig1_blaster_hotspots.dir/fig1_blaster_hotspots.cc.o"
  "CMakeFiles/fig1_blaster_hotspots.dir/fig1_blaster_hotspots.cc.o.d"
  "fig1_blaster_hotspots"
  "fig1_blaster_hotspots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_blaster_hotspots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
