# Empty compiler generated dependencies file for fig1_blaster_hotspots.
# This may be replaced when dependencies are built.
