file(REMOVE_RECURSE
  "CMakeFiles/table1_bot_commands.dir/table1_bot_commands.cc.o"
  "CMakeFiles/table1_bot_commands.dir/table1_bot_commands.cc.o.d"
  "table1_bot_commands"
  "table1_bot_commands.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_bot_commands.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
