# Empty dependencies file for table1_bot_commands.
# This may be replaced when dependencies are built.
