file(REMOVE_RECURSE
  "CMakeFiles/botnet_hitlist_outbreak.dir/botnet_hitlist_outbreak.cpp.o"
  "CMakeFiles/botnet_hitlist_outbreak.dir/botnet_hitlist_outbreak.cpp.o.d"
  "botnet_hitlist_outbreak"
  "botnet_hitlist_outbreak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/botnet_hitlist_outbreak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
