# Empty compiler generated dependencies file for botnet_hitlist_outbreak.
# This may be replaced when dependencies are built.
