# Empty dependencies file for nat_hotspot_forensics.
# This may be replaced when dependencies are built.
