file(REMOVE_RECURSE
  "CMakeFiles/nat_hotspot_forensics.dir/nat_hotspot_forensics.cpp.o"
  "CMakeFiles/nat_hotspot_forensics.dir/nat_hotspot_forensics.cpp.o.d"
  "nat_hotspot_forensics"
  "nat_hotspot_forensics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nat_hotspot_forensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
