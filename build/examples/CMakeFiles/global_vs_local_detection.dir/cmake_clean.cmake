file(REMOVE_RECURSE
  "CMakeFiles/global_vs_local_detection.dir/global_vs_local_detection.cpp.o"
  "CMakeFiles/global_vs_local_detection.dir/global_vs_local_detection.cpp.o.d"
  "global_vs_local_detection"
  "global_vs_local_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_vs_local_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
