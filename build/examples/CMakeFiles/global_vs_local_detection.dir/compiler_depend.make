# Empty compiler generated dependencies file for global_vs_local_detection.
# This may be replaced when dependencies are built.
