# Empty compiler generated dependencies file for slammer_cycle_forensics.
# This may be replaced when dependencies are built.
