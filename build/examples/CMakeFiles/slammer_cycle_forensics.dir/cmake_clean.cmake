file(REMOVE_RECURSE
  "CMakeFiles/slammer_cycle_forensics.dir/slammer_cycle_forensics.cpp.o"
  "CMakeFiles/slammer_cycle_forensics.dir/slammer_cycle_forensics.cpp.o.d"
  "slammer_cycle_forensics"
  "slammer_cycle_forensics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slammer_cycle_forensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
