// telescope_load — replay a captured trace corpus against a telescope
// ingest daemon at fan-out.
//
//   telescope_load FILE --port N [--host ADDR] [--connections N]
//                  [--rate RECORDS_PER_SEC] [--loop N]
//                  [--retries N] [--chaos SPEC]
//
// The corpus is indexed into raw block spans (never re-encoded) and
// striped over N concurrent connections — connection c carries blocks
// i with i % N == c, tagged with their global capture sequence — so the
// daemon's in-order fold reconstructs the original stream exactly.
// --rate paces the *aggregate* record rate across all connections
// (0 = unthrottled); --loop replays the corpus that many times
// back-to-back with monotonically rising sequences.  Exits 0 once every
// connection's FIN has been ACKed, i.e. once the daemon has folded
// every record sent.
//
// --retries N allows each connection up to N attempts: a broken socket
// reconnects with exponential backoff and resumes from the server's
// committed low-water mark.  --chaos SPEC (see src/serve/chaos.h, e.g.
// "seed:7;disconnect:0.05;shortwrite:0.2") injects deterministic socket
// faults into this client's own writes — the chaos-testing harness.
// Exits 1 with the server's own one-line reason when the daemon refuses
// the session (scenario-fingerprint mismatch).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "serve/load_client.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: telescope_load FILE --port N [--host ADDR]\n"
               "  [--connections N] [--rate RECORDS_PER_SEC] [--loop N]\n"
               "  [--retries N] [--chaos SPEC]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hotspots;

  serve::LoadOptions options;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "telescope_load: %s requires a value\n",
                     argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      options.port =
          static_cast<std::uint16_t>(std::strtoul(next(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--host") == 0) {
      options.host = next();
    } else if (std::strcmp(argv[i], "--connections") == 0) {
      options.connections =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--rate") == 0) {
      const auto rate = bench::ParseDouble(next());
      if (!rate || *rate < 0.0) {
        std::fprintf(stderr, "telescope_load: bad --rate\n");
        return 2;
      }
      options.rate = *rate;
    } else if (std::strcmp(argv[i], "--loop") == 0) {
      options.loops =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--retries") == 0) {
      options.max_attempts =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      try {
        options.chaos = serve::ParseChaosSpec(next());
      } catch (const std::exception& error) {
        std::fprintf(stderr, "telescope_load: %s\n", error.what());
        return 2;
      }
    } else if (path.empty()) {
      path = argv[i];
    } else {
      return Usage();
    }
  }
  if (path.empty() || options.port == 0) return Usage();

  try {
    const serve::CorpusIndex corpus{path};
    std::printf("corpus %s: %zu blocks, %llu records\n", path.c_str(),
                corpus.blocks().size(),
                static_cast<unsigned long long>(corpus.total_records()));
    const serve::LoadReport report = serve::RunLoad(corpus, options);
    std::printf("sent %llu records (%llu blocks, %.2f MiB) over %u "
                "connections in %.3f s — %.0f records/s\n",
                static_cast<unsigned long long>(report.records_sent),
                static_cast<unsigned long long>(report.blocks_sent),
                static_cast<double>(report.bytes_sent) / (1024.0 * 1024.0),
                options.connections, report.wall_seconds,
                report.records_per_sec);
    std::vector<double> lat = report.ack_latency_seconds;
    std::sort(lat.begin(), lat.end());
    if (!lat.empty()) {
      std::printf("fin-to-ack latency: p50 %.6f s, max %.6f s\n",
                  lat[lat.size() / 2], lat.back());
    }
    if (report.reconnects > 0 || report.chaos_cuts > 0) {
      std::printf("chaos: %llu injected cuts, %llu reconnects\n",
                  static_cast<unsigned long long>(report.chaos_cuts),
                  static_cast<unsigned long long>(report.reconnects));
    }
    std::printf("all connections acked\n");
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "telescope_load: %s\n", error.what());
    return 1;
  }
}
