// perf_report: turns a traced run's sidecars into a shard-performance
// digest.
//
//   perf_report --timeline t.json [--timeseries s.json] [--windows N]
//               [--top K]
//
// Ingests the Chrome trace-event timeline written by --timeline-out
// (obs/timeline_export) and, optionally, the hotspots.timeseries.v1
// sidecar written by --timeseries-out (obs/sampler), and prints:
//
//   * per-shard busy time and utilization (engine.generate span sums per
//     worker lane against the trace wall clock),
//   * the imbalance ratio (max / mean worker busy time — the fork/join
//     stall budget),
//   * the commit serial fraction per step window (how much of each slice
//     of the run the serial engine.commit lane occupied),
//   * top-K span self-times (span duration minus nested children),
//   * probes/s-over-time from the timeseries counter deltas.
//
// The tool exits 0 on a well-formed pair, 1 on timeline parse/shape
// errors, and 2 on usage errors — including a --timeseries path that is
// missing or truncated, which gets a one-line diagnostic rather than a
// parse backtrace.  ci.sh's obs-trace smoke runs it against every traced
// micro_hotpath artifact.
#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser (the repo only writes JSON;
// this tool is the first reader, so it carries its own parser rather than
// growing a dependency).

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;

  [[nodiscard]] const JsonValue* Find(std::string_view key) const {
    for (const auto& [name, value] : members) {
      if (name == key) return &value;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue Parse() {
    JsonValue value = ParseValue();
    SkipSpace();
    if (pos_ != text_.size()) Fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char Peek() {
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue ParseValue() {
    SkipSpace();
    switch (Peek()) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return ParseString();
      case 't':
      case 'f': return ParseBool();
      case 'n': return ParseNull();
      default: return ParseNumber();
    }
  }

  JsonValue ParseObject() {
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    Expect('{');
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return value;
    }
    for (;;) {
      SkipSpace();
      JsonValue key = ParseString();
      SkipSpace();
      Expect(':');
      value.members.emplace_back(std::move(key.text), ParseValue());
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return value;
    }
  }

  JsonValue ParseArray() {
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    Expect('[');
    SkipSpace();
    if (Peek() == ']') {
      ++pos_;
      return value;
    }
    for (;;) {
      value.items.push_back(ParseValue());
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return value;
    }
  }

  JsonValue ParseString() {
    JsonValue value;
    value.kind = JsonValue::Kind::kString;
    Expect('"');
    while (Peek() != '"') {
      const char c = text_[pos_++];
      if (c != '\\') {
        value.text += c;
        continue;
      }
      const char escape = Peek();
      ++pos_;
      switch (escape) {
        case '"': value.text += '"'; break;
        case '\\': value.text += '\\'; break;
        case '/': value.text += '/'; break;
        case 'b': value.text += '\b'; break;
        case 'f': value.text += '\f'; break;
        case 'n': value.text += '\n'; break;
        case 'r': value.text += '\r'; break;
        case 't': value.text += '\t'; break;
        case 'u': value.text += DecodeUnicodeEscape(); break;
        default: Fail("bad escape");
      }
    }
    ++pos_;
    return value;
  }

  /// Decodes \uXXXX (and a following low surrogate when paired) to UTF-8.
  std::string DecodeUnicodeEscape() {
    std::uint32_t code = ReadHex4();
    if (code >= 0xD800 && code <= 0xDBFF && pos_ + 1 < text_.size() &&
        text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
      pos_ += 2;
      const std::uint32_t low = ReadHex4();
      if (low >= 0xDC00 && low <= 0xDFFF) {
        code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
      }
    }
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  std::uint32_t ReadHex4() {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = Peek();
      ++pos_;
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        Fail("bad \\u escape");
      }
    }
    return value;
  }

  JsonValue ParseBool() {
    JsonValue value;
    value.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      value.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      value.boolean = false;
      pos_ += 5;
    } else {
      Fail("bad literal");
    }
    return value;
  }

  JsonValue ParseNull() {
    if (text_.compare(pos_, 4, "null") != 0) Fail("bad literal");
    pos_ += 4;
    return JsonValue{};
  }

  JsonValue ParseNumber() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            std::strchr("+-.eE", text_[pos_]) != nullptr)) {
      ++pos_;
    }
    if (pos_ == start) Fail("expected a value");
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    try {
      value.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      Fail("bad number");
    }
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Timeline model reconstructed from B/E events.

struct Span {
  std::string name;
  int tid = 0;
  double begin_us = 0.0;
  double end_us = 0.0;
  double child_us = 0.0;  ///< Summed durations of directly nested spans.

  [[nodiscard]] double duration_us() const { return end_us - begin_us; }
  [[nodiscard]] double self_us() const {
    return std::max(0.0, duration_us() - child_us);
  }
};

struct TimelineReport {
  std::map<int, std::string> lanes;
  std::vector<Span> spans;  ///< Closed spans, any order.
  double wall_us = 0.0;
  double min_ts_us = 0.0;
  std::uint64_t dropped = 0;
};

TimelineReport LoadTimeline(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const JsonValue document = JsonParser(text).Parse();
  if (document.kind != JsonValue::Kind::kObject) {
    throw std::runtime_error("timeline: top level is not an object");
  }
  TimelineReport report;
  if (const JsonValue* dropped = document.Find("dropped")) {
    report.dropped = static_cast<std::uint64_t>(dropped->number);
  }
  const JsonValue* events = document.Find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    throw std::runtime_error("timeline: missing traceEvents array");
  }

  struct Open {
    std::string name;
    double begin_us = 0.0;
    double child_us = 0.0;
  };
  std::map<int, std::vector<Open>> stacks;
  double min_ts = std::numeric_limits<double>::infinity();
  double max_ts = -std::numeric_limits<double>::infinity();
  for (const JsonValue& event : events->items) {
    const JsonValue* ph = event.Find("ph");
    const JsonValue* ts = event.Find("ts");
    const JsonValue* tid_value = event.Find("tid");
    if (ph == nullptr || ts == nullptr || tid_value == nullptr) {
      throw std::runtime_error("timeline: event missing ph/ts/tid");
    }
    const int tid = static_cast<int>(tid_value->number);
    if (ph->text == "M") {
      const JsonValue* args = event.Find("args");
      const JsonValue* name = args != nullptr ? args->Find("name") : nullptr;
      if (name != nullptr) report.lanes[tid] = name->text;
      continue;
    }
    min_ts = std::min(min_ts, ts->number);
    max_ts = std::max(max_ts, ts->number);
    if (ph->text == "B") {
      const JsonValue* name = event.Find("name");
      stacks[tid].push_back(
          Open{name != nullptr ? name->text : "?", ts->number, 0.0});
    } else if (ph->text == "E") {
      auto& stack = stacks[tid];
      if (stack.empty()) {
        throw std::runtime_error("timeline: unbalanced E event on tid " +
                                 std::to_string(tid));
      }
      Span span;
      span.name = std::move(stack.back().name);
      span.tid = tid;
      span.begin_us = stack.back().begin_us;
      span.end_us = ts->number;
      span.child_us = stack.back().child_us;
      stack.pop_back();
      if (!stack.empty()) stack.back().child_us += span.duration_us();
      report.spans.push_back(std::move(span));
    }
  }
  for (const auto& [tid, stack] : stacks) {
    if (!stack.empty()) {
      throw std::runtime_error("timeline: unclosed span on tid " +
                               std::to_string(tid));
    }
  }
  if (report.spans.empty()) {
    throw std::runtime_error("timeline: no spans (was tracing enabled?)");
  }
  report.min_ts_us = min_ts;
  report.wall_us = std::max(0.0, max_ts - min_ts);
  return report;
}

std::string LaneLabel(const TimelineReport& report, int tid) {
  const auto it = report.lanes.find(tid);
  return it != report.lanes.end() ? it->second : "t" + std::to_string(tid);
}

void PrintShardSection(const TimelineReport& report, double& imbalance_out) {
  // Worker busy time: generate spans carry each shard's slice work (the
  // pre-fold nests inside them, so no double count).
  std::map<int, double> busy_us;
  std::map<int, std::uint64_t> slices;
  for (const Span& span : report.spans) {
    if (span.name != "engine.generate") continue;
    busy_us[span.tid] += span.duration_us();
    ++slices[span.tid];
  }
  std::printf("shard utilization (engine.generate per lane, wall %.3f ms):\n",
              report.wall_us / 1e3);
  if (busy_us.empty()) {
    std::printf("  no engine.generate spans — not an engine timeline\n");
    imbalance_out = 0.0;
    return;
  }
  double max_busy = 0.0;
  double total_busy = 0.0;
  for (const auto& [tid, busy] : busy_us) {
    std::printf("  %-14s busy %10.3f ms  (%5.1f%% of wall, %" PRIu64
                " slices)\n",
                LaneLabel(report, tid).c_str(), busy / 1e3,
                report.wall_us > 0.0 ? 100.0 * busy / report.wall_us : 0.0,
                slices[tid]);
    max_busy = std::max(max_busy, busy);
    total_busy += busy;
  }
  const double mean_busy =
      total_busy / static_cast<double>(busy_us.size());
  imbalance_out = mean_busy > 0.0 ? max_busy / mean_busy : 0.0;
  std::printf("  imbalance ratio (max/mean busy): %.3f over %zu lanes\n",
              imbalance_out, busy_us.size());
}

void PrintCommitWindows(const TimelineReport& report, int windows) {
  std::vector<const Span*> commits;
  double commit_total_us = 0.0;
  for (const Span& span : report.spans) {
    if (span.name == "engine.commit") {
      commits.push_back(&span);
      commit_total_us += span.duration_us();
    }
  }
  std::printf("\ncommit serial fraction (%d windows over %.3f ms):\n",
              windows, report.wall_us / 1e3);
  if (commits.empty() || report.wall_us <= 0.0) {
    std::printf("  no engine.commit spans\n");
    return;
  }
  const double window_us = report.wall_us / windows;
  for (int w = 0; w < windows; ++w) {
    const double w0 = report.min_ts_us + w * window_us;
    const double w1 = w0 + window_us;
    double occupied = 0.0;
    for (const Span* span : commits) {
      occupied += std::max(
          0.0, std::min(span->end_us, w1) - std::max(span->begin_us, w0));
    }
    const double fraction = occupied / window_us;
    const int bar = static_cast<int>(std::lround(fraction * 40.0));
    std::printf("  [%6.1f, %6.1f) ms  %6.2f%%  |%.*s\n", (w0 - report.min_ts_us) / 1e3,
                (w1 - report.min_ts_us) / 1e3, 100.0 * fraction, bar,
                "****************************************");
  }
  std::printf("  overall commit fraction: %.4f (%.3f ms serial)\n",
              commit_total_us / report.wall_us, commit_total_us / 1e3);
}

void PrintSelfTimes(const TimelineReport& report, int top) {
  struct Aggregate {
    double self_us = 0.0;
    double total_us = 0.0;
    std::uint64_t count = 0;
  };
  std::map<std::string, Aggregate> by_name;
  for (const Span& span : report.spans) {
    Aggregate& aggregate = by_name[span.name];
    aggregate.self_us += span.self_us();
    aggregate.total_us += span.duration_us();
    ++aggregate.count;
  }
  std::vector<std::pair<std::string, Aggregate>> rows(by_name.begin(),
                                                      by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.self_us > b.second.self_us;
  });
  std::printf("\ntop span self-times (duration minus nested children):\n");
  std::printf("  %-20s %12s %12s %10s\n", "span", "self ms", "total ms",
              "count");
  for (std::size_t i = 0;
       i < rows.size() && i < static_cast<std::size_t>(top); ++i) {
    const auto& [name, aggregate] = rows[i];
    std::printf("  %-20s %12.3f %12.3f %10" PRIu64 "\n", name.c_str(),
                aggregate.self_us / 1e3, aggregate.total_us / 1e3,
                aggregate.count);
  }
}

// ---------------------------------------------------------------------------
// Timeseries sidecar (optional).

void PrintTimeseries(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open (missing or unreadable)");
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonValue document = JsonParser(buffer.str()).Parse();
  const JsonValue* schema = document.Find("schema");
  if (schema == nullptr || schema->text != "hotspots.timeseries.v1") {
    throw std::runtime_error("timeseries: unexpected schema");
  }
  const JsonValue* t_ns = document.Find("t_ns");
  const JsonValue* counters = document.Find("counters");
  if (t_ns == nullptr || counters == nullptr) {
    throw std::runtime_error("timeseries: missing t_ns/counters");
  }
  const std::size_t samples = t_ns->items.size();
  std::printf("\ntimeseries (%zu samples over %.2f s):\n", samples,
              samples > 0 ? t_ns->items.back().number / 1e9 : 0.0);

  const auto deltas_of = [&](const char* name) -> const JsonValue* {
    const JsonValue* counter = counters->Find(name);
    return counter != nullptr ? counter->Find("deltas") : nullptr;
  };
  const JsonValue* probe_deltas = deltas_of("engine.probes");
  if (probe_deltas == nullptr || samples < 2) {
    std::printf("  no engine.probes series\n");
    return;
  }
  const JsonValue* commit_deltas = deltas_of("engine.stage.commit.nanos");
  const JsonValue* run_deltas = deltas_of("engine.run.nanos");

  // Summaries plus a coarse curve (at most 20 rows) so long runs stay
  // readable; each row covers a contiguous slice of sampling intervals.
  double peak_rate = 0.0;
  double total_probes = 0.0;
  const std::size_t intervals = probe_deltas->items.size();
  const std::size_t stride = std::max<std::size_t>(1, intervals / 20);
  std::printf("  %-16s %14s %s\n", "t (s)", "probes/s",
              run_deltas != nullptr ? "serial fraction" : "");
  for (std::size_t i = 0; i < intervals; i += stride) {
    const std::size_t j = std::min(intervals, i + stride);
    const double t0 = t_ns->items[i].number / 1e9;
    const double t1 = t_ns->items[j].number / 1e9;
    double probes = 0.0;
    double commit_ns = 0.0;
    double run_ns = 0.0;
    for (std::size_t k = i; k < j; ++k) {
      probes += probe_deltas->items[k].number;
      if (commit_deltas != nullptr && k < commit_deltas->items.size()) {
        commit_ns += commit_deltas->items[k].number;
      }
      if (run_deltas != nullptr && k < run_deltas->items.size()) {
        run_ns += run_deltas->items[k].number;
      }
    }
    const double dt = t1 - t0;
    const double rate = dt > 0.0 ? probes / dt : 0.0;
    peak_rate = std::max(peak_rate, rate);
    total_probes += probes;
    if (run_deltas != nullptr && run_ns > 0.0) {
      std::printf("  [%6.2f,%6.2f)  %14.0f %15.4f\n", t0, t1, rate,
                  commit_ns / run_ns);
    } else {
      std::printf("  [%6.2f,%6.2f)  %14.0f\n", t0, t1, rate);
    }
  }
  const double span_seconds =
      (t_ns->items.back().number - t_ns->items.front().number) / 1e9;
  std::printf("  total %.0f probes, mean %.0f probes/s, peak %.0f probes/s\n",
              total_probes,
              span_seconds > 0.0 ? total_probes / span_seconds : 0.0,
              peak_rate);
}

}  // namespace

int main(int argc, char** argv) {
  std::string timeline_path;
  std::string timeseries_path;
  int windows = 10;
  int top = 10;
  for (int i = 1; i < argc; ++i) {
    const auto int_arg = [&](const char* flag) -> int {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      char* end = nullptr;
      const long value = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || value < 1 || value > 10000) {
        std::fprintf(stderr, "%s: integer in [1, 10000] expected\n", flag);
        std::exit(2);
      }
      return static_cast<int>(value);
    };
    if (std::strcmp(argv[i], "--timeline") == 0 && i + 1 < argc) {
      timeline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--timeseries") == 0 && i + 1 < argc) {
      timeseries_path = argv[++i];
    } else if (std::strcmp(argv[i], "--windows") == 0) {
      windows = int_arg("--windows");
    } else if (std::strcmp(argv[i], "--top") == 0) {
      top = int_arg("--top");
    } else {
      std::fprintf(stderr,
                   "usage: %s --timeline FILE [--timeseries FILE] "
                   "[--windows N] [--top K]\n",
                   argv[0]);
      return 2;
    }
  }
  if (timeline_path.empty()) {
    std::fprintf(stderr, "--timeline is required\n");
    return 2;
  }
  try {
    const TimelineReport report = LoadTimeline(timeline_path);
    std::printf("perf_report: %s (%zu spans, %" PRIu64 " dropped)\n\n",
                timeline_path.c_str(), report.spans.size(), report.dropped);
    if (report.dropped > 0) {
      std::printf("  NOTE: %" PRIu64 " spans were dropped at capture (full "
                  "rings); busy times are lower bounds\n\n",
                  report.dropped);
    }
    double imbalance = 0.0;
    PrintShardSection(report, imbalance);
    PrintCommitWindows(report, windows);
    PrintSelfTimes(report, top);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "perf_report: %s\n", error.what());
    return 1;
  }
  // A bad --timeseries argument is an invocation error, not a shape
  // problem inside a well-formed artifact pair: missing and truncated
  // sidecars both get one line and exit 2 (a truncated file surfaces as
  // the parser's "unexpected end of input").
  if (!timeseries_path.empty()) {
    try {
      PrintTimeseries(timeseries_path);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "perf_report: --timeseries %s: %s\n",
                   timeseries_path.c_str(), error.what());
      return 2;
    }
  }
  return 0;
}
