// trace_tool — inspect, validate, and replay `hotspots.trace.v1` files.
//
//   trace_tool info FILE
//       Header fields plus full-scan totals (blocks, records, time span).
//       Damaged files are scanned in salvage mode instead of failing on
//       the first bad block: surviving totals, the trailer's declared
//       totals (printed even when the trailer is the only intact
//       section), and the first damage site are all reported (exit 1).
//   trace_tool validate FILE [--salvage]
//       Decodes every frame, CRC, and record; prints OK or the first
//       violation (exit 1).  A structurally valid trace with zero records
//       also fails — an empty capture is how a misconfigured pipeline
//       looks, and "validated" must never mean "vacuously empty".  With
//       --salvage, damaged blocks are skipped instead of fatal and the
//       recovery stats are printed; exit 0 only if no damage was found.
//       This is the CI smoke step's integrity check.
//   trace_tool head FILE [N]
//       Prints the first N records (default 10) as a table.
//   trace_tool replay FILE [--sensors CIDR[,CIDR...] | --ims]
//                         [--alert-threshold N] [--metrics-out PATH]
//       Replays the trace through a darknet telescope built from the given
//       sensor blocks — or the standard 11 IMS blocks with their canonical
//       labels (--ims) — or just tallies delivery verdicts when neither is
//       given.  Prints per-sensor counters, and — with --metrics-out —
//       writes the standard metrics sidecar so replayed counters diff
//       directly against a live run's sidecar (matching gauge keys).
//   trace_tool uniformity FILE CIDR [CIDR...] [--unique-sources]
//                         [--delivered-only]
//       Bins the trace's destinations into the /24s of the given blocks
//       and prints the uniformity report (χ², KL, Gini, peak/mean).
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/trace_uniformity.h"
#include "bench_util.h"
#include "net/prefix.h"
#include "sim/observer.h"
#include "telescope/ims.h"
#include "telescope/telescope.h"
#include "topology/reachability.h"
#include "trace/reader.h"
#include "trace/replay.h"

namespace {

using namespace hotspots;

int Usage() {
  std::fprintf(stderr,
               "usage: trace_tool <command> [args]\n"
               "  info FILE\n"
               "  validate FILE [--salvage]\n"
               "  head FILE [N]\n"
               "  replay FILE [--sensors CIDR[,CIDR...] | --ims]"
               " [--alert-threshold N] [--metrics-out PATH]\n"
               "  uniformity FILE CIDR [CIDR...] [--unique-sources]"
               " [--delivered-only]\n");
  return 2;
}

/// Parses "a.b.c.d/len[,a.b.c.d/len...]" into prefixes; exits on bad input.
std::vector<net::Prefix> ParsePrefixList(const std::string& spec) {
  std::vector<net::Prefix> prefixes;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string one = spec.substr(start, comma - start);
    if (!one.empty()) {
      const auto prefix = net::Prefix::Parse(one);
      if (!prefix) {
        std::fprintf(stderr, "trace_tool: bad CIDR block \"%s\"\n",
                     one.c_str());
        std::exit(2);
      }
      prefixes.push_back(*prefix);
    }
    start = comma + 1;
  }
  return prefixes;
}

/// Expands each block into its /24s (blocks at /24 or longer map to one
/// bin), giving the paper's per-/24 histogram granularity.
std::vector<net::Prefix> ExpandToSlash24(
    const std::vector<net::Prefix>& blocks) {
  std::vector<net::Prefix> bins;
  for (const net::Prefix& block : blocks) {
    if (block.length() >= 24) {
      bins.push_back(block);
      continue;
    }
    const std::uint64_t count = block.size() / 256;
    for (std::uint64_t i = 0; i < count; ++i) {
      bins.emplace_back(block.AddressAt(i * 256), 24);
    }
  }
  return bins;
}

void PrintHeader(const trace::TraceHeader& header) {
  std::printf("schema                %s\n", trace::kTraceSchema);
  std::printf("version               %u\n", header.version);
  std::printf("scenario_fingerprint  %016" PRIx64 "\n",
              header.scenario_fingerprint);
  std::printf("seed                  %" PRIu64 "\n", header.seed);
  std::printf("sampled               %s\n", header.sampled() ? "yes" : "no");
  std::printf("sample_rate           %g\n", header.sample_rate);
}

int CmdInfo(const std::string& path) {
  // Info must still describe a damaged capture — after a crash the
  // trailer is often the only intact section — so the scan runs in
  // salvage mode and reports both what survived and what the trailer
  // declares the stream held.  An intact file prints identically to the
  // old strict scan (and exits 0); damage is summarized and exits 1.
  trace::TraceReaderOptions options;
  options.salvage = true;
  const trace::TraceInfo info = trace::ScanTrace(path, options);
  const trace::SalvageStats& stats = info.salvage;
  PrintHeader(info.header);
  std::printf("blocks                %" PRIu64 "\n", info.blocks);
  std::printf("records               %" PRIu64 "\n", info.records);
  std::printf("payload_bytes         %" PRIu64 "\n", info.payload_bytes);
  std::printf("file_bytes            %" PRIu64 "\n", info.file_bytes);
  if (info.records > 0) {
    std::printf("time_span             [%.6f, %.6f] s\n", info.first_time,
                info.last_time);
    std::printf("bytes_per_record      %.2f\n",
                static_cast<double>(info.payload_bytes) /
                    static_cast<double>(info.records));
  }
  if (stats.trailer_seen) {
    std::printf("trailer_records       %" PRIu64 "\n", stats.trailer_records);
    std::printf("trailer_blocks        %" PRIu64 "\n", stats.trailer_blocks);
  }
  if (stats.damaged()) {
    std::printf("damage                %" PRIu64 " corrupt block%s, first at "
                "block %" PRIu64 " @byte %" PRIu64 "; trailer %s\n",
                stats.corrupt_blocks, stats.corrupt_blocks == 1 ? "" : "s",
                stats.first_damage_block, stats.first_damage_offset,
                stats.trailer_mismatch
                    ? "MISMATCH"
                    : (stats.trailer_missing ? "missing" : "present"));
    return 1;
  }
  return 0;
}

int CmdValidate(const std::string& path, bool salvage) {
  if (!salvage) {
    const trace::TraceInfo info = trace::ValidateTraceFile(path);
    std::printf("OK: %s — %" PRIu64 " records in %" PRIu64
                " blocks, %" PRIu64 " bytes\n",
                path.c_str(), info.records, info.blocks, info.file_bytes);
    return 0;
  }
  trace::TraceReaderOptions options;
  options.salvage = true;
  const trace::TraceInfo info = trace::ScanTrace(path, options);
  const trace::SalvageStats& stats = info.salvage;
  std::printf("%s: %s — %" PRIu64 " records recovered in %" PRIu64
              " blocks, %" PRIu64 " bytes read\n",
              stats.damaged() ? "SALVAGED" : "OK", path.c_str(), info.records,
              info.blocks, info.file_bytes);
  if (stats.damaged()) {
    std::printf("  corrupt_blocks   %" PRIu64 "\n", stats.corrupt_blocks);
    std::printf("  records_lost     %" PRIu64 "\n", stats.records_lost);
    std::printf("  bytes_skipped    %" PRIu64 "\n", stats.bytes_skipped);
    if (stats.corrupt_blocks > 0) {
      std::printf("  first_damage     block %" PRIu64 " @byte %" PRIu64 "\n",
                  stats.first_damage_block, stats.first_damage_offset);
    }
    std::printf("  trailer          %s\n",
                stats.trailer_mismatch
                    ? "MISMATCH (totals below delivered stream)"
                    : (stats.trailer_missing ? "missing" : "present"));
    return 1;
  }
  if (info.records == 0) {
    std::fprintf(stderr,
                 "trace_tool: %s is structurally valid but carries zero "
                 "probe records\n",
                 path.c_str());
    return 1;
  }
  return 0;
}

int CmdHead(const std::string& path, std::uint64_t limit) {
  trace::TraceReader reader{path};
  std::printf("%-12s %-10s %-16s %-16s %s\n", "time", "src_host", "src_addr",
              "dst", "delivery");
  std::uint64_t printed = 0;
  while (printed < limit) {
    const auto batch = reader.NextBatch();
    if (batch.empty()) break;
    for (const sim::ProbeEvent& event : batch) {
      std::printf("%-12.6f %-10u %-16s %-16s %.*s\n", event.time,
                  event.src_host, event.src_address.ToString().c_str(),
                  event.dst.ToString().c_str(),
                  static_cast<int>(topology::ToString(event.delivery).size()),
                  topology::ToString(event.delivery).data());
      if (++printed == limit) break;
    }
  }
  return 0;
}

int CmdReplay(int argc, char** argv) {
  const std::string metrics_out = bench::MetricsOutArg(argc, argv);
  std::string sensors_spec;
  std::uint64_t alert_threshold = 0;
  bool use_ims = false;
  std::string path;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sensors") == 0 && i + 1 < argc) {
      sensors_spec = argv[++i];
    } else if (std::strcmp(argv[i], "--ims") == 0) {
      use_ims = true;
    } else if (std::strcmp(argv[i], "--alert-threshold") == 0 && i + 1 < argc) {
      alert_threshold = std::strtoull(argv[++i], nullptr, 10);
    } else if (path.empty()) {
      path = argv[i];
    } else {
      return Usage();
    }
  }
  if (path.empty()) return Usage();

  telescope::SensorOptions options;
  options.alert_threshold = alert_threshold;
  telescope::Telescope sensors;
  sim::NullObserver null_observer;
  sim::ProbeObserver* sink = &null_observer;
  if (use_ims) {
    sensors = telescope::MakeImsTelescope(options);
    sink = &sensors;
  } else if (!sensors_spec.empty()) {
    const std::vector<net::Prefix> blocks = ParsePrefixList(sensors_spec);
    int index = 0;
    for (const net::Prefix& block : blocks) {
      sensors.AddSensor("replay" + std::to_string(index++), block, options);
    }
    sensors.Build();
    sink = &sensors;
  }

  const trace::ReplaySummary summary = trace::ReplayFile(path, *sink);
  std::printf("replayed %" PRIu64 " records (%" PRIu64 " blocks), %" PRIu64
              " delivered, time span [%.3f, %.3f] s\n",
              summary.records, summary.blocks, summary.delivered(),
              summary.first_time, summary.last_time);
  if (sink == &sensors) {
    for (std::size_t i = 0; i < sensors.size(); ++i) {
      const auto& sensor = sensors.sensor(static_cast<int>(i));
      std::printf("  %-12s %-18s probes %-10" PRIu64 " sources %-8zu",
                  sensor.label().c_str(), sensor.block().ToString().c_str(),
                  sensor.probe_count(), sensor.UniqueSourceCount());
      if (sensor.alerted()) {
        std::printf(" alert@%.3fs", *sensor.alert_time());
      }
      std::printf("\n");
    }
    sensors.PublishSensorMetrics();
  }
  bench::DumpMetrics(metrics_out, "trace_tool_replay");
  return 0;
}

int CmdUniformity(int argc, char** argv) {
  analysis::BlockHistogramOptions options;
  std::string path;
  std::vector<net::Prefix> blocks;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--unique-sources") == 0) {
      options.unique_sources = true;
    } else if (std::strcmp(argv[i], "--delivered-only") == 0) {
      options.delivered_only = true;
    } else if (path.empty()) {
      path = argv[i];
    } else {
      const auto prefix = net::Prefix::Parse(argv[i]);
      if (!prefix) {
        std::fprintf(stderr, "trace_tool: bad CIDR block \"%s\"\n", argv[i]);
        return 2;
      }
      blocks.push_back(*prefix);
    }
  }
  if (path.empty() || blocks.empty()) return Usage();

  const std::vector<net::Prefix> bins = ExpandToSlash24(blocks);
  const analysis::TraceUniformity result =
      analysis::AnalyzeTraceUniformity(path, bins, options);
  std::printf("%" PRIu64 " records, %" PRIu64 " binned into %zu /24s (%s)\n",
              result.records, result.binned, bins.size(),
              options.unique_sources ? "unique sources" : "probes");
  const analysis::UniformityReport& report = result.report;
  std::printf("chi2/dof      %.3f\n",
              report.chi_square_dof > 0
                  ? report.chi_square / report.chi_square_dof
                  : 0.0);
  std::printf("kl_divergence %.4f nats\n", report.kl_divergence);
  std::printf("gini          %.4f\n", report.gini);
  std::printf("peak_to_mean  %.2f\n", report.peak_to_mean);
  std::printf("half_mass     %.3f of bins hold 50%% of mass\n",
              report.half_mass_bin_fraction);
  std::printf("verdict       %s\n",
              report.LooksNonUniform() ? "NON-UNIFORM (hotspots)" : "uniform");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];
  try {
    if (command == "info") return CmdInfo(argv[2]);
    if (command == "validate") {
      const bool salvage = argc > 3 && std::strcmp(argv[3], "--salvage") == 0;
      return CmdValidate(argv[2], salvage);
    }
    if (command == "head") {
      const std::uint64_t limit =
          argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 10;
      return CmdHead(argv[2], limit);
    }
    if (command == "replay") return CmdReplay(argc, argv);
    if (command == "uniformity") return CmdUniformity(argc, argv);
  } catch (const trace::TraceError& error) {
    std::fprintf(stderr, "trace_tool: %s\n", error.what());
    return 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "trace_tool: %s\n", error.what());
    return 1;
  }
  return Usage();
}
