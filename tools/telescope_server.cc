// telescope_server — long-running telescope-as-a-service ingest daemon.
//
//   telescope_server [--port N] [--bind ADDR]
//                    [--sensors CIDR[,CIDR...] | --ims]
//                    [--alert-threshold N] [--trw LIVE_CIDR[,CIDR...]]
//                    [--prevalence] [--poller poll]
//                    [--drain-timeout SECONDS] [--metrics-out PATH]
//                    [--expect-fingerprint N]
//
// Accepts `hotspots.ingest.v1` streams (see EXPERIMENTS.md) from any
// number of concurrent feeds — telescope_load, or a future live capture
// relay — and folds every decoded probe into one shared telescope (+
// optional TRW gateway and content-prevalence detector) in global
// capture order, so its state matches an embedded run of the same
// stream bit for bit.  The same port answers HTTP/1.0 GETs:
//
//   /metrics        hotspots.metrics.v1 JSON snapshot (live)
//   /metrics.prom   Prometheus text exposition
//   /healthz        liveness probe
//
// --port 0 (the default) binds an ephemeral port; the chosen port is
// printed as "listening on port N" for harnesses to parse.  SIGTERM and
// SIGINT trigger a graceful drain: stop accepting, let in-flight feeds
// finish (bounded by --drain-timeout), fold everything queued, exit 0.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "detect/probe_stream.h"
#include "net/interval_set.h"
#include "net/prefix.h"
#include "serve/server.h"
#include "sim/observer.h"
#include "telescope/ims.h"
#include "telescope/telescope.h"

namespace {

using namespace hotspots;

serve::TelescopeServer* g_server = nullptr;

void HandleSignal(int /*sig*/) {
  if (g_server != nullptr) g_server->RequestShutdown();
}

int Usage() {
  std::fprintf(stderr,
               "usage: telescope_server [--port N] [--bind ADDR]\n"
               "  [--sensors CIDR[,CIDR...] | --ims] [--alert-threshold N]\n"
               "  [--trw LIVE_CIDR[,CIDR...]] [--prevalence]\n"
               "  [--poller poll] [--drain-timeout SECONDS]\n"
               "  [--metrics-out PATH] [--expect-fingerprint N]\n");
  return 2;
}

std::vector<net::Prefix> ParsePrefixList(const std::string& spec) {
  std::vector<net::Prefix> prefixes;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string one = spec.substr(start, comma - start);
    if (!one.empty()) {
      const auto prefix = net::Prefix::Parse(one);
      if (!prefix) {
        std::fprintf(stderr, "telescope_server: bad CIDR block \"%s\"\n",
                     one.c_str());
        std::exit(2);
      }
      prefixes.push_back(*prefix);
    }
    start = comma + 1;
  }
  return prefixes;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string metrics_out = bench::MetricsOutArg(argc, argv);
  serve::ServerOptions options;
  std::string sensors_spec;
  std::string trw_spec;
  std::uint64_t alert_threshold = 0;
  bool use_ims = false;
  bool use_prevalence = false;

  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "telescope_server: %s requires a value\n",
                     argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      options.port = static_cast<std::uint16_t>(std::strtoul(next(), nullptr,
                                                             10));
    } else if (std::strcmp(argv[i], "--bind") == 0) {
      options.bind_address = next();
    } else if (std::strcmp(argv[i], "--sensors") == 0) {
      sensors_spec = next();
    } else if (std::strcmp(argv[i], "--ims") == 0) {
      use_ims = true;
    } else if (std::strcmp(argv[i], "--alert-threshold") == 0) {
      alert_threshold = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--trw") == 0) {
      trw_spec = next();
    } else if (std::strcmp(argv[i], "--prevalence") == 0) {
      use_prevalence = true;
    } else if (std::strcmp(argv[i], "--poller") == 0) {
      options.force_poll = std::strcmp(next(), "poll") == 0;
    } else if (std::strcmp(argv[i], "--expect-fingerprint") == 0) {
      // Session admission: refuse any HELLO whose embedded trace header
      // carries a different scenario fingerprint (decimal u64).
      options.enforce_fingerprint = true;
      options.expected_fingerprint = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--drain-timeout") == 0) {
      const auto seconds = bench::ParseDouble(next());
      if (!seconds || *seconds <= 0.0) {
        std::fprintf(stderr, "telescope_server: bad --drain-timeout\n");
        return 2;
      }
      options.drain_timeout_seconds = *seconds;
    } else {
      return Usage();
    }
  }
  if (use_ims && !sensors_spec.empty()) return Usage();

  // The observer stack mirrors `trace_tool replay`: same telescope
  // construction, same publish call, so the daemon's /metrics gauges diff
  // byte-for-byte against a live or replayed run's sidecar.
  telescope::SensorOptions sensor_options;
  sensor_options.alert_threshold = alert_threshold;
  telescope::Telescope sensors;
  bool have_sensors = false;
  if (use_ims) {
    sensors = telescope::MakeImsTelescope(sensor_options);
    have_sensors = true;
  } else if (!sensors_spec.empty()) {
    int index = 0;
    for (const net::Prefix& block : ParsePrefixList(sensors_spec)) {
      sensors.AddSensor("replay" + std::to_string(index++), block,
                        sensor_options);
    }
    sensors.Build();
    have_sensors = true;
  }

  std::optional<detect::TrwGatewayObserver> trw;
  if (!trw_spec.empty()) {
    net::IntervalSet live_space;
    for (const net::Prefix& block : ParsePrefixList(trw_spec)) {
      live_space.Add(block);
    }
    live_space.Build();
    trw.emplace(std::move(live_space));
  }
  std::optional<detect::PrevalenceStreamObserver> prevalence;
  if (use_prevalence) prevalence.emplace();

  sim::TeeObserver tee;
  if (have_sensors) tee.Add(&sensors);
  if (trw) tee.Add(&*trw);
  if (prevalence) tee.Add(&*prevalence);
  if (tee.size() == 0) {
    std::fprintf(stderr,
                 "telescope_server: nothing to fold into — give --ims, "
                 "--sensors, --trw, or --prevalence\n");
    return 2;
  }
  tee.OnAttach();

  serve::TelescopeServer server{tee, options};
  if (have_sensors) {
    server.set_before_snapshot([&] { sensors.PublishSensorMetrics(); });
  }
  server.set_alert_probe([&] {
    if (have_sensors && sensors.AlertedCount() > 0) return true;
    if (trw && trw->first_alert_time().has_value()) return true;
    if (prevalence && prevalence->alert_time().has_value()) return true;
    return false;
  });

  try {
    server.Bind();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "telescope_server: %s\n", error.what());
    return 1;
  }
  g_server = &server;
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGPIPE, SIG_IGN);

  std::printf("telescope_server listening on port %u (poller %s)\n",
              server.port(), server.poller_name());
  std::fflush(stdout);

  server.Run();

  const serve::FoldPipeline& fold = server.fold();
  std::printf("drained: %llu records in %llu blocks folded, %llu sequence "
              "gaps, %llu duplicate blocks\n",
              static_cast<unsigned long long>(fold.records_folded()),
              static_cast<unsigned long long>(fold.blocks_folded()),
              static_cast<unsigned long long>(fold.sequence_gaps()),
              static_cast<unsigned long long>(fold.duplicate_blocks()));
  if (have_sensors) {
    for (std::size_t i = 0; i < sensors.size(); ++i) {
      const auto& sensor = sensors.sensor(static_cast<int>(i));
      std::printf("  %-12s probes %-10llu sources %-8zu",
                  sensor.label().c_str(),
                  static_cast<unsigned long long>(sensor.probe_count()),
                  sensor.UniqueSourceCount());
      if (sensor.alerted()) std::printf(" alert@%.3fs", *sensor.alert_time());
      std::printf("\n");
    }
    sensors.PublishSensorMetrics();
  }
  if (fold.alert_seen()) {
    std::printf("first alert %.6f s (wall) after serving began\n",
                fold.first_alert_wall_seconds());
  }
  bench::DumpMetrics(metrics_out, "telescope_server");
  return 0;
}
