#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "prng/lcg.h"
#include "prng/msvc_rand.h"
#include "prng/splitmix.h"
#include "prng/xoshiro.h"

namespace hotspots::prng {
namespace {

TEST(MsvcRandTest, MatchesKnownMicrosoftSequence) {
  // The canonical srand(1) sequence of the Microsoft C runtime.
  MsvcRand rand{1};
  const std::array<std::uint32_t, 10> expected = {
      41, 18467, 6334, 26500, 19169, 15724, 11478, 29358, 26962, 24464};
  for (const std::uint32_t value : expected) {
    EXPECT_EQ(rand.Next(), value);
  }
}

TEST(MsvcRandTest, OutputsAreFifteenBits) {
  MsvcRand rand{0xDEADBEEF};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LE(rand.Next(), MsvcRand::kRandMax);
  }
}

TEST(MsvcRandTest, NextModBoundsResult) {
  MsvcRand rand{42};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rand.NextMod(254), 254u);
  }
}

TEST(LcgTest, StepMatchesManualComputation) {
  const LcgParams params{214013, 2531011, 32};
  EXPECT_EQ(params.Step(1), 214013u * 1 + 2531011u);
  Lcg lcg{params, 1};
  EXPECT_EQ(lcg.Next(), 214013u * 1 + 2531011u);
}

TEST(LcgTest, ModulusMaskApplies) {
  const LcgParams params{5, 3, 8};  // mod 256
  EXPECT_EQ(params.Mask(), 0xFFu);
  Lcg lcg{params, 200};
  EXPECT_EQ(lcg.Next(), (5u * 200 + 3) & 0xFF);
}

TEST(LcgTest, RejectsBadModulusBits) {
  EXPECT_THROW((Lcg{LcgParams{5, 3, 0}, 1}), std::invalid_argument);
  EXPECT_THROW((Lcg{LcgParams{5, 3, 33}, 1}), std::invalid_argument);
}

TEST(SplitMixTest, DeterministicAndDistinct) {
  SplitMix64 a{7};
  SplitMix64 b{7};
  const auto first = a.Next();
  EXPECT_EQ(first, b.Next());
  EXPECT_NE(first, a.Next());
}

TEST(XoshiroTest, DeterministicForSeed) {
  Xoshiro256 a{123};
  Xoshiro256 b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(XoshiroTest, NextDoubleInUnitInterval) {
  Xoshiro256 rng{9};
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(XoshiroTest, UniformBelowRespectsBound) {
  Xoshiro256 rng{10};
  for (const std::uint32_t bound : {1u, 2u, 3u, 254u, 1000u, 1u << 30}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.UniformBelow(bound), bound);
    }
  }
}

TEST(XoshiroTest, UniformBelowIsRoughlyUniform) {
  Xoshiro256 rng{11};
  constexpr int kBuckets = 16;
  constexpr int kDraws = 160000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.UniformBelow(kBuckets)];
  }
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (const int c : counts) {
    EXPECT_NEAR(c, expected, 5 * std::sqrt(expected));
  }
}

TEST(XoshiroTest, BernoulliMatchesProbability) {
  Xoshiro256 rng{12};
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Bernoulli(0.15)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.15, 0.01);
}

TEST(XoshiroTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~std::uint64_t{0});
  Xoshiro256 rng{1};
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace hotspots::prng
