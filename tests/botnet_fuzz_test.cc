// Robustness sweep of the bot-command parser: random and adversarial
// inputs must never crash, and every successful parse must round-trip
// through FormatBotCommand → ParseBotCommand to an equivalent command.
#include <gtest/gtest.h>

#include <string>

#include "botnet/command.h"
#include "prng/xoshiro.h"

namespace hotspots::botnet {
namespace {

TEST(BotCommandFuzzTest, RandomPrintableGarbageNeverCrashes) {
  prng::Xoshiro256 rng{0xF022};
  int parsed = 0;
  for (int i = 0; i < 30'000; ++i) {
    std::string line;
    const int length = static_cast<int>(rng.UniformBelow(60));
    for (int c = 0; c < length; ++c) {
      line.push_back(static_cast<char>(' ' + rng.UniformBelow(95)));
    }
    if (ParseBotCommand(line).has_value()) ++parsed;
  }
  // Random printable noise essentially never forms a valid command.
  EXPECT_LT(parsed, 3);
}

TEST(BotCommandFuzzTest, MutatedRealCommandsNeverCrash) {
  const char* seeds[] = {
      "ipscan 194.s.s.s dcom2 -s", "advscan dcass x.x.x",
      ".advscan lsass b",          "ipscan s.s mssql2000 -s",
      "!ipscan 128.s.s.s dcom2 -s"};
  prng::Xoshiro256 rng{0xF023};
  for (int i = 0; i < 30'000; ++i) {
    std::string line = seeds[rng.UniformBelow(std::size(seeds))];
    // Apply 1–3 random byte mutations (substitute / delete / duplicate).
    const int mutations = 1 + static_cast<int>(rng.UniformBelow(3));
    for (int m = 0; m < mutations && !line.empty(); ++m) {
      const auto pos = rng.UniformBelow(static_cast<std::uint32_t>(line.size()));
      switch (rng.UniformBelow(3)) {
        case 0:
          line[pos] = static_cast<char>(' ' + rng.UniformBelow(95));
          break;
        case 1:
          line.erase(pos, 1);
          break;
        default:
          line.insert(pos, 1, line[pos]);
          break;
      }
    }
    const auto command = ParseBotCommand(line);
    if (!command) continue;
    // Anything that parses must round-trip to an equivalent command.
    const auto reparsed = ParseBotCommand(FormatBotCommand(*command));
    ASSERT_TRUE(reparsed.has_value()) << line;
    EXPECT_EQ(reparsed->dialect, command->dialect);
    EXPECT_EQ(reparsed->module, command->module);
    EXPECT_EQ(reparsed->TargetPrefix(), command->TargetPrefix());
    EXPECT_EQ(reparsed->flags, command->flags);
  }
}

TEST(BotCommandFuzzTest, PathologicalInputs) {
  const char* inputs[] = {
      "",
      " ",
      "\t\t\t",
      "advscan",
      "ipscan  ",
      "advscan " ,
      ".",
      "!",
      "advscan dcom2 ................",
      "ipscan 1.2.3.4.5.6.7.8 dcom2",
      "advscan dcom2 255.255.255.255",
      "ipscan 999999999999999999.s dcom2",
      "advscan dcom2 -s -s -s -s -s -s -s -s -s -s -s -s -s -s -s -s",
      "ipscan -1.s dcom2",
      "advscan advscan advscan",
      "ipscan ipscan ipscan ipscan",
  };
  for (const char* input : inputs) {
    EXPECT_NO_THROW((void)ParseBotCommand(input)) << input;
  }
  // A few of these are actually valid; spot-check the clearly-valid one.
  const auto valid = ParseBotCommand("advscan dcom2 255.255.255.255");
  ASSERT_TRUE(valid.has_value());
  EXPECT_EQ(valid->TargetPrefix().length(), 32);
}

TEST(BotCommandFuzzTest, VeryLongLinesHandled) {
  std::string long_line = "ipscan ";
  long_line.append(100'000, 's');
  EXPECT_NO_THROW((void)ParseBotCommand(long_line));
  long_line = "advscan dcom2 ";
  for (int i = 0; i < 50'000; ++i) long_line += "1.";
  EXPECT_NO_THROW((void)ParseBotCommand(long_line));
}

}  // namespace
}  // namespace hotspots::botnet
