// Tests of the engine's host-lifecycle extensions: patching (vulnerable →
// immune), disinfection (infected → immune) and infection latency.
#include <gtest/gtest.h>

#include "sim/engine.h"
#include "worms/hitlist.h"
#include "worms/uniform.h"

namespace hotspots::sim {
namespace {

using net::Ipv4;
using net::Prefix;

class LifecycleTest : public ::testing::Test {
 protected:
  void BuildDensePopulation(int hosts) {
    for (int i = 0; i < hosts; ++i) {
      population_.AddHost(Ipv4{60, 5, static_cast<std::uint8_t>(i / 250),
                               static_cast<std::uint8_t>(1 + i % 250)});
    }
    population_.Build(nullptr);
  }

  Population population_;
  topology::Reachability reachability_{nullptr, nullptr, nullptr, 0.0};
  worms::HitListWorm worm_{{Prefix{Ipv4{60, 5, 0, 0}, 16}}};
};

TEST_F(LifecycleTest, RejectsNegativeRates) {
  BuildDensePopulation(10);
  EngineConfig bad;
  bad.patch_rate = -1.0;
  EXPECT_THROW((Engine{population_, worm_, reachability_, nullptr, bad}),
               std::invalid_argument);
  bad = EngineConfig{};
  bad.disinfect_rate = -0.1;
  EXPECT_THROW((Engine{population_, worm_, reachability_, nullptr, bad}),
               std::invalid_argument);
  bad = EngineConfig{};
  bad.infection_latency = -2.0;
  EXPECT_THROW((Engine{population_, worm_, reachability_, nullptr, bad}),
               std::invalid_argument);
}

TEST_F(LifecycleTest, PatchingMovesHostsToImmune) {
  BuildDensePopulation(1000);
  EngineConfig config;
  config.end_time = 50.0;
  config.patch_rate = 0.01;  // 1%/s of the vulnerable population.
  Engine engine{population_, worm_, reachability_, nullptr, config};
  engine.SeedRandomInfections(1);
  const RunResult result = engine.Run();
  // ~40% patched over 50 s (1 - e^-0.5), minus those the epidemic reaches
  // first — comfortably in the hundreds either way.
  EXPECT_GT(result.final_immune, 100u);
  EXPECT_EQ(population_.CountInState(HostState::kImmune),
            result.final_immune);
  // Immune hosts are never infected.
  EXPECT_EQ(result.final_infected +
                population_.CountInState(HostState::kVulnerable) +
                result.final_immune,
            1000u);
}

TEST_F(LifecycleTest, PatchingSlowsTheEpidemic) {
  BuildDensePopulation(800);
  auto run_with_patch_rate = [&](double rate) {
    population_.ResetAllToVulnerable();
    EngineConfig config;
    config.end_time = 300.0;
    config.patch_rate = rate;
    config.seed = 99;
    Engine engine{population_, worm_, reachability_, nullptr, config};
    engine.SeedRandomInfections(5);
    return engine.Run().final_infected;
  };
  const std::uint64_t unpatched = run_with_patch_rate(0.0);
  const std::uint64_t patched = run_with_patch_rate(0.02);
  EXPECT_LT(patched, unpatched);
}

TEST_F(LifecycleTest, DisinfectionStopsScanners) {
  BuildDensePopulation(100);
  EngineConfig config;
  config.end_time = 400.0;
  // Aggressive cleanup, no growth possible: seed everyone, disinfect fast.
  config.disinfect_rate = 0.05;
  config.stop_at_infected_fraction = 2.0;
  Engine engine{population_, worm_, reachability_, nullptr, config};
  for (HostId id = 0; id < 100; ++id) engine.SeedInfection(id);
  const RunResult result = engine.Run();
  // Everyone was ever infected; most are cleaned by t=400 (E[survive] =
  // e^-20 ≈ 0).
  EXPECT_EQ(result.final_infected, 100u);
  EXPECT_GT(result.final_immune, 90u);
  EXPECT_EQ(population_.CountInState(HostState::kImmune),
            result.final_immune);
  // Once every scanner is dead the run ends early.
  EXPECT_LT(result.end_time, 400.0);
}

TEST_F(LifecycleTest, DisinfectedHostsAreNotReinfected) {
  BuildDensePopulation(300);
  EngineConfig config;
  config.end_time = 500.0;
  config.disinfect_rate = 0.01;
  config.stop_at_infected_fraction = 2.0;
  Engine engine{population_, worm_, reachability_, nullptr, config};
  engine.SeedRandomInfections(10);
  const RunResult result = engine.Run();
  // ever-infected + still-vulnerable == population, and immune ≤ infected:
  // every immune host came from the infected pool (no patching here).
  EXPECT_LE(result.final_immune, result.final_infected);
  EXPECT_EQ(result.final_infected +
                population_.CountInState(HostState::kVulnerable),
            300u);
}

TEST_F(LifecycleTest, InfectionLatencyDelaysTakeoff) {
  BuildDensePopulation(600);
  auto time_to_half = [&](double latency) {
    population_.ResetAllToVulnerable();
    EngineConfig config;
    config.end_time = 2000.0;
    config.infection_latency = latency;
    config.stop_at_infected_fraction = 0.5;
    config.seed = 7;
    Engine engine{population_, worm_, reachability_, nullptr, config};
    engine.SeedRandomInfections(5);
    return engine.Run().end_time;
  };
  const double fast = time_to_half(0.0);
  const double slow = time_to_half(30.0);
  EXPECT_GT(slow, fast + 25.0)
      << "a 30 s exploit latency must delay the epidemic";
}

TEST_F(LifecycleTest, LatentHostsDoNotScan) {
  BuildDensePopulation(50);
  EngineConfig config;
  config.end_time = 10.0;
  config.infection_latency = 100.0;  // Longer than the whole run.
  config.stop_at_infected_fraction = 2.0;
  Engine engine{population_, worm_, reachability_, nullptr, config};
  engine.SeedInfection(0);
  const RunResult result = engine.Run();
  EXPECT_EQ(result.total_probes, 0u);
  EXPECT_EQ(result.final_infected, 1u);
}

TEST_F(LifecycleTest, BandwidthCapThrottlesTheOutbreak) {
  BuildDensePopulation(600);
  auto run_with_capacity = [&](double capacity) {
    population_.ResetAllToVulnerable();
    EngineConfig config;
    config.end_time = 1500.0;
    config.stop_at_infected_fraction = 0.9;
    config.global_bandwidth_probes_per_sec = capacity;
    config.seed = 13;
    Engine engine{population_, worm_, reachability_, nullptr, config};
    engine.SeedRandomInfections(5);
    return engine.Run();
  };
  const RunResult unconstrained = run_with_capacity(0.0);
  const RunResult congested = run_with_capacity(200.0);  // 20 hosts' worth.
  // The congested outbreak reaches 90% later (or not at all).
  EXPECT_GT(congested.end_time, unconstrained.end_time);
  // Probe emission respects the cap: total ≤ capacity × duration (+slack).
  EXPECT_LE(static_cast<double>(congested.total_probes),
            200.0 * congested.end_time + 600.0);
}

TEST_F(LifecycleTest, BandwidthCapRejectsNegative) {
  BuildDensePopulation(5);
  EngineConfig bad;
  bad.global_bandwidth_probes_per_sec = -5.0;
  EXPECT_THROW((Engine{population_, worm_, reachability_, nullptr, bad}),
               std::invalid_argument);
}

TEST_F(LifecycleTest, HostDisinfectedWhileLatentNeverScans) {
  BuildDensePopulation(20);
  EngineConfig config;
  config.end_time = 200.0;
  config.infection_latency = 50.0;
  config.disinfect_rate = 10.0;  // Cleans everyone almost immediately.
  config.stop_at_infected_fraction = 2.0;
  Engine engine{population_, worm_, reachability_, nullptr, config};
  for (HostId id = 0; id < 20; ++id) engine.SeedInfection(id);
  const RunResult result = engine.Run();
  // With such an aggressive cleanup, (almost) no probes escape; the key
  // invariant: state bookkeeping stays consistent.
  EXPECT_EQ(result.final_infected, 20u);
  EXPECT_EQ(population_.CountInState(HostState::kVulnerable), 0u);
}

TEST_F(LifecycleTest, StopFractionIsNotTruncatedByRoundoff) {
  // 0.58 × 50 = 28.999999999999996 in floating point; a truncating cast
  // would stop the run after the 28th infection instead of the 29th.
  BuildDensePopulation(50);
  EngineConfig config;
  config.end_time = 50'000.0;
  config.stop_at_infected_fraction = 0.58;
  config.seed = 1;
  Engine engine{population_, worm_, reachability_, nullptr, config};
  engine.SeedInfection(0);
  const RunResult result = engine.Run();
  EXPECT_GE(result.final_infected, 29u);
}

TEST_F(LifecycleTest, PatchCreditIsNotBurnedByFailedSamplingRounds) {
  // One vulnerable host hidden in a population that is 99.99% infected:
  // most 1024-attempt rejection-sampling rounds find nobody.  A round that
  // fails must not consume the patch credit — the credit trickles in at
  // 0.001/step, so burning it on misses would leave the host unpatched for
  // essentially the whole run.
  BuildDensePopulation(8000);
  EngineConfig config;
  config.end_time = 200.0;
  config.patch_rate = 0.01;
  config.infection_latency = 1e9;  // Seeds stay latent: no scanning at all.
  config.seed = 3;
  Engine engine{population_, worm_, reachability_, nullptr, config};
  for (HostId id = 0; id + 1 < 8000; ++id) engine.SeedInfection(id);
  const RunResult result = engine.Run();
  EXPECT_EQ(result.final_immune, 1u);
  EXPECT_EQ(population_.CountInState(HostState::kVulnerable), 0u);
  EXPECT_EQ(result.total_probes, 0u);
}

}  // namespace
}  // namespace hotspots::sim
