// Pins the Chrome trace-event export contract: balanced B/E pairs emitted
// in nesting order with per-tid monotone timestamps, thread_name metadata
// per lane, JSON escaping of hostile span names, and the top-level schema /
// drop-accounting keys ci.sh's validator reads.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "obs/timeline_export.h"
#include "obs/trace_span.h"

namespace hotspots::obs {
namespace {

/// Builds a timeline by hand so tests control every timestamp exactly.
Timeline MakeTimeline(std::vector<std::string> names,
                      std::vector<std::string> lanes,
                      std::vector<TimelineSpan> spans) {
  Timeline timeline;
  timeline.names = std::move(names);
  timeline.lanes = std::move(lanes);
  timeline.spans = std::move(spans);
  std::uint64_t start = ~0ull;
  for (const TimelineSpan& span : timeline.spans) {
    start = std::min(start, span.begin_ns);
  }
  timeline.start_ns = timeline.spans.empty() ? 0 : start;
  return timeline;
}

std::size_t CountOccurrences(const std::string& text,
                             const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(ObsTimelineTest, EmitsSchemaDropsAndBalancedPairs) {
  const Timeline timeline = MakeTimeline(
      {"work"}, {"t0"},
      {{1000, 3000, 0, 0}, {4000, 6000, 0, 0}});
  const std::string json = TimelineToChromeTrace(timeline);
  EXPECT_NE(json.find("\"schema\":\"hotspots.timeline.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);
  EXPECT_NE(json.find("\"start_ns\":1000"), std::string::npos);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"B\""), 2u);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"E\""), 2u);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"M\""), 1u);
}

TEST(ObsTimelineTest, NestedSpansOpenParentFirstCloseChildFirst) {
  // Drain order is commit order (child first); export must still emit
  // B(outer) B(inner) E E.
  const Timeline timeline = MakeTimeline(
      {"inner", "outer"}, {"t0"},
      {{2000, 3000, 0, 0}, {1000, 4000, 1, 0}});
  const std::string json = TimelineToChromeTrace(timeline);
  const std::size_t outer_b = json.find("\"name\":\"outer\",\"ph\":\"B\"");
  const std::size_t inner_b = json.find("\"name\":\"inner\",\"ph\":\"B\"");
  ASSERT_NE(outer_b, std::string::npos);
  ASSERT_NE(inner_b, std::string::npos);
  EXPECT_LT(outer_b, inner_b);
  // Inner closes at ts 2.000 µs (relative), outer at 3.000 µs — and the
  // inner E must precede the outer E in the stream.
  const std::size_t inner_e = json.find("\"ph\":\"E\",\"ts\":2.000");
  const std::size_t outer_e = json.find("\"ph\":\"E\",\"ts\":3.000");
  ASSERT_NE(inner_e, std::string::npos);
  ASSERT_NE(outer_e, std::string::npos);
  EXPECT_LT(inner_b, inner_e);
  EXPECT_LT(inner_e, outer_e);
}

TEST(ObsTimelineTest, SequentialSpansCloseBeforeTheNextOpens) {
  const Timeline timeline = MakeTimeline(
      {"first", "second"}, {"t0"},
      {{1000, 2000, 0, 0}, {2000, 3000, 1, 0}});
  const std::string json = TimelineToChromeTrace(timeline);
  const std::size_t first_b = json.find("\"name\":\"first\",\"ph\":\"B\"");
  const std::size_t first_e = json.find("\"ph\":\"E\"");
  const std::size_t second_b = json.find("\"name\":\"second\",\"ph\":\"B\"");
  ASSERT_NE(first_b, std::string::npos);
  ASSERT_NE(first_e, std::string::npos);
  ASSERT_NE(second_b, std::string::npos);
  EXPECT_LT(first_b, first_e);
  EXPECT_LT(first_e, second_b);
}

TEST(ObsTimelineTest, LanesBecomeThreadNameMetadata) {
  const Timeline timeline = MakeTimeline(
      {"work"}, {"shard-0", "trace-writer"},
      {{1000, 2000, 0, 0}, {1500, 2500, 0, 1}});
  const std::string json = TimelineToChromeTrace(timeline);
  EXPECT_NE(json.find("\"name\":\"thread_name\",\"ph\":\"M\""),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"shard-0\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"trace-writer\"}"),
            std::string::npos);
  // A tid beyond the lane table falls back to "t<tid>".
  const Timeline unlabelled =
      MakeTimeline({"work"}, {}, {{1000, 2000, 0, 7}});
  EXPECT_NE(TimelineToChromeTrace(unlabelled).find("\"args\":{\"name\":\"t7\"}"),
            std::string::npos);
}

TEST(ObsTimelineTest, HostileNamesAreJsonEscaped) {
  const Timeline timeline = MakeTimeline(
      {"we\"ird\nname"}, {"lane\\0"}, {{1000, 2000, 0, 0}});
  const std::string json = TimelineToChromeTrace(timeline);
  EXPECT_NE(json.find(R"("name":"we\"ird\nname")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"lane\\0")"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos) << "raw newline leaked";
}

TEST(ObsTimelineTest, DroppedCountSurfacesInDocument) {
  Timeline timeline = MakeTimeline({"work"}, {"t0"}, {{1000, 2000, 0, 0}});
  timeline.dropped = 42;
  EXPECT_NE(TimelineToChromeTrace(timeline).find("\"dropped\":42"),
            std::string::npos);
}

TEST(ObsTimelineTest, TimestampsAreMonotonePerTidEvenWithAnomalies) {
  // A child whose recorded end exceeds its parent's (clock-step anomaly)
  // must still export with non-decreasing per-tid timestamps.
  const Timeline timeline = MakeTimeline(
      {"parent", "child"}, {"t0"},
      {{1000, 3000, 0, 0}, {2000, 5000, 1, 0}});
  const std::string json = TimelineToChromeTrace(timeline);
  // Walk the ts values in emission order and check monotonicity.
  double last = -1.0;
  for (std::size_t pos = json.find("\"ts\":"); pos != std::string::npos;
       pos = json.find("\"ts\":", pos + 5)) {
    const double ts = std::stod(json.substr(pos + 5));
    if (json.compare(pos - 9, 8, "\"ph\":\"M\"") != 0) {
      EXPECT_GE(ts, last) << "timestamp regressed at offset " << pos;
      last = ts;
    }
  }
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"B\""),
            CountOccurrences(json, "\"ph\":\"E\""));
}

TEST(ObsTimelineTest, RoundTripFromCollectorExportsEveryLane) {
  SetTracingForTesting(1);
  auto& collector = SpanCollector::Global();
  collector.ResetForTesting();
  const std::uint32_t id = InternSpanName("export.round_trip");
  { TraceSpan span{id}; }
  const Timeline timeline = collector.TakeTimeline();
  ASSERT_EQ(timeline.spans.size(), 1u);
  const std::string json = TimelineToChromeTrace(timeline);
  EXPECT_NE(json.find("\"name\":\"export.round_trip\",\"ph\":\"B\""),
            std::string::npos);
  collector.ResetForTesting();
  SetTracingForTesting(-1);
}

}  // namespace
}  // namespace hotspots::obs
