// Probe-rate accounting: the engine must emit scan_rate probes per second
// per infected host regardless of the step size, including fractional
// credit configurations.
#include <gtest/gtest.h>

#include "sim/engine.h"
#include "worms/uniform.h"

namespace hotspots::sim {
namespace {

using net::Ipv4;

class RateTest : public ::testing::TestWithParam<std::pair<double, double>> {
 protected:
  Population population_;
  topology::Reachability reachability_{nullptr, nullptr, nullptr, 0.0};
};

TEST_P(RateTest, TotalProbesMatchRateTimesTime) {
  const auto [scan_rate, dt] = GetParam();
  constexpr int kHosts = 20;
  for (int i = 0; i < kHosts; ++i) {
    population_.AddHost(Ipv4{60, 1, 0, static_cast<std::uint8_t>(i + 1)});
  }
  population_.Build(nullptr);

  worms::UniformWorm worm;
  EngineConfig config;
  config.scan_rate = scan_rate;
  config.dt = dt;
  config.end_time = 100.0;
  config.stop_at_infected_fraction = 2.0;  // Observational.
  Engine engine{population_, worm, reachability_, nullptr, config};
  for (HostId id = 0; id < kHosts; ++id) engine.SeedInfection(id);
  const RunResult result = engine.Run();

  const double expected = scan_rate * 100.0 * kHosts;
  // Fractional credit rounds within one probe per host per step.
  EXPECT_NEAR(static_cast<double>(result.total_probes), expected,
              kHosts * (1.0 + scan_rate * dt));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RateTest,
    ::testing::Values(std::make_pair(10.0, 0.0),   // Default dt = 1/rate.
                      std::make_pair(10.0, 0.05),  // Half-probe credit.
                      std::make_pair(10.0, 0.3),   // 3 probes per step.
                      std::make_pair(2.5, 0.1),    // Fractional per step.
                      std::make_pair(1.0, 1.0),
                      std::make_pair(7.0, 0.07)));

TEST(SamplingTest, StepsLargerThanIntervalEmitEveryDueSample) {
  Population population;
  population.AddHost(Ipv4{60, 1, 0, 1});
  population.Build(nullptr);
  worms::UniformWorm worm;
  topology::Reachability reachability{nullptr, nullptr, nullptr, 0.0};
  EngineConfig config;
  config.scan_rate = 10.0;
  config.dt = 2.5;  // 25× the sampling interval.
  config.sample_interval = 1.0;
  config.end_time = 10.0;
  config.stop_at_infected_fraction = 2.0;
  Engine engine{population, worm, reachability, nullptr, config};
  engine.SeedInfection(0);
  const RunResult result = engine.Run();

  // Steps run at t = 0, 2.5, 5, 7.5; every sample scheduled at or before
  // each step must appear, at its *scheduled* time — samples 0..7 — plus
  // the final end-of-run point.  A sampler that emits at most one point
  // per step would skip whole intervals here.
  ASSERT_EQ(result.series.size(), 9u);
  for (std::size_t k = 0; k + 1 < result.series.size(); ++k) {
    EXPECT_EQ(result.series[k].time, static_cast<double>(k));
  }
  EXPECT_EQ(result.series.back().time, 10.0);
}

TEST(SamplingTest, SampleTimesDoNotDriftOverLongRuns) {
  Population population;
  population.AddHost(Ipv4{60, 1, 0, 1});
  population.Build(nullptr);
  worms::UniformWorm worm;
  topology::Reachability reachability{nullptr, nullptr, nullptr, 0.0};
  EngineConfig config;
  config.scan_rate = 10.0;  // dt = sample_interval = 0.1: one sample/step.
  config.sample_interval = 0.1;
  config.end_time = 500.0;
  config.stop_at_infected_fraction = 2.0;
  Engine engine{population, worm, reachability, nullptr, config};
  engine.SeedInfection(0);
  const RunResult result = engine.Run();

  // 5000 steps × one scheduled sample each, plus the final point.  Every
  // scheduled time must be *exactly* k·interval: a floating-point
  // accumulator (time += dt, next += interval) piles up round-off over
  // thousands of steps and both drifts the times and eventually drops or
  // doubles samples.
  ASSERT_EQ(result.series.size(), 5001u);
  for (std::size_t k = 0; k + 1 < result.series.size(); ++k) {
    EXPECT_EQ(result.series[k].time, static_cast<double>(k) * 0.1)
        << "sample " << k;
  }
  // Samples are cumulative and monotone.
  for (std::size_t k = 1; k < result.series.size(); ++k) {
    EXPECT_GE(result.series[k].probes, result.series[k - 1].probes);
  }
}

TEST(RateEdgeTest, CreditNeverLosesProbesAcrossManySteps) {
  Population population;
  population.AddHost(Ipv4{60, 1, 0, 1});
  population.Build(nullptr);
  worms::UniformWorm worm;
  topology::Reachability reachability{nullptr, nullptr, nullptr, 0.0};
  EngineConfig config;
  config.scan_rate = 3.0;
  config.dt = 0.1;  // 0.3 probes of credit per step.
  config.end_time = 1000.0;
  config.stop_at_infected_fraction = 2.0;
  Engine engine{population, worm, reachability, nullptr, config};
  engine.SeedInfection(0);
  const RunResult result = engine.Run();
  EXPECT_NEAR(static_cast<double>(result.total_probes), 3.0 * 1000.0, 4.0);
}

}  // namespace
}  // namespace hotspots::sim
