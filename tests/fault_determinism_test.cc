// Determinism guarantees of the fault layer — the properties that make
// fault-injected experiments trustworthy:
//
//   1. an *empty* schedule is bit-identical to no fault layer at all
//      (attaching the machinery costs nothing and changes nothing);
//   2. identical (engine seed, schedule) pairs reproduce bit-identical
//      outcomes, including every outage/loss counter;
//   3. the schedule seed actually matters (different fault streams).
#include <gtest/gtest.h>

#include <vector>

#include "core/detection_study.h"
#include "core/placement.h"
#include "core/scenario.h"
#include "fault/schedule.h"
#include "worms/hitlist.h"

namespace hotspots::core {
namespace {

class FaultDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusteredPopulationConfig config;
    config.total_hosts = 6000;
    config.slash8_clusters = 5;
    config.nonempty_slash16s = 40;
    config.seed = 23;
    ScenarioBuilder builder;
    scenario_ = builder.BuildClustered(config);
    sensors_ = PlaceSensorPerCluster16(scenario_, rng_);
    selection_ = GreedyHitList(scenario_, 40);
  }

  DetectionStudyConfig BaseConfig() const {
    DetectionStudyConfig config;
    config.engine.scan_rate = 10.0;
    config.engine.end_time = 400.0;
    config.engine.seed = 99;
    config.seed_infections = 10;
    return config;
  }

  DetectionOutcome Run(const DetectionStudyConfig& config) {
    worms::HitListWorm worm{selection_.prefixes};
    return RunDetectionStudy(scenario_, worm, sensors_, config);
  }

  static void ExpectIdentical(const DetectionOutcome& a,
                              const DetectionOutcome& b) {
    EXPECT_EQ(a.run.total_probes, b.run.total_probes);
    EXPECT_EQ(a.run.final_infected, b.run.final_infected);
    EXPECT_EQ(a.run.delivery_counts, b.run.delivery_counts);
    EXPECT_EQ(a.run.fault_injected_drops, b.run.fault_injected_drops);
    EXPECT_EQ(a.run.fault_duplicates, b.run.fault_duplicates);
    EXPECT_EQ(a.run.end_time, b.run.end_time);
    EXPECT_EQ(a.alerted_sensors, b.alerted_sensors);
    EXPECT_EQ(a.alert_times, b.alert_times);
    EXPECT_EQ(a.outage_missed_probes, b.outage_missed_probes);
    ASSERT_EQ(a.run.series.size(), b.run.series.size());
    for (std::size_t i = 0; i < a.run.series.size(); ++i) {
      EXPECT_EQ(a.run.series[i].infected, b.run.series[i].infected);
      EXPECT_EQ(a.run.series[i].probes, b.run.series[i].probes);
    }
  }

  Scenario scenario_;
  prng::Xoshiro256 rng_{31};
  std::vector<net::Prefix> sensors_;
  HitListSelection selection_;
};

TEST_F(FaultDeterminismTest, EmptyScheduleIsBitIdenticalToNoFaultLayer) {
  const DetectionOutcome bare = Run(BaseConfig());

  fault::FaultSchedule empty;
  ASSERT_TRUE(empty.empty());
  DetectionStudyConfig with_layer = BaseConfig();
  with_layer.faults = &empty;
  const DetectionOutcome layered = Run(with_layer);

  ExpectIdentical(bare, layered);
  EXPECT_EQ(layered.run.fault_injected_drops, 0u);
  EXPECT_EQ(layered.run.fault_duplicates, 0u);
  EXPECT_EQ(layered.outage_missed_probes, 0u);
}

TEST_F(FaultDeterminismTest, SameSeedAndScheduleReproduceExactly) {
  fault::FaultSchedule schedule = fault::ParseFaultSpec(
      "seed:0xD0;outages:0.4:400;loss:0.02;dup:0.01");
  DetectionStudyConfig config = BaseConfig();
  config.faults = &schedule;
  const DetectionOutcome first = Run(config);
  const DetectionOutcome second = Run(config);
  ExpectIdentical(first, second);
  // The schedule actually did something, so the reproducibility above is
  // exercised on a non-trivial fault pattern.
  EXPECT_GT(first.run.fault_injected_drops, 0u);
  EXPECT_GT(first.run.fault_duplicates, 0u);
  EXPECT_GT(first.outage_missed_probes, 0u);
}

TEST_F(FaultDeterminismTest, OutagesNeverPerturbTheOutbreak) {
  const DetectionOutcome bare = Run(BaseConfig());
  fault::FaultSchedule schedule = fault::ParseFaultSpec("outages:0.5:400");
  DetectionStudyConfig config = BaseConfig();
  config.faults = &schedule;
  const DetectionOutcome outaged = Run(config);
  // Outages drop what sensors *record*, never what the worm *sends*.
  EXPECT_EQ(bare.run.total_probes, outaged.run.total_probes);
  EXPECT_EQ(bare.run.final_infected, outaged.run.final_infected);
  EXPECT_EQ(bare.run.delivery_counts, outaged.run.delivery_counts);
  EXPECT_GT(outaged.outage_missed_probes, 0u);
  // A downed sensor can only see *less*, never different traffic earlier:
  // every alert time is at or after the fault-free one.
  EXPECT_LE(outaged.alert_times.size(), bare.alert_times.size());
}

TEST_F(FaultDeterminismTest, ScheduleSeedSelectsTheFaultStream) {
  fault::FaultSchedule one = fault::ParseFaultSpec("seed:1;loss:0.05");
  fault::FaultSchedule two = fault::ParseFaultSpec("seed:2;loss:0.05");
  DetectionStudyConfig config = BaseConfig();
  config.faults = &one;
  const DetectionOutcome first = Run(config);
  config.faults = &two;
  const DetectionOutcome second = Run(config);
  // Same engine seed, same rates — but the schedule-private streams differ,
  // so the injected-loss pattern (and its knock-on infections) differ.
  EXPECT_GT(first.run.fault_injected_drops, 0u);
  EXPECT_GT(second.run.fault_injected_drops, 0u);
  EXPECT_NE(first.run.fault_injected_drops, second.run.fault_injected_drops);
}

TEST_F(FaultDeterminismTest, DuplicateAccountingInvariant) {
  fault::FaultSchedule schedule = fault::ParseFaultSpec("dup:0.25");
  DetectionStudyConfig config = BaseConfig();
  config.faults = &schedule;
  const DetectionOutcome outcome = Run(config);
  ASSERT_GT(outcome.run.fault_duplicates, 0u);
  // delivery_counts tallies observer-visible events: its sum exceeds
  // total_probes by exactly the duplicate count.
  std::uint64_t events = 0;
  for (const auto count : outcome.run.delivery_counts) events += count;
  EXPECT_EQ(events, outcome.run.total_probes + outcome.run.fault_duplicates);
}

}  // namespace
}  // namespace hotspots::core
