// Determinism guarantees of the fault layer — the properties that make
// fault-injected experiments trustworthy:
//
//   1. an *empty* schedule is bit-identical to no fault layer at all
//      (attaching the machinery costs nothing and changes nothing);
//   2. identical (engine seed, schedule) pairs reproduce bit-identical
//      outcomes, including every outage/loss counter;
//   3. the schedule seed actually matters (different fault streams).
#include <gtest/gtest.h>

#include <vector>

#include "core/detection_study.h"
#include "core/placement.h"
#include "core/scenario.h"
#include "fault/schedule.h"
#include "worms/hitlist.h"

namespace hotspots::core {
namespace {

class FaultDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusteredPopulationConfig config;
    config.total_hosts = 6000;
    config.slash8_clusters = 5;
    config.nonempty_slash16s = 40;
    config.seed = 23;
    ScenarioBuilder builder;
    scenario_ = builder.BuildClustered(config);
    sensors_ = PlaceSensorPerCluster16(scenario_, rng_);
    selection_ = GreedyHitList(scenario_, 40);
  }

  DetectionStudyConfig BaseConfig() const {
    DetectionStudyConfig config;
    config.engine.scan_rate = 10.0;
    config.engine.end_time = 400.0;
    config.engine.seed = 99;
    config.seed_infections = 10;
    return config;
  }

  DetectionOutcome Run(const DetectionStudyConfig& config) {
    worms::HitListWorm worm{selection_.prefixes};
    return RunDetectionStudy(scenario_, worm, sensors_, config);
  }

  static void ExpectIdentical(const DetectionOutcome& a,
                              const DetectionOutcome& b) {
    EXPECT_EQ(a.run.total_probes, b.run.total_probes);
    EXPECT_EQ(a.run.final_infected, b.run.final_infected);
    EXPECT_EQ(a.run.delivery_counts, b.run.delivery_counts);
    EXPECT_EQ(a.run.fault_injected_drops, b.run.fault_injected_drops);
    EXPECT_EQ(a.run.fault_duplicates, b.run.fault_duplicates);
    EXPECT_EQ(a.run.end_time, b.run.end_time);
    EXPECT_EQ(a.alerted_sensors, b.alerted_sensors);
    EXPECT_EQ(a.alert_times, b.alert_times);
    EXPECT_EQ(a.outage_missed_probes, b.outage_missed_probes);
    ASSERT_EQ(a.run.series.size(), b.run.series.size());
    for (std::size_t i = 0; i < a.run.series.size(); ++i) {
      EXPECT_EQ(a.run.series[i].infected, b.run.series[i].infected);
      EXPECT_EQ(a.run.series[i].probes, b.run.series[i].probes);
    }
  }

  Scenario scenario_;
  prng::Xoshiro256 rng_{31};
  std::vector<net::Prefix> sensors_;
  HitListSelection selection_;
};

TEST_F(FaultDeterminismTest, EmptyScheduleIsBitIdenticalToNoFaultLayer) {
  const DetectionOutcome bare = Run(BaseConfig());

  fault::FaultSchedule empty;
  ASSERT_TRUE(empty.empty());
  DetectionStudyConfig with_layer = BaseConfig();
  with_layer.faults = &empty;
  const DetectionOutcome layered = Run(with_layer);

  ExpectIdentical(bare, layered);
  EXPECT_EQ(layered.run.fault_injected_drops, 0u);
  EXPECT_EQ(layered.run.fault_duplicates, 0u);
  EXPECT_EQ(layered.outage_missed_probes, 0u);
}

TEST_F(FaultDeterminismTest, SameSeedAndScheduleReproduceExactly) {
  fault::FaultSchedule schedule = fault::ParseFaultSpec(
      "seed:0xD0;outages:0.4:400;loss:0.02;dup:0.01");
  DetectionStudyConfig config = BaseConfig();
  config.faults = &schedule;
  const DetectionOutcome first = Run(config);
  const DetectionOutcome second = Run(config);
  ExpectIdentical(first, second);
  // The schedule actually did something, so the reproducibility above is
  // exercised on a non-trivial fault pattern.
  EXPECT_GT(first.run.fault_injected_drops, 0u);
  EXPECT_GT(first.run.fault_duplicates, 0u);
  EXPECT_GT(first.outage_missed_probes, 0u);
}

TEST_F(FaultDeterminismTest, OutagesNeverPerturbTheOutbreak) {
  const DetectionOutcome bare = Run(BaseConfig());
  fault::FaultSchedule schedule = fault::ParseFaultSpec("outages:0.5:400");
  DetectionStudyConfig config = BaseConfig();
  config.faults = &schedule;
  const DetectionOutcome outaged = Run(config);
  // Outages drop what sensors *record*, never what the worm *sends*.
  EXPECT_EQ(bare.run.total_probes, outaged.run.total_probes);
  EXPECT_EQ(bare.run.final_infected, outaged.run.final_infected);
  EXPECT_EQ(bare.run.delivery_counts, outaged.run.delivery_counts);
  EXPECT_GT(outaged.outage_missed_probes, 0u);
  // A downed sensor can only see *less*, never different traffic earlier:
  // every alert time is at or after the fault-free one.
  EXPECT_LE(outaged.alert_times.size(), bare.alert_times.size());
}

TEST_F(FaultDeterminismTest, ScheduleSeedSelectsTheFaultStream) {
  fault::FaultSchedule one = fault::ParseFaultSpec("seed:1;loss:0.05");
  fault::FaultSchedule two = fault::ParseFaultSpec("seed:2;loss:0.05");
  DetectionStudyConfig config = BaseConfig();
  config.faults = &one;
  const DetectionOutcome first = Run(config);
  config.faults = &two;
  const DetectionOutcome second = Run(config);
  // Same engine seed, same rates — but the schedule-private streams differ,
  // so the injected-loss pattern (and its knock-on infections) differ.
  EXPECT_GT(first.run.fault_injected_drops, 0u);
  EXPECT_GT(second.run.fault_injected_drops, 0u);
  EXPECT_NE(first.run.fault_injected_drops, second.run.fault_injected_drops);
}

TEST_F(FaultDeterminismTest, DuplicateAccountingInvariant) {
  fault::FaultSchedule schedule = fault::ParseFaultSpec("dup:0.25");
  DetectionStudyConfig config = BaseConfig();
  config.faults = &schedule;
  const DetectionOutcome outcome = Run(config);
  ASSERT_GT(outcome.run.fault_duplicates, 0u);
  // delivery_counts tallies observer-visible events: its sum exceeds
  // total_probes by exactly the duplicate count.
  std::uint64_t events = 0;
  for (const auto count : outcome.run.delivery_counts) events += count;
  EXPECT_EQ(events, outcome.run.total_probes + outcome.run.fault_duplicates);
}

// -- hotspots.faults.v2: the v1 contract and the new correlated layers ----

TEST_F(FaultDeterminismTest, V1SpecsReproduceIdenticalCountersUnderV2) {
  // Every v1 spec string must parse to a schedule whose fault decisions
  // are bit-for-bit those of the hand-built v1 structure: the v2 layers
  // (GE channel, profiles, group outages) may cost nothing when unused —
  // not even a last-ulp drift in the effective loss rate.
  const char* const kV1Specs[] = {
      "seed:0xD0;outages:0.4:400;loss:0.02;dup:0.01",
      "loss:0.03",
      "outage:*:50:150;dup:0.02",
      "acl:10.0.0.0/8@100;loss:0.01",
  };
  for (const char* spec : kV1Specs) {
    fault::FaultSchedule parsed = fault::ParseFaultSpec(spec);
    fault::FaultSchedule manual;
    manual.seed = parsed.seed;
    manual.outages = parsed.outages;
    manual.staggered = parsed.staggered;
    manual.delivery = parsed.delivery;
    manual.acl_drift = parsed.acl_drift;
    manual.trials = parsed.trials;

    DetectionStudyConfig config = BaseConfig();
    config.faults = &parsed;
    const DetectionOutcome from_spec = Run(config);
    config.faults = &manual;
    const DetectionOutcome from_struct = Run(config);
    ExpectIdentical(from_spec, from_struct);
  }
}

TEST_F(FaultDeterminismTest, InertV2ClausesDoNotPerturbV1Decisions) {
  // A named group keys nothing by itself; adding one to a v1 spec must
  // leave every counter bit-identical.
  fault::FaultSchedule v1 =
      fault::ParseFaultSpec("seed:0xD0;loss:0.02;dup:0.01");
  fault::FaultSchedule with_group =
      fault::ParseFaultSpec("seed:0xD0;loss:0.02;dup:0.01;group:idle=A,B");
  DetectionStudyConfig config = BaseConfig();
  config.faults = &v1;
  const DetectionOutcome bare = Run(config);
  config.faults = &with_group;
  const DetectionOutcome grouped = Run(config);
  ExpectIdentical(bare, grouped);
}

TEST_F(FaultDeterminismTest, GilbertChannelIsShardCountInvariant) {
  // The GE state sequence is a pure function of (seeds, time): transitions
  // are drawn serially once per tick, per-probe Bernoulli draws stay in
  // per-scanner streams — so 1 worker and 4 workers lose the same probes.
  fault::FaultSchedule schedule =
      fault::ParseFaultSpec("seed:0x6EE;gilbert:0.01:0.9:0.05:0.2:5");
  DetectionStudyConfig config = BaseConfig();
  config.faults = &schedule;
  config.engine.shards = 1;
  const DetectionOutcome serial = Run(config);
  config.engine.shards = 4;
  const DetectionOutcome sharded = Run(config);
  ExpectIdentical(serial, sharded);
  EXPECT_GT(serial.run.fault_injected_drops, 0u);
}

TEST_F(FaultDeterminismTest, LossProfileIsShardCountInvariant) {
  fault::FaultSchedule schedule =
      fault::ParseFaultSpec("profile:0=0.0,100=0.3,200=0.0@400");
  DetectionStudyConfig config = BaseConfig();
  config.faults = &schedule;
  config.engine.shards = 1;
  const DetectionOutcome serial = Run(config);
  config.engine.shards = 4;
  const DetectionOutcome sharded = Run(config);
  ExpectIdentical(serial, sharded);
  EXPECT_GT(serial.run.fault_injected_drops, 0u);
}

TEST_F(FaultDeterminismTest, GroupOutagesAreObservationOnlyAndCorrelated) {
  const DetectionOutcome bare = Run(BaseConfig());
  fault::FaultSchedule schedule =
      fault::ParseFaultSpec("groupoutages:8:0.5:400");
  DetectionStudyConfig config = BaseConfig();
  config.faults = &schedule;
  const DetectionOutcome outaged = Run(config);
  // Correlated darkness drops what sensors *record*, never what the worm
  // *sends* — the outbreak fingerprint is bit-identical.
  EXPECT_EQ(bare.run.total_probes, outaged.run.total_probes);
  EXPECT_EQ(bare.run.final_infected, outaged.run.final_infected);
  EXPECT_EQ(bare.run.delivery_counts, outaged.run.delivery_counts);
  EXPECT_GT(outaged.outage_missed_probes, 0u);
  const DetectionOutcome again = Run(config);
  ExpectIdentical(outaged, again);
}

TEST_F(FaultDeterminismTest, AlertDelayShiftsReportsWithinBounds) {
  const DetectionOutcome bare = Run(BaseConfig());
  fault::FaultSchedule schedule = fault::ParseFaultSpec("alertdelay:5:20");
  DetectionStudyConfig config = BaseConfig();
  config.faults = &schedule;
  const DetectionOutcome delayed = Run(config);
  // Delay defers *reports*; it neither invents nor drops alerts, and it
  // never touches the outbreak.
  EXPECT_EQ(bare.run.total_probes, delayed.run.total_probes);
  ASSERT_EQ(delayed.alert_times.size(), bare.alert_times.size());
  ASSERT_FALSE(bare.alert_times.empty());
  // Sorted earliest-report vs earliest-sense: the first report can only
  // lag the first sensing by a delay inside the configured bounds — and
  // every report lags *some* sensing, so totals shift forward too.
  EXPECT_GE(delayed.alert_times.front(), bare.alert_times.front() + 5.0);
  // min(sense_i + delay_i) <= min(sense_i) + max_delay.
  EXPECT_LE(delayed.alert_times.front(), bare.alert_times.front() + 20.0);
  double sensed_sum = 0.0;
  double reported_sum = 0.0;
  for (const double t : bare.alert_times) sensed_sum += t;
  for (const double t : delayed.alert_times) reported_sum += t;
  const auto n = static_cast<double>(bare.alert_times.size());
  EXPECT_GE(reported_sum, sensed_sum + 5.0 * n);
  EXPECT_LE(reported_sum, sensed_sum + 20.0 * n);
  const DetectionOutcome again = Run(config);
  ExpectIdentical(delayed, again);
}

}  // namespace
}  // namespace hotspots::core
