#include "core/scenario.h"

#include <gtest/gtest.h>

#include "core/hotspot.h"
#include "core/placement.h"
#include "net/special_ranges.h"
#include "telescope/ims.h"

namespace hotspots::core {
namespace {

using net::Ipv4;
using net::Prefix;

ClusteredPopulationConfig SmallConfig() {
  ClusteredPopulationConfig config;
  config.total_hosts = 5000;
  config.slash8_clusters = 8;
  config.nonempty_slash16s = 200;
  config.seed = 3;
  return config;
}

TEST(HotspotTaxonomyTest, FactorsMapToClasses) {
  EXPECT_EQ(ClassOf(Factor::kHitList), FactorClass::kAlgorithmic);
  EXPECT_EQ(ClassOf(Factor::kPrngFlaw), FactorClass::kAlgorithmic);
  EXPECT_EQ(ClassOf(Factor::kLocalPreference), FactorClass::kAlgorithmic);
  EXPECT_EQ(ClassOf(Factor::kRoutingAndFiltering),
            FactorClass::kEnvironmental);
  EXPECT_EQ(ClassOf(Factor::kFailuresAndMisconfiguration),
            FactorClass::kEnvironmental);
  EXPECT_EQ(ClassOf(Factor::kNetworkTopology), FactorClass::kEnvironmental);
  EXPECT_EQ(ToString(Factor::kPrngFlaw), "prng-flaw");
  EXPECT_EQ(ToString(FactorClass::kEnvironmental), "environmental");
}

TEST(ScenarioBuilderTest, BuildsRequestedStructure) {
  ScenarioBuilder builder;
  const Scenario scenario = builder.BuildClustered(SmallConfig());
  EXPECT_EQ(scenario.population.size(), 5000u);
  EXPECT_EQ(scenario.public_hosts, 5000u);
  EXPECT_EQ(scenario.natted_hosts, 0u);
  EXPECT_EQ(scenario.slash16_clusters.size(), 200u);
  EXPECT_LE(scenario.slash8_clusters.size(), 8u);
  // Clusters are sorted by descending host count.
  for (std::size_t i = 1; i < scenario.slash16_clusters.size(); ++i) {
    EXPECT_GE(scenario.slash16_clusters[i - 1].hosts,
              scenario.slash16_clusters[i].hosts);
  }
  // Host counts add up.
  std::uint64_t sum = 0;
  for (const auto& cluster : scenario.slash16_clusters) sum += cluster.hosts;
  EXPECT_EQ(sum, 5000u);
}

TEST(ScenarioBuilderTest, HostsAvoidForbiddenSpace) {
  ScenarioBuilder builder;
  for (const auto& ims : telescope::ImsBlocks()) builder.Avoid(ims.block);
  const Scenario scenario = builder.BuildClustered(SmallConfig());
  for (const auto& host : scenario.population.hosts()) {
    EXPECT_FALSE(net::IsNonTargetable(host.address));
    EXPECT_FALSE(net::IsPrivate(host.address));
    for (const auto& ims : telescope::ImsBlocks()) {
      EXPECT_FALSE(ims.block.Contains(host.address))
          << host.address.ToString() << " inside " << ims.label;
    }
  }
}

TEST(ScenarioBuilderTest, NatFractionPlacesHostsInPrivateSpace) {
  ScenarioBuilder builder;
  ClusteredPopulationConfig config = SmallConfig();
  config.nat_fraction = 0.15;
  const Scenario scenario = builder.BuildClustered(config);
  EXPECT_EQ(scenario.population.size(), 5000u);
  EXPECT_EQ(scenario.public_hosts + scenario.natted_hosts, 5000u);
  EXPECT_NEAR(scenario.natted_hosts / 5000.0, 0.15, 0.02);
  EXPECT_EQ(scenario.nats.size(), 1u);
  for (const auto& host : scenario.population.hosts()) {
    if (host.behind_nat()) {
      EXPECT_TRUE(net::kPrivate192.Contains(host.address));
    } else {
      EXPECT_FALSE(net::IsPrivate(host.address));
    }
  }
}

TEST(ScenarioBuilderTest, PaperScaleStructure) {
  // Full paper scale: 134,586 hosts, 47 /8s, 4,481 /16s.
  ScenarioBuilder builder;
  ClusteredPopulationConfig config;
  config.seed = 11;
  const Scenario scenario = builder.BuildClustered(config);
  EXPECT_EQ(scenario.population.size(), 134'586u);
  EXPECT_EQ(scenario.slash16_clusters.size(), 4481u);
  EXPECT_LE(scenario.slash8_clusters.size(), 47u);
  EXPECT_GE(scenario.slash8_clusters.size(), 40u);
}

TEST(ScenarioBuilderTest, ValidatesConfig) {
  ScenarioBuilder builder;
  ClusteredPopulationConfig config = SmallConfig();
  config.total_hosts = 0;
  EXPECT_THROW((void)builder.BuildClustered(config), std::invalid_argument);
  config = SmallConfig();
  config.nonempty_slash16s = 8 * 256 + 1;
  EXPECT_THROW((void)builder.BuildClustered(config), std::invalid_argument);
  config = SmallConfig();
  config.nat_fraction = 1.5;
  EXPECT_THROW((void)builder.BuildClustered(config), std::invalid_argument);
  config = SmallConfig();
  config.slash8_clusters = 300;
  EXPECT_THROW((void)builder.BuildClustered(config), std::invalid_argument);
  // Fewer hosts than non-empty /16s is unsatisfiable (each /16 gets >= 1
  // host) and must be rejected rather than spin in the rebalancing loop.
  config = SmallConfig();
  config.total_hosts = static_cast<std::uint32_t>(config.nonempty_slash16s) - 1;
  EXPECT_THROW((void)builder.BuildClustered(config), std::invalid_argument);
}

TEST(ScenarioBuilderTest, DeterministicForSeed) {
  ScenarioBuilder b1;
  ScenarioBuilder b2;
  const Scenario s1 = b1.BuildClustered(SmallConfig());
  const Scenario s2 = b2.BuildClustered(SmallConfig());
  ASSERT_EQ(s1.population.size(), s2.population.size());
  for (std::size_t i = 0; i < s1.population.size(); ++i) {
    EXPECT_EQ(s1.population.hosts()[i].address,
              s2.population.hosts()[i].address);
  }
}

TEST(GreedyHitListTest, CoverageGrowsWithLength) {
  ScenarioBuilder builder;
  const Scenario scenario = builder.BuildClustered(SmallConfig());
  const auto list10 = GreedyHitList(scenario, 10);
  const auto list50 = GreedyHitList(scenario, 50);
  const auto all = GreedyHitList(scenario, 200);
  EXPECT_EQ(list10.prefixes.size(), 10u);
  EXPECT_LT(list10.coverage, list50.coverage);
  EXPECT_LT(list50.coverage, all.coverage);
  EXPECT_DOUBLE_EQ(all.coverage, 1.0);
  EXPECT_EQ(all.covered_hosts, scenario.public_hosts);
  // Greedy = take the largest clusters first, so coverage beats the
  // proportional baseline.
  EXPECT_GT(list10.coverage, 10.0 / 200.0);
}

TEST(GreedyHitListTest, OverLongRequestClamps) {
  ScenarioBuilder builder;
  const Scenario scenario = builder.BuildClustered(SmallConfig());
  const auto list = GreedyHitList(scenario, 10'000);
  EXPECT_EQ(list.prefixes.size(), 200u);
  EXPECT_THROW((void)GreedyHitList(scenario, -1), std::invalid_argument);
}

TEST(PlacementTest, SensorPerCluster16AvoidsHosts) {
  ScenarioBuilder builder;
  const Scenario scenario = builder.BuildClustered(SmallConfig());
  prng::Xoshiro256 rng{5};
  const auto sensors = PlaceSensorPerCluster16(scenario, rng);
  EXPECT_EQ(sensors.size(), scenario.slash16_clusters.size());
  for (const Prefix& sensor : sensors) {
    EXPECT_EQ(sensor.length(), 24);
    EXPECT_FALSE(scenario.occupied_slash24s.contains(
        sensor.base().value() >> 8));
  }
}

TEST(PlacementTest, RandomSensorsAreDistinctAndClean) {
  ScenarioBuilder builder;
  const Scenario scenario = builder.BuildClustered(SmallConfig());
  prng::Xoshiro256 rng{6};
  const auto sensors = PlaceRandomSensors(scenario, 500, rng);
  EXPECT_EQ(sensors.size(), 500u);
  std::set<std::uint32_t> distinct;
  for (const Prefix& sensor : sensors) {
    EXPECT_TRUE(distinct.insert(sensor.base().value()).second);
    EXPECT_FALSE(net::IsPrivate(sensor.base()));
    EXPECT_FALSE(net::IsNonTargetable(sensor.base()));
    EXPECT_FALSE(
        scenario.occupied_slash24s.contains(sensor.base().value() >> 8));
  }
}

TEST(PlacementTest, TopSlash8PlacementStaysInside) {
  ScenarioBuilder builder;
  const Scenario scenario = builder.BuildClustered(SmallConfig());
  prng::Xoshiro256 rng{7};
  const auto sensors = PlaceSensorsInTopSlash8s(scenario, 200, 3, rng);
  EXPECT_EQ(sensors.size(), 200u);
  for (const Prefix& sensor : sensors) {
    bool inside_top3 = false;
    for (std::size_t i = 0; i < 3 && i < scenario.slash8_clusters.size();
         ++i) {
      if (scenario.slash8_clusters[i].Contains(sensor.base())) {
        inside_top3 = true;
      }
    }
    EXPECT_TRUE(inside_top3) << sensor.ToString();
  }
}

TEST(PlacementTest, Across192SkipsPrivateSlash16) {
  prng::Xoshiro256 rng{8};
  const auto sensors = PlaceSensorsAcross192(rng);
  EXPECT_EQ(sensors.size(), 255u);
  for (const Prefix& sensor : sensors) {
    EXPECT_EQ(sensor.base().Slash8(), 192u);
    EXPECT_FALSE(net::kPrivate192.Overlaps(sensor));
  }
}

}  // namespace
}  // namespace hotspots::core
