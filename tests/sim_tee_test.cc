// The engine's composition points for probe sinks: TeeObserver fan-out
// semantics (order, batch forwarding, nullptr tolerance), the
// Engine::Run(initializer_list) tee attach path, and the quarantine
// harness's capture hook — the three ways a trace writer, telescope, or
// detector rides along on a probe stream.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/quarantine.h"
#include "sim/engine.h"
#include "sim/observer.h"
#include "telescope/telescope.h"
#include "worms/uniform.h"

namespace hotspots {
namespace {

using net::Ipv4;
using net::Prefix;

/// Logs every callback with an instance tag, so fan-out order and batch
/// boundaries are assertable.
class LoggingObserver final : public sim::ProbeObserver {
 public:
  LoggingObserver(std::string tag, std::vector<std::string>* journal)
      : tag_(std::move(tag)), journal_(journal) {}

  void OnAttach() override { journal_->push_back(tag_ + ":attach"); }
  void OnProbe(const sim::ProbeEvent& event) override {
    journal_->push_back(tag_ + ":probe@" + std::to_string(event.dst.value()));
  }
  void OnProbeBatch(std::span<const sim::ProbeEvent> events) override {
    journal_->push_back(tag_ + ":batch/" + std::to_string(events.size()));
  }

 private:
  std::string tag_;
  std::vector<std::string>* journal_;
};

sim::ProbeEvent Event(std::uint32_t dst) {
  sim::ProbeEvent event;
  event.dst = Ipv4{dst};
  return event;
}

TEST(TeeObserverTest, FansOutInAdditionOrder) {
  std::vector<std::string> journal;
  LoggingObserver a{"a", &journal};
  LoggingObserver b{"b", &journal};
  sim::TeeObserver tee;
  tee.Add(&a);
  tee.Add(nullptr);  // Optional sink not present: skipped, not stored.
  tee.Add(&b);
  EXPECT_EQ(tee.size(), 2u);

  tee.OnAttach();
  tee.OnProbe(Event(7));
  const sim::ProbeEvent batch[] = {Event(1), Event(2), Event(3)};
  tee.OnProbeBatch({batch, 3});

  const std::vector<std::string> expected = {
      "a:attach", "b:attach", "a:probe@7", "b:probe@7",
      "a:batch/3", "b:batch/3"};
  EXPECT_EQ(journal, expected);
}

TEST(TeeObserverTest, InitializerListConstructorSkipsNull) {
  std::vector<std::string> journal;
  LoggingObserver a{"a", &journal};
  sim::TeeObserver tee{&a, nullptr, nullptr};
  EXPECT_EQ(tee.size(), 1u);
}

TEST(TeeObserverTest, BatchesForwardTheSameSpan) {
  // Children must see the engine's batch as-is — same count, same events,
  // not a re-chunked copy.
  std::vector<sim::ProbeEvent> seen;
  class Collector final : public sim::ProbeObserver {
   public:
    explicit Collector(std::vector<sim::ProbeEvent>* out) : out_(out) {}
    void OnProbe(const sim::ProbeEvent& event) override {
      out_->push_back(event);
    }

   private:
    std::vector<sim::ProbeEvent>* out_;
  } collector{&seen};

  sim::TeeObserver tee{&collector};
  const sim::ProbeEvent batch[] = {Event(10), Event(20)};
  tee.OnProbeBatch({batch, 2});  // Default OnProbeBatch → per-event calls.
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].dst.value(), 10u);
  EXPECT_EQ(seen[1].dst.value(), 20u);
}

// ---------------------------------------------------------------------
// Engine::Run({...}) tee path.
// ---------------------------------------------------------------------

class EngineTeeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 50; ++i) {
      population_.AddHost(Ipv4{10, 0, 0, static_cast<std::uint8_t>(1 + i)});
    }
    population_.Build(nullptr);
  }

  sim::EngineConfig Config() const {
    sim::EngineConfig config;
    config.scan_rate = 5.0;
    config.end_time = 10.0;
    config.seed = 0xBEEF;
    config.stop_at_infected_fraction = 2.0;
    return config;
  }

  sim::Population population_;
  worms::UniformWorm worm_;
  topology::Reachability reachability_{nullptr, nullptr, nullptr, 0.0};
};

TEST_F(EngineTeeTest, ListRunMatchesSingleObserverRun) {
  // Same seed → same stream; the tee path must not perturb the run.
  sim::RecordingObserver direct;
  {
    sim::Engine engine{population_, worm_, reachability_, nullptr, Config()};
    engine.SeedInfection(0);
    engine.Run(direct);
  }

  // Reset population state by rebuilding it.
  sim::Population population;
  for (int i = 0; i < 50; ++i) {
    population.AddHost(Ipv4{10, 0, 0, static_cast<std::uint8_t>(1 + i)});
  }
  population.Build(nullptr);
  sim::RecordingObserver teed_a;
  sim::RecordingObserver teed_b;
  sim::Engine engine{population, worm_, reachability_, nullptr, Config()};
  engine.SeedInfection(0);
  const sim::RunResult run = engine.Run({&teed_a, nullptr, &teed_b});

  ASSERT_GT(direct.events().size(), 0u);
  ASSERT_EQ(teed_a.events().size(), direct.events().size());
  ASSERT_EQ(teed_b.events().size(), direct.events().size());
  EXPECT_EQ(run.total_probes, direct.events().size());
  for (std::size_t i = 0; i < direct.events().size(); ++i) {
    EXPECT_EQ(teed_a.events()[i].dst.value(),
              direct.events()[i].dst.value());
    EXPECT_EQ(teed_b.events()[i].time, direct.events()[i].time);
  }
}

// ---------------------------------------------------------------------
// Quarantine capture hook.
// ---------------------------------------------------------------------

TEST(QuarantineCaptureTest, CaptureSeesEveryEmittedProbe) {
  telescope::Telescope sensors;
  sensors.AddSensor("Q/16", Prefix{Ipv4{100, 64, 0, 0}, 16});
  sensors.Build();

  worms::UniformWorm worm;
  sim::Host host;
  host.address = Ipv4{141, 20, 30, 40};
  const auto scanner = worm.MakeScanner(host, 0x1234);

  sim::RecordingObserver capture;
  const core::QuarantineResult result = core::RunQuarantine(
      *scanner, host.address, 5000, sensors, &capture);

  EXPECT_EQ(result.probes_emitted, 5000u);
  ASSERT_EQ(capture.events().size(), 5000u);
  // Synthetic stream contract: time = probe index, no population host,
  // everything delivered (the honeypot uplink is unconstrained).
  EXPECT_EQ(capture.events()[0].time, 0.0);
  EXPECT_EQ(capture.events()[4999].time, 4999.0);
  for (const sim::ProbeEvent& event : capture.events()) {
    EXPECT_EQ(event.src_host, sim::kInvalidHost);
    EXPECT_EQ(event.src_address.value(), host.address.value());
    EXPECT_EQ(event.delivery, topology::Delivery::kDelivered);
  }

  // The capture rides along without changing sensor accounting: a second
  // identical run with no capture agrees.
  telescope::Telescope sensors_again;
  sensors_again.AddSensor("Q/16", Prefix{Ipv4{100, 64, 0, 0}, 16});
  sensors_again.Build();
  const auto scanner_again = worm.MakeScanner(host, 0x1234);
  const core::QuarantineResult again = core::RunQuarantine(
      *scanner_again, host.address, 5000, sensors_again, nullptr);
  EXPECT_EQ(again.probes_on_sensors, result.probes_on_sensors);
  EXPECT_EQ(sensors_again.sensor(0).probe_count(),
            sensors.sensor(0).probe_count());
}

}  // namespace
}  // namespace hotspots
