// Strict numeric parsing for the bench harness: ParseDouble must accept
// exactly the strings strtod fully consumes and reject everything atof
// would have silently mapped to 0.0.
#include <gtest/gtest.h>

#include "bench_util.h"

namespace hotspots::bench {
namespace {

TEST(ParseDoubleTest, AcceptsWholeStringNumbers) {
  EXPECT_EQ(ParseDouble("0.25"), 0.25);
  EXPECT_EQ(ParseDouble("1"), 1.0);
  EXPECT_EQ(ParseDouble("-3.5"), -3.5);
  EXPECT_EQ(ParseDouble("1e-3"), 1e-3);
  EXPECT_EQ(ParseDouble("  0.5"), 0.5);  // strtod skips leading whitespace.
}

TEST(ParseDoubleTest, RejectsWhatAtofSilentlyZeroes) {
  EXPECT_FALSE(ParseDouble("abc").has_value());
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble(nullptr).has_value());
  // atof("0.5x") == 0.5 with the trailing garbage ignored; a bench invoked
  // as `fig5b 0.5x` must fail loudly instead of running at some scale.
  EXPECT_FALSE(ParseDouble("0.5x").has_value());
  EXPECT_FALSE(ParseDouble("1.0 2.0").has_value());
  EXPECT_FALSE(ParseDouble("--1").has_value());
}

TEST(MeanStdTest, FormatsMeanPlusMinusStddev) {
  sim::SummaryStats stats;
  stats.count = 2;
  stats.mean = 0.25;
  stats.stddev = 0.05;
  EXPECT_EQ(MeanStd(stats, "%.2f"), "0.25±0.05");
  EXPECT_EQ(MeanStd(stats, "%.1f", 100.0), "25.0±5.0");
}

}  // namespace
}  // namespace hotspots::bench
