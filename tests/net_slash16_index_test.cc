// Slash16Index: unit tests + differential equivalence with IntervalMap.
#include "net/slash16_index.h"

#include <gtest/gtest.h>

#include "prng/xoshiro.h"

namespace hotspots::net {
namespace {

TEST(Slash16IndexTest, BasicLookup) {
  Slash16Index<int> index;
  index.Add(Prefix{Ipv4{10, 0, 0, 0}, 8}, 1);
  index.Add(Prefix{Ipv4{20, 5, 4, 0}, 24}, 2);
  index.Build();
  ASSERT_NE(index.Lookup(Ipv4(10, 200, 3, 4)), nullptr);
  EXPECT_EQ(*index.Lookup(Ipv4(10, 200, 3, 4)), 1);
  EXPECT_EQ(*index.Lookup(Ipv4(20, 5, 4, 255)), 2);
  EXPECT_EQ(index.Lookup(Ipv4(20, 5, 5, 0)), nullptr);
  EXPECT_EQ(index.Lookup(Ipv4(30, 0, 0, 0)), nullptr);
}

TEST(Slash16IndexTest, IntervalSpanningManyBucketsIsSliced) {
  Slash16Index<int> index;
  // A /8 touches 256 /16 buckets; boundaries must be exact.
  index.Add(Prefix{Ipv4{50, 0, 0, 0}, 8}, 7);
  index.Build();
  EXPECT_NE(index.Lookup(Ipv4(50, 0, 0, 0)), nullptr);
  EXPECT_NE(index.Lookup(Ipv4(50, 255, 255, 255)), nullptr);
  EXPECT_NE(index.Lookup(Ipv4(50, 128, 77, 3)), nullptr);
  EXPECT_EQ(index.Lookup(Ipv4(49, 255, 255, 255)), nullptr);
  EXPECT_EQ(index.Lookup(Ipv4(51, 0, 0, 0)), nullptr);
}

TEST(Slash16IndexTest, RejectsOverlapAndBadBounds) {
  Slash16Index<int> index;
  index.Add(Prefix{Ipv4{10, 0, 0, 0}, 8}, 1);
  index.Add(Prefix{Ipv4{10, 4, 0, 0}, 16}, 2);
  EXPECT_THROW(index.Build(), std::invalid_argument);
  Slash16Index<int> bad;
  EXPECT_THROW(bad.Add(10, 5, 1), std::invalid_argument);
}

TEST(Slash16IndexTest, LookupBeforeBuildThrows) {
  Slash16Index<int> index;
  index.Add(1, 2, 3);
  EXPECT_THROW((void)index.Lookup(Ipv4{1}), std::logic_error);
}

TEST(Slash16IndexTest, DifferentialAgainstIntervalMap) {
  prng::Xoshiro256 rng{0x51AB};
  for (int trial = 0; trial < 10; ++trial) {
    Slash16Index<int> index;
    IntervalMap<int> reference;
    // Generate disjoint intervals of diverse sizes across the space.
    std::uint32_t cursor = rng.UniformBelow(1u << 20);
    int id = 0;
    while (cursor < 0xF0000000u) {
      const std::uint32_t length = 1 + rng.UniformBelow(1u << 18);
      const std::uint32_t hi = cursor + length - 1;
      index.Add(cursor, hi, id);
      reference.Add(cursor, hi, id);
      ++id;
      cursor = hi + 2 + rng.UniformBelow(1u << 22);
      if (id > 400) break;
    }
    index.Build();
    reference.Build();
    for (int i = 0; i < 30'000; ++i) {
      const Ipv4 address{rng.NextU32()};
      const int* a = index.Lookup(address);
      const int* b = reference.Lookup(address);
      ASSERT_EQ(a == nullptr, b == nullptr) << address.ToString();
      if (a != nullptr) {
        ASSERT_EQ(*a, *b) << address.ToString();
      }
    }
  }
}

}  // namespace
}  // namespace hotspots::net
