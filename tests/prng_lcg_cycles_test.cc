// Validation of the algebraic LCG cycle analyzer against brute force, plus
// the Slammer-specific facts the paper reports (64 cycles, fixed points,
// biased block sums).
#include "prng/lcg_cycles.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "prng/cycle_finder.h"
#include "worms/slammer.h"

namespace hotspots::prng {
namespace {

TEST(Valuation2Test, Basics) {
  EXPECT_EQ(Valuation2(1, 32), 0);
  EXPECT_EQ(Valuation2(2, 32), 1);
  EXPECT_EQ(Valuation2(12, 32), 2);
  EXPECT_EQ(Valuation2(1u << 31, 32), 31);
  EXPECT_EQ(Valuation2(0, 32), 32);
  EXPECT_EQ(Valuation2(0, 16), 16);
}

TEST(LcgCycleAnalyzerTest, RejectsBadMultipliers) {
  EXPECT_THROW(LcgCycleAnalyzer(LcgParams{3, 1, 16}), std::invalid_argument);
  EXPECT_THROW(LcgCycleAnalyzer(LcgParams{1, 1, 16}), std::invalid_argument);
  EXPECT_THROW(LcgCycleAnalyzer(LcgParams{2, 1, 16}), std::invalid_argument);
}

TEST(LcgCycleAnalyzerTest, CensusAccountsForEveryPoint) {
  for (const std::uint32_t b : {0u, 1u, 2u, 4u, 12u, 0x1234u, 0xFFFFu}) {
    const LcgParams params{214013, b, 16};
    const LcgCycleAnalyzer analyzer{params};
    std::uint64_t points = 0;
    for (const CycleClass& cls : analyzer.Census()) {
      EXPECT_EQ(cls.num_points, cls.length * cls.num_cycles);
      points += cls.num_points;
    }
    EXPECT_EQ(points, std::uint64_t{1} << 16) << "b=" << b;
  }
}

class CycleAlgebraVsBruteForce
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t, int>> {};

TEST_P(CycleAlgebraVsBruteForce, CensusMatchesEnumeration) {
  const auto [a, b, m] = GetParam();
  const LcgParams params{a, b, m};
  const LcgCycleAnalyzer analyzer{params};

  const auto cycles = FindAllCycles(
      m, [&params](std::uint32_t x) { return params.Step(x); });

  // Compare the (length → number of cycles) multiset.
  std::map<std::uint64_t, std::uint64_t> brute;
  for (const FoundCycle& cycle : cycles) ++brute[cycle.length];
  std::map<std::uint64_t, std::uint64_t> algebra;
  for (const CycleClass& cls : analyzer.Census()) {
    algebra[cls.length] += cls.num_cycles;
  }
  EXPECT_EQ(brute, algebra);
  EXPECT_EQ(analyzer.TotalCycles(), cycles.size());
}

TEST_P(CycleAlgebraVsBruteForce, PerPointLengthAndMembershipMatch) {
  const auto [a, b, m] = GetParam();
  const LcgParams params{a, b, m};
  const LcgCycleAnalyzer analyzer{params};
  const std::uint32_t mask = params.Mask();

  // Walk a sample of orbits; every element of an orbit must share the
  // CycleId and the length must equal the walked period.
  Xoshiro256 rng{99};
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint32_t start = rng.NextU32() & mask;
    const std::uint64_t claimed = analyzer.CycleLength(start);
    // Confirm T^claimed(start) == start and no smaller power-of-two works.
    std::uint32_t cursor = start;
    for (std::uint64_t i = 0; i < claimed; ++i) cursor = params.Step(cursor);
    EXPECT_EQ(cursor, start);
    if (claimed > 1) {
      cursor = start;
      for (std::uint64_t i = 0; i < claimed / 2; ++i) {
        cursor = params.Step(cursor);
      }
      EXPECT_NE(cursor, start);
    }
    // Membership invariant along the orbit.
    const CycleId id = analyzer.IdOf(start);
    cursor = params.Step(start);
    for (int i = 0; i < 16 && cursor != start; ++i) {
      EXPECT_EQ(analyzer.IdOf(cursor), id);
      EXPECT_TRUE(analyzer.SameCycle(start, cursor));
      cursor = params.Step(cursor);
    }
  }
}

TEST_P(CycleAlgebraVsBruteForce, DistinctCyclesGetDistinctIds) {
  const auto [a, b, m] = GetParam();
  const LcgParams params{a, b, m};
  const LcgCycleAnalyzer analyzer{params};
  const auto cycles = FindAllCycles(
      m, [&params](std::uint32_t x) { return params.Step(x); });
  std::set<CycleId> ids;
  for (const FoundCycle& cycle : cycles) {
    EXPECT_TRUE(ids.insert(analyzer.IdOf(cycle.representative)).second)
        << "representative " << cycle.representative;
    EXPECT_EQ(analyzer.CycleLength(cycle.representative), cycle.length);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallModuli, CycleAlgebraVsBruteForce,
    ::testing::Values(
        // Slammer multiplier at small moduli with assorted increments,
        // covering v2(b) < e, == e, > e, and b = 0.
        std::make_tuple(214013u, 1u, 12), std::make_tuple(214013u, 2u, 12),
        std::make_tuple(214013u, 4u, 12), std::make_tuple(214013u, 8u, 12),
        std::make_tuple(214013u, 0u, 12), std::make_tuple(214013u, 0x124u, 14),
        std::make_tuple(214013u, 0x8831u, 16),
        // Other a ≡ 1 (mod 4) multipliers, including e > 2.
        std::make_tuple(5u, 3u, 12), std::make_tuple(5u, 4u, 12),
        std::make_tuple(9u, 1u, 12), std::make_tuple(9u, 8u, 14),
        std::make_tuple(17u, 6u, 12), std::make_tuple(69069u, 1234u, 16)));

TEST(SlammerCyclesTest, EffectiveIncrementsMatchKnownValues) {
  const auto increments = worms::SlammerEffectiveIncrements();
  EXPECT_EQ(increments[0], 0x88215000u);
  EXPECT_EQ(increments[1], 0x8831FA24u);  // The value quoted in the paper.
  EXPECT_EQ(increments[2], 0x88336870u);
}

TEST(SlammerCyclesTest, EveryDllVersionHasSixtyFourCycles) {
  // The paper: "We find that there are 64 cycles for each b value and the
  // lengths are very similar in each case."
  for (int version = 0; version < 3; ++version) {
    const auto analyzer = worms::SlammerCycleAnalyzer(version);
    EXPECT_EQ(analyzer.TotalCycles(), 64u) << "dll version " << version;
  }
}

TEST(SlammerCyclesTest, HasFixedPointsAndMaximalCycles) {
  const auto analyzer = worms::SlammerCycleAnalyzer(1);
  const auto census = analyzer.Census();
  // Longest cycles: two of length 2^30; shortest: four fixed points.
  EXPECT_EQ(census.front().length, std::uint64_t{1} << 30);
  EXPECT_EQ(census.front().num_cycles, 2u);
  EXPECT_EQ(census.back().length, 1u);
  EXPECT_EQ(census.back().num_cycles, 4u);
}

TEST(SlammerCyclesTest, FixedPointsAreActuallyFixed) {
  for (int version = 0; version < 3; ++version) {
    const LcgParams params = worms::SlammerLcgParams(version);
    const LcgCycleAnalyzer analyzer{params};
    int fixed_points_found = 0;
    // Fixed points satisfy (a−1)x + b ≡ 0 (mod 2^32); scan a coarse grid of
    // candidates via the analyzer instead of solving, to exercise IdOf.
    Xoshiro256 rng{7};
    for (int i = 0; i < 200000 && fixed_points_found == 0; ++i) {
      const std::uint32_t x = rng.NextU32();
      if (analyzer.CycleLength(x) == 1) {
        EXPECT_EQ(params.Step(x), x);
        ++fixed_points_found;
      }
    }
    // Fixed points are a 4-in-2^32 event; not finding one randomly is fine.
    // What must hold: the census says they exist.
    EXPECT_EQ(analyzer.Census().back().length, 1u);
  }
}

TEST(SlammerCyclesTest, HitProbabilityProportionalToCycleLength) {
  const auto analyzer = worms::SlammerCycleAnalyzer(1);
  Xoshiro256 rng{3};
  for (int i = 0; i < 100; ++i) {
    const std::uint32_t x = rng.NextU32();
    EXPECT_DOUBLE_EQ(analyzer.HitProbability(x),
                     static_cast<double>(analyzer.CycleLength(x)) /
                         4294967296.0);
  }
}

TEST(SlammerCyclesTest, BlockSumsDifferAcrossGenericSlash24s) {
  // The mechanism behind Figure 2: different /24s are traversed by cycle
  // sets of different total length.  (For the affine map the per-level
  // valuation census inside an aligned block is invariant, so differences
  // come from coset splits at the deep levels — see EXPERIMENTS.md.)
  const auto analyzer = worms::SlammerCycleAnalyzer(1);
  Xoshiro256 rng{7};
  std::set<std::uint64_t> sums;
  for (int i = 0; i < 200; ++i) {
    const net::Prefix block{net::Ipv4{rng.NextU32() & 0xFFFFFF00u}, 24};
    sums.insert(analyzer.SumCycleLengthsThrough(block));
  }
  EXPECT_GT(sums.size(), 1u) << "all /24 blocks saw identical cycle sums";
}

TEST(SlammerCyclesTest, AlignedEqualSizeBlocksHaveInvariantValuationCensus) {
  // Structural result our algebra proves and the library documents: for
  // T(x)=a·x+b with x0 ≡ 0 (mod 2^16), y = (a−1)x+b mod 2^18 depends only
  // on the offset, so all /16-aligned blocks share the same cycle-length
  // census up to the deepest couple of points.
  const auto analyzer = worms::SlammerCycleAnalyzer(1);
  std::set<std::uint64_t> sums;
  for (std::uint32_t a = 40; a < 60; ++a) {
    const net::Prefix block{net::Ipv4{a << 24 | 10u << 16}, 16};
    sums.insert(analyzer.SumCycleLengthsThrough(block));
  }
  // At most a couple of distinct values (deep-tail variation only).
  EXPECT_LE(sums.size(), 3u);
}

TEST(SlammerCyclesTest, ExpectedUniqueSourcesScalesWithPopulation) {
  const auto analyzer = worms::SlammerCycleAnalyzer(0);
  const net::Prefix block{net::Ipv4{10, 0, 0, 0}, 24};
  const double one = analyzer.ExpectedUniqueSources(block, 1000);
  const double two = analyzer.ExpectedUniqueSources(block, 2000);
  EXPECT_DOUBLE_EQ(two, 2 * one);
}

TEST(CycleFinderTest, RejectsNonPermutation) {
  EXPECT_THROW(FindAllCycles(4, [](std::uint32_t) { return 0u; }),
               std::invalid_argument);
}

TEST(CycleFinderTest, RejectsHugeDomains) {
  EXPECT_THROW(FindAllCycles(27, [](std::uint32_t x) { return x; }),
               std::invalid_argument);
}

TEST(CycleFinderTest, IdentityPermutationIsAllFixedPoints) {
  const auto cycles = FindAllCycles(8, [](std::uint32_t x) { return x; });
  EXPECT_EQ(cycles.size(), 256u);
  for (const FoundCycle& cycle : cycles) EXPECT_EQ(cycle.length, 1u);
}

TEST(CycleFinderTest, SingleRotationIsOneCycle) {
  const auto cycles =
      FindAllCycles(8, [](std::uint32_t x) { return (x + 1) & 0xFF; });
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].length, 256u);
  EXPECT_EQ(cycles[0].representative, 0u);
}

TEST(CycleFinderTest, CollectOrbitStopsAtClosure) {
  const auto orbit = CollectOrbit(
      3, [](std::uint32_t x) { return (x + 2) & 0xF; }, 1000);
  EXPECT_EQ(orbit.size(), 8u);  // 3,5,7,...,1 then back to 3.
  EXPECT_EQ(orbit.front(), 3u);
}

TEST(CycleFinderTest, CountOrbitHitsInBlock) {
  // Orbit 0..15 under +1 mod 16; block covering 4..7 → 4 hits.
  const net::Prefix block{net::Ipv4{4}, 30};
  const std::uint64_t hits = CountOrbitHitsInBlock(
      0, [](std::uint32_t x) { return (x + 1) & 0xF; }, 1000, block);
  EXPECT_EQ(hits, 4u);
}

}  // namespace
}  // namespace hotspots::prng
