// Fault-injection subsystem: spec parsing, staggered-outage determinism,
// trial kills, the delivery-fault injector, and outage application to a
// sensor fleet.
#include "fault/schedule.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/delivery.h"
#include "fault/inject.h"
#include "telescope/telescope.h"

namespace hotspots::fault {
namespace {

using net::Ipv4;
using net::Prefix;
using topology::Delivery;

TEST(FaultSpecTest, ParsesEveryDirective) {
  const FaultSchedule schedule = ParseFaultSpec(
      "seed:0xBEEF;outage:S3:100:200;outage:*:0:inf;outages:0.3:2000;"
      "loss:0.01;dup:0.002;acl:10.0.0.0/8@500;trialfail:0.05");
  EXPECT_EQ(schedule.seed, 0xBEEFu);
  ASSERT_EQ(schedule.outages.size(), 2u);
  EXPECT_EQ(schedule.outages[0].sensor, "S3");
  EXPECT_DOUBLE_EQ(schedule.outages[0].down_at, 100.0);
  EXPECT_DOUBLE_EQ(schedule.outages[0].up_at, 200.0);
  EXPECT_EQ(schedule.outages[1].sensor, "*");
  EXPECT_TRUE(std::isinf(schedule.outages[1].up_at));
  EXPECT_DOUBLE_EQ(schedule.staggered.down_fraction, 0.3);
  EXPECT_DOUBLE_EQ(schedule.staggered.horizon, 2000.0);
  EXPECT_DOUBLE_EQ(schedule.delivery.loss_rate, 0.01);
  EXPECT_DOUBLE_EQ(schedule.delivery.duplication_rate, 0.002);
  ASSERT_EQ(schedule.acl_drift.size(), 1u);
  EXPECT_DOUBLE_EQ(schedule.acl_drift[0].at, 500.0);
  EXPECT_EQ(schedule.acl_drift[0].block, (Prefix{Ipv4{10, 0, 0, 0}, 8}));
  EXPECT_DOUBLE_EQ(schedule.trials.failure_rate, 0.05);
  EXPECT_FALSE(schedule.empty());
  EXPECT_TRUE(schedule.HasDeliveryFaults());
}

TEST(FaultSpecTest, EmptySpecIsEmptySchedule) {
  EXPECT_TRUE(ParseFaultSpec("").empty());
  EXPECT_TRUE(ParseFaultSpec(";;").empty());
  EXPECT_TRUE(FaultSchedule{}.empty());
  EXPECT_FALSE(FaultSchedule{}.HasDeliveryFaults());
  // A seed alone injects nothing.
  EXPECT_TRUE(ParseFaultSpec("seed:7").empty());
}

TEST(FaultSpecTest, DriftEventsSortedByTime) {
  const FaultSchedule schedule =
      ParseFaultSpec("acl:30.0.0.0/16@900;acl:20.0.0.0/16@100");
  ASSERT_EQ(schedule.acl_drift.size(), 2u);
  EXPECT_DOUBLE_EQ(schedule.acl_drift[0].at, 100.0);
  EXPECT_DOUBLE_EQ(schedule.acl_drift[1].at, 900.0);
}

TEST(FaultSpecTest, RejectsMalformedDirectives) {
  EXPECT_THROW((void)ParseFaultSpec("bogus:1"), std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("loss"), std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("loss:1.5"), std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("loss:abc"), std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("outage:S1:5"), std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("outage:S1:9:5"), std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("outages:0.5:-1"), std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("acl:10.0.0.0/8"), std::invalid_argument);
  // Drift is modelled at /16 granularity; longer prefixes are a spec error,
  // not a silent widening.
  EXPECT_THROW((void)ParseFaultSpec("acl:10.1.2.0/24@5"),
               std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("seed:12junk"), std::invalid_argument);
}

TEST(StaggeredOutagesTest, DeterministicInLabelsAndSeed) {
  const std::vector<std::string> labels = {"A", "B", "C", "D"};
  const auto first = StaggeredOutages(labels, 1000.0, 0.25, 42);
  const auto again = StaggeredOutages(labels, 1000.0, 0.25, 42);
  ASSERT_EQ(first.size(), 4u);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].sensor, labels[i]);
    EXPECT_DOUBLE_EQ(first[i].down_at, again[i].down_at);
    EXPECT_DOUBLE_EQ(first[i].up_at, again[i].up_at);
    // Window shape: length = fraction * horizon, inside [0, horizon].
    EXPECT_DOUBLE_EQ(first[i].up_at - first[i].down_at, 250.0);
    EXPECT_GE(first[i].down_at, 0.0);
    EXPECT_LE(first[i].up_at, 1000.0);
  }
  // A different schedule seed draws different windows.
  const auto other = StaggeredOutages(labels, 1000.0, 0.25, 43);
  bool any_difference = false;
  for (std::size_t i = 0; i < first.size(); ++i) {
    any_difference |= first[i].down_at != other[i].down_at;
  }
  EXPECT_TRUE(any_difference);
  EXPECT_TRUE(StaggeredOutages(labels, 1000.0, 0.0, 42).empty());
}

TEST(ShouldKillTrialTest, EdgeRatesAndDeterminism) {
  FaultSchedule schedule;
  EXPECT_FALSE(ShouldKillTrial(schedule, 0, 1));
  schedule.trials.failure_rate = 1.0;
  EXPECT_TRUE(ShouldKillTrial(schedule, 0, 1));
  EXPECT_THROW(MaybeKillTrial(schedule, 0, 1), TrialKilled);
  schedule.trials.failure_rate = 0.5;
  // Pure function of (schedule seed, trial, seed) — and sensitive to all
  // three, so retries (fresh seeds) get fresh draws.
  int kills = 0;
  int flips = 0;
  for (int trial = 0; trial < 64; ++trial) {
    const bool kill = ShouldKillTrial(schedule, trial, 0xABC + trial);
    EXPECT_EQ(kill, ShouldKillTrial(schedule, trial, 0xABC + trial));
    kills += kill ? 1 : 0;
    flips += kill != ShouldKillTrial(schedule, trial, 0xDEF + trial) ? 1 : 0;
  }
  EXPECT_GT(kills, 8);
  EXPECT_LT(kills, 56);
  EXPECT_GT(flips, 0);
}

TEST(DeliveryFaultsTest, LossDowngradesOnlyDeliveredProbes) {
  FaultSchedule schedule;
  schedule.delivery.loss_rate = 1.0;
  DeliveryFaults faults{schedule};
  faults.OnRunStart(7);
  const auto lost = faults.OnProbeVerdict(1.0, Ipv4{1, 2, 3, 4},
                                          Delivery::kDelivered);
  EXPECT_EQ(lost.verdict, Delivery::kNetworkLoss);
  EXPECT_FALSE(lost.duplicate);
  // A probe the topology already dropped is never resurrected or relabeled.
  const auto dropped = faults.OnProbeVerdict(2.0, Ipv4{1, 2, 3, 4},
                                             Delivery::kIngressFiltered);
  EXPECT_EQ(dropped.verdict, Delivery::kIngressFiltered);
  EXPECT_EQ(faults.injected_losses(), 1u);
}

TEST(DeliveryFaultsTest, DuplicationFlagsDeliveredProbes) {
  FaultSchedule schedule;
  schedule.delivery.duplication_rate = 1.0;
  DeliveryFaults faults{schedule};
  faults.OnRunStart(7);
  const auto outcome = faults.OnProbeVerdict(1.0, Ipv4{1, 2, 3, 4},
                                             Delivery::kDelivered);
  EXPECT_EQ(outcome.verdict, Delivery::kDelivered);
  EXPECT_TRUE(outcome.duplicate);
  const auto dropped = faults.OnProbeVerdict(2.0, Ipv4{1, 2, 3, 4},
                                             Delivery::kNatUnroutable);
  EXPECT_FALSE(dropped.duplicate);
  EXPECT_EQ(faults.injected_duplicates(), 1u);
}

TEST(DeliveryFaultsTest, AclDriftFiltersSlash16sFromEventTime) {
  FaultSchedule schedule;
  schedule.acl_drift.push_back(
      AclDriftEvent{100.0, Prefix{Ipv4{10, 2, 0, 0}, 15}});
  DeliveryFaults faults{schedule};
  faults.OnRunStart(7);
  const Ipv4 inside{10, 2, 4, 4};
  const Ipv4 sibling{10, 3, 4, 4};  // The /15 spans both 10.2/16 and 10.3/16.
  const Ipv4 outside{10, 4, 4, 4};
  EXPECT_EQ(faults.OnProbeVerdict(99.0, inside, Delivery::kDelivered).verdict,
            Delivery::kDelivered);
  EXPECT_EQ(faults.OnProbeVerdict(100.0, inside, Delivery::kDelivered).verdict,
            Delivery::kIngressFiltered);
  EXPECT_EQ(faults.OnProbeVerdict(100.5, sibling, Delivery::kDelivered)
                .verdict,
            Delivery::kIngressFiltered);
  EXPECT_EQ(faults.OnProbeVerdict(101.0, outside, Delivery::kDelivered)
                .verdict,
            Delivery::kDelivered);
  EXPECT_EQ(faults.drift_filtered(), 2u);
  // OnRunStart re-arms: the drift is inactive again before its time.
  faults.OnRunStart(7);
  EXPECT_EQ(faults.OnProbeVerdict(50.0, inside, Delivery::kDelivered).verdict,
            Delivery::kDelivered);
}

TEST(DeliveryFaultsTest, StreamIsPrivateAndSeedDerived) {
  FaultSchedule schedule;
  schedule.delivery.loss_rate = 0.5;
  DeliveryFaults faults{schedule};
  const auto draw_pattern = [&](std::uint64_t engine_seed) {
    faults.OnRunStart(engine_seed);
    std::vector<bool> pattern;
    for (int i = 0; i < 256; ++i) {
      pattern.push_back(
          faults.OnProbeVerdict(static_cast<double>(i), Ipv4{1, 1, 1, 1},
                                Delivery::kDelivered)
              .verdict != Delivery::kDelivered);
    }
    return pattern;
  };
  // Same engine seed → identical decisions; different seed → different.
  EXPECT_EQ(draw_pattern(7), draw_pattern(7));
  EXPECT_NE(draw_pattern(7), draw_pattern(8));
}

TEST(ApplySensorOutagesTest, WildcardScriptedAndStaggered) {
  telescope::Telescope fleet;
  fleet.AddSensor("S0", Prefix{Ipv4{10, 0, 0, 0}, 24});
  fleet.AddSensor("S1", Prefix{Ipv4{20, 0, 0, 0}, 24});
  fleet.AddSensor("S2", Prefix{Ipv4{30, 0, 0, 0}, 24});
  fleet.Build();

  FaultSchedule schedule;
  schedule.outages.push_back(OutageWindow{"S1", 10.0, 20.0});
  EXPECT_EQ(ApplySensorOutages(schedule, fleet), 1);
  EXPECT_EQ(fleet.SensorsWithOutages(), 1u);

  schedule.outages[0].sensor = "*";
  EXPECT_EQ(ApplySensorOutages(schedule, fleet), 3);
  EXPECT_EQ(fleet.SensorsWithOutages(), 3u);

  schedule.outages.clear();
  schedule.staggered.down_fraction = 0.5;
  schedule.staggered.horizon = 100.0;
  EXPECT_EQ(ApplySensorOutages(schedule, fleet), 3);

  // An empty schedule clears nothing and touches nobody.
  EXPECT_EQ(ApplySensorOutages(FaultSchedule{}, fleet), 0);
}

TEST(ApplySensorOutagesTest, UnknownLabelThrows) {
  telescope::Telescope fleet;
  fleet.AddSensor("S0", Prefix{Ipv4{10, 0, 0, 0}, 24});
  fleet.Build();
  FaultSchedule schedule;
  schedule.outages.push_back(OutageWindow{"nope", 0.0, 1.0});
  EXPECT_THROW((void)ApplySensorOutages(schedule, fleet),
               std::invalid_argument);
}

TEST(TelescopeOutageTest, DownSensorRecordsNothingAndTalliesMisses) {
  telescope::Telescope fleet;
  const int a = fleet.AddSensor("A", Prefix{Ipv4{10, 0, 0, 0}, 24});
  const int b = fleet.AddSensor("B", Prefix{Ipv4{20, 0, 0, 0}, 24});
  fleet.Build();
  fleet.SetSensorOutages(a, {{10.0, 20.0}});

  fleet.Observe(5.0, Ipv4{1, 1, 1, 1}, Ipv4{10, 0, 0, 1});   // A up.
  fleet.Observe(15.0, Ipv4{1, 1, 1, 2}, Ipv4{10, 0, 0, 2});  // A down.
  fleet.Observe(15.0, Ipv4{1, 1, 1, 2}, Ipv4{20, 0, 0, 2});  // B unaffected.
  fleet.Observe(20.0, Ipv4{1, 1, 1, 3}, Ipv4{10, 0, 0, 3});  // A back ([down,up)).
  EXPECT_EQ(fleet.sensor(a).probe_count(), 2u);
  EXPECT_EQ(fleet.sensor(b).probe_count(), 1u);
  EXPECT_EQ(fleet.sensor(a).outage_missed_probes(), 1u);
  EXPECT_EQ(fleet.OutageMissedProbes(), 1u);
  EXPECT_DOUBLE_EQ(fleet.sensor(a).DownSeconds(), 10.0);
}

TEST(TelescopeOutageTest, WindowsAreMergedAndSurviveReset) {
  telescope::Telescope fleet;
  const int a = fleet.AddSensor("A", Prefix{Ipv4{10, 0, 0, 0}, 24});
  fleet.Build();
  // Overlapping + out-of-order windows merge to [5, 25).
  fleet.SetSensorOutages(a, {{15.0, 25.0}, {5.0, 18.0}});
  EXPECT_DOUBLE_EQ(fleet.sensor(a).DownSeconds(), 20.0);

  fleet.Observe(10.0, Ipv4{1, 1, 1, 1}, Ipv4{10, 0, 0, 1});
  EXPECT_EQ(fleet.sensor(a).outage_missed_probes(), 1u);
  fleet.ResetAll();
  // Reset clears the tally and the cursor — the schedule itself persists,
  // so a fleet can be reused across trials with the same fault plan.
  EXPECT_EQ(fleet.sensor(a).outage_missed_probes(), 0u);
  fleet.Observe(10.0, Ipv4{1, 1, 1, 1}, Ipv4{10, 0, 0, 1});
  EXPECT_EQ(fleet.sensor(a).probe_count(), 0u);
  EXPECT_EQ(fleet.sensor(a).outage_missed_probes(), 1u);
  // Clearing the windows re-opens the sensor.
  fleet.SetSensorOutages(a, {});
  EXPECT_EQ(fleet.SensorsWithOutages(), 0u);
  fleet.Observe(12.0, Ipv4{1, 1, 1, 1}, Ipv4{10, 0, 0, 1});
  EXPECT_EQ(fleet.sensor(a).probe_count(), 1u);
}

TEST(TelescopeOutageTest, ZeroLengthWindowsNormalizeAway) {
  // Regression: a scripted [t, t) outage used to survive as a degenerate
  // window — has_outages() said yes, ApplySensorOutages counted the
  // sensor, but no probe could ever land inside it.  Normalization drops
  // it, and every observer of "is this sensor affected" agrees.
  telescope::Telescope fleet;
  const int a = fleet.AddSensor("A", Prefix{Ipv4{10, 0, 0, 0}, 24});
  fleet.Build();

  FaultSchedule schedule;
  schedule.outages.push_back(OutageWindow{"A", 5.0, 5.0});
  schedule.outages.push_back(OutageWindow{"A", 9.0, 3.0});  // Inverted.
  EXPECT_EQ(ApplySensorOutages(schedule, fleet), 0);
  EXPECT_FALSE(fleet.sensor(a).has_outages());
  EXPECT_EQ(fleet.SensorsWithOutages(), 0u);
  EXPECT_DOUBLE_EQ(fleet.sensor(a).DownSeconds(), 0.0);
  fleet.Observe(5.0, Ipv4{1, 1, 1, 1}, Ipv4{10, 0, 0, 1});
  EXPECT_EQ(fleet.sensor(a).probe_count(), 1u);
  EXPECT_EQ(fleet.sensor(a).outage_missed_probes(), 0u);
}

TEST(TelescopeOutageTest, AbuttingWindowsMergeWithoutSeamFlicker) {
  // Regression: [10, 20) followed by [20, 30) used to leave the merged-
  // window cursor sitting between the halves, so a probe at exactly t=20
  // slipped through an outage the schedule says covers [10, 30).
  telescope::Telescope fleet;
  const int a = fleet.AddSensor("A", Prefix{Ipv4{10, 0, 0, 0}, 24});
  fleet.Build();
  fleet.SetSensorOutages(a, {{10.0, 20.0}, {20.0, 30.0}});
  EXPECT_DOUBLE_EQ(fleet.sensor(a).DownSeconds(), 20.0);

  auto& sensor = fleet.sensor(a);
  // Half-open on both ends of the merged window, down at the seam.
  EXPECT_FALSE(sensor.InOutage(9.0));
  EXPECT_TRUE(sensor.InOutage(10.0));
  EXPECT_TRUE(sensor.InOutage(19.999));
  EXPECT_TRUE(sensor.InOutage(20.0));  // The seam — no one-probe flicker.
  EXPECT_TRUE(sensor.InOutage(29.999));
  EXPECT_FALSE(sensor.InOutage(30.0));
}

TEST(ApplySensorOutagesTest, StaggeredWindowsReachDuplicateLabels) {
  // Regression: staggered windows were routed back through a label table,
  // so with two sensors sharing a label the first swallowed both windows
  // and the second stayed up for the whole run.  Windows are drawn one per
  // sensor in fleet order and must land positionally.
  telescope::Telescope fleet;
  const int first = fleet.AddSensor("dup", Prefix{Ipv4{10, 0, 0, 0}, 24});
  const int second = fleet.AddSensor("dup", Prefix{Ipv4{20, 0, 0, 0}, 24});
  fleet.Build();

  FaultSchedule schedule;
  schedule.staggered.down_fraction = 0.5;
  schedule.staggered.horizon = 1000.0;
  EXPECT_EQ(ApplySensorOutages(schedule, fleet), 2);
  EXPECT_EQ(fleet.SensorsWithOutages(), 2u);
  EXPECT_TRUE(fleet.sensor(first).has_outages());
  EXPECT_TRUE(fleet.sensor(second).has_outages());
  // Each sensor got exactly its own down_fraction * horizon of downtime.
  EXPECT_DOUBLE_EQ(fleet.sensor(first).DownSeconds(1000.0), 500.0);
  EXPECT_DOUBLE_EQ(fleet.sensor(second).DownSeconds(1000.0), 500.0);
}

}  // namespace
}  // namespace hotspots::fault
