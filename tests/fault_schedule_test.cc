// Fault-injection subsystem: spec parsing, staggered-outage determinism,
// trial kills, the delivery-fault injector, and outage application to a
// sensor fleet.
#include "fault/schedule.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/delivery.h"
#include "fault/inject.h"
#include "telescope/telescope.h"

namespace hotspots::fault {
namespace {

using net::Ipv4;
using net::Prefix;
using topology::Delivery;

TEST(FaultSpecTest, ParsesEveryDirective) {
  const FaultSchedule schedule = ParseFaultSpec(
      "seed:0xBEEF;outage:S3:100:200;outage:*:0:inf;outages:0.3:2000;"
      "loss:0.01;dup:0.002;acl:10.0.0.0/8@500;trialfail:0.05");
  EXPECT_EQ(schedule.seed, 0xBEEFu);
  ASSERT_EQ(schedule.outages.size(), 2u);
  EXPECT_EQ(schedule.outages[0].sensor, "S3");
  EXPECT_DOUBLE_EQ(schedule.outages[0].down_at, 100.0);
  EXPECT_DOUBLE_EQ(schedule.outages[0].up_at, 200.0);
  EXPECT_EQ(schedule.outages[1].sensor, "*");
  EXPECT_TRUE(std::isinf(schedule.outages[1].up_at));
  EXPECT_DOUBLE_EQ(schedule.staggered.down_fraction, 0.3);
  EXPECT_DOUBLE_EQ(schedule.staggered.horizon, 2000.0);
  EXPECT_DOUBLE_EQ(schedule.delivery.loss_rate, 0.01);
  EXPECT_DOUBLE_EQ(schedule.delivery.duplication_rate, 0.002);
  ASSERT_EQ(schedule.acl_drift.size(), 1u);
  EXPECT_DOUBLE_EQ(schedule.acl_drift[0].at, 500.0);
  EXPECT_EQ(schedule.acl_drift[0].block, (Prefix{Ipv4{10, 0, 0, 0}, 8}));
  EXPECT_DOUBLE_EQ(schedule.trials.failure_rate, 0.05);
  EXPECT_FALSE(schedule.empty());
  EXPECT_TRUE(schedule.HasDeliveryFaults());
}

TEST(FaultSpecTest, EmptySpecIsEmptySchedule) {
  EXPECT_TRUE(ParseFaultSpec("").empty());
  EXPECT_TRUE(ParseFaultSpec(";;").empty());
  EXPECT_TRUE(FaultSchedule{}.empty());
  EXPECT_FALSE(FaultSchedule{}.HasDeliveryFaults());
  // A seed alone injects nothing.
  EXPECT_TRUE(ParseFaultSpec("seed:7").empty());
}

TEST(FaultSpecTest, DriftEventsSortedByTime) {
  const FaultSchedule schedule =
      ParseFaultSpec("acl:30.0.0.0/16@900;acl:20.0.0.0/16@100");
  ASSERT_EQ(schedule.acl_drift.size(), 2u);
  EXPECT_DOUBLE_EQ(schedule.acl_drift[0].at, 100.0);
  EXPECT_DOUBLE_EQ(schedule.acl_drift[1].at, 900.0);
}

TEST(FaultSpecTest, RejectsMalformedDirectives) {
  EXPECT_THROW((void)ParseFaultSpec("bogus:1"), std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("loss"), std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("loss:1.5"), std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("loss:abc"), std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("outage:S1:5"), std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("outage:S1:9:5"), std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("outages:0.5:-1"), std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("acl:10.0.0.0/8"), std::invalid_argument);
  // Drift is modelled at /16 granularity; longer prefixes are a spec error,
  // not a silent widening.
  EXPECT_THROW((void)ParseFaultSpec("acl:10.1.2.0/24@5"),
               std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("seed:12junk"), std::invalid_argument);
}

TEST(StaggeredOutagesTest, DeterministicInLabelsAndSeed) {
  const std::vector<std::string> labels = {"A", "B", "C", "D"};
  const auto first = StaggeredOutages(labels, 1000.0, 0.25, 42);
  const auto again = StaggeredOutages(labels, 1000.0, 0.25, 42);
  ASSERT_EQ(first.size(), 4u);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].sensor, labels[i]);
    EXPECT_DOUBLE_EQ(first[i].down_at, again[i].down_at);
    EXPECT_DOUBLE_EQ(first[i].up_at, again[i].up_at);
    // Window shape: length = fraction * horizon, inside [0, horizon].
    EXPECT_DOUBLE_EQ(first[i].up_at - first[i].down_at, 250.0);
    EXPECT_GE(first[i].down_at, 0.0);
    EXPECT_LE(first[i].up_at, 1000.0);
  }
  // A different schedule seed draws different windows.
  const auto other = StaggeredOutages(labels, 1000.0, 0.25, 43);
  bool any_difference = false;
  for (std::size_t i = 0; i < first.size(); ++i) {
    any_difference |= first[i].down_at != other[i].down_at;
  }
  EXPECT_TRUE(any_difference);
  EXPECT_TRUE(StaggeredOutages(labels, 1000.0, 0.0, 42).empty());
}

TEST(ShouldKillTrialTest, EdgeRatesAndDeterminism) {
  FaultSchedule schedule;
  EXPECT_FALSE(ShouldKillTrial(schedule, 0, 1));
  schedule.trials.failure_rate = 1.0;
  EXPECT_TRUE(ShouldKillTrial(schedule, 0, 1));
  EXPECT_THROW(MaybeKillTrial(schedule, 0, 1), TrialKilled);
  schedule.trials.failure_rate = 0.5;
  // Pure function of (schedule seed, trial, seed) — and sensitive to all
  // three, so retries (fresh seeds) get fresh draws.
  int kills = 0;
  int flips = 0;
  for (int trial = 0; trial < 64; ++trial) {
    const bool kill = ShouldKillTrial(schedule, trial, 0xABC + trial);
    EXPECT_EQ(kill, ShouldKillTrial(schedule, trial, 0xABC + trial));
    kills += kill ? 1 : 0;
    flips += kill != ShouldKillTrial(schedule, trial, 0xDEF + trial) ? 1 : 0;
  }
  EXPECT_GT(kills, 8);
  EXPECT_LT(kills, 56);
  EXPECT_GT(flips, 0);
}

TEST(DeliveryFaultsTest, LossDowngradesOnlyDeliveredProbes) {
  FaultSchedule schedule;
  schedule.delivery.loss_rate = 1.0;
  DeliveryFaults faults{schedule};
  faults.OnRunStart(7);
  const auto lost = faults.OnProbeVerdict(1.0, Ipv4{1, 2, 3, 4},
                                          Delivery::kDelivered);
  EXPECT_EQ(lost.verdict, Delivery::kNetworkLoss);
  EXPECT_FALSE(lost.duplicate);
  // A probe the topology already dropped is never resurrected or relabeled.
  const auto dropped = faults.OnProbeVerdict(2.0, Ipv4{1, 2, 3, 4},
                                             Delivery::kIngressFiltered);
  EXPECT_EQ(dropped.verdict, Delivery::kIngressFiltered);
  EXPECT_EQ(faults.injected_losses(), 1u);
}

TEST(DeliveryFaultsTest, DuplicationFlagsDeliveredProbes) {
  FaultSchedule schedule;
  schedule.delivery.duplication_rate = 1.0;
  DeliveryFaults faults{schedule};
  faults.OnRunStart(7);
  const auto outcome = faults.OnProbeVerdict(1.0, Ipv4{1, 2, 3, 4},
                                             Delivery::kDelivered);
  EXPECT_EQ(outcome.verdict, Delivery::kDelivered);
  EXPECT_TRUE(outcome.duplicate);
  const auto dropped = faults.OnProbeVerdict(2.0, Ipv4{1, 2, 3, 4},
                                             Delivery::kNatUnroutable);
  EXPECT_FALSE(dropped.duplicate);
  EXPECT_EQ(faults.injected_duplicates(), 1u);
}

TEST(DeliveryFaultsTest, AclDriftFiltersSlash16sFromEventTime) {
  FaultSchedule schedule;
  schedule.acl_drift.push_back(
      AclDriftEvent{100.0, Prefix{Ipv4{10, 2, 0, 0}, 15}});
  DeliveryFaults faults{schedule};
  faults.OnRunStart(7);
  const Ipv4 inside{10, 2, 4, 4};
  const Ipv4 sibling{10, 3, 4, 4};  // The /15 spans both 10.2/16 and 10.3/16.
  const Ipv4 outside{10, 4, 4, 4};
  EXPECT_EQ(faults.OnProbeVerdict(99.0, inside, Delivery::kDelivered).verdict,
            Delivery::kDelivered);
  EXPECT_EQ(faults.OnProbeVerdict(100.0, inside, Delivery::kDelivered).verdict,
            Delivery::kIngressFiltered);
  EXPECT_EQ(faults.OnProbeVerdict(100.5, sibling, Delivery::kDelivered)
                .verdict,
            Delivery::kIngressFiltered);
  EXPECT_EQ(faults.OnProbeVerdict(101.0, outside, Delivery::kDelivered)
                .verdict,
            Delivery::kDelivered);
  EXPECT_EQ(faults.drift_filtered(), 2u);
  // OnRunStart re-arms: the drift is inactive again before its time.
  faults.OnRunStart(7);
  EXPECT_EQ(faults.OnProbeVerdict(50.0, inside, Delivery::kDelivered).verdict,
            Delivery::kDelivered);
}

TEST(DeliveryFaultsTest, StreamIsPrivateAndSeedDerived) {
  FaultSchedule schedule;
  schedule.delivery.loss_rate = 0.5;
  DeliveryFaults faults{schedule};
  const auto draw_pattern = [&](std::uint64_t engine_seed) {
    faults.OnRunStart(engine_seed);
    std::vector<bool> pattern;
    for (int i = 0; i < 256; ++i) {
      pattern.push_back(
          faults.OnProbeVerdict(static_cast<double>(i), Ipv4{1, 1, 1, 1},
                                Delivery::kDelivered)
              .verdict != Delivery::kDelivered);
    }
    return pattern;
  };
  // Same engine seed → identical decisions; different seed → different.
  EXPECT_EQ(draw_pattern(7), draw_pattern(7));
  EXPECT_NE(draw_pattern(7), draw_pattern(8));
}

TEST(ApplySensorOutagesTest, WildcardScriptedAndStaggered) {
  telescope::Telescope fleet;
  fleet.AddSensor("S0", Prefix{Ipv4{10, 0, 0, 0}, 24});
  fleet.AddSensor("S1", Prefix{Ipv4{20, 0, 0, 0}, 24});
  fleet.AddSensor("S2", Prefix{Ipv4{30, 0, 0, 0}, 24});
  fleet.Build();

  FaultSchedule schedule;
  schedule.outages.push_back(OutageWindow{"S1", 10.0, 20.0});
  EXPECT_EQ(ApplySensorOutages(schedule, fleet), 1);
  EXPECT_EQ(fleet.SensorsWithOutages(), 1u);

  schedule.outages[0].sensor = "*";
  EXPECT_EQ(ApplySensorOutages(schedule, fleet), 3);
  EXPECT_EQ(fleet.SensorsWithOutages(), 3u);

  schedule.outages.clear();
  schedule.staggered.down_fraction = 0.5;
  schedule.staggered.horizon = 100.0;
  EXPECT_EQ(ApplySensorOutages(schedule, fleet), 3);

  // An empty schedule clears nothing and touches nobody.
  EXPECT_EQ(ApplySensorOutages(FaultSchedule{}, fleet), 0);
}

TEST(ApplySensorOutagesTest, UnknownLabelThrows) {
  telescope::Telescope fleet;
  fleet.AddSensor("S0", Prefix{Ipv4{10, 0, 0, 0}, 24});
  fleet.Build();
  FaultSchedule schedule;
  schedule.outages.push_back(OutageWindow{"nope", 0.0, 1.0});
  EXPECT_THROW((void)ApplySensorOutages(schedule, fleet),
               std::invalid_argument);
}

TEST(TelescopeOutageTest, DownSensorRecordsNothingAndTalliesMisses) {
  telescope::Telescope fleet;
  const int a = fleet.AddSensor("A", Prefix{Ipv4{10, 0, 0, 0}, 24});
  const int b = fleet.AddSensor("B", Prefix{Ipv4{20, 0, 0, 0}, 24});
  fleet.Build();
  fleet.SetSensorOutages(a, {{10.0, 20.0}});

  fleet.Observe(5.0, Ipv4{1, 1, 1, 1}, Ipv4{10, 0, 0, 1});   // A up.
  fleet.Observe(15.0, Ipv4{1, 1, 1, 2}, Ipv4{10, 0, 0, 2});  // A down.
  fleet.Observe(15.0, Ipv4{1, 1, 1, 2}, Ipv4{20, 0, 0, 2});  // B unaffected.
  fleet.Observe(20.0, Ipv4{1, 1, 1, 3}, Ipv4{10, 0, 0, 3});  // A back ([down,up)).
  EXPECT_EQ(fleet.sensor(a).probe_count(), 2u);
  EXPECT_EQ(fleet.sensor(b).probe_count(), 1u);
  EXPECT_EQ(fleet.sensor(a).outage_missed_probes(), 1u);
  EXPECT_EQ(fleet.OutageMissedProbes(), 1u);
  EXPECT_DOUBLE_EQ(fleet.sensor(a).DownSeconds(), 10.0);
}

TEST(TelescopeOutageTest, WindowsAreMergedAndSurviveReset) {
  telescope::Telescope fleet;
  const int a = fleet.AddSensor("A", Prefix{Ipv4{10, 0, 0, 0}, 24});
  fleet.Build();
  // Overlapping + out-of-order windows merge to [5, 25).
  fleet.SetSensorOutages(a, {{15.0, 25.0}, {5.0, 18.0}});
  EXPECT_DOUBLE_EQ(fleet.sensor(a).DownSeconds(), 20.0);

  fleet.Observe(10.0, Ipv4{1, 1, 1, 1}, Ipv4{10, 0, 0, 1});
  EXPECT_EQ(fleet.sensor(a).outage_missed_probes(), 1u);
  fleet.ResetAll();
  // Reset clears the tally and the cursor — the schedule itself persists,
  // so a fleet can be reused across trials with the same fault plan.
  EXPECT_EQ(fleet.sensor(a).outage_missed_probes(), 0u);
  fleet.Observe(10.0, Ipv4{1, 1, 1, 1}, Ipv4{10, 0, 0, 1});
  EXPECT_EQ(fleet.sensor(a).probe_count(), 0u);
  EXPECT_EQ(fleet.sensor(a).outage_missed_probes(), 1u);
  // Clearing the windows re-opens the sensor.
  fleet.SetSensorOutages(a, {});
  EXPECT_EQ(fleet.SensorsWithOutages(), 0u);
  fleet.Observe(12.0, Ipv4{1, 1, 1, 1}, Ipv4{10, 0, 0, 1});
  EXPECT_EQ(fleet.sensor(a).probe_count(), 1u);
}

TEST(TelescopeOutageTest, ZeroLengthWindowsNormalizeAway) {
  // Regression: a scripted [t, t) outage used to survive as a degenerate
  // window — has_outages() said yes, ApplySensorOutages counted the
  // sensor, but no probe could ever land inside it.  Normalization drops
  // it, and every observer of "is this sensor affected" agrees.
  telescope::Telescope fleet;
  const int a = fleet.AddSensor("A", Prefix{Ipv4{10, 0, 0, 0}, 24});
  fleet.Build();

  FaultSchedule schedule;
  schedule.outages.push_back(OutageWindow{"A", 5.0, 5.0});
  schedule.outages.push_back(OutageWindow{"A", 9.0, 3.0});  // Inverted.
  EXPECT_EQ(ApplySensorOutages(schedule, fleet), 0);
  EXPECT_FALSE(fleet.sensor(a).has_outages());
  EXPECT_EQ(fleet.SensorsWithOutages(), 0u);
  EXPECT_DOUBLE_EQ(fleet.sensor(a).DownSeconds(), 0.0);
  fleet.Observe(5.0, Ipv4{1, 1, 1, 1}, Ipv4{10, 0, 0, 1});
  EXPECT_EQ(fleet.sensor(a).probe_count(), 1u);
  EXPECT_EQ(fleet.sensor(a).outage_missed_probes(), 0u);
}

TEST(TelescopeOutageTest, AbuttingWindowsMergeWithoutSeamFlicker) {
  // Regression: [10, 20) followed by [20, 30) used to leave the merged-
  // window cursor sitting between the halves, so a probe at exactly t=20
  // slipped through an outage the schedule says covers [10, 30).
  telescope::Telescope fleet;
  const int a = fleet.AddSensor("A", Prefix{Ipv4{10, 0, 0, 0}, 24});
  fleet.Build();
  fleet.SetSensorOutages(a, {{10.0, 20.0}, {20.0, 30.0}});
  EXPECT_DOUBLE_EQ(fleet.sensor(a).DownSeconds(), 20.0);

  auto& sensor = fleet.sensor(a);
  // Half-open on both ends of the merged window, down at the seam.
  EXPECT_FALSE(sensor.InOutage(9.0));
  EXPECT_TRUE(sensor.InOutage(10.0));
  EXPECT_TRUE(sensor.InOutage(19.999));
  EXPECT_TRUE(sensor.InOutage(20.0));  // The seam — no one-probe flicker.
  EXPECT_TRUE(sensor.InOutage(29.999));
  EXPECT_FALSE(sensor.InOutage(30.0));
}

TEST(ApplySensorOutagesTest, StaggeredWindowsReachDuplicateLabels) {
  // Regression: staggered windows were routed back through a label table,
  // so with two sensors sharing a label the first swallowed both windows
  // and the second stayed up for the whole run.  Windows are drawn one per
  // sensor in fleet order and must land positionally.
  telescope::Telescope fleet;
  const int first = fleet.AddSensor("dup", Prefix{Ipv4{10, 0, 0, 0}, 24});
  const int second = fleet.AddSensor("dup", Prefix{Ipv4{20, 0, 0, 0}, 24});
  fleet.Build();

  FaultSchedule schedule;
  schedule.staggered.down_fraction = 0.5;
  schedule.staggered.horizon = 1000.0;
  EXPECT_EQ(ApplySensorOutages(schedule, fleet), 2);
  EXPECT_EQ(fleet.SensorsWithOutages(), 2u);
  EXPECT_TRUE(fleet.sensor(first).has_outages());
  EXPECT_TRUE(fleet.sensor(second).has_outages());
  // Each sensor got exactly its own down_fraction * horizon of downtime.
  EXPECT_DOUBLE_EQ(fleet.sensor(first).DownSeconds(1000.0), 500.0);
  EXPECT_DOUBLE_EQ(fleet.sensor(second).DownSeconds(1000.0), 500.0);
}

// -- hotspots.faults.v2: correlated-failure grammar -----------------------

TEST(FaultSpecV2Test, ParsesEveryV2Directive) {
  const FaultSchedule schedule = ParseFaultSpec(
      "group:edge=S0,S1;groupoutage:10.0.0.0/8:100:200;"
      "groupoutage:@edge:50:inf;groupoutages:8:0.25:1000;"
      "gilbert:0.01:0.8:0.002:0.1:2.5;"
      "profile:0=0.01,300=0.2,600=0.01@900;alertdelay:2:30");
  ASSERT_EQ(schedule.groups.size(), 1u);
  EXPECT_EQ(schedule.groups[0].name, "edge");
  EXPECT_EQ(schedule.groups[0].labels,
            (std::vector<std::string>{"S0", "S1"}));
  ASSERT_EQ(schedule.group_outages.size(), 2u);
  EXPECT_TRUE(schedule.group_outages[0].group.empty());
  EXPECT_EQ(schedule.group_outages[0].block, (Prefix{Ipv4{10, 0, 0, 0}, 8}));
  EXPECT_DOUBLE_EQ(schedule.group_outages[0].down_at, 100.0);
  EXPECT_DOUBLE_EQ(schedule.group_outages[0].up_at, 200.0);
  EXPECT_EQ(schedule.group_outages[1].group, "edge");
  EXPECT_TRUE(std::isinf(schedule.group_outages[1].up_at));
  EXPECT_EQ(schedule.group_staggered.prefix_bits, 8);
  EXPECT_DOUBLE_EQ(schedule.group_staggered.down_fraction, 0.25);
  EXPECT_DOUBLE_EQ(schedule.group_staggered.horizon, 1000.0);
  EXPECT_DOUBLE_EQ(schedule.gilbert.good_loss, 0.01);
  EXPECT_DOUBLE_EQ(schedule.gilbert.bad_loss, 0.8);
  EXPECT_DOUBLE_EQ(schedule.gilbert.enter_bad, 0.002);
  EXPECT_DOUBLE_EQ(schedule.gilbert.exit_bad, 0.1);
  EXPECT_DOUBLE_EQ(schedule.gilbert.tick_seconds, 2.5);
  EXPECT_TRUE(schedule.gilbert.Active());
  ASSERT_EQ(schedule.loss_profile.points.size(), 3u);
  EXPECT_DOUBLE_EQ(schedule.loss_profile.period, 900.0);
  EXPECT_TRUE(schedule.loss_profile.Active());
  EXPECT_DOUBLE_EQ(schedule.alert_delay.min_delay, 2.0);
  EXPECT_DOUBLE_EQ(schedule.alert_delay.max_delay, 30.0);
  EXPECT_TRUE(schedule.alert_delay.Active());
  EXPECT_FALSE(schedule.empty());
  EXPECT_TRUE(schedule.HasDeliveryFaults());
}

TEST(FaultSpecV2Test, NamedGroupsAloneInjectNothing) {
  // A `group:` directive only *names* a set; without a groupoutage keyed
  // to it the schedule injects nothing and must stay bit-identity empty.
  const FaultSchedule schedule = ParseFaultSpec("group:edge=S0,S1");
  EXPECT_TRUE(schedule.empty());
  EXPECT_FALSE(schedule.HasDeliveryFaults());
}

TEST(FaultSpecV2Test, DiagnosticsNameTokenAndByteOffset) {
  // "bogus:1" starts at byte 10 of the spec below; the error must carry
  // both the token and the offset so a bad clause deep inside a long
  // --faults argument is findable without bisecting.
  try {
    (void)ParseFaultSpec("loss:0.01;bogus:1;dup:0.5");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("bogus:1"), std::string::npos) << what;
    EXPECT_NE(what.find("at byte 10"), std::string::npos) << what;
    EXPECT_NE(what.find(kFaultSchema), std::string::npos) << what;
  }
}

TEST(FaultSpecV2Test, RejectsDuplicateScalarDirectives) {
  // A silent last-wins overwrite turns a typo'd experiment into a
  // different experiment; the duplicate diagnostic names both offsets.
  try {
    (void)ParseFaultSpec("loss:0.1;loss:0.2");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("duplicate \"loss\""), std::string::npos) << what;
    EXPECT_NE(what.find("first at byte 0"), std::string::npos) << what;
    EXPECT_NE(what.find("at byte 9"), std::string::npos) << what;
  }
  EXPECT_THROW((void)ParseFaultSpec("seed:1;seed:2"), std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("outages:0.1:10;outages:0.2:10"),
               std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("dup:0.1;dup:0.1"),
               std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("trialfail:0.1;trialfail:0.1"),
               std::invalid_argument);
  EXPECT_THROW(
      (void)ParseFaultSpec("gilbert:0:1:0.1:0.1;gilbert:0:1:0.1:0.1"),
      std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("profile:0=0.1;profile:0=0.2"),
               std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("alertdelay:1:2;alertdelay:1:2"),
               std::invalid_argument);
  EXPECT_THROW(
      (void)ParseFaultSpec("groupoutages:8:0.1:10;groupoutages:8:0.1:10"),
      std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("group:g=A;group:g=B"),
               std::invalid_argument);
  // Repeatable directives stay repeatable.
  EXPECT_NO_THROW(
      (void)ParseFaultSpec("outage:A:1:2;outage:A:5:6;"
                           "groupoutage:1.0.0.0/8:1:2;"
                           "groupoutage:2.0.0.0/8:1:2"));
}

TEST(FaultSpecV2Test, RejectsMalformedV2Directives) {
  EXPECT_THROW((void)ParseFaultSpec("group:=A"), std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("group:g=A,,B"), std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("groupoutage:10.0.0.0/8:5:5"),
               std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("groupoutage:@:1:2"),
               std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("groupoutage:junk:1:2"),
               std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("groupoutages:0:0.5:100"),
               std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("groupoutages:33:0.5:100"),
               std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("groupoutages:8:0.5:0"),
               std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("gilbert:0.1:0.2:0.3"),
               std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("gilbert:0.1:0.2:0.3:0.4:0"),
               std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("profile:5=0.1"), std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("profile:0=0.1,100=0.2,100=0.3"),
               std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("profile:0=0.1,100=0.2@50"),
               std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("alertdelay:5:2"),
               std::invalid_argument);
  EXPECT_THROW((void)ParseFaultSpec("alertdelay:0:inf"),
               std::invalid_argument);
}

TEST(LossProfileTest, PiecewiseEvaluationAndPeriodicWrap) {
  const FaultSchedule schedule =
      ParseFaultSpec("profile:0=0.01,300=0.2,600=0.01@900");
  const LossProfile& profile = schedule.loss_profile;
  EXPECT_DOUBLE_EQ(profile.LossAt(0.0), 0.01);
  EXPECT_DOUBLE_EQ(profile.LossAt(299.0), 0.01);
  EXPECT_DOUBLE_EQ(profile.LossAt(300.0), 0.2);   // Knot is inclusive.
  EXPECT_DOUBLE_EQ(profile.LossAt(599.0), 0.2);
  EXPECT_DOUBLE_EQ(profile.LossAt(600.0), 0.01);
  EXPECT_DOUBLE_EQ(profile.LossAt(899.0), 0.01);
  EXPECT_DOUBLE_EQ(profile.LossAt(900.0), 0.01);   // Wraps to t = 0.
  EXPECT_DOUBLE_EQ(profile.LossAt(1200.0), 0.2);   // 1200 mod 900 = 300.
  EXPECT_DOUBLE_EQ(LossProfile{}.LossAt(5.0), 0.0);
}

TEST(GroupStaggeredOutagesTest, MembersShareWindowsAndDrawsAreByGroup) {
  // Three sensors in group 10, one in group 20: the trio shares ONE
  // window, and group 20's window is the same whether the fleet carries
  // one or three sensors of group 10 — draws are per *group*, in
  // ascending key order, never per sensor.
  const auto windows =
      GroupStaggeredOutages({10, 10, 20, 10}, 1000.0, 0.25, 42);
  ASSERT_EQ(windows.size(), 4u);
  EXPECT_DOUBLE_EQ(windows[0].down_at, windows[1].down_at);
  EXPECT_DOUBLE_EQ(windows[0].down_at, windows[3].down_at);
  EXPECT_NE(windows[0].down_at, windows[2].down_at);
  for (const OutageWindow& window : windows) {
    EXPECT_DOUBLE_EQ(window.up_at - window.down_at, 250.0);
    EXPECT_GE(window.down_at, 0.0);
    EXPECT_LE(window.up_at, 1000.0);
  }
  const auto fewer = GroupStaggeredOutages({10, 20}, 1000.0, 0.25, 42);
  ASSERT_EQ(fewer.size(), 2u);
  EXPECT_DOUBLE_EQ(fewer[0].down_at, windows[0].down_at);
  EXPECT_DOUBLE_EQ(fewer[1].down_at, windows[2].down_at);
  // Deterministic in (keys, seed); a different seed draws elsewhere.
  const auto again = GroupStaggeredOutages({10, 10, 20, 10}, 1000.0, 0.25, 42);
  for (std::size_t i = 0; i < windows.size(); ++i) {
    EXPECT_DOUBLE_EQ(windows[i].down_at, again[i].down_at);
  }
  const auto other = GroupStaggeredOutages({10, 20}, 1000.0, 0.25, 43);
  EXPECT_NE(fewer[0].down_at, other[0].down_at);
  EXPECT_TRUE(GroupStaggeredOutages({}, 1000.0, 0.25, 42).empty());
}

TEST(ApplySensorOutagesTest, GroupOutagesByPrefixNameAndStagger) {
  telescope::Telescope fleet;
  const int a = fleet.AddSensor("A", Prefix{Ipv4{10, 1, 0, 0}, 24});
  const int b = fleet.AddSensor("B", Prefix{Ipv4{10, 2, 0, 0}, 24});
  const int c = fleet.AddSensor("C", Prefix{Ipv4{20, 1, 0, 0}, 24});
  fleet.Build();

  // Prefix-keyed: 10/8 darkens A and B together, never C.
  FaultSchedule schedule = ParseFaultSpec("groupoutage:10.0.0.0/8:100:200");
  EXPECT_EQ(ApplySensorOutages(schedule, fleet), 2);
  EXPECT_TRUE(fleet.sensor(a).InOutage(150.0));
  EXPECT_TRUE(fleet.sensor(b).InOutage(150.0));
  EXPECT_FALSE(fleet.sensor(c).InOutage(150.0));

  // Named-set keyed: @pair picks exactly A and C.
  telescope::Telescope fleet2;
  fleet2.AddSensor("A", Prefix{Ipv4{10, 1, 0, 0}, 24});
  fleet2.AddSensor("B", Prefix{Ipv4{10, 2, 0, 0}, 24});
  fleet2.AddSensor("C", Prefix{Ipv4{20, 1, 0, 0}, 24});
  fleet2.Build();
  schedule = ParseFaultSpec("group:pair=A,C;groupoutage:@pair:5:15");
  EXPECT_EQ(ApplySensorOutages(schedule, fleet2), 2);
  EXPECT_TRUE(fleet2.sensor(0).InOutage(10.0));
  EXPECT_FALSE(fleet2.sensor(1).InOutage(10.0));
  EXPECT_TRUE(fleet2.sensor(2).InOutage(10.0));

  // Correlated stagger at /8: A and B share one window, C draws its own;
  // every sensor still gets exactly fraction * horizon of darkness.
  telescope::Telescope fleet3;
  const int a3 = fleet3.AddSensor("A", Prefix{Ipv4{10, 1, 0, 0}, 24});
  const int b3 = fleet3.AddSensor("B", Prefix{Ipv4{10, 2, 0, 0}, 24});
  const int c3 = fleet3.AddSensor("C", Prefix{Ipv4{20, 1, 0, 0}, 24});
  fleet3.Build();
  schedule = ParseFaultSpec("groupoutages:8:0.5:1000");
  EXPECT_EQ(ApplySensorOutages(schedule, fleet3), 3);
  EXPECT_DOUBLE_EQ(fleet3.sensor(a3).DownSeconds(1000.0), 500.0);
  EXPECT_DOUBLE_EQ(fleet3.sensor(b3).DownSeconds(1000.0), 500.0);
  EXPECT_DOUBLE_EQ(fleet3.sensor(c3).DownSeconds(1000.0), 500.0);
  for (double t = 0.0; t < 1000.0; t += 10.0) {
    EXPECT_EQ(fleet3.sensor(a3).InOutage(t), fleet3.sensor(b3).InOutage(t))
        << "A and B share a /8 and must be dark together at t=" << t;
  }
}

TEST(ApplySensorOutagesTest, GroupOutageErrorsAreLoud) {
  telescope::Telescope fleet;
  fleet.AddSensor("A", Prefix{Ipv4{10, 1, 0, 0}, 24});
  fleet.Build();
  // Undefined named group.
  FaultSchedule schedule = ParseFaultSpec("groupoutage:@nope:1:2");
  EXPECT_THROW((void)ApplySensorOutages(schedule, fleet),
               std::invalid_argument);
  // Defined group naming an unknown sensor.
  schedule = ParseFaultSpec("group:g=A,ghost;groupoutage:@g:1:2");
  EXPECT_THROW((void)ApplySensorOutages(schedule, fleet),
               std::invalid_argument);
  // Prefix key containing no sensor — a silently empty correlated outage
  // would make the experiment lie about its darkness.
  schedule = ParseFaultSpec("groupoutage:99.0.0.0/8:1:2");
  EXPECT_THROW((void)ApplySensorOutages(schedule, fleet),
               std::invalid_argument);
}

}  // namespace
}  // namespace hotspots::fault
