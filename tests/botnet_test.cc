#include <gtest/gtest.h>

#include "botnet/bot.h"
#include "botnet/capture.h"
#include "botnet/command.h"
#include "botnet/controller.h"

namespace hotspots::botnet {
namespace {

using net::Ipv4;
using net::Prefix;

TEST(TargetPatternTest, ParsesPinnedAndWildcardOctets) {
  const auto pattern = TargetPattern::Parse("194.s.s.s");
  ASSERT_TRUE(pattern.has_value());
  EXPECT_EQ(pattern->PinnedLeadingOctets(), 1);
  EXPECT_EQ(pattern->ToPrefix(), Prefix(Ipv4(194, 0, 0, 0), 8));
}

TEST(TargetPatternTest, FullyWildcardCoversEverything) {
  for (const char* text : {"i.i.i.i", "s.s.s.s", "x.x.x", "s.s", "b"}) {
    const auto pattern = TargetPattern::Parse(text);
    ASSERT_TRUE(pattern.has_value()) << text;
    EXPECT_EQ(pattern->PinnedLeadingOctets(), 0) << text;
    EXPECT_EQ(pattern->ToPrefix().length(), 0) << text;
  }
}

TEST(TargetPatternTest, TwoPinnedOctetsMakeSlash16) {
  const auto pattern = TargetPattern::Parse("128.30.s.s");
  ASSERT_TRUE(pattern.has_value());
  EXPECT_EQ(pattern->ToPrefix(), Prefix(Ipv4(128, 30, 0, 0), 16));
}

TEST(TargetPatternTest, RejectsMalformed) {
  EXPECT_FALSE(TargetPattern::Parse("").has_value());
  EXPECT_FALSE(TargetPattern::Parse("300.s.s.s").has_value());
  EXPECT_FALSE(TargetPattern::Parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(TargetPattern::Parse("ss.s").has_value());
  EXPECT_FALSE(TargetPattern::Parse("1..2").has_value());
  EXPECT_FALSE(TargetPattern::Parse("q.q.q").has_value());
}

TEST(ParseBotCommandTest, RbotIpscan) {
  const auto command = ParseBotCommand("ipscan 194.s.s.s dcom2 -s");
  ASSERT_TRUE(command.has_value());
  EXPECT_EQ(command->dialect, Dialect::kRbot);
  EXPECT_EQ(command->module, "dcom2");
  EXPECT_EQ(command->TargetPrefix(), Prefix(Ipv4(194, 0, 0, 0), 8));
  ASSERT_EQ(command->flags.size(), 1u);
  EXPECT_EQ(command->flags[0], "-s");
}

TEST(ParseBotCommandTest, AgobotAdvscan) {
  const auto command = ParseBotCommand("advscan dcass x.x.x");
  ASSERT_TRUE(command.has_value());
  EXPECT_EQ(command->dialect, Dialect::kAgobot);
  EXPECT_EQ(command->module, "dcass");
  EXPECT_EQ(command->TargetPrefix().length(), 0);
}

TEST(ParseBotCommandTest, AdvscanWithoutPattern) {
  const auto command = ParseBotCommand("advscan lsass b");
  ASSERT_TRUE(command.has_value());
  EXPECT_EQ(command->module, "lsass");
  EXPECT_EQ(command->TargetPrefix().length(), 0);
}

TEST(ParseBotCommandTest, ControlPrefixAccepted) {
  EXPECT_TRUE(ParseBotCommand(".advscan dcom2 s.s.s.s").has_value());
  EXPECT_TRUE(ParseBotCommand("!ipscan s.s dcom2").has_value());
}

TEST(ParseBotCommandTest, RejectsNonCommands) {
  EXPECT_FALSE(ParseBotCommand("").has_value());
  EXPECT_FALSE(ParseBotCommand("PRIVMSG #chan :hello").has_value());
  EXPECT_FALSE(ParseBotCommand("ipscan").has_value());
  EXPECT_FALSE(ParseBotCommand("ipscan 194.s.s.s").has_value());
  EXPECT_FALSE(ParseBotCommand("ipscan 194.s.s.s notamodule").has_value());
  EXPECT_FALSE(ParseBotCommand("advscan notamodule x.x").has_value());
  EXPECT_FALSE(ParseBotCommand("scan 194.s.s.s dcom2").has_value());
}

TEST(ParseBotCommandTest, FormatRoundTrips) {
  for (const char* text :
       {"ipscan 194.s.s.s dcom2 -s", "advscan dcass x.x.x",
        "ipscan s.s mssql2000 -s", "advscan wkssvceng 194 1"}) {
    const auto command = ParseBotCommand(text);
    ASSERT_TRUE(command.has_value()) << text;
    EXPECT_EQ(FormatBotCommand(*command), text);
  }
}

TEST(BotControllerTest, EmittedCommandsAllParse) {
  BotController controller{"#owned", PaperCommandRepertoire(), 7};
  for (int i = 0; i < 200; ++i) {
    const std::string text = controller.DrawCommandText();
    EXPECT_TRUE(ParseBotCommand(text).has_value()) << text;
  }
}

TEST(BotControllerTest, TrafficIsTimestampSorted) {
  BotController controller{"#owned", PaperCommandRepertoire(), 8};
  const auto lines = controller.EmitTraffic(3600.0, 20, 100);
  EXPECT_EQ(lines.size(), 120u);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_LE(lines[i - 1].time, lines[i].time);
  }
}

TEST(BotControllerTest, ValidatesArguments) {
  EXPECT_THROW((BotController{"#c", {}, 1}), std::invalid_argument);
  BotController controller{"#c", PaperCommandRepertoire(), 1};
  EXPECT_THROW((void)controller.EmitTraffic(-1.0, 1, 1),
               std::invalid_argument);
}

TEST(SignatureCaptureTest, ExtractsOnlyCommands) {
  BotController controller{"#owned", PaperCommandRepertoire(), 9};
  const auto lines = controller.EmitTraffic(3600.0, 15, 200);
  SignatureCapture capture;
  capture.FeedAll(lines);
  EXPECT_EQ(capture.lines_scanned(), 215u);
  EXPECT_EQ(capture.log().size(), 15u);
}

TEST(SignatureCaptureTest, CommandedPrefixesDeduplicated) {
  SignatureCapture capture;
  capture.Feed(ChannelLine{0.0, "#c", "ipscan 194.s.s.s dcom2 -s"});
  capture.Feed(ChannelLine{1.0, "#c", "ipscan 194.s.s.s dcom2 -s"});
  capture.Feed(ChannelLine{2.0, "#c", "ipscan 128.s.s.s dcom2 -s"});
  capture.Feed(ChannelLine{3.0, "#c", "advscan dcass x.x.x"});
  const auto prefixes = capture.CommandedPrefixes();
  ASSERT_EQ(prefixes.size(), 3u);
  // Most specific first.
  EXPECT_EQ(prefixes[0].length(), 8);
  EXPECT_EQ(prefixes[1].length(), 8);
  EXPECT_EQ(prefixes[2].length(), 0);
}

TEST(BotExecutionTest, CommandedWormScansOnlyCommandedPrefix) {
  const auto command = ParseBotCommand("ipscan 194.s.s.s dcom2 -s");
  ASSERT_TRUE(command.has_value());
  const auto worm = MakeWormForCommand(*command);
  sim::Host host;
  host.address = Ipv4{60, 1, 2, 3};
  auto scanner = worm->MakeScanner(host, 5);
  prng::Xoshiro256 rng{1};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(scanner->NextTarget(rng).Slash8(), 194u);
  }
}

}  // namespace
}  // namespace hotspots::botnet
