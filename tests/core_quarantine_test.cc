#include "core/quarantine.h"

#include <gtest/gtest.h>

#include "telescope/ims.h"
#include "worms/codered2.h"
#include "worms/uniform.h"

namespace hotspots::core {
namespace {

using net::Ipv4;
using net::Prefix;

TEST(QuarantineTest, EmitsExactlyRequestedProbes) {
  worms::UniformWorm worm;
  sim::Host host;
  host.address = Ipv4{60, 1, 2, 3};
  auto scanner = worm.MakeScanner(host, 1);
  telescope::Telescope sensors;
  sensors.AddSensor("T", Prefix{Ipv4{10, 0, 0, 0}, 8});
  sensors.Build();
  const QuarantineResult result =
      RunQuarantine(*scanner, host.address, 100'000, sensors);
  EXPECT_EQ(result.probes_emitted, 100'000u);
  // A /8 is 1/256 of the space; uniform scanning lands ≈390 probes there.
  EXPECT_NEAR(static_cast<double>(result.probes_on_sensors), 100'000.0 / 256,
              120.0);
  EXPECT_EQ(result.probes_on_sensors, sensors.sensor(0).probe_count());
}

TEST(QuarantineTest, CountsOnlyNewProbes) {
  // Back-to-back runs against the same telescope: each result reflects its
  // own probes, not the accumulated total.
  worms::UniformWorm worm;
  sim::Host host;
  host.address = Ipv4{60, 1, 2, 3};
  telescope::Telescope sensors;
  sensors.AddSensor("T", Prefix{Ipv4{10, 0, 0, 0}, 8});
  sensors.Build();
  auto first = worm.MakeScanner(host, 1);
  const auto r1 = RunQuarantine(*first, host.address, 50'000, sensors);
  auto second = worm.MakeScanner(host, 2);
  const auto r2 = RunQuarantine(*second, host.address, 50'000, sensors);
  EXPECT_EQ(sensors.sensor(0).probe_count(),
            r1.probes_on_sensors + r2.probes_on_sensors);
  EXPECT_NEAR(static_cast<double>(r2.probes_on_sensors), 50'000.0 / 256,
              90.0);
}

TEST(QuarantineTest, SourceAttributionReachesSensors) {
  worms::CodeRed2Worm worm;
  const Ipv4 source{192, 168, 0, 2};
  auto scanner = worm.MakeQuarantineScanner(source, 3);
  telescope::Telescope ims = telescope::MakeImsTelescope();
  RunQuarantine(*scanner, source, 500'000, ims);
  const auto* m_block = ims.FindByLabel("M/22");
  ASSERT_NE(m_block, nullptr);
  // All probes carry the quarantined host as their (only) source.
  if (m_block->probe_count() > 0) {
    EXPECT_EQ(m_block->UniqueSourceCount(), 1u);
  }
}

TEST(QuarantineTest, ZeroProbesIsANoOp) {
  worms::UniformWorm worm;
  sim::Host host;
  host.address = Ipv4{60, 1, 2, 3};
  auto scanner = worm.MakeScanner(host, 1);
  telescope::Telescope sensors;
  sensors.AddSensor("T", Prefix{Ipv4{10, 0, 0, 0}, 8});
  sensors.Build();
  const auto result = RunQuarantine(*scanner, host.address, 0, sensors);
  EXPECT_EQ(result.probes_emitted, 0u);
  EXPECT_EQ(result.probes_on_sensors, 0u);
}

}  // namespace
}  // namespace hotspots::core
