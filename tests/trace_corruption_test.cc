// Fail-closed behaviour of the trace reader: every class of corruption —
// truncation, bit flips, header damage, structural lies, trailing
// garbage — must raise TraceError with a diagnostic naming the problem,
// and must never deliver an unverified batch to an observer.
//
// Each case starts from a freshly written valid trace and applies one
// surgical mutation, so a failure pinpoints the validation that regressed.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/observer.h"
#include "trace/crc32.h"
#include "trace/format.h"
#include "trace/reader.h"
#include "trace/replay.h"
#include "trace/writer.h"

namespace hotspots::trace {
namespace {

void StoreU32At(std::vector<std::uint8_t>& bytes, std::size_t offset,
                std::uint32_t value) {
  bytes[offset] = static_cast<std::uint8_t>(value);
  bytes[offset + 1] = static_cast<std::uint8_t>(value >> 8);
  bytes[offset + 2] = static_cast<std::uint8_t>(value >> 16);
  bytes[offset + 3] = static_cast<std::uint8_t>(value >> 24);
}

class TraceCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/corruption.trace";
    // Small blocks → several blocks plus a trailer in a few KB.
    TraceWriterOptions options;
    options.block_records = 64;
    options.scenario_fingerprint = 0xC0FFEE;
    options.seed = 0x5EED;
    TraceWriter writer{path_, options};
    writer.OnAttach();
    std::uint64_t x = 9;
    for (int i = 0; i < 300; ++i) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      writer.OnProbe(sim::ProbeEvent{
          .time = 0.01 * i,
          .src_host = static_cast<sim::HostId>(x % 64),
          .src_address = net::Ipv4{static_cast<std::uint32_t>(x >> 13)},
          .dst = net::Ipv4{static_cast<std::uint32_t>(x >> 27)},
          .delivery = static_cast<topology::Delivery>(x % 6)});
    }
    writer.Finish();
    records_ = writer.records_written();

    std::ifstream in{path_, std::ios::binary};
    bytes_.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
    ASSERT_GT(bytes_.size(),
              kHeaderBytes + kBlockFrameBytes + kTrailerPayloadBytes);
  }

  void TearDown() override {
    std::remove(path_.c_str());
    std::remove(MutantPath().c_str());
  }

  std::string MutantPath() const {
    return ::testing::TempDir() + "/corruption_mutant.trace";
  }

  /// Writes `mutant` to disk and reads it to exhaustion, expecting a
  /// TraceError whose message mentions `expected_substring`.  Records
  /// delivered before the failure must all come from CRC-verified blocks.
  void ExpectFailure(const std::vector<std::uint8_t>& mutant,
                     const std::string& expected_substring) {
    const std::string path = MutantPath();
    {
      std::ofstream out{path, std::ios::binary | std::ios::trunc};
      out.write(reinterpret_cast<const char*>(mutant.data()),
                static_cast<std::streamsize>(mutant.size()));
    }
    try {
      TraceReader reader{path};
      while (!reader.NextBatch().empty()) {
      }
      FAIL() << "corrupt trace accepted; expected error mentioning \""
             << expected_substring << "\"";
    } catch (const TraceError& error) {
      EXPECT_NE(std::string(error.what()).find(expected_substring),
                std::string::npos)
          << "actual message: " << error.what();
      // Diagnostics carry the file path so batch jobs can attribute
      // failures to the offending file.
      EXPECT_NE(std::string(error.what()).find(path), std::string::npos);
    }
  }

  std::size_t TrailerOffset() const {
    return bytes_.size() - kBlockFrameBytes - kTrailerPayloadBytes;
  }

  std::string path_;
  std::vector<std::uint8_t> bytes_;
  std::uint64_t records_ = 0;
};

TEST_F(TraceCorruptionTest, PristineFileReads) {
  TraceReader reader{path_};
  std::uint64_t seen = 0;
  for (auto batch = reader.NextBatch(); !batch.empty();
       batch = reader.NextBatch()) {
    seen += batch.size();
  }
  EXPECT_EQ(seen, records_);
  EXPECT_TRUE(reader.at_end());
  EXPECT_TRUE(reader.NextBatch().empty());  // Stays at end.
}

TEST_F(TraceCorruptionTest, EmptyFile) {
  ExpectFailure({}, "truncated file header");
}

TEST_F(TraceCorruptionTest, HeaderOnlyFileIsTruncated) {
  std::vector<std::uint8_t> mutant(bytes_.begin(),
                                   bytes_.begin() + kHeaderBytes);
  ExpectFailure(mutant, "truncated block frame");
}

TEST_F(TraceCorruptionTest, BadMagic) {
  auto mutant = bytes_;
  mutant[0] ^= 0xFF;
  ExpectFailure(mutant, "bad magic");
}

TEST_F(TraceCorruptionTest, UnsupportedVersion) {
  auto mutant = bytes_;
  StoreU32At(mutant, 8, kFormatVersion + 1);
  ExpectFailure(mutant, "unsupported format version");
}

TEST_F(TraceCorruptionTest, WrongDeclaredHeaderSize) {
  auto mutant = bytes_;
  StoreU32At(mutant, 12, kHeaderBytes + 8);
  ExpectFailure(mutant, "declared header size");
}

TEST_F(TraceCorruptionTest, SampledFlagWithZeroRate) {
  auto mutant = bytes_;
  // flags := sampled, sample_rate bits := 0.0 — an impossible pairing.
  StoreU32At(mutant, 32, static_cast<std::uint32_t>(kFlagSampled));
  for (std::size_t i = 40; i < 48; ++i) mutant[i] = 0;
  ExpectFailure(mutant, "sample rate outside (0,1]");
}

TEST_F(TraceCorruptionTest, PayloadBitFlipFailsCrc) {
  auto mutant = bytes_;
  // One bit inside the first block's payload.
  mutant[kHeaderBytes + kBlockFrameBytes + 5] ^= 0x10;
  ExpectFailure(mutant, "CRC mismatch");
}

TEST_F(TraceCorruptionTest, FrameCrcFieldFlipFailsCrc) {
  auto mutant = bytes_;
  mutant[kHeaderBytes + 8] ^= 0x01;  // Stored CRC of the first block.
  ExpectFailure(mutant, "CRC mismatch");
}

TEST_F(TraceCorruptionTest, AbsurdBlockRecordCount) {
  auto mutant = bytes_;
  StoreU32At(mutant, kHeaderBytes, kMaxBlockRecords + 1);
  ExpectFailure(mutant, "block record count");
}

TEST_F(TraceCorruptionTest, ImpossiblePayloadSizeForRecordCount) {
  auto mutant = bytes_;
  // 64 records cannot need more than 64 × kMaxRecordBytes of payload.
  StoreU32At(mutant, kHeaderBytes + 4, 64 * kMaxRecordBytes + 1);
  ExpectFailure(mutant, "impossible for");
}

TEST_F(TraceCorruptionTest, OversizedDeclaredPayload) {
  auto mutant = bytes_;
  StoreU32At(mutant, kHeaderBytes,
             kMaxBlockRecords);  // Count stays legal...
  StoreU32At(mutant, kHeaderBytes + 4,
             kMaxBlockPayloadBytes + 1);  // ...payload ceiling does not.
  ExpectFailure(mutant, "exceeds the format ceiling");
}

TEST_F(TraceCorruptionTest, TruncatedMidPayload) {
  std::vector<std::uint8_t> mutant(
      bytes_.begin(),
      bytes_.begin() + kHeaderBytes + kBlockFrameBytes + 10);
  ExpectFailure(mutant, "truncated block payload");
}

TEST_F(TraceCorruptionTest, TruncatedAtBlockBoundary) {
  // Cut exactly before the trailer: framing is intact, trailer missing.
  std::vector<std::uint8_t> mutant(bytes_.begin(),
                                   bytes_.begin() + TrailerOffset());
  ExpectFailure(mutant, "truncated block frame");
}

TEST_F(TraceCorruptionTest, TruncatedTrailerPayload) {
  std::vector<std::uint8_t> mutant(bytes_.begin(), bytes_.end() - 4);
  ExpectFailure(mutant, "truncated trailer payload");
}

TEST_F(TraceCorruptionTest, TrailerRecordCountLie) {
  auto mutant = bytes_;
  // Rewrite the trailer's record tally and recompute its CRC, so the lie
  // survives the checksum and must be caught by cross-checking.
  const std::size_t payload = TrailerOffset() + kBlockFrameBytes;
  StoreU32At(mutant, payload, static_cast<std::uint32_t>(records_ + 1));
  StoreU32At(mutant, TrailerOffset() + 8,
             Crc32(mutant.data() + payload, kTrailerPayloadBytes));
  ExpectFailure(mutant, "trailer declares");
}

TEST_F(TraceCorruptionTest, TrailingGarbageAfterTrailer) {
  auto mutant = bytes_;
  mutant.push_back(0xAB);
  ExpectFailure(mutant, "trailing bytes after the trailer");
}

TEST_F(TraceCorruptionTest, ReplayOfCorruptFileDeliversNoBadBatch) {
  auto mutant = bytes_;
  mutant[kHeaderBytes + kBlockFrameBytes + 3] ^= 0x80;  // First block.
  const std::string path = MutantPath();
  {
    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    out.write(reinterpret_cast<const char*>(mutant.data()),
              static_cast<std::streamsize>(mutant.size()));
  }
  sim::RecordingObserver observer;
  EXPECT_THROW(ReplayFile(path, observer), TraceError);
  // The corrupt block was the first one: the observer saw nothing.
  EXPECT_TRUE(observer.events().empty());
}

TEST_F(TraceCorruptionTest, MissingFile) {
  EXPECT_THROW(TraceReader{std::string{"/nonexistent/no.trace"}},
               TraceError);
}

// ---------------------------------------------------------------------------
// Validation policy: "validated" must never mean "vacuously empty".

TEST(ValidateTraceFileTest, RejectsHeaderAndTrailerOnlyTrace) {
  const std::string path = ::testing::TempDir() + "/empty_capture.trace";
  {
    TraceWriter writer{path, TraceWriterOptions{}};
    writer.OnAttach();
    writer.Finish();  // Zero records: structurally valid, semantically empty.
  }
  // A plain scan accepts the file — it is well-formed...
  EXPECT_EQ(ScanTrace(path).records, 0u);
  // ...but validation refuses it with a diagnostic naming the condition.
  try {
    (void)ValidateTraceFile(path);
    FAIL() << "zero-record trace validated";
  } catch (const TraceError& error) {
    EXPECT_NE(std::string(error.what()).find("zero probe records"),
              std::string::npos)
        << "actual message: " << error.what();
    EXPECT_NE(std::string(error.what()).find(path), std::string::npos);
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Salvage mode: opt-in resync that skips damaged blocks, re-locks on the
// next CRC-valid frame, and accounts every loss exactly.

class TraceSalvageTest : public TraceCorruptionTest {
 protected:
  struct BlockSpan {
    std::size_t offset = 0;  ///< Of the frame, from file start.
    std::uint32_t records = 0;
    std::uint32_t payload_bytes = 0;
  };

  /// Walks the pristine file's framing (data blocks only, not the trailer).
  std::vector<BlockSpan> Blocks() const {
    std::vector<BlockSpan> blocks;
    std::size_t at = kHeaderBytes;
    while (at + kBlockFrameBytes <= bytes_.size()) {
      BlockSpan span;
      span.offset = at;
      span.records = static_cast<std::uint32_t>(
          bytes_[at] | bytes_[at + 1] << 8 | bytes_[at + 2] << 16 |
          bytes_[at + 3] << 24);
      span.payload_bytes = static_cast<std::uint32_t>(
          bytes_[at + 4] | bytes_[at + 5] << 8 | bytes_[at + 6] << 16 |
          bytes_[at + 7] << 24);
      if (span.records == 0) break;  // Trailer.
      blocks.push_back(span);
      at += kBlockFrameBytes + span.payload_bytes;
    }
    return blocks;
  }

  std::string WriteMutant(const std::vector<std::uint8_t>& mutant) {
    const std::string path = MutantPath();
    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    out.write(reinterpret_cast<const char*>(mutant.data()),
              static_cast<std::streamsize>(mutant.size()));
    return path;
  }

  /// Salvage-reads `path` to exhaustion, returning every delivered event.
  static std::vector<sim::ProbeEvent> SalvageRead(const std::string& path,
                                                  SalvageStats* stats) {
    TraceReaderOptions options;
    options.salvage = true;
    TraceReader reader{path, options};
    std::vector<sim::ProbeEvent> events;
    for (auto batch = reader.NextBatch(); !batch.empty();
         batch = reader.NextBatch()) {
      events.insert(events.end(), batch.begin(), batch.end());
    }
    EXPECT_TRUE(reader.at_end());
    if (stats != nullptr) *stats = reader.salvage_stats();
    return events;
  }
};

TEST_F(TraceSalvageTest, PristineFileSalvagesWithZeroDamage) {
  SalvageStats stats;
  const auto events = SalvageRead(path_, &stats);
  EXPECT_EQ(events.size(), records_);
  EXPECT_FALSE(stats.damaged());
  EXPECT_EQ(stats.corrupt_blocks, 0u);
  EXPECT_EQ(stats.records_lost, 0u);
  EXPECT_EQ(stats.bytes_skipped, 0u);
}

TEST_F(TraceSalvageTest, MidStreamBitFlipLosesExactlyThatBlock) {
  const auto blocks = Blocks();
  ASSERT_GE(blocks.size(), 3u);
  const BlockSpan& victim = blocks[1];
  auto mutant = bytes_;
  mutant[victim.offset + kBlockFrameBytes + 7] ^= 0x04;  // Payload bit flip.

  SalvageStats stats;
  const auto events = SalvageRead(WriteMutant(mutant), &stats);

  // Loss accounting matches the injected damage exactly: one block, its
  // record count, its on-disk extent — reconciled against the surviving
  // trailer.
  EXPECT_EQ(stats.corrupt_blocks, 1u);
  EXPECT_EQ(stats.records_lost, victim.records);
  EXPECT_EQ(stats.bytes_skipped, kBlockFrameBytes + victim.payload_bytes);
  EXPECT_FALSE(stats.trailer_missing);
  EXPECT_FALSE(stats.trailer_mismatch);
  ASSERT_EQ(events.size(), records_ - victim.records);

  // Only CRC-verified blocks were delivered, in order: the salvaged stream
  // equals the pristine stream minus the victim block's records.
  const auto pristine = [&] {
    TraceReader reader{path_};
    std::vector<sim::ProbeEvent> all;
    for (auto batch = reader.NextBatch(); !batch.empty();
         batch = reader.NextBatch()) {
      all.insert(all.end(), batch.begin(), batch.end());
    }
    return all;
  }();
  std::size_t pristine_at = 0;
  std::size_t salvaged_at = 0;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    for (std::uint32_t r = 0; r < blocks[b].records; ++r, ++pristine_at) {
      if (b == 1) continue;  // The victim block.
      EXPECT_EQ(events[salvaged_at].time, pristine[pristine_at].time);
      EXPECT_EQ(events[salvaged_at].dst, pristine[pristine_at].dst);
      ++salvaged_at;
    }
  }
  EXPECT_EQ(salvaged_at, events.size());
}

TEST_F(TraceSalvageTest, CorruptFrameResyncsOnNextValidBlock) {
  const auto blocks = Blocks();
  ASSERT_GE(blocks.size(), 3u);
  const BlockSpan& victim = blocks[1];
  auto mutant = bytes_;
  // Destroy the *frame* itself (absurd record count): the reader cannot
  // trust the declared extent and must byte-scan for the next CRC-valid
  // frame.
  StoreU32At(mutant, victim.offset, kMaxBlockRecords + 7);

  SalvageStats stats;
  const auto events = SalvageRead(WriteMutant(mutant), &stats);
  EXPECT_EQ(events.size(), records_ - victim.records);
  EXPECT_EQ(stats.corrupt_blocks, 1u);  // Reconciled by the trailer.
  EXPECT_EQ(stats.records_lost, victim.records);
  EXPECT_EQ(stats.bytes_skipped, kBlockFrameBytes + victim.payload_bytes);
  EXPECT_FALSE(stats.trailer_missing);
}

TEST_F(TraceSalvageTest, TruncatedTrailerSalvagesEveryDataBlock) {
  auto mutant = bytes_;
  mutant.resize(mutant.size() - 4);  // Trailer payload loses its tail.
  SalvageStats stats;
  const auto events = SalvageRead(WriteMutant(mutant), &stats);
  EXPECT_EQ(events.size(), records_);  // No data block was damaged.
  EXPECT_TRUE(stats.trailer_missing);
  EXPECT_EQ(stats.records_lost, 0u);
  EXPECT_TRUE(stats.damaged());
}

TEST_F(TraceSalvageTest, CleanCutBeforeTrailerReportsMissingTrailer) {
  std::vector<std::uint8_t> mutant(bytes_.begin(),
                                   bytes_.begin() + TrailerOffset());
  SalvageStats stats;
  const auto events = SalvageRead(WriteMutant(mutant), &stats);
  EXPECT_EQ(events.size(), records_);
  EXPECT_TRUE(stats.trailer_missing);
  EXPECT_EQ(stats.corrupt_blocks, 0u);  // Every frame present was intact.
  EXPECT_EQ(stats.records_lost, 0u);
}

TEST_F(TraceSalvageTest, GarbageTailNeverDeliversUnverifiedRecords) {
  // Header + noise: nothing after the header checks out, so salvage ends
  // with zero records and full damage accounting instead of throwing.
  std::vector<std::uint8_t> mutant(bytes_.begin(),
                                   bytes_.begin() + kHeaderBytes);
  std::uint64_t x = 77;
  for (int i = 0; i < 4096; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    mutant.push_back(static_cast<std::uint8_t>(x >> 32));
  }
  SalvageStats stats;
  const auto events = SalvageRead(WriteMutant(mutant), &stats);
  EXPECT_TRUE(events.empty());
  EXPECT_TRUE(stats.damaged());
  EXPECT_TRUE(stats.trailer_missing);
  EXPECT_GT(stats.bytes_skipped, 0u);
  EXPECT_LE(stats.bytes_skipped, 4096u);
}

TEST_F(TraceSalvageTest, HeaderCorruptionStillFailsClosed) {
  // Without a trusted header nothing in the file can be interpreted —
  // salvage mode does not soften that.
  auto mutant = bytes_;
  mutant[0] ^= 0xFF;
  const std::string path = WriteMutant(mutant);
  TraceReaderOptions options;
  options.salvage = true;
  EXPECT_THROW((TraceReader{path, options}), TraceError);
}

TEST_F(TraceSalvageTest, ScanTraceReportsSalvageStats) {
  const auto blocks = Blocks();
  auto mutant = bytes_;
  mutant[blocks[0].offset + kBlockFrameBytes + 2] ^= 0x01;
  const std::string path = WriteMutant(mutant);

  TraceReaderOptions options;
  options.salvage = true;
  const TraceInfo info = ScanTrace(path, options);
  EXPECT_EQ(info.records, records_ - blocks[0].records);
  EXPECT_TRUE(info.salvage.damaged());
  EXPECT_EQ(info.salvage.records_lost, blocks[0].records);

  // The same file under a strict scan still fails closed.
  EXPECT_THROW((void)ScanTrace(path), TraceError);
}

}  // namespace
}  // namespace hotspots::trace
