// Fail-closed behaviour of the trace reader: every class of corruption —
// truncation, bit flips, header damage, structural lies, trailing
// garbage — must raise TraceError with a diagnostic naming the problem,
// and must never deliver an unverified batch to an observer.
//
// Each case starts from a freshly written valid trace and applies one
// surgical mutation, so a failure pinpoints the validation that regressed.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/observer.h"
#include "trace/crc32.h"
#include "trace/format.h"
#include "trace/reader.h"
#include "trace/replay.h"
#include "trace/writer.h"

namespace hotspots::trace {
namespace {

void StoreU32At(std::vector<std::uint8_t>& bytes, std::size_t offset,
                std::uint32_t value) {
  bytes[offset] = static_cast<std::uint8_t>(value);
  bytes[offset + 1] = static_cast<std::uint8_t>(value >> 8);
  bytes[offset + 2] = static_cast<std::uint8_t>(value >> 16);
  bytes[offset + 3] = static_cast<std::uint8_t>(value >> 24);
}

class TraceCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/corruption.trace";
    // Small blocks → several blocks plus a trailer in a few KB.
    TraceWriterOptions options;
    options.block_records = 64;
    options.scenario_fingerprint = 0xC0FFEE;
    options.seed = 0x5EED;
    TraceWriter writer{path_, options};
    writer.OnAttach();
    std::uint64_t x = 9;
    for (int i = 0; i < 300; ++i) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      writer.OnProbe(sim::ProbeEvent{
          .time = 0.01 * i,
          .src_host = static_cast<sim::HostId>(x % 64),
          .src_address = net::Ipv4{static_cast<std::uint32_t>(x >> 13)},
          .dst = net::Ipv4{static_cast<std::uint32_t>(x >> 27)},
          .delivery = static_cast<topology::Delivery>(x % 6)});
    }
    writer.Finish();
    records_ = writer.records_written();

    std::ifstream in{path_, std::ios::binary};
    bytes_.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
    ASSERT_GT(bytes_.size(),
              kHeaderBytes + kBlockFrameBytes + kTrailerPayloadBytes);
  }

  void TearDown() override {
    std::remove(path_.c_str());
    std::remove(MutantPath().c_str());
  }

  std::string MutantPath() const {
    return ::testing::TempDir() + "/corruption_mutant.trace";
  }

  /// Writes `mutant` to disk and reads it to exhaustion, expecting a
  /// TraceError whose message mentions `expected_substring`.  Records
  /// delivered before the failure must all come from CRC-verified blocks.
  void ExpectFailure(const std::vector<std::uint8_t>& mutant,
                     const std::string& expected_substring) {
    const std::string path = MutantPath();
    {
      std::ofstream out{path, std::ios::binary | std::ios::trunc};
      out.write(reinterpret_cast<const char*>(mutant.data()),
                static_cast<std::streamsize>(mutant.size()));
    }
    try {
      TraceReader reader{path};
      while (!reader.NextBatch().empty()) {
      }
      FAIL() << "corrupt trace accepted; expected error mentioning \""
             << expected_substring << "\"";
    } catch (const TraceError& error) {
      EXPECT_NE(std::string(error.what()).find(expected_substring),
                std::string::npos)
          << "actual message: " << error.what();
      // Diagnostics carry the file path so batch jobs can attribute
      // failures to the offending file.
      EXPECT_NE(std::string(error.what()).find(path), std::string::npos);
    }
  }

  std::size_t TrailerOffset() const {
    return bytes_.size() - kBlockFrameBytes - kTrailerPayloadBytes;
  }

  std::string path_;
  std::vector<std::uint8_t> bytes_;
  std::uint64_t records_ = 0;
};

TEST_F(TraceCorruptionTest, PristineFileReads) {
  TraceReader reader{path_};
  std::uint64_t seen = 0;
  for (auto batch = reader.NextBatch(); !batch.empty();
       batch = reader.NextBatch()) {
    seen += batch.size();
  }
  EXPECT_EQ(seen, records_);
  EXPECT_TRUE(reader.at_end());
  EXPECT_TRUE(reader.NextBatch().empty());  // Stays at end.
}

TEST_F(TraceCorruptionTest, EmptyFile) {
  ExpectFailure({}, "truncated file header");
}

TEST_F(TraceCorruptionTest, HeaderOnlyFileIsTruncated) {
  std::vector<std::uint8_t> mutant(bytes_.begin(),
                                   bytes_.begin() + kHeaderBytes);
  ExpectFailure(mutant, "truncated block frame");
}

TEST_F(TraceCorruptionTest, BadMagic) {
  auto mutant = bytes_;
  mutant[0] ^= 0xFF;
  ExpectFailure(mutant, "bad magic");
}

TEST_F(TraceCorruptionTest, UnsupportedVersion) {
  auto mutant = bytes_;
  StoreU32At(mutant, 8, kFormatVersion + 1);
  ExpectFailure(mutant, "unsupported format version");
}

TEST_F(TraceCorruptionTest, WrongDeclaredHeaderSize) {
  auto mutant = bytes_;
  StoreU32At(mutant, 12, kHeaderBytes + 8);
  ExpectFailure(mutant, "declared header size");
}

TEST_F(TraceCorruptionTest, SampledFlagWithZeroRate) {
  auto mutant = bytes_;
  // flags := sampled, sample_rate bits := 0.0 — an impossible pairing.
  StoreU32At(mutant, 32, static_cast<std::uint32_t>(kFlagSampled));
  for (std::size_t i = 40; i < 48; ++i) mutant[i] = 0;
  ExpectFailure(mutant, "sample rate outside (0,1]");
}

TEST_F(TraceCorruptionTest, PayloadBitFlipFailsCrc) {
  auto mutant = bytes_;
  // One bit inside the first block's payload.
  mutant[kHeaderBytes + kBlockFrameBytes + 5] ^= 0x10;
  ExpectFailure(mutant, "CRC mismatch");
}

TEST_F(TraceCorruptionTest, FrameCrcFieldFlipFailsCrc) {
  auto mutant = bytes_;
  mutant[kHeaderBytes + 8] ^= 0x01;  // Stored CRC of the first block.
  ExpectFailure(mutant, "CRC mismatch");
}

TEST_F(TraceCorruptionTest, AbsurdBlockRecordCount) {
  auto mutant = bytes_;
  StoreU32At(mutant, kHeaderBytes, kMaxBlockRecords + 1);
  ExpectFailure(mutant, "block record count");
}

TEST_F(TraceCorruptionTest, ImpossiblePayloadSizeForRecordCount) {
  auto mutant = bytes_;
  // 64 records cannot need more than 64 × kMaxRecordBytes of payload.
  StoreU32At(mutant, kHeaderBytes + 4, 64 * kMaxRecordBytes + 1);
  ExpectFailure(mutant, "impossible for");
}

TEST_F(TraceCorruptionTest, OversizedDeclaredPayload) {
  auto mutant = bytes_;
  StoreU32At(mutant, kHeaderBytes,
             kMaxBlockRecords);  // Count stays legal...
  StoreU32At(mutant, kHeaderBytes + 4,
             kMaxBlockPayloadBytes + 1);  // ...payload ceiling does not.
  ExpectFailure(mutant, "exceeds the format ceiling");
}

TEST_F(TraceCorruptionTest, TruncatedMidPayload) {
  std::vector<std::uint8_t> mutant(
      bytes_.begin(),
      bytes_.begin() + kHeaderBytes + kBlockFrameBytes + 10);
  ExpectFailure(mutant, "truncated block payload");
}

TEST_F(TraceCorruptionTest, TruncatedAtBlockBoundary) {
  // Cut exactly before the trailer: framing is intact, trailer missing.
  std::vector<std::uint8_t> mutant(bytes_.begin(),
                                   bytes_.begin() + TrailerOffset());
  ExpectFailure(mutant, "truncated block frame");
}

TEST_F(TraceCorruptionTest, TruncatedTrailerPayload) {
  std::vector<std::uint8_t> mutant(bytes_.begin(), bytes_.end() - 4);
  ExpectFailure(mutant, "truncated trailer payload");
}

TEST_F(TraceCorruptionTest, TrailerRecordCountLie) {
  auto mutant = bytes_;
  // Rewrite the trailer's record tally and recompute its CRC, so the lie
  // survives the checksum and must be caught by cross-checking.
  const std::size_t payload = TrailerOffset() + kBlockFrameBytes;
  StoreU32At(mutant, payload, static_cast<std::uint32_t>(records_ + 1));
  StoreU32At(mutant, TrailerOffset() + 8,
             Crc32(mutant.data() + payload, kTrailerPayloadBytes));
  ExpectFailure(mutant, "trailer declares");
}

TEST_F(TraceCorruptionTest, TrailingGarbageAfterTrailer) {
  auto mutant = bytes_;
  mutant.push_back(0xAB);
  ExpectFailure(mutant, "trailing bytes after the trailer");
}

TEST_F(TraceCorruptionTest, ReplayOfCorruptFileDeliversNoBadBatch) {
  auto mutant = bytes_;
  mutant[kHeaderBytes + kBlockFrameBytes + 3] ^= 0x80;  // First block.
  const std::string path = MutantPath();
  {
    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    out.write(reinterpret_cast<const char*>(mutant.data()),
              static_cast<std::streamsize>(mutant.size()));
  }
  sim::RecordingObserver observer;
  EXPECT_THROW(ReplayFile(path, observer), TraceError);
  // The corrupt block was the first one: the observer saw nothing.
  EXPECT_TRUE(observer.events().empty());
}

TEST_F(TraceCorruptionTest, MissingFile) {
  EXPECT_THROW(TraceReader{std::string{"/nonexistent/no.trace"}},
               TraceError);
}

}  // namespace
}  // namespace hotspots::trace
