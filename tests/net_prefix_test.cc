#include "net/prefix.h"

#include <gtest/gtest.h>

#include "net/special_ranges.h"

namespace hotspots::net {
namespace {

TEST(PrefixTest, DefaultCoversEverything) {
  const Prefix all;
  EXPECT_EQ(all.length(), 0);
  EXPECT_EQ(all.size(), std::uint64_t{1} << 32);
  EXPECT_TRUE(all.Contains(Ipv4{0}));
  EXPECT_TRUE(all.Contains(Ipv4{0xFFFFFFFFu}));
}

TEST(PrefixTest, MasksHostBits) {
  const Prefix prefix{Ipv4{10, 1, 2, 3}, 8};
  EXPECT_EQ(prefix.base(), Ipv4(10, 0, 0, 0));
  EXPECT_EQ(prefix.ToString(), "10.0.0.0/8");
}

TEST(PrefixTest, FirstLastSize) {
  const Prefix prefix{Ipv4{192, 168, 4, 0}, 22};
  EXPECT_EQ(prefix.first(), Ipv4(192, 168, 4, 0));
  EXPECT_EQ(prefix.last(), Ipv4(192, 168, 7, 255));
  EXPECT_EQ(prefix.size(), 1024u);
}

TEST(PrefixTest, SlashThirtyTwoIsSingleAddress) {
  const Prefix host{Ipv4{1, 2, 3, 4}, 32};
  EXPECT_EQ(host.size(), 1u);
  EXPECT_EQ(host.first(), host.last());
  EXPECT_TRUE(host.Contains(Ipv4(1, 2, 3, 4)));
  EXPECT_FALSE(host.Contains(Ipv4(1, 2, 3, 5)));
}

TEST(PrefixTest, ContainsAddressBoundaries) {
  const Prefix prefix{Ipv4{10, 0, 0, 0}, 8};
  EXPECT_TRUE(prefix.Contains(Ipv4(10, 0, 0, 0)));
  EXPECT_TRUE(prefix.Contains(Ipv4(10, 255, 255, 255)));
  EXPECT_FALSE(prefix.Contains(Ipv4(9, 255, 255, 255)));
  EXPECT_FALSE(prefix.Contains(Ipv4(11, 0, 0, 0)));
}

TEST(PrefixTest, ContainsPrefixAndOverlap) {
  const Prefix big{Ipv4{10, 0, 0, 0}, 8};
  const Prefix small{Ipv4{10, 4, 0, 0}, 16};
  const Prefix other{Ipv4{11, 0, 0, 0}, 16};
  EXPECT_TRUE(big.Contains(small));
  EXPECT_FALSE(small.Contains(big));
  EXPECT_TRUE(big.Overlaps(small));
  EXPECT_TRUE(small.Overlaps(big));
  EXPECT_FALSE(big.Overlaps(other));
}

TEST(PrefixTest, AddressAtIteratesBlock) {
  const Prefix prefix{Ipv4{1, 2, 3, 0}, 30};
  EXPECT_EQ(prefix.AddressAt(0), Ipv4(1, 2, 3, 0));
  EXPECT_EQ(prefix.AddressAt(3), Ipv4(1, 2, 3, 3));
}

TEST(PrefixTest, ParseValid) {
  const auto parsed = Prefix::Parse("172.16.0.0/12");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, kPrivate172);
  EXPECT_EQ(Prefix::Parse("1.2.3.4")->length(), 32);
  EXPECT_EQ(Prefix::Parse("0.0.0.0/0")->size(), std::uint64_t{1} << 32);
}

TEST(PrefixTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Prefix::Parse("1.2.3.4/33").has_value());
  EXPECT_FALSE(Prefix::Parse("1.2.3.4/-1").has_value());
  EXPECT_FALSE(Prefix::Parse("1.2.3/8").has_value());
  EXPECT_FALSE(Prefix::Parse("1.2.3.4/").has_value());
  EXPECT_FALSE(Prefix::Parse("/8").has_value());
}

TEST(PrefixTest, MaskFor) {
  EXPECT_EQ(Prefix::MaskFor(0), 0u);
  EXPECT_EQ(Prefix::MaskFor(8), 0xFF000000u);
  EXPECT_EQ(Prefix::MaskFor(24), 0xFFFFFF00u);
  EXPECT_EQ(Prefix::MaskFor(32), 0xFFFFFFFFu);
}

TEST(SpecialRangesTest, PrivateDetection) {
  EXPECT_TRUE(IsPrivate(Ipv4(10, 1, 2, 3)));
  EXPECT_TRUE(IsPrivate(Ipv4(172, 16, 0, 1)));
  EXPECT_TRUE(IsPrivate(Ipv4(172, 31, 255, 255)));
  EXPECT_FALSE(IsPrivate(Ipv4(172, 32, 0, 0)));
  EXPECT_TRUE(IsPrivate(Ipv4(192, 168, 200, 9)));
  EXPECT_FALSE(IsPrivate(Ipv4(192, 167, 0, 1)));
  EXPECT_FALSE(IsPrivate(Ipv4(8, 8, 8, 8)));
}

TEST(SpecialRangesTest, NonTargetable) {
  EXPECT_TRUE(IsNonTargetable(Ipv4(0, 1, 2, 3)));
  EXPECT_TRUE(IsNonTargetable(Ipv4(127, 0, 0, 1)));
  EXPECT_TRUE(IsNonTargetable(Ipv4(224, 0, 0, 1)));
  EXPECT_TRUE(IsNonTargetable(Ipv4(255, 255, 255, 255)));
  EXPECT_FALSE(IsNonTargetable(Ipv4(192, 168, 0, 1)));  // Private ≠ non-targetable.
  EXPECT_FALSE(IsNonTargetable(Ipv4(8, 8, 8, 8)));
}

TEST(SpecialRangesTest, PrivateRangesSpansAllThree) {
  const auto ranges = PrivateRanges();
  ASSERT_EQ(ranges.size(), 3u);
  std::uint64_t total = 0;
  for (const Prefix& p : ranges) total += p.size();
  EXPECT_EQ(total, (1u << 24) + (1u << 20) + (1u << 16));
}

}  // namespace
}  // namespace hotspots::net
