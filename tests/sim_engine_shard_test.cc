// Sharded-engine determinism: one outbreak generated across N worker
// shards must be bit-identical to the serial run — same probe stream,
// same infections, same telescope state, same trace bytes, same metrics —
// at every shard count, with and without delivery faults.  Plus the
// ShardPool fork-join primitive itself (stress + error propagation) and
// the EngineAudit conservation invariant.
#include "sim/shard.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "fault/delivery.h"
#include "fault/schedule.h"
#include "obs/metrics.h"
#include "sim/engine.h"
#include "sim/population.h"
#include "telescope/telescope.h"
#include "trace/writer.h"
#include "worms/hitlist.h"

namespace hotspots::sim {
namespace {

using net::Ipv4;
using net::Prefix;

bool SameEvent(const ProbeEvent& a, const ProbeEvent& b) {
  return a.time == b.time && a.src_host == b.src_host &&
         a.src_address == b.src_address && a.dst == b.dst &&
         a.delivery == b.delivery;
}

/// The shard counts every invariance test sweeps: serial, the smallest
/// real fan-out, an uneven partition, a wide one, and whatever this
/// machine would pick for "all cores".
std::vector<int> ShardMatrix() {
  std::vector<int> shards{1, 2, 3, 8};
  const unsigned hardware = std::thread::hardware_concurrency();
  if (hardware > 1) shards.push_back(static_cast<int>(hardware));
  return shards;
}

class EngineShardTest : public ::testing::Test {
 protected:
  /// A dense population in 60.5.0.0/16, large enough that the steady
  /// state (thousands of scanners) actually fans out across shards rather
  /// than staying on the inline small-step path.
  void BuildDensePopulation(int hosts) {
    for (int i = 0; i < hosts; ++i) {
      population_.AddHost(Ipv4{60, 5, static_cast<std::uint8_t>(i / 250),
                               static_cast<std::uint8_t>(1 + i % 250)});
    }
    population_.Build(nullptr);
  }

  EngineConfig Config(int shards) const {
    EngineConfig config;
    config.scan_rate = 10.0;
    config.end_time = 500.0;
    config.sample_interval = 5.0;
    config.stop_at_infected_fraction = 0.95;
    config.seed = 0xD15EA5E;
    config.shards = shards;
    return config;
  }

  /// One full outbreak at the given shard count on a freshly reset
  /// population; `loss_rate` > 0 exercises the per-scanner RNG streams.
  RunResult RunOnce(int shards, ProbeObserver& observer,
                    sim::DeliveryFaultHook* faults = nullptr) {
    population_.ResetAllToVulnerable();
    const topology::Reachability reachability{nullptr, nullptr, nullptr,
                                              0.05};
    const worms::HitListWorm worm{{Prefix{Ipv4{60, 5, 0, 0}, 16}}};
    Engine engine{population_, worm, reachability, nullptr, Config(shards)};
    engine.SetDeliveryFaults(faults);
    engine.SeedRandomInfections(10);
    return engine.Run(observer);
  }

  static void ExpectSameRun(const RunResult& reference, const RunResult& run,
                            int shards) {
    EXPECT_EQ(reference.total_probes, run.total_probes) << shards;
    EXPECT_EQ(reference.delivery_counts, run.delivery_counts) << shards;
    EXPECT_EQ(reference.final_infected, run.final_infected) << shards;
    EXPECT_EQ(reference.fault_injected_drops, run.fault_injected_drops)
        << shards;
    EXPECT_EQ(reference.fault_duplicates, run.fault_duplicates) << shards;
    ASSERT_EQ(reference.series.size(), run.series.size()) << shards;
    for (std::size_t i = 0; i < reference.series.size(); ++i) {
      EXPECT_EQ(reference.series[i].time, run.series[i].time);
      EXPECT_EQ(reference.series[i].infected, run.series[i].infected);
      EXPECT_EQ(reference.series[i].probes, run.series[i].probes);
    }
  }

  static void ExpectSameEvents(const std::vector<ProbeEvent>& reference,
                               const std::vector<ProbeEvent>& events,
                               int shards) {
    ASSERT_EQ(reference.size(), events.size()) << shards << " shards";
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_TRUE(SameEvent(reference[i], events[i]))
          << shards << " shards diverge at event " << i;
    }
  }

  Population population_;
};

TEST_F(EngineShardTest, CleanRunIsShardCountInvariant) {
  BuildDensePopulation(20000);
  RecordingObserver reference_observer;
  const RunResult reference = RunOnce(1, reference_observer);
  // The run must be big enough that the fan-out path actually ran.
  ASSERT_GT(reference.total_probes, 200000u);
  ASSERT_GT(reference.final_infected, 18000u);
  // Loss draws happened (per-scanner streams were consumed).
  ASSERT_GT(reference.delivery_counts[static_cast<std::size_t>(
                topology::Delivery::kNetworkLoss)],
            0u);
  for (const int shards : ShardMatrix()) {
    RecordingObserver observer;
    const RunResult run = RunOnce(shards, observer);
    ExpectSameRun(reference, run, shards);
    ExpectSameEvents(reference_observer.events(), observer.events(), shards);
  }
}

TEST_F(EngineShardTest, FaultedRunIsShardCountInvariant) {
  BuildDensePopulation(20000);
  fault::FaultSchedule schedule;
  schedule.delivery.loss_rate = 0.02;
  schedule.delivery.duplication_rate = 0.01;

  fault::DeliveryFaults reference_faults{schedule};
  RecordingObserver reference_observer;
  const RunResult reference =
      RunOnce(1, reference_observer, &reference_faults);
  ASSERT_GT(reference.fault_injected_drops, 0u);
  ASSERT_GT(reference.fault_duplicates, 0u);

  for (const int shards : ShardMatrix()) {
    // Fresh injector per run: its private stream re-arms at OnRunStart,
    // and the committed order must replay it identically.
    fault::DeliveryFaults faults{schedule};
    RecordingObserver observer;
    const RunResult run = RunOnce(shards, observer, &faults);
    ExpectSameRun(reference, run, shards);
    ExpectSameEvents(reference_observer.events(), observer.events(), shards);
    EXPECT_EQ(reference_faults.injected_losses(), faults.injected_losses());
    EXPECT_EQ(reference_faults.injected_duplicates(),
              faults.injected_duplicates());
  }
}

TEST_F(EngineShardTest, TracedRunWritesIdenticalBytesAtAnyShardCount) {
  BuildDensePopulation(8000);
  const auto trace_path = [](int shards) {
    return ::testing::TempDir() + "/shard_run_" + std::to_string(shards) +
           ".trace";
  };
  const auto file_bytes = [](const std::string& path) {
    std::ifstream in{path, std::ios::binary};
    return std::vector<char>{std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>()};
  };
  const auto capture = [&](int shards) {
    trace::TraceWriterOptions options;
    options.seed = 0xD15EA5E;
    trace::TraceWriter writer{trace_path(shards), options};
    RunOnce(shards, writer);
    writer.Finish();
    return file_bytes(trace_path(shards));
  };
  const std::vector<char> reference = capture(1);
  ASSERT_FALSE(reference.empty());
  for (const int shards : {2, 8}) {
    // The writer sees the committed order, so the delta-encoded blocks —
    // and therefore the file bytes — cannot depend on the shard count.
    EXPECT_EQ(reference, capture(shards)) << shards << " shards";
  }
}

TEST_F(EngineShardTest, TelescopeStateAndMetricsAreShardCountInvariant) {
  BuildDensePopulation(8000);
  auto& registry = obs::Registry::Global();
  struct Observed {
    std::vector<std::uint64_t> sensor_probes;
    std::vector<std::size_t> sensor_sources;
    std::uint64_t engine_probes = 0;
    std::uint64_t telescope_events = 0;
    std::uint64_t telescope_recorded = 0;
  };
  const auto run = [&](int shards) {
    telescope::Telescope fleet;
    // Two darknet /24s inside the swept /16 plus one outside it.
    fleet.AddSensor("in-a", Prefix{Ipv4{60, 5, 200, 0}, 24});
    fleet.AddSensor("in-b", Prefix{Ipv4{60, 5, 220, 0}, 24});
    fleet.AddSensor("out", Prefix{Ipv4{99, 0, 0, 0}, 24});
    fleet.Build();
    Observed observed;
    const std::uint64_t probes_before =
        registry.GetCounter("engine.probes").Value();
    const std::uint64_t events_before =
        registry.GetCounter("telescope.events").Value();
    const std::uint64_t recorded_before =
        registry.GetCounter("telescope.recorded").Value();
    RunOnce(shards, fleet);
    observed.engine_probes =
        registry.GetCounter("engine.probes").Value() - probes_before;
    observed.telescope_events =
        registry.GetCounter("telescope.events").Value() - events_before;
    observed.telescope_recorded =
        registry.GetCounter("telescope.recorded").Value() - recorded_before;
    for (int i = 0; i < static_cast<int>(fleet.size()); ++i) {
      observed.sensor_probes.push_back(fleet.sensor(i).probe_count());
      observed.sensor_sources.push_back(fleet.sensor(i).UniqueSourceCount());
    }
    return observed;
  };
  const Observed reference = run(1);
  ASSERT_GT(reference.sensor_probes[0], 0u);
  ASSERT_GT(reference.telescope_recorded, 0u);
  for (const int shards : ShardMatrix()) {
    const Observed observed = run(shards);
    EXPECT_EQ(reference.sensor_probes, observed.sensor_probes) << shards;
    EXPECT_EQ(reference.sensor_sources, observed.sensor_sources) << shards;
    EXPECT_EQ(reference.engine_probes, observed.engine_probes) << shards;
    EXPECT_EQ(reference.telescope_events, observed.telescope_events)
        << shards;
    EXPECT_EQ(reference.telescope_recorded, observed.telescope_recorded)
        << shards;
  }
}

TEST(EngineAuditTest, ConservationHoldsOnRealRuns) {
  Population population;
  for (int i = 0; i < 400; ++i) {
    population.AddHost(Ipv4{60, 5, static_cast<std::uint8_t>(i / 250),
                            static_cast<std::uint8_t>(1 + i % 250)});
  }
  population.Build(nullptr);
  const topology::Reachability reachability{nullptr, nullptr, nullptr, 0.1};
  const worms::HitListWorm worm{{Prefix{Ipv4{60, 5, 0, 0}, 16}}};
  EngineConfig config;
  config.end_time = 50.0;
  config.shards = 2;
  Engine engine{population, worm, reachability, nullptr, config};
  engine.SeedInfection(0);
  const RunResult result = engine.Run();
  EXPECT_TRUE(EngineAudit::ConservationHolds(result));
  EXPECT_NO_THROW(EngineAudit::CheckConservation(result));
}

TEST(EngineAuditTest, CheckConservationThrowsOnCorruptedAccounting) {
  RunResult result;
  result.total_probes = 10;
  result.delivery_counts[0] = 10;
  EXPECT_TRUE(EngineAudit::ConservationHolds(result));
  // A merge that double-counts a staged probe...
  ++result.delivery_counts[0];
  EXPECT_FALSE(EngineAudit::ConservationHolds(result));
  EXPECT_THROW(EngineAudit::CheckConservation(result), std::logic_error);
  // ...or silently drops one.
  result.delivery_counts[0] = 9;
  EXPECT_THROW(EngineAudit::CheckConservation(result), std::logic_error);
  // Duplicates are observer-visible but not emitted probes: they widen
  // delivery_counts over total_probes by exactly their count.
  result.delivery_counts[0] = 13;
  result.fault_duplicates = 3;
  EXPECT_TRUE(EngineAudit::ConservationHolds(result));
}

TEST(ResolveEngineShardsTest, RequestedEnvAndClamping) {
  EXPECT_EQ(ResolveEngineShards(4), 4);
  EXPECT_EQ(ResolveEngineShards(1 << 12), 1 << 10);  // Clamped.
  ::setenv("HOTSPOTS_SHARDS", "6", 1);
  EXPECT_EQ(ResolveEngineShards(0), 6);
  EXPECT_EQ(ResolveEngineShards(2), 2);  // Explicit request wins.
  ::setenv("HOTSPOTS_SHARDS", "garbage", 1);
  EXPECT_EQ(ResolveEngineShards(0), 1);
  ::setenv("HOTSPOTS_SHARDS", "-3", 1);
  EXPECT_EQ(ResolveEngineShards(0), 1);
  ::unsetenv("HOTSPOTS_SHARDS");
  EXPECT_EQ(ResolveEngineShards(0), 1);
}

// The commit queue under load: many generations of real concurrent writes
// into per-shard slots.  Run under HOTSPOTS_SANITIZE=tsan, this is the
// race detector's view of the pool's handoff (fork, parallel writes,
// join, serial read-back).
TEST(ShardPoolTest, StressManyGenerations) {
  constexpr int kShards = 8;
  constexpr int kGenerations = 400;
  ShardPool pool{kShards};
  ASSERT_EQ(pool.shards(), kShards);
  std::vector<std::uint64_t> slots(kShards, 0);
  std::uint64_t expected_total = 0;
  for (int generation = 1; generation <= kGenerations; ++generation) {
    pool.Run([&, generation](int shard) {
      // Each shard owns exactly its slot — the commit-queue discipline.
      slots[static_cast<std::size_t>(shard)] =
          static_cast<std::uint64_t>(generation) *
          static_cast<std::uint64_t>(shard + 1);
    });
    // Serial read-back of every staged slot, like the engine's commit.
    std::uint64_t committed = 0;
    for (const std::uint64_t slot : slots) committed += slot;
    std::uint64_t expected = 0;
    for (int shard = 0; shard < kShards; ++shard) {
      expected += static_cast<std::uint64_t>(generation) *
                  static_cast<std::uint64_t>(shard + 1);
    }
    ASSERT_EQ(committed, expected) << "generation " << generation;
    expected_total += expected;
  }
  EXPECT_GT(expected_total, 0u);
}

TEST(ShardPoolTest, LowestShardErrorWinsAndPoolSurvives) {
  ShardPool pool{4};
  std::atomic<int> ran{0};
  try {
    pool.Run([&](int shard) {
      ran.fetch_add(1);
      if (shard >= 1) {
        throw std::runtime_error("shard " + std::to_string(shard));
      }
    });
    FAIL() << "expected the pool to rethrow";
  } catch (const std::runtime_error& error) {
    // Deterministic surfaced error: the lowest throwing shard.
    EXPECT_STREQ(error.what(), "shard 1");
  }
  EXPECT_EQ(ran.load(), 4);
  // The pool is reusable after an exception, with clean error slots.
  std::atomic<int> second{0};
  pool.Run([&](int) { second.fetch_add(1); });
  EXPECT_EQ(second.load(), 4);
}

TEST(ShardPoolTest, SingleShardRunsInline) {
  ShardPool pool{1};
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.Run([&](int shard) {
    EXPECT_EQ(shard, 0);
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

}  // namespace
}  // namespace hotspots::sim
