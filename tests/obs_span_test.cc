// Pins the span-tracing core: interned name stability, the zero-cost
// disabled path, SPSC ring overflow accounting (drops, never blocks), lane
// labelling, concurrent producer/drain integrity (the tsan target), and the
// thread-churn buffer-adoption bound that keeps long studies from leaking a
// ring per worker thread ever started.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace_span.h"

namespace hotspots::obs {
namespace {

class ObsSpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetTracingForTesting(1);
    SpanCollector::Global().ResetForTesting();
  }
  void TearDown() override {
    SpanCollector::Global().ResetForTesting();
    SetTracingForTesting(-1);
  }
};

TEST_F(ObsSpanTest, InternedNamesAreStableAndResolvable) {
  const std::uint32_t a1 = InternSpanName("span.alpha");
  const std::uint32_t b = InternSpanName("span.beta");
  const std::uint32_t a2 = InternSpanName("span.alpha");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);

  SpanCollector::Global().Append({10, 20, a1});
  SpanCollector::Global().Append({30, 40, b});
  const Timeline timeline = SpanCollector::Global().TakeTimeline();
  ASSERT_EQ(timeline.spans.size(), 2u);
  ASSERT_LT(a1, timeline.names.size());
  ASSERT_LT(b, timeline.names.size());
  EXPECT_EQ(timeline.names[a1], "span.alpha");
  EXPECT_EQ(timeline.names[b], "span.beta");
}

TEST_F(ObsSpanTest, InternTableSurvivesResetForTesting) {
  // Instrumented call sites cache ids in static locals, so resets (between
  // tests, between bench reruns) must not invalidate them.
  const std::uint32_t id = InternSpanName("span.cached");
  SpanCollector::Global().ResetForTesting();
  EXPECT_EQ(InternSpanName("span.cached"), id);
  SpanCollector::Global().Append({1, 2, id});
  const Timeline timeline = SpanCollector::Global().TakeTimeline();
  ASSERT_EQ(timeline.spans.size(), 1u);
  EXPECT_EQ(timeline.names[timeline.spans[0].name_id], "span.cached");
}

TEST_F(ObsSpanTest, DisabledTraceSpanRecordsNothing) {
  SetTracingForTesting(0);
  ASSERT_FALSE(TracingEnabled());
  const std::uint32_t id = InternSpanName("span.disabled");
  {
    TraceSpan implicit_gate{id};
    TraceSpan hoisted_gate{id, TracingEnabled()};
  }
  const Timeline timeline = SpanCollector::Global().TakeTimeline();
  EXPECT_TRUE(timeline.spans.empty());
  EXPECT_EQ(timeline.dropped, 0u);
}

TEST_F(ObsSpanTest, EnabledTraceSpanCapturesOrderedTimestamps) {
  const std::uint32_t outer_id = InternSpanName("span.outer");
  const std::uint32_t inner_id = InternSpanName("span.inner");
  {
    TraceSpan outer{outer_id};
    TraceSpan inner{inner_id};
  }
  const Timeline timeline = SpanCollector::Global().TakeTimeline();
  ASSERT_EQ(timeline.spans.size(), 2u);
  // RAII order: the inner span commits first (destructors run inside-out).
  const TimelineSpan& inner = timeline.spans[0];
  const TimelineSpan& outer = timeline.spans[1];
  EXPECT_EQ(timeline.names[inner.name_id], "span.inner");
  EXPECT_EQ(timeline.names[outer.name_id], "span.outer");
  EXPECT_LE(outer.begin_ns, inner.begin_ns);
  EXPECT_LE(inner.begin_ns, inner.end_ns);
  EXPECT_LE(inner.end_ns, outer.end_ns);
  EXPECT_EQ(timeline.start_ns, outer.begin_ns);
  EXPECT_EQ(inner.tid, outer.tid);
}

TEST_F(ObsSpanTest, FullRingDropsInsteadOfBlocking) {
  const std::uint32_t id = InternSpanName("span.flood");
  constexpr std::uint64_t kOverflow = 10;
  auto& collector = SpanCollector::Global();
  for (std::uint64_t i = 0; i < SpanBuffer::kCapacity + kOverflow; ++i) {
    collector.Append({i, i + 1, id});
  }
  const Timeline timeline = collector.TakeTimeline();
  EXPECT_EQ(timeline.spans.size(), SpanBuffer::kCapacity);
  EXPECT_EQ(timeline.dropped, kOverflow);

  // Drop accounting resets with TakeTimeline: the next harvest is clean.
  collector.Append({1, 2, id});
  const Timeline next = collector.TakeTimeline();
  EXPECT_EQ(next.spans.size(), 1u);
  EXPECT_EQ(next.dropped, 0u);
}

TEST_F(ObsSpanTest, ThreadLanesLabelTheirTids) {
  const std::uint32_t id = InternSpanName("span.lane");
  auto& collector = SpanCollector::Global();
  collector.SetThreadLane("main-lane");
  collector.Append({1, 2, id});
  std::thread worker{[&collector, id] {
    collector.SetThreadLane("worker-lane");
    collector.Append({3, 4, id});
  }};
  worker.join();
  const Timeline timeline = collector.TakeTimeline();
  ASSERT_EQ(timeline.spans.size(), 2u);
  std::map<std::string, std::uint32_t> tid_by_lane;
  for (const TimelineSpan& span : timeline.spans) {
    ASSERT_LT(span.tid, timeline.lanes.size());
    tid_by_lane[timeline.lanes[span.tid]] = span.tid;
  }
  ASSERT_EQ(tid_by_lane.count("main-lane"), 1u);
  ASSERT_EQ(tid_by_lane.count("worker-lane"), 1u);
  EXPECT_NE(tid_by_lane["main-lane"], tid_by_lane["worker-lane"]);
}

TEST_F(ObsSpanTest, ConcurrentProducersAndDrainsLoseNothingUncounted) {
  // The tsan target: producers push lock-free while the collector drains
  // concurrently.  Every record is either harvested or counted as dropped.
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 50'000;
  const std::uint32_t id = InternSpanName("span.stress");
  auto& collector = SpanCollector::Global();
  std::atomic<bool> go{false};
  std::atomic<int> running{kProducers};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {}
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        collector.Append({i, i + 1, id});
      }
      running.fetch_sub(1, std::memory_order_release);
    });
  }
  go.store(true, std::memory_order_release);
  while (running.load(std::memory_order_acquire) > 0) collector.Drain();
  for (auto& producer : producers) producer.join();
  const Timeline timeline = collector.TakeTimeline();
  EXPECT_EQ(timeline.spans.size() + timeline.dropped,
            kProducers * kPerProducer);
  for (const TimelineSpan& span : timeline.spans) {
    EXPECT_EQ(span.end_ns, span.begin_ns + 1);
  }
}

TEST_F(ObsSpanTest, SequentialThreadsAdoptReleasedBuffers) {
  // Short-lived threads (shard pools, study pools) must not grow the buffer
  // set beyond peak concurrency: each exiting thread releases its ring and
  // the next thread adopts it.
  const std::uint32_t id = InternSpanName("span.churn");
  auto& collector = SpanCollector::Global();
  collector.Append({1, 2, id});  // Pin the main thread's buffer.
  const std::size_t baseline = collector.BufferCountForTesting();
  for (int round = 0; round < 16; ++round) {
    std::thread worker{[&collector, id, round] {
      collector.Append({static_cast<std::uint64_t>(round) + 10,
                        static_cast<std::uint64_t>(round) + 11, id});
    }};
    worker.join();
  }
  // One extra ring for the churned lane, adopted 15 times over.
  EXPECT_LE(collector.BufferCountForTesting(), baseline + 1);
  const Timeline timeline = collector.TakeTimeline();
  EXPECT_EQ(timeline.spans.size(), 17u);
  EXPECT_EQ(timeline.dropped, 0u);
}

TEST_F(ObsSpanTest, AdoptionDrainsPredecessorRecordsUnderOldTid) {
  // A record still buffered when its thread exits must be attributed to the
  // exiting thread's tid, not to whoever adopts the ring next.
  const std::uint32_t id = InternSpanName("span.handoff");
  auto& collector = SpanCollector::Global();
  std::thread first{[&collector, id] {
    collector.SetThreadLane("first");
    collector.Append({1, 2, id});
  }};
  first.join();  // Ring released with one pending record.
  std::thread second{[&collector, id] {
    collector.SetThreadLane("second");
    collector.Append({3, 4, id});
  }};
  second.join();
  const Timeline timeline = collector.TakeTimeline();
  ASSERT_EQ(timeline.spans.size(), 2u);
  std::map<std::uint64_t, std::string> lane_by_begin;
  for (const TimelineSpan& span : timeline.spans) {
    ASSERT_LT(span.tid, timeline.lanes.size());
    lane_by_begin[span.begin_ns] = timeline.lanes[span.tid];
  }
  EXPECT_EQ(lane_by_begin[1], "first");
  EXPECT_EQ(lane_by_begin[3], "second");
}

}  // namespace
}  // namespace hotspots::obs
