// Cross-validation of the Figure-1 analytic footprint model.
//
// The fig1 bench computes Blaster coverage analytically: a host sweeping
// sequentially from start /24 covers the /24 interval
// [start24, start24 + probes/256).  This suite pins that model to the real
// scanner: stepping the actual SequentialSweep must cover exactly the
// /24s the interval model claims (with the documented deviation that
// non-targetable /8s are hopped over, which can only *extend* coverage
// forward).
#include <gtest/gtest.h>

#include <set>

#include "net/special_ranges.h"
#include "worms/blaster.h"

namespace hotspots::worms {
namespace {

using net::Ipv4;

TEST(BlasterFootprintTest, SweepCoversTheAnalyticInterval) {
  // Start well inside clean unicast space.
  const Ipv4 start{60, 100, 0, 0};
  SequentialSweep sweep{start};
  constexpr std::uint32_t kSlash24s = 40;
  std::set<std::uint32_t> covered;
  for (std::uint32_t i = 0; i < kSlash24s * 256; ++i) {
    covered.insert(sweep.Next().Slash24());
  }
  // Exactly the analytic interval, nothing less.
  EXPECT_EQ(covered.size(), kSlash24s);
  EXPECT_EQ(*covered.begin(), start.Slash24());
  EXPECT_EQ(*covered.rbegin(), start.Slash24() + kSlash24s - 1);
}

TEST(BlasterFootprintTest, NonTargetableSkipsOnlyExtendCoverageForward) {
  // A sweep that crosses loopback: the /24s covered are the analytic
  // interval's targetable prefix plus post-skip space — never behind the
  // start, never inside 127/8.
  const Ipv4 start{126, 255, 250, 0};
  SequentialSweep sweep{start};
  std::set<std::uint32_t> covered;
  for (int i = 0; i < 20 * 256; ++i) {
    covered.insert(sweep.Next().Slash24());
  }
  for (const std::uint32_t s24 : covered) {
    EXPECT_FALSE(net::IsNonTargetable(Ipv4{s24 << 8}))
        << Ipv4{s24 << 8}.ToString();
    EXPECT_GE(s24, start.Slash24());
  }
  // The 6 pre-loopback /24s plus 14 /24s of 128.0.0.x: 20 total.
  EXPECT_EQ(covered.size(), 20u);
  EXPECT_TRUE(covered.contains(Ipv4{128, 0, 0, 0}.Slash24()));
}

TEST(BlasterFootprintTest, EveryProbeStaysInsideCoveredSlash24s) {
  // The per-address view: 256 consecutive probes fill one /24 completely
  // before the sweep moves on — the property the unique-source interval
  // stabbing in the fig1 bench relies on.
  SequentialSweep sweep{Ipv4{77, 3, 9, 0}};
  for (int block = 0; block < 5; ++block) {
    for (int host = 0; host < 256; ++host) {
      const Ipv4 target = sweep.Next();
      EXPECT_EQ(target.Slash24(), Ipv4(77, 3, 9, 0).Slash24() + block);
      EXPECT_EQ(target.octet(3), host);
    }
  }
}

}  // namespace
}  // namespace hotspots::worms
