// Pins for the `hotspots.ingest.v1` framing layer (src/serve/wire.h):
// builder/parser round-trips survive arbitrary fragmentation, and every
// framing ceiling fails closed with an IngestError instead of a silent
// resync.  The parser is what stands between raw socket bytes and the
// shared fold, so "reject, never guess" is the property under test.
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/protocol.h"
#include "serve/wire.h"
#include "trace/format.h"

namespace hotspots::serve {
namespace {

/// A syntactically plausible 48-byte trace header for HELLO payloads.
/// ParseHello treats it as opaque bytes; only size matters here.
std::vector<std::uint8_t> FakeTraceHeader() {
  std::vector<std::uint8_t> header(trace::kHeaderBytes, 0);
  for (std::size_t i = 0; i < header.size(); ++i) {
    header[i] = static_cast<std::uint8_t>(0xA0 + i);
  }
  return header;
}

std::vector<std::uint8_t> FakeBlock(std::size_t payload_bytes) {
  // Framing only cares that the payload is at least one block frame; the
  // CRC is validated downstream by the StreamDecoder, not the parser.
  std::vector<std::uint8_t> block(trace::kBlockFrameBytes + payload_bytes, 0);
  for (std::size_t i = 0; i < block.size(); ++i) {
    block[i] = static_cast<std::uint8_t>(i * 7);
  }
  return block;
}

std::vector<Frame> DrainCopy(FrameParser& parser,
                             std::vector<std::vector<std::uint8_t>>& payloads) {
  std::vector<Frame> frames;
  Frame frame;
  while (parser.Next(frame)) {
    payloads.emplace_back(frame.payload.begin(), frame.payload.end());
    frames.push_back(frame);
  }
  return frames;
}

/// One of each frame type, in session order, as a client would send them.
std::vector<std::uint8_t> SessionBytes() {
  std::vector<std::uint8_t> bytes;
  const auto trace_header = FakeTraceHeader();
  AppendHello(bytes, /*connection=*/3, /*fanout=*/8, trace_header);
  AppendBlock(bytes, /*sequence=*/17, FakeBlock(40));
  AppendBlock(bytes, /*sequence=*/18, FakeBlock(9));
  const auto trailer = BuildConnectionTrailer(/*records=*/123, /*blocks=*/2,
                                              /*last_time_bits=*/0x3FF00000u);
  AppendFin(bytes, trailer);
  AppendAck(bytes);
  return bytes;
}

void ExpectSessionFrames(const std::vector<Frame>& frames,
                         const std::vector<std::vector<std::uint8_t>>& payloads,
                         const std::string& context) {
  ASSERT_EQ(frames.size(), 5u) << context;
  EXPECT_EQ(frames[0].header.type,
            static_cast<std::uint32_t>(FrameType::kHello))
      << context;
  EXPECT_EQ(payloads[0].size(), kHelloPayloadBytes) << context;
  EXPECT_EQ(frames[1].header.type,
            static_cast<std::uint32_t>(FrameType::kBlock))
      << context;
  EXPECT_EQ(frames[1].header.sequence, 17u) << context;
  EXPECT_EQ(payloads[1].size(), trace::kBlockFrameBytes + 40) << context;
  EXPECT_EQ(frames[2].header.sequence, 18u) << context;
  EXPECT_EQ(payloads[2].size(), trace::kBlockFrameBytes + 9) << context;
  EXPECT_EQ(frames[3].header.type, static_cast<std::uint32_t>(FrameType::kFin))
      << context;
  EXPECT_EQ(payloads[3].size(), kFinPayloadBytes) << context;
  EXPECT_EQ(frames[4].header.type, static_cast<std::uint32_t>(FrameType::kAck))
      << context;
  EXPECT_TRUE(payloads[4].empty()) << context;

  // Payload bytes must be verbatim: the block frame we appended must come
  // back untouched (spot-check first data block).
  const auto block = FakeBlock(40);
  EXPECT_EQ(payloads[1], block) << context;
}

TEST(ServeWireTest, SessionRoundTripOneFeed) {
  const auto bytes = SessionBytes();
  FrameParser parser;
  parser.Feed(bytes);
  std::vector<std::vector<std::uint8_t>> payloads;
  const auto frames = DrainCopy(parser, payloads);
  ExpectSessionFrames(frames, payloads, "one feed");
  EXPECT_EQ(parser.buffered_bytes(), 0u);
  EXPECT_EQ(parser.frames_parsed(), 5u);
}

/// Fragmentation sweep: every two-chunk split of the whole session byte
/// stream yields the identical frame sequence — the parser must tolerate
/// a cut inside a frame header, inside a payload, and exactly on a seam.
TEST(ServeWireTest, EveryTwoChunkSplitYieldsSameFrames) {
  const auto bytes = SessionBytes();
  const std::span<const std::uint8_t> all{bytes};
  for (std::size_t split = 0; split <= bytes.size(); ++split) {
    FrameParser parser;
    std::vector<std::vector<std::uint8_t>> payloads;
    std::vector<Frame> frames;
    parser.Feed(all.subspan(0, split));
    for (const auto& f : DrainCopy(parser, payloads)) frames.push_back(f);
    parser.Feed(all.subspan(split));
    for (const auto& f : DrainCopy(parser, payloads)) frames.push_back(f);
    ASSERT_NO_FATAL_FAILURE(ExpectSessionFrames(
        frames, payloads, "split at byte " + std::to_string(split)));
  }
}

TEST(ServeWireTest, ByteAtATime) {
  const auto bytes = SessionBytes();
  FrameParser parser;
  std::vector<std::vector<std::uint8_t>> payloads;
  std::vector<Frame> frames;
  for (const std::uint8_t byte : bytes) {
    parser.Feed({&byte, 1});
    for (const auto& f : DrainCopy(parser, payloads)) frames.push_back(f);
  }
  ExpectSessionFrames(frames, payloads, "byte at a time");
}

TEST(ServeWireTest, OversizedPayloadLengthThrows) {
  std::vector<std::uint8_t> bytes;
  AppendFrameHeader(bytes, FrameType::kBlock, /*sequence=*/0,
                    kMaxFramePayloadBytes + 1);
  FrameParser parser;
  parser.Feed(bytes);
  Frame frame;
  EXPECT_THROW((void)parser.Next(frame), IngestError);
}

TEST(ServeWireTest, UnknownFrameTypeThrows) {
  std::vector<std::uint8_t> bytes;
  AppendFrameHeader(bytes, static_cast<FrameType>(99), /*sequence=*/0, 0);
  FrameParser parser;
  parser.Feed(bytes);
  Frame frame;
  EXPECT_THROW((void)parser.Next(frame), IngestError);
}

TEST(ServeWireTest, WrongFixedSizesThrow) {
  // HELLO must be exactly kHelloPayloadBytes.
  {
    std::vector<std::uint8_t> bytes;
    AppendFrameHeader(bytes, FrameType::kHello, 0, kHelloPayloadBytes - 1);
    bytes.resize(bytes.size() + kHelloPayloadBytes - 1, 0);
    FrameParser parser;
    parser.Feed(bytes);
    Frame frame;
    EXPECT_THROW((void)parser.Next(frame), IngestError);
  }
  // FIN must be exactly kFinPayloadBytes.
  {
    std::vector<std::uint8_t> bytes;
    AppendFrameHeader(bytes, FrameType::kFin, 0, kFinPayloadBytes + 4);
    bytes.resize(bytes.size() + kFinPayloadBytes + 4, 0);
    FrameParser parser;
    parser.Feed(bytes);
    Frame frame;
    EXPECT_THROW((void)parser.Next(frame), IngestError);
  }
  // ACK must be empty.
  {
    std::vector<std::uint8_t> bytes;
    AppendFrameHeader(bytes, FrameType::kAck, 0, 1);
    bytes.push_back(0);
    FrameParser parser;
    parser.Feed(bytes);
    Frame frame;
    EXPECT_THROW((void)parser.Next(frame), IngestError);
  }
  // BLOCK payloads are variable-length for the parser (the StreamDecoder
  // owns their validation), but the *builder* refuses to frame a span
  // smaller than one block frame.
  {
    std::vector<std::uint8_t> bytes;
    const auto tiny = FakeBlock(0);
    EXPECT_THROW(
        AppendBlock(bytes, 0,
                    std::span<const std::uint8_t>{tiny}.subspan(
                        0, trace::kBlockFrameBytes - 1)),
        IngestError);
  }
}

TEST(ServeWireTest, ParseHelloRoundTrip) {
  std::vector<std::uint8_t> bytes;
  const auto trace_header = FakeTraceHeader();
  AppendHello(bytes, /*connection=*/5, /*fanout=*/8, trace_header);
  FrameParser parser;
  parser.Feed(bytes);
  Frame frame;
  ASSERT_TRUE(parser.Next(frame));
  const Hello hello = ParseHello(frame.payload);
  EXPECT_EQ(hello.version, kIngestVersion);
  EXPECT_EQ(hello.connection, 5u);
  EXPECT_EQ(hello.fanout, 8u);
  EXPECT_EQ(std::memcmp(hello.trace_header, trace_header.data(),
                        trace::kHeaderBytes),
            0);
}

TEST(ServeWireTest, ParseHelloRejectsBadMagicVersionAndFanout) {
  const auto trace_header = FakeTraceHeader();

  auto hello_bytes = [&](auto mutate) {
    std::vector<std::uint8_t> bytes;
    AppendHello(bytes, /*connection=*/0, /*fanout=*/4, trace_header);
    std::vector<std::uint8_t> payload(bytes.begin() + kFrameHeaderBytes,
                                      bytes.end());
    mutate(payload);
    return payload;
  };

  // Bad magic.
  auto bad_magic = hello_bytes([](auto& p) { p[0] ^= 0xFF; });
  EXPECT_THROW((void)ParseHello(bad_magic), IngestError);
  // Unsupported version.
  auto bad_version = hello_bytes([](auto& p) { p[8] = 9; });
  EXPECT_THROW((void)ParseHello(bad_version), IngestError);
  // connection >= fanout.
  auto bad_index = hello_bytes([](auto& p) { p[12] = 4; });
  EXPECT_THROW((void)ParseHello(bad_index), IngestError);
  // Truncated payload.
  auto good = hello_bytes([](auto&) {});
  EXPECT_THROW(
      (void)ParseHello(std::span<const std::uint8_t>{good}.subspan(0, 20)),
      IngestError);
}

TEST(ServeWireTest, HelloFlagsRoundTripAndLegacyZero) {
  const auto trace_header = FakeTraceHeader();
  // Legacy encoder (no flags argument): byte [20..24) stays zero, and the
  // parser reports flags == 0 — the original fire-and-forget flow.
  std::vector<std::uint8_t> legacy;
  AppendHello(legacy, 1, 4, trace_header);
  FrameParser parser;
  parser.Feed(legacy);
  Frame frame;
  ASSERT_TRUE(parser.Next(frame));
  EXPECT_EQ(ParseHello(frame.payload).flags, 0u);

  std::vector<std::uint8_t> flagged;
  AppendHello(flagged, 1, 4, trace_header, kHelloFlagAwaitWindow);
  parser.Feed(flagged);
  ASSERT_TRUE(parser.Next(frame));
  const Hello hello = ParseHello(frame.payload);
  EXPECT_EQ(hello.flags, kHelloFlagAwaitWindow);
  EXPECT_EQ(hello.connection, 1u);
  EXPECT_EQ(hello.fanout, 4u);
}

TEST(ServeWireTest, ProgressAndErrorFramesRoundTrip) {
  std::vector<std::uint8_t> bytes;
  AppendProgress(bytes, /*low_water=*/0xABCDEF0123ull);
  AppendError(bytes, "ingest: scenario fingerprint 9 does not match");
  FrameParser parser;
  parser.Feed(bytes);
  Frame frame;
  ASSERT_TRUE(parser.Next(frame));
  EXPECT_EQ(frame.header.type,
            static_cast<std::uint32_t>(FrameType::kProgress));
  EXPECT_EQ(frame.header.sequence, 0xABCDEF0123ull);
  EXPECT_TRUE(frame.payload.empty());
  ASSERT_TRUE(parser.Next(frame));
  EXPECT_EQ(frame.header.type, static_cast<std::uint32_t>(FrameType::kError));
  const std::string reason(frame.payload.begin(), frame.payload.end());
  EXPECT_EQ(reason, "ingest: scenario fingerprint 9 does not match");

  // Oversized reasons truncate at the encoder; the wire stays bounded.
  std::vector<std::uint8_t> big;
  AppendError(big, std::string(4096, 'x'));
  parser.Feed(big);
  ASSERT_TRUE(parser.Next(frame));
  EXPECT_EQ(frame.payload.size(), kMaxErrorPayloadBytes);
}

TEST(ServeWireTest, BuildConnectionTrailerShape) {
  const auto trailer = BuildConnectionTrailer(/*records=*/1000, /*blocks=*/3,
                                              /*last_time_bits=*/0xDEADBEEFu);
  ASSERT_EQ(trailer.size(), kFinPayloadBytes);
  // Block frame with record count zero (the trace trailer marker).
  std::uint32_t record_count = 0;
  std::uint32_t payload_size = 0;
  std::memcpy(&record_count, trailer.data(), 4);
  std::memcpy(&payload_size, trailer.data() + 4, 4);
  EXPECT_EQ(record_count, 0u);
  EXPECT_EQ(payload_size, trace::kTrailerPayloadBytes);
  std::uint64_t records = 0;
  std::uint64_t blocks = 0;
  std::uint64_t time_bits = 0;
  std::memcpy(&records, trailer.data() + trace::kBlockFrameBytes, 8);
  std::memcpy(&blocks, trailer.data() + trace::kBlockFrameBytes + 8, 8);
  std::memcpy(&time_bits, trailer.data() + trace::kBlockFrameBytes + 16, 8);
  EXPECT_EQ(records, 1000u);
  EXPECT_EQ(blocks, 3u);
  EXPECT_EQ(time_bits, 0xDEADBEEFu);
}

}  // namespace
}  // namespace hotspots::serve
