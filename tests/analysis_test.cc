#include <gtest/gtest.h>

#include <vector>

#include "analysis/seed_forensics.h"
#include "analysis/uniformity.h"
#include "worms/blaster.h"

namespace hotspots::analysis {
namespace {

TEST(GiniTest, UniformIsZero) {
  const std::vector<std::uint64_t> counts(100, 7);
  EXPECT_NEAR(GiniCoefficient(counts), 0.0, 1e-12);
}

TEST(GiniTest, SingleSpikeApproachesOne) {
  std::vector<std::uint64_t> counts(100, 0);
  counts[13] = 1000;
  EXPECT_GT(GiniCoefficient(counts), 0.95);
}

TEST(GiniTest, EmptyThrows) {
  EXPECT_THROW((void)GiniCoefficient({}), std::invalid_argument);
}

TEST(UniformityTest, UniformHistogramLooksUniform) {
  const std::vector<std::uint64_t> counts(256, 50);
  const UniformityReport report = AnalyzeUniformity(counts);
  EXPECT_EQ(report.total, 256u * 50u);
  EXPECT_DOUBLE_EQ(report.mean, 50.0);
  EXPECT_DOUBLE_EQ(report.chi_square, 0.0);
  EXPECT_NEAR(report.kl_divergence, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(report.peak_to_mean, 1.0);
  EXPECT_NEAR(report.half_mass_bin_fraction, 0.5, 0.01);
  EXPECT_FALSE(report.LooksNonUniform());
}

TEST(UniformityTest, SpikedHistogramFlagsHotspot) {
  std::vector<std::uint64_t> counts(256, 2);
  counts[100] = 5000;
  const UniformityReport report = AnalyzeUniformity(counts);
  EXPECT_TRUE(report.LooksNonUniform());
  EXPECT_GT(report.peak_to_mean, 100.0);
  EXPECT_LT(report.half_mass_bin_fraction, 0.01);
  EXPECT_GT(report.kl_divergence, 1.0);
}

TEST(UniformityTest, PoissonNoiseIsNotAHotspot) {
  // Statistical fluctuation around a uniform rate must not be classified
  // as a hotspot: counts ~ Poisson(100).
  prng::Xoshiro256 rng{5};
  std::vector<std::uint64_t> counts(512);
  for (auto& c : counts) {
    // Crude Poisson via 100 Bernoulli batches is enough here.
    std::uint64_t n = 0;
    for (int i = 0; i < 200; ++i) n += rng.Bernoulli(0.5) ? 1 : 0;
    c = n;
  }
  const UniformityReport report = AnalyzeUniformity(counts);
  EXPECT_FALSE(report.LooksNonUniform());
}

TEST(UniformityTest, EmptyHistogramThrows) {
  EXPECT_THROW((void)AnalyzeUniformity({}), std::invalid_argument);
}

TEST(UniformityTest, AllZeroHistogramIsDegenerateButSafe) {
  const std::vector<std::uint64_t> counts(16, 0);
  const UniformityReport report = AnalyzeUniformity(counts);
  EXPECT_EQ(report.total, 0u);
  EXPECT_FALSE(report.LooksNonUniform());
}

TEST(SeedForensicsTest, RecoversPlantedSeed) {
  // Plant a seed, observe where its sweep goes, invert, and check the
  // planted tick is among the candidates.
  const std::uint32_t planted_tick = 140'000;  // 2.3 minutes — the paper's
                                               // headline I-block seed.
  const net::Ipv4 start = worms::BlasterWorm::StartAddressForSeed(planted_tick);
  // A "sensor" /24 a little way into the sweep.
  const net::Ipv4 sensor{((start.Slash24() + 100) << 8) | 7u};

  SeedSearchConfig config;
  config.min_tick = 100'000;
  config.max_tick = 200'000;
  const auto candidates = FindSeedsCovering(sensor, config);
  bool found = false;
  for (const SeedCandidate& candidate : candidates) {
    if (candidate.tick_count == planted_tick) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(SeedForensicsTest, StartInsideBlockCounts) {
  const std::uint32_t tick = 123'456;
  const net::Ipv4 start = worms::BlasterWorm::StartAddressForSeed(tick);
  SeedSearchConfig config;
  config.min_tick = tick;
  config.max_tick = tick;
  const auto candidates =
      FindSeedsCoveringBlock(net::Prefix{start, 24}, config);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].tick_count, tick);
}

TEST(SeedForensicsTest, FarAwayBlockHasNoCandidates) {
  const std::uint32_t tick = 150'000;
  const net::Ipv4 start = worms::BlasterWorm::StartAddressForSeed(tick);
  // A /24 just *before* the start is unreachable within the sweep window
  // (distance ≈ 2^24 − 10 forward).
  const net::Ipv4 sensor{((start.Slash24() - 10) << 8) | 7u};
  SeedSearchConfig config;
  config.min_tick = tick;
  config.max_tick = tick;
  const auto candidates = FindSeedsCovering(sensor, config);
  EXPECT_TRUE(candidates.empty());
}

TEST(SeedForensicsTest, UptimeSummary) {
  std::vector<SeedCandidate> candidates;
  for (const std::uint32_t tick : {60'000u, 120'000u, 300'000u}) {
    candidates.push_back(SeedCandidate{tick, net::Ipv4{}});
  }
  const UptimeSummary summary = SummarizeUptimes(candidates);
  EXPECT_EQ(summary.candidates, 3u);
  EXPECT_DOUBLE_EQ(summary.min_seconds, 60.0);
  EXPECT_DOUBLE_EQ(summary.median_seconds, 120.0);
  EXPECT_DOUBLE_EQ(summary.max_seconds, 300.0);
}

TEST(SeedForensicsTest, ValidatesConfig) {
  SeedSearchConfig config;
  config.tick_step = 0;
  EXPECT_THROW((void)FindSeedsCovering(net::Ipv4{1}, config),
               std::invalid_argument);
  config = SeedSearchConfig{};
  config.min_tick = 10;
  config.max_tick = 5;
  EXPECT_THROW((void)FindSeedsCovering(net::Ipv4{1}, config),
               std::invalid_argument);
}

}  // namespace
}  // namespace hotspots::analysis
