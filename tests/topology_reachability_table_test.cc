// Differential test for the table-driven Reachability fast path.
//
// Reachability::Decide() resolves destination-only factors through a
// 65,536-entry per-/16 classification table; DecideReference() is the
// original factor-by-factor chain, retained as the oracle.  These tests
// drive both through the same probe streams and require them to agree
// verdict-for-verdict — and, because the fast path must consume the engine
// RNG identically (loss draws only on the clean-public/slow path), they
// also require the two RNG streams to stay in lockstep.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/special_ranges.h"
#include "prng/xoshiro.h"
#include "topology/filtering.h"
#include "topology/nat.h"
#include "topology/org.h"
#include "topology/reachability.h"

namespace hotspots::topology {
namespace {

using net::Ipv4;
using net::Prefix;

/// Every boundary address of the special ranges the per-/16 table folds in:
/// first/last address of the range plus its outside neighbours.
std::vector<Ipv4> SpecialRangeBoundaries() {
  return {
      // 0.0.0.0/8 ("this network").
      Ipv4{0, 0, 0, 0}, Ipv4{0, 255, 255, 255}, Ipv4{1, 0, 0, 0},
      // 127.0.0.0/8 loopback.
      Ipv4{126, 255, 255, 255}, Ipv4{127, 0, 0, 0}, Ipv4{127, 255, 255, 255},
      Ipv4{128, 0, 0, 0},
      // 224.0.0.0/4 multicast.
      Ipv4{223, 255, 255, 255}, Ipv4{224, 0, 0, 0}, Ipv4{239, 255, 255, 255},
      // 240.0.0.0/4 class E (through the top of the address space).
      Ipv4{240, 0, 0, 0}, Ipv4{255, 255, 255, 255},
      // 10.0.0.0/8 (RFC 1918).
      Ipv4{9, 255, 255, 255}, Ipv4{10, 0, 0, 0}, Ipv4{10, 255, 255, 255},
      Ipv4{11, 0, 0, 0},
      // 172.16.0.0/12 (RFC 1918).
      Ipv4{172, 15, 255, 255}, Ipv4{172, 16, 0, 0}, Ipv4{172, 31, 255, 255},
      Ipv4{172, 32, 0, 0},
      // 192.168.0.0/16 (RFC 1918).
      Ipv4{192, 167, 255, 255}, Ipv4{192, 168, 0, 0},
      Ipv4{192, 168, 255, 255}, Ipv4{192, 169, 0, 0},
  };
}

/// Scenario with every factor active: org perimeters, one NAT site, and an
/// ACL set that covers one full /16, one partial /16 (a /17), and one /22.
class ReachabilityTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    enterprise_ = registry_.AddOrg("Fort", OrgKind::kEnterprise,
                                   {Prefix{Ipv4{20, 0, 0, 0}, 8}}, true);
    isp_ = registry_.AddOrg("ISP", OrgKind::kBroadbandIsp,
                            {Prefix{Ipv4{24, 0, 0, 0}, 8}}, false);
    registry_.Build();
    site_ = nats_.AddSite(net::kPrivate192, Ipv4{24, 1, 1, 1});
    acls_.Block(Prefix{Ipv4{61, 0, 0, 0}, 16});     // Whole /16.
    acls_.Block(Prefix{Ipv4{60, 10, 128, 0}, 17});  // Half a /16.
    acls_.Block(Prefix{Ipv4{192, 88, 16, 0}, 22});  // Sliver of a /16.
    acls_.Build();
  }

  /// Asserts Decide == DecideReference for `probe` under two RNGs seeded
  /// identically, then asserts the RNG streams are still in lockstep (both
  /// must have consumed the same number of draws).
  void ExpectEquivalent(const Reachability& reach, const Probe& probe,
                        prng::Xoshiro256& fast_rng,
                        prng::Xoshiro256& reference_rng) {
    const Delivery fast = reach.Decide(probe, fast_rng);
    const Delivery reference = reach.DecideReference(probe, reference_rng);
    ASSERT_EQ(fast, reference)
        << "dst=" << probe.dst.value() << " src_site=" << probe.src_site
        << " fast=" << ToString(fast) << " ref=" << ToString(reference);
    ASSERT_EQ(fast_rng.Next(), reference_rng.Next())
        << "RNG streams diverged at dst=" << probe.dst.value();
  }

  AllocationRegistry registry_;
  NatDirectory nats_;
  IngressAclSet acls_;
  OrgId enterprise_ = kInvalidOrg;
  OrgId isp_ = kInvalidOrg;
  SiteId site_ = kPublicSite;
};

TEST_F(ReachabilityTableTest, SpecialRangeBoundariesMatchReference) {
  const Reachability reach{&registry_, &nats_, &acls_, 0.0};
  prng::Xoshiro256 fast_rng{7}, reference_rng{7};
  for (const Ipv4 dst : SpecialRangeBoundaries()) {
    for (const SiteId src_site : {kPublicSite, site_}) {
      Probe probe;
      probe.src = Ipv4{24, 2, 2, 2};
      probe.src_org = isp_;
      probe.src_site = src_site;
      probe.dst = dst;
      ExpectEquivalent(reach, probe, fast_rng, reference_rng);
    }
  }
}

TEST_F(ReachabilityTableTest, PartiallyCoveredSlash16MatchesReference) {
  const Reachability reach{&registry_, &nats_, &acls_, 0.0};
  prng::Xoshiro256 fast_rng{11}, reference_rng{11};
  Probe probe;
  probe.src = Ipv4{24, 2, 2, 2};
  probe.src_org = isp_;

  // 61.0.0.0/16 is fully covered → table answers directly.
  probe.dst = Ipv4{61, 0, 200, 2};
  EXPECT_EQ(reach.Decide(probe, fast_rng), Delivery::kIngressFiltered);

  // 60.10.0.0/16 is half covered and 192.88.0.0/16 has a covered /22:
  // addresses on both sides of each ACL edge must agree with the oracle.
  for (const Ipv4 dst :
       {Ipv4{60, 10, 127, 255}, Ipv4{60, 10, 128, 0}, Ipv4{60, 10, 255, 255},
        Ipv4{60, 10, 0, 0}, Ipv4{192, 88, 15, 255}, Ipv4{192, 88, 16, 0},
        Ipv4{192, 88, 19, 255}, Ipv4{192, 88, 20, 0}}) {
    probe.dst = dst;
    ExpectEquivalent(reach, probe, fast_rng, reference_rng);
  }
  // And spot-check the expected verdicts on the partial /16 itself.
  probe.dst = Ipv4{60, 10, 200, 1};
  EXPECT_EQ(reach.Decide(probe, fast_rng), Delivery::kIngressFiltered);
  probe.dst = Ipv4{60, 10, 5, 1};
  EXPECT_EQ(reach.Decide(probe, fast_rng), Delivery::kDelivered);
}

TEST_F(ReachabilityTableTest, RandomizedProbesMatchReferenceWithLoss) {
  // loss_rate > 0 exercises the Bernoulli draw: the fast path must reach it
  // exactly when the reference chain does, or the streams diverge.
  const Reachability reach{&registry_, &nats_, &acls_, 0.05};
  prng::Xoshiro256 fast_rng{0xD1FF}, reference_rng{0xD1FF};
  prng::Xoshiro256 gen{0x5EED5};
  const auto boundaries = SpecialRangeBoundaries();
  for (int i = 0; i < 200000; ++i) {
    Probe probe;
    probe.src = Ipv4{24, 2, 2, 2};
    probe.src_org = isp_;
    probe.src_site = (gen.Next() & 1) ? site_ : kPublicSite;
    switch (gen.UniformBelow(4)) {
      case 0:  // Anywhere in the address space.
        probe.dst = Ipv4{gen.NextU32()};
        break;
      case 1:  // Dense around the ACL-covered blocks.
        probe.dst = Ipv4{(gen.Next() & 1 ? 60u : 61u) << 24 |
                         (10u << 16) | (gen.NextU32() & 0xFFFFu)};
        break;
      case 2:  // A special-range boundary, nudged ±1 occasionally.
        probe.dst = Ipv4{boundaries[gen.UniformBelow(static_cast<std::uint32_t>(
                             boundaries.size()))]
                             .value() +
                         gen.UniformBelow(3) - 1};
        break;
      default:  // Organization space (perimeter factor).
        probe.dst = Ipv4{(gen.Next() & 1 ? 20u : 24u) << 24 |
                         (gen.NextU32() & 0xFFFFFFu)};
        break;
    }
    ExpectEquivalent(reach, probe, fast_rng, reference_rng);
  }
}

TEST_F(ReachabilityTableTest, EnterpriseSourcesMatchReference) {
  const Reachability reach{&registry_, &nats_, &acls_, 0.0};
  prng::Xoshiro256 fast_rng{3}, reference_rng{3};
  prng::Xoshiro256 gen{0xE9};
  for (int i = 0; i < 20000; ++i) {
    Probe probe;
    probe.src = Ipv4{20, 1, 1, 1};
    probe.src_org = enterprise_;
    probe.dst = Ipv4{gen.NextU32()};
    ExpectEquivalent(reach, probe, fast_rng, reference_rng);
  }
}

TEST_F(ReachabilityTableTest, AclCoverageClassification) {
  EXPECT_EQ(acls_.CoverageOf(net::Interval{61u << 24, (61u << 24) | 0xFFFFu}),
            net::Coverage::kFull);
  EXPECT_EQ(acls_.CoverageOf(net::Interval{(60u << 24) | (10u << 16),
                                           (60u << 24) | (10u << 16) | 0xFFFFu}),
            net::Coverage::kPartial);
  EXPECT_EQ(acls_.CoverageOf(net::Interval{8u << 24, (8u << 24) | 0xFFFFu}),
            net::Coverage::kNone);
}

TEST(ReachabilityTableErrorTest, UnbuiltAclsStillFailOnFirstDecide) {
  // A non-empty, un-built ACL set cannot be classified at table-build time;
  // the original error must still surface on the first public-destination
  // Decide(), not silently disappear into the table.
  IngressAclSet acls;
  acls.Block(Prefix{Ipv4{10, 0, 0, 0}, 8});
  const Reachability reach{nullptr, nullptr, &acls, 0.0};
  prng::Xoshiro256 rng{1};
  Probe probe;
  probe.src = Ipv4{1, 1, 1, 1};
  probe.dst = Ipv4{8, 8, 8, 8};
  EXPECT_THROW((void)reach.Decide(probe, rng), std::logic_error);
}

}  // namespace
}  // namespace hotspots::topology
