// Incremental decode pins: trace::StreamDecoder must yield the same
// record sequence as the one-shot TraceReader no matter where the byte
// stream is cut — mid-header, mid-frame, mid-varint, across block seams.
// This is the correctness backbone of the telescope server's
// per-connection partial reads (src/serve/connection.cc): a socket
// delivers bytes in arbitrary fragments, and nothing unverified may ever
// reach the fold.  The central test splits a multi-block fixture at
// EVERY byte boundary (which necessarily includes every block seam) and
// requires byte-identical output; the rest covers the fail-closed paths
// (truncation at EOF, CRC damage, bytes after the trailer).
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <unistd.h>

#include "net/ipv4.h"
#include "sim/observer.h"
#include "trace/format.h"
#include "trace/reader.h"
#include "trace/stream_decoder.h"
#include "trace/writer.h"

namespace hotspots {
namespace {

using net::Ipv4;

std::string FixturePath(const char* name) {
  // Per-process suffix: ctest -j runs each case in its own process and
  // several cases rebuild the same fixture name concurrently.
  return ::testing::TempDir() + "/" + name + "." +
         std::to_string(::getpid()) + ".trace";
}

/// A small deterministic stream: 40 records in blocks of 7 (so the last
/// block is short), repeated timestamps, every delivery verdict, sources
/// and destinations exercising the varint edge widths.
std::vector<sim::ProbeEvent> FixtureEvents() {
  std::vector<sim::ProbeEvent> events;
  for (std::uint32_t i = 0; i < 40; ++i) {
    sim::ProbeEvent event;
    event.time = 0.25 * static_cast<double>(i / 4);  // Runs of 4 per step.
    event.src_host = i * 97;
    event.src_address = Ipv4{(i % 3 == 0) ? 0xFFFFFF00u + i : i * 2654435761u};
    event.dst = Ipv4{(60u << 24) | (i * 40503u)};
    event.delivery = static_cast<topology::Delivery>(i % 6);
    events.push_back(event);
  }
  return events;
}

/// Writes the fixture and returns its bytes.
std::vector<std::uint8_t> WriteFixture(const std::string& path) {
  trace::TraceWriterOptions options;
  options.scenario_fingerprint = 0xFEEDFACEu;
  options.seed = 99;
  options.block_records = 7;
  trace::TraceWriter writer{path, options};
  writer.OnAttach();
  const auto events = FixtureEvents();
  writer.OnProbeBatch(events);
  writer.Finish();

  std::ifstream in{path, std::ios::binary};
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

std::vector<sim::ProbeEvent> ReadOneShot(const std::string& path) {
  trace::TraceReader reader{path};
  std::vector<sim::ProbeEvent> events;
  while (true) {
    const auto batch = reader.NextBatch();
    if (batch.empty()) break;
    events.insert(events.end(), batch.begin(), batch.end());
  }
  return events;
}

void DrainInto(trace::StreamDecoder& decoder,
               std::vector<sim::ProbeEvent>& out) {
  while (true) {
    const auto batch = decoder.NextBatch();
    if (batch.empty()) break;
    out.insert(out.end(), batch.begin(), batch.end());
  }
}

void ExpectSameEvents(const std::vector<sim::ProbeEvent>& got,
                      const std::vector<sim::ProbeEvent>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].time, want[i].time) << "record " << i;
    EXPECT_EQ(got[i].src_host, want[i].src_host) << "record " << i;
    EXPECT_EQ(got[i].src_address.value(), want[i].src_address.value())
        << "record " << i;
    EXPECT_EQ(got[i].dst.value(), want[i].dst.value()) << "record " << i;
    EXPECT_EQ(got[i].delivery, want[i].delivery) << "record " << i;
  }
}

class StreamDecoderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = FixturePath("stream_decoder");
    bytes_ = WriteFixture(path_);
    reference_ = ReadOneShot(path_);
    ASSERT_EQ(reference_.size(), 40u);
    // The fixture must actually span several blocks or the seam sweep
    // proves nothing.
    ASSERT_GT(bytes_.size(),
              trace::kHeaderBytes + 3 * trace::kBlockFrameBytes);
  }

  std::string path_;
  std::vector<std::uint8_t> bytes_;
  std::vector<sim::ProbeEvent> reference_;
};

TEST_F(StreamDecoderTest, WholeFileInOneFeed) {
  trace::StreamDecoder decoder{"one-shot"};
  decoder.Feed(bytes_);
  std::vector<sim::ProbeEvent> got;
  DrainInto(decoder, got);
  ExpectSameEvents(got, reference_);
  EXPECT_TRUE(decoder.finished());
  EXPECT_EQ(decoder.records_read(), 40u);
  EXPECT_EQ(decoder.blocks_read(), 6u);  // ceil(40 / 7)
  EXPECT_EQ(decoder.header().seed, 99u);
  EXPECT_EQ(decoder.header().scenario_fingerprint, 0xFEEDFACEu);
  EXPECT_NO_THROW(decoder.FinishEof());
}

/// The headline pin: every two-chunk split of the file — which includes
/// every block seam and every offset within every frame, payload, and
/// varint — decodes to the identical record sequence.
TEST_F(StreamDecoderTest, EveryByteBoundarySplitMatchesOneShot) {
  const std::span<const std::uint8_t> all{bytes_};
  for (std::size_t split = 0; split <= bytes_.size(); ++split) {
    trace::StreamDecoder decoder{"split@" + std::to_string(split)};
    std::vector<sim::ProbeEvent> got;
    decoder.Feed(all.subspan(0, split));
    DrainInto(decoder, got);
    decoder.Feed(all.subspan(split));
    DrainInto(decoder, got);
    ASSERT_NO_FATAL_FAILURE(ExpectSameEvents(got, reference_))
        << "split at byte " << split;
    ASSERT_TRUE(decoder.finished()) << "split at byte " << split;
    ASSERT_NO_THROW(decoder.FinishEof()) << "split at byte " << split;
  }
}

TEST_F(StreamDecoderTest, OneByteAtATime) {
  trace::StreamDecoder decoder{"dribble"};
  std::vector<sim::ProbeEvent> got;
  for (const std::uint8_t byte : bytes_) {
    decoder.Feed({&byte, 1});
    DrainInto(decoder, got);
  }
  ExpectSameEvents(got, reference_);
  EXPECT_TRUE(decoder.finished());
  EXPECT_EQ(decoder.bytes_consumed(), bytes_.size());
}

/// EOF anywhere before the verified trailer is an error — a peer that
/// hangs up mid-stream must not look like a clean finish.
TEST_F(StreamDecoderTest, FinishEofMidStreamThrowsEverywhere) {
  const std::span<const std::uint8_t> all{bytes_};
  for (std::size_t cut = 0; cut < bytes_.size(); ++cut) {
    trace::StreamDecoder decoder{"cut@" + std::to_string(cut)};
    decoder.Feed(all.subspan(0, cut));
    std::vector<sim::ProbeEvent> got;
    DrainInto(decoder, got);
    ASSERT_FALSE(decoder.finished()) << "cut at byte " << cut;
    ASSERT_THROW(decoder.FinishEof(), trace::TraceError)
        << "cut at byte " << cut;
  }
}

TEST_F(StreamDecoderTest, BytesAfterTrailerThrow) {
  trace::StreamDecoder decoder{"overlong"};
  decoder.Feed(bytes_);
  std::vector<sim::ProbeEvent> got;
  DrainInto(decoder, got);
  ASSERT_TRUE(decoder.finished());
  const std::uint8_t extra = 0x42;
  EXPECT_THROW(decoder.Feed({&extra, 1}), trace::TraceError);
}

TEST_F(StreamDecoderTest, CorruptBlockPayloadThrows) {
  // Flip one byte inside the first block's payload; the CRC check must
  // refuse the block, and the diagnostic must name block and offset.
  std::vector<std::uint8_t> damaged = bytes_;
  const std::size_t at = trace::kHeaderBytes + trace::kBlockFrameBytes + 2;
  damaged[at] ^= 0xFF;
  trace::StreamDecoder decoder{"crc"};
  decoder.Feed(damaged);
  try {
    while (!decoder.NextBatch().empty()) {
    }
    FAIL() << "corrupt block decoded";
  } catch (const trace::TraceError& error) {
    const std::string what = error.what();
    // Diagnostic names the stream, the byte offset, and the block index,
    // e.g. "trace: crc @48: block 0 CRC mismatch (...)".
    EXPECT_NE(what.find("block 0"), std::string::npos) << what;
    EXPECT_NE(what.find("@48"), std::string::npos) << what;
  }
}

TEST_F(StreamDecoderTest, BadMagicThrows) {
  std::vector<std::uint8_t> damaged = bytes_;
  damaged[0] ^= 0xFF;
  trace::StreamDecoder decoder{"magic"};
  decoder.Feed(damaged);
  EXPECT_THROW((void)decoder.NextBatch(), trace::TraceError);
}

}  // namespace
}  // namespace hotspots
