// Pins the metrics sampler: lifecycle misuse throws, the series brackets
// the run (sample 0 at Start, final sample at Stop), counter deltas
// reconstruct the writers' totals exactly even while writers are mid-flight
// (the tsan target), and the hotspots.timeseries.v1 document shape.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/sampler.h"

namespace hotspots::obs {
namespace {

std::uint64_t SumCounterSeries(const MetricsSampler& sampler,
                               const char* name) {
  const CounterSample* last =
      sampler.snapshots().back().FindCounter(name);
  return last != nullptr ? last->value : 0;
}

TEST(ObsSamplerTest, RejectsNonPositiveInterval) {
  Registry registry;
  EXPECT_THROW(MetricsSampler(registry, SamplerOptions{0}),
               std::invalid_argument);
  EXPECT_THROW(MetricsSampler(registry, SamplerOptions{-5}),
               std::invalid_argument);
}

TEST(ObsSamplerTest, SeriesIsReadableOnlyAfterStop) {
  Registry registry;
  MetricsSampler sampler{registry, SamplerOptions{1000}};
  EXPECT_THROW((void)sampler.sample_count(), std::logic_error);
  sampler.Start();
  EXPECT_THROW(sampler.Start(), std::logic_error);
  EXPECT_THROW((void)sampler.snapshots(), std::logic_error);
  EXPECT_THROW((void)sampler.ToJson(), std::logic_error);
  sampler.Stop();
  sampler.Stop();  // Idempotent.
  // Sample 0 at Start plus the final sample at Stop, regardless of whether
  // any interval elapsed.
  EXPECT_GE(sampler.sample_count(), 2u);
  EXPECT_EQ(sampler.times_ns().size(), sampler.sample_count());
  EXPECT_EQ(sampler.snapshots().size(), sampler.sample_count());
}

TEST(ObsSamplerTest, SamplesBracketTheRunWithMonotoneTimes) {
  Registry registry;
  Counter& counter = registry.GetCounter("work.items");
  MetricsSampler sampler{registry, SamplerOptions{1}};
  sampler.Start();
  for (int i = 0; i < 20; ++i) {
    counter.Add(5);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sampler.Stop();
  EXPECT_GE(sampler.sample_count(), 2u);
  const std::vector<std::uint64_t>& times = sampler.times_ns();
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_GE(times[i], times[i - 1]);
  }
  // The first sample predates all writes; the last sees the full total.
  const CounterSample* first =
      sampler.snapshots().front().FindCounter("work.items");
  ASSERT_NE(first, nullptr);  // Registered (at zero) before Start().
  EXPECT_EQ(first->value, 0u);
  EXPECT_EQ(SumCounterSeries(sampler, "work.items"), 100u);
}

TEST(ObsSamplerTest, ConcurrentWritersNeverRegressTheSeries) {
  Registry registry;
  Counter& counter = registry.GetCounter("contended.total");
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 200'000;
  MetricsSampler sampler{registry, SamplerOptions{1}};
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {}
      for (std::uint64_t i = 0; i < kPerWriter; ++i) counter.Increment();
    });
  }
  sampler.Start();
  go.store(true, std::memory_order_release);
  for (auto& writer : writers) writer.join();
  sampler.Stop();

  // Every mid-flight snapshot is a valid lower bound and the series is
  // monotone; the final sample is exact.
  std::uint64_t previous = 0;
  for (const Snapshot& snapshot : sampler.snapshots()) {
    const CounterSample* sample = snapshot.FindCounter("contended.total");
    const std::uint64_t value = sample != nullptr ? sample->value : 0;
    EXPECT_GE(value, previous);
    EXPECT_LE(value, kWriters * kPerWriter);
    previous = value;
  }
  EXPECT_EQ(previous, kWriters * kPerWriter);
}

TEST(ObsSamplerTest, JsonDocumentCarriesSchemaDeltasAndGaugeNulls) {
  Registry registry;
  registry.GetCounter("series.count").Add(7);
  MetricsSampler sampler{registry, SamplerOptions{500}};
  sampler.Start();
  registry.GetCounter("series.count").Add(3);
  registry.GetGauge("late.gauge").Set(1.5);  // Registers mid-run.
  sampler.Stop();

  const std::string json = sampler.ToJson();
  EXPECT_NE(json.find("\"schema\":\"hotspots.timeseries.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"interval_ms\":500"), std::string::npos);
  // Counter: base holds the pre-Start value; deltas cover Start→Stop.
  EXPECT_NE(json.find("\"series.count\":{\"base\":7,\"deltas\":["),
            std::string::npos);
  // The gauge did not exist at sample 0, so its series starts with null.
  EXPECT_NE(json.find("\"late.gauge\":[null"), std::string::npos);
  EXPECT_NE(json.find("1.5]"), std::string::npos);

  // Delta reconstruction: base + sum(deltas) == final counter value.
  const std::size_t base_pos = json.find("\"base\":7,\"deltas\":[");
  ASSERT_NE(base_pos, std::string::npos);
  const std::size_t open = json.find('[', base_pos);
  const std::size_t close = json.find(']', open);
  ASSERT_NE(close, std::string::npos);
  std::uint64_t total = 7;
  std::size_t pos = open + 1;
  while (pos < close) {
    std::size_t consumed = 0;
    total += std::stoull(json.substr(pos, close - pos), &consumed, 10);
    pos += consumed + 1;  // Skip the separating comma.
  }
  EXPECT_EQ(total, 10u);
}

}  // namespace
}  // namespace hotspots::obs
