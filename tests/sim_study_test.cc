// Monte-Carlo study runner: deterministic seed derivation, thread-count
// invariance of results, telemetry sanity and the aggregation helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <set>
#include <stdexcept>

#include "sim/engine.h"
#include "sim/study.h"
#include "worms/hitlist.h"

namespace hotspots::sim {
namespace {

using net::Ipv4;
using net::Prefix;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(TrialSeedsTest, DeterministicDistinctAndMasterDependent) {
  const auto seeds = TrialSeeds(42, 64);
  ASSERT_EQ(seeds.size(), 64u);
  EXPECT_EQ(seeds, TrialSeeds(42, 64));
  // A longer study's seed sequence extends a shorter one: trial i's seed
  // depends only on (master, i).
  const auto longer = TrialSeeds(42, 128);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(longer[i], seeds[i]);
  }
  EXPECT_EQ(std::set<std::uint64_t>(seeds.begin(), seeds.end()).size(), 64u);
  EXPECT_NE(TrialSeeds(43, 64), seeds);
  EXPECT_THROW(TrialSeeds(1, -1), std::invalid_argument);
}

TEST(ResolveStudyThreadsTest, ExplicitRequestWinsOverEnvironment) {
  ::setenv("HOTSPOTS_THREADS", "3", 1);
  EXPECT_EQ(ResolveStudyThreads(7), 7);
  EXPECT_EQ(ResolveStudyThreads(0), 3);
  ::setenv("HOTSPOTS_THREADS", "not-a-number", 1);
  EXPECT_GE(ResolveStudyThreads(0), 1);  // Falls back to hardware.
  ::unsetenv("HOTSPOTS_THREADS");
  EXPECT_GE(ResolveStudyThreads(0), 1);
}

/// An engine study identical at every thread count: trial i's result depends
/// only on (i, seeds[i]), never on scheduling.
StudyResults<RunResult> RunEpidemicStudy(int threads, int trials) {
  Population base;
  for (int i = 0; i < 400; ++i) {
    base.AddHost(Ipv4{60, 7, static_cast<std::uint8_t>(i / 200),
                      static_cast<std::uint8_t>(1 + i % 200)});
  }
  base.Build(nullptr);
  const worms::HitListWorm worm{{Prefix{Ipv4{60, 7, 0, 0}, 16}}};
  const topology::Reachability reachability{nullptr, nullptr, nullptr, 0.0};

  StudyOptions options;
  options.threads = threads;
  options.master_seed = 0xD15EA5E;
  return RunStudy(options, trials, [&](int /*trial*/, std::uint64_t seed) {
    Population population = base;
    EngineConfig config;
    config.scan_rate = 10.0;
    config.end_time = 300.0;
    config.stop_at_infected_fraction = 0.9;
    config.seed = seed;
    Engine engine{population, worm, reachability, nullptr, config};
    engine.SeedRandomInfections(2);
    return engine.Run();
  });
}

TEST(RunStudyTest, ResultsAreBitIdenticalAcrossThreadCounts) {
  constexpr int kTrials = 6;
  const auto serial = RunEpidemicStudy(1, kTrials);
  const auto parallel = RunEpidemicStudy(4, kTrials);
  ASSERT_EQ(serial.trials.size(), static_cast<std::size_t>(kTrials));
  ASSERT_EQ(parallel.trials.size(), static_cast<std::size_t>(kTrials));
  for (int i = 0; i < kTrials; ++i) {
    const RunResult& a = serial.trials[static_cast<std::size_t>(i)];
    const RunResult& b = parallel.trials[static_cast<std::size_t>(i)];
    EXPECT_EQ(a.total_probes, b.total_probes) << "trial " << i;
    EXPECT_EQ(a.final_infected, b.final_infected) << "trial " << i;
    EXPECT_EQ(a.final_immune, b.final_immune) << "trial " << i;
    EXPECT_EQ(a.end_time, b.end_time) << "trial " << i;
    ASSERT_EQ(a.series.size(), b.series.size()) << "trial " << i;
    for (std::size_t k = 0; k < a.series.size(); ++k) {
      EXPECT_EQ(a.series[k].time, b.series[k].time);
      EXPECT_EQ(a.series[k].infected, b.series[k].infected);
      EXPECT_EQ(a.series[k].probes, b.series[k].probes);
    }
  }
  // Different seeds actually produce different outbreaks (the invariance
  // above is not vacuous).
  bool any_difference = false;
  for (int i = 1; i < kTrials; ++i) {
    any_difference |= serial.trials[static_cast<std::size_t>(i)].total_probes !=
                      serial.trials[0].total_probes;
  }
  EXPECT_TRUE(any_difference);
}

TEST(RunStudyTest, TelemetryIsSane) {
  const auto study = RunEpidemicStudy(4, 6);
  const StudyTelemetry& telemetry = study.telemetry;
  EXPECT_EQ(telemetry.trials, 6);
  EXPECT_GE(telemetry.threads_used, 1);
  EXPECT_LE(telemetry.threads_used, 4);
  EXPECT_GE(telemetry.peak_concurrent_trials, 1);
  EXPECT_LE(telemetry.peak_concurrent_trials, telemetry.threads_used);
  EXPECT_EQ(telemetry.trial_wall_seconds.size(), 6u);
  EXPECT_GE(telemetry.wall_seconds, 0.0);
  EXPECT_GE(telemetry.MeanTrialSeconds(), 0.0);
  EXPECT_NEAR(telemetry.TotalTrialSeconds(),
              telemetry.MeanTrialSeconds() * 6.0, 1e-9);
}

TEST(RunStudyTest, NeverStartsMoreThreadsThanTrials) {
  StudyOptions options;
  options.threads = 16;
  const auto study =
      RunStudy(options, 2, [](int trial, std::uint64_t) { return trial; });
  EXPECT_EQ(study.telemetry.threads_used, 2);
  EXPECT_EQ(study.trials, (std::vector<int>{0, 1}));
}

TEST(RunTrialsTest, TrialExceptionsReachTheCaller) {
  StudyOptions options;
  options.threads = 3;
  EXPECT_THROW(RunTrials(options, 8,
                         [](int trial, std::uint64_t) {
                           if (trial == 5) {
                             throw std::runtime_error("trial 5 failed");
                           }
                         }),
               std::runtime_error);
}

TEST(RunTrialsTest, ZeroTrialsIsANoOp) {
  const StudyOptions options;
  const StudyTelemetry telemetry =
      RunTrials(options, 0, [](int, std::uint64_t) { FAIL(); });
  EXPECT_EQ(telemetry.trials, 0);
  EXPECT_EQ(telemetry.threads_used, 0);
  EXPECT_TRUE(telemetry.trial_wall_seconds.empty());
}

TEST(StudyTelemetryTest, MergeAddsTrialsAndTakesPeakMax) {
  StudyTelemetry a;
  a.trials = 4;
  a.threads_used = 2;
  a.peak_concurrent_trials = 2;
  a.wall_seconds = 1.0;
  a.trial_wall_seconds = {0.5, 0.5, 0.5, 0.5};
  StudyTelemetry b;
  b.trials = 2;
  b.threads_used = 4;
  b.peak_concurrent_trials = 3;
  b.wall_seconds = 0.5;
  b.trial_wall_seconds = {0.25, 0.25};
  a.Merge(b);
  EXPECT_EQ(a.trials, 6);
  EXPECT_EQ(a.threads_used, 4);
  EXPECT_EQ(a.peak_concurrent_trials, 3);
  EXPECT_DOUBLE_EQ(a.wall_seconds, 1.5);
  EXPECT_EQ(a.trial_wall_seconds.size(), 6u);
  EXPECT_DOUBLE_EQ(a.TotalTrialSeconds(), 2.5);
}

TEST(SummarizeTest, BasicMoments) {
  const SummaryStats stats =
      Summarize({1.0, 2.0, 3.0, 4.0}, {0.0, 0.5, 1.0});
  EXPECT_EQ(stats.count, 4);
  EXPECT_DOUBLE_EQ(stats.mean, 2.5);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 4.0);
  EXPECT_NEAR(stats.stddev, std::sqrt(5.0 / 3.0), 1e-12);
  ASSERT_EQ(stats.quantiles.size(), 3u);
  EXPECT_DOUBLE_EQ(stats.quantiles[0].second, 1.0);
  EXPECT_DOUBLE_EQ(stats.quantiles[1].second, 2.5);
  EXPECT_DOUBLE_EQ(stats.quantiles[2].second, 4.0);
}

TEST(SummarizeTest, NanMeansTrialNeverReachedTheMilestone) {
  const SummaryStats stats = Summarize({1.0, kNaN, 3.0, kNaN});
  EXPECT_EQ(stats.count, 2);
  EXPECT_DOUBLE_EQ(stats.mean, 2.0);
  const SummaryStats empty = Summarize({kNaN, kNaN}, {0.5});
  EXPECT_EQ(empty.count, 0);
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
  ASSERT_EQ(empty.quantiles.size(), 1u);
}

RunResult SyntheticRun() {
  RunResult run;
  run.eligible_population = 100;
  run.series = {SamplePoint{0.0, 0, 0}, SamplePoint{10.0, 20, 100},
                SamplePoint{20.0, 50, 250}, SamplePoint{30.0, 80, 400}};
  return run;
}

TEST(TimeToInfectedFractionTest, FirstSampleAtOrAboveTarget) {
  const RunResult run = SyntheticRun();
  EXPECT_DOUBLE_EQ(TimeToInfectedFraction(run, 0.2), 10.0);
  EXPECT_DOUBLE_EQ(TimeToInfectedFraction(run, 0.21), 20.0);
  EXPECT_DOUBLE_EQ(TimeToInfectedFraction(run, 0.8), 30.0);
  EXPECT_TRUE(std::isnan(TimeToInfectedFraction(run, 0.81)));
}

TEST(InfectedAtTest, StaircaseInterpolation) {
  const RunResult run = SyntheticRun();
  EXPECT_DOUBLE_EQ(InfectedAt(run, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(InfectedAt(run, 9.9), 0.0);
  EXPECT_DOUBLE_EQ(InfectedAt(run, 10.0), 20.0);
  EXPECT_DOUBLE_EQ(InfectedAt(run, 25.0), 50.0);
  EXPECT_DOUBLE_EQ(InfectedAt(run, 1000.0), 80.0);
}

TEST(MeanInfectedAtTimesTest, AveragesAcrossRuns) {
  RunResult flat;
  flat.eligible_population = 100;
  flat.series = {SamplePoint{0.0, 10, 0}, SamplePoint{30.0, 10, 10}};
  const auto means = MeanInfectedAtTimes({SyntheticRun(), flat},
                                         {0.0, 10.0, 30.0});
  ASSERT_EQ(means.size(), 3u);
  EXPECT_DOUBLE_EQ(means[0], 5.0);
  EXPECT_DOUBLE_EQ(means[1], 15.0);
  EXPECT_DOUBLE_EQ(means[2], 45.0);
}

}  // namespace
}  // namespace hotspots::sim
