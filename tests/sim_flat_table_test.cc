#include "sim/flat_table.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "prng/xoshiro.h"

namespace hotspots::sim {
namespace {

TEST(FlatTableTest, EmptyFindsNothing) {
  FlatTable table;
  EXPECT_EQ(table.Find(42, 0xFFFFFFFFu), 0xFFFFFFFFu);
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlatTableTest, InsertAndFind) {
  FlatTable table;
  EXPECT_TRUE(table.Insert(1, 100));
  EXPECT_TRUE(table.Insert(2, 200));
  EXPECT_EQ(table.Find(1, 0), 100u);
  EXPECT_EQ(table.Find(2, 0), 200u);
  EXPECT_EQ(table.Find(3, 7), 7u);
  EXPECT_EQ(table.size(), 2u);
}

TEST(FlatTableTest, DuplicateInsertRejectedAndValueKept) {
  FlatTable table;
  EXPECT_TRUE(table.Insert(5, 50));
  EXPECT_FALSE(table.Insert(5, 51));
  EXPECT_EQ(table.Find(5, 0), 50u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlatTableTest, KeyZeroRejected) {
  FlatTable table;
  EXPECT_THROW(table.Insert(0, 1), std::invalid_argument);
}

TEST(FlatTableTest, GrowsAndKeepsEverything) {
  FlatTable table;
  constexpr std::uint64_t kEntries = 50'000;
  for (std::uint64_t k = 1; k <= kEntries; ++k) {
    ASSERT_TRUE(table.Insert(k, static_cast<std::uint32_t>(k * 3)));
  }
  EXPECT_EQ(table.size(), kEntries);
  for (std::uint64_t k = 1; k <= kEntries; ++k) {
    ASSERT_EQ(table.Find(k, 0), static_cast<std::uint32_t>(k * 3));
  }
  EXPECT_EQ(table.Find(kEntries + 1, 9), 9u);
}

TEST(FlatTableTest, ReserveThenInsertWithoutGrowth) {
  FlatTable table;
  table.Reserve(1000);
  for (std::uint64_t k = 1; k <= 1000; ++k) {
    ASSERT_TRUE(table.Insert(k << 32 | k, static_cast<std::uint32_t>(k)));
  }
  EXPECT_EQ(table.size(), 1000u);
  EXPECT_EQ(table.Find((500ull << 32) | 500, 0), 500u);
}

TEST(FlatTableTest, AgreesWithUnorderedMapUnderRandomWorkload) {
  FlatTable table;
  std::unordered_map<std::uint64_t, std::uint32_t> reference;
  prng::Xoshiro256 rng{77};
  for (int i = 0; i < 20'000; ++i) {
    // Small key space forces collisions/duplicates.
    const std::uint64_t key = 1 + rng.Next() % 8192;
    const auto value = static_cast<std::uint32_t>(rng.Next());
    const bool inserted_reference = reference.emplace(key, value).second;
    EXPECT_EQ(table.Insert(key, value), inserted_reference);
  }
  for (const auto& [key, value] : reference) {
    EXPECT_EQ(table.Find(key, ~0u), value);
  }
  EXPECT_EQ(table.size(), reference.size());
}

}  // namespace
}  // namespace hotspots::sim
