// Tests for the extension worms: CodeRed v1 (static-seed bug) and Witty
// (structured two-state target construction).
#include <gtest/gtest.h>

#include <unordered_set>

#include "net/special_ranges.h"
#include "prng/lcg.h"
#include "worms/codered1.h"
#include "worms/witty.h"

namespace hotspots::worms {
namespace {

using net::Ipv4;

sim::Host MakeHost(Ipv4 address) {
  sim::Host host;
  host.address = address;
  return host;
}

TEST(CodeRed1Test, StaticSeedMakesEveryInstanceIdentical) {
  const CodeRed1Worm worm{/*static_seed_bug=*/true};
  auto a = worm.MakeScanner(MakeHost(Ipv4{1, 2, 3, 4}), 111);
  auto b = worm.MakeScanner(MakeHost(Ipv4{9, 8, 7, 6}), 999);
  prng::Xoshiro256 rng{1};
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_EQ(a->NextTarget(rng), b->NextTarget(rng))
        << "instances diverged at probe " << i;
  }
}

TEST(CodeRed1Test, ReseededVariantDiverges) {
  const CodeRed1Worm worm{/*static_seed_bug=*/false};
  auto a = worm.MakeScanner(MakeHost(Ipv4{1, 2, 3, 4}), 111);
  auto b = worm.MakeScanner(MakeHost(Ipv4{9, 8, 7, 6}), 999);
  prng::Xoshiro256 rng{1};
  int identical = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a->NextTarget(rng) == b->NextTarget(rng)) ++identical;
  }
  EXPECT_LT(identical, 5);
}

TEST(CodeRed1Test, StaticSeedCoversOnlyTheSharedSequence) {
  // The hotspot property: N instances × K probes touch at most K distinct
  // addresses (vs ≈ N·K for the re-seeded variant).
  const CodeRed1Worm buggy{true};
  const CodeRed1Worm fixed{false};
  prng::Xoshiro256 rng{1};
  constexpr int kInstances = 20;
  constexpr int kProbes = 500;
  std::unordered_set<std::uint32_t> buggy_targets;
  std::unordered_set<std::uint32_t> fixed_targets;
  for (int h = 0; h < kInstances; ++h) {
    auto a = buggy.MakeScanner(MakeHost(Ipv4{1, 1, 1, 1}),
                               static_cast<std::uint64_t>(h));
    auto b = fixed.MakeScanner(MakeHost(Ipv4{1, 1, 1, 1}),
                               static_cast<std::uint64_t>(h) + 12345);
    for (int i = 0; i < kProbes; ++i) {
      buggy_targets.insert(a->NextTarget(rng).value());
      fixed_targets.insert(b->NextTarget(rng).value());
    }
  }
  EXPECT_LE(buggy_targets.size(), static_cast<std::size_t>(kProbes));
  EXPECT_GT(fixed_targets.size(),
            static_cast<std::size_t>(kInstances * kProbes) * 9 / 10);
}

TEST(CodeRed1Test, NeverTargetsNonTargetableSpace) {
  const CodeRed1Worm worm{true};
  auto scanner = worm.MakeScanner(MakeHost(Ipv4{1, 2, 3, 4}), 0);
  prng::Xoshiro256 rng{1};
  for (int i = 0; i < 50'000; ++i) {
    EXPECT_FALSE(net::IsNonTargetable(scanner->NextTarget(rng)));
  }
}

TEST(CodeRed1Test, TransportIsTcp) {
  EXPECT_TRUE(CodeRed1Worm{}.requires_handshake());
}

TEST(WittyTest, ScannerMatchesTwoStateConstruction) {
  const WittyWorm worm;
  auto scanner = worm.MakeScanner(MakeHost(Ipv4{1, 2, 3, 4}), 0xABCD);
  prng::Xoshiro256 rng{1};
  prng::Lcg reference{
      prng::LcgParams{prng::kMsvcMultiplier, prng::kMsvcIncrement, 32},
      0xABCD};
  for (int i = 0; i < 1000; ++i) {
    const std::uint32_t hi = reference.Next() >> 16;
    const std::uint32_t lo = reference.Next() >> 16;
    EXPECT_EQ(scanner->NextTarget(rng).value(), (hi << 16) | lo);
  }
}

TEST(WittyTest, GeneratedTargetsAlwaysHavePreimages) {
  const WittyWorm worm;
  auto scanner = worm.MakeScanner(MakeHost(Ipv4{1, 2, 3, 4}), 42);
  prng::Xoshiro256 rng{1};
  for (int i = 0; i < 20; ++i) {
    const Ipv4 target = scanner->NextTarget(rng);
    EXPECT_GE(WittyPreimageCount(target), 1) << target.ToString();
  }
}

TEST(WittyTest, SomeAddressesAreUnreachable) {
  // The structural hotspot: the two-state construction is not surjective.
  // (The LCG's lattice structure spreads successors more evenly than a
  // random map, so the unreachable share is smaller than the Poisson 1/e
  // — but it is solidly nonzero, which is what Kumar et al. exploited.)
  const double fraction = WittyUnreachableFraction(400, 7);
  EXPECT_GT(fraction, 0.02);
  EXPECT_LT(fraction, 0.35);
}

TEST(WittyTest, AveragePreimageCountIsAboutOne) {
  prng::Xoshiro256 rng{3};
  double total = 0;
  constexpr int kSamples = 400;
  for (int i = 0; i < kSamples; ++i) {
    total += WittyPreimageCount(Ipv4{rng.NextU32()});
  }
  EXPECT_NEAR(total / kSamples, 1.0, 0.25);
}

TEST(WittyTest, TransportIsUdp) {
  EXPECT_FALSE(WittyWorm{}.requires_handshake());
}

}  // namespace
}  // namespace hotspots::worms
