#include <gtest/gtest.h>

#include "topology/filtering.h"
#include "topology/nat.h"
#include "topology/org.h"
#include "topology/reachability.h"

namespace hotspots::topology {
namespace {

using net::Ipv4;
using net::Prefix;

TEST(AllocationRegistryTest, LookupFindsOwner) {
  AllocationRegistry registry;
  const OrgId enterprise = registry.AddOrg(
      "MegaCorp", OrgKind::kEnterprise, {Prefix{Ipv4{20, 0, 0, 0}, 8}}, true);
  const OrgId isp = registry.AddOrg(
      "CableCo", OrgKind::kBroadbandIsp,
      {Prefix{Ipv4{24, 0, 0, 0}, 8}, Prefix{Ipv4{65, 96, 0, 0}, 12}}, false);
  registry.Build();

  EXPECT_EQ(registry.OrgOf(Ipv4(20, 1, 2, 3)), enterprise);
  EXPECT_EQ(registry.OrgOf(Ipv4(24, 200, 0, 9)), isp);
  EXPECT_EQ(registry.OrgOf(Ipv4(65, 100, 0, 1)), isp);
  EXPECT_EQ(registry.OrgOf(Ipv4(8, 8, 8, 8)), kInvalidOrg);
  EXPECT_EQ(registry.Get(enterprise).name, "MegaCorp");
  EXPECT_EQ(registry.Get(isp).TotalAddresses(), (1u << 24) + (1u << 20));
}

TEST(AllocationRegistryTest, OverlappingHoldingsRejected) {
  AllocationRegistry registry;
  registry.AddOrg("A", OrgKind::kOther, {Prefix{Ipv4{20, 0, 0, 0}, 8}}, false);
  registry.AddOrg("B", OrgKind::kOther, {Prefix{Ipv4{20, 5, 0, 0}, 16}}, false);
  EXPECT_THROW(registry.Build(), std::invalid_argument);
}

TEST(AllocationRegistryTest, LookupBeforeBuildThrows) {
  AllocationRegistry registry;
  EXPECT_THROW((void)registry.OrgOf(Ipv4{1}), std::logic_error);
}

TEST(AllocationRegistryTest, GetValidatesId) {
  AllocationRegistry registry;
  registry.Build();
  EXPECT_THROW((void)registry.Get(0), std::out_of_range);
  EXPECT_THROW((void)registry.Get(kInvalidOrg), std::out_of_range);
}

TEST(NatDirectoryTest, SitePrefixMustBePrivate) {
  NatDirectory nats;
  EXPECT_THROW(nats.AddSite(Prefix{Ipv4{8, 0, 0, 0}, 16}),
               std::invalid_argument);
  EXPECT_NO_THROW(nats.AddSite(net::kPrivate192));
  EXPECT_NO_THROW(nats.AddSite(Prefix{Ipv4{10, 1, 0, 0}, 16}));
  EXPECT_NO_THROW(nats.AddSite(Prefix{Ipv4{172, 20, 0, 0}, 16}));
}

TEST(NatDirectoryTest, RoutingRules) {
  NatDirectory nats;
  const SiteId site = nats.AddSite(net::kPrivate192, Ipv4{9, 9, 9, 9});

  // Public destinations route from anywhere.
  EXPECT_TRUE(nats.Routable(kPublicSite, Ipv4(8, 8, 8, 8)));
  EXPECT_TRUE(nats.Routable(site, Ipv4(8, 8, 8, 8)));
  // Private destinations route only from inside a covering site.
  EXPECT_TRUE(nats.Routable(site, Ipv4(192, 168, 1, 1)));
  EXPECT_FALSE(nats.Routable(kPublicSite, Ipv4(192, 168, 1, 1)));
  EXPECT_FALSE(nats.Routable(site, Ipv4(10, 0, 0, 1)));
  EXPECT_EQ(nats.Get(site).public_address, Ipv4(9, 9, 9, 9));
}

TEST(NatDirectoryTest, GetValidatesId) {
  NatDirectory nats;
  EXPECT_THROW((void)nats.Get(0), std::out_of_range);
  EXPECT_THROW((void)nats.Get(kPublicSite), std::out_of_range);
}

TEST(FilteringTest, PerimeterRules) {
  AllocationRegistry registry;
  const OrgId filtered = registry.AddOrg(
      "Fort", OrgKind::kEnterprise, {Prefix{Ipv4{20, 0, 0, 0}, 8}}, true);
  const OrgId open = registry.AddOrg(
      "ISP", OrgKind::kBroadbandIsp, {Prefix{Ipv4{24, 0, 0, 0}, 8}}, false);
  registry.Build();

  // Intra-org traffic never filtered — the paper's point that internal
  // infections keep spreading behind the firewall.
  EXPECT_FALSE(PerimeterBlocks(registry, filtered, filtered));
  // Egress from a filtered org is blocked.
  EXPECT_TRUE(PerimeterBlocks(registry, filtered, open));
  EXPECT_TRUE(PerimeterBlocks(registry, filtered, kInvalidOrg));
  // Ingress into a filtered org is blocked.
  EXPECT_TRUE(PerimeterBlocks(registry, open, filtered));
  EXPECT_TRUE(PerimeterBlocks(registry, kInvalidOrg, filtered));
  // Open ↔ open and unallocated ↔ open pass.
  EXPECT_FALSE(PerimeterBlocks(registry, open, kInvalidOrg));
  EXPECT_FALSE(PerimeterBlocks(registry, kInvalidOrg, open));
  EXPECT_FALSE(PerimeterBlocks(registry, kInvalidOrg, kInvalidOrg));
}

TEST(IngressAclTest, BlocksCoveredDestinations) {
  IngressAclSet acls;
  EXPECT_FALSE(acls.Blocks(Ipv4(1, 2, 3, 4)));  // Empty set never blocks.
  acls.Block(Prefix{Ipv4{192, 88, 16, 0}, 22});
  acls.Build();
  EXPECT_TRUE(acls.Blocks(Ipv4(192, 88, 17, 200)));
  EXPECT_FALSE(acls.Blocks(Ipv4(192, 88, 20, 0)));
}

TEST(IngressAclTest, QueriesWithoutBuildThrow) {
  IngressAclSet acls;
  acls.Block(Prefix{Ipv4{10, 0, 0, 0}, 8});
  EXPECT_THROW((void)acls.Blocks(Ipv4(10, 0, 0, 1)), std::logic_error);
}

class ReachabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    enterprise_ = registry_.AddOrg("Fort", OrgKind::kEnterprise,
                                   {Prefix{Ipv4{20, 0, 0, 0}, 8}}, true);
    isp_ = registry_.AddOrg("ISP", OrgKind::kBroadbandIsp,
                            {Prefix{Ipv4{24, 0, 0, 0}, 8}}, false);
    registry_.Build();
    site_ = nats_.AddSite(net::kPrivate192, Ipv4{24, 1, 1, 1});
    acls_.Block(Prefix{Ipv4{192, 88, 16, 0}, 22});
    acls_.Build();
  }

  AllocationRegistry registry_;
  NatDirectory nats_;
  IngressAclSet acls_;
  OrgId enterprise_ = kInvalidOrg;
  OrgId isp_ = kInvalidOrg;
  SiteId site_ = kPublicSite;
  prng::Xoshiro256 rng_{1};
};

TEST_F(ReachabilityTest, FullPipelineAttribution) {
  const Reachability reach{&registry_, &nats_, &acls_, 0.0};

  Probe probe;
  probe.src = Ipv4{24, 2, 2, 2};
  probe.src_org = isp_;

  probe.dst = Ipv4{127, 0, 0, 1};
  EXPECT_EQ(reach.Decide(probe, rng_), Delivery::kNonTargetable);

  probe.dst = Ipv4{192, 168, 0, 5};
  EXPECT_EQ(reach.Decide(probe, rng_), Delivery::kNatUnroutable);

  probe.src_site = site_;
  EXPECT_EQ(reach.Decide(probe, rng_), Delivery::kDelivered);
  probe.src_site = kPublicSite;

  probe.dst = Ipv4{192, 88, 17, 9};
  EXPECT_EQ(reach.Decide(probe, rng_), Delivery::kIngressFiltered);

  probe.dst = Ipv4{20, 3, 3, 3};
  EXPECT_EQ(reach.Decide(probe, rng_), Delivery::kPerimeterFiltered);

  probe.dst = Ipv4{8, 8, 8, 8};
  EXPECT_EQ(reach.Decide(probe, rng_), Delivery::kDelivered);
}

TEST_F(ReachabilityTest, EnterpriseEgressBlocked) {
  const Reachability reach{&registry_, nullptr, nullptr, 0.0};
  Probe probe;
  probe.src = Ipv4{20, 1, 1, 1};
  probe.src_org = enterprise_;
  probe.dst = Ipv4{8, 8, 8, 8};
  EXPECT_EQ(reach.Decide(probe, rng_), Delivery::kPerimeterFiltered);
  // But intra-enterprise probes pass.
  probe.dst = Ipv4{20, 9, 9, 9};
  EXPECT_EQ(reach.Decide(probe, rng_), Delivery::kDelivered);
}

TEST_F(ReachabilityTest, NullDependenciesDisableFactors) {
  const Reachability reach{nullptr, nullptr, nullptr, 0.0};
  Probe probe;
  probe.src = Ipv4{20, 1, 1, 1};
  probe.dst = Ipv4{192, 88, 17, 9};  // Would be ACL-blocked above.
  EXPECT_EQ(reach.Decide(probe, rng_), Delivery::kDelivered);
  probe.dst = Ipv4{192, 168, 0, 1};  // Private w/o NAT directory → unroutable.
  EXPECT_EQ(reach.Decide(probe, rng_), Delivery::kNatUnroutable);
}

TEST_F(ReachabilityTest, LossRateDropsApproximatelyThatFraction) {
  const Reachability reach{nullptr, nullptr, nullptr, 0.25};
  Probe probe;
  probe.src = Ipv4{1, 1, 1, 1};
  probe.dst = Ipv4{8, 8, 8, 8};
  int lost = 0;
  constexpr int kTrials = 40000;
  for (int i = 0; i < kTrials; ++i) {
    if (reach.Decide(probe, rng_) == Delivery::kNetworkLoss) ++lost;
  }
  EXPECT_NEAR(static_cast<double>(lost) / kTrials, 0.25, 0.02);
}

TEST_F(ReachabilityTest, RejectsBadLossRate) {
  EXPECT_THROW((Reachability{nullptr, nullptr, nullptr, -0.1}),
               std::invalid_argument);
  EXPECT_THROW((Reachability{nullptr, nullptr, nullptr, 1.0}),
               std::invalid_argument);
}

TEST(DeliveryTest, ToStringCoversAllOutcomes) {
  EXPECT_EQ(ToString(Delivery::kDelivered), "delivered");
  EXPECT_EQ(ToString(Delivery::kNonTargetable), "non-targetable");
  EXPECT_EQ(ToString(Delivery::kNatUnroutable), "nat-unroutable");
  EXPECT_EQ(ToString(Delivery::kIngressFiltered), "ingress-filtered");
  EXPECT_EQ(ToString(Delivery::kPerimeterFiltered), "perimeter-filtered");
  EXPECT_EQ(ToString(Delivery::kNetworkLoss), "network-loss");
}

}  // namespace
}  // namespace hotspots::topology
