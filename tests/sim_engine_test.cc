#include "sim/engine.h"

#include <gtest/gtest.h>

#include "sim/population.h"
#include "worms/uniform.h"
#include "worms/hitlist.h"

namespace hotspots::sim {
namespace {

using net::Ipv4;
using net::Prefix;

TEST(PopulationTest, AddAndFind) {
  Population population;
  const HostId a = population.AddHost(Ipv4{10, 0, 0, 1});
  const HostId b = population.AddHost(Ipv4{10, 0, 0, 2});
  population.Build(nullptr);
  EXPECT_EQ(population.size(), 2u);
  EXPECT_EQ(population.FindPublic(Ipv4(10, 0, 0, 1)), a);
  EXPECT_EQ(population.FindPublic(Ipv4(10, 0, 0, 2)), b);
  EXPECT_EQ(population.FindPublic(Ipv4(10, 0, 0, 3)), kInvalidHost);
}

TEST(PopulationTest, DuplicateAddressThrows) {
  Population population;
  population.AddHost(Ipv4{10, 0, 0, 1});
  EXPECT_THROW(population.AddHost(Ipv4{10, 0, 0, 1}), std::invalid_argument);
}

TEST(PopulationTest, SameAddressDifferentSitesAllowed) {
  Population population;
  topology::NatDirectory nats;
  const auto site1 = nats.AddSite();
  const auto site2 = nats.AddSite();
  const HostId a = population.AddHost(Ipv4{192, 168, 0, 2}, site1);
  const HostId b = population.AddHost(Ipv4{192, 168, 0, 2}, site2);
  population.Build(nullptr);
  EXPECT_EQ(population.FindInSite(site1, Ipv4(192, 168, 0, 2)), a);
  EXPECT_EQ(population.FindInSite(site2, Ipv4(192, 168, 0, 2)), b);
  EXPECT_EQ(population.FindPublic(Ipv4(192, 168, 0, 2)), kInvalidHost);
}

TEST(PopulationTest, ResetAllToVulnerable) {
  Population population;
  const HostId id = population.AddHost(Ipv4{10, 0, 0, 1});
  population.Build(nullptr);
  population.host(id).state = HostState::kInfected;
  population.ResetAllToVulnerable();
  EXPECT_EQ(population.host(id).state, HostState::kVulnerable);
  EXPECT_EQ(population.CountInState(HostState::kVulnerable), 1u);
}

class EngineTest : public ::testing::Test {
 protected:
  /// A dense population inside one /16 so a hit-list worm targeting that
  /// /16 infects everyone quickly and deterministically.
  void BuildDensePopulation(int hosts) {
    for (int i = 0; i < hosts; ++i) {
      population_.AddHost(Ipv4{60, 5, static_cast<std::uint8_t>(i / 250),
                               static_cast<std::uint8_t>(1 + i % 250)});
    }
    population_.Build(nullptr);
  }

  Population population_;
  topology::Reachability reachability_{nullptr, nullptr, nullptr, 0.0};
};

TEST_F(EngineTest, SeededHostsAreInfected) {
  BuildDensePopulation(10);
  worms::UniformWorm worm;
  Engine engine{population_, worm, reachability_, nullptr, EngineConfig{}};
  engine.SeedInfection(0);
  engine.SeedInfection(0);  // Idempotent.
  EXPECT_EQ(population_.CountInState(HostState::kInfected), 1u);
}

TEST_F(EngineTest, SeedRandomInfectionsCountsDistinct) {
  BuildDensePopulation(100);
  worms::UniformWorm worm;
  Engine engine{population_, worm, reachability_, nullptr, EngineConfig{}};
  engine.SeedRandomInfections(25);
  EXPECT_EQ(population_.CountInState(HostState::kInfected), 25u);
}

TEST_F(EngineTest, HitListWormSaturatesDensePopulation) {
  BuildDensePopulation(500);
  worms::HitListWorm worm{{Prefix{Ipv4{60, 5, 0, 0}, 16}}};
  EngineConfig config;
  config.scan_rate = 10.0;
  config.end_time = 3000.0;
  config.seed = 42;
  Engine engine{population_, worm, reachability_, nullptr, config};
  engine.SeedRandomInfections(5);
  const RunResult result = engine.Run();
  EXPECT_EQ(result.final_infected, 500u);
  EXPECT_EQ(result.eligible_population, 500u);
  EXPECT_DOUBLE_EQ(result.FinalInfectedFraction(), 1.0);
  // The run must stop as soon as everyone is infected, not at end_time.
  EXPECT_LT(result.end_time, 3000.0);
}

TEST_F(EngineTest, InfectionCurveIsMonotone) {
  BuildDensePopulation(300);
  worms::HitListWorm worm{{Prefix{Ipv4{60, 5, 0, 0}, 16}}};
  EngineConfig config;
  config.end_time = 2000.0;
  Engine engine{population_, worm, reachability_, nullptr, config};
  engine.SeedRandomInfections(3);
  const RunResult result = engine.Run();
  for (std::size_t i = 1; i < result.series.size(); ++i) {
    EXPECT_GE(result.series[i].infected, result.series[i - 1].infected);
    EXPECT_GE(result.series[i].probes, result.series[i - 1].probes);
  }
}

TEST_F(EngineTest, StopAtInfectedFractionHonored) {
  BuildDensePopulation(400);
  worms::HitListWorm worm{{Prefix{Ipv4{60, 5, 0, 0}, 16}}};
  EngineConfig config;
  config.end_time = 5000.0;
  config.stop_at_infected_fraction = 0.5;
  Engine engine{population_, worm, reachability_, nullptr, config};
  engine.SeedRandomInfections(4);
  const RunResult result = engine.Run();
  EXPECT_GE(result.final_infected, 200u);
  // Should not grossly overshoot: one step adds at most #infected probes.
  EXPECT_LT(result.final_infected, 400u);
}

TEST_F(EngineTest, MaxProbesActsAsGuard) {
  BuildDensePopulation(50);
  worms::UniformWorm worm;
  EngineConfig config;
  config.end_time = 1e9;
  config.max_probes = 1000;
  Engine engine{population_, worm, reachability_, nullptr, config};
  engine.SeedRandomInfections(10);
  const RunResult result = engine.Run();
  EXPECT_LE(result.total_probes, 1000u + 10u);  // One step of slack.
}

TEST_F(EngineTest, DeterministicGivenSeed) {
  BuildDensePopulation(200);
  worms::HitListWorm worm{{Prefix{Ipv4{60, 5, 0, 0}, 16}}};
  EngineConfig config;
  config.end_time = 500.0;
  config.seed = 77;

  Population copy = population_;
  Engine engine1{population_, worm, reachability_, nullptr, config};
  engine1.SeedRandomInfections(5);
  const RunResult r1 = engine1.Run();

  Engine engine2{copy, worm, reachability_, nullptr, config};
  engine2.SeedRandomInfections(5);
  const RunResult r2 = engine2.Run();

  EXPECT_EQ(r1.total_probes, r2.total_probes);
  EXPECT_EQ(r1.final_infected, r2.final_infected);
  ASSERT_EQ(r1.series.size(), r2.series.size());
  for (std::size_t i = 0; i < r1.series.size(); ++i) {
    EXPECT_EQ(r1.series[i].infected, r2.series[i].infected);
  }
}

TEST_F(EngineTest, NoInfectedMeansNothingHappens) {
  BuildDensePopulation(10);
  worms::UniformWorm worm;
  Engine engine{population_, worm, reachability_, nullptr, EngineConfig{}};
  const RunResult result = engine.Run();
  EXPECT_EQ(result.total_probes, 0u);
  EXPECT_EQ(result.final_infected, 0u);
}

TEST_F(EngineTest, RejectsBadConfig) {
  BuildDensePopulation(1);
  worms::UniformWorm worm;
  EngineConfig bad;
  bad.scan_rate = 0.0;
  EXPECT_THROW((Engine{population_, worm, reachability_, nullptr, bad}),
               std::invalid_argument);
  bad = EngineConfig{};
  bad.sample_interval = 0.0;
  EXPECT_THROW((Engine{population_, worm, reachability_, nullptr, bad}),
               std::invalid_argument);
}

TEST_F(EngineTest, DeliveryCountsAttributeDrops) {
  // A NATed-only destination space: uniform worm probes mostly die as
  // non-targetable/unroutable but counters must account for all probes.
  BuildDensePopulation(20);
  worms::UniformWorm worm;
  EngineConfig config;
  config.end_time = 10.0;
  Engine engine{population_, worm, reachability_, nullptr, config};
  engine.SeedRandomInfections(5);
  const RunResult result = engine.Run();
  std::uint64_t accounted = 0;
  for (const std::uint64_t count : result.delivery_counts) accounted += count;
  EXPECT_EQ(accounted, result.total_probes);
}

}  // namespace
}  // namespace hotspots::sim
