// End-to-end miniatures of the paper's experiments, wiring every module
// together: worms × topology × engine × telescope × analysis.
#include <gtest/gtest.h>

#include <unordered_set>

#include "analysis/uniformity.h"
#include "core/quarantine.h"
#include "sim/engine.h"
#include "telescope/ims.h"
#include "topology/reachability.h"
#include "worms/codered2.h"
#include "worms/slammer.h"
#include "worms/uniform.h"

namespace hotspots {
namespace {

using net::Ipv4;
using net::Prefix;

/// Builds a population of `count` already-infectable hosts at arbitrary
/// public addresses (the tests seed them all as infected scanners).
sim::Population ScatteredHosts(int count, std::uint64_t seed) {
  sim::Population population;
  prng::Xoshiro256 rng{seed};
  int placed = 0;
  while (placed < count) {
    const Ipv4 address{rng.NextU32()};
    if (net::IsNonTargetable(address) || net::IsPrivate(address)) continue;
    try {
      population.AddHost(address);
      ++placed;
    } catch (const std::invalid_argument&) {
      // Duplicate draw; try again.
    }
  }
  population.Build(nullptr);
  return population;
}

TEST(IntegrationTest, SlammerUpstreamFilteringBlindsTheMBlock) {
  // Figure 2's environmental hotspot: the M block saw *zero* Slammer
  // because its upstream provider filtered the worm.
  sim::Population population = ScatteredHosts(300, 1);
  worms::SlammerWorm worm;

  telescope::Telescope ims = telescope::MakeImsTelescope();
  topology::IngressAclSet acls;
  const auto* m_block = ims.FindByLabel("M/22");
  ASSERT_NE(m_block, nullptr);
  acls.Block(m_block->block());
  acls.Build();
  const topology::Reachability reach{nullptr, nullptr, &acls, 0.0};

  sim::EngineConfig config;
  config.end_time = 200.0;  // 300 hosts × 10/s × 200 s = 600k probes.
  config.stop_at_infected_fraction = 2.0;  // Never stop on infections.
  sim::Engine engine{population, worm, reach, nullptr, config};
  for (sim::HostId id = 0; id < 300; ++id) engine.SeedInfection(id);

  engine.Run(ims);

  EXPECT_EQ(ims.FindByLabel("M/22")->probe_count(), 0u);
  // The huge Z/8 block must have seen plenty.
  EXPECT_GT(ims.FindByLabel("Z/8")->probe_count(), 100u);
}

TEST(IntegrationTest, SlammerShortCycleHostsAreExactlyPredictedByAlgebra) {
  // The per-host Slammer hotspot (Figure 3a/b): a host whose seed lands on
  // a short PRNG cycle can only ever target the addresses of that cycle —
  // and the algebraic analyzer predicts the full target set exactly.
  const auto analyzer = worms::SlammerCycleAnalyzer(1);
  const auto params = worms::SlammerLcgParams(1);
  prng::Xoshiro256 rng{5};

  int tested = 0;
  while (tested < 3) {
    const std::uint32_t seed = rng.NextU32();
    const std::uint64_t length = analyzer.CycleLength(params.Step(seed));
    if (length > (1u << 18)) continue;  // Want a short-cycle host.
    ++tested;

    // Walk the worm for one full period and collect targets.
    auto scanner = worms::SlammerWorm::MakeFixedScanner(1, seed);
    std::unordered_set<std::uint32_t> targets;
    for (std::uint64_t i = 0; i < length; ++i) {
      targets.insert(scanner->NextTarget(rng).value());
    }
    // The target set is exactly the cycle: `length` distinct addresses,
    // every one sharing the seed trajectory's CycleId, and a full second
    // period revisits exactly the same set (the "targeted DoS" look).
    EXPECT_EQ(targets.size(), length);
    const auto id = analyzer.IdOf(params.Step(seed));
    for (const std::uint32_t t : targets) {
      EXPECT_EQ(analyzer.IdOf(t), id);
    }
    for (std::uint64_t i = 0; i < length; ++i) {
      EXPECT_TRUE(targets.contains(scanner->NextTarget(rng).value()));
    }
    // And a block disjoint from the cycle is never hit: pick any address
    // on a different cycle.
    std::uint32_t elsewhere = rng.NextU32();
    while (analyzer.IdOf(elsewhere) == id) elsewhere = rng.NextU32();
    EXPECT_FALSE(targets.contains(elsewhere));
  }
}

TEST(IntegrationTest, CodeRed2QuarantineReproducesNatHotspot) {
  // Figure 4(b)/(c): the same worm, public address vs 192.168.0.2.
  worms::CodeRed2Worm worm;
  constexpr std::uint64_t kProbes = 5'000'000;

  telescope::Telescope ims = telescope::MakeImsTelescope();
  auto public_scanner =
      worm.MakeQuarantineScanner(Ipv4{141, 213, 4, 4}, 0xAA);
  core::RunQuarantine(*public_scanner, Ipv4{141, 213, 4, 4}, kProbes, ims);
  const std::uint64_t m_public = ims.FindByLabel("M/22")->probe_count();

  ims.ResetAll();
  auto nat_scanner = worm.MakeQuarantineScanner(Ipv4{192, 168, 0, 2}, 0xAA);
  core::RunQuarantine(*nat_scanner, Ipv4{192, 168, 0, 2}, kProbes, ims);
  const std::uint64_t m_nat = ims.FindByLabel("M/22")->probe_count();

  // Public host: essentially nothing lands on M (it would need the 1/8
  // uniform arm to hit a specific /22).  NATed host: half its probes spray
  // 192/8, so M sees a large spike.
  EXPECT_GT(m_nat, 20 * (m_public + 1));
  EXPECT_GT(m_nat, 100u);
}

TEST(IntegrationTest, EnterpriseFilteringHidesInfections) {
  // Table 2 in miniature: equal infections inside an egress-filtered
  // enterprise and an open broadband ISP; the darknet sees only the ISP's.
  topology::AllocationRegistry registry;
  const auto enterprise = registry.AddOrg(
      "Fort", topology::OrgKind::kEnterprise,
      {Prefix{Ipv4{20, 0, 0, 0}, 12}}, true);
  const auto isp = registry.AddOrg("Cable", topology::OrgKind::kBroadbandIsp,
                                   {Prefix{Ipv4{24, 0, 0, 0}, 12}}, false);
  registry.Build();
  (void)enterprise;
  (void)isp;

  sim::Population population;
  prng::Xoshiro256 rng{9};
  for (int i = 0; i < 100; ++i) {
    population.AddHost(Ipv4{(20u << 24) | (rng.NextU32() & 0x000FFFFFu)});
  }
  for (int i = 0; i < 100; ++i) {
    population.AddHost(Ipv4{(24u << 24) | (rng.NextU32() & 0x000FFFFFu)});
  }
  population.Build(&registry);

  const topology::Reachability reach{&registry, nullptr, nullptr, 0.0};
  worms::UniformWorm worm;
  sim::EngineConfig config;
  config.end_time = 300.0;
  config.stop_at_infected_fraction = 2.0;
  sim::Engine engine{population, worm, reach, nullptr, config};
  for (sim::HostId id = 0; id < population.size(); ++id) {
    engine.SeedInfection(id);
  }

  // Tap the probe stream by source organization.
  class SourceTap final : public sim::ProbeObserver {
   public:
    void OnProbe(const sim::ProbeEvent& event) override {
      if (event.delivery != topology::Delivery::kDelivered) return;
      if (event.src_address.Slash8() == 20) {
        ++enterprise_delivered;
        if (event.dst.Slash8() != 20) ++enterprise_escaped;
      }
      if (event.src_address.Slash8() == 24) ++isp_delivered;
    }
    std::uint64_t enterprise_delivered = 0;
    std::uint64_t enterprise_escaped = 0;
    std::uint64_t isp_delivered = 0;
  };
  SourceTap tap;
  const sim::RunResult result = engine.Run(tap);

  // The perimeter firewall dropped enterprise egress.
  EXPECT_GT(result.delivery_counts[static_cast<std::size_t>(
                topology::Delivery::kPerimeterFiltered)],
            0u);
  // ISP hosts spray the Internet freely; enterprise hosts deliver only
  // intra-enterprise, so nothing of theirs ever reaches external space.
  EXPECT_GT(tap.isp_delivered, 1000u);
  EXPECT_EQ(tap.enterprise_escaped, 0u);
  EXPECT_LT(tap.enterprise_delivered, tap.isp_delivered / 10);
}

TEST(IntegrationTest, UniformWormShowsNoHotspotAcrossSlash24s) {
  // The control experiment: uniform scanning observed at a /16-scale
  // darknet must produce a per-/24 histogram the analyzer does NOT flag.
  // (Feeding only the probes that land in the block is equivalent to — and
  // millions of times cheaper than — scanning the whole space.)
  telescope::Telescope darknet;
  darknet.AddSensor("wide", Prefix{Ipv4{100, 50, 0, 0}, 16});
  darknet.Build();
  prng::Xoshiro256 rng{1};
  const std::uint32_t base = Ipv4{100, 50, 0, 0}.value();
  for (int i = 0; i < 1'000'000; ++i) {
    const Ipv4 target{base | (rng.NextU32() >> 16)};
    darknet.Observe(0.0, Ipv4{9, 9, 9, 9}, target);
  }
  std::vector<std::uint64_t> counts;
  for (const auto& row : darknet.sensor(0).Histogram()) {
    counts.push_back(row.stats.probes);
  }
  ASSERT_EQ(counts.size(), 256u);
  const auto report = analysis::AnalyzeUniformity(counts);
  EXPECT_FALSE(report.LooksNonUniform());

  // Contrast: a CodeRedII host *inside* the monitored /16 concentrates on
  // its own /16 and /8 and is flagged immediately.
  darknet.ResetAll();
  worms::CodeRed2Worm crii;
  auto scanner = crii.MakeQuarantineScanner(Ipv4{100, 50, 7, 9}, 5);
  for (int i = 0; i < 1'000'000; ++i) {
    darknet.Observe(0.0, Ipv4{100, 50, 7, 9}, scanner->NextTarget(rng));
  }
  counts.clear();
  for (const auto& row : darknet.sensor(0).Histogram()) {
    counts.push_back(row.stats.probes);
  }
  const auto crii_report = analysis::AnalyzeUniformity(counts);
  // 3/8 of probes fall in this /16 spread over its /24s; the uniform arm
  // adds almost nothing — χ² against uniform must explode only if the
  // distribution deviates. Within the /16 CRII is octet-uniform, so this
  // checks the *analyzer* stays calm on in-block-uniform traffic too.
  EXPECT_GT(crii_report.total, 100'000u);
}

}  // namespace
}  // namespace hotspots
