// FoldPipeline pins (src/serve/fold.h): the concurrent ingest fold must
// be *exactly* equivalent to feeding the same probe stream to the same
// observer in capture order on one thread — counts, unique sources, and
// alert times bit-identical — regardless of how blocks were spread over
// slots or in what order Submit() delivered them.  Plus the liveness
// contracts: back-pressure pause/resume at the depth cap, gap timeout
// stepping over a sequence that never arrives, and idempotent Drain().
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "net/ipv4.h"
#include "net/prefix.h"
#include "serve/fold.h"
#include "sim/observer.h"
#include "telescope/telescope.h"

namespace hotspots::serve {
namespace {

using net::Ipv4;
using net::Prefix;
using telescope::SensorOptions;
using telescope::Telescope;

/// Deterministic stream of `blocks` blocks × `per_block` records aimed so
/// roughly half land in 10.0.0.0/16.  Timestamps advance every few
/// records and *repeat across block boundaries*, which is the case the
/// run-splitting fold logic must handle.
std::vector<std::vector<sim::ProbeEvent>> MakeBlocks(std::size_t blocks,
                                                     std::size_t per_block) {
  std::vector<std::vector<sim::ProbeEvent>> out(blocks);
  std::uint32_t i = 0;
  for (std::size_t b = 0; b < blocks; ++b) {
    for (std::size_t r = 0; r < per_block; ++r, ++i) {
      sim::ProbeEvent event;
      event.time = 0.1 * static_cast<double>(i / 6);
      event.src_host = i % 37;
      event.src_address = Ipv4{0xC0000000u + (i % 37) * 1013u};
      event.dst = (i % 2 == 0)
                      ? Ipv4{(10u << 24) | (i * 4099u & 0xFFFFu)}
                      : Ipv4{(77u << 24) | (i * 7919u & 0xFFFFFFu)};
      event.delivery = topology::Delivery::kDelivered;
      out[b].push_back(event);
    }
  }
  return out;
}

Telescope MakeTelescope() {
  SensorOptions options;
  options.alert_threshold = 25;
  Telescope telescope{options};
  telescope.AddSensor("fold/16", Prefix{Ipv4{10, 0, 0, 0}, 16});
  telescope.Build();
  telescope.OnAttach();
  return telescope;
}

/// Single-threaded reference: the whole stream in capture order.
void FoldReference(Telescope& telescope,
                   const std::vector<std::vector<sim::ProbeEvent>>& blocks) {
  for (const auto& block : blocks) telescope.OnProbeBatch(block);
}

void ExpectSameSensorState(const Telescope& got, const Telescope& want) {
  ASSERT_EQ(got.size(), want.size());
  const auto& g = got.sensor(0);
  const auto& w = want.sensor(0);
  EXPECT_EQ(g.probe_count(), w.probe_count());
  EXPECT_EQ(g.UniqueSourceCount(), w.UniqueSourceCount());
  ASSERT_EQ(g.alerted(), w.alerted());
  if (w.alerted()) {
    EXPECT_EQ(*g.alert_time(), *w.alert_time());  // Bit-identical, not near.
  }
}

TEST(ServeFoldTest, InOrderSingleSlotMatchesDirectReplay) {
  const auto blocks = MakeBlocks(12, 30);
  Telescope reference = MakeTelescope();
  FoldReference(reference, blocks);

  Telescope folded = MakeTelescope();
  FoldPipeline fold{folded};
  fold.Start();
  const std::uint32_t slot = fold.RegisterSlot();
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    fold.Submit(slot, i, blocks[i]);
  }
  fold.FinishSlot(slot);
  fold.Drain();

  EXPECT_EQ(fold.records_folded(), 12u * 30u);
  EXPECT_EQ(fold.blocks_folded(), 12u);
  EXPECT_EQ(fold.sequence_gaps(), 0u);
  ExpectSameSensorState(folded, reference);
}

/// The acceptance-shaped pin: blocks dealt round-robin across 8 slots and
/// submitted in a shuffled order still fold in global capture order, so
/// the state matches the serial replay exactly (several shuffles).
TEST(ServeFoldTest, ShuffledMultiSlotSubmissionMatchesDirectReplay) {
  const auto blocks = MakeBlocks(24, 25);
  Telescope reference = MakeTelescope();
  FoldReference(reference, blocks);

  std::mt19937 rng{0x5EED5EEDu};
  for (int trial = 0; trial < 5; ++trial) {
    Telescope folded = MakeTelescope();
    FoldPipeline fold{folded};
    fold.Start();
    std::vector<std::uint32_t> slots;
    for (int s = 0; s < 8; ++s) slots.push_back(fold.RegisterSlot());

    // Per-slot submission order must stay increasing (the protocol
    // guarantee the no-deadlock argument rests on), but slots may
    // interleave arbitrarily: shuffle a deal order per trial.
    std::vector<std::size_t> order(blocks.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::shuffle(order.begin(), order.end(), rng);
    std::vector<std::vector<std::size_t>> per_slot(slots.size());
    for (const std::size_t seq : order) per_slot[seq % slots.size()].push_back(seq);
    for (auto& q : per_slot) std::sort(q.begin(), q.end());
    std::vector<std::size_t> cursor(slots.size(), 0);
    for (const std::size_t seq : order) {
      const std::size_t s = seq % slots.size();
      const std::size_t next = per_slot[s][cursor[s]++];
      fold.Submit(slots[s], next, blocks[next]);
    }
    for (const auto slot : slots) fold.FinishSlot(slot);
    fold.Drain();

    ASSERT_EQ(fold.records_folded(), 24u * 25u) << "trial " << trial;
    ASSERT_EQ(fold.sequence_gaps(), 0u) << "trial " << trial;
    ASSERT_NO_FATAL_FAILURE(ExpectSameSensorState(folded, reference))
        << "trial " << trial;
  }
}

TEST(ServeFoldTest, BackpressurePausesAtCapAndResumes) {
  Telescope folded = MakeTelescope();
  FoldOptions options;
  options.max_slot_depth = 4;
  FoldPipeline fold{folded, options};

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::uint32_t> resumed;
  fold.set_resume_callback([&](std::uint32_t slot) {
    std::lock_guard<std::mutex> lock{mutex};
    resumed.push_back(slot);
    cv.notify_all();
  });

  const auto blocks = MakeBlocks(8, 10);
  fold.Start();
  const std::uint32_t slot = fold.RegisterSlot();

  // Withhold sequence 0 so the fold cannot advance; depths 1..3 accept,
  // the 4th queued block trips the cap.
  EXPECT_TRUE(fold.Submit(slot, 1, blocks[1]));
  EXPECT_TRUE(fold.Submit(slot, 2, blocks[2]));
  EXPECT_TRUE(fold.Submit(slot, 3, blocks[3]));
  EXPECT_FALSE(fold.Submit(slot, 4, blocks[4]));

  // Releasing sequence 0 un-dams the fold; the slot must drain below the
  // resume mark and the callback must name it.
  fold.Submit(slot, 0, blocks[0]);
  {
    std::unique_lock<std::mutex> lock{mutex};
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return !resumed.empty(); }));
    EXPECT_EQ(resumed.front(), slot);
  }
  for (std::size_t i = 5; i < blocks.size(); ++i) {
    fold.Submit(slot, i, blocks[i]);
  }
  fold.FinishSlot(slot);
  fold.Drain();
  EXPECT_EQ(fold.records_folded(), 8u * 10u);
  EXPECT_EQ(fold.sequence_gaps(), 0u);
}

/// Crash/rejoin degradation: a client dies mid-stripe and a new
/// connection (new slot) resumes with overlap around the low-water mark.
/// The duplicates must be counted and dropped — never folded twice, never
/// charged against the new slot's queue depth — and the final state must
/// equal the serial replay of the unique stream exactly.
TEST(ServeFoldTest, CrashAndRejoinWithOverlapFoldsExactlyOnce) {
  const auto blocks = MakeBlocks(10, 20);
  Telescope reference = MakeTelescope();
  FoldReference(reference, blocks);

  Telescope folded = MakeTelescope();
  FoldPipeline fold{folded};
  fold.Start();
  const std::uint32_t crashed = fold.RegisterSlot();
  // First attempt delivers 0..5, then the socket dies (no FIN).
  for (std::size_t i = 0; i < 6; ++i) fold.Submit(crashed, i, blocks[i]);
  fold.AbandonSlot(crashed);

  // The rejoined connection read a low-water mark somewhere <= 6 and
  // resends from 3: sequences 3..5 are overlap, 6..9 are new.
  const std::uint32_t rejoined = fold.RegisterSlot();
  for (std::size_t i = 3; i < blocks.size(); ++i) {
    fold.Submit(rejoined, i, blocks[i]);
  }
  fold.FinishSlot(rejoined);
  fold.Drain();

  EXPECT_EQ(fold.records_folded(), 10u * 20u);
  EXPECT_EQ(fold.blocks_folded(), 10u);
  EXPECT_EQ(fold.sequence_gaps(), 0u);
  EXPECT_EQ(fold.duplicate_blocks(), 3u);
  EXPECT_EQ(fold.committed_low_water(), 10u);
  ExpectSameSensorState(folded, reference);
}

/// A duplicate of a sequence that is still *queued* (not yet folded) must
/// also be dropped, without inflating the submitting slot's depth — a
/// leaked depth count would wedge back-pressure forever.
TEST(ServeFoldTest, DuplicateOfQueuedSequenceDoesNotLeakDepth) {
  const auto blocks = MakeBlocks(4, 10);
  Telescope folded = MakeTelescope();
  FoldOptions options;
  options.max_slot_depth = 3;
  FoldPipeline fold{folded, options};
  fold.Start();
  const std::uint32_t slot = fold.RegisterSlot();

  // Withhold 0 so nothing folds; queue 1 and 2, then re-submit both.
  EXPECT_TRUE(fold.Submit(slot, 1, blocks[1]));
  EXPECT_TRUE(fold.Submit(slot, 2, blocks[2]));
  EXPECT_TRUE(fold.Submit(slot, 1, blocks[1]));  // Duplicate: dropped.
  EXPECT_TRUE(fold.Submit(slot, 2, blocks[2]));  // Duplicate: dropped.
  // Depth is 2, not 4: one more unique submission reaches the cap (3)
  // exactly now, not earlier.
  EXPECT_FALSE(fold.Submit(slot, 3, blocks[3]));

  fold.Submit(slot, 0, blocks[0]);
  fold.FinishSlot(slot);
  fold.Drain();
  EXPECT_EQ(fold.duplicate_blocks(), 2u);
  EXPECT_EQ(fold.records_folded(), 4u * 10u);
  EXPECT_EQ(fold.blocks_folded(), 4u);
}

/// Gap accounting is exact: K sequences that never arrive are charged as
/// K gaps (not one step-over event), so `serve.ingest.sequence_gaps`
/// reconciles against the sender's ledger block for block.
TEST(ServeFoldTest, GapCountEqualsMissingSequencesExactly) {
  Telescope folded = MakeTelescope();
  FoldOptions options;
  options.gap_timeout_seconds = 0.05;
  FoldPipeline fold{folded, options};
  fold.Start();
  const std::uint32_t slot = fold.RegisterSlot();

  const auto blocks = MakeBlocks(8, 10);
  // Sequences 1, 2, 3 and then 6 never arrive: exactly 4 lost blocks.
  fold.Submit(slot, 0, blocks[0]);
  fold.Submit(slot, 4, blocks[4]);
  fold.Submit(slot, 5, blocks[5]);
  fold.Submit(slot, 7, blocks[7]);
  fold.FinishSlot(slot);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (fold.blocks_folded() < 4u &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  fold.Drain();
  EXPECT_EQ(fold.blocks_folded(), 4u);
  EXPECT_EQ(fold.sequence_gaps(), 4u);
  EXPECT_EQ(fold.committed_low_water(), 8u);
  // A block for a stepped-over sequence arriving *after* the fact is a
  // duplicate, not a new fold: the state already moved past it.
  // (Submit after Drain would race the joined thread; the pin above on
  // sequence_gaps + low-water is the contract.)
}

TEST(ServeFoldTest, GapTimeoutStepsOverMissingSequence) {
  Telescope folded = MakeTelescope();
  FoldOptions options;
  options.gap_timeout_seconds = 0.05;
  FoldPipeline fold{folded, options};
  fold.Start();
  const std::uint32_t slot = fold.RegisterSlot();

  const auto blocks = MakeBlocks(4, 10);
  // Sequence 1 never arrives (its sender "crashed").
  fold.Submit(slot, 0, blocks[0]);
  fold.Submit(slot, 2, blocks[2]);
  fold.Submit(slot, 3, blocks[3]);
  fold.FinishSlot(slot);

  // The fold must not wedge: after the gap timeout it steps past the
  // missing sequence, folds the rest, and counts the gap.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (fold.records_folded() < 30u &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  fold.Drain();
  EXPECT_EQ(fold.records_folded(), 30u);
  EXPECT_EQ(fold.blocks_folded(), 3u);
  EXPECT_GE(fold.sequence_gaps(), 1u);
}

TEST(ServeFoldTest, AckFiresOnlyAfterSlotFullyFolded) {
  Telescope folded = MakeTelescope();
  FoldPipeline fold{folded};
  std::atomic<int> acks{0};
  std::atomic<std::uint64_t> records_at_ack{0};
  fold.set_ack_callback([&](std::uint32_t) {
    records_at_ack.store(fold.records_folded());
    acks.fetch_add(1);
  });
  fold.Start();
  const std::uint32_t slot = fold.RegisterSlot();
  const auto blocks = MakeBlocks(6, 20);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    fold.Submit(slot, i, blocks[i]);
  }
  fold.FinishSlot(slot);
  fold.Drain();
  EXPECT_EQ(acks.load(), 1);
  // Durability barrier: at ack time every submitted record had folded.
  EXPECT_EQ(records_at_ack.load(), 6u * 20u);
}

TEST(ServeFoldTest, AlertProbeLatchesAndStampsWallTime) {
  Telescope folded = MakeTelescope();
  FoldPipeline fold{folded};
  fold.set_alert_probe([&] { return folded.AlertedCount() > 0; });
  EXPECT_FALSE(fold.alert_seen());
  EXPECT_TRUE(std::isnan(fold.first_alert_wall_seconds()));
  fold.Start();
  const std::uint32_t slot = fold.RegisterSlot();
  const auto blocks = MakeBlocks(12, 30);  // 180 sensor hits >> threshold 25.
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    fold.Submit(slot, i, blocks[i]);
  }
  fold.FinishSlot(slot);
  fold.Drain();
  EXPECT_TRUE(fold.alert_seen());
  EXPECT_GE(fold.first_alert_wall_seconds(), 0.0);
  EXPECT_FALSE(std::isnan(fold.first_alert_wall_seconds()));
}

TEST(ServeFoldTest, DrainIsIdempotentAndWithObserverLockRuns) {
  Telescope folded = MakeTelescope();
  FoldPipeline fold{folded};
  fold.Start();
  const std::uint32_t slot = fold.RegisterSlot();
  const auto blocks = MakeBlocks(2, 10);
  fold.Submit(slot, 0, blocks[0]);
  fold.Submit(slot, 1, blocks[1]);
  fold.FinishSlot(slot);
  fold.Drain();
  fold.Drain();  // Second drain must be a no-op, not a deadlock/crash.
  bool ran = false;
  fold.WithObserverLock([&] { ran = true; });
  EXPECT_TRUE(ran);
  EXPECT_EQ(fold.records_folded(), 20u);
}

}  // namespace
}  // namespace hotspots::serve
