// Pins the tracing subsystem's central invariant: spans and the metrics
// sampler observe but never steer.  An engine run must be bit-identical —
// same series, same delivery counts, same sensor state — with tracing on or
// off and with a background sampler attached or not, at 1 shard (inline
// serial path) and at 8 shards (worker pool + adoption churn).
#include <gtest/gtest.h>

#include <cstring>

#include "core/scenario.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/trace_span.h"
#include "sim/engine.h"
#include "telescope/telescope.h"
#include "topology/reachability.h"
#include "worms/hitlist.h"

namespace hotspots {
namespace {

/// FNV-1a over the complete externally visible run output (same mix as
/// tests/obs_determinism_test.cc and bench/micro_hotpath.cc, so failures
/// here predict ci gate failures).
struct Fingerprint {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  void Mix(std::uint64_t word) {
    for (int shift = 0; shift < 64; shift += 8) {
      hash ^= (word >> shift) & 0xFF;
      hash *= 0x100000001b3ull;
    }
  }
  void MixDouble(double value) {
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof bits);
    Mix(bits);
  }
};

struct Fixture {
  core::Scenario scenario;
  std::vector<net::Prefix> sensor_blocks;

  Fixture() {
    core::ScenarioBuilder builder;
    core::ClusteredPopulationConfig config;
    config.total_hosts = 4000;
    config.nonempty_slash16s = 120;
    config.slash8_clusters = 12;
    config.nat_fraction = 0.15;
    config.nat_site_mode = core::NatSiteMode::kSharedSite;
    config.seed = 0x0B5;
    scenario = builder.BuildClustered(config);
    for (std::size_t i = 0; i < scenario.slash16_clusters.size(); i += 8) {
      const auto& cluster = scenario.slash16_clusters[i];
      const std::uint32_t s24 = (cluster.prefix.first().value() >> 8) | 0xFE;
      if (scenario.occupied_slash24s.count(s24) != 0) continue;
      sensor_blocks.push_back(net::Prefix{net::Ipv4{s24 << 8}, 24});
    }
  }

  /// One deterministic sharded outbreak, fingerprinting the series, the
  /// delivery breakdown, and the full sensor fleet state.
  [[nodiscard]] std::uint64_t RunAndFingerprint(int shards) const {
    const auto selection = core::GreedyHitList(scenario, 40);
    worms::HitListWorm worm{selection.prefixes};
    const topology::Reachability reachability{
        nullptr, scenario.nats.size() > 0 ? &scenario.nats : nullptr, nullptr,
        0.001};
    sim::Population population = scenario.population;
    sim::EngineConfig config;
    config.scan_rate = 10.0;
    config.end_time = 400.0;
    config.sample_interval = 10.0;
    config.seed = 0xBEEF;
    config.max_probes = 2'000'000;
    config.shards = shards;
    sim::Engine engine{population, worm, reachability,
                       scenario.nats.size() > 0 ? &scenario.nats : nullptr,
                       config};
    engine.SeedRandomInfections(10);

    telescope::SensorOptions options;
    options.track_unique_sources = true;
    options.track_per_slash24 = true;
    options.alert_threshold = 5;
    telescope::Telescope scope{options};
    int id = 0;
    for (const auto& block : sensor_blocks) {
      scope.AddSensor("S" + std::to_string(id++), block);
    }
    scope.Build();

    const sim::RunResult result = engine.Run(scope);

    Fingerprint fingerprint;
    for (const auto& point : result.series) {
      fingerprint.MixDouble(point.time);
      fingerprint.Mix(point.infected);
      fingerprint.Mix(point.probes);
    }
    for (const std::uint64_t count : result.delivery_counts) {
      fingerprint.Mix(count);
    }
    fingerprint.Mix(result.total_probes);
    fingerprint.Mix(result.final_infected);
    for (std::size_t i = 0; i < scope.size(); ++i) {
      const auto& sensor = scope.sensor(static_cast<int>(i));
      fingerprint.Mix(sensor.probe_count());
      fingerprint.Mix(sensor.UniqueSourceCount());
      fingerprint.MixDouble(sensor.alert_time().value_or(-1.0));
    }
    return fingerprint.hash;
  }
};

class ObsTraceDeterminismTest : public ::testing::TestWithParam<int> {
 protected:
  void TearDown() override {
    obs::SetTracingForTesting(-1);
    obs::SpanCollector::Global().ResetForTesting();
  }
  Fixture fixture_;
};

TEST_P(ObsTraceDeterminismTest, FingerprintIdenticalWithTracingOnAndOff) {
  const int shards = GetParam();

  obs::SetTracingForTesting(0);
  ASSERT_FALSE(obs::TracingEnabled());
  const std::uint64_t off = fixture_.RunAndFingerprint(shards);
  EXPECT_TRUE(obs::SpanCollector::Global().TakeTimeline().spans.empty())
      << "disabled run still recorded spans";

  obs::SetTracingForTesting(1);
  ASSERT_TRUE(obs::TracingEnabled());
  const std::uint64_t on = fixture_.RunAndFingerprint(shards);
  const obs::Timeline timeline = obs::SpanCollector::Global().TakeTimeline();
  EXPECT_FALSE(timeline.spans.empty()) << "traced run recorded no spans";

  EXPECT_EQ(off, on) << "tracing changed simulation output at " << shards
                     << " shard(s)";
}

TEST_P(ObsTraceDeterminismTest, FingerprintIdenticalWithSamplerAttached) {
  const int shards = GetParam();
  obs::SetTracingForTesting(0);
  const std::uint64_t bare = fixture_.RunAndFingerprint(shards);

  // Tracing AND a live background sampler: the worst observability load.
  obs::SetTracingForTesting(1);
  obs::MetricsSampler sampler{obs::Registry::Global(),
                              obs::SamplerOptions{5}};
  sampler.Start();
  const std::uint64_t observed = fixture_.RunAndFingerprint(shards);
  sampler.Stop();
  (void)obs::SpanCollector::Global().TakeTimeline();

  EXPECT_GE(sampler.sample_count(), 2u);
  EXPECT_EQ(bare, observed) << "sampling changed simulation output at "
                            << shards << " shard(s)";
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ObsTraceDeterminismTest,
                         ::testing::Values(1, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Shards" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace hotspots
