#include "prng/tickcount.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

namespace hotspots::prng {
namespace {

TEST(BootEntropyModelTest, PaperGenerationsMatchReportedStatistics) {
  const auto generations = PaperHardwareGenerations();
  ASSERT_EQ(generations.size(), 3u);
  for (const HardwareGeneration& generation : generations) {
    EXPECT_NEAR(generation.boot_mean_seconds, 30.0, 2.0);
    EXPECT_DOUBLE_EQ(generation.boot_stddev_seconds, 1.0);
  }
}

TEST(BootEntropyModelTest, RebootLoopReproducesMeanAndStddev) {
  // The paper's measurement program found mean ≈ 30 s, σ ≈ 1 s.
  Xoshiro256 rng{1};
  const BootEntropyModel model = BootEntropyModel::Paper();
  const HardwareGeneration generation{"PIII", 30.0, 1.0, 1.0};
  const auto ticks = model.RebootLoopExperiment(generation, 5000, rng);
  ASSERT_EQ(ticks.size(), 5000u);
  const double mean =
      std::accumulate(ticks.begin(), ticks.end(), 0.0) / ticks.size() / 1000.0;
  EXPECT_NEAR(mean, 30.0, 0.2);
  double variance = 0;
  for (const std::uint32_t t : ticks) {
    const double d = t / 1000.0 - mean;
    variance += d * d;
  }
  variance /= ticks.size();
  EXPECT_NEAR(std::sqrt(variance), 1.0, 0.1);
}

TEST(BootEntropyModelTest, RebootStartsDominateSeedDistribution) {
  Xoshiro256 rng{2};
  const BootEntropyModel model = BootEntropyModel::Paper();
  int near_boot = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    // Ticks under 60 s can only come from the reboot-start branch.
    if (model.SampleTickCount(rng) < 60'000u) ++near_boot;
  }
  EXPECT_NEAR(static_cast<double>(near_boot) / kSamples,
              model.reboot_start_fraction(), 0.02);
}

TEST(BootEntropyModelTest, UptimeTailReachesMinutes) {
  Xoshiro256 rng{3};
  const BootEntropyModel model = BootEntropyModel::Paper();
  bool saw_minutes = false;
  for (int i = 0; i < 20000; ++i) {
    const std::uint32_t tick = model.SampleTickCount(rng);
    if (tick > 4 * 60 * 1000u) {
      saw_minutes = true;
      break;
    }
  }
  EXPECT_TRUE(saw_minutes)
      << "seed distribution lacks the multi-minute uptime tail the paper "
         "correlates hot ranges with";
}

TEST(BootEntropyModelTest, ValidatesArguments) {
  EXPECT_THROW(BootEntropyModel({}, 0.5), std::invalid_argument);
  EXPECT_THROW(BootEntropyModel(PaperHardwareGenerations(), -0.1),
               std::invalid_argument);
  EXPECT_THROW(BootEntropyModel(PaperHardwareGenerations(), 1.5),
               std::invalid_argument);
  EXPECT_THROW(BootEntropyModel(PaperHardwareGenerations(), 0.5, -1.0, 10.0),
               std::invalid_argument);
  EXPECT_THROW(BootEntropyModel(PaperHardwareGenerations(), 0.5, 10.0, 5.0),
               std::invalid_argument);
  std::vector<HardwareGeneration> negative = PaperHardwareGenerations();
  negative[0].weight = -1.0;
  EXPECT_THROW(BootEntropyModel(negative, 0.5), std::invalid_argument);
}

TEST(BootEntropyModelTest, RebootLoopRejectsNegativeTrials) {
  Xoshiro256 rng{4};
  const BootEntropyModel model = BootEntropyModel::Paper();
  EXPECT_THROW(
      (void)model.RebootLoopExperiment(PaperHardwareGenerations()[0], -1, rng),
      std::invalid_argument);
}

}  // namespace
}  // namespace hotspots::prng
