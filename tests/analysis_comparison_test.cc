// Tests for cross-darknet comparison, the LCG spectral test, and the
// containment analysis.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/block_comparison.h"
#include "core/containment.h"
#include "prng/spectral.h"

namespace hotspots {
namespace {

// ---------------------------------------------------------------------
// Block comparison.
// ---------------------------------------------------------------------

TEST(BlockComparisonTest, EmptyThrows) {
  EXPECT_THROW((void)analysis::CompareBlocks({}), std::invalid_argument);
}

TEST(BlockComparisonTest, RanksBySizeNormalizedRate) {
  const auto report = analysis::CompareBlocks({
      {"A", 256, 256},    // rate 1.0
      {"B", 1024, 4096},  // rate 4.0
      {"C", 65536, 0},    // silent
  });
  ASSERT_EQ(report.ranked.size(), 3u);
  EXPECT_EQ(report.ranked[0].label, "B");
  EXPECT_EQ(report.ranked[1].label, "A");
  EXPECT_EQ(report.ranked[2].label, "C");
  EXPECT_DOUBLE_EQ(report.max_spread, 4.0);
  EXPECT_EQ(report.silent_blocks, 1u);
  EXPECT_NEAR(report.orders_of_magnitude, std::log10(4.0), 1e-12);
  EXPECT_TRUE(report.DisagreesBeyond(3.0));
  EXPECT_FALSE(report.DisagreesBeyond(5.0));
}

TEST(BlockComparisonTest, IdenticalRatesHaveNoSpread) {
  const auto report = analysis::CompareBlocks({
      {"A", 100, 200},
      {"B", 1000, 2000},
  });
  EXPECT_DOUBLE_EQ(report.max_spread, 0.0);
  EXPECT_DOUBLE_EQ(report.orders_of_magnitude, 0.0);
  EXPECT_FALSE(report.DisagreesBeyond(1.0));
}

TEST(BlockComparisonTest, SingleNonzeroBlockHasNoSpread) {
  const auto report = analysis::CompareBlocks({{"A", 10, 5}, {"B", 10, 0}});
  EXPECT_DOUBLE_EQ(report.max_spread, 0.0);
  EXPECT_EQ(report.silent_blocks, 1u);
}

// ---------------------------------------------------------------------
// Spectral test.
// ---------------------------------------------------------------------

TEST(SpectralTest, ShortestVectorIsLatticePoint) {
  for (const std::uint32_t a : {214013u, 69069u, 1103515245u, 5u}) {
    for (const int m : {16, 24, 32}) {
      const prng::LcgParams params{a, 0, m};
      const auto result = prng::SpectralTest2D(params);
      // (vx, vy) must satisfy vy ≡ a·vx (mod 2^m).
      const std::uint64_t modulus = std::uint64_t{1} << m;
      const auto vx = static_cast<std::uint64_t>(result.shortest_x);
      const auto vy = static_cast<std::uint64_t>(result.shortest_y);
      EXPECT_EQ((vy - a * vx) % modulus, 0u)
          << "a=" << a << " m=" << m;
      EXPECT_GT(result.nu2, 0.0);
      EXPECT_LE(result.merit, 1.0 + 1e-9);
      EXPECT_GT(result.merit, 0.0);
    }
  }
}

TEST(SpectralTest, DetectsTerribleMultiplier) {
  // a = 5: (1, 5) is a lattice point, so consecutive outputs lie on a
  // handful of lines — minuscule ν₂ and merit versus a decent multiplier.
  const auto bad = prng::SpectralTest2D(prng::LcgParams{5u, 0, 32});
  const auto good = prng::SpectralTest2D(prng::LcgParams{69069u, 0, 32});
  EXPECT_NEAR(bad.nu2, std::sqrt(26.0), 1e-9);
  EXPECT_LT(bad.merit, 0.001);
  EXPECT_GT(good.merit, 0.3);
}

TEST(SpectralTest, MsvcMultiplierIsReasonableIn2D) {
  // The Slammer/Blaster multiplier is not a 2-D disaster — its problems
  // (the OR-bug increment, 15-bit truncation, bad seeding) are elsewhere,
  // which is exactly the paper's point about implementation context.
  const auto result =
      prng::SpectralTest2D(prng::LcgParams{prng::kMsvcMultiplier, 0, 32});
  EXPECT_GT(result.merit, 0.1);
}

TEST(SpectralTest, ValidatesArguments) {
  EXPECT_THROW((void)prng::SpectralTest2D(prng::LcgParams{2, 0, 16}),
               std::invalid_argument);
  EXPECT_THROW((void)prng::SpectralTest2D(prng::LcgParams{5, 0, 1}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// Containment.
// ---------------------------------------------------------------------

core::DetectionOutcome SyntheticOutcome() {
  core::DetectionOutcome outcome;
  outcome.total_sensors = 10;
  outcome.alert_times = {10, 20, 30, 40, 50};  // 5 of 10 sensors alert.
  outcome.curve = {
      {0, 0.00, 0.0},  {10, 0.05, 0.1}, {20, 0.15, 0.2}, {30, 0.30, 0.3},
      {40, 0.50, 0.4}, {50, 0.70, 0.5}, {60, 0.85, 0.5}, {70, 0.95, 0.5},
  };
  return outcome;
}

TEST(ContainmentTest, InfectedFractionAtSamplesTheCurve) {
  const auto outcome = SyntheticOutcome();
  EXPECT_DOUBLE_EQ(core::InfectedFractionAt(outcome, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(core::InfectedFractionAt(outcome, 25.0), 0.15);
  EXPECT_DOUBLE_EQ(core::InfectedFractionAt(outcome, 1000.0), 0.95);
}

TEST(ContainmentTest, QuorumAndDelayComposition) {
  const auto outcome = SyntheticOutcome();
  const auto points =
      core::AnalyzeContainment(outcome, {0.2, 0.5, 0.8}, 10.0);
  ASSERT_EQ(points.size(), 3u);

  // 20% quorum = 2 sensors = t=20; response at t=30 → 30% infected.
  ASSERT_TRUE(points[0].detection_time.has_value());
  EXPECT_DOUBLE_EQ(*points[0].detection_time, 20.0);
  EXPECT_DOUBLE_EQ(*points[0].response_time, 30.0);
  EXPECT_DOUBLE_EQ(points[0].infected_at_response, 0.30);

  // 50% quorum = 5 sensors = t=50; response at t=60 → 85% infected:
  // detection delay translated straight into infected population.
  EXPECT_DOUBLE_EQ(*points[1].detection_time, 50.0);
  EXPECT_DOUBLE_EQ(points[1].infected_at_response, 0.85);

  // 80% quorum never fires: the outbreak runs to the end of the window.
  EXPECT_FALSE(points[2].detection_time.has_value());
  EXPECT_DOUBLE_EQ(points[2].infected_at_response, 0.95);
}

TEST(ContainmentTest, RejectsNegativeDelay) {
  const auto outcome = SyntheticOutcome();
  EXPECT_THROW((void)core::AnalyzeContainment(outcome, {0.5}, -1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace hotspots
