// Two-phase observer pre-fold determinism (the shard-matrix merge suite).
//
// Mergeable observers fold each shard's staged events into per-shard
// partial state on worker threads; the serial commit merges those partials
// in shard order.  Everything ordered — detector verdicts, alert-threshold
// crossings, first-alert times — must therefore be bit-identical to a
// serial run at any shard count, with and without delivery faults active.
// This suite pins that contract for the detector adapters (TRW gateway,
// content prevalence), the telescope fold (per-sensor gauges, histograms,
// outage accounting), mixed tees (mergeable + serial-only children), and
// the EngineAudit conservation invariant; the stress test at the end is
// the ThreadSanitizer view of concurrent OnShardBatch calls (run it under
// HOTSPOTS_SANITIZE=tsan).
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "detect/probe_stream.h"
#include "fault/delivery.h"
#include "fault/schedule.h"
#include "net/interval_set.h"
#include "sim/engine.h"
#include "sim/observer.h"
#include "sim/population.h"
#include "telescope/telescope.h"
#include "topology/reachability.h"
#include "worms/hitlist.h"

namespace hotspots::sim {
namespace {

using net::Ipv4;
using net::Prefix;

/// Serial, the smallest real fan-out, an uneven partition, a wide one.
const int kShardMatrix[] = {1, 2, 3, 8};

/// Forwarding wrapper that hides a child's mergeability, forcing the
/// engine onto the ordered-span commit path.  The pre-fold's ground truth:
/// the same observer driven through OnProbeBatch must end in the same
/// state.
class SerialOnly final : public ProbeObserver {
 public:
  explicit SerialOnly(ProbeObserver* child) : child_(child) {}
  void OnAttach() override { child_->OnAttach(); }
  void OnProbe(const ProbeEvent& event) override { child_->OnProbe(event); }
  void OnProbeBatch(std::span<const ProbeEvent> events) override {
    child_->OnProbeBatch(events);
  }
  // AsMergeable() intentionally left at the nullptr default.

 private:
  ProbeObserver* child_;
};

class PrefoldTest : public ::testing::Test {
 protected:
  /// Dense population in 60.5.0.0/16: large enough that the steady state
  /// actually fans out across shards (kMinProbesPerShard) instead of
  /// staying on the inline small-step path.
  void BuildDensePopulation(int hosts) {
    for (int i = 0; i < hosts; ++i) {
      population_.AddHost(Ipv4{60, 5, static_cast<std::uint8_t>(i / 250),
                               static_cast<std::uint8_t>(1 + i % 250)});
    }
    population_.Build(nullptr);
  }

  EngineConfig Config(int shards) const {
    EngineConfig config;
    config.scan_rate = 10.0;
    config.end_time = 400.0;
    config.sample_interval = 5.0;
    config.stop_at_infected_fraction = 0.95;
    config.seed = 0xD15EA5E;
    config.shards = shards;
    return config;
  }

  RunResult RunOnce(int shards, ProbeObserver& observer,
                    DeliveryFaultHook* faults = nullptr) {
    population_.ResetAllToVulnerable();
    const topology::Reachability reachability{nullptr, nullptr, nullptr,
                                              0.05};
    const worms::HitListWorm worm{{Prefix{Ipv4{60, 5, 0, 0}, 16}}};
    Engine engine{population_, worm, reachability, nullptr, Config(shards)};
    engine.SetDeliveryFaults(faults);
    engine.SeedRandomInfections(10);
    return engine.Run(observer);
  }

  /// A loss+duplication schedule every faulted variant shares.
  static fault::FaultSchedule FaultySchedule() {
    fault::FaultSchedule schedule;
    schedule.delivery.loss_rate = 0.02;
    schedule.delivery.duplication_rate = 0.01;
    return schedule;
  }

  Population population_;
};

// ---------------------------------------------------------------------
// Detector adapters: staged inputs, replay-at-merge.
// ---------------------------------------------------------------------

struct DetectorReadings {
  std::optional<double> trw_first_alert;
  std::uint64_t trw_seen = 0;
  std::uint64_t trw_fed = 0;
  std::uint64_t trw_flagged = 0;
  std::optional<double> prevalence_alert;
  std::uint64_t total_probes = 0;

  bool operator==(const DetectorReadings&) const = default;
};

TEST_F(PrefoldTest, DetectorAlertsAreShardCountInvariant) {
  BuildDensePopulation(20000);
  // Live space deliberately smaller than the scanned /16, so TRW sees a
  // failure-heavy mix and flags scanners mid-run — the first-alert *step*
  // is what the merge order must preserve.
  net::IntervalSet live_space;
  live_space.Add(Prefix{Ipv4{60, 5, 0, 0}, 18});
  live_space.Build();

  const auto run_detectors = [&](int shards, bool faulted,
                                 bool force_serial) -> DetectorReadings {
    detect::TrwGatewayObserver trw{live_space};
    detect::PrevalenceStreamConfig prevalence_config;
    prevalence_config.prevalence =
        detect::PrevalenceConfig{/*prevalence_threshold=*/1000,
                                 /*min_sources=*/10, /*min_destinations=*/50};
    prevalence_config.content_id = 42;
    detect::PrevalenceStreamObserver prevalence{prevalence_config};
    TeeObserver tee{&trw, &prevalence};
    SerialOnly serial{&tee};
    ProbeObserver& observer =
        force_serial ? static_cast<ProbeObserver&>(serial) : tee;
    fault::DeliveryFaults faults{FaultySchedule()};
    const RunResult run =
        RunOnce(shards, observer, faulted ? &faults : nullptr);
    DetectorReadings readings;
    readings.trw_first_alert = trw.first_alert_time();
    readings.trw_seen = trw.probes_seen();
    readings.trw_fed = trw.probes_fed();
    readings.trw_flagged = trw.detector().flagged_scanners();
    readings.prevalence_alert = prevalence.alert_time();
    readings.total_probes = run.total_probes;
    return readings;
  };

  for (const bool faulted : {false, true}) {
    // Ground truth: the ordered-span path with the fold hidden.
    const DetectorReadings reference =
        run_detectors(1, faulted, /*force_serial=*/true);
    ASSERT_TRUE(reference.trw_first_alert.has_value()) << faulted;
    ASSERT_TRUE(reference.prevalence_alert.has_value()) << faulted;
    ASSERT_GT(reference.trw_fed, 0u) << faulted;
    for (const int shards : kShardMatrix) {
      const DetectorReadings folded =
          run_detectors(shards, faulted, /*force_serial=*/false);
      EXPECT_EQ(reference, folded)
          << shards << " shards, faulted=" << faulted;
    }
  }
}

// ---------------------------------------------------------------------
// Mixed tee: mergeable + serial-only children on one run.
// ---------------------------------------------------------------------

TEST_F(PrefoldTest, MixedTeeSeesIdenticalEventsEitherWay) {
  BuildDensePopulation(8000);
  const auto make_fleet = [](telescope::Telescope& fleet) {
    telescope::SensorOptions options;
    options.track_unique_sources = true;
    options.alert_threshold = 5;
    fleet.AddSensor("in-a", Prefix{Ipv4{60, 5, 200, 0}, 24}, options);
    fleet.AddSensor("in-b", Prefix{Ipv4{60, 5, 220, 0}, 24}, options);
    fleet.Build();
  };

  // Reference: everything forced through the ordered-span path.
  telescope::Telescope serial_fleet;
  make_fleet(serial_fleet);
  RecordingObserver serial_events;
  TeeObserver serial_tee{&serial_fleet, &serial_events};
  SerialOnly serial{&serial_tee};
  const RunResult reference = RunOnce(8, serial);
  ASSERT_GT(serial_fleet.sensor(0).probe_count(), 0u);
  ASSERT_GT(serial_events.events().size(), 0u);

  // Mixed tee on the same sharded run: the telescope child pre-folds on
  // worker threads while the recording child still receives the committed
  // spans — both must see exactly what the serial path showed them.
  telescope::Telescope mixed_fleet;
  make_fleet(mixed_fleet);
  RecordingObserver mixed_events;
  TeeObserver mixed_tee{&mixed_fleet, &mixed_events};
  ASSERT_NE(mixed_tee.AsMergeable(), nullptr);
  EXPECT_TRUE(mixed_tee.WantsSerialSpans());
  const RunResult run = RunOnce(8, mixed_tee);

  EXPECT_EQ(reference.total_probes, run.total_probes);
  ASSERT_EQ(serial_events.events().size(), mixed_events.events().size());
  for (std::size_t i = 0; i < serial_events.events().size(); ++i) {
    const ProbeEvent& want = serial_events.events()[i];
    const ProbeEvent& got = mixed_events.events()[i];
    ASSERT_TRUE(want.time == got.time && want.src_host == got.src_host &&
                want.src_address == got.src_address && want.dst == got.dst &&
                want.delivery == got.delivery)
        << "mixed tee diverges at event " << i;
  }
  for (int i = 0; i < static_cast<int>(serial_fleet.size()); ++i) {
    EXPECT_EQ(serial_fleet.sensor(i).probe_count(),
              mixed_fleet.sensor(i).probe_count());
    EXPECT_EQ(serial_fleet.sensor(i).UniqueSourceCount(),
              mixed_fleet.sensor(i).UniqueSourceCount());
    EXPECT_EQ(serial_fleet.sensor(i).alert_time(),
              mixed_fleet.sensor(i).alert_time());
  }

  // A tee of only-mergeable children takes the pure fold path (no spans);
  // of only-serial children it is not mergeable at all.
  TeeObserver pure_mergeable{&mixed_fleet};
  ASSERT_NE(pure_mergeable.AsMergeable(), nullptr);
  EXPECT_FALSE(pure_mergeable.WantsSerialSpans());
  TeeObserver pure_serial{&mixed_events};
  EXPECT_EQ(pure_serial.AsMergeable(), nullptr);
}

// ---------------------------------------------------------------------
// Telescope gauges + conservation across the shard matrix, faults on/off.
// ---------------------------------------------------------------------

struct FleetReadings {
  std::vector<std::uint64_t> probes;
  std::vector<std::size_t> sources;
  std::vector<std::optional<double>> alert_times;
  std::vector<std::uint64_t> unidentified;
  std::uint64_t outage_missed = 0;
  std::uint64_t total_probes = 0;
  std::uint64_t fault_drops = 0;
  std::uint64_t fault_duplicates = 0;

  bool operator==(const FleetReadings&) const = default;
};

TEST_F(PrefoldTest, TelescopeGaugesAndConservationAcrossShardMatrix) {
  BuildDensePopulation(8000);
  const auto run_fleet = [&](int shards, bool faulted) -> FleetReadings {
    telescope::Telescope fleet;
    telescope::SensorOptions options;
    options.track_unique_sources = true;
    options.track_per_slash24 = true;
    options.alert_threshold = 5;
    fleet.AddSensor("in-a", Prefix{Ipv4{60, 5, 200, 0}, 24}, options);
    fleet.AddSensor("in-b", Prefix{Ipv4{60, 5, 220, 0}, 24}, options);
    fleet.Build();
    // One sensor dark mid-run: the outage-missed tally rides the same
    // per-step fold as the probe counts and must merge identically.  The
    // dense population saturates in ~10 simulated seconds, so the window
    // sits inside the epidemic's growth phase.
    fleet.SetSensorOutages(0, {{1.0, 5.0}});
    fault::DeliveryFaults faults{FaultySchedule()};
    const RunResult run =
        RunOnce(shards, fleet, faulted ? &faults : nullptr);
    EXPECT_TRUE(EngineAudit::ConservationHolds(run))
        << shards << " shards, faulted=" << faulted;
    FleetReadings readings;
    for (int i = 0; i < static_cast<int>(fleet.size()); ++i) {
      readings.probes.push_back(fleet.sensor(i).probe_count());
      readings.sources.push_back(fleet.sensor(i).UniqueSourceCount());
      readings.alert_times.push_back(fleet.sensor(i).alert_time());
      readings.unidentified.push_back(fleet.sensor(i).unidentified_probes());
    }
    readings.outage_missed = fleet.OutageMissedProbes();
    readings.total_probes = run.total_probes;
    readings.fault_drops = run.fault_injected_drops;
    readings.fault_duplicates = run.fault_duplicates;
    return readings;
  };

  for (const bool faulted : {false, true}) {
    const FleetReadings reference = run_fleet(1, faulted);
    ASSERT_GT(reference.probes[0], 0u) << faulted;
    ASSERT_GT(reference.outage_missed, 0u) << faulted;
    if (faulted) {
      ASSERT_GT(reference.fault_drops, 0u);
      ASSERT_GT(reference.fault_duplicates, 0u);
    }
    for (const int shards : kShardMatrix) {
      EXPECT_EQ(reference, run_fleet(shards, faulted))
          << shards << " shards, faulted=" << faulted;
    }
  }
}

// ---------------------------------------------------------------------
// Concurrency stress: many generations of concurrent pre-fold.  The
// interesting schedule is 8 worker threads folding into forked partials
// while the serial thread merges the previous step — run this suite under
// HOTSPOTS_SANITIZE=tsan to let the race detector watch that handoff.
// ---------------------------------------------------------------------

TEST_F(PrefoldTest, ConcurrentPrefoldStressIsDeterministic) {
  BuildDensePopulation(12000);
  net::IntervalSet live_space;
  live_space.Add(Prefix{Ipv4{60, 5, 0, 0}, 18});
  live_space.Build();
  const auto run_stack = [&]() -> std::uint64_t {
    telescope::Telescope fleet;
    telescope::SensorOptions options;
    options.track_unique_sources = true;
    options.alert_threshold = 5;
    fleet.AddSensor("in-a", Prefix{Ipv4{60, 5, 200, 0}, 24}, options);
    fleet.Build();
    detect::TrwGatewayObserver trw{live_space};
    detect::PrevalenceStreamObserver prevalence;
    TeeObserver tee{&fleet, &trw, &prevalence};
    fault::DeliveryFaults faults{FaultySchedule()};
    const RunResult run = RunOnce(8, tee, &faults);
    // Fold everything observable into one word so repeated runs are
    // comparable with a single EXPECT.
    std::uint64_t digest = run.total_probes;
    digest = digest * 1099511628211ull + fleet.sensor(0).probe_count();
    digest = digest * 1099511628211ull + fleet.sensor(0).UniqueSourceCount();
    digest = digest * 1099511628211ull + trw.probes_fed();
    digest = digest * 1099511628211ull + trw.detector().flagged_scanners();
    digest = digest * 1099511628211ull + run.fault_duplicates;
    return digest;
  };
  const std::uint64_t reference = run_stack();
  for (int generation = 0; generation < 4; ++generation) {
    EXPECT_EQ(reference, run_stack()) << "generation " << generation;
  }
}

}  // namespace
}  // namespace hotspots::sim
