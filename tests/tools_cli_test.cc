// CLI contract pins for the tools/ binaries that scripts depend on.
// Exit codes are API: ci.sh and result-collection scripts branch on
// them, so a usage error must be 2 with a one-line diagnostic — never a
// parse backtrace or an ambiguous 1.  Covered here: perf_report's
// --timeseries argument with a missing and with a truncated sidecar
// (the ISSUE 9 satellite), and telescope_load's exit-1 one-liner when
// the daemon refuses its HELLO (fingerprint admission).
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/ipv4.h"
#include "sim/observer.h"
#include "topology/reachability.h"
#include "trace/writer.h"

namespace {

#ifndef PERF_REPORT_PATH
#error "PERF_REPORT_PATH must point at the built perf_report binary"
#endif
#ifndef TELESCOPE_SERVER_PATH
#error "TELESCOPE_SERVER_PATH must point at the built telescope_server binary"
#endif
#ifndef TELESCOPE_LOAD_PATH
#error "TELESCOPE_LOAD_PATH must point at the built telescope_load binary"
#endif

/// Scratch path unique to this test process: ctest -j runs each case in
/// its own process, so shared names would race.
std::string Scratch(const std::string& name) {
  return ::testing::TempDir() + "/tools_cli." + std::to_string(::getpid()) +
         "." + name;
}

/// Runs `command` with stderr captured into `err_out`; returns the exit
/// status (or -1 if the child did not exit normally).
int RunCapture(const std::string& command, std::string& err_out) {
  const std::string err_path = Scratch("stderr");
  const int raw = std::system(
      (command + " >/dev/null 2>" + err_path).c_str());
  std::ifstream err{err_path};
  err_out.assign(std::istreambuf_iterator<char>(err),
                 std::istreambuf_iterator<char>());
  if (!WIFEXITED(raw)) return -1;
  return WEXITSTATUS(raw);
}

/// A minimal but well-formed trace-event timeline, so the failure under
/// test is isolated to the --timeseries argument.
std::string WriteTimeline() {
  const std::string path = Scratch("timeline.json");
  std::ofstream out{path};
  out << R"({"traceEvents":[)"
      << R"({"ph":"B","ts":1,"tid":0,"name":"run"},)"
      << R"({"ph":"E","ts":5,"tid":0,"name":"run"}]})";
  return path;
}

TEST(PerfReportCliTest, MissingTimeseriesExitsTwoWithOneLineError) {
  const std::string timeline = WriteTimeline();
  const std::string missing = Scratch("no_such_sidecar.json");
  std::remove(missing.c_str());
  std::string err;
  const int status = RunCapture(std::string(PERF_REPORT_PATH) + " --timeline " +
                                    timeline + " --timeseries " + missing,
                                err);
  EXPECT_EQ(status, 2) << err;
  EXPECT_NE(err.find("perf_report: --timeseries"), std::string::npos) << err;
  EXPECT_NE(err.find(missing), std::string::npos) << err;
  // One line, no backtrace/partial-parse spew.
  EXPECT_EQ(std::count(err.begin(), err.end(), '\n'), 1) << err;
}

TEST(PerfReportCliTest, TruncatedTimeseriesExitsTwoWithOneLineError) {
  const std::string timeline = WriteTimeline();
  const std::string truncated = Scratch("truncated_sidecar.json");
  {
    std::ofstream out{truncated};
    out << R"([{"t": 0.5, "records": 12)";  // Cut mid-object.
  }
  std::string err;
  const int status = RunCapture(std::string(PERF_REPORT_PATH) + " --timeline " +
                                    timeline + " --timeseries " + truncated,
                                err);
  EXPECT_EQ(status, 2) << err;
  EXPECT_NE(err.find("perf_report: --timeseries"), std::string::npos) << err;
  EXPECT_EQ(std::count(err.begin(), err.end(), '\n'), 1) << err;
}

/// A tiny but valid ingest corpus stamped with `fingerprint`, so the
/// refusal under test is the admission check — not a parse failure.
std::string WriteRefusalCorpus(std::uint64_t fingerprint) {
  const std::string path = Scratch("refusal.trace");
  hotspots::trace::TraceWriterOptions options;
  options.scenario_fingerprint = fingerprint;
  options.seed = 7;
  options.block_records = 64;
  hotspots::trace::TraceWriter writer{path, options};
  writer.OnAttach();
  std::vector<hotspots::sim::ProbeEvent> events;
  for (std::uint32_t i = 0; i < 256; ++i) {
    hotspots::sim::ProbeEvent event;
    event.time = 0.01 * static_cast<double>(i);
    event.src_host = i % 17;
    event.src_address = hotspots::net::Ipv4{0xC6000000u + i * 131u};
    event.dst = hotspots::net::Ipv4{(10u << 24) | i};
    event.delivery = hotspots::topology::Delivery::kDelivered;
    events.push_back(event);
  }
  writer.OnProbeBatch(events);
  writer.Finish();
  return path;
}

TEST(TelescopeLoadCliTest, HelloRefusalExitsOneWithServerReason) {
  // Scripted harnesses branch on telescope_load's exit code, so an
  // in-band admission refusal must be a clean exit 1 carrying the
  // *server's* one-line reason — never a hang, a retry storm, or an
  // opaque socket error.  The corpus is stamped 7777 while the daemon
  // demands 12345.
  const std::string corpus = WriteRefusalCorpus(7777);
  const std::string log = Scratch("server.log");
  const std::string pid_path = Scratch("server.pid");
  ASSERT_EQ(std::system((std::string(TELESCOPE_SERVER_PATH) +
                         " --sensors 10.0.0.0/24 --expect-fingerprint 12345 > " +
                         log + " 2>&1 & echo $! > " + pid_path)
                            .c_str()),
            0);
  int pid = 0;
  {
    std::ifstream in{pid_path};
    in >> pid;
  }
  ASSERT_GT(pid, 0);

  // The daemon binds an ephemeral port and prints it; poll the log.
  int port = 0;
  for (int attempt = 0; attempt < 200 && port == 0; ++attempt) {
    std::ifstream in{log};
    std::string line;
    while (std::getline(in, line)) {
      const auto at = line.find("listening on port ");
      if (at != std::string::npos) {
        port = std::atoi(line.c_str() + at + 18);
        break;
      }
    }
    if (port == 0) ::usleep(50 * 1000);
  }
  ASSERT_GT(port, 0) << "telescope_server never reported its port";

  // --retries must NOT turn a refusal into a retry loop: the server's
  // answer is final, and the client must fail fast exactly once.
  std::string err;
  const int status = RunCapture(std::string(TELESCOPE_LOAD_PATH) + " " +
                                    corpus + " --port " +
                                    std::to_string(port) + " --retries 5",
                                err);
  ::kill(pid, SIGKILL);
  EXPECT_EQ(status, 1) << err;
  EXPECT_NE(err.find("telescope_load: "), std::string::npos) << err;
  EXPECT_NE(err.find("server refused the session"), std::string::npos) << err;
  EXPECT_NE(err.find("scenario fingerprint"), std::string::npos) << err;
  EXPECT_EQ(std::count(err.begin(), err.end(), '\n'), 1) << err;
}

TEST(PerfReportCliTest, WellFormedPairStillExitsZero) {
  // Guard against the exit-2 path over-matching: a valid timeline with no
  // --timeseries at all must keep working.
  const std::string timeline = WriteTimeline();
  std::string err;
  const int status =
      RunCapture(std::string(PERF_REPORT_PATH) + " --timeline " + timeline, err);
  EXPECT_EQ(status, 0) << err;
}

}  // namespace
