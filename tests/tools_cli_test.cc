// CLI contract pins for the tools/ binaries that scripts depend on.
// Exit codes are API: ci.sh and result-collection scripts branch on
// them, so a usage error must be 2 with a one-line diagnostic — never a
// parse backtrace or an ambiguous 1.  Covered here: perf_report's
// --timeseries argument with a missing and with a truncated sidecar
// (the ISSUE 9 satellite).
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace {

#ifndef PERF_REPORT_PATH
#error "PERF_REPORT_PATH must point at the built perf_report binary"
#endif

/// Scratch path unique to this test process: ctest -j runs each case in
/// its own process, so shared names would race.
std::string Scratch(const std::string& name) {
  return ::testing::TempDir() + "/tools_cli." + std::to_string(::getpid()) +
         "." + name;
}

/// Runs `command` with stderr captured into `err_out`; returns the exit
/// status (or -1 if the child did not exit normally).
int RunCapture(const std::string& command, std::string& err_out) {
  const std::string err_path = Scratch("stderr");
  const int raw = std::system(
      (command + " >/dev/null 2>" + err_path).c_str());
  std::ifstream err{err_path};
  err_out.assign(std::istreambuf_iterator<char>(err),
                 std::istreambuf_iterator<char>());
  if (!WIFEXITED(raw)) return -1;
  return WEXITSTATUS(raw);
}

/// A minimal but well-formed trace-event timeline, so the failure under
/// test is isolated to the --timeseries argument.
std::string WriteTimeline() {
  const std::string path = Scratch("timeline.json");
  std::ofstream out{path};
  out << R"({"traceEvents":[)"
      << R"({"ph":"B","ts":1,"tid":0,"name":"run"},)"
      << R"({"ph":"E","ts":5,"tid":0,"name":"run"}]})";
  return path;
}

TEST(PerfReportCliTest, MissingTimeseriesExitsTwoWithOneLineError) {
  const std::string timeline = WriteTimeline();
  const std::string missing = Scratch("no_such_sidecar.json");
  std::remove(missing.c_str());
  std::string err;
  const int status = RunCapture(std::string(PERF_REPORT_PATH) + " --timeline " +
                                    timeline + " --timeseries " + missing,
                                err);
  EXPECT_EQ(status, 2) << err;
  EXPECT_NE(err.find("perf_report: --timeseries"), std::string::npos) << err;
  EXPECT_NE(err.find(missing), std::string::npos) << err;
  // One line, no backtrace/partial-parse spew.
  EXPECT_EQ(std::count(err.begin(), err.end(), '\n'), 1) << err;
}

TEST(PerfReportCliTest, TruncatedTimeseriesExitsTwoWithOneLineError) {
  const std::string timeline = WriteTimeline();
  const std::string truncated = Scratch("truncated_sidecar.json");
  {
    std::ofstream out{truncated};
    out << R"([{"t": 0.5, "records": 12)";  // Cut mid-object.
  }
  std::string err;
  const int status = RunCapture(std::string(PERF_REPORT_PATH) + " --timeline " +
                                    timeline + " --timeseries " + truncated,
                                err);
  EXPECT_EQ(status, 2) << err;
  EXPECT_NE(err.find("perf_report: --timeseries"), std::string::npos) << err;
  EXPECT_EQ(std::count(err.begin(), err.end(), '\n'), 1) << err;
}

TEST(PerfReportCliTest, WellFormedPairStillExitsZero) {
  // Guard against the exit-2 path over-matching: a valid timeline with no
  // --timeseries at all must keep working.
  const std::string timeline = WriteTimeline();
  std::string err;
  const int status =
      RunCapture(std::string(PERF_REPORT_PATH) + " --timeline " + timeline, err);
  EXPECT_EQ(status, 0) << err;
}

}  // namespace
