// End-to-end detection integration: the TRW gateway and the prevalence
// aggregator wired to a live outbreak, at test scale.
#include <gtest/gtest.h>

#include "core/placement.h"
#include "core/scenario.h"
#include "detect/prevalence.h"
#include "detect/trw.h"
#include "sim/engine.h"
#include "topology/reachability.h"
#include "worms/hitlist.h"

namespace hotspots {
namespace {

/// Gateway observer: runs TRW on outbound probes of one /16 and feeds a
/// global prevalence detector from darknet space.
class GatewayObserver final : public sim::ProbeObserver {
 public:
  GatewayObserver(const sim::Population* population, net::Prefix org,
                  net::IntervalSet darknet_space)
      : population_(population), org_(org),
        darknet_space_(std::move(darknet_space)) {}

  void OnProbe(const sim::ProbeEvent& event) override {
    if (event.delivery != topology::Delivery::kDelivered) return;
    if (org_.Contains(event.src_address)) {
      const bool success =
          population_->FindPublic(event.dst) != sim::kInvalidHost;
      trw.Observe(event.time, event.src_address, success);
    }
    if (darknet_space_.Contains(event.dst)) {
      prevalence.Observe(event.time, /*content=*/42, event.src_address,
                         event.dst);
    }
  }

  const sim::Population* population_;
  net::Prefix org_;
  net::IntervalSet darknet_space_;
  detect::TrwDetector trw;
  detect::ContentPrevalenceDetector prevalence{detect::PrevalenceConfig{
      /*prevalence_threshold=*/100, /*min_sources=*/10,
      /*min_destinations=*/50}};
};

TEST(DetectIntegrationTest, TrwFlagsInfectedHostsAndPrevalenceAssembles) {
  core::ScenarioBuilder builder;
  core::ClusteredPopulationConfig config;
  config.total_hosts = 8000;
  config.slash8_clusters = 8;
  config.nonempty_slash16s = 80;
  config.seed = 0xDE7EC7;
  core::Scenario scenario = builder.BuildClustered(config);

  const auto selection = core::GreedyHitList(scenario, 10);
  worms::HitListWorm worm{selection.prefixes};
  prng::Xoshiro256 rng{4};
  const auto sensors = core::PlaceSensorPerCluster16(scenario, rng);
  net::IntervalSet darknet_space;
  for (const auto& block : sensors) darknet_space.Add(block);
  darknet_space.Build();

  GatewayObserver observer{&scenario.population, selection.prefixes.front(),
                           std::move(darknet_space)};

  const topology::Reachability reachability{nullptr, nullptr, nullptr, 0.0};
  sim::EngineConfig engine_config;
  engine_config.end_time = 400.0;
  engine_config.stop_at_infected_fraction = 0.9 * selection.coverage;
  sim::Engine engine{scenario.population, worm, reachability, nullptr,
                     engine_config};
  engine.SeedRandomInfections(15);
  const sim::RunResult result = engine.Run(observer);
  ASSERT_GT(result.final_infected, 100u);

  // TRW flagged scanners inside the monitored /16 — and every flagged
  // source really is an infected host there.
  EXPECT_GT(observer.trw.flagged_scanners(), 0u);
  std::size_t verified = 0;
  for (const auto& host : scenario.population.hosts()) {
    if (!observer.org_.Contains(host.address)) continue;
    const auto verdict = observer.trw.VerdictFor(host.address);
    if (verdict == detect::TrwVerdict::kScanner) {
      EXPECT_EQ(host.state, sim::HostState::kInfected)
          << host.address.ToString() << " flagged but never infected";
      ++verified;
    }
  }
  EXPECT_EQ(verified, observer.trw.flagged_scanners());

  // The global prevalence aggregator assembled the signature.
  EXPECT_TRUE(observer.prevalence.AlertTime(42).has_value());
  const auto stats = observer.prevalence.StatsFor(42);
  EXPECT_GE(stats.sources, 10u);
  EXPECT_GE(stats.destinations, 50u);
}

}  // namespace
}  // namespace hotspots
