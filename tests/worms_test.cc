#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "net/special_ranges.h"
#include "worms/blaster.h"
#include "worms/codered2.h"
#include "worms/hitlist.h"
#include "worms/localpref.h"
#include "worms/permutation.h"
#include "worms/slammer.h"
#include "worms/uniform.h"

namespace hotspots::worms {
namespace {

using net::Ipv4;
using net::Prefix;

sim::Host MakeHost(Ipv4 address) {
  sim::Host host;
  host.address = address;
  return host;
}

TEST(UniformWormTest, TargetsSpreadAcrossSlash8s) {
  UniformWorm worm;
  auto scanner = worm.MakeScanner(MakeHost(Ipv4{1, 2, 3, 4}), 99);
  prng::Xoshiro256 rng{1};
  std::unordered_set<std::uint32_t> slash8s;
  for (int i = 0; i < 20000; ++i) {
    slash8s.insert(scanner->NextTarget(rng).Slash8());
  }
  // 20k uniform draws should touch essentially every /8.
  EXPECT_GT(slash8s.size(), 250u);
}

TEST(UniformWormTest, DeterministicPerEntropy) {
  UniformWorm worm;
  auto s1 = worm.MakeScanner(MakeHost(Ipv4{1, 2, 3, 4}), 7);
  auto s2 = worm.MakeScanner(MakeHost(Ipv4{9, 9, 9, 9}), 7);
  prng::Xoshiro256 rng{1};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(s1->NextTarget(rng), s2->NextTarget(rng));
  }
}

TEST(SequentialSweepTest, YieldsConsecutiveAddresses) {
  SequentialSweep sweep{Ipv4{10, 0, 0, 254}};
  EXPECT_EQ(sweep.Next(), Ipv4(10, 0, 0, 254));
  EXPECT_EQ(sweep.Next(), Ipv4(10, 0, 0, 255));
  EXPECT_EQ(sweep.Next(), Ipv4(10, 0, 1, 0));
}

TEST(SequentialSweepTest, SkipsNonTargetableSpace) {
  SequentialSweep sweep{Ipv4{126, 255, 255, 255}};
  EXPECT_EQ(sweep.Next(), Ipv4(126, 255, 255, 255));
  // 127/8 is loopback: the sweep must hop over it.
  EXPECT_EQ(sweep.Next(), Ipv4(128, 0, 0, 0));
}

TEST(SequentialSweepTest, WrapsAroundTopOfSpace) {
  SequentialSweep sweep{Ipv4{223, 255, 255, 255}};
  EXPECT_EQ(sweep.Next(), Ipv4(223, 255, 255, 255));
  // 224/4 and 240/4 are non-targetable, 0/8 also: wrap to 1.0.0.0.
  EXPECT_EQ(sweep.Next(), Ipv4(1, 0, 0, 0));
}

TEST(BlasterWormTest, StartAddressForSeedIsDeterministicDottedHost) {
  const Ipv4 start = BlasterWorm::StartAddressForSeed(30'000);
  EXPECT_EQ(start, BlasterWorm::StartAddressForSeed(30'000));
  EXPECT_EQ(start.octet(3), 0u);             // Always a /24 base.
  EXPECT_GE(start.octet(0), 1u);             // A = rand()%254 + 1.
  EXPECT_LE(start.octet(0), 254u);
  EXPECT_LE(start.octet(1), 253u);           // B = rand()%254.
  EXPECT_LE(start.octet(2), 253u);
}

TEST(BlasterWormTest, BootSeededStartsCollideFarMoreThanUniformSeeds) {
  // The whole Blaster hotspot story: boot-time ticks are confined to a few
  // thousand plausible values, so independently infected hosts repeatedly
  // draw the *same* seed and therefore the same starting /24 — something
  // that essentially never happens with well-seeded instances.
  prng::Xoshiro256 rng{42};
  const prng::BootEntropyModel boot = prng::BootEntropyModel::Paper();
  constexpr int kHosts = 5000;
  std::unordered_set<std::uint32_t> boot_starts;
  std::unordered_set<std::uint32_t> uniform_starts;
  for (int i = 0; i < kHosts; ++i) {
    boot_starts.insert(
        BlasterWorm::StartAddressForSeed(boot.SampleTickCount(rng))
            .Slash24());
    uniform_starts.insert(
        BlasterWorm::StartAddressForSeed(rng.NextU32()).Slash24());
  }
  EXPECT_LT(boot_starts.size(), kHosts * 9 / 10);
  EXPECT_GT(uniform_starts.size(), kHosts * 95 / 100);
  EXPECT_LT(boot_starts.size() + 500, uniform_starts.size());
}

TEST(BlasterWormTest, ScannerSweepsSequentiallyFromSeededStart) {
  BlasterWorm worm = BlasterWorm::Paper();
  auto scanner = worm.MakeScanner(MakeHost(Ipv4{30, 40, 50, 60}), 5);
  prng::Xoshiro256 rng{1};
  const Ipv4 first = scanner->NextTarget(rng);
  const Ipv4 second = scanner->NextTarget(rng);
  // Sequential property (no skip inside normal space).
  EXPECT_EQ(second.value(), first.value() + 1);
}

TEST(BlasterWormTest, LocalStartStaysInOwnSlash16) {
  BlasterWorm worm = BlasterWorm::Paper();
  prng::MsvcRand rand{123};
  const Ipv4 own{30, 40, 50, 60};
  const Ipv4 start = worm.LocalStartAddress(own, rand);
  EXPECT_EQ(start.octet(0), own.octet(0));
  EXPECT_EQ(start.octet(1), own.octet(1));
  EXPECT_LE(start.octet(2), own.octet(2));
}

TEST(SlammerWormTest, ScannerFollowsLcgStateSequence) {
  auto scanner = SlammerWorm::MakeFixedScanner(1, 0xABCDEF01u);
  prng::Xoshiro256 rng{1};
  prng::Lcg reference{SlammerLcgParams(1), 0xABCDEF01u};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(scanner->NextTarget(rng).value(), reference.Next());
  }
}

TEST(SlammerWormTest, ScannerStaysOnItsCycle) {
  const auto analyzer = SlammerCycleAnalyzer(2);
  const std::uint32_t seed = 0x1234u;
  auto scanner = SlammerWorm::MakeFixedScanner(2, seed);
  prng::Xoshiro256 rng{1};
  const auto seed_id = analyzer.IdOf(SlammerLcgParams(2).Step(seed));
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(analyzer.IdOf(scanner->NextTarget(rng).value()), seed_id);
  }
}

TEST(SlammerWormTest, RejectsBadDllVersionAndWeights) {
  EXPECT_THROW((void)SlammerLcgParams(-1), std::invalid_argument);
  EXPECT_THROW((void)SlammerLcgParams(3), std::invalid_argument);
  EXPECT_THROW(SlammerWorm({-1, 1, 1}), std::invalid_argument);
  EXPECT_THROW(SlammerWorm({0, 0, 0}), std::invalid_argument);
}

TEST(CodeRed2WormTest, MaskProbabilitiesMatchSpec) {
  // 1/2 same /8, 3/8 same /16 (within the /8), 1/8 fully random.
  CodeRed2Worm worm;
  const Ipv4 own{130, 60, 7, 9};
  auto scanner = worm.MakeQuarantineScanner(own, 0xBEEF);
  prng::Xoshiro256 rng{1};
  constexpr int kDraws = 200000;
  int same16 = 0;
  int same8 = 0;
  for (int i = 0; i < kDraws; ++i) {
    const Ipv4 target = scanner->NextTarget(rng);
    if (target.Slash16() == own.Slash16()) ++same16;
    if (target.Slash8() == own.Slash8()) ++same8;
  }
  // Rejected candidates (non-targetable space, hit only via the 1/8 random
  // arm: 34 of 256 /8s) are redrawn, renormalizing the accepted mix by
  // 1/(1 − (1/8)(34/256)) — exactly like the real worm's retry loop.
  const double renorm = 1.0 / (1.0 - (1.0 / 8.0) * (34.0 / 256.0));
  // Same /16: 3/8 directly, plus the /8 arm landing in the own /16 (1/256).
  EXPECT_NEAR(same16 / static_cast<double>(kDraws),
              (3.0 / 8.0 + (1.0 / 2.0) / 256.0) * renorm, 0.005);
  // Same /8: 1/2 + 3/8 (the /16 arm is inside the /8).
  EXPECT_NEAR(same8 / static_cast<double>(kDraws), (7.0 / 8.0) * renorm,
              0.005);
}

TEST(CodeRed2WormTest, NeverTargetsSelfOrExcludedSpace) {
  CodeRed2Worm worm;
  const Ipv4 own{192, 168, 0, 2};
  auto scanner = worm.MakeQuarantineScanner(own, 7);
  prng::Xoshiro256 rng{1};
  for (int i = 0; i < 100000; ++i) {
    const Ipv4 target = scanner->NextTarget(rng);
    EXPECT_NE(target, own);
    EXPECT_FALSE(net::IsNonTargetable(target))
        << "targeted " << target.ToString();
  }
}

TEST(CodeRed2WormTest, NattedHostLeaksInto192Slash8) {
  // The Section 4.3.1 mechanism: a CRII host at 192.168.0.2 prefers 192/8,
  // and only 1/256 of those probes stay inside 192.168/16.
  CodeRed2Worm worm;
  auto scanner = worm.MakeQuarantineScanner(Ipv4{192, 168, 0, 2}, 99);
  prng::Xoshiro256 rng{1};
  constexpr int kDraws = 100000;
  int in_192 = 0;
  int in_private = 0;
  for (int i = 0; i < kDraws; ++i) {
    const Ipv4 target = scanner->NextTarget(rng);
    if (target.Slash8() == 192u) ++in_192;
    if (net::kPrivate192.Contains(target)) ++in_private;
  }
  EXPECT_GT(in_192, kDraws / 2);               // ≈ 7/8 of probes.
  EXPECT_LT(in_private, kDraws / 2);           // Most of them leak.
  EXPECT_GT(in_private, kDraws / 4);           // The 3/8 same-/16 arm stays.
}

TEST(CodeRed2WormTest, ConfigValidation) {
  EXPECT_THROW(CodeRed2Worm({4, 3, 2}), std::invalid_argument);
  EXPECT_THROW(CodeRed2Worm({-1, 8, 1}), std::invalid_argument);
  EXPECT_NO_THROW(CodeRed2Worm({8, 0, 0}));
}

TEST(HitListWormTest, TargetsOnlyCoveredSpace) {
  const std::vector<Prefix> list = {Prefix{Ipv4{60, 1, 0, 0}, 16},
                                    Prefix{Ipv4{80, 2, 0, 0}, 16}};
  HitListWorm worm{list};
  EXPECT_EQ(worm.CoveredAddresses(), 2u * 65536u);
  auto scanner = worm.MakeScanner(MakeHost(Ipv4{1, 1, 1, 1}), 3);
  prng::Xoshiro256 rng{1};
  int first = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const Ipv4 target = scanner->NextTarget(rng);
    const bool in_first = list[0].Contains(target);
    const bool in_second = list[1].Contains(target);
    ASSERT_TRUE(in_first || in_second) << target.ToString();
    if (in_first) ++first;
  }
  // Equal-size prefixes split the probes evenly.
  EXPECT_NEAR(first / static_cast<double>(kDraws), 0.5, 0.02);
}

TEST(HitListWormTest, WeightsPrefixesBySize) {
  const std::vector<Prefix> list = {Prefix{Ipv4{60, 1, 0, 0}, 16},
                                    Prefix{Ipv4{80, 2, 4, 0}, 24}};
  HitListWorm worm{list};
  auto scanner = worm.MakeScanner(MakeHost(Ipv4{1, 1, 1, 1}), 3);
  prng::Xoshiro256 rng{1};
  int small = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (list[1].Contains(scanner->NextTarget(rng))) ++small;
  }
  EXPECT_NEAR(small / static_cast<double>(kDraws), 256.0 / 65792.0, 0.003);
}

TEST(HitListWormTest, EmptyListRejected) {
  EXPECT_THROW(HitListWorm{std::vector<Prefix>{}}, std::invalid_argument);
}

TEST(LocalPreferenceWormTest, HonorsConfiguredMix) {
  LocalPreferenceWorm worm{LocalPreferenceConfig{0.25, 0.25, 0.25}};
  const Ipv4 own{50, 60, 70, 80};
  auto scanner = worm.MakeScanner(MakeHost(own), 11);
  prng::Xoshiro256 rng{1};
  constexpr int kDraws = 200000;
  int same24 = 0;
  int same16 = 0;
  int same8 = 0;
  for (int i = 0; i < kDraws; ++i) {
    const Ipv4 target = scanner->NextTarget(rng);
    if (target.Slash24() == own.Slash24()) ++same24;
    if (target.Slash16() == own.Slash16()) ++same16;
    if (target.Slash8() == own.Slash8()) ++same8;
  }
  EXPECT_NEAR(same24 / static_cast<double>(kDraws), 0.25, 0.01);
  EXPECT_NEAR(same16 / static_cast<double>(kDraws), 0.50, 0.01);
  EXPECT_NEAR(same8 / static_cast<double>(kDraws), 0.75, 0.01);
}

TEST(LocalPreferenceWormTest, ValidatesProbabilities) {
  EXPECT_THROW(LocalPreferenceWorm({0.6, 0.6, 0.0}), std::invalid_argument);
  EXPECT_THROW(LocalPreferenceWorm({-0.1, 0.0, 0.0}), std::invalid_argument);
}

TEST(FeistelPermutationTest, BijectiveOnSample) {
  const FeistelPermutation permutation{0xFEEDull};
  std::unordered_set<std::uint32_t> images;
  for (std::uint32_t i = 0; i < 100000; ++i) {
    const std::uint32_t image = permutation.Forward(i);
    EXPECT_TRUE(images.insert(image).second);
    EXPECT_EQ(permutation.Backward(image), i);
  }
}

TEST(FeistelPermutationTest, DifferentKeysDiffer) {
  const FeistelPermutation p1{1};
  const FeistelPermutation p2{2};
  int same = 0;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    if (p1.Forward(i) == p2.Forward(i)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(PermutationWormTest, InstancesPartitionTheSpace) {
  PermutationWorm worm{0xABCDull};
  auto s1 = worm.MakeScanner(MakeHost(Ipv4{1, 1, 1, 1}), 1);
  auto s2 = worm.MakeScanner(MakeHost(Ipv4{2, 2, 2, 2}), 2);
  prng::Xoshiro256 rng{1};
  std::unordered_set<std::uint32_t> seen;
  // Two instances walking disjoint segments of the same permutation must
  // not collide over short horizons.
  for (int i = 0; i < 20000; ++i) {
    EXPECT_TRUE(seen.insert(s1->NextTarget(rng).value()).second);
    EXPECT_TRUE(seen.insert(s2->NextTarget(rng).value()).second);
  }
}

}  // namespace
}  // namespace hotspots::worms
