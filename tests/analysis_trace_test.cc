// Offline analysis over captured traces: BlockHistogramObserver binning
// semantics (raw vs delivered-only vs unique-source counting, empty-layout
// rejection) and AnalyzeTraceUniformity's verdicts on synthetic traces
// with known uniformity structure.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/trace_uniformity.h"
#include "prng/splitmix.h"
#include "trace/writer.h"

namespace hotspots::analysis {
namespace {

using net::Ipv4;
using net::Prefix;

sim::ProbeEvent Event(std::uint32_t dst, std::uint32_t src,
                      topology::Delivery delivery) {
  sim::ProbeEvent event;
  event.dst = Ipv4{dst};
  event.src_address = Ipv4{src};
  event.delivery = delivery;
  return event;
}

std::vector<Prefix> Layout() {
  // Four disjoint /24s.
  return {Prefix{Ipv4{10, 0, 0, 0}, 24}, Prefix{Ipv4{10, 0, 1, 0}, 24},
          Prefix{Ipv4{10, 0, 2, 0}, 24}, Prefix{Ipv4{10, 0, 3, 0}, 24}};
}

TEST(BlockHistogramObserverTest, RejectsEmptyLayout) {
  EXPECT_THROW(BlockHistogramObserver({}, {}), std::invalid_argument);
}

TEST(BlockHistogramObserverTest, BinsByBlockAndCountsModes) {
  const auto layout = Layout();
  BlockHistogramObserver raw{layout, {}};
  BlockHistogramOptions delivered_options;
  delivered_options.delivered_only = true;
  BlockHistogramObserver delivered{layout, delivered_options};
  BlockHistogramOptions unique_options;
  unique_options.unique_sources = true;
  BlockHistogramObserver unique{layout, unique_options};

  const std::uint32_t base = Ipv4{10, 0, 0, 0}.value();
  const std::vector<sim::ProbeEvent> events = {
      // Block 0: two probes, same source, one filtered.
      Event(base + 1, 500, topology::Delivery::kDelivered),
      Event(base + 2, 500, topology::Delivery::kIngressFiltered),
      // Block 2: three probes, two sources.
      Event(base + 2 * 256 + 9, 600, topology::Delivery::kDelivered),
      Event(base + 2 * 256 + 9, 601, topology::Delivery::kDelivered),
      Event(base + 2 * 256 + 10, 600, topology::Delivery::kNetworkLoss),
      // Outside every block: seen but not binned.
      Event(Ipv4{192, 168, 0, 1}.value(), 700,
            topology::Delivery::kDelivered),
  };
  for (const sim::ProbeEvent& event : events) {
    raw.OnProbe(event);
    delivered.OnProbe(event);
    unique.OnProbe(event);
  }

  EXPECT_EQ(raw.Counts(), (std::vector<std::uint64_t>{2, 0, 3, 0}));
  EXPECT_EQ(raw.probes_seen(), 6u);
  EXPECT_EQ(raw.probes_binned(), 5u);
  // Delivered-only drops the filtered and the lost probe.
  EXPECT_EQ(delivered.Counts(), (std::vector<std::uint64_t>{1, 0, 2, 0}));
  // Unique sources: one in block 0, two in block 2.
  EXPECT_EQ(unique.Counts(), (std::vector<std::uint64_t>{1, 0, 2, 0}));
}

class AnalyzeTraceUniformityTest : public ::testing::Test {
 protected:
  /// Writes a trace aiming `spike_weight` of ~40k probes at block 0 and
  /// spreading the rest uniformly over the whole layout.
  std::string WriteTrace(const std::string& name, double spike_weight) {
    const std::string path = ::testing::TempDir() + "/" + name + ".trace";
    trace::TraceWriter writer{path, {}};
    writer.OnAttach();
    prng::SplitMix64 rng{0xD1CE};
    const auto layout = Layout();
    for (int i = 0; i < 40'000; ++i) {
      const std::uint64_t draw = rng.Next();
      const double coin =
          static_cast<double>(draw >> 11) * 0x1.0p-53;
      const std::size_t block =
          coin < spike_weight ? 0 : (draw % layout.size());
      const std::uint32_t dst =
          layout[block].first().value() +
          static_cast<std::uint32_t>((draw >> 32) % 256);
      writer.OnProbe(Event(dst, static_cast<std::uint32_t>(draw >> 13),
                           topology::Delivery::kDelivered));
    }
    writer.Finish();
    return path;
  }
};

TEST_F(AnalyzeTraceUniformityTest, UniformTraceLooksUniform) {
  const std::string path = WriteTrace("uniform", 0.0);
  const auto layout = Layout();
  const TraceUniformity result = AnalyzeTraceUniformity(path, layout);
  EXPECT_EQ(result.records, 40'000u);
  EXPECT_EQ(result.binned, 40'000u);
  ASSERT_EQ(result.per_block.size(), layout.size());
  EXPECT_FALSE(result.report.LooksNonUniform());
  EXPECT_LT(result.report.gini, 0.05);
  std::remove(path.c_str());
}

TEST_F(AnalyzeTraceUniformityTest, SpikedTraceLooksNonUniform) {
  // ~70% of the mass on one of four blocks: a gross hotspot.
  const std::string path = WriteTrace("spiked", 0.6);
  const auto layout = Layout();
  const TraceUniformity result = AnalyzeTraceUniformity(path, layout);
  EXPECT_EQ(result.records, 40'000u);
  ASSERT_EQ(result.per_block.size(), layout.size());
  EXPECT_GT(result.per_block[0], result.per_block[1] * 3);
  EXPECT_TRUE(result.report.LooksNonUniform());
  EXPECT_GT(result.report.peak_to_mean, 2.0);
  std::remove(path.c_str());
}

TEST_F(AnalyzeTraceUniformityTest, EmptyLayoutThrows) {
  const std::string path = WriteTrace("nolayout", 0.0);
  EXPECT_THROW((void)AnalyzeTraceUniformity(path, {}),
               std::invalid_argument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hotspots::analysis
