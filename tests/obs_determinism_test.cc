// Pins the PR's central invariant: observability never perturbs the
// simulation.  Metrics flow strictly sim → registry and stage timers only
// read clocks, so an engine run must be bit-identical — same series, same
// delivery counts, same sensor state — with timers on or off and with a
// metrics-fed telescope attached or a NullObserver.
#include <gtest/gtest.h>

#include <cstring>

#include "core/scenario.h"
#include "obs/metrics.h"
#include "obs/stage_timer.h"
#include "sim/engine.h"
#include "sim/observer.h"
#include "telescope/telescope.h"
#include "topology/reachability.h"
#include "worms/hitlist.h"

namespace hotspots {
namespace {

/// FNV-1a over the complete externally visible run output (mirrors
/// bench/micro_hotpath.cc's fingerprint so regressions here predict gate
/// failures there).
struct Fingerprint {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  void Mix(std::uint64_t word) {
    for (int shift = 0; shift < 64; shift += 8) {
      hash ^= (word >> shift) & 0xFF;
      hash *= 0x100000001b3ull;
    }
  }
  void MixDouble(double value) {
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof bits);
    Mix(bits);
  }
};

struct Fixture {
  core::Scenario scenario;
  std::vector<net::Prefix> sensor_blocks;

  Fixture() {
    core::ScenarioBuilder builder;
    core::ClusteredPopulationConfig config;
    config.total_hosts = 4000;
    config.nonempty_slash16s = 120;
    config.slash8_clusters = 12;
    config.nat_fraction = 0.15;
    config.nat_site_mode = core::NatSiteMode::kSharedSite;
    config.seed = 0x0B5;
    scenario = builder.BuildClustered(config);
    // One /24 sensor next to every 8th populated /16.
    for (std::size_t i = 0; i < scenario.slash16_clusters.size(); i += 8) {
      const auto& cluster = scenario.slash16_clusters[i];
      const std::uint32_t s24 = (cluster.prefix.first().value() >> 8) | 0xFE;
      if (scenario.occupied_slash24s.count(s24) != 0) continue;
      sensor_blocks.push_back(net::Prefix{net::Ipv4{s24 << 8}, 24});
    }
  }

  [[nodiscard]] telescope::Telescope MakeTelescope() const {
    telescope::SensorOptions options;
    options.track_unique_sources = true;
    options.track_per_slash24 = true;
    options.alert_threshold = 5;
    telescope::Telescope scope{options};
    int id = 0;
    for (const auto& block : sensor_blocks) {
      scope.AddSensor("S" + std::to_string(id++), block);
    }
    scope.Build();
    return scope;
  }

  /// Runs one deterministic outbreak and fingerprints everything externally
  /// visible.  `use_telescope` attaches the full sensor fleet (whose
  /// observation path folds metrics into the global registry);
  /// `mix_sensors` additionally folds the sensor state into the hash (only
  /// meaningful with the telescope attached).
  [[nodiscard]] std::uint64_t RunAndFingerprint(bool use_telescope,
                                                bool mix_sensors = true) const {
    const auto selection = core::GreedyHitList(scenario, 40);
    worms::HitListWorm worm{selection.prefixes};
    const topology::Reachability reachability{
        nullptr, scenario.nats.size() > 0 ? &scenario.nats : nullptr, nullptr,
        0.001};
    sim::Population population = scenario.population;
    sim::EngineConfig config;
    config.scan_rate = 10.0;
    config.end_time = 400.0;
    config.sample_interval = 10.0;
    config.seed = 0xBEEF;
    config.max_probes = 2'000'000;
    sim::Engine engine{population, worm, reachability,
                       scenario.nats.size() > 0 ? &scenario.nats : nullptr,
                       config};
    engine.SeedRandomInfections(10);

    Fingerprint fingerprint;
    telescope::Telescope scope = MakeTelescope();
    sim::NullObserver null_observer;
    const sim::RunResult result =
        use_telescope ? engine.Run(scope) : engine.Run(null_observer);

    for (const auto& point : result.series) {
      fingerprint.MixDouble(point.time);
      fingerprint.Mix(point.infected);
      fingerprint.Mix(point.probes);
    }
    for (const std::uint64_t count : result.delivery_counts) {
      fingerprint.Mix(count);
    }
    fingerprint.Mix(result.total_probes);
    fingerprint.Mix(result.final_infected);
    if (use_telescope && mix_sensors) {
      for (std::size_t i = 0; i < scope.size(); ++i) {
        const auto& sensor = scope.sensor(static_cast<int>(i));
        fingerprint.Mix(sensor.probe_count());
        fingerprint.Mix(sensor.UniqueSourceCount());
        fingerprint.MixDouble(sensor.alert_time().value_or(-1.0));
      }
    }
    return fingerprint.hash;
  }
};

class ObsDeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override { obs::SetStageTimersForTesting(-1); }
  Fixture fixture_;
};

TEST_F(ObsDeterminismTest, FingerprintIdenticalWithTimersOnAndOff) {
  obs::SetStageTimersForTesting(0);
  ASSERT_FALSE(obs::StageTimersEnabled());
  const std::uint64_t off = fixture_.RunAndFingerprint(true);

  obs::SetStageTimersForTesting(1);
  ASSERT_TRUE(obs::StageTimersEnabled());
  const std::uint64_t on = fixture_.RunAndFingerprint(true);

  EXPECT_EQ(off, on) << "stage timers changed simulation output";
}

TEST_F(ObsDeterminismTest, FingerprintIdenticalWithMetricsSinkVsNullObserver) {
  obs::SetStageTimersForTesting(0);
  // Same run repeated must be bit-identical (the baseline for the rest).
  EXPECT_EQ(fixture_.RunAndFingerprint(false), fixture_.RunAndFingerprint(false))
      << "repeat runs must be deterministic";

  // The engine-visible output (series + delivery counts, sensor state
  // excluded from the hash) must not depend on whether a metrics-folding
  // telescope or the NullObserver consumed the probe stream.
  const std::uint64_t with_null = fixture_.RunAndFingerprint(false);
  const std::uint64_t with_scope =
      fixture_.RunAndFingerprint(true, /*mix_sensors=*/false);
  EXPECT_EQ(with_null, with_scope)
      << "attaching the telescope changed engine output";
}

TEST_F(ObsDeterminismTest, MetricsFoldMatchesRunAccounting) {
  // The registry's engine counters are fed from the same accounting the
  // RunResult reports, so after a run on a clean registry the counter
  // deltas must reproduce the result exactly.
  obs::SetStageTimersForTesting(0);
  auto& registry = obs::Registry::Global();
  const std::uint64_t probes_before =
      registry.GetCounter("engine.probes").Value();
  const std::uint64_t runs_before = registry.GetCounter("engine.runs").Value();

  const auto selection = core::GreedyHitList(fixture_.scenario, 40);
  worms::HitListWorm worm{selection.prefixes};
  const topology::Reachability reachability{nullptr, nullptr, nullptr, 0.0};
  sim::Population population = fixture_.scenario.population;
  sim::EngineConfig config;
  config.scan_rate = 10.0;
  config.end_time = 200.0;
  config.seed = 0xF00;
  sim::Engine engine{population, worm, reachability, nullptr, config};
  engine.SeedRandomInfections(5);
  const sim::RunResult result = engine.Run();

  EXPECT_EQ(registry.GetCounter("engine.probes").Value() - probes_before,
            result.total_probes);
  EXPECT_EQ(registry.GetCounter("engine.runs").Value() - runs_before, 1u);
  std::uint64_t delivered_breakdown = 0;
  for (const char* name :
       {"engine.delivery.delivered", "engine.delivery.non_targetable",
        "engine.delivery.nat_unroutable", "engine.delivery.ingress_filtered",
        "engine.delivery.perimeter_filtered",
        "engine.delivery.network_loss"}) {
    delivered_breakdown += registry.GetCounter(name).Value();
  }
  // Across the whole process every probe lands in exactly one verdict
  // bucket, so the breakdown total matches the probe total.
  EXPECT_EQ(delivered_breakdown, registry.GetCounter("engine.probes").Value());
}

}  // namespace
}  // namespace hotspots
