// Parameterized property sweeps across the library's main axes:
//   * every Worm honours the scanner contract (determinism per entropy,
//     valid targets, stable metadata);
//   * local-preference strength maps monotonically onto measured
//     non-uniformity;
//   * the scenario builder upholds its structural invariants across sizes
//     and seeds.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "analysis/uniformity.h"
#include "core/scenario.h"
#include "net/special_ranges.h"
#include "telescope/ims.h"
#include "worms/blaster.h"
#include "worms/codered1.h"
#include "worms/codered2.h"
#include "worms/hitlist.h"
#include "worms/localpref.h"
#include "worms/permutation.h"
#include "worms/slammer.h"
#include "worms/uniform.h"
#include "worms/witty.h"

namespace hotspots {
namespace {

using net::Ipv4;
using net::Prefix;

// ---------------------------------------------------------------------
// Worm contract sweep.
// ---------------------------------------------------------------------

using WormFactory = std::function<std::unique_ptr<sim::Worm>()>;

struct WormCase {
  std::string label;
  WormFactory make;
};

class WormContractTest : public ::testing::TestWithParam<WormCase> {};

TEST_P(WormContractTest, NameIsStableAndNonEmpty) {
  const auto worm = GetParam().make();
  EXPECT_FALSE(worm->name().empty());
  EXPECT_EQ(worm->name(), GetParam().make()->name());
}

TEST_P(WormContractTest, ScannerIsDeterministicPerEntropy) {
  const auto worm = GetParam().make();
  sim::Host host;
  host.address = Ipv4{141, 20, 30, 40};
  auto a = worm->MakeScanner(host, 0xFEED);
  auto b = worm->MakeScanner(host, 0xFEED);
  prng::Xoshiro256 rng_a{1};
  prng::Xoshiro256 rng_b{1};
  for (int i = 0; i < 2000; ++i) {
    ASSERT_EQ(a->NextTarget(rng_a), b->NextTarget(rng_b))
        << GetParam().label << " diverged at probe " << i;
  }
}

TEST_P(WormContractTest, ManyProbesNeverCrash) {
  const auto worm = GetParam().make();
  sim::Host host;
  host.address = Ipv4{60, 61, 62, 63};
  auto scanner = worm->MakeScanner(host, 99);
  prng::Xoshiro256 rng{1};
  std::uint64_t accumulator = 0;
  for (int i = 0; i < 100'000; ++i) {
    accumulator += scanner->NextTarget(rng).value();
  }
  EXPECT_NE(accumulator, 0u);
}

TEST_P(WormContractTest, NattedHostContextAccepted) {
  const auto worm = GetParam().make();
  sim::Host host;
  host.address = Ipv4{192, 168, 0, 2};
  host.nat_site = 0;
  auto scanner = worm->MakeScanner(host, 3);
  prng::Xoshiro256 rng{1};
  for (int i = 0; i < 1000; ++i) {
    (void)scanner->NextTarget(rng);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorms, WormContractTest,
    ::testing::Values(
        WormCase{"uniform", [] { return std::unique_ptr<sim::Worm>(
                                     new worms::UniformWorm); }},
        WormCase{"blaster",
                 [] {
                   return std::unique_ptr<sim::Worm>(new worms::BlasterWorm(
                       worms::BlasterWorm::Paper()));
                 }},
        WormCase{"slammer", [] { return std::unique_ptr<sim::Worm>(
                                     new worms::SlammerWorm); }},
        WormCase{"codered1", [] { return std::unique_ptr<sim::Worm>(
                                      new worms::CodeRed1Worm(true)); }},
        WormCase{"codered2", [] { return std::unique_ptr<sim::Worm>(
                                      new worms::CodeRed2Worm); }},
        WormCase{"witty", [] { return std::unique_ptr<sim::Worm>(
                                   new worms::WittyWorm); }},
        WormCase{"hitlist",
                 [] {
                   return std::unique_ptr<sim::Worm>(new worms::HitListWorm(
                       {Prefix{Ipv4{60, 1, 0, 0}, 16},
                        Prefix{Ipv4{80, 0, 0, 0}, 12}}));
                 }},
        WormCase{"localpref",
                 [] {
                   return std::unique_ptr<sim::Worm>(
                       new worms::LocalPreferenceWorm(
                           worms::LocalPreferenceConfig{0.3, 0.3, 0.1}));
                 }},
        WormCase{"permutation", [] {
                   return std::unique_ptr<sim::Worm>(
                       new worms::PermutationWorm(0xFEED));
                 }}),
    [](const ::testing::TestParamInfo<WormCase>& info) {
      return info.param.label;
    });

// ---------------------------------------------------------------------
// Locality-strength sweep: stronger preference ⇒ more concentrated mass.
// ---------------------------------------------------------------------

class LocalityStrengthTest : public ::testing::TestWithParam<double> {};

double MeasureSlash16Gini(double p_slash16) {
  worms::LocalPreferenceWorm worm{
      worms::LocalPreferenceConfig{0.0, p_slash16, 0.0}};
  sim::Host host;
  host.address = Ipv4{77, 88, 9, 9};
  auto scanner = worm.MakeScanner(host, 5);
  prng::Xoshiro256 rng{1};
  std::vector<std::uint64_t> per_slash16(1u << 16, 0);
  for (int i = 0; i < 300'000; ++i) {
    ++per_slash16[scanner->NextTarget(rng).Slash16()];
  }
  return analysis::GiniCoefficient(per_slash16);
}

TEST_P(LocalityStrengthTest, GiniGrowsWithLocality) {
  const double p = GetParam();
  const double lower = MeasureSlash16Gini(p);
  const double higher = MeasureSlash16Gini(p + 0.2);
  EXPECT_LT(lower, higher)
      << "locality " << p << " vs " << p + 0.2;
}

INSTANTIATE_TEST_SUITE_P(Sweep, LocalityStrengthTest,
                         ::testing::Values(0.0, 0.2, 0.4, 0.6));

// ---------------------------------------------------------------------
// Scenario-builder invariants across configurations.
// ---------------------------------------------------------------------

struct ScenarioCase {
  std::uint32_t hosts;
  int slash8s;
  int slash16s;
  double nat_fraction;
  std::uint64_t seed;
};

class ScenarioInvariantsTest
    : public ::testing::TestWithParam<ScenarioCase> {};

TEST_P(ScenarioInvariantsTest, StructureHolds) {
  const ScenarioCase& param = GetParam();
  core::ScenarioBuilder builder;
  for (const auto& block : telescope::ImsBlocks()) builder.Avoid(block.block);
  core::ClusteredPopulationConfig config;
  config.total_hosts = param.hosts;
  config.slash8_clusters = param.slash8s;
  config.nonempty_slash16s = param.slash16s;
  config.nat_fraction = param.nat_fraction;
  config.seed = param.seed;
  const core::Scenario scenario = builder.BuildClustered(config);

  // Exact totals.
  EXPECT_EQ(scenario.population.size(), param.hosts);
  EXPECT_EQ(scenario.public_hosts + scenario.natted_hosts, param.hosts);

  // Cluster accounting.
  std::uint64_t in_clusters = 0;
  for (const auto& cluster : scenario.slash16_clusters) {
    in_clusters += cluster.hosts;
    EXPECT_GT(cluster.hosts, 0u);
  }
  EXPECT_EQ(in_clusters, scenario.public_hosts);
  EXPECT_LE(scenario.slash16_clusters.size(),
            static_cast<std::size_t>(param.slash16s));

  // Every public host sits inside a declared /16 cluster and outside the
  // avoided sensor space; every NATed host is in 192.168/16.
  net::IntervalSet cluster_space;
  for (const auto& cluster : scenario.slash16_clusters) {
    cluster_space.Add(cluster.prefix);
  }
  cluster_space.Build();
  for (const auto& host : scenario.population.hosts()) {
    if (host.behind_nat()) {
      EXPECT_TRUE(net::kPrivate192.Contains(host.address));
      continue;
    }
    EXPECT_TRUE(cluster_space.Contains(host.address))
        << host.address.ToString();
    EXPECT_FALSE(net::IsPrivate(host.address));
    EXPECT_FALSE(net::IsNonTargetable(host.address));
    EXPECT_TRUE(scenario.occupied_slash24s.contains(
        host.address.value() >> 8));
  }

  // /8 clusters are sorted by descending host mass.
  EXPECT_LE(scenario.slash8_clusters.size(),
            static_cast<std::size_t>(param.slash8s));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScenarioInvariantsTest,
    ::testing::Values(ScenarioCase{1000, 4, 32, 0.0, 1},
                      ScenarioCase{5000, 8, 200, 0.0, 2},
                      ScenarioCase{5000, 8, 200, 0.15, 3},
                      ScenarioCase{20'000, 16, 400, 0.3, 4},
                      ScenarioCase{3000, 47, 2000, 0.0, 5},
                      ScenarioCase{9000, 12, 64, 0.5, 6}));

}  // namespace
}  // namespace hotspots
