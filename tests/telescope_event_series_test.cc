#include "telescope/event_series.h"

#include <gtest/gtest.h>
#include <cmath>

#include "prng/xoshiro.h"

namespace hotspots::telescope {
namespace {

TEST(EventSeriesTest, ValidatesConstruction) {
  EXPECT_THROW((EventSeries{0.0, 10.0}), std::invalid_argument);
  EXPECT_THROW((EventSeries{1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW((EventSeries{10.0, 5.0}), std::invalid_argument);
}

TEST(EventSeriesTest, BucketsEventsByTime) {
  EventSeries series{10.0, 100.0};
  series.Record(0.0);
  series.Record(9.99);
  series.Record(10.0);
  series.Record(95.0);
  ASSERT_EQ(series.buckets().size(), 10u);
  EXPECT_EQ(series.buckets()[0], 2u);
  EXPECT_EQ(series.buckets()[1], 1u);
  EXPECT_EQ(series.buckets()[9], 1u);
  EXPECT_EQ(series.total(), 4u);
}

TEST(EventSeriesTest, LateEventsClampToLastBucket) {
  EventSeries series{1.0, 5.0};
  series.Record(1e9);
  EXPECT_EQ(series.buckets().back(), 1u);
}

TEST(EventSeriesTest, NegativeTimeRejected) {
  EventSeries series{1.0, 5.0};
  EXPECT_THROW(series.Record(-0.1), std::invalid_argument);
}

TEST(EventSeriesTest, SteadyTrafficHasLowDispersion) {
  EventSeries series{1.0, 100.0};
  for (int t = 0; t < 100; ++t) {
    for (int k = 0; k < 10; ++k) {
      series.Record(t + 0.05 * k);
    }
  }
  const BurstReport report = series.Summarize();
  EXPECT_DOUBLE_EQ(report.mean_rate, 10.0);
  EXPECT_DOUBLE_EQ(report.peak_to_mean, 1.0);
  EXPECT_DOUBLE_EQ(report.silent_fraction, 0.0);
  EXPECT_NEAR(report.dispersion, 0.0, 1e-12);
}

TEST(EventSeriesTest, BurstTrafficHasHighDispersion) {
  EventSeries series{1.0, 100.0};
  for (int k = 0; k < 1000; ++k) series.Record(42.5);  // One huge burst.
  const BurstReport report = series.Summarize();
  EXPECT_DOUBLE_EQ(report.peak_rate, 1000.0);
  EXPECT_DOUBLE_EQ(report.peak_to_mean, 100.0);
  EXPECT_NEAR(report.silent_fraction, 0.99, 1e-12);
  EXPECT_GT(report.dispersion, 100.0);
}

TEST(EventSeriesTest, PoissonTrafficHasUnitDispersion) {
  EventSeries series{1.0, 2000.0};
  prng::Xoshiro256 rng{1};
  // Exponential inter-arrivals with rate 5/s.
  double t = 0.0;
  while (t < 2000.0) {
    t += -std::log(1.0 - rng.NextDouble()) / 5.0;
    if (t < 2000.0) series.Record(t);
  }
  const BurstReport report = series.Summarize();
  EXPECT_NEAR(report.mean_rate, 5.0, 0.3);
  EXPECT_NEAR(report.dispersion, 1.0, 0.2);
}

TEST(EventSeriesTest, ResetClears) {
  EventSeries series{1.0, 10.0};
  series.Record(3.0);
  series.Reset();
  EXPECT_EQ(series.total(), 0u);
  EXPECT_EQ(series.Summarize().peak_rate, 0.0);
}

}  // namespace
}  // namespace hotspots::telescope
