// Active vs passive darknet sensors (the IMS SYN-ACK responder design).
#include <gtest/gtest.h>

#include "telescope/telescope.h"
#include "worms/codered2.h"
#include "worms/slammer.h"

namespace hotspots::telescope {
namespace {

using net::Ipv4;
using net::Prefix;

TEST(SensorModesTest, WormsDeclareTheirTransport) {
  EXPECT_TRUE(worms::CodeRed2Worm{}.requires_handshake());   // TCP/80.
  EXPECT_FALSE(worms::SlammerWorm{}.requires_handshake());   // UDP/1434.
}

TEST(SensorModesTest, PassiveSensorCannotIdentifyTcpThreat) {
  SensorOptions passive;
  passive.active_responder = false;
  passive.alert_threshold = 2;
  Telescope telescope{passive};
  telescope.AddSensor("P", Prefix{Ipv4{10, 0, 0, 0}, 24});
  telescope.Build();
  telescope.SetThreatRequiresHandshake(true);  // A TCP worm.

  for (int i = 0; i < 10; ++i) {
    telescope.Observe(i, Ipv4{1, 1, 1, 1}, Ipv4{10, 0, 0, 5});
  }
  const SensorBlock& sensor = telescope.sensor(0);
  EXPECT_EQ(sensor.probe_count(), 0u);          // No identified payloads.
  EXPECT_EQ(sensor.unidentified_probes(), 10u);  // But the packets arrived.
  EXPECT_EQ(sensor.UniqueSourceCount(), 0u);
  EXPECT_FALSE(sensor.alerted());
}

TEST(SensorModesTest, ActiveSensorIdentifiesTcpThreat) {
  SensorOptions active;  // Default: active responder.
  active.alert_threshold = 2;
  Telescope telescope{active};
  telescope.AddSensor("A", Prefix{Ipv4{10, 0, 0, 0}, 24});
  telescope.Build();
  telescope.SetThreatRequiresHandshake(true);

  for (int i = 0; i < 3; ++i) {
    telescope.Observe(i, Ipv4{1, 1, 1, 1}, Ipv4{10, 0, 0, 5});
  }
  const SensorBlock& sensor = telescope.sensor(0);
  EXPECT_EQ(sensor.probe_count(), 3u);
  EXPECT_EQ(sensor.unidentified_probes(), 0u);
  EXPECT_TRUE(sensor.alerted());
}

TEST(SensorModesTest, PassiveSensorStillSeesUdpThreats) {
  SensorOptions passive;
  passive.active_responder = false;
  Telescope telescope{passive};
  telescope.AddSensor("P", Prefix{Ipv4{10, 0, 0, 0}, 24});
  telescope.Build();
  telescope.SetThreatRequiresHandshake(false);  // Slammer-style UDP.

  telescope.Observe(0.0, Ipv4{1, 1, 1, 1}, Ipv4{10, 0, 0, 5});
  EXPECT_EQ(telescope.sensor(0).probe_count(), 1u);
  EXPECT_EQ(telescope.sensor(0).unidentified_probes(), 0u);
}

TEST(SensorModesTest, MixedFleet) {
  // One active, one passive sensor against a TCP threat: only the active
  // one can feed payload-based detection — the paper's argument for the
  // IMS responder design.
  Telescope telescope;
  SensorOptions active;
  active.alert_threshold = 1;
  SensorOptions passive = active;
  passive.active_responder = false;
  telescope.AddSensor("active", Prefix{Ipv4{10, 0, 0, 0}, 24}, active);
  telescope.AddSensor("passive", Prefix{Ipv4{20, 0, 0, 0}, 24}, passive);
  telescope.Build();
  telescope.SetThreatRequiresHandshake(true);

  telescope.Observe(1.0, Ipv4{1, 1, 1, 1}, Ipv4{10, 0, 0, 1});
  telescope.Observe(1.0, Ipv4{1, 1, 1, 1}, Ipv4{20, 0, 0, 1});
  EXPECT_EQ(telescope.AlertedCount(), 1u);
  EXPECT_TRUE(telescope.FindByLabel("active")->alerted());
  EXPECT_FALSE(telescope.FindByLabel("passive")->alerted());
  EXPECT_EQ(telescope.FindByLabel("passive")->unidentified_probes(), 1u);
}

TEST(SensorModesTest, ResetClearsUnidentifiedCounter) {
  SensorOptions passive;
  passive.active_responder = false;
  SensorBlock sensor{"P", Prefix{Ipv4{10, 0, 0, 0}, 24}, passive};
  sensor.Record(0.0, Ipv4{1, 1, 1, 1}, Ipv4{10, 0, 0, 1}, false);
  EXPECT_EQ(sensor.unidentified_probes(), 1u);
  sensor.Reset();
  EXPECT_EQ(sensor.unidentified_probes(), 0u);
}

}  // namespace
}  // namespace hotspots::telescope
