#include "telescope/telescope.h"

#include <gtest/gtest.h>

#include "telescope/alerting.h"
#include "telescope/ims.h"

namespace hotspots::telescope {
namespace {

using net::Ipv4;
using net::Prefix;

TEST(SensorBlockTest, CountsProbesAndUniqueSources) {
  SensorBlock sensor{"T", Prefix{Ipv4{10, 0, 0, 0}, 24}, SensorOptions{}};
  sensor.Record(0.0, Ipv4{1, 1, 1, 1}, Ipv4{10, 0, 0, 5});
  sensor.Record(1.0, Ipv4{1, 1, 1, 1}, Ipv4{10, 0, 0, 6});
  sensor.Record(2.0, Ipv4{2, 2, 2, 2}, Ipv4{10, 0, 0, 5});
  EXPECT_EQ(sensor.probe_count(), 3u);
  EXPECT_EQ(sensor.UniqueSourceCount(), 2u);
}

TEST(SensorBlockTest, AlertFiresAtThreshold) {
  SensorOptions options;
  options.alert_threshold = 3;
  SensorBlock sensor{"T", Prefix{Ipv4{10, 0, 0, 0}, 24}, options};
  sensor.Record(5.0, Ipv4{1, 1, 1, 1}, Ipv4{10, 0, 0, 1});
  EXPECT_FALSE(sensor.alerted());
  sensor.Record(6.0, Ipv4{1, 1, 1, 1}, Ipv4{10, 0, 0, 2});
  sensor.Record(7.0, Ipv4{1, 1, 1, 1}, Ipv4{10, 0, 0, 3});
  ASSERT_TRUE(sensor.alerted());
  EXPECT_DOUBLE_EQ(*sensor.alert_time(), 7.0);
  // Further probes don't move the alert time.
  sensor.Record(9.0, Ipv4{1, 1, 1, 1}, Ipv4{10, 0, 0, 4});
  EXPECT_DOUBLE_EQ(*sensor.alert_time(), 7.0);
}

TEST(SensorBlockTest, HistogramPerSlash24) {
  SensorBlock sensor{"T", Prefix{Ipv4{10, 0, 0, 0}, 22}, SensorOptions{}};
  sensor.Record(0.0, Ipv4{1, 1, 1, 1}, Ipv4{10, 0, 1, 9});
  sensor.Record(0.0, Ipv4{2, 2, 2, 2}, Ipv4{10, 0, 1, 10});
  sensor.Record(0.0, Ipv4{1, 1, 1, 1}, Ipv4{10, 0, 3, 1});
  const auto rows = sensor.Histogram();
  ASSERT_EQ(rows.size(), 4u);  // A /22 spans four /24s.
  EXPECT_EQ(rows[0].stats.probes, 0u);
  EXPECT_EQ(rows[1].stats.probes, 2u);
  EXPECT_EQ(rows[1].stats.unique_sources, 2u);
  EXPECT_EQ(rows[3].stats.probes, 1u);
  EXPECT_EQ(rows[3].stats.unique_sources, 1u);
}

TEST(SensorBlockTest, ResetClearsEverything) {
  SensorOptions options;
  options.alert_threshold = 1;
  SensorBlock sensor{"T", Prefix{Ipv4{10, 0, 0, 0}, 24}, options};
  sensor.Record(0.0, Ipv4{1, 1, 1, 1}, Ipv4{10, 0, 0, 5});
  sensor.Reset();
  EXPECT_EQ(sensor.probe_count(), 0u);
  EXPECT_EQ(sensor.UniqueSourceCount(), 0u);
  EXPECT_FALSE(sensor.alerted());
}

TEST(TelescopeTest, RoutesProbesToOwningSensor) {
  Telescope telescope;
  const int a = telescope.AddSensor("A", Prefix{Ipv4{10, 0, 0, 0}, 24});
  const int b = telescope.AddSensor("B", Prefix{Ipv4{20, 0, 0, 0}, 24});
  telescope.Build();
  telescope.Observe(0.0, Ipv4{1, 1, 1, 1}, Ipv4{10, 0, 0, 7});
  telescope.Observe(0.0, Ipv4{1, 1, 1, 1}, Ipv4{20, 0, 0, 7});
  telescope.Observe(0.0, Ipv4{1, 1, 1, 1}, Ipv4{30, 0, 0, 7});  // Unmonitored.
  EXPECT_EQ(telescope.sensor(a).probe_count(), 1u);
  EXPECT_EQ(telescope.sensor(b).probe_count(), 1u);
}

TEST(TelescopeTest, OnProbeIgnoresUndelivered) {
  Telescope telescope;
  const int a = telescope.AddSensor("A", Prefix{Ipv4{10, 0, 0, 0}, 24});
  telescope.Build();
  sim::ProbeEvent event;
  event.src_address = Ipv4{1, 1, 1, 1};
  event.dst = Ipv4{10, 0, 0, 1};
  event.delivery = topology::Delivery::kIngressFiltered;
  telescope.OnProbe(event);
  EXPECT_EQ(telescope.sensor(a).probe_count(), 0u);
  event.delivery = topology::Delivery::kDelivered;
  telescope.OnProbe(event);
  EXPECT_EQ(telescope.sensor(a).probe_count(), 1u);
}

TEST(TelescopeTest, OverlappingSensorsRejected) {
  Telescope telescope;
  telescope.AddSensor("A", Prefix{Ipv4{10, 0, 0, 0}, 16});
  telescope.AddSensor("B", Prefix{Ipv4{10, 0, 4, 0}, 24});
  EXPECT_THROW(telescope.Build(), std::invalid_argument);
}

TEST(TelescopeTest, ObserveBeforeBuildThrows) {
  Telescope telescope;
  telescope.AddSensor("A", Prefix{Ipv4{10, 0, 0, 0}, 24});
  EXPECT_THROW(telescope.Observe(0.0, Ipv4{1}, Ipv4{2}), std::logic_error);
}

TEST(TelescopeTest, AlertAccounting) {
  SensorOptions options;
  options.alert_threshold = 1;
  Telescope telescope{options};
  telescope.AddSensor("A", Prefix{Ipv4{10, 0, 0, 0}, 24});
  telescope.AddSensor("B", Prefix{Ipv4{20, 0, 0, 0}, 24});
  telescope.Build();
  telescope.Observe(3.5, Ipv4{1, 1, 1, 1}, Ipv4{10, 0, 0, 1});
  EXPECT_EQ(telescope.AlertedCount(), 1u);
  ASSERT_EQ(telescope.AlertTimes().size(), 1u);
  EXPECT_DOUBLE_EQ(telescope.AlertTimes()[0], 3.5);
  telescope.ResetAll();
  EXPECT_EQ(telescope.AlertedCount(), 0u);
}

TEST(TelescopeTest, FindByLabel) {
  Telescope telescope = MakeImsTelescope();
  EXPECT_NE(telescope.FindByLabel("M/22"), nullptr);
  EXPECT_EQ(telescope.FindByLabel("Q/9"), nullptr);
}

TEST(ImsTest, ElevenBlocksWithPaperSizes) {
  const auto& blocks = ImsBlocks();
  ASSERT_EQ(blocks.size(), 11u);
  // Sizes as given in the paper: A/23 B/24 C/24 D/20 E/21 F/22 G/25 H/18
  // I/17 M/22 Z/8.
  const std::pair<const char*, int> expected[] = {
      {"A/23", 23}, {"B/24", 24}, {"C/24", 24}, {"D/20", 20},
      {"E/21", 21}, {"F/22", 22}, {"G/25", 25}, {"H/18", 18},
      {"I/17", 17}, {"M/22", 22}, {"Z/8", 8}};
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_EQ(blocks[i].label, expected[i].first);
    EXPECT_EQ(blocks[i].block.length(), expected[i].second);
  }
}

TEST(ImsTest, MBlockInside192OutsidePrivate) {
  const auto& blocks = ImsBlocks();
  const auto& m = blocks[9];
  ASSERT_EQ(m.label, "M/22");
  EXPECT_TRUE((net::Prefix{Ipv4{192, 0, 0, 0}, 8}).Contains(m.block));
  EXPECT_FALSE(net::kPrivate192.Overlaps(m.block));
}

TEST(ImsTest, BlocksAreDisjoint) {
  const auto& blocks = ImsBlocks();
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    for (std::size_t j = i + 1; j < blocks.size(); ++j) {
      EXPECT_FALSE(blocks[i].block.Overlaps(blocks[j].block))
          << blocks[i].label << " overlaps " << blocks[j].label;
    }
  }
}

TEST(AlertingTest, AlertFractionCurveBasics) {
  const auto curve = AlertFractionCurve({1.0, 2.0, 3.0}, 10, 4.0, 5);
  ASSERT_EQ(curve.size(), 5u);
  EXPECT_DOUBLE_EQ(curve[0].fraction_alerted, 0.0);
  EXPECT_DOUBLE_EQ(curve[1].fraction_alerted, 0.1);   // t=1.
  EXPECT_DOUBLE_EQ(curve[4].fraction_alerted, 0.3);   // t=4.
}

TEST(AlertingTest, QuorumDetection) {
  EXPECT_EQ(QuorumDetectionTime({1.0, 2.0, 3.0}, 10, 0.2), 2.0);
  EXPECT_EQ(QuorumDetectionTime({1.0, 2.0, 3.0}, 10, 0.3), 3.0);
  EXPECT_EQ(QuorumDetectionTime({1.0, 2.0, 3.0}, 10, 0.5), std::nullopt);
  EXPECT_EQ(QuorumDetectionTime({}, 10, 0.5), std::nullopt);
}

TEST(AlertingTest, ValidatesArguments) {
  EXPECT_THROW((void)AlertFractionCurve({}, 0, 1.0, 2), std::invalid_argument);
  EXPECT_THROW((void)AlertFractionCurve({}, 1, 0.0, 2), std::invalid_argument);
  EXPECT_THROW((void)AlertFractionCurve({}, 1, 1.0, 1), std::invalid_argument);
  EXPECT_THROW((void)QuorumDetectionTime({}, 0, 0.5), std::invalid_argument);
  EXPECT_THROW((void)QuorumDetectionTime({}, 1, 0.0), std::invalid_argument);
  EXPECT_THROW((void)QuorumDetectionTime({}, 1, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace hotspots::telescope
