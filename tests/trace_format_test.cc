// Wire-level invariants of `hotspots.trace.v1`: varint/zigzag encoding
// (including rejection of overlong and truncated input), the CRC-32
// check vector and chaining property, header layout constants, and the
// shared FNV-1a output fingerprint.
#include "trace/format.h"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <vector>

#include "trace/crc32.h"
#include "trace/varint.h"

namespace hotspots::trace {
namespace {

// ---------------------------------------------------------------------
// Varint.
// ---------------------------------------------------------------------

std::vector<std::uint8_t> Encode(std::uint64_t value) {
  std::uint8_t buffer[kMaxVarintBytes];
  std::uint8_t* end = EncodeVarint(buffer, value);
  return {buffer, end};
}

TEST(VarintTest, RoundTripBoundaries) {
  const std::uint64_t cases[] = {0,
                                 1,
                                 127,
                                 128,
                                 16383,
                                 16384,
                                 (1ull << 32) - 1,
                                 1ull << 32,
                                 (1ull << 56) - 1,
                                 1ull << 63,
                                 std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t value : cases) {
    const auto bytes = Encode(value);
    const std::uint8_t* cursor = bytes.data();
    std::uint64_t decoded = 0;
    ASSERT_TRUE(
        DecodeVarint(&cursor, bytes.data() + bytes.size(), &decoded))
        << value;
    EXPECT_EQ(decoded, value);
    EXPECT_EQ(cursor, bytes.data() + bytes.size());
  }
}

TEST(VarintTest, EncodedSizes) {
  EXPECT_EQ(Encode(0).size(), 1u);
  EXPECT_EQ(Encode(127).size(), 1u);
  EXPECT_EQ(Encode(128).size(), 2u);
  EXPECT_EQ(Encode((1ull << 35) - 1).size(), 5u);
  EXPECT_EQ(Encode(std::numeric_limits<std::uint64_t>::max()).size(), 10u);
  EXPECT_LE(Encode(std::numeric_limits<std::uint64_t>::max()).size(),
            static_cast<std::size_t>(kMaxVarintBytes));
}

TEST(VarintTest, RejectsTruncatedInput) {
  const std::uint8_t truncated[] = {0x80, 0x80};  // Continuation, no end.
  const std::uint8_t* cursor = truncated;
  std::uint64_t value = 0;
  EXPECT_FALSE(DecodeVarint(&cursor, truncated + sizeof truncated, &value));
}

TEST(VarintTest, RejectsOverlongEncoding) {
  // Eleven continuation bytes: more than any 64-bit value needs.
  const std::uint8_t overlong[] = {0x80, 0x80, 0x80, 0x80, 0x80, 0x80,
                                   0x80, 0x80, 0x80, 0x80, 0x00};
  const std::uint8_t* cursor = overlong;
  std::uint64_t value = 0;
  EXPECT_FALSE(DecodeVarint(&cursor, overlong + sizeof overlong, &value));
}

TEST(VarintTest, RejectsNonCanonicalTenthByte) {
  // Ten bytes whose final byte carries bits beyond the 64th.
  const std::uint8_t bad[] = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                              0xFF, 0xFF, 0xFF, 0xFF, 0x02};
  const std::uint8_t* cursor = bad;
  std::uint64_t value = 0;
  EXPECT_FALSE(DecodeVarint(&cursor, bad + sizeof bad, &value));
}

TEST(VarintTest, EmptyInputFails) {
  const std::uint8_t* cursor = nullptr;
  std::uint64_t value = 0;
  EXPECT_FALSE(DecodeVarint(&cursor, nullptr, &value));
}

// ---------------------------------------------------------------------
// ZigZag.
// ---------------------------------------------------------------------

TEST(ZigZagTest, MapsSmallMagnitudesToSmallCodes) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
  EXPECT_EQ(ZigZagEncode(2), 4u);
}

TEST(ZigZagTest, RoundTripExtremes) {
  const std::int64_t cases[] = {0, 1, -1, 1000, -1000,
                                std::numeric_limits<std::int64_t>::max(),
                                std::numeric_limits<std::int64_t>::min()};
  for (const std::int64_t value : cases) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(value)), value) << value;
  }
}

// ---------------------------------------------------------------------
// CRC-32.
// ---------------------------------------------------------------------

TEST(Crc32Test, CheckVector) {
  // The canonical IEEE 802.3 check value.
  const char* input = "123456789";
  EXPECT_EQ(Crc32(input, 9), 0xCBF43926u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32(nullptr, 0), 0u); }

TEST(Crc32Test, ChainingMatchesOneShot) {
  std::uint8_t data[257];
  for (std::size_t i = 0; i < sizeof data; ++i) {
    data[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  const std::uint32_t whole = Crc32(data, sizeof data);
  for (const std::size_t split : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}, std::size_t{256}}) {
    const std::uint32_t part = Crc32(data, split);
    EXPECT_EQ(Crc32(data + split, sizeof data - split, part), whole)
        << "split at " << split;
  }
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::uint8_t data[64] = {};
  const std::uint32_t clean = Crc32(data, sizeof data);
  data[17] ^= 0x04;
  EXPECT_NE(Crc32(data, sizeof data), clean);
}

// ---------------------------------------------------------------------
// Header / format constants.
// ---------------------------------------------------------------------

TEST(FormatTest, LayoutConstants) {
  EXPECT_EQ(kHeaderBytes, 48u);
  EXPECT_EQ(kBlockFrameBytes, 12u);
  EXPECT_EQ(kTrailerPayloadBytes, 24u);
  EXPECT_EQ(kFormatVersion, 1u);
  EXPECT_EQ(std::memcmp(kMagic, "HSPTRACE", 8), 0);
  // 4 varints: 10 (time bits) + 5 + 5 + 5 (35-bit dst|delivery).
  EXPECT_EQ(kMaxRecordBytes, 25u);
  EXPECT_LE(kDefaultBlockRecords, kMaxBlockRecords);
  EXPECT_EQ(kMaxBlockPayloadBytes, kMaxBlockRecords * 25u);
}

TEST(FormatTest, HeaderFlagAccessors) {
  TraceHeader header;
  EXPECT_FALSE(header.sampled());
  header.flags = kFlagSampled;
  EXPECT_TRUE(header.sampled());
}

// ---------------------------------------------------------------------
// Shared output fingerprint.
// ---------------------------------------------------------------------

TEST(FingerprintTest, FnvOffsetBasisAndDeterminism) {
  Fingerprint empty;
  EXPECT_EQ(empty.hash, 0xcbf29ce484222325ull);

  Fingerprint a, b;
  a.Mix(42);
  a.MixDouble(1.5);
  a.MixString("fig1");
  b.Mix(42);
  b.MixDouble(1.5);
  b.MixString("fig1");
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_NE(a.hash, empty.hash);

  Fingerprint c;
  c.Mix(43);  // One-bit input change moves the hash.
  Fingerprint d;
  d.Mix(42);
  EXPECT_NE(c.hash, d.hash);
}

}  // namespace
}  // namespace hotspots::trace
