#include "net/ipv4.h"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

namespace hotspots::net {
namespace {

TEST(Ipv4Test, DefaultIsZero) {
  EXPECT_EQ(Ipv4{}.value(), 0u);
  EXPECT_EQ(Ipv4{}.ToString(), "0.0.0.0");
}

TEST(Ipv4Test, OctetConstructionMatchesValue) {
  const Ipv4 address{192, 168, 0, 1};
  EXPECT_EQ(address.value(), 0xC0A80001u);
  EXPECT_EQ(address.octet(0), 192);
  EXPECT_EQ(address.octet(1), 168);
  EXPECT_EQ(address.octet(2), 0);
  EXPECT_EQ(address.octet(3), 1);
}

TEST(Ipv4Test, OctetsRoundTrip) {
  const Ipv4 address{10, 20, 30, 40};
  const auto octets = address.octets();
  EXPECT_EQ(Ipv4(octets[0], octets[1], octets[2], octets[3]), address);
}

TEST(Ipv4Test, ParseValid) {
  const auto parsed = Ipv4::Parse("1.2.3.4");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, Ipv4(1, 2, 3, 4));
  EXPECT_EQ(Ipv4::Parse("255.255.255.255")->value(), 0xFFFFFFFFu);
  EXPECT_EQ(Ipv4::Parse("0.0.0.0")->value(), 0u);
}

TEST(Ipv4Test, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4::Parse("").has_value());
  EXPECT_FALSE(Ipv4::Parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4::Parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4::Parse("256.0.0.1").has_value());
  EXPECT_FALSE(Ipv4::Parse("1.2.3.x").has_value());
  EXPECT_FALSE(Ipv4::Parse("1..2.3").has_value());
  EXPECT_FALSE(Ipv4::Parse(" 1.2.3.4").has_value());
  EXPECT_FALSE(Ipv4::Parse("1.2.3.4 ").has_value());
  EXPECT_FALSE(Ipv4::Parse("01.2.3.4").has_value());
  EXPECT_FALSE(Ipv4::Parse("-1.2.3.4").has_value());
}

TEST(Ipv4Test, ToStringRoundTripsThroughParse) {
  const Ipv4 values[] = {Ipv4{0}, Ipv4{1, 2, 3, 4}, Ipv4{0xFFFFFFFFu},
                         Ipv4{127, 0, 0, 1}};
  for (const Ipv4 address : values) {
    const auto parsed = Ipv4::Parse(address.ToString());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, address);
  }
}

TEST(Ipv4Test, SlashIndexes) {
  const Ipv4 address{10, 20, 30, 40};
  EXPECT_EQ(address.Slash8(), 10u);
  EXPECT_EQ(address.Slash16(), (10u << 8) | 20u);
  EXPECT_EQ(address.Slash24(), (10u << 16) | (20u << 8) | 30u);
}

TEST(Ipv4Test, OrderingFollowsValue) {
  EXPECT_LT(Ipv4(1, 0, 0, 0), Ipv4(2, 0, 0, 0));
  EXPECT_LT(Ipv4(1, 0, 0, 255), Ipv4(1, 0, 1, 0));
  EXPECT_EQ(Ipv4(9, 9, 9, 9), Ipv4(9, 9, 9, 9));
}

TEST(Ipv4Test, StreamOperatorPrintsDottedQuad) {
  std::ostringstream out;
  out << Ipv4{172, 16, 5, 9};
  EXPECT_EQ(out.str(), "172.16.5.9");
}

TEST(Ipv4Test, HashableInUnorderedSet) {
  std::unordered_set<Ipv4> set;
  set.insert(Ipv4{1, 2, 3, 4});
  set.insert(Ipv4{1, 2, 3, 4});
  set.insert(Ipv4{4, 3, 2, 1});
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace hotspots::net
