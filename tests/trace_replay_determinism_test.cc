// The PR's acceptance criterion, as a test: replay a captured fig1-style
// Blaster outbreak through the IMS telescope and the TRW gateway and get
// bit-identical per-sensor counters, alert times, detector verdicts, and
// stream fingerprint to the live engine run that produced the file.
//
// The scenario mirrors bench/trace_capture.h: a clustered population that
// avoids the IMS darknet blocks, plus a few hosts seeded in the /24
// directly below each sensor so Blaster's sequential local sweeps walk
// upward into the darknet — the adjacency mechanism behind the paper's
// hotspots — and the compared counters are non-trivial.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "core/scenario.h"
#include "detect/probe_stream.h"
#include "net/interval_set.h"
#include "sim/engine.h"
#include "telescope/ims.h"
#include "topology/reachability.h"
#include "trace/format.h"
#include "trace/reader.h"
#include "trace/replay.h"
#include "trace/writer.h"
#include "worms/blaster.h"

namespace hotspots {
namespace {

/// Folds every event field into a trace::Fingerprint — the run identity
/// the live and replayed streams must share.
class FingerprintObserver final : public sim::ProbeObserver {
 public:
  void OnProbe(const sim::ProbeEvent& event) override {
    std::uint64_t time_bits;
    std::memcpy(&time_bits, &event.time, sizeof time_bits);
    fingerprint_.Mix(time_bits);
    fingerprint_.Mix(event.src_host);
    fingerprint_.Mix(event.src_address.value());
    fingerprint_.Mix(event.dst.value());
    fingerprint_.Mix(static_cast<std::uint64_t>(event.delivery));
  }

  [[nodiscard]] std::uint64_t hash() const { return fingerprint_.hash; }

 private:
  trace::Fingerprint fingerprint_;
};

class ReplayDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::ScenarioBuilder builder;
    for (const auto& block : telescope::ImsBlocks()) {
      builder.Avoid(block.block);
    }
    core::ClusteredPopulationConfig population_config;
    population_config.total_hosts = 700;
    population_config.slash8_clusters = 20;
    population_config.nonempty_slash16s = 100;
    population_config.seed = kSeed;
    scenario_ = builder.BuildClustered(population_config);

    // Sensor-adjacent hosts: local sequential sweeps reach the darknet.
    for (const auto& block : telescope::ImsBlocks()) {
      const std::uint32_t below = block.block.first().value() - 256;
      for (std::uint32_t i = 0; i < 4; ++i) {
        const net::Ipv4 address{below + 10 + i * 40};
        if (scenario_.population.FindPublic(address) == sim::kInvalidHost) {
          scenario_.population.AddHost(address);
        }
      }
    }

    // TRW's live space: everything the population answers on.
    for (const sim::Host& host : scenario_.population.hosts()) {
      live_space_.Add(host.address.value(), host.address.value());
    }
    live_space_.Build();
  }

  sim::EngineConfig EngineConfigForRun() const {
    sim::EngineConfig config;
    config.scan_rate = 10.0;
    config.end_time = 60.0;
    config.stop_at_infected_fraction = 2.0;  // Observational run.
    config.seed = kSeed;
    return config;
  }

  telescope::Telescope MakeScope() const {
    telescope::SensorOptions options;
    options.alert_threshold = 100;
    telescope::Telescope scope = telescope::MakeImsTelescope(options);
    scope.SetThreatRequiresHandshake(worm_.requires_handshake());
    return scope;
  }

  detect::TrwGatewayObserver MakeGateway() const {
    return detect::TrwGatewayObserver{live_space_, {}};
  }

  static constexpr std::uint64_t kSeed = 0xF161;
  core::Scenario scenario_;
  net::IntervalSet live_space_;
  worms::BlasterWorm worm_{worms::BlasterWorm::Paper()};
};

TEST_F(ReplayDeterminismTest, CapturedBlasterRunReplaysBitIdentical) {
  const std::string path = ::testing::TempDir() + "/fig1_blaster.trace";

  // ---- Live run: telescope + TRW + fingerprint + writer, one tee. ----
  const topology::Reachability reachability{nullptr, &scenario_.nats,
                                            nullptr, 0.0};
  sim::Engine engine{scenario_.population, worm_, reachability,
                     &scenario_.nats, EngineConfigForRun()};
  // Observational run: everyone scans, so the sensor-adjacent hosts'
  // local sweeps are guaranteed to be in the stream.
  for (sim::HostId id = 0; id < scenario_.population.size(); ++id) {
    engine.SeedInfection(id);
  }

  telescope::Telescope live_scope = MakeScope();
  detect::TrwGatewayObserver live_trw = MakeGateway();
  FingerprintObserver live_fingerprint;
  trace::TraceWriterOptions writer_options;
  writer_options.seed = kSeed;
  writer_options.scenario_fingerprint = 0xF161F161;
  trace::TraceWriter writer{path, writer_options};
  const sim::RunResult run =
      engine.Run({&live_scope, &live_trw, &live_fingerprint, &writer});
  writer.Finish();

  ASSERT_GT(run.total_probes, 1000u);
  ASSERT_EQ(writer.records_written(), run.total_probes);
  // The scenario must actually light up sensors, or the equalities below
  // would be trivial.
  std::size_t live_sensors_hit = 0;
  for (std::size_t i = 0; i < live_scope.size(); ++i) {
    if (live_scope.sensor(static_cast<int>(i)).probe_count() > 0) {
      ++live_sensors_hit;
    }
  }
  ASSERT_GT(live_sensors_hit, 0u)
      << "no IMS sensor saw a probe — scenario regressed";
  ASSERT_GT(live_trw.probes_fed(), 0u);

  // ---- Replay the file into fresh instances of the same observers. ----
  telescope::Telescope replay_scope = MakeScope();
  detect::TrwGatewayObserver replay_trw = MakeGateway();
  FingerprintObserver replay_fingerprint;
  sim::TeeObserver tee;
  tee.Add(&replay_scope);
  tee.Add(&replay_trw);
  tee.Add(&replay_fingerprint);
  const trace::ReplaySummary summary = trace::ReplayFile(path, tee);

  // Stream identity.
  EXPECT_EQ(summary.records, run.total_probes);
  EXPECT_EQ(summary.delivery_counts, run.delivery_counts);
  EXPECT_EQ(replay_fingerprint.hash(), live_fingerprint.hash());

  // Per-sensor counters and alert times, bit for bit.
  ASSERT_EQ(replay_scope.size(), live_scope.size());
  for (std::size_t i = 0; i < live_scope.size(); ++i) {
    const auto& expected = live_scope.sensor(static_cast<int>(i));
    const auto& actual = replay_scope.sensor(static_cast<int>(i));
    EXPECT_EQ(actual.probe_count(), expected.probe_count())
        << expected.label();
    EXPECT_EQ(actual.UniqueSourceCount(), expected.UniqueSourceCount())
        << expected.label();
    ASSERT_EQ(actual.alerted(), expected.alerted()) << expected.label();
    if (expected.alerted()) {
      // Bitwise: alert time came out of the same double in the stream.
      EXPECT_EQ(*actual.alert_time(), *expected.alert_time())
          << expected.label();
    }
  }
  EXPECT_EQ(replay_scope.AlertedCount(), live_scope.AlertedCount());

  // TRW gateway: same probes fed, same verdict, same alert time.
  EXPECT_EQ(replay_trw.probes_seen(), live_trw.probes_seen());
  EXPECT_EQ(replay_trw.probes_fed(), live_trw.probes_fed());
  ASSERT_EQ(replay_trw.first_alert_time().has_value(),
            live_trw.first_alert_time().has_value());
  if (live_trw.first_alert_time().has_value()) {
    EXPECT_EQ(*replay_trw.first_alert_time(), *live_trw.first_alert_time());
  }

  // A second replay of the same file is just as deterministic.
  FingerprintObserver again;
  trace::ReplayFile(path, again);
  EXPECT_EQ(again.hash(), live_fingerprint.hash());

  // Header provenance survived the round trip.
  trace::TraceReader reader{path};
  EXPECT_EQ(reader.header().seed, kSeed);
  EXPECT_EQ(reader.header().scenario_fingerprint, 0xF161F161u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hotspots
