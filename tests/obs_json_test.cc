// Pins the JSON writer's output format and misuse detection.  Every
// machine-readable artifact in the repo (metrics sidecars, the hot-path
// results file) is produced by this writer, so the exact text — escaping,
// separators, indentation, fixed-decimal formatting — is a contract.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/json_writer.h"

namespace hotspots::obs {
namespace {

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string_view{"\x01", 1}), "\\u0001");
  // Non-ASCII bytes pass through untouched (UTF-8 stays UTF-8).
  EXPECT_EQ(JsonEscape("café"), "café");
}

TEST(JsonEscapeTest, EveryControlByteIsEscaped) {
  // RFC 8259: all of U+0000..U+001F must be escaped.  The common ones get
  // short forms; the rest must come out as \u00XX, never raw.
  for (int c = 0x00; c < 0x20; ++c) {
    const char byte = static_cast<char>(c);
    const std::string escaped = JsonEscape(std::string_view{&byte, 1});
    ASSERT_GE(escaped.size(), 2u) << "control byte 0x" << std::hex << c;
    EXPECT_EQ(escaped[0], '\\') << "control byte 0x" << std::hex << c;
    for (const char out : escaped) {
      EXPECT_GE(static_cast<unsigned char>(out), 0x20u)
          << "raw control byte leaked for 0x" << std::hex << c;
    }
  }
  // Embedded NUL mid-string survives as an escape, not a truncation.
  EXPECT_EQ(JsonEscape(std::string_view{"a\x00z", 3}), "a\\u0000z");
  // DEL (0x7F) and above are not controls in JSON terms: pass through.
  EXPECT_EQ(JsonEscape("\x7f"), "\x7f");
}

TEST(JsonEscapeTest, MultiByteUtf8PassesThroughIntact) {
  // 2-, 3-, and 4-byte sequences: every byte has the high bit set, and a
  // byte-wise escaper that tests `char` without casting to unsigned would
  // mangle them (signed char < 0x20 comparison).
  EXPECT_EQ(JsonEscape("µs"), "µs");                  // 2-byte.
  EXPECT_EQ(JsonEscape("worm→host"), "worm→host");    // 3-byte.
  EXPECT_EQ(JsonEscape("\xF0\x9F\x90\x9B"), "\xF0\x9F\x90\x9B");  // 4-byte.
  // Mixed with characters that DO need escaping on both sides.
  EXPECT_EQ(JsonEscape("\"π\n\""), "\\\"π\\n\\\"");
}

TEST(JsonWriterTest, Utf8AndControlsSurviveInKeysAndValues) {
  JsonWriter writer{0};
  writer.BeginObject();
  writer.KV("lane→µ", "tab\there");
  writer.KV(std::string_view{"nul\x00key", 7}, "π");
  writer.EndObject();
  EXPECT_EQ(writer.str(),
            "{\"lane→µ\":\"tab\\there\",\"nul\\u0000key\":\"π\"}");
}

TEST(JsonNumberTest, FormatsFinitesAndNullsNonFinites) {
  EXPECT_EQ(JsonNumber(0.5), "0.5");
  EXPECT_EQ(JsonNumber(-3.0), "-3");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonWriterTest, CompactObjectWithNestedArray) {
  JsonWriter writer{0};
  writer.BeginObject();
  writer.KV("a", 1);
  writer.Key("b").BeginArray();
  writer.Value(true).Null();
  writer.EndArray();
  writer.EndObject();
  EXPECT_EQ(writer.str(), R"({"a":1,"b":[true,null]})");
}

TEST(JsonWriterTest, IndentedOutputMatchesExactly) {
  JsonWriter writer{2};
  writer.BeginObject();
  writer.KV("a", 1);
  writer.Key("b").BeginArray();
  writer.Value(true);
  writer.EndArray();
  writer.EndObject();
  EXPECT_EQ(writer.str(),
            "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}");
}

TEST(JsonWriterTest, EmptyContainersStayOnOneLine) {
  JsonWriter writer{2};
  writer.BeginObject();
  writer.Key("empty").BeginObject().EndObject();
  writer.Key("none").BeginArray().EndArray();
  writer.EndObject();
  EXPECT_EQ(writer.str(),
            "{\n  \"empty\": {},\n  \"none\": []\n}");
}

TEST(JsonWriterTest, FixedValueUsesRequestedDecimals) {
  JsonWriter writer{0};
  writer.BeginArray();
  writer.FixedValue(0.25, 4);
  writer.FixedValue(12345.678, 0);
  writer.FixedValue(std::numeric_limits<double>::quiet_NaN(), 3);
  writer.EndArray();
  EXPECT_EQ(writer.str(), "[0.2500,12346,null]");
}

TEST(JsonWriterTest, EscapesKeysAndStringValues) {
  JsonWriter writer{0};
  writer.BeginObject();
  writer.KV("we\"ird", "line\nbreak");
  writer.EndObject();
  EXPECT_EQ(writer.str(), R"({"we\"ird":"line\nbreak"})");
}

TEST(JsonWriterTest, TopLevelScalarIsAValidDocument) {
  JsonWriter writer{0};
  writer.Value(std::uint64_t{7});
  EXPECT_EQ(writer.str(), "7");
}

TEST(JsonWriterTest, MisuseThrows) {
  {
    JsonWriter writer;
    writer.BeginObject();
    EXPECT_THROW((void)writer.str(), std::logic_error);  // Still open.
  }
  {
    JsonWriter writer;
    writer.BeginObject();
    EXPECT_THROW(writer.Value(1), std::logic_error);  // Value without Key.
  }
  {
    JsonWriter writer;
    writer.BeginArray();
    EXPECT_THROW(writer.Key("k"), std::logic_error);  // Key inside array.
  }
  {
    JsonWriter writer;
    writer.BeginObject();
    EXPECT_THROW(writer.EndArray(), std::logic_error);  // Mismatched close.
  }
  {
    JsonWriter writer;
    writer.BeginObject();
    writer.Key("dangling");
    EXPECT_THROW(writer.EndObject(), std::logic_error);  // Key pending.
  }
  {
    JsonWriter writer;
    writer.Value(1);
    EXPECT_THROW(writer.Value(2), std::logic_error);  // Already complete.
  }
}

}  // namespace
}  // namespace hotspots::obs
