// Capture → read → replay round-trips for every worm family.
//
// For each family: one live engine run feeds a RecordingObserver, a
// TraceWriter, and a telescope through the tee attach path.  The file
// must decode to exactly the recorded stream (every field of every
// ProbeEvent, in order), and replaying it through a fresh telescope must
// reproduce the live sensors' probe counts, unique-source counts, and
// alert times bit for bit.  Also covers: pipelined vs synchronous writers
// emitting identical bytes, and the sampling knob keeping a deterministic
// subsequence of the full stream.
#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/engine.h"
#include "sim/observer.h"
#include "telescope/telescope.h"
#include "trace/reader.h"
#include "trace/replay.h"
#include "trace/writer.h"
#include "worms/blaster.h"
#include "worms/codered1.h"
#include "worms/codered2.h"
#include "worms/hitlist.h"
#include "worms/localpref.h"
#include "worms/permutation.h"
#include "worms/slammer.h"
#include "worms/uniform.h"
#include "worms/witty.h"

namespace hotspots {
namespace {

using net::Ipv4;
using net::Prefix;

struct WormCase {
  const char* label;
  std::function<std::unique_ptr<sim::Worm>()> make;
};

void PrintTo(const WormCase& param, std::ostream* os) { *os << param.label; }

std::string TempTracePath(const std::string& name) {
  return ::testing::TempDir() + "/" + name + ".trace";
}

std::vector<char> FileBytes(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

bool SameEvent(const sim::ProbeEvent& a, const sim::ProbeEvent& b) {
  return a.time == b.time && a.src_host == b.src_host &&
         a.src_address.value() == b.src_address.value() &&
         a.dst.value() == b.dst.value() && a.delivery == b.delivery;
}

telescope::Telescope MakeScope(bool requires_handshake) {
  telescope::SensorOptions options;
  options.alert_threshold = 25;
  telescope::Telescope scope;
  scope.AddSensor("Z/8", Prefix{Ipv4{96, 0, 0, 0}, 8}, options);
  scope.AddSensor("D/16", Prefix{Ipv4{61, 30, 0, 0}, 16}, options);
  scope.AddSensor("N/24", Prefix{Ipv4{60, 5, 255, 0}, 24}, options);
  scope.Build();
  scope.SetThreatRequiresHandshake(requires_handshake);
  return scope;
}

class TraceRoundTripTest : public ::testing::TestWithParam<WormCase> {
 protected:
  /// Dense population in 60.5.0.0/17 (the N/24 sensor sits in the top
  /// half of the /16, so local sweeps can reach it but nobody owns it).
  void BuildPopulation() {
    for (int i = 0; i < 300; ++i) {
      population_.AddHost(Ipv4{60, 5, static_cast<std::uint8_t>(i / 250),
                               static_cast<std::uint8_t>(1 + i % 250)});
    }
    population_.Build(nullptr);
  }

  sim::EngineConfig Config() const {
    sim::EngineConfig config;
    config.scan_rate = 5.0;
    config.end_time = 40.0;
    config.seed = 0x7E57;
    config.max_probes = 100'000;
    config.stop_at_infected_fraction = 2.0;
    return config;
  }

  sim::Population population_;
  topology::Reachability reachability_{nullptr, nullptr, nullptr, 0.0};
};

TEST_P(TraceRoundTripTest, CaptureReadReplayBitIdentical) {
  BuildPopulation();
  const auto worm = GetParam().make();
  const std::string path =
      TempTracePath(std::string("roundtrip_") + GetParam().label);

  sim::Engine engine{population_, *worm, reachability_, nullptr, Config()};
  engine.SeedInfection(0);

  sim::RecordingObserver live;
  telescope::Telescope live_scope = MakeScope(worm->requires_handshake());
  trace::TraceWriterOptions writer_options;
  writer_options.scenario_fingerprint = 0xAB5012;
  writer_options.seed = Config().seed;
  trace::TraceWriter writer{path, writer_options};
  const sim::RunResult run =
      engine.Run({&live, &live_scope, &writer});
  writer.Finish();

  ASSERT_GT(live.events().size(), 100u) << "run emitted too few probes";
  EXPECT_EQ(writer.records_written(), live.events().size());
  EXPECT_EQ(writer.records_written(), run.total_probes);

  // Read back: stream equality, field by field, in order.
  trace::TraceReader reader{path};
  EXPECT_EQ(reader.header().seed, Config().seed);
  EXPECT_EQ(reader.header().scenario_fingerprint, 0xAB5012u);
  EXPECT_FALSE(reader.header().sampled());
  std::size_t index = 0;
  for (auto batch = reader.NextBatch(); !batch.empty();
       batch = reader.NextBatch()) {
    for (const sim::ProbeEvent& event : batch) {
      ASSERT_LT(index, live.events().size());
      ASSERT_TRUE(SameEvent(event, live.events()[index]))
          << GetParam().label << " record " << index;
      ++index;
    }
  }
  EXPECT_EQ(index, live.events().size());
  EXPECT_TRUE(reader.at_end());

  // Replay into a fresh telescope: live counters reproduced exactly.
  telescope::Telescope replay_scope = MakeScope(worm->requires_handshake());
  const trace::ReplaySummary summary =
      trace::ReplayFile(path, replay_scope);
  EXPECT_EQ(summary.records, live.events().size());
  ASSERT_EQ(replay_scope.size(), live_scope.size());
  for (std::size_t i = 0; i < live_scope.size(); ++i) {
    const auto& expected = live_scope.sensor(static_cast<int>(i));
    const auto& actual = replay_scope.sensor(static_cast<int>(i));
    EXPECT_EQ(actual.probe_count(), expected.probe_count())
        << expected.label();
    EXPECT_EQ(actual.UniqueSourceCount(), expected.UniqueSourceCount())
        << expected.label();
    ASSERT_EQ(actual.alerted(), expected.alerted()) << expected.label();
    if (expected.alerted()) {
      EXPECT_EQ(*actual.alert_time(), *expected.alert_time())
          << expected.label();
    }
  }

  // The replay summary's delivery tally matches the recorded stream.
  std::array<std::uint64_t, 6> expected_counts{};
  for (const sim::ProbeEvent& event : live.events()) {
    ++expected_counts[static_cast<std::size_t>(event.delivery)];
  }
  EXPECT_EQ(summary.delivery_counts, expected_counts);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllWorms, TraceRoundTripTest,
    ::testing::Values(
        WormCase{"uniform",
                 [] {
                   return std::unique_ptr<sim::Worm>(new worms::UniformWorm);
                 }},
        WormCase{"blaster",
                 [] {
                   return std::unique_ptr<sim::Worm>(new worms::BlasterWorm(
                       worms::BlasterWorm::Paper()));
                 }},
        WormCase{"slammer",
                 [] {
                   return std::unique_ptr<sim::Worm>(new worms::SlammerWorm);
                 }},
        WormCase{"codered1",
                 [] {
                   return std::unique_ptr<sim::Worm>(
                       new worms::CodeRed1Worm(true));
                 }},
        WormCase{"codered2",
                 [] {
                   return std::unique_ptr<sim::Worm>(new worms::CodeRed2Worm);
                 }},
        WormCase{"witty",
                 [] {
                   return std::unique_ptr<sim::Worm>(new worms::WittyWorm);
                 }},
        WormCase{"hitlist",
                 [] {
                   return std::unique_ptr<sim::Worm>(new worms::HitListWorm(
                       {Prefix{Ipv4{60, 5, 0, 0}, 17},
                        Prefix{Ipv4{96, 10, 0, 0}, 16}}));
                 }},
        WormCase{"localpref",
                 [] {
                   return std::unique_ptr<sim::Worm>(
                       new worms::LocalPreferenceWorm(
                           worms::LocalPreferenceConfig{0.3, 0.3, 0.1}));
                 }},
        WormCase{"permutation",
                 [] {
                   return std::unique_ptr<sim::Worm>(
                       new worms::PermutationWorm(0xFEED));
                 }}),
    [](const ::testing::TestParamInfo<WormCase>& info) {
      return info.param.label;
    });

// ---------------------------------------------------------------------
// Pipelined and synchronous writers produce identical bytes.
// ---------------------------------------------------------------------

TEST(TraceWriterModesTest, PipelinedMatchesSynchronousByteForByte) {
  std::vector<sim::ProbeEvent> events;
  std::uint64_t x = 77;
  for (int i = 0; i < 10'000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    events.push_back(sim::ProbeEvent{
        .time = 0.1 * static_cast<double>(i / 100),
        .src_host = static_cast<sim::HostId>(x % 500),
        .src_address = Ipv4{static_cast<std::uint32_t>(x >> 16)},
        .dst = Ipv4{static_cast<std::uint32_t>(x >> 29)},
        .delivery = static_cast<topology::Delivery>(x % 6)});
  }

  const auto write_with = [&](trace::PipelineMode mode,
                              const std::string& path) {
    trace::TraceWriterOptions options;
    options.pipeline = mode;
    trace::TraceWriter writer{path, options};
    writer.OnAttach();
    // Uneven batch sizes exercise staging-buffer splits.
    std::size_t offset = 0;
    std::size_t step = 1;
    while (offset < events.size()) {
      const std::size_t take = std::min(step, events.size() - offset);
      writer.OnProbeBatch({events.data() + offset, take});
      offset += take;
      step = step * 3 + 1;
      if (step > 3000) step = 1;
    }
    writer.Finish();
    return writer.records_written();
  };

  const std::string sync_path = TempTracePath("mode_sync");
  const std::string piped_path = TempTracePath("mode_piped");
  EXPECT_EQ(write_with(trace::PipelineMode::kOff, sync_path),
            events.size());
  EXPECT_EQ(write_with(trace::PipelineMode::kOn, piped_path),
            events.size());
  const auto sync_bytes = FileBytes(sync_path);
  ASSERT_FALSE(sync_bytes.empty());
  EXPECT_EQ(sync_bytes, FileBytes(piped_path));
  std::remove(sync_path.c_str());
  std::remove(piped_path.c_str());
}

// ---------------------------------------------------------------------
// Sampling: deterministic subsequence of the full stream.
// ---------------------------------------------------------------------

TEST(TraceSamplingTest, SampledStreamIsDeterministicSubsequence) {
  sim::Population population;
  for (int i = 0; i < 200; ++i) {
    population.AddHost(Ipv4{60, 5, static_cast<std::uint8_t>(i / 200),
                            static_cast<std::uint8_t>(1 + i % 200)});
  }
  population.Build(nullptr);
  topology::Reachability reachability{nullptr, nullptr, nullptr, 0.0};
  worms::UniformWorm worm;
  sim::EngineConfig config;
  config.scan_rate = 5.0;
  config.end_time = 40.0;
  config.seed = 0x5A11;
  config.max_probes = 50'000;
  config.stop_at_infected_fraction = 2.0;
  sim::Engine engine{population, worm, reachability, nullptr, config};
  engine.SeedInfection(0);

  const std::string full_path = TempTracePath("sample_full");
  const std::string sampled_path = TempTracePath("sample_part");
  trace::TraceWriterOptions full_options;
  trace::TraceWriterOptions sampled_options;
  sampled_options.sample_rate = 0.25;
  trace::TraceWriter full{full_path, full_options};
  trace::TraceWriter sampled{sampled_path, sampled_options};
  engine.Run({&full, &sampled});
  full.Finish();
  sampled.Finish();

  EXPECT_EQ(sampled.records_written() + sampled.records_sampled_out(),
            full.records_written());
  EXPECT_GT(sampled.records_written(), 0u);
  EXPECT_LT(sampled.records_written(), full.records_written());
  // Bernoulli(0.25) over >10k draws stays well inside (0.1, 0.5).
  const double fraction =
      static_cast<double>(sampled.records_written()) /
      static_cast<double>(full.records_written());
  EXPECT_GT(fraction, 0.1);
  EXPECT_LT(fraction, 0.5);

  sim::RecordingObserver full_events;
  sim::RecordingObserver sampled_events;
  trace::ReplayFile(full_path, full_events);
  const trace::ReplaySummary sampled_summary =
      trace::ReplayFile(sampled_path, sampled_events);
  EXPECT_EQ(sampled_summary.records, sampled.records_written());

  trace::TraceReader sampled_reader{sampled_path};
  EXPECT_TRUE(sampled_reader.header().sampled());
  EXPECT_DOUBLE_EQ(sampled_reader.header().sample_rate, 0.25);

  // Subsequence check: every sampled record appears in the full stream,
  // in order.
  std::size_t cursor = 0;
  for (const sim::ProbeEvent& event : sampled_events.events()) {
    while (cursor < full_events.events().size() &&
           !SameEvent(full_events.events()[cursor], event)) {
      ++cursor;
    }
    ASSERT_LT(cursor, full_events.events().size())
        << "sampled record not found in the full stream in order";
    ++cursor;
  }

  // Same seed, same stream → identical sampled bytes on a rewrite.
  const std::string again_path = TempTracePath("sample_again");
  trace::TraceWriter again{again_path, sampled_options};
  again.OnAttach();
  const auto& events = full_events.events();
  again.OnProbeBatch({events.data(), events.size()});
  again.Finish();
  EXPECT_EQ(FileBytes(again_path), FileBytes(sampled_path));
  std::remove(full_path.c_str());
  std::remove(sampled_path.c_str());
  std::remove(again_path.c_str());
}

}  // namespace
}  // namespace hotspots
