// Study-runner trial isolation: retry on fresh derived seeds, quarantine
// of persistent failures, and the invariance guarantees that keep partial
// aggregates honest.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

#include "fault/schedule.h"
#include "sim/study.h"

namespace hotspots::sim {
namespace {

TEST(TrialAttemptSeedTest, AttemptZeroIsTheLegacyTrialSeed) {
  // The retry machinery must not move the goalposts for clean runs: the
  // first attempt of every trial uses exactly the seed the pre-retry
  // runner handed out, so fault-free studies stay bit-identical.
  const auto seeds = TrialSeeds(0xC0FFEE, 16);
  for (int trial = 0; trial < 16; ++trial) {
    EXPECT_EQ(TrialAttemptSeed(0xC0FFEE, trial, 0),
              seeds[static_cast<std::size_t>(trial)])
        << "trial " << trial;
  }
}

TEST(TrialAttemptSeedTest, RetriesDeriveFreshDistinctSeeds) {
  std::set<std::uint64_t> seen;
  for (int trial = 0; trial < 8; ++trial) {
    for (int attempt = 0; attempt < 8; ++attempt) {
      EXPECT_EQ(TrialAttemptSeed(1, trial, attempt),
                TrialAttemptSeed(1, trial, attempt));
      seen.insert(TrialAttemptSeed(1, trial, attempt));
    }
  }
  // (trial, attempt) pairs map to distinct seeds — a retry never replays
  // the draw that just failed, and trials never collide.
  EXPECT_EQ(seen.size(), 64u);
}

TEST(RunTrialsRetryTest, TransientFailureSucceedsOnRetry) {
  StudyOptions options;
  options.threads = 2;
  options.max_attempts = 3;
  std::vector<std::uint64_t> used_seed(4, 0);
  std::atomic<int> failures{0};
  const StudyTelemetry telemetry =
      RunTrials(options, 4, [&](int trial, std::uint64_t seed) {
        if (trial == 2 && seed == TrialAttemptSeed(options.master_seed, 2, 0)) {
          ++failures;
          throw std::runtime_error("transient");
        }
        used_seed[static_cast<std::size_t>(trial)] = seed;
      });
  EXPECT_EQ(failures.load(), 1);
  EXPECT_EQ(telemetry.retries, 1);
  EXPECT_EQ(telemetry.quarantined_trials, 0);
  ASSERT_EQ(telemetry.trial_attempts.size(), 4u);
  EXPECT_EQ(telemetry.trial_attempts[2], 2);
  EXPECT_EQ(telemetry.trial_attempts[0], 1);
  // The succeeding attempt ran on the derived attempt-1 seed.
  EXPECT_EQ(used_seed[2], TrialAttemptSeed(options.master_seed, 2, 1));
  EXPECT_EQ(telemetry.CompletedTrials(), 4);
}

TEST(RunTrialsRetryTest, PersistentFailureQuarantinesWhenAsked) {
  StudyOptions options;
  options.threads = 2;
  options.max_attempts = 2;
  options.quarantine_failures = true;
  const StudyTelemetry telemetry =
      RunTrials(options, 5, [&](int trial, std::uint64_t /*seed*/) {
        if (trial == 1 || trial == 3) throw std::runtime_error("persistent");
      });
  EXPECT_EQ(telemetry.quarantined_trials, 2);
  EXPECT_EQ(telemetry.CompletedTrials(), 3);
  EXPECT_TRUE(telemetry.TrialQuarantined(1));
  EXPECT_TRUE(telemetry.TrialQuarantined(3));
  EXPECT_FALSE(telemetry.TrialQuarantined(0));
  EXPECT_EQ(telemetry.retries, 2);  // One retry per failing trial.
  ASSERT_EQ(telemetry.segments.size(), 1u);
  EXPECT_EQ(telemetry.segments[0].lost_trials, 2);
  // Failure messages are deterministic and in trial order.
  ASSERT_EQ(telemetry.failure_messages.size(), 2u);
  EXPECT_NE(telemetry.failure_messages[0].find("trial 1"), std::string::npos);
  EXPECT_NE(telemetry.failure_messages[1].find("trial 3"), std::string::npos);
  EXPECT_NE(telemetry.failure_messages[0].find("persistent"),
            std::string::npos);
}

TEST(RunTrialsRetryTest, DefaultStillFailsFast) {
  // Without quarantine opt-in, exhausting attempts rethrows to the caller —
  // the legacy contract that a broken study can't silently report partial
  // numbers.
  StudyOptions options;
  options.threads = 1;
  options.max_attempts = 2;
  EXPECT_THROW(RunTrials(options, 3,
                         [&](int trial, std::uint64_t) {
                           if (trial == 1) throw std::runtime_error("boom");
                         }),
               std::runtime_error);
  options.max_attempts = 0;
  EXPECT_THROW(RunTrials(options, 1, [](int, std::uint64_t) {}),
               std::invalid_argument);
}

TEST(RunTrialsRetryTest, QuarantineAccountingIsThreadCountInvariant) {
  // Fault-injected kills are a pure function of (schedule, trial, attempt
  // seed), so which trials die — and the partial aggregate that remains —
  // must not depend on the thread count.
  fault::FaultSchedule schedule;
  schedule.trials.failure_rate = 0.7;
  const auto run = [&](int threads) {
    StudyOptions options;
    options.threads = threads;
    options.master_seed = 0xFEED;
    options.max_attempts = 2;
    options.quarantine_failures = true;
    std::vector<double> results(16, std::numeric_limits<double>::quiet_NaN());
    const StudyTelemetry telemetry =
        RunTrials(options, 16, [&](int trial, std::uint64_t seed) {
          fault::MaybeKillTrial(schedule, trial, seed);
          results[static_cast<std::size_t>(trial)] =
              static_cast<double>(seed % 1000);
        });
    return std::make_pair(telemetry.trial_quarantined, results);
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  EXPECT_EQ(serial.first, parallel.first);
  for (std::size_t i = 0; i < serial.second.size(); ++i) {
    if (std::isnan(serial.second[i])) {
      EXPECT_TRUE(std::isnan(parallel.second[i])) << "trial " << i;
    } else {
      EXPECT_EQ(serial.second[i], parallel.second[i]) << "trial " << i;
    }
  }
  // The 70% kill rate with one retry actually quarantined somebody (the
  // invariance above is not vacuous) but not everybody.
  int lost = 0;
  for (const auto flag : serial.first) lost += flag;
  EXPECT_GT(lost, 0);
  EXPECT_LT(lost, 16);
}

TEST(RunTrialsRetryTest, BackoffParksTrialInsteadOfSleepingTheWorker) {
  // Regression: the backoff used to be a sleep on the pool worker, so with
  // threads=1 a single retrying trial stalled every queued trial behind it
  // for the full backoff.  Parked retries must release the worker: trial 1
  // gets claimed and finished while trial 0 waits out its deadline.
  StudyOptions options;
  options.threads = 1;
  options.max_attempts = 2;
  options.retry_backoff_seconds = 0.5;
  std::atomic<int> attempts_on_zero{0};
  const StudyTelemetry telemetry =
      RunTrials(options, 2, [&](int trial, std::uint64_t /*seed*/) {
        if (trial == 0 && attempts_on_zero.fetch_add(1) == 0) {
          throw std::runtime_error("transient");
        }
      });
  EXPECT_EQ(attempts_on_zero.load(), 2);
  EXPECT_EQ(telemetry.retries, 1);
  ASSERT_EQ(telemetry.trial_attempts.size(), 2u);
  EXPECT_EQ(telemetry.trial_attempts[0], 2);
  EXPECT_EQ(telemetry.trial_attempts[1], 1);
  ASSERT_EQ(telemetry.trial_queue_wait_seconds.size(), 2u);
  // Trial 1 must not have waited behind trial 0's 500 ms backoff — the
  // worker picked it up as soon as trial 0 parked.
  EXPECT_LT(telemetry.trial_queue_wait_seconds[1], 0.25);
  // Parking is not work: trial 0's wall-clock covers its two attempts, not
  // the 500 ms it spent in the retry heap.
  ASSERT_EQ(telemetry.trial_wall_seconds.size(), 2u);
  EXPECT_LT(telemetry.trial_wall_seconds[0], 0.25);
  EXPECT_EQ(telemetry.CompletedTrials(), 2);
}

TEST(StudyTelemetryMergeTest, CarriesFaultAccountingAcrossSegments) {
  StudyOptions options;
  options.threads = 2;
  options.max_attempts = 1;
  options.quarantine_failures = true;
  options.label = "a";
  StudyTelemetry merged =
      RunTrials(options, 3, [](int trial, std::uint64_t) {
        if (trial == 0) throw std::runtime_error("dead");
      });
  options.label = "b";
  const StudyTelemetry second =
      RunTrials(options, 2, [](int trial, std::uint64_t) {
        if (trial == 1) throw std::runtime_error("gone");
      });
  merged.Merge(second);
  EXPECT_EQ(merged.trials, 5);
  EXPECT_EQ(merged.quarantined_trials, 2);
  ASSERT_EQ(merged.trial_quarantined.size(), 5u);
  EXPECT_TRUE(merged.TrialQuarantined(0));   // Segment "a" trial 0.
  EXPECT_TRUE(merged.TrialQuarantined(4));   // Segment "b" trial 1 → index 4.
  ASSERT_EQ(merged.segments.size(), 2u);
  EXPECT_EQ(merged.segments[0].lost_trials, 1);
  EXPECT_EQ(merged.segments[1].lost_trials, 1);
  EXPECT_EQ(merged.failure_messages.size(), 2u);
}

}  // namespace
}  // namespace hotspots::sim
