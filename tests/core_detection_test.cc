#include "core/detection_study.h"

#include <gtest/gtest.h>

#include "core/placement.h"
#include "worms/hitlist.h"
#include "worms/uniform.h"

namespace hotspots::core {
namespace {

ClusteredPopulationConfig TestConfig() {
  ClusteredPopulationConfig config;
  config.total_hosts = 8000;
  config.slash8_clusters = 6;
  config.nonempty_slash16s = 60;
  config.seed = 17;
  return config;
}

class DetectionStudyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ScenarioBuilder builder;
    scenario_ = builder.BuildClustered(TestConfig());
  }

  Scenario scenario_;
  prng::Xoshiro256 rng_{21};
};

TEST_F(DetectionStudyTest, HitListOutbreakAlertsOnlyCoveredSensors) {
  // Hit-list = the top 10 /16s; sensors = one per /16 cluster (60 of them).
  // Sensors outside the hit-list can never alert: that is the Figure-5b
  // blindness result in miniature.
  const HitListSelection selection = GreedyHitList(scenario_, 10);
  worms::HitListWorm worm{selection.prefixes};

  const auto sensors = PlaceSensorPerCluster16(scenario_, rng_);
  DetectionStudyConfig config;
  config.engine.end_time = 600.0;
  config.engine.seed = 5;
  config.seed_infections = 10;
  const DetectionOutcome outcome =
      RunDetectionStudy(scenario_, worm, sensors, config);

  // Only sensors inside hit-listed /16s can alert.
  std::size_t coverable = 0;
  for (const auto& sensor : sensors) {
    for (const auto& prefix : selection.prefixes) {
      if (prefix.Contains(sensor)) {
        ++coverable;
        break;
      }
    }
  }
  EXPECT_LE(outcome.alerted_sensors, coverable);
  EXPECT_LT(coverable, sensors.size());
  // And the outbreak infected a nontrivial share of the covered hosts.
  EXPECT_GT(outcome.run.final_infected, 10u);
}

TEST_F(DetectionStudyTest, CurveFractionsAreMonotoneAndBounded) {
  const HitListSelection selection = GreedyHitList(scenario_, 20);
  worms::HitListWorm worm{selection.prefixes};
  const auto sensors = PlaceSensorPerCluster16(scenario_, rng_);
  DetectionStudyConfig config;
  config.engine.end_time = 300.0;
  const DetectionOutcome outcome =
      RunDetectionStudy(scenario_, worm, sensors, config);
  ASSERT_FALSE(outcome.curve.empty());
  for (std::size_t i = 0; i < outcome.curve.size(); ++i) {
    const DetectionPoint& point = outcome.curve[i];
    EXPECT_GE(point.infected_fraction, 0.0);
    EXPECT_LE(point.infected_fraction, 1.0);
    EXPECT_GE(point.alerted_fraction, 0.0);
    EXPECT_LE(point.alerted_fraction, 1.0);
    if (i > 0) {
      EXPECT_GE(point.infected_fraction,
                outcome.curve[i - 1].infected_fraction);
      EXPECT_GE(point.alerted_fraction, outcome.curve[i - 1].alerted_fraction);
    }
  }
}

TEST_F(DetectionStudyTest, ScenarioReusableAcrossRuns) {
  const HitListSelection selection = GreedyHitList(scenario_, 10);
  worms::HitListWorm worm{selection.prefixes};
  const auto sensors = PlaceSensorPerCluster16(scenario_, rng_);
  DetectionStudyConfig config;
  config.engine.end_time = 200.0;
  const DetectionOutcome first =
      RunDetectionStudy(scenario_, worm, sensors, config);
  const DetectionOutcome second =
      RunDetectionStudy(scenario_, worm, sensors, config);
  // Same config + same scenario ⇒ identical results (states were reset).
  EXPECT_EQ(first.run.final_infected, second.run.final_infected);
  EXPECT_EQ(first.alerted_sensors, second.alerted_sensors);
}

TEST_F(DetectionStudyTest, AlertedFractionWhenInfectedInterpolates) {
  DetectionOutcome outcome;
  outcome.curve = {{0.0, 0.0, 0.0}, {1.0, 0.3, 0.1}, {2.0, 0.9, 0.4}};
  EXPECT_DOUBLE_EQ(outcome.AlertedFractionWhenInfected(0.2), 0.1);
  EXPECT_DOUBLE_EQ(outcome.AlertedFractionWhenInfected(0.5), 0.4);
  EXPECT_DOUBLE_EQ(outcome.AlertedFractionWhenInfected(0.99), 0.4);
}

TEST_F(DetectionStudyTest, RequiresSensors) {
  worms::UniformWorm worm;
  DetectionStudyConfig config;
  EXPECT_THROW((void)RunDetectionStudy(scenario_, worm, {}, config),
               std::invalid_argument);
}

}  // namespace
}  // namespace hotspots::core
