#include "net/interval_set.h"

#include <gtest/gtest.h>

#include <set>

#include "prng/xoshiro.h"

namespace hotspots::net {
namespace {

TEST(IntervalSetTest, EmptySetContainsNothingAfterBuild) {
  IntervalSet set;
  set.Build();
  EXPECT_FALSE(set.Contains(Ipv4{0}));
  EXPECT_EQ(set.TotalAddresses(), 0u);
}

TEST(IntervalSetTest, QueriesBeforeBuildThrow) {
  IntervalSet set;
  set.Add(1, 2);
  EXPECT_THROW((void)set.Contains(Ipv4{1}), std::logic_error);
}

TEST(IntervalSetTest, AddRejectsInvertedBounds) {
  IntervalSet set;
  EXPECT_THROW(set.Add(5, 4), std::invalid_argument);
}

TEST(IntervalSetTest, MergesOverlappingIntervals) {
  IntervalSet set;
  set.Add(10, 20);
  set.Add(15, 30);
  set.Add(100, 110);
  set.Build();
  ASSERT_EQ(set.intervals().size(), 2u);
  EXPECT_EQ(set.intervals()[0], (Interval{10, 30}));
  EXPECT_EQ(set.TotalAddresses(), 21u + 11u);
}

TEST(IntervalSetTest, MergesAdjacentIntervals) {
  IntervalSet set;
  set.Add(10, 20);
  set.Add(21, 30);
  set.Build();
  ASSERT_EQ(set.intervals().size(), 1u);
  EXPECT_EQ(set.intervals()[0], (Interval{10, 30}));
}

TEST(IntervalSetTest, MembershipAtBoundaries) {
  IntervalSet set;
  set.Add(Prefix{Ipv4{10, 0, 0, 0}, 8});
  set.Add(Prefix{Ipv4{192, 168, 0, 0}, 16});
  set.Build();
  EXPECT_TRUE(set.Contains(Ipv4(10, 0, 0, 0)));
  EXPECT_TRUE(set.Contains(Ipv4(10, 255, 255, 255)));
  EXPECT_FALSE(set.Contains(Ipv4(11, 0, 0, 0)));
  EXPECT_TRUE(set.Contains(Ipv4(192, 168, 77, 1)));
  EXPECT_FALSE(set.Contains(Ipv4(192, 169, 0, 0)));
}

TEST(IntervalSetTest, HandlesTopOfAddressSpace) {
  IntervalSet set;
  set.Add(0xFFFFFF00u, 0xFFFFFFFFu);
  set.Add(0xFFFFFE00u, 0xFFFFFEFFu);
  set.Build();
  EXPECT_TRUE(set.Contains(Ipv4{0xFFFFFFFFu}));
  EXPECT_EQ(set.TotalAddresses(), 256u + 256u);
}

TEST(IntervalSetPropertyTest, AgreesWithBruteForceReference) {
  // Randomized differential test against a simple per-address reference
  // over a small window of the space.
  prng::Xoshiro256 rng{0x1A7E};
  for (int trial = 0; trial < 20; ++trial) {
    constexpr std::uint32_t kWindow = 4096;
    IntervalSet set;
    std::set<std::uint32_t> reference;
    const int intervals = 1 + static_cast<int>(rng.UniformBelow(30));
    for (int i = 0; i < intervals; ++i) {
      const std::uint32_t lo = rng.UniformBelow(kWindow);
      const std::uint32_t hi =
          std::min(kWindow - 1, lo + rng.UniformBelow(200));
      set.Add(lo, hi);
      for (std::uint32_t x = lo; x <= hi; ++x) reference.insert(x);
    }
    set.Build();
    ASSERT_EQ(set.TotalAddresses(), reference.size()) << "trial " << trial;
    for (std::uint32_t x = 0; x < kWindow; ++x) {
      ASSERT_EQ(set.Contains(Ipv4{x}), reference.contains(x))
          << "trial " << trial << " address " << x;
    }
    // Merged intervals are sorted, disjoint, non-adjacent.
    for (std::size_t i = 1; i < set.intervals().size(); ++i) {
      ASSERT_GT(set.intervals()[i].lo, set.intervals()[i - 1].hi + 1);
    }
  }
}

TEST(IntervalMapTest, LookupFindsCoveringValue) {
  IntervalMap<int> map;
  map.Add(Prefix{Ipv4{10, 0, 0, 0}, 8}, 1);
  map.Add(Prefix{Ipv4{20, 0, 0, 0}, 8}, 2);
  map.Build();
  ASSERT_NE(map.Lookup(Ipv4(10, 9, 9, 9)), nullptr);
  EXPECT_EQ(*map.Lookup(Ipv4(10, 9, 9, 9)), 1);
  EXPECT_EQ(*map.Lookup(Ipv4(20, 0, 0, 0)), 2);
  EXPECT_EQ(map.Lookup(Ipv4(15, 0, 0, 0)), nullptr);
  EXPECT_EQ(map.Lookup(Ipv4(0, 0, 0, 1)), nullptr);
  EXPECT_EQ(map.Lookup(Ipv4(255, 0, 0, 1)), nullptr);
}

TEST(IntervalMapTest, BuildRejectsOverlap) {
  IntervalMap<int> map;
  map.Add(Prefix{Ipv4{10, 0, 0, 0}, 8}, 1);
  map.Add(Prefix{Ipv4{10, 5, 0, 0}, 16}, 2);
  EXPECT_THROW(map.Build(), std::invalid_argument);
}

TEST(IntervalMapTest, LookupBeforeBuildThrows) {
  IntervalMap<int> map;
  map.Add(1, 2, 7);
  EXPECT_THROW((void)map.Lookup(Ipv4{1}), std::logic_error);
}

}  // namespace
}  // namespace hotspots::net
