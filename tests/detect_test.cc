// Tests for the detection substrate: content prevalence (EarlyBird-style)
// and Threshold Random Walk (TRW) scan detection.
#include <gtest/gtest.h>

#include <cmath>

#include "detect/prevalence.h"
#include "detect/trw.h"
#include "prng/xoshiro.h"

namespace hotspots::detect {
namespace {

using net::Ipv4;

// ---------------------------------------------------------------------
// Content prevalence.
// ---------------------------------------------------------------------

TEST(PrevalenceTest, RequiresAllThreeThresholds) {
  PrevalenceConfig config;
  config.prevalence_threshold = 5;
  config.min_sources = 3;
  config.min_destinations = 3;
  ContentPrevalenceDetector detector{config};

  // High prevalence, single source/destination → never flagged (a flash
  // crowd to one server, or a stuck retransmitter).
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(detector.Observe(i, /*content=*/1, Ipv4{1, 1, 1, 1},
                                  Ipv4{2, 2, 2, 2}));
  }
  EXPECT_FALSE(detector.AlertTime(1).has_value());
  EXPECT_EQ(detector.StatsFor(1).occurrences, 100u);
  EXPECT_EQ(detector.StatsFor(1).sources, 1u);

  // Dispersed content crosses when the last threshold is met.
  int alerts = 0;
  for (int i = 0; i < 5; ++i) {
    if (detector.Observe(10 + i, /*content=*/2,
                         Ipv4{static_cast<std::uint8_t>(10 + i), 0, 0, 1},
                         Ipv4{static_cast<std::uint8_t>(20 + i), 0, 0, 1})) {
      ++alerts;
    }
  }
  EXPECT_EQ(alerts, 1);
  ASSERT_TRUE(detector.AlertTime(2).has_value());
  EXPECT_DOUBLE_EQ(*detector.AlertTime(2), 14.0);  // 5th observation.
  EXPECT_EQ(detector.flagged_count(), 1u);
}

TEST(PrevalenceTest, AlertFiresOnceAndTimeSticks) {
  PrevalenceConfig config;
  config.prevalence_threshold = 2;
  config.min_sources = 2;
  config.min_destinations = 1;
  ContentPrevalenceDetector detector{config};
  EXPECT_FALSE(detector.Observe(1.0, 7, Ipv4{1, 0, 0, 1}, Ipv4{9, 9, 9, 9}));
  EXPECT_TRUE(detector.Observe(2.0, 7, Ipv4{2, 0, 0, 1}, Ipv4{9, 9, 9, 9}));
  EXPECT_FALSE(detector.Observe(3.0, 7, Ipv4{3, 0, 0, 1}, Ipv4{9, 9, 9, 9}));
  EXPECT_DOUBLE_EQ(*detector.AlertTime(7), 2.0);
}

TEST(PrevalenceTest, UnknownContentHasZeroStats) {
  ContentPrevalenceDetector detector;
  EXPECT_EQ(detector.StatsFor(999).occurrences, 0u);
  EXPECT_FALSE(detector.AlertTime(999).has_value());
}

TEST(PrevalenceTest, DistinguishesContents) {
  PrevalenceConfig config;
  config.prevalence_threshold = 1;
  config.min_sources = 1;
  config.min_destinations = 1;
  ContentPrevalenceDetector detector{config};
  EXPECT_TRUE(detector.Observe(0.0, 1, Ipv4{1, 1, 1, 1}, Ipv4{2, 2, 2, 2}));
  EXPECT_TRUE(detector.Observe(0.0, 2, Ipv4{1, 1, 1, 1}, Ipv4{2, 2, 2, 2}));
  EXPECT_EQ(detector.flagged_count(), 2u);
}

// ---------------------------------------------------------------------
// Threshold Random Walk.
// ---------------------------------------------------------------------

TEST(TrwTest, ValidatesConfig) {
  TrwConfig bad;
  bad.benign_success_rate = 1.0;
  EXPECT_THROW(TrwDetector{bad}, std::invalid_argument);
  bad = TrwConfig{};
  bad.scanner_success_rate = 0.9;  // ≥ benign rate.
  EXPECT_THROW(TrwDetector{bad}, std::invalid_argument);
  bad = TrwConfig{};
  bad.false_positive_rate = 0.0;
  EXPECT_THROW(TrwDetector{bad}, std::invalid_argument);
}

TEST(TrwTest, AllFailuresFlagScannerAtWaldBound) {
  TrwDetector detector;
  const Ipv4 scanner{6, 6, 6, 6};
  // Expected observations: ceil(log(β/α) / log((1−θ₁)/(1−θ₀))).
  const double per_failure = std::log((1 - 0.2) / (1 - 0.8));
  const auto expected = static_cast<std::uint32_t>(
      std::ceil(detector.log_upper_threshold() / per_failure));
  TrwVerdict verdict = TrwVerdict::kPending;
  std::uint32_t used = 0;
  while (verdict == TrwVerdict::kPending) {
    verdict = detector.Observe(used, scanner, /*success=*/false);
    ++used;
  }
  EXPECT_EQ(verdict, TrwVerdict::kScanner);
  EXPECT_EQ(used, expected);
  EXPECT_EQ(detector.ObservationsToDecision(scanner), expected);
  ASSERT_TRUE(detector.ScannerFlagTime(scanner).has_value());
  EXPECT_EQ(detector.flagged_scanners(), 1u);
}

TEST(TrwTest, AllSuccessesClearBenign) {
  TrwDetector detector;
  const Ipv4 client{7, 7, 7, 7};
  TrwVerdict verdict = TrwVerdict::kPending;
  for (int i = 0; i < 100 && verdict == TrwVerdict::kPending; ++i) {
    verdict = detector.Observe(i, client, /*success=*/true);
  }
  EXPECT_EQ(verdict, TrwVerdict::kBenign);
  EXPECT_EQ(detector.cleared_benign(), 1u);
  EXPECT_FALSE(detector.ScannerFlagTime(client).has_value());
}

TEST(TrwTest, VerdictsAreSticky) {
  TrwDetector detector;
  const Ipv4 src{8, 8, 8, 8};
  while (detector.Observe(0.0, src, false) == TrwVerdict::kPending) {
  }
  EXPECT_EQ(detector.VerdictFor(src), TrwVerdict::kScanner);
  // A flood of successes afterwards cannot flip the decision.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(detector.Observe(1.0, src, true), TrwVerdict::kScanner);
  }
}

TEST(TrwTest, StatisticalErrorRatesRespectDesign) {
  // Simulate benign sources (80% success) and scanners (worm hitting
  // mostly-empty space, 2% success); measure the empirical error rates.
  TrwDetector detector;
  prng::Xoshiro256 rng{0x7124};
  int benign_flagged = 0;
  constexpr int kSources = 2000;
  for (int s = 0; s < kSources; ++s) {
    const Ipv4 src{static_cast<std::uint32_t>(0x0A000000 + s)};
    TrwVerdict verdict = TrwVerdict::kPending;
    for (int i = 0; i < 500 && verdict == TrwVerdict::kPending; ++i) {
      verdict = detector.Observe(i, src, rng.Bernoulli(0.8));
    }
    if (verdict == TrwVerdict::kScanner) ++benign_flagged;
  }
  // α = 1%; allow generous slack for the overshoot of discrete walks.
  EXPECT_LT(benign_flagged, kSources * 3 / 100);

  int scanners_missed = 0;
  for (int s = 0; s < kSources; ++s) {
    const Ipv4 src{static_cast<std::uint32_t>(0x14000000 + s)};
    TrwVerdict verdict = TrwVerdict::kPending;
    for (int i = 0; i < 500 && verdict == TrwVerdict::kPending; ++i) {
      verdict = detector.Observe(i, src, rng.Bernoulli(0.02));
    }
    if (verdict != TrwVerdict::kScanner) ++scanners_missed;
  }
  EXPECT_LT(scanners_missed, kSources / 100);
}

TEST(TrwTest, WormScannerCaughtWithinTenProbes) {
  // The local-detection punchline: a worm probing random space virtually
  // always fails; TRW needs only ~4 consecutive failures at the default
  // parameters — under a second at 10 probes/s.
  TrwDetector detector;
  const Ipv4 infected{10, 1, 2, 3};
  std::uint32_t probes = 0;
  while (detector.VerdictFor(infected) == TrwVerdict::kPending) {
    detector.Observe(probes * 0.1, infected, false);
    ++probes;
  }
  EXPECT_LE(probes, 10u);
  EXPECT_EQ(detector.VerdictFor(infected), TrwVerdict::kScanner);
}

}  // namespace
}  // namespace hotspots::detect
