// End-to-end daemon pin — the PR's acceptance criterion: a corpus fanned
// out over >= 8 concurrent loopback connections folds to analysis state
// *bit-identical* to an embedded replay of the same file.  The observer
// stack (telescope + TRW gateway + content prevalence in a TeeObserver)
// is the same one tools/telescope_server composes; the reference is
// trace::ReplayFile, the repo's canonical offline execution mode.  Also
// pinned here: the HTTP side (JSON /metrics, /metrics.prom, /healthz,
// 404) and both poller backends via the force_poll parameter.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "detect/probe_stream.h"
#include "net/interval_set.h"
#include "net/ipv4.h"
#include "net/prefix.h"
#include "serve/load_client.h"
#include "serve/server.h"
#include "sim/observer.h"
#include "telescope/telescope.h"
#include "trace/replay.h"
#include "trace/writer.h"

namespace hotspots::serve {
namespace {

using net::Ipv4;
using net::Prefix;

constexpr std::uint64_t kFingerprint = 0xD5217EA1u;

/// One full observer stack, identical on the reference and served sides.
struct Stack {
  telescope::Telescope sensors;
  detect::TrwGatewayObserver trw;
  detect::PrevalenceStreamObserver prevalence;
  sim::TeeObserver tee;

  Stack()
      : sensors{[] {
          telescope::SensorOptions options;
          options.alert_threshold = 50;
          return options;
        }()},
        trw{[] {
          net::IntervalSet live;
          live.Add(Prefix{Ipv4{192, 168, 0, 0}, 16});
          live.Build();
          return live;
        }()} {
    sensors.AddSensor("serve/16", Prefix{Ipv4{10, 0, 0, 0}, 16});
    sensors.Build();
    tee.Add(&sensors);
    tee.Add(&trw);
    tee.Add(&prevalence);
    tee.OnAttach();
  }
};

/// ~6k records in 24ish blocks: half aimed at the 10.0.0.0/16 darknet
/// sensor, the rest scattered (all outside the TRW live space, so every
/// source racks up failures and TRW alerts deterministically).
std::string WriteCorpus() {
  // ctest -j runs every case as its own process and all of them write the
  // corpus, so the path must be per-process to keep reads from racing a
  // concurrent rewrite.
  const std::string path = ::testing::TempDir() + "/serve_server." +
                           std::to_string(::getpid()) + ".trace";
  trace::TraceWriterOptions options;
  options.scenario_fingerprint = kFingerprint;
  options.seed = 7;
  options.block_records = 256;
  trace::TraceWriter writer{path, options};
  writer.OnAttach();
  std::vector<sim::ProbeEvent> events;
  for (std::uint32_t i = 0; i < 6000; ++i) {
    sim::ProbeEvent event;
    event.time = 0.01 * static_cast<double>(i / 8);
    event.src_host = i % 97;
    event.src_address = Ipv4{0xC6000000u + (i % 97) * 131u};
    event.dst = (i % 2 == 0) ? Ipv4{(10u << 24) | (i * 2654435761u & 0xFFFFu)}
                             : Ipv4{(60u << 24) | (i * 40503u & 0xFFFFFFu)};
    event.delivery = topology::Delivery::kDelivered;
    events.push_back(event);
  }
  writer.OnProbeBatch(events);
  writer.Finish();
  return path;
}

/// Minimal blocking HTTP/1.0 GET against the bound loopback port.
std::string HttpGet(std::uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request = "GET " + target + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buffer[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

class ServeServerTest : public ::testing::TestWithParam<bool> {};

TEST_P(ServeServerTest, EightConnectionLoopbackEqualsEmbeddedReplay) {
  const std::string corpus_path = WriteCorpus();

  // Reference: the canonical offline replay.
  Stack reference;
  const auto summary = trace::ReplayFile(corpus_path, reference.tee);
  ASSERT_EQ(summary.records, 6000u);
  ASSERT_TRUE(reference.sensors.sensor(0).alerted());
  ASSERT_TRUE(reference.trw.first_alert_time().has_value());

  // Served: same stack behind the daemon, fed over 8 TCP connections.
  Stack served;
  ServerOptions options;
  options.force_poll = GetParam();
  options.enforce_fingerprint = true;
  options.expected_fingerprint = kFingerprint;
  TelescopeServer server{served.tee, options};
  server.set_before_snapshot([&] { served.sensors.PublishSensorMetrics(); });
  server.set_alert_probe([&] { return served.sensors.AlertedCount() > 0; });
  server.Bind();
  std::thread server_thread{[&] { server.Run(); }};

  CorpusIndex corpus{corpus_path};
  ASSERT_GE(corpus.blocks().size(), 8u);
  LoadOptions load;
  load.port = server.port();
  load.connections = 8;
  const LoadReport report = RunLoad(corpus, load);
  EXPECT_EQ(report.records_sent, 6000u);
  EXPECT_EQ(report.blocks_sent, corpus.blocks().size());
  EXPECT_EQ(report.ack_latency_seconds.size(), 8u);

  // ACKs are the durability barrier: everything is already folded here.
  EXPECT_EQ(server.fold().records_folded(), 6000u);
  EXPECT_EQ(server.fold().sequence_gaps(), 0u);
  EXPECT_TRUE(server.fold().alert_seen());

  // HTTP endpoints while the daemon is live.
  const std::string json = HttpGet(server.port(), "/metrics");
  EXPECT_NE(json.find("200"), std::string::npos);
  EXPECT_NE(json.find("hotspots.metrics.v1"), std::string::npos);
  EXPECT_NE(json.find("serve.ingest.records"), std::string::npos);
  EXPECT_NE(json.find("telescope.sensor.serve/16.probes"), std::string::npos);
  const std::string prom = HttpGet(server.port(), "/metrics.prom");
  EXPECT_NE(prom.find("200"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE"), std::string::npos);
  const std::string health = HttpGet(server.port(), "/healthz");
  EXPECT_NE(health.find("200"), std::string::npos);
  const std::string missing = HttpGet(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  server.RequestShutdown();
  server_thread.join();

  // The acceptance pin: gauges AND alert times bit-identical.
  const auto& ref_sensor = reference.sensors.sensor(0);
  const auto& got_sensor = served.sensors.sensor(0);
  EXPECT_EQ(got_sensor.probe_count(), ref_sensor.probe_count());
  EXPECT_EQ(got_sensor.UniqueSourceCount(), ref_sensor.UniqueSourceCount());
  ASSERT_TRUE(got_sensor.alerted());
  EXPECT_EQ(*got_sensor.alert_time(), *ref_sensor.alert_time());

  EXPECT_EQ(served.trw.probes_seen(), reference.trw.probes_seen());
  EXPECT_EQ(served.trw.probes_fed(), reference.trw.probes_fed());
  ASSERT_TRUE(served.trw.first_alert_time().has_value());
  EXPECT_EQ(*served.trw.first_alert_time(), *reference.trw.first_alert_time());

  EXPECT_EQ(served.prevalence.alert_time().has_value(),
            reference.prevalence.alert_time().has_value());
  if (reference.prevalence.alert_time().has_value()) {
    EXPECT_EQ(*served.prevalence.alert_time(),
              *reference.prevalence.alert_time());
  }
}

TEST_P(ServeServerTest, FingerprintMismatchRejectsFeed) {
  const std::string corpus_path = WriteCorpus();
  Stack served;
  ServerOptions options;
  options.force_poll = GetParam();
  options.enforce_fingerprint = true;
  options.expected_fingerprint = kFingerprint + 1;  // Wrong scenario.
  TelescopeServer server{served.tee, options};
  server.Bind();
  std::thread server_thread{[&] { server.Run(); }};

  CorpusIndex corpus{corpus_path};
  LoadOptions load;
  load.port = server.port();
  load.connections = 2;
  load.max_attempts = 5;  // A refusal must NOT burn retries: it is final.
  try {
    (void)RunLoad(corpus, load);
    FAIL() << "RunLoad accepted a mismatched-fingerprint session";
  } catch (const std::runtime_error& error) {
    // The client surfaces the server's in-band ERROR reason verbatim —
    // not a bare EPIPE — so operators see *why* admission failed.
    const std::string what = error.what();
    EXPECT_NE(what.find("server refused the session"), std::string::npos)
        << what;
    EXPECT_NE(what.find("scenario fingerprint"), std::string::npos) << what;
  }

  server.RequestShutdown();
  server_thread.join();
  EXPECT_EQ(server.fold().records_folded(), 0u);
}

/// The chaos acceptance pin: deterministic injected socket faults —
/// mid-frame disconnects, hard resets, fragmented writes — with
/// reconnect-with-resume must leave the folded analysis state
/// *bit-identical* to the clean embedded replay, with every unrecovered
/// loss (here: none) accounted in sequence_gaps.
TEST_P(ServeServerTest, ChaosCutsWithReconnectResumeFoldExactly) {
  const std::string corpus_path = WriteCorpus();

  Stack reference;
  const auto summary = trace::ReplayFile(corpus_path, reference.tee);
  ASSERT_EQ(summary.records, 6000u);

  Stack served;
  ServerOptions options;
  options.force_poll = GetParam();
  options.enforce_fingerprint = true;
  options.expected_fingerprint = kFingerprint;
  // Keep the gap timeout far above the reconnect backoff so a killed
  // stripe always resumes before the fold steps over its sequences —
  // losses here must be *recovered*, not written off.
  options.fold.gap_timeout_seconds = 60.0;
  TelescopeServer server{served.tee, options};
  server.set_alert_probe([&] { return served.sensors.AlertedCount() > 0; });
  server.Bind();
  std::thread server_thread{[&] { server.Run(); }};

  CorpusIndex corpus{corpus_path};
  LoadOptions load;
  load.port = server.port();
  load.connections = 8;
  load.max_attempts = 64;
  load.backoff_base_seconds = 0.005;
  load.backoff_cap_seconds = 0.05;
  load.chaos = ParseChaosSpec(
      "seed:1311;disconnect:0.12;reset:0.05;shortwrite:0.25");
  const LoadReport report = RunLoad(corpus, load);
  // The spec is deterministic: this seed provably injects kills (pinned
  // so a silently disabled shim cannot pass as a trivially clean run).
  EXPECT_GT(report.chaos_cuts, 0u);
  EXPECT_GE(report.reconnects, report.chaos_cuts);

  // Every record reached the fold exactly once despite the carnage.
  EXPECT_EQ(server.fold().records_folded(), 6000u);
  EXPECT_EQ(server.fold().sequence_gaps(), 0u);

  server.RequestShutdown();
  server_thread.join();

  const auto& ref_sensor = reference.sensors.sensor(0);
  const auto& got_sensor = served.sensors.sensor(0);
  EXPECT_EQ(got_sensor.probe_count(), ref_sensor.probe_count());
  EXPECT_EQ(got_sensor.UniqueSourceCount(), ref_sensor.UniqueSourceCount());
  ASSERT_EQ(got_sensor.alerted(), ref_sensor.alerted());
  if (ref_sensor.alerted()) {
    EXPECT_EQ(*got_sensor.alert_time(), *ref_sensor.alert_time());
  }
  EXPECT_EQ(served.trw.probes_seen(), reference.trw.probes_seen());
  ASSERT_EQ(served.trw.first_alert_time().has_value(),
            reference.trw.first_alert_time().has_value());
  if (reference.trw.first_alert_time().has_value()) {
    EXPECT_EQ(*served.trw.first_alert_time(),
              *reference.trw.first_alert_time());
  }
  EXPECT_EQ(served.prevalence.alert_time().has_value(),
            reference.prevalence.alert_time().has_value());
  if (reference.prevalence.alert_time().has_value()) {
    EXPECT_EQ(*served.prevalence.alert_time(),
              *reference.prevalence.alert_time());
  }
}

INSTANTIATE_TEST_SUITE_P(Pollers, ServeServerTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "poll" : "native";
                         });

}  // namespace
}  // namespace hotspots::serve
