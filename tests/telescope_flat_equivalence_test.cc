// Equivalence tests for the flat (open-addressing) telescope counters.
//
// SensorBlock replaced its std::unordered_set/unordered_map bookkeeping
// with sim::FlatSet and a dense per-/24 array.  These tests replay recorded
// probe streams into both the production sensor and a naive unordered_*
// reference tally and require Histogram(), UniqueSourceCount(), probe
// counts, and alert times to be bit-identical — including after Reset()
// reuse across trials, and whether events arrive per-probe or in batches.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/ipv4.h"
#include "net/prefix.h"
#include "prng/xoshiro.h"
#include "sim/flat_table.h"
#include "sim/observer.h"
#include "telescope/telescope.h"

namespace hotspots::telescope {
namespace {

using net::Ipv4;
using net::Prefix;

struct RecordedProbe {
  double time;
  Ipv4 src;
  Ipv4 dst;
};

/// A recorded stream of probes into `block`, with deliberate source reuse
/// (small source pool) and src == 0.0.0.0 mixed in: address 0 is a valid
/// set member and must not be confused with the FlatSet empty slot.
std::vector<RecordedProbe> MakeStream(const Prefix& block, std::uint64_t seed,
                                      int count) {
  prng::Xoshiro256 rng{seed};
  std::vector<RecordedProbe> stream;
  stream.reserve(static_cast<std::size_t>(count));
  const std::uint32_t span = block.last().value() - block.first().value();
  for (int i = 0; i < count; ++i) {
    RecordedProbe probe;
    probe.time = static_cast<double>(i) * 0.01;
    const std::uint32_t pick = rng.UniformBelow(1000);
    probe.src = pick == 0 ? Ipv4{0} : Ipv4{rng.NextU32() & 0x3FFu};
    probe.dst = Ipv4{block.first().value() + rng.UniformBelow(span + 1)};
    stream.push_back(probe);
  }
  return stream;
}

/// The pre-refactor bookkeeping, kept as the oracle.
struct ReferenceTally {
  std::uint64_t probes = 0;
  std::optional<double> alert_time;
  std::unordered_set<std::uint32_t> sources;
  std::unordered_map<std::uint32_t, std::uint64_t> per_slash24_probes;
  std::unordered_map<std::uint32_t, std::unordered_set<std::uint32_t>>
      per_slash24_sources;

  void Record(const RecordedProbe& probe, std::uint64_t alert_threshold) {
    ++probes;
    if (alert_threshold > 0 && !alert_time && probes >= alert_threshold) {
      alert_time = probe.time;
    }
    sources.insert(probe.src.value());
    const std::uint32_t slash24 = probe.dst.Slash24();
    ++per_slash24_probes[slash24];
    per_slash24_sources[slash24].insert(probe.src.value());
  }
};

void ExpectSensorMatchesReference(const SensorBlock& sensor,
                                  const ReferenceTally& reference) {
  EXPECT_EQ(sensor.probe_count(), reference.probes);
  EXPECT_EQ(sensor.UniqueSourceCount(), reference.sources.size());
  EXPECT_EQ(sensor.alert_time(), reference.alert_time);
  const auto rows = sensor.Histogram();
  const std::uint32_t first = sensor.block().first().Slash24();
  const std::uint32_t last = sensor.block().last().Slash24();
  ASSERT_EQ(rows.size(), static_cast<std::size_t>(last - first + 1));
  for (const Slash24Row& row : rows) {
    const auto probes_it = reference.per_slash24_probes.find(row.slash24);
    const std::uint64_t want_probes =
        probes_it == reference.per_slash24_probes.end() ? 0
                                                        : probes_it->second;
    const auto sources_it = reference.per_slash24_sources.find(row.slash24);
    const std::size_t want_sources =
        sources_it == reference.per_slash24_sources.end()
            ? 0
            : sources_it->second.size();
    ASSERT_EQ(row.stats.probes, want_probes) << "slash24=" << row.slash24;
    ASSERT_EQ(row.stats.unique_sources, want_sources)
        << "slash24=" << row.slash24;
  }
}

TEST(FlatSensorEquivalenceTest, MatchesUnorderedBaselineOnRandomStream) {
  const Prefix block{Ipv4{60, 20, 0, 0}, 18};
  SensorOptions options;
  options.alert_threshold = 500;
  SensorBlock sensor{"eq", block, options};
  ReferenceTally reference;
  for (const RecordedProbe& probe : MakeStream(block, 0xFEED, 50'000)) {
    sensor.Record(probe.time, probe.src, probe.dst);
    reference.Record(probe, options.alert_threshold);
  }
  ExpectSensorMatchesReference(sensor, reference);
  EXPECT_TRUE(sensor.alerted());
}

TEST(FlatSensorEquivalenceTest, ResetReuseMatchesFreshSensor) {
  const Prefix block{Ipv4{80, 44, 0, 0}, 16};
  SensorOptions options;
  options.alert_threshold = 100;
  SensorBlock reused{"reused", block, options};
  // Trial 1: a large stream that grows the internal tables.
  for (const RecordedProbe& probe : MakeStream(block, 0xAAA, 30'000)) {
    reused.Record(probe.time, probe.src, probe.dst);
  }
  reused.Reset();
  EXPECT_EQ(reused.probe_count(), 0u);
  EXPECT_EQ(reused.UniqueSourceCount(), 0u);
  EXPECT_FALSE(reused.alerted());

  // Trial 2: the reused sensor must be indistinguishable from a fresh one
  // (and from the unordered reference) on a different stream.
  SensorBlock fresh{"fresh", block, options};
  ReferenceTally reference;
  for (const RecordedProbe& probe : MakeStream(block, 0xBBB, 20'000)) {
    reused.Record(probe.time, probe.src, probe.dst);
    fresh.Record(probe.time, probe.src, probe.dst);
    reference.Record(probe, options.alert_threshold);
  }
  ExpectSensorMatchesReference(reused, reference);
  ExpectSensorMatchesReference(fresh, reference);
  EXPECT_EQ(reused.alert_time(), fresh.alert_time());
}

TEST(FlatSensorEquivalenceTest, HistogramWithoutPerSlash24IsZeroRows) {
  SensorOptions options;
  options.track_per_slash24 = false;
  SensorBlock sensor{"lean", Prefix{Ipv4{91, 7, 0, 0}, 20}, options};
  sensor.Record(1.0, Ipv4{1, 2, 3, 4}, Ipv4{91, 7, 3, 9});
  const auto rows = sensor.Histogram();
  ASSERT_EQ(rows.size(), 16u);  // A /20 spans 16 /24s.
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].slash24, Ipv4(91, 7, 0, 0).Slash24() + i);
    EXPECT_EQ(rows[i].stats.probes, 0u);
    EXPECT_EQ(rows[i].stats.unique_sources, 0u);
  }
  EXPECT_EQ(sensor.probe_count(), 1u);
}

TEST(TelescopeBatchEquivalenceTest, BatchedAndPerProbeDeliveryAgree) {
  SensorOptions options;
  options.alert_threshold = 50;
  const std::vector<Prefix> blocks = {Prefix{Ipv4{60, 20, 0, 0}, 18},
                                      Prefix{Ipv4{80, 44, 0, 0}, 16},
                                      Prefix{Ipv4{91, 7, 0, 0}, 20}};
  Telescope per_probe{options};
  Telescope batched{options};
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    per_probe.AddSensor("s" + std::to_string(i), blocks[i]);
    batched.AddSensor("s" + std::to_string(i), blocks[i]);
  }
  per_probe.Build();
  batched.Build();

  // Event stream mixing hits on every block, misses, and non-delivered
  // verdicts (which observers must ignore).
  prng::Xoshiro256 rng{0xCAFE};
  std::vector<sim::ProbeEvent> events;
  for (int i = 0; i < 40'000; ++i) {
    sim::ProbeEvent event;
    event.time = static_cast<double>(i) * 0.001;
    event.src_address = Ipv4{rng.NextU32()};
    const Prefix& block = blocks[rng.UniformBelow(4) % blocks.size()];
    event.dst = rng.UniformBelow(4) == 0
                    ? Ipv4{rng.NextU32()}
                    : Ipv4{block.first().value() +
                           (rng.NextU32() &
                            (block.last().value() - block.first().value()))};
    event.delivery = rng.UniformBelow(10) == 0
                         ? topology::Delivery::kNetworkLoss
                         : topology::Delivery::kDelivered;
    events.push_back(event);
  }

  for (const sim::ProbeEvent& event : events) per_probe.OnProbe(event);
  // Feed the same stream in irregular batch sizes.
  std::size_t begin = 0;
  prng::Xoshiro256 chunk_rng{0xBA7C};
  while (begin < events.size()) {
    const std::size_t size = std::min<std::size_t>(
        1 + chunk_rng.UniformBelow(999), events.size() - begin);
    batched.OnProbeBatch(
        std::span<const sim::ProbeEvent>{events.data() + begin, size});
    begin += size;
  }

  ASSERT_EQ(per_probe.size(), batched.size());
  EXPECT_EQ(per_probe.AlertedCount(), batched.AlertedCount());
  for (int i = 0; i < static_cast<int>(per_probe.size()); ++i) {
    const SensorBlock& a = per_probe.sensor(i);
    const SensorBlock& b = batched.sensor(i);
    EXPECT_EQ(a.probe_count(), b.probe_count());
    EXPECT_EQ(a.UniqueSourceCount(), b.UniqueSourceCount());
    EXPECT_EQ(a.alert_time(), b.alert_time());
    const auto rows_a = a.Histogram();
    const auto rows_b = b.Histogram();
    ASSERT_EQ(rows_a.size(), rows_b.size());
    for (std::size_t r = 0; r < rows_a.size(); ++r) {
      ASSERT_EQ(rows_a[r].slash24, rows_b[r].slash24);
      ASSERT_EQ(rows_a[r].stats.probes, rows_b[r].stats.probes);
      ASSERT_EQ(rows_a[r].stats.unique_sources,
                rows_b[r].stats.unique_sources);
    }
  }
}

TEST(TelescopeBuildTest, BuildIsIdempotent) {
  Telescope telescope;
  telescope.AddSensor("a", Prefix{Ipv4{60, 20, 0, 0}, 16});
  telescope.Build();
  EXPECT_NO_THROW(telescope.Build());
  EXPECT_NO_THROW(telescope.OnAttach());
  telescope.Observe(1.0, Ipv4{9, 9, 9, 9}, Ipv4{60, 20, 1, 1});
  EXPECT_EQ(telescope.sensor(0).probe_count(), 1u);
}

TEST(TelescopeBuildTest, UnbuiltTelescopeFailsAtAttach) {
  Telescope telescope;
  telescope.AddSensor("a", Prefix{Ipv4{60, 20, 0, 0}, 16});
  EXPECT_THROW(telescope.OnAttach(), std::logic_error);
  sim::ProbeEvent event;
  event.dst = Ipv4{60, 20, 1, 1};
  event.delivery = topology::Delivery::kDelivered;
  EXPECT_THROW(telescope.OnProbe(event), std::logic_error);
  EXPECT_THROW(
      telescope.OnProbeBatch(std::span<const sim::ProbeEvent>{&event, 1}),
      std::logic_error);
  telescope.Build();
  EXPECT_NO_THROW(telescope.OnAttach());
  EXPECT_NO_THROW(telescope.OnProbe(event));
}

TEST(FlatSetTest, SupportsKeyZeroAndAgreesWithUnorderedSet) {
  sim::FlatSet<std::uint32_t> set;
  std::unordered_set<std::uint32_t> reference;
  prng::Xoshiro256 rng{99};
  for (int i = 0; i < 30'000; ++i) {
    // Small key space (with 0 included) forces duplicates and collisions.
    const std::uint32_t key = rng.NextU32() & 0xFFFu;
    EXPECT_EQ(set.Insert(key), reference.insert(key).second);
  }
  EXPECT_EQ(set.size(), reference.size());
  for (std::uint32_t key = 0; key < 0x1000u; ++key) {
    ASSERT_EQ(set.Contains(key), reference.count(key) != 0) << key;
  }
}

TEST(FlatSetTest, ClearKeepsContentsOut) {
  sim::FlatSet<std::uint32_t> set;
  set.Insert(0);
  set.Insert(17);
  EXPECT_EQ(set.size(), 2u);
  set.Clear();
  EXPECT_EQ(set.size(), 0u);
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.Contains(0));
  EXPECT_FALSE(set.Contains(17));
  EXPECT_TRUE(set.Insert(17));
  EXPECT_TRUE(set.Insert(0));
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace hotspots::telescope
