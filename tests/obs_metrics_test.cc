// Pins the metrics-registry contracts the instrumentation layers rely on:
// sharded-counter exactness under contention, the INCLUSIVE-upper-bound
// histogram semantics, snapshot monotonicity while writers are mid-flight,
// and registry identity (one name → one metric object, forever).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"

namespace hotspots::obs {
namespace {

TEST(ObsCounterTest, ConcurrentIncrementsAreExact) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(ObsCounterTest, AddAccumulatesDeltas) {
  Counter counter;
  counter.Add(40);
  counter.Add(0);
  counter.Add(2);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(ObsGaugeTest, SetMaxMinAndUnsetSemantics) {
  Gauge gauge;
  EXPECT_FALSE(gauge.has_value());
  EXPECT_TRUE(std::isnan(gauge.Value()));

  // An unset gauge adopts the first value through either extreme op.
  gauge.SetMin(5.0);
  EXPECT_TRUE(gauge.has_value());
  EXPECT_DOUBLE_EQ(gauge.Value(), 5.0);
  gauge.SetMin(7.0);  // Larger: ignored.
  EXPECT_DOUBLE_EQ(gauge.Value(), 5.0);
  gauge.SetMin(2.0);
  EXPECT_DOUBLE_EQ(gauge.Value(), 2.0);

  gauge.SetMax(1.0);  // Smaller: ignored.
  EXPECT_DOUBLE_EQ(gauge.Value(), 2.0);
  gauge.SetMax(9.0);
  EXPECT_DOUBLE_EQ(gauge.Value(), 9.0);

  gauge.Set(-3.0);  // Plain Set always overwrites.
  EXPECT_DOUBLE_EQ(gauge.Value(), -3.0);
}

TEST(ObsGaugeTest, SetNaNStillCountsAsWritten) {
  // Regression: "written" used to be inferred from the NaN initializer, so
  // an explicit Set(NaN) — a legitimate value for e.g. an empty-run mean —
  // left the gauge looking unset and dropped it from every snapshot.  The
  // written flag is now explicit.
  Gauge gauge;
  gauge.Set(std::numeric_limits<double>::quiet_NaN());
  EXPECT_TRUE(gauge.has_value());
  EXPECT_TRUE(std::isnan(gauge.Value()));

  // A NaN-valued slot still adopts the next extreme update.
  gauge.SetMax(3.0);
  EXPECT_TRUE(gauge.has_value());
  EXPECT_DOUBLE_EQ(gauge.Value(), 3.0);
}

TEST(ObsGaugeTest, ExplicitNaNReachesSnapshots) {
  Registry registry;
  registry.GetGauge("nan.gauge").Set(
      std::numeric_limits<double>::quiet_NaN());
  registry.GetGauge("never.written");
  const Snapshot snapshot = registry.TakeSnapshot();
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].name, "nan.gauge");
  EXPECT_TRUE(std::isnan(snapshot.gauges[0].value));
  EXPECT_EQ(snapshot.FindGauge("never.written"), nullptr);
}

TEST(ObsHistogramTest, UpperBoundsAreInclusive) {
  const std::vector<double> bounds{1.0, 2.0, 4.0};
  Histogram histogram{bounds};
  histogram.Observe(0.5);     // ≤ 1        → bucket 0
  histogram.Observe(1.0);     // == bound   → bucket 0 (inclusive upper)
  histogram.Observe(1.0001);  // just above → bucket 1
  histogram.Observe(2.0);     // == bound   → bucket 1
  histogram.Observe(4.0);     // == last    → bucket 2
  histogram.Observe(4.1);     // above all  → overflow
  const std::vector<std::uint64_t> expected{2, 2, 1, 1};
  EXPECT_EQ(histogram.BucketCounts(), expected);
  EXPECT_EQ(histogram.Count(), 6u);
  EXPECT_DOUBLE_EQ(histogram.Min(), 0.5);
  EXPECT_DOUBLE_EQ(histogram.Max(), 4.1);
  EXPECT_NEAR(histogram.Sum(), 0.5 + 1.0 + 1.0001 + 2.0 + 4.0 + 4.1, 1e-12);
}

TEST(ObsHistogramTest, EmptyHistogramReportsNaNExtremes) {
  const std::vector<double> bounds{1.0};
  Histogram histogram{bounds};
  EXPECT_EQ(histogram.Count(), 0u);
  EXPECT_TRUE(std::isnan(histogram.Min()));
  EXPECT_TRUE(std::isnan(histogram.Max()));
}

TEST(ObsHistogramTest, RejectsEmptyOrNonAscendingBounds) {
  const std::vector<double> empty;
  EXPECT_THROW(Histogram{empty}, std::invalid_argument);
  const std::vector<double> repeated{1.0, 1.0};
  EXPECT_THROW(Histogram{repeated}, std::invalid_argument);
  const std::vector<double> descending{2.0, 1.0};
  EXPECT_THROW(Histogram{descending}, std::invalid_argument);
}

TEST(ObsHistogramTest, ExponentialBoundsShape) {
  const std::vector<double> bounds = ExponentialBounds(1e-3, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1e-3);
  EXPECT_DOUBLE_EQ(bounds[1], 2e-3);
  EXPECT_DOUBLE_EQ(bounds[2], 4e-3);
  EXPECT_DOUBLE_EQ(bounds[3], 8e-3);
}

TEST(ObsRegistryTest, OneNameOneMetricObject) {
  Registry registry;
  Counter& a = registry.GetCounter("x");
  Counter& b = registry.GetCounter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &registry.GetCounter("y"));

  const std::vector<double> bounds1{1.0, 2.0};
  const std::vector<double> bounds2{10.0};
  Histogram& h1 = registry.GetHistogram("h", bounds1);
  // First registration fixes the bounds; later callers get the same object.
  Histogram& h2 = registry.GetHistogram("h", bounds2);
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds(), bounds1);
}

TEST(ObsRegistryTest, SnapshotSkipsUnsetGaugesAndSortsNames) {
  Registry registry;
  registry.GetCounter("b.count").Add(2);
  registry.GetCounter("a.count").Add(1);
  registry.GetGauge("set.gauge").Set(1.5);
  registry.GetGauge("unset.gauge");  // Registered but never written.
  const Snapshot snapshot = registry.TakeSnapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "a.count");
  EXPECT_EQ(snapshot.counters[1].name, "b.count");
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].name, "set.gauge");
  EXPECT_EQ(snapshot.FindCounter("b.count")->value, 2u);
  EXPECT_EQ(snapshot.FindCounter("missing"), nullptr);
  EXPECT_EQ(snapshot.FindGauge("unset.gauge"), nullptr);
}

TEST(ObsRegistryTest, SnapshotWhileWritingIsMonotoneAndFinallyExact) {
  Registry registry;
  Counter& counter = registry.GetCounter("contended");
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 50'000;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {}
      for (std::uint64_t i = 0; i < kPerWriter; ++i) counter.Increment();
    });
  }
  go.store(true, std::memory_order_release);
  // Successive snapshots taken mid-write must never go backwards: every
  // shard is monotone, so a sum of relaxed loads is a valid lower bound.
  std::uint64_t previous = 0;
  for (int i = 0; i < 100; ++i) {
    const Snapshot snapshot = registry.TakeSnapshot();
    const std::uint64_t value = snapshot.FindCounter("contended")->value;
    EXPECT_GE(value, previous);
    EXPECT_LE(value, kWriters * kPerWriter);
    previous = value;
  }
  for (auto& writer : writers) writer.join();
  EXPECT_EQ(registry.TakeSnapshot().FindCounter("contended")->value,
            kWriters * kPerWriter);
}

TEST(ObsPrometheusTest, SanitizesNamesAndSuffixesCounters) {
  Registry registry;
  registry.GetCounter("engine.probes").Add(42);
  registry.GetCounter("9weird-name").Add(1);
  const std::string text = SnapshotToPrometheus(registry.TakeSnapshot());
  EXPECT_NE(text.find("# TYPE engine_probes_total counter\n"
                      "engine_probes_total 42\n"),
            std::string::npos);
  // Invalid chars become '_'; a leading digit gets a '_' prefix.
  EXPECT_NE(text.find("_9weird_name_total 1\n"), std::string::npos);
}

TEST(ObsPrometheusTest, GaugesSpellNonFiniteLiterals) {
  Registry registry;
  registry.GetGauge("plain.gauge").Set(1.5);
  registry.GetGauge("nan.gauge").Set(std::numeric_limits<double>::quiet_NaN());
  registry.GetGauge("inf.gauge").Set(std::numeric_limits<double>::infinity());
  const std::string text = SnapshotToPrometheus(registry.TakeSnapshot());
  EXPECT_NE(text.find("plain_gauge 1.5\n"), std::string::npos);
  EXPECT_NE(text.find("nan_gauge NaN\n"), std::string::npos);
  EXPECT_NE(text.find("inf_gauge +Inf\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE plain_gauge gauge\n"), std::string::npos);
}

TEST(ObsPrometheusTest, HistogramBucketsAreCumulativeAndEndAtInf) {
  Registry registry;
  const std::vector<double> bounds{1.0, 2.0};
  Histogram& histogram = registry.GetHistogram("lat.seconds", bounds);
  histogram.Observe(0.5);   // bucket ≤1
  histogram.Observe(1.5);   // bucket ≤2
  histogram.Observe(1.5);   // bucket ≤2
  histogram.Observe(99.0);  // overflow
  const std::string text = SnapshotToPrometheus(registry.TakeSnapshot());
  EXPECT_NE(text.find("# TYPE lat_seconds histogram\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"2\"} 3\n"), std::string::npos);
  // The +Inf row is last and equals the observation count.
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 4\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_sum 102.5\n"), std::string::npos);
  EXPECT_LT(text.find("le=\"2\""), text.find("le=\"+Inf\""));
}

TEST(ObsRegistryTest, ResetForTestingDropsEverything) {
  Registry registry;
  registry.GetCounter("gone").Add(3);
  registry.ResetForTesting();
  const Snapshot snapshot = registry.TakeSnapshot();
  EXPECT_TRUE(snapshot.counters.empty());
  EXPECT_TRUE(snapshot.gauges.empty());
  EXPECT_TRUE(snapshot.histograms.empty());
}

}  // namespace
}  // namespace hotspots::obs
