// Byte-level encode/decode for `hotspots.ingest.v1` frames.
//
// FrameParser is the receive half: feed it whatever the socket produced
// and pull complete frames out.  It is deliberately shaped like
// trace::StreamDecoder — an internal compacting buffer, a cursor, and a
// "return empty until a whole structure is buffered" contract — because a
// readiness loop delivers bytes in arbitrary fragments and the parser
// must make progress on every fragment without copying the stream twice.
// It validates only the *framing* (header size, payload ceiling, known
// type, fixed payload sizes for HELLO/FIN/ACK); the payload semantics
// belong to the connection's StreamDecoder.
//
// The Build* helpers are the send half, used by the load generator and
// the server's ACK path.  They append to a caller-owned byte vector so a
// client can batch many frames into one write.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "serve/protocol.h"

namespace hotspots::serve {

/// One complete frame surfaced by FrameParser.  `payload` aliases the
/// parser's internal buffer and is invalidated by the next Feed()/Next().
struct Frame {
  FrameHeader header;
  std::span<const std::uint8_t> payload;
};

class FrameParser {
 public:
  /// Appends raw socket bytes.  Never throws: framing violations are
  /// reported by Next() so callers have a single error path.
  void Feed(std::span<const std::uint8_t> bytes);

  /// Returns true and fills `out` when a complete frame is buffered;
  /// false when more bytes are needed.  Throws IngestError on framing
  /// violations (oversized payload, unknown type, wrong fixed size).
  bool Next(Frame& out);

  [[nodiscard]] std::size_t buffered_bytes() const {
    return buffer_.size() - pos_;
  }
  [[nodiscard]] std::uint64_t frames_parsed() const { return frames_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t pos_ = 0;
  std::uint64_t frames_ = 0;
};

/// Appends a 16-byte frame header to `out`.
void AppendFrameHeader(std::vector<std::uint8_t>& out, FrameType type,
                       std::uint64_t sequence, std::uint32_t payload_len);

/// Appends a complete HELLO frame.  `trace_header` must be the stream's
/// verbatim 48-byte hotspots.trace.v1 header.  `flags` is the kHelloFlag*
/// bitmask; legacy encoders pass 0 (the field used to be reserved).
void AppendHello(std::vector<std::uint8_t>& out, std::uint32_t connection,
                 std::uint32_t fanout,
                 std::span<const std::uint8_t> trace_header,
                 std::uint32_t flags = 0);

/// Appends a complete BLOCK frame wrapping one verbatim CRC-framed block.
void AppendBlock(std::vector<std::uint8_t>& out, std::uint64_t sequence,
                 std::span<const std::uint8_t> block);

/// Appends a complete FIN frame wrapping a 36-byte trailer structure.
void AppendFin(std::vector<std::uint8_t>& out,
               std::span<const std::uint8_t> trailer);

/// Appends a complete (empty-payload) ACK frame.
void AppendAck(std::vector<std::uint8_t>& out);

/// Appends a complete (empty-payload) PROGRESS frame whose sequence field
/// carries the fold's committed low-water mark.
void AppendProgress(std::vector<std::uint8_t>& out, std::uint64_t low_water);

/// Appends a complete ERROR frame carrying a one-line UTF-8 reason,
/// truncated to kMaxErrorPayloadBytes.
void AppendError(std::vector<std::uint8_t>& out, const std::string& message);

/// Parses and validates a HELLO payload.  Throws IngestError on bad
/// magic, version, size, or a connection index outside the fan-out.
[[nodiscard]] Hello ParseHello(std::span<const std::uint8_t> payload);

/// Builds the 36-byte per-connection trailer a FIN carries: a block frame
/// with record count zero and a 24-byte payload declaring this
/// connection's record/block totals and last-record time bits.
[[nodiscard]] std::vector<std::uint8_t> BuildConnectionTrailer(
    std::uint64_t records, std::uint64_t blocks, std::uint64_t last_time_bits);

}  // namespace hotspots::serve
