#include "serve/server.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/export.h"
#include "obs/metrics.h"

namespace hotspots::serve {
namespace {

[[noreturn]] void FailErrno(const std::string& what) {
  throw std::runtime_error("serve: " + what + ": " + std::strerror(errno));
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    FailErrno("fcntl(O_NONBLOCK)");
  }
}

}  // namespace

TelescopeServer::TelescopeServer(sim::MergeableObserver& observer,
                                 ServerOptions options)
    : observer_(observer),
      options_(std::move(options)),
      fold_(observer_, options_.fold),
      poller_(Poller::Create(options_.force_poll)) {}

TelescopeServer::~TelescopeServer() {
  connections_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
}

const char* TelescopeServer::poller_name() const { return poller_->name(); }

void TelescopeServer::Bind() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) FailErrno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    throw std::runtime_error("serve: bad bind address " +
                             options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    FailErrno("bind " + options_.bind_address + ":" +
              std::to_string(options_.port));
  }
  if (::listen(listen_fd_, 128) != 0) FailErrno("listen");
  SetNonBlocking(listen_fd_);

  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    FailErrno("getsockname");
  }
  bound_port_ = ntohs(addr.sin_port);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) FailErrno("pipe");
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
  SetNonBlocking(wake_read_);
  SetNonBlocking(wake_write_);
}

void TelescopeServer::RequestShutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  const char byte = 'q';
  // Async-signal-safe: a single write; EAGAIN means the pipe already has
  // a pending wake, which is just as good.
  [[maybe_unused]] const ssize_t n = ::write(wake_write_, &byte, 1);
}

Connection::Hooks TelescopeServer::MakeHooks() {
  Connection::Hooks hooks;
  hooks.fold = &fold_;
  hooks.max_output_buffer = options_.max_output_buffer;
  hooks.metrics_json = [this] { return RenderMetrics(false); };
  hooks.metrics_prom = [this] { return RenderMetrics(true); };
  if (options_.enforce_fingerprint) {
    const std::uint64_t expected = options_.expected_fingerprint;
    hooks.on_hello = [expected](const Hello& hello) {
      // The fingerprint sits at bytes [16..24) of the embedded header;
      // the decoder re-validates the full header later, this check only
      // guards session admission.
      std::uint64_t fp = 0;
      for (int i = 7; i >= 0; --i) {
        fp = (fp << 8) | hello.trace_header[16 + i];
      }
      if (fp != expected) {
        throw IngestError("ingest: scenario fingerprint " +
                          std::to_string(fp) +
                          " does not match this daemon's scenario " +
                          std::to_string(expected));
      }
    };
  }
  return hooks;
}

std::string TelescopeServer::RenderMetrics(bool prometheus) {
  obs::Snapshot snapshot;
  fold_.WithObserverLock([&] {
    if (before_snapshot_) before_snapshot_();
    snapshot = obs::Registry::Global().TakeSnapshot();
  });
  return prometheus ? obs::SnapshotToPrometheus(snapshot)
                    : obs::SnapshotToJson(snapshot);
}

std::string TelescopeServer::MetricsJson() { return RenderMetrics(false); }

void TelescopeServer::Accept() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // Transient accept failures are not fatal to the loop.
    }
    SetNonBlocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    Entry entry;
    entry.connection =
        std::make_unique<Connection>(fd, next_connection_id_++, MakeHooks());
    entry.want_read = true;
    entry.want_write = false;
    poller_->Add(fd, true, false);
    connections_.emplace(fd, std::move(entry));
  }
}

void TelescopeServer::SyncInterest(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Entry& entry = it->second;
  Connection& conn = *entry.connection;
  if (conn.closed()) {
    CloseConnection(fd);
    return;
  }
  if (conn.slot() >= 0 &&
      slot_to_fd_.count(static_cast<std::uint32_t>(conn.slot())) == 0) {
    slot_to_fd_[static_cast<std::uint32_t>(conn.slot())] = fd;
  }
  const bool want_read = conn.want_read();
  const bool want_write = conn.want_write();
  if (want_read != entry.want_read || want_write != entry.want_write) {
    poller_->Update(fd, want_read, want_write);
    entry.want_read = want_read;
    entry.want_write = want_write;
  }
}

void TelescopeServer::CloseConnection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  const Connection& conn = *it->second.connection;
  if (conn.slot() >= 0) {
    slot_to_fd_.erase(static_cast<std::uint32_t>(conn.slot()));
  }
  poller_->Remove(fd);
  connections_.erase(it);  // Destructor closes the fd.
}

void TelescopeServer::HandleWake() {
  char buffer[256];
  while (::read(wake_read_, buffer, sizeof buffer) > 0) {
  }
  std::vector<std::uint32_t> resumes;
  std::vector<std::uint32_t> acks;
  {
    std::lock_guard lock(mailbox_mutex_);
    resumes.swap(pending_resumes_);
    acks.swap(pending_acks_);
  }
  for (const std::uint32_t slot : resumes) {
    const auto it = slot_to_fd_.find(slot);
    if (it == slot_to_fd_.end()) continue;
    connections_[it->second].connection->ResumeReads();
    SyncInterest(it->second);
  }
  for (const std::uint32_t slot : acks) {
    const auto it = slot_to_fd_.find(slot);
    if (it == slot_to_fd_.end()) continue;
    const int fd = it->second;
    connections_[fd].connection->QueueAck();
    SyncInterest(fd);
  }
}

void TelescopeServer::Run() {
  if (listen_fd_ < 0) Bind();

  fold_.set_resume_callback([this](std::uint32_t slot) {
    {
      std::lock_guard lock(mailbox_mutex_);
      pending_resumes_.push_back(slot);
    }
    const char byte = 'r';
    [[maybe_unused]] const ssize_t n = ::write(wake_write_, &byte, 1);
  });
  fold_.set_ack_callback([this](std::uint32_t slot) {
    {
      std::lock_guard lock(mailbox_mutex_);
      pending_acks_.push_back(slot);
    }
    const char byte = 'a';
    [[maybe_unused]] const ssize_t n = ::write(wake_write_, &byte, 1);
  });
  fold_.Start();

  poller_->Add(listen_fd_, true, false);
  poller_->Add(wake_read_, true, false);

  bool draining = false;
  std::chrono::steady_clock::time_point drain_deadline;
  std::vector<PollEvent> events;

  for (;;) {
    int timeout_ms = -1;
    if (draining) {
      const auto remaining = drain_deadline - std::chrono::steady_clock::now();
      const auto ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
              .count();
      if (ms <= 0) break;
      timeout_ms = static_cast<int>(ms < 100 ? ms : 100);
    }
    poller_->Wait(events, timeout_ms);

    for (const PollEvent& event : events) {
      if (event.fd == listen_fd_) {
        if (!draining && event.readable) Accept();
        continue;
      }
      if (event.fd == wake_read_) {
        HandleWake();
        continue;
      }
      auto it = connections_.find(event.fd);
      if (it == connections_.end()) continue;
      Connection& conn = *it->second.connection;
      if (event.error) {
        conn.OnError();
      } else {
        if (event.writable) conn.OnWritable();
        if (event.readable) conn.OnReadable();
      }
      SyncInterest(event.fd);
    }

    if (!draining &&
        shutdown_requested_.load(std::memory_order_acquire)) {
      draining = true;
      drain_deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(options_.drain_timeout_seconds));
      poller_->Remove(listen_fd_);
      ::close(listen_fd_);
      listen_fd_ = -1;
      // Connections that never completed a request/handshake have
      // nothing to drain; close them now.
      std::vector<int> idle;
      for (const auto& [fd, entry] : connections_) {
        const Connection& conn = *entry.connection;
        if (conn.slot() < 0 && !conn.want_write()) idle.push_back(fd);
      }
      for (const int fd : idle) CloseConnection(fd);
    }

    if (draining) {
      bool busy = false;
      for (const auto& [fd, entry] : connections_) {
        if (entry.connection->ingest_unfinished() ||
            entry.connection->want_write()) {
          busy = true;
          break;
        }
      }
      if (!busy) break;
    }
  }

  // Whatever is left did not finish inside the drain window: abandon the
  // unfinished ingest feeds (their queued blocks still fold) and close.
  for (const auto& [fd, entry] : connections_) {
    const Connection& conn = *entry.connection;
    if (conn.slot() >= 0 && conn.ingest_unfinished()) {
      fold_.AbandonSlot(static_cast<std::uint32_t>(conn.slot()));
    }
  }
  std::vector<int> remaining;
  remaining.reserve(connections_.size());
  for (const auto& [fd, entry] : connections_) remaining.push_back(fd);
  for (const int fd : remaining) CloseConnection(fd);

  fold_.Drain();
}

}  // namespace hotspots::serve
