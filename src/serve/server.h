// The telescope ingest daemon: one port, many feeds, live metrics.
//
// TelescopeServer binds a single TCP port and runs a non-blocking
// readiness loop (Poller: epoll on Linux, poll elsewhere).  Accepted
// connections self-select their protocol — `hotspots.ingest.v1` record
// streams or HTTP/1.0 metrics polls (see connection.h) — and every
// decoded probe folds through the shared MergeableObserver on the
// FoldPipeline's single fold thread, in global capture order, so the
// daemon's telescope/detector state is bit-identical to an embedded run
// of the same stream.
//
// Threading: exactly two threads touch server state.  The I/O thread
// owns the sockets, the poller, and every Connection; the fold thread
// owns the observer.  They meet in two places only: the fold queue
// (FoldPipeline's mutex) and the wake pipe — fold-side resume/ack
// decisions are queued under a mutex and a byte is written to a self-pipe
// the poller watches, so the I/O thread applies them on its own thread.
// RequestShutdown() writes the same pipe and nothing else, which makes it
// async-signal-safe: `signal(SIGTERM, ...)` handlers may call it
// directly.
//
// Graceful drain: on shutdown the server stops accepting, gives
// in-flight connections ServerOptions::drain_timeout_seconds to finish
// (ingest peers get their ACKs, HTTP responses flush), then abandons
// stragglers, folds everything already queued, finalizes shard states,
// and returns from Run().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/connection.h"
#include "serve/fold.h"
#include "serve/poller.h"

namespace hotspots::serve {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 binds an ephemeral port; read the result back from port().
  std::uint16_t port = 0;
  /// Force the portable poll(2) backend (HOTSPOTS_SERVE_POLLER=poll in
  /// the environment does the same).
  bool force_poll = false;
  FoldOptions fold;
  std::size_t max_output_buffer = std::size_t{1} << 20;
  double drain_timeout_seconds = 5.0;
  /// When set, every HELLO's embedded trace header must carry this
  /// scenario fingerprint; mismatching feeds are rejected so one daemon
  /// never folds two different scenarios into one state.
  bool enforce_fingerprint = false;
  std::uint64_t expected_fingerprint = 0;
};

class TelescopeServer {
 public:
  TelescopeServer(sim::MergeableObserver& observer, ServerOptions options);
  ~TelescopeServer();

  TelescopeServer(const TelescopeServer&) = delete;
  TelescopeServer& operator=(const TelescopeServer&) = delete;

  /// Polled on the fold thread after each block; true once the analysis
  /// state has raised its first alert.  Set before Run().
  void set_alert_probe(FoldPipeline::AlertProbe probe) {
    fold_.set_alert_probe(std::move(probe));
  }

  /// Runs under the observer lock just before every metrics snapshot —
  /// the place to publish observer state into the registry (e.g.
  /// Telescope::PublishSensorMetrics).  Set before Run().
  void set_before_snapshot(std::function<void()> fn) {
    before_snapshot_ = std::move(fn);
  }

  /// Creates the listening socket.  Throws std::runtime_error on
  /// failure.  port() is valid afterwards.
  void Bind();
  [[nodiscard]] std::uint16_t port() const { return bound_port_; }
  [[nodiscard]] const char* poller_name() const;

  /// Serves until RequestShutdown(), then drains and returns.
  void Run();

  /// Async-signal-safe shutdown trigger (a single write(2) on the wake
  /// pipe); callable from any thread or a signal handler.
  void RequestShutdown();

  [[nodiscard]] const FoldPipeline& fold() const { return fold_; }

  /// Renders the current hotspots.metrics.v1 JSON snapshot (also what
  /// GET /metrics serves).  Safe while serving.
  [[nodiscard]] std::string MetricsJson();

 private:
  void Accept();
  void HandleWake();
  void SyncInterest(int fd);
  void CloseConnection(int fd);
  [[nodiscard]] std::string RenderMetrics(bool prometheus);
  [[nodiscard]] Connection::Hooks MakeHooks();

  sim::MergeableObserver& observer_;
  ServerOptions options_;
  FoldPipeline fold_;
  std::function<void()> before_snapshot_;

  std::unique_ptr<Poller> poller_;
  int listen_fd_ = -1;
  int wake_read_ = -1;
  int wake_write_ = -1;
  std::uint16_t bound_port_ = 0;
  std::uint64_t next_connection_id_ = 0;

  struct Entry {
    std::unique_ptr<Connection> connection;
    bool want_read = false;
    bool want_write = false;
  };
  std::unordered_map<int, Entry> connections_;
  std::unordered_map<std::uint32_t, int> slot_to_fd_;

  /// Fold-thread → I/O-thread mailboxes, drained on wake-pipe readiness.
  std::mutex mailbox_mutex_;
  std::vector<std::uint32_t> pending_resumes_;
  std::vector<std::uint32_t> pending_acks_;

  std::atomic<bool> shutdown_requested_{false};
};

}  // namespace hotspots::serve
