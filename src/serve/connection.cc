#include "serve/connection.h"

#include <cerrno>
#include <cstring>

#include <unistd.h>

#include "obs/metrics.h"
#include "trace/format.h"

namespace hotspots::serve {
namespace {

constexpr std::size_t kReadChunk = 64 * 1024;
constexpr std::size_t kMaxHttpRequestBytes = 8 * 1024;

obs::Counter& ProtocolErrors() {
  return obs::Registry::Global().GetCounter("serve.ingest.protocol_errors");
}

}  // namespace

Connection::Connection(int fd, std::uint64_t id, Hooks hooks)
    : fd_(fd), id_(id), hooks_(std::move(hooks)) {}

Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
}

void Connection::OnReadable() {
  if (closed_) return;
  std::uint8_t buffer[kReadChunk];
  const ssize_t n = ::read(fd_, buffer, sizeof buffer);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
    Close(std::string("read error: ") + std::strerror(errno));
    return;
  }
  if (n == 0) {
    HandleEof();
    return;
  }
  try {
    HandleBytes(buffer, static_cast<std::size_t>(n));
  } catch (const std::exception& error) {
    // IngestError (framing) and TraceError (block contents) both land
    // here: a peer that ships damaged structures is disconnected, with
    // the trace layer's own diagnostic as the close reason.
    ProtocolErrors().Increment();
    if (slot_ >= 0 && !fin_seen_) hooks_.fold->AbandonSlot(
        static_cast<std::uint32_t>(slot_));
    Close(error.what());
  }
}

void Connection::HandleBytes(const std::uint8_t* data, std::size_t size) {
  if (kind_ == Kind::kSniffing) {
    sniff_.insert(sniff_.end(), data, data + size);
    if (sniff_.size() < 4) return;
    kind_ = std::memcmp(sniff_.data(), "GET ", 4) == 0 ? Kind::kHttp
                                                       : Kind::kIngest;
    std::vector<std::uint8_t> first;
    first.swap(sniff_);
    if (kind_ == Kind::kHttp) {
      HandleHttpBytes(first.data(), first.size());
    } else {
      HandleIngestBytes(first.data(), first.size());
    }
    return;
  }
  if (kind_ == Kind::kHttp) {
    HandleHttpBytes(data, size);
  } else {
    HandleIngestBytes(data, size);
  }
}

void Connection::HandleIngestBytes(const std::uint8_t* data,
                                   std::size_t size) {
  parser_.Feed({data, size});
  Frame frame;
  while (parser_.Next(frame)) HandleFrame(frame);
}

void Connection::HandleFrame(const Frame& frame) {
  // After a refusal only the queued ERROR frame matters; whatever else
  // the peer already put on the wire is ignored, not a fresh violation.
  if (rejected_) return;
  const auto type = static_cast<FrameType>(frame.header.type);
  if (decoder_ == nullptr) {
    if (type != FrameType::kHello) {
      throw IngestError("ingest: first frame must be HELLO, got type " +
                        std::to_string(frame.header.type));
    }
    const Hello hello = ParseHello(frame.payload);
    try {
      if (hooks_.on_hello) hooks_.on_hello(hello);
    } catch (const IngestError& error) {
      // Session admission refused: say *why* in-band before closing, so a
      // well-behaved client surfaces the server's one-line reason instead
      // of a bare EPIPE.  The peer structurally speaks the protocol here
      // (magic/version/fan-out all parsed), so the frame is deliverable.
      ProtocolErrors().Increment();
      rejected_ = true;
      paused_ = true;  // Never read this peer again.
      AppendError(out_, error.what());
      close_after_flush_ = true;
      FlushOut();
      return;
    }
    decoder_ = std::make_unique<trace::StreamDecoder>(
        "conn:" + std::to_string(id_));
    decoder_->Feed({hello.trace_header, trace::kHeaderBytes});
    slot_ = hooks_.fold->RegisterSlot();
    if ((hello.flags & kHelloFlagAwaitWindow) != 0) {
      // The peer blocks for its send window: advertise the fold's
      // committed low-water mark so a resumed connection skips what is
      // already durable and resends from the first uncommitted sequence.
      AppendProgress(out_, hooks_.fold->committed_low_water());
      FlushOut();
    }
    return;
  }

  switch (type) {
    case FrameType::kHello:
      throw IngestError("ingest: duplicate HELLO");
    case FrameType::kAck:
      throw IngestError("ingest: unexpected ACK from a client");
    case FrameType::kProgress:
    case FrameType::kError:
      // Server-to-client frames; a peer echoing one back is broken.
      throw IngestError("ingest: unexpected server-side frame " +
                        std::to_string(frame.header.type) + " from a client");
    case FrameType::kBlock: {
      if (fin_seen_) throw IngestError("ingest: BLOCK after FIN");
      decoder_->Feed(frame.payload);
      // A BLOCK payload is exactly one framed trace block, so the
      // decoder yields exactly one batch (validated: ceilings, CRC,
      // record decode) — unless the peer smuggled a trailer frame, which
      // the decoder flags on the FIN path as trailing bytes.
      for (;;) {
        const std::span<const sim::ProbeEvent> events =
            decoder_->NextBatch();
        if (events.empty()) break;
        std::vector<sim::ProbeEvent> copy(events.begin(), events.end());
        if (!hooks_.fold->Submit(static_cast<std::uint32_t>(slot_),
                                 frame.header.sequence, std::move(copy))) {
          paused_ = true;  // Stop reading; fold resume re-opens the tap.
        }
      }
      return;
    }
    case FrameType::kFin: {
      if (fin_seen_) throw IngestError("ingest: duplicate FIN");
      decoder_->Feed(frame.payload);
      const std::span<const sim::ProbeEvent> events = decoder_->NextBatch();
      if (!events.empty() || !decoder_->finished()) {
        throw IngestError(
            "ingest: FIN payload did not verify as this stream's trailer");
      }
      fin_seen_ = true;
      hooks_.fold->FinishSlot(static_cast<std::uint32_t>(slot_));
      return;
    }
  }
  throw IngestError("ingest: unknown frame type " +
                    std::to_string(frame.header.type));
}

void Connection::HandleHttpBytes(const std::uint8_t* data, std::size_t size) {
  http_in_.append(reinterpret_cast<const char*>(data), size);
  if (http_in_.size() > kMaxHttpRequestBytes) {
    Close("http request exceeds " + std::to_string(kMaxHttpRequestBytes) +
          " bytes");
    return;
  }
  const std::size_t end = http_in_.find("\r\n\r\n");
  if (end == std::string::npos) return;

  obs::Registry::Global().GetCounter("serve.http.requests").Increment();
  const std::size_t line_end = http_in_.find("\r\n");
  const std::string line = http_in_.substr(0, line_end);
  // "GET <path> HTTP/1.x" — the sniffer guaranteed the method.
  const std::size_t path_begin = line.find(' ');
  const std::size_t path_end = line.find(' ', path_begin + 1);
  const std::string path =
      path_end == std::string::npos
          ? line.substr(path_begin + 1)
          : line.substr(path_begin + 1, path_end - path_begin - 1);

  if (path == "/metrics") {
    QueueHttpResponse(200, "OK", "application/json", hooks_.metrics_json());
  } else if (path == "/metrics.prom") {
    QueueHttpResponse(200, "OK", "text/plain; version=0.0.4",
                      hooks_.metrics_prom());
  } else if (path == "/healthz") {
    QueueHttpResponse(200, "OK", "text/plain", "ok\n");
  } else {
    QueueHttpResponse(404, "Not Found", "text/plain",
                      "unknown path " + path + "\n");
  }
  close_after_flush_ = true;
  FlushOut();
}

void Connection::QueueHttpResponse(int status, const char* reason,
                                   const char* content_type,
                                   const std::string& body) {
  std::string head = "HTTP/1.0 " + std::to_string(status) + " " + reason +
                     "\r\nContent-Type: " + content_type +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  out_.insert(out_.end(), head.begin(), head.end());
  out_.insert(out_.end(), body.begin(), body.end());
}

void Connection::QueueAck() {
  if (closed_ || acked_) return;
  acked_ = true;
  AppendAck(out_);
  FlushOut();
  if (eof_seen_ && out_pos_ >= out_.size()) Close("done");
}

void Connection::HandleEof() {
  eof_seen_ = true;
  if (slot_ >= 0 && !fin_seen_) {
    // An ingest peer vanished mid-stream: its queued blocks still fold,
    // but there is nothing to ack and nothing more to read.
    hooks_.fold->AbandonSlot(static_cast<std::uint32_t>(slot_));
    Close("eof before FIN");
    return;
  }
  if (slot_ >= 0 && !acked_) {
    // FIN seen, ack still pending from the fold thread: keep the socket
    // for the ack write.
    paused_ = true;
    return;
  }
  if (out_pos_ >= out_.size()) {
    Close(slot_ >= 0 ? "done" : "eof");
  } else {
    close_after_flush_ = true;
  }
}

void Connection::OnWritable() {
  if (closed_) return;
  FlushOut();
}

void Connection::OnError() { Close("socket error"); }

void Connection::FlushOut() {
  while (out_pos_ < out_.size()) {
    const ssize_t n =
        ::write(fd_, out_.data() + out_pos_, out_.size() - out_pos_);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      Close(std::string("write error: ") + std::strerror(errno));
      return;
    }
    out_pos_ += static_cast<std::size_t>(n);
  }
  if (out_pos_ >= out_.size()) {
    out_.clear();
    out_pos_ = 0;
    if (close_after_flush_ || (acked_ && eof_seen_)) {
      Close(slot_ >= 0 ? "done" : "served");
    }
  } else if (out_.size() - out_pos_ > hooks_.max_output_buffer) {
    obs::Registry::Global()
        .GetCounter("serve.slow_consumer_closes")
        .Increment();
    Close("slow consumer: " + std::to_string(out_.size() - out_pos_) +
          " bytes backlogged");
  }
}

void Connection::Close(const std::string& reason) {
  if (closed_) return;
  closed_ = true;
  close_reason_ = reason;
}

}  // namespace hotspots::serve
