// Replay traffic generator for the telescope ingest daemon.
//
// A captured `hotspots.trace.v1` corpus is indexed once into raw block
// byte spans — the load path never re-encodes a record — and fanned out
// over N concurrent TCP connections: connection c carries exactly the
// blocks whose capture index i satisfies i % N == c, tagged with their
// global sequence (loop * total_blocks + i), so the server's in-order
// fold reconstructs the original stream regardless of socket
// interleaving.  Each connection is a plain blocking-socket thread:
// HELLO (flagged kHelloFlagAwaitWindow, so the server replies with its
// fold low-water mark — or a one-line ERROR on refused admission), its
// block subsequence from that mark up (optionally paced to an aggregate
// record rate), FIN with its own record/block totals, then a blocking
// wait for the server's ACK — which is the durability barrier the
// equality tests and the ingest bench rely on.
//
// Failure handling: a socket-level failure (EPIPE, RST, an injected
// chaos cut) triggers reconnect-with-resume — bounded retries with
// exponential backoff jittered from a client-private RNG, each new
// attempt re-HELLOing and resuming from the server-advertised low-water
// mark.  Overlap around the mark is legal; the server's fold dedups it.
// A server *refusal* (an in-band ERROR frame) is never retried: the
// server said no, and its sentence becomes the thrown error.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/chaos.h"

namespace hotspots::serve {

/// A corpus file sliced into send-ready spans.
class CorpusIndex {
 public:
  /// Reads and indexes `path`.  Throws trace::TraceError on a file that
  /// is not structurally a trace (frame walk only; CRCs are the
  /// server's job).
  explicit CorpusIndex(const std::string& path);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return bytes_;
  }
  /// The 48-byte file header (HELLO payload material).
  [[nodiscard]] const std::uint8_t* header() const { return bytes_.data(); }

  struct BlockSpan {
    std::size_t offset = 0;  ///< Into bytes(), at the block frame.
    std::size_t size = 0;    ///< Frame + payload.
    std::uint32_t records = 0;
  };
  [[nodiscard]] const std::vector<BlockSpan>& blocks() const {
    return blocks_;
  }
  [[nodiscard]] std::uint64_t total_records() const { return total_records_; }
  [[nodiscard]] std::uint64_t last_time_bits() const {
    return last_time_bits_;
  }

 private:
  std::vector<std::uint8_t> bytes_;
  std::vector<BlockSpan> blocks_;
  std::uint64_t total_records_ = 0;
  std::uint64_t last_time_bits_ = 0;
};

struct LoadOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Fan-out: concurrent connections the corpus is striped over.
  std::uint32_t connections = 1;
  /// Aggregate records/second across all connections; 0 = unthrottled.
  double rate = 0.0;
  /// Times the corpus is replayed back-to-back (sequences keep rising).
  std::uint32_t loops = 1;
  /// Connection attempts per stripe before the failure is fatal
  /// (1 = no reconnect; each retry resumes from the server's low-water
  /// mark).
  std::uint32_t max_attempts = 1;
  /// Reconnect backoff: attempt k sleeps min(cap, base * 2^(k-1)) scaled
  /// by a jitter factor in [0.5, 1] drawn from `retry_seed`.
  double backoff_base_seconds = 0.02;
  double backoff_cap_seconds = 1.0;
  /// Client-private jitter stream; never mixed into server-side state.
  std::uint64_t retry_seed = 0x10AD5EEDull;
  /// Fault-injection shim applied to this client's own writes (tests/CI
  /// only).  Default: no chaos.
  ChaosSpec chaos;
};

struct LoadReport {
  std::uint64_t records_sent = 0;
  std::uint64_t blocks_sent = 0;
  std::uint64_t bytes_sent = 0;
  /// Wall time from first connect to last ACK.
  double wall_seconds = 0.0;
  double records_per_sec = 0.0;
  /// Per-connection wall time from its FIN write to its ACK — the tail
  /// of the server's fold queue as seen from outside.
  std::vector<double> ack_latency_seconds;
  /// Reconnect attempts beyond each stripe's first, summed.
  std::uint64_t reconnects = 0;
  /// Injected chaos kills (disconnects + resets) across all attempts.
  std::uint64_t chaos_cuts = 0;
};

/// The server refused the session in-band (ERROR frame) — e.g. a
/// scenario-fingerprint mismatch.  Carries the server's one-line reason;
/// never retried.
class LoadRefused : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Runs the replay and blocks until every connection is acked.  Throws
/// std::runtime_error on connect/protocol failures.
[[nodiscard]] LoadReport RunLoad(const CorpusIndex& corpus,
                                 const LoadOptions& options);

}  // namespace hotspots::serve
