// Replay traffic generator for the telescope ingest daemon.
//
// A captured `hotspots.trace.v1` corpus is indexed once into raw block
// byte spans — the load path never re-encodes a record — and fanned out
// over N concurrent TCP connections: connection c carries exactly the
// blocks whose capture index i satisfies i % N == c, tagged with their
// global sequence (loop * total_blocks + i), so the server's in-order
// fold reconstructs the original stream regardless of socket
// interleaving.  Each connection is a plain blocking-socket thread:
// HELLO, its block subsequence (optionally paced to an aggregate record
// rate), FIN with its own record/block totals, then a blocking wait for
// the server's ACK — which is the durability barrier the equality tests
// and the ingest bench rely on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hotspots::serve {

/// A corpus file sliced into send-ready spans.
class CorpusIndex {
 public:
  /// Reads and indexes `path`.  Throws trace::TraceError on a file that
  /// is not structurally a trace (frame walk only; CRCs are the
  /// server's job).
  explicit CorpusIndex(const std::string& path);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return bytes_;
  }
  /// The 48-byte file header (HELLO payload material).
  [[nodiscard]] const std::uint8_t* header() const { return bytes_.data(); }

  struct BlockSpan {
    std::size_t offset = 0;  ///< Into bytes(), at the block frame.
    std::size_t size = 0;    ///< Frame + payload.
    std::uint32_t records = 0;
  };
  [[nodiscard]] const std::vector<BlockSpan>& blocks() const {
    return blocks_;
  }
  [[nodiscard]] std::uint64_t total_records() const { return total_records_; }
  [[nodiscard]] std::uint64_t last_time_bits() const {
    return last_time_bits_;
  }

 private:
  std::vector<std::uint8_t> bytes_;
  std::vector<BlockSpan> blocks_;
  std::uint64_t total_records_ = 0;
  std::uint64_t last_time_bits_ = 0;
};

struct LoadOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Fan-out: concurrent connections the corpus is striped over.
  std::uint32_t connections = 1;
  /// Aggregate records/second across all connections; 0 = unthrottled.
  double rate = 0.0;
  /// Times the corpus is replayed back-to-back (sequences keep rising).
  std::uint32_t loops = 1;
};

struct LoadReport {
  std::uint64_t records_sent = 0;
  std::uint64_t blocks_sent = 0;
  std::uint64_t bytes_sent = 0;
  /// Wall time from first connect to last ACK.
  double wall_seconds = 0.0;
  double records_per_sec = 0.0;
  /// Per-connection wall time from its FIN write to its ACK — the tail
  /// of the server's fold queue as seen from outside.
  std::vector<double> ack_latency_seconds;
};

/// Runs the replay and blocks until every connection is acked.  Throws
/// std::runtime_error on connect/protocol failures.
[[nodiscard]] LoadReport RunLoad(const CorpusIndex& corpus,
                                 const LoadOptions& options);

}  // namespace hotspots::serve
