#include "serve/poller.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include <poll.h>
#include <unistd.h>

#if defined(__linux__)
#define HOTSPOTS_HAVE_EPOLL 1
#include <sys/epoll.h>
#else
#define HOTSPOTS_HAVE_EPOLL 0
#endif

namespace hotspots::serve {
namespace {

[[noreturn]] void FailErrno(const std::string& what) {
  throw std::runtime_error("poller: " + what + ": " +
                           std::strerror(errno));
}

class PollPoller final : public Poller {
 public:
  void Add(int fd, bool want_read, bool want_write) override {
    if (index_.count(fd) != 0) {
      throw std::runtime_error("poller: fd " + std::to_string(fd) +
                               " already registered");
    }
    index_[fd] = fds_.size();
    fds_.push_back(pollfd{fd, Mask(want_read, want_write), 0});
  }

  void Update(int fd, bool want_read, bool want_write) override {
    fds_[At(fd)].events = Mask(want_read, want_write);
  }

  void Remove(int fd) override {
    const std::size_t i = At(fd);
    const std::size_t last = fds_.size() - 1;
    if (i != last) {
      fds_[i] = fds_[last];
      index_[fds_[i].fd] = i;
    }
    fds_.pop_back();
    index_.erase(fd);
  }

  int Wait(std::vector<PollEvent>& out, int timeout_ms) override {
    out.clear();
    const int n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return 0;
      FailErrno("poll");
    }
    for (const pollfd& p : fds_) {
      if (p.revents == 0) continue;
      PollEvent ev;
      ev.fd = p.fd;
      ev.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
      ev.writable = (p.revents & POLLOUT) != 0;
      ev.error = (p.revents & (POLLERR | POLLNVAL)) != 0;
      out.push_back(ev);
      if (static_cast<int>(out.size()) == n) break;
    }
    return static_cast<int>(out.size());
  }

  const char* name() const override { return "poll"; }

 private:
  static short Mask(bool want_read, bool want_write) {
    short events = 0;
    if (want_read) events |= POLLIN;
    if (want_write) events |= POLLOUT;
    return events;
  }

  std::size_t At(int fd) const {
    const auto it = index_.find(fd);
    if (it == index_.end()) {
      throw std::runtime_error("poller: fd " + std::to_string(fd) +
                               " not registered");
    }
    return it->second;
  }

  std::vector<pollfd> fds_;
  std::unordered_map<int, std::size_t> index_;
};

#if HOTSPOTS_HAVE_EPOLL

class EpollPoller final : public Poller {
 public:
  EpollPoller() : epfd_(::epoll_create1(EPOLL_CLOEXEC)) {
    if (epfd_ < 0) FailErrno("epoll_create1");
  }

  ~EpollPoller() override { ::close(epfd_); }

  void Add(int fd, bool want_read, bool want_write) override {
    Ctl(EPOLL_CTL_ADD, fd, want_read, want_write);
  }

  void Update(int fd, bool want_read, bool want_write) override {
    Ctl(EPOLL_CTL_MOD, fd, want_read, want_write);
  }

  void Remove(int fd) override {
    epoll_event unused{};
    if (::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, &unused) != 0) {
      FailErrno("epoll_ctl(DEL)");
    }
  }

  int Wait(std::vector<PollEvent>& out, int timeout_ms) override {
    out.clear();
    epoll_event events[128];
    const int n = ::epoll_wait(epfd_, events, 128, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return 0;
      FailErrno("epoll_wait");
    }
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      PollEvent ev;
      ev.fd = events[i].data.fd;
      ev.readable = (events[i].events & (EPOLLIN | EPOLLHUP)) != 0;
      ev.writable = (events[i].events & EPOLLOUT) != 0;
      ev.error = (events[i].events & EPOLLERR) != 0;
      out.push_back(ev);
    }
    return n;
  }

  const char* name() const override { return "epoll"; }

 private:
  void Ctl(int op, int fd, bool want_read, bool want_write) {
    epoll_event ev{};
    if (want_read) ev.events |= EPOLLIN;
    if (want_write) ev.events |= EPOLLOUT;
    ev.data.fd = fd;
    if (::epoll_ctl(epfd_, op, fd, &ev) != 0) FailErrno("epoll_ctl");
  }

  int epfd_;
};

#endif  // HOTSPOTS_HAVE_EPOLL

}  // namespace

std::unique_ptr<Poller> Poller::Create(bool force_poll) {
  const char* env = std::getenv("HOTSPOTS_SERVE_POLLER");
  if (env != nullptr && std::string(env) == "poll") force_poll = true;
#if HOTSPOTS_HAVE_EPOLL
  if (!force_poll) return std::make_unique<EpollPoller>();
#else
  (void)force_poll;
#endif
  return std::make_unique<PollPoller>();
}

}  // namespace hotspots::serve
