// The ingest fold pipeline: many connections, one exact analysis state.
//
// Every connection decodes its frames into batches of sim::ProbeEvent on
// the I/O thread and submits them here tagged with the block's *global*
// capture sequence.  A single fold thread then restores capture order (a
// min-map keyed by sequence), splits each block into maximal
// same-timestamp runs, and drives the shared MergeableObserver through
// the exact per-step protocol the engine itself uses:
//
//   OnShardBatch(slot_state, run)  →  MergeShardStates({slot_state})
//
// with one shard state per connection (forked lazily on the fold thread).
// Because ordered side effects — telescope alert-threshold crossings,
// TRW/prevalence verdicts — happen only inside MergeShardStates, and
// merges run in global capture order at the run's own timestamps, the
// folded state is bit-identical to an embedded live run no matter how the
// blocks were fanned out across sockets.  FinalizeShardStates is additive
// for every observer in this repo (telescope, TRW, prevalence), so the
// pipeline finalizes after every block: an HTTP metrics poll between
// blocks sees fresh run-scoped values, not stale pre-finalize ones.
//
// Back-pressure: each connection slot may have at most
// FoldOptions::max_slot_depth blocks queued.  Submit() returns false at
// the cap — the server then stops reading that socket (TCP pushes back to
// the sender) — and the resume callback fires once the slot drains to
// half the cap.  This cannot deadlock the in-order fold: a client sends
// its own blocks in increasing sequence order, so the globally-next block
// is always at the head of some slot's queue, i.e. already submitted.  A
// sequence that never arrives (a crashed client) is bounded by
// FoldOptions::gap_timeout_seconds, after which the fold steps over the
// gap and counts it — liveness is preserved, and the gap is visible in
// `serve.ingest.sequence_gaps`.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/observer.h"

namespace hotspots::serve {

struct FoldOptions {
  /// Blocks a single connection may have queued before its socket reads
  /// pause.  64 blocks × 4096 records bounds per-slot memory at a few MiB.
  std::size_t max_slot_depth = 64;
  /// How long the fold waits for a missing global sequence before folding
  /// past the gap.  Only a crashed or misbehaving client ever trips this.
  double gap_timeout_seconds = 5.0;
};

class FoldPipeline {
 public:
  /// `slot` may resume reading (its queue drained below the resume mark).
  /// Invoked on the fold thread; implementations must only wake the I/O
  /// loop (e.g. write a self-pipe), never touch connection state directly.
  using ResumeCallback = std::function<void(std::uint32_t slot)>;
  /// Every block `slot` submitted before FinishSlot() has been folded —
  /// time to send its ACK.  Same threading contract as ResumeCallback.
  using AckCallback = std::function<void(std::uint32_t slot)>;
  /// Polled on the fold thread after each folded block; returns true once
  /// the shared analysis state has raised its first alert.  The fold
  /// thread is the only state mutator, so the probe may read the
  /// telescope/detector objects without locking.
  using AlertProbe = std::function<bool()>;

  FoldPipeline(sim::MergeableObserver& observer, FoldOptions options = {});
  ~FoldPipeline();

  FoldPipeline(const FoldPipeline&) = delete;
  FoldPipeline& operator=(const FoldPipeline&) = delete;

  void set_resume_callback(ResumeCallback cb) { resume_cb_ = std::move(cb); }
  void set_ack_callback(AckCallback cb) { ack_cb_ = std::move(cb); }
  void set_alert_probe(AlertProbe probe) { alert_probe_ = std::move(probe); }

  /// Starts the fold thread.  Callbacks must be set before Start().
  void Start();

  /// Registers a connection and returns its slot id (I/O thread).
  std::uint32_t RegisterSlot();

  /// Submits one decoded block (I/O thread).  Returns false when the slot
  /// just hit its depth cap — the caller must stop reading the socket
  /// until the resume callback names this slot.  A sequence that was
  /// already folded (or is already queued) is a *duplicate* — a resumed
  /// connection legally re-sends overlap around the PROGRESS low-water
  /// mark — and is counted and discarded without occupying queue depth;
  /// every other batch is queued, nothing else is dropped.
  bool Submit(std::uint32_t slot, std::uint64_t sequence,
              std::vector<sim::ProbeEvent> events);

  /// The slot's FIN arrived and decoded clean: once its queue drains, the
  /// ack callback fires (immediately if already empty).
  void FinishSlot(std::uint32_t slot);

  /// The slot died without a FIN.  Queued blocks still fold (they carry
  /// valid data); the slot just never acks.
  void AbandonSlot(std::uint32_t slot);

  /// Folds everything queued (in order, no gap waits), finalizes all
  /// shard states, and joins the fold thread.  Idempotent; the graceful
  /// SIGTERM path.
  void Drain();

  /// Runs `fn` under the same lock the fold thread holds while mutating
  /// the observer — the race-free way for another thread (the server's
  /// HTTP snapshot path) to read or publish observer state.  Held only
  /// per folded block, so waiters are never blocked for long.
  void WithObserverLock(const std::function<void()>& fn);

  [[nodiscard]] std::uint64_t records_folded() const {
    return records_folded_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t blocks_folded() const {
    return blocks_folded_.load(std::memory_order_relaxed);
  }
  /// Count of *missing sequences* permanently stepped over (not step-over
  /// events): a clean session reports 0, a session that lost exactly K
  /// blocks reports K.
  [[nodiscard]] std::uint64_t sequence_gaps() const {
    return sequence_gaps_.load(std::memory_order_relaxed);
  }
  /// Blocks discarded because their sequence was already folded or queued
  /// (reconnect-resume overlap).
  [[nodiscard]] std::uint64_t duplicate_blocks() const {
    return duplicate_blocks_.load(std::memory_order_relaxed);
  }
  /// The fold's committed low-water mark: every global sequence below it
  /// has been folded or permanently stepped over.  This is the resume
  /// point a PROGRESS reply advertises.
  [[nodiscard]] std::uint64_t committed_low_water() const {
    std::lock_guard lock(mutex_);
    return next_sequence_;
  }
  [[nodiscard]] bool alert_seen() const {
    return alert_seen_.load(std::memory_order_acquire);
  }
  /// Wall seconds from Start() to the first alert; NaN before one.
  [[nodiscard]] double first_alert_wall_seconds() const;

 private:
  struct Batch {
    std::uint64_t sequence = 0;
    std::uint32_t slot = 0;
    std::vector<sim::ProbeEvent> events;
    std::chrono::steady_clock::time_point submitted;
  };

  struct Slot {
    std::size_t depth = 0;      ///< Blocks queued, not yet folded.
    bool paused = false;        ///< Submit() hit the cap; resume pending.
    bool finished = false;      ///< FIN seen.
    bool abandoned = false;
    bool acked = false;
  };

  void FoldThread();
  /// Folds one block through the per-step observer protocol (no lock).
  void FoldOne(Batch& batch);

  sim::MergeableObserver& observer_;
  const FoldOptions options_;

  ResumeCallback resume_cb_;
  AckCallback ack_cb_;
  AlertProbe alert_probe_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::uint64_t, Batch> pending_;  ///< Global capture order.
  std::vector<Slot> slots_;
  std::uint64_t next_sequence_ = 0;
  bool stop_ = false;
  bool started_ = false;

  /// Fold-thread-only: per-slot shard states, forked lazily.
  std::vector<std::unique_ptr<sim::ObserverShardState>> shard_states_;
  /// Serializes observer mutation (fold thread) against snapshot readers.
  std::mutex observer_mutex_;

  std::thread thread_;
  std::chrono::steady_clock::time_point start_time_;
  std::atomic<std::uint64_t> records_folded_{0};
  std::atomic<std::uint64_t> blocks_folded_{0};
  std::atomic<std::uint64_t> sequence_gaps_{0};
  std::atomic<std::uint64_t> duplicate_blocks_{0};
  std::atomic<bool> alert_seen_{false};
  std::atomic<double> first_alert_wall_{0.0};
};

}  // namespace hotspots::serve
