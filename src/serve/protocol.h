// `hotspots.ingest.v1` — the telescope server's wire protocol.
//
// The trace subsystem (src/trace) made the probe stream a *file*; this
// protocol makes it a *network stream*, so many vantage points can feed
// one shared telescope + detector fold (src/serve/fold.h).  The design
// rule is maximal reuse of the proven trace encoding: the bytes inside
// ingest frames ARE `hotspots.trace.v1` structures — the 48-byte trace
// header rides in the handshake, every data frame carries one CRC-framed
// trace block verbatim, and the finish frame carries a per-connection
// trailer.  A server therefore decodes connections with the same
// incremental StreamDecoder the tests pin against files, and a client can
// replay a captured corpus by slicing the file, never re-encoding.
//
// Framing (all integers little-endian):
//
//   frame header (16 bytes)
//     [ 0..4)   u32  payload length L (<= kMaxFramePayloadBytes)
//     [ 4..8)   u32  frame type (FrameType below)
//     [ 8..16)  u64  sequence
//   then L payload bytes.
//
//   HELLO (client -> server, first frame; seq 0) — payload 72 bytes:
//     [ 0..8)   magic "HSPTSRV1"
//     [ 8..12)  u32  protocol version (1)
//     [12..16)  u32  connection index C within the replay session
//     [16..20)  u32  session fan-out F (C < F); F=1 for a lone stream
//     [20..24)  u32  flags (was reserved-zero; legacy encoders still
//               write 0, which selects the original fire-and-forget
//               flow).  Bit 0 (kHelloFlagAwaitWindow): the client will
//               block after HELLO for a PROGRESS or ERROR reply before
//               streaming — this is what makes reconnect-with-resume
//               and clean admission refusal deterministic.
//     [24..72)  the stream's 48-byte hotspots.trace.v1 file header
//               (carries the scenario fingerprint + seed, so the server
//               can refuse mixed-scenario sessions)
//
//   BLOCK (client -> server) — payload: one CRC-framed trace block
//     (12-byte block frame + payload), verbatim.  `sequence` is the
//     block's position in the *original capture order* across the whole
//     session; the fold thread restores that global order before folding,
//     which is what keeps first-alert times bit-identical to an embedded
//     run no matter how the blocks were fanned out.
//
//   FIN (client -> server; seq 0) — payload: the stream's 36-byte trailer
//     (block frame with record count 0 + 24-byte payload) carrying the
//     records/blocks THIS connection sent; the per-connection decoder
//     verifies it like a file trailer.
//
//   ACK (server -> client; seq 0, empty payload) — sent once every block
//     of the connection has been folded into the shared state.  The ack
//     is the client's durability signal: after ACK, a metrics poll will
//     see this connection's probes.
//
//   PROGRESS (server -> client; empty payload) — the reply to a HELLO
//     whose flags request it (kHelloFlagAwaitWindow).  `sequence` carries
//     the fold's committed low-water mark: every global sequence below it
//     has already been folded (or permanently stepped over), so a
//     resuming client may skip blocks below the mark and MUST resend from
//     it.  Overlap is harmless — the fold drops already-committed or
//     already-queued sequences and counts them as duplicates.
//
//   ERROR (server -> client; seq 0) — payload: a UTF-8 one-line reason.
//     Sent instead of PROGRESS when session admission fails (fingerprint
//     mismatch, bad handshake), then the connection closes.  A client
//     that asked for a window reads this *before* streaming, so refusal
//     surfaces as the server's own sentence, not a mid-write EPIPE.
//
// Back-pressure: there is none in-band.  A server that cannot fold fast
// enough simply stops reading the saturated connection's socket and lets
// TCP flow control push back to the sender; it resumes reading when the
// fold queue drains.  Slow *consumers* (an HTTP poller that stops
// reading its response) are disconnected once their output buffer
// exceeds the server's bound.  Protocol violations — bad magic, frame
// ceilings exceeded, CRC failures, a BLOCK before HELLO — close the
// connection; a network peer is disconnected, never salvaged.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "trace/format.h"

namespace hotspots::serve {

/// Schema identifier used in docs, sidecars, and diagnostics.
inline constexpr const char* kIngestSchema = "hotspots.ingest.v1";

inline constexpr char kIngestMagic[8] = {'H', 'S', 'P', 'T',
                                         'S', 'R', 'V', '1'};
inline constexpr std::uint32_t kIngestVersion = 1;

inline constexpr std::size_t kFrameHeaderBytes = 16;
inline constexpr std::size_t kHelloPayloadBytes = 24 + trace::kHeaderBytes;
inline constexpr std::size_t kFinPayloadBytes =
    trace::kBlockFrameBytes + trace::kTrailerPayloadBytes;

/// Hard ceiling on a declared frame payload: one maximal trace block.
/// A corrupt or hostile length field can never drive a large allocation.
inline constexpr std::uint32_t kMaxFramePayloadBytes =
    trace::kBlockFrameBytes + trace::kMaxBlockPayloadBytes;

enum class FrameType : std::uint32_t {
  kHello = 1,
  kBlock = 2,
  kFin = 3,
  kAck = 4,
  kProgress = 5,
  kError = 6,
};

/// HELLO flag bit 0: the client blocks for a PROGRESS/ERROR reply after
/// its HELLO before streaming blocks (resume + clean-refusal handshake).
inline constexpr std::uint32_t kHelloFlagAwaitWindow = 1u;

/// Ceiling on an ERROR frame's message payload; longer reasons are
/// truncated by the encoder, never rejected by the parser.
inline constexpr std::size_t kMaxErrorPayloadBytes = 512;

/// Any malformed ingest input — undersized handshake, unknown frame type,
/// ceiling violations — raises this on the parsing side; the server turns
/// it into a counted disconnect, never UB.
class IngestError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parsed 16-byte frame header.
struct FrameHeader {
  std::uint32_t length = 0;
  std::uint32_t type = 0;
  std::uint64_t sequence = 0;
};

/// Parsed HELLO payload.
struct Hello {
  std::uint32_t version = kIngestVersion;
  std::uint32_t connection = 0;
  std::uint32_t fanout = 1;
  /// kHelloFlag* bits; 0 from legacy encoders (the field was reserved).
  std::uint32_t flags = 0;
  /// The embedded hotspots.trace.v1 file header, verbatim — fed to the
  /// connection's StreamDecoder so the trace layer owns its validation.
  std::uint8_t trace_header[trace::kHeaderBytes] = {};
};

}  // namespace hotspots::serve
