#include "serve/fold.h"

#include <cmath>
#include <limits>

#include "obs/metrics.h"

namespace hotspots::serve {
namespace {

/// Submit-to-fold latency buckets: 1 µs .. ~8 s, doubling.
obs::Histogram& FoldLatencyHistogram() {
  static const std::vector<double> bounds =
      obs::ExponentialBounds(1e-6, 2.0, 24);
  return obs::Registry::Global().GetHistogram(
      "serve.ingest.fold_latency_seconds", bounds);
}

double SecondsSince(std::chrono::steady_clock::time_point from) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       from)
      .count();
}

}  // namespace

FoldPipeline::FoldPipeline(sim::MergeableObserver& observer,
                           FoldOptions options)
    : observer_(observer), options_(options) {
  first_alert_wall_.store(std::numeric_limits<double>::quiet_NaN(),
                          std::memory_order_relaxed);
}

FoldPipeline::~FoldPipeline() { Drain(); }

void FoldPipeline::Start() {
  std::lock_guard lock(mutex_);
  if (started_) return;
  started_ = true;
  start_time_ = std::chrono::steady_clock::now();
  thread_ = std::thread([this] { FoldThread(); });
}

std::uint32_t FoldPipeline::RegisterSlot() {
  std::lock_guard lock(mutex_);
  slots_.emplace_back();
  obs::Registry::Global().GetCounter("serve.ingest.connections").Increment();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

bool FoldPipeline::Submit(std::uint32_t slot, std::uint64_t sequence,
                          std::vector<sim::ProbeEvent> events) {
  bool has_room = true;
  {
    std::lock_guard lock(mutex_);
    if (sequence < next_sequence_ || pending_.count(sequence) != 0) {
      // Already folded, already stepped past, or already queued by an
      // earlier connection attempt: reconnect-resume overlap.  Count it
      // and drop it — folding it (again) would corrupt capture order, and
      // it must not consume this slot's queue depth.
      duplicate_blocks_.fetch_add(1, std::memory_order_relaxed);
      obs::Registry::Global()
          .GetCounter("serve.ingest.duplicate_blocks")
          .Increment();
      return true;
    }
    Batch batch;
    batch.sequence = sequence;
    batch.slot = slot;
    batch.events = std::move(events);
    batch.submitted = std::chrono::steady_clock::now();
    pending_.emplace(sequence, std::move(batch));
    Slot& s = slots_[slot];
    ++s.depth;
    if (s.depth >= options_.max_slot_depth) {
      s.paused = true;
      has_room = false;
      obs::Registry::Global()
          .GetCounter("serve.ingest.backpressure_pauses")
          .Increment();
    }
  }
  cv_.notify_all();
  return has_room;
}

void FoldPipeline::FinishSlot(std::uint32_t slot) {
  bool ack_now = false;
  {
    std::lock_guard lock(mutex_);
    Slot& s = slots_[slot];
    s.finished = true;
    if (s.depth == 0 && !s.acked) {
      s.acked = true;
      ack_now = true;
    }
  }
  if (ack_now && ack_cb_) ack_cb_(slot);
}

void FoldPipeline::AbandonSlot(std::uint32_t slot) {
  std::lock_guard lock(mutex_);
  slots_[slot].abandoned = true;
}

void FoldPipeline::Drain() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

double FoldPipeline::first_alert_wall_seconds() const {
  return first_alert_wall_.load(std::memory_order_relaxed);
}

void FoldPipeline::FoldThread() {
  obs::Registry& registry = obs::Registry::Global();
  obs::Counter& records_counter = registry.GetCounter("serve.ingest.records");
  obs::Counter& blocks_counter = registry.GetCounter("serve.ingest.blocks");
  obs::Counter& gaps_counter =
      registry.GetCounter("serve.ingest.sequence_gaps");
  obs::Gauge& depth_gauge = registry.GetGauge("serve.ingest.queue_depth");
  obs::Histogram& latency = FoldLatencyHistogram();

  const auto gap_timeout = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(options_.gap_timeout_seconds));

  std::unique_lock lock(mutex_);
  while (true) {
    if (pending_.empty()) {
      if (stop_) break;
      cv_.wait(lock,
               [this] { return stop_ || !pending_.empty(); });
      continue;
    }

    auto it = pending_.begin();
    if (it->first != next_sequence_ && !stop_) {
      // The globally-next block has not arrived.  Wait a bounded time —
      // in a healthy session it is in flight on some socket — then step
      // over the gap so one dead client cannot stall every other feed.
      const auto deadline = std::chrono::steady_clock::now() + gap_timeout;
      cv_.wait_until(lock, deadline, [this] {
        return stop_ || pending_.count(next_sequence_) != 0;
      });
      it = pending_.begin();
    }
    if (it->first != next_sequence_) {
      // Exact loss accounting: charge one gap per *missing sequence*, not
      // per step-over event, so `serve.ingest.sequence_gaps` equals the
      // number of blocks that never reached the fold.
      const std::uint64_t missing = it->first - next_sequence_;
      gaps_counter.Add(missing);
      sequence_gaps_.fetch_add(missing, std::memory_order_relaxed);
    }

    Batch batch = std::move(it->second);
    pending_.erase(it);
    next_sequence_ = batch.sequence + 1;

    Slot& s = slots_[batch.slot];
    --s.depth;
    bool resume = false;
    if (s.paused && s.depth <= options_.max_slot_depth / 2) {
      s.paused = false;
      resume = true;
    }
    bool ack = false;
    if (s.finished && s.depth == 0 && !s.acked) {
      s.acked = true;
      ack = true;
    }
    depth_gauge.Set(static_cast<double>(pending_.size()));

    lock.unlock();
    {
      std::lock_guard observer_lock(observer_mutex_);
      FoldOne(batch);
      if (!alert_seen_.load(std::memory_order_relaxed) && alert_probe_ &&
          alert_probe_()) {
        first_alert_wall_.store(SecondsSince(start_time_),
                                std::memory_order_relaxed);
        registry.GetGauge("serve.ingest.first_alert_wall_seconds")
            .Set(first_alert_wall_.load(std::memory_order_relaxed));
        alert_seen_.store(true, std::memory_order_release);
      }
    }
    records_counter.Add(batch.events.size());
    blocks_counter.Increment();
    records_folded_.fetch_add(batch.events.size(), std::memory_order_relaxed);
    blocks_folded_.fetch_add(1, std::memory_order_relaxed);
    latency.Observe(SecondsSince(batch.submitted));
    if (resume && resume_cb_) resume_cb_(batch.slot);
    if (ack && ack_cb_) ack_cb_(batch.slot);
    lock.lock();
  }

  // End of run: one last (order-free) finalize over every forked state.
  lock.unlock();
  std::vector<sim::ObserverShardState*> all;
  for (auto& state : shard_states_) {
    if (state) all.push_back(state.get());
  }
  if (!all.empty()) {
    std::lock_guard observer_lock(observer_mutex_);
    observer_.FinalizeShardStates(
        std::span<sim::ObserverShardState* const>(all));
  }
}

void FoldPipeline::WithObserverLock(const std::function<void()>& fn) {
  std::lock_guard observer_lock(observer_mutex_);
  fn();
}

void FoldPipeline::FoldOne(Batch& batch) {
  if (batch.slot >= shard_states_.size()) {
    shard_states_.resize(batch.slot + 1);
  }
  if (!shard_states_[batch.slot]) {
    shard_states_[batch.slot] =
        observer_.ForkShardState(static_cast<int>(batch.slot));
  }
  sim::ObserverShardState* state = shard_states_[batch.slot].get();
  const std::span<sim::ObserverShardState* const> one{&state, 1};

  // A trace block may span engine steps; the per-step observer protocol
  // requires same-timestamp spans (a shard state's step_time is the
  // span's first timestamp, and alert crossings fire at merge with that
  // time).  Split into maximal same-time runs — two runs at one
  // timestamp merge identically to one, so block boundaries are safe.
  const std::span<const sim::ProbeEvent> events{batch.events};
  std::size_t i = 0;
  while (i < events.size()) {
    std::size_t j = i + 1;
    while (j < events.size() && events[j].time == events[i].time) ++j;
    observer_.OnShardBatch(*state, events.subspan(i, j - i));
    observer_.MergeShardStates(one);
    i = j;
  }
  // Additive for every observer here (telescope unique-source absorption,
  // TRW probes_seen), so finalizing per block keeps run-scoped metrics
  // fresh for HTTP pollers without waiting for the session to end.
  observer_.FinalizeShardStates(one);
}

}  // namespace hotspots::serve
