#include "serve/wire.h"

#include <cstring>
#include <string>

#include "trace/crc32.h"
#include "trace/record_codec.h"

namespace hotspots::serve {
namespace {

using trace::detail::LoadU32;
using trace::detail::LoadU64;

void AppendU32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

void AppendU64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

/// Fixed payload size for a frame type, or SIZE_MAX for variable (BLOCK).
std::size_t FixedPayloadBytes(std::uint32_t type) {
  switch (static_cast<FrameType>(type)) {
    case FrameType::kHello:
      return kHelloPayloadBytes;
    case FrameType::kFin:
      return kFinPayloadBytes;
    case FrameType::kAck:
    case FrameType::kProgress:
      return 0;
    case FrameType::kBlock:
    case FrameType::kError:
      return static_cast<std::size_t>(-1);
  }
  throw IngestError("ingest: unknown frame type " + std::to_string(type));
}

}  // namespace

void FrameParser::Feed(std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) return;
  if (pos_ > 0 && pos_ >= buffer_.size() - pos_) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

bool FrameParser::Next(Frame& out) {
  if (buffered_bytes() < kFrameHeaderBytes) return false;
  const std::uint8_t* head = buffer_.data() + pos_;
  FrameHeader header;
  header.length = LoadU32(head);
  header.type = LoadU32(head + 4);
  header.sequence = LoadU64(head + 8);

  if (header.length > kMaxFramePayloadBytes) {
    throw IngestError("ingest: frame payload length " +
                      std::to_string(header.length) +
                      " exceeds the protocol ceiling " +
                      std::to_string(kMaxFramePayloadBytes));
  }
  const std::size_t fixed = FixedPayloadBytes(header.type);  // may throw
  if (fixed != static_cast<std::size_t>(-1) && header.length != fixed) {
    throw IngestError("ingest: frame type " + std::to_string(header.type) +
                      " declares " + std::to_string(header.length) +
                      " payload bytes, expected " + std::to_string(fixed));
  }
  if (buffered_bytes() < kFrameHeaderBytes + header.length) return false;

  out.header = header;
  out.payload = {buffer_.data() + pos_ + kFrameHeaderBytes, header.length};
  pos_ += kFrameHeaderBytes + header.length;
  ++frames_;
  return true;
}

void AppendFrameHeader(std::vector<std::uint8_t>& out, FrameType type,
                       std::uint64_t sequence, std::uint32_t payload_len) {
  AppendU32(out, payload_len);
  AppendU32(out, static_cast<std::uint32_t>(type));
  AppendU64(out, sequence);
}

void AppendHello(std::vector<std::uint8_t>& out, std::uint32_t connection,
                 std::uint32_t fanout,
                 std::span<const std::uint8_t> trace_header,
                 std::uint32_t flags) {
  if (trace_header.size() != trace::kHeaderBytes) {
    throw IngestError("ingest: HELLO needs a " +
                      std::to_string(trace::kHeaderBytes) +
                      "-byte trace header, got " +
                      std::to_string(trace_header.size()));
  }
  AppendFrameHeader(out, FrameType::kHello, 0,
                    static_cast<std::uint32_t>(kHelloPayloadBytes));
  out.insert(out.end(), kIngestMagic, kIngestMagic + sizeof kIngestMagic);
  AppendU32(out, kIngestVersion);
  AppendU32(out, connection);
  AppendU32(out, fanout);
  AppendU32(out, flags);
  out.insert(out.end(), trace_header.begin(), trace_header.end());
}

void AppendBlock(std::vector<std::uint8_t>& out, std::uint64_t sequence,
                 std::span<const std::uint8_t> block) {
  if (block.size() < trace::kBlockFrameBytes ||
      block.size() > kMaxFramePayloadBytes) {
    throw IngestError("ingest: BLOCK payload of " +
                      std::to_string(block.size()) +
                      " bytes is not a framed trace block");
  }
  AppendFrameHeader(out, FrameType::kBlock, sequence,
                    static_cast<std::uint32_t>(block.size()));
  out.insert(out.end(), block.begin(), block.end());
}

void AppendFin(std::vector<std::uint8_t>& out,
               std::span<const std::uint8_t> trailer) {
  if (trailer.size() != kFinPayloadBytes) {
    throw IngestError("ingest: FIN needs a " +
                      std::to_string(kFinPayloadBytes) +
                      "-byte trailer, got " + std::to_string(trailer.size()));
  }
  AppendFrameHeader(out, FrameType::kFin, 0,
                    static_cast<std::uint32_t>(kFinPayloadBytes));
  out.insert(out.end(), trailer.begin(), trailer.end());
}

void AppendAck(std::vector<std::uint8_t>& out) {
  AppendFrameHeader(out, FrameType::kAck, 0, 0);
}

void AppendProgress(std::vector<std::uint8_t>& out, std::uint64_t low_water) {
  AppendFrameHeader(out, FrameType::kProgress, low_water, 0);
}

void AppendError(std::vector<std::uint8_t>& out, const std::string& message) {
  const std::size_t len =
      message.size() < kMaxErrorPayloadBytes ? message.size()
                                             : kMaxErrorPayloadBytes;
  AppendFrameHeader(out, FrameType::kError, 0,
                    static_cast<std::uint32_t>(len));
  out.insert(out.end(), message.begin(),
             message.begin() + static_cast<std::ptrdiff_t>(len));
}

Hello ParseHello(std::span<const std::uint8_t> payload) {
  if (payload.size() != kHelloPayloadBytes) {
    throw IngestError("ingest: HELLO payload is " +
                      std::to_string(payload.size()) + " bytes, expected " +
                      std::to_string(kHelloPayloadBytes));
  }
  if (std::memcmp(payload.data(), kIngestMagic, sizeof kIngestMagic) != 0) {
    throw IngestError("ingest: bad HELLO magic — not a hotspots ingest peer");
  }
  Hello hello;
  hello.version = LoadU32(payload.data() + 8);
  if (hello.version != kIngestVersion) {
    throw IngestError("ingest: unsupported protocol version " +
                      std::to_string(hello.version) +
                      " (this server speaks version " +
                      std::to_string(kIngestVersion) + ")");
  }
  hello.connection = LoadU32(payload.data() + 12);
  hello.fanout = LoadU32(payload.data() + 16);
  hello.flags = LoadU32(payload.data() + 20);
  if (hello.fanout == 0 || hello.connection >= hello.fanout) {
    throw IngestError("ingest: HELLO connection index " +
                      std::to_string(hello.connection) +
                      " outside fan-out " + std::to_string(hello.fanout));
  }
  std::memcpy(hello.trace_header, payload.data() + 24, trace::kHeaderBytes);
  return hello;
}

std::vector<std::uint8_t> BuildConnectionTrailer(std::uint64_t records,
                                                 std::uint64_t blocks,
                                                 std::uint64_t last_time_bits) {
  std::vector<std::uint8_t> payload;
  payload.reserve(trace::kTrailerPayloadBytes);
  AppendU64(payload, records);
  AppendU64(payload, blocks);
  AppendU64(payload, last_time_bits);

  std::vector<std::uint8_t> trailer;
  trailer.reserve(kFinPayloadBytes);
  AppendU32(trailer, 0);  // record count: trailer sentinel
  AppendU32(trailer, static_cast<std::uint32_t>(payload.size()));
  AppendU32(trailer, trace::Crc32(payload.data(), payload.size()));
  trailer.insert(trailer.end(), payload.begin(), payload.end());
  return trailer;
}

}  // namespace hotspots::serve
