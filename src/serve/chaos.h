// Deterministic fault-injecting socket shim for the ingest client path.
//
// The chaos harness answers one question about the serve pipeline: does
// the folded analysis state stay *exact* when real sockets misbehave?  To
// make that testable the misbehaviour itself must be reproducible, so the
// shim draws every fault from a schedule-private SplitMix64 stream keyed
// by (spec seed, connection index, attempt number) — the same spec string
// replays the same cuts at the same frame indices on every run, on any
// machine, which is what lets CI diff a chaos-battered ingest against a
// clean embedded run bit for bit.
//
// Spec grammar (semicolon-separated `key:value` directives):
//
//   seed:<u64>              stream seed (default 0xC4A05)
//   disconnect:<p>          P(write a partial frame prefix, then close)
//   reset:<p>               P(close with SO_LINGER{1,0} -> TCP RST)
//   stall:<p>:<seconds>     P(sleep <seconds> before the frame's write)
//   shortwrite:<p>          P(fragment the frame into two tiny writes)
//
// Probabilities are per *frame*; disconnect + reset must sum to <= 1.
// Duplicate or unknown keys are rejected with the offending token, like
// the fault-schedule parser.  The empty spec is a no-op shim.
//
// Faults are injected on BLOCK/FIN frames only — the HELLO handshake and
// its PROGRESS/ERROR reply stay clean so the resume protocol itself is
// never the thing being damaged (a cut handshake is indistinguishable
// from a refused one to a blocking client).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "prng/splitmix.h"

namespace hotspots::serve {

struct ChaosSpec {
  std::uint64_t seed = 0xC4A05;
  double disconnect_rate = 0.0;
  double reset_rate = 0.0;
  double stall_rate = 0.0;
  double stall_seconds = 0.0;
  double short_write_rate = 0.0;

  [[nodiscard]] bool any() const {
    return disconnect_rate > 0.0 || reset_rate > 0.0 || stall_rate > 0.0 ||
           short_write_rate > 0.0;
  }
};

/// Parses a chaos spec string.  Throws std::invalid_argument naming the
/// offending directive on malformed, duplicate, or out-of-range input.
[[nodiscard]] ChaosSpec ParseChaosSpec(const std::string& spec);

/// An injected socket kill (mid-frame disconnect or reset).  The shim
/// closed the fd before throwing; the owning connection loop treats this
/// exactly like a real peer failure and retries.
class ChaosCut : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Per-connection-attempt fault-injecting writer.  Not thread-safe; each
/// connection thread owns one per attempt.
class ChaosWriter {
 public:
  ChaosWriter(const ChaosSpec& spec, std::uint32_t connection,
              std::uint32_t attempt);

  /// Writes one whole frame through `fd`, possibly injecting a fault
  /// first.  On an injected kill the fd is closed (reset: with zero
  /// linger, so the peer sees RST) and set to -1, then ChaosCut is
  /// thrown.  Draw order is fixed per frame, so the fault sequence is a
  /// pure function of (seed, connection, attempt, frame index).
  void WriteFrame(int& fd, const std::uint8_t* data, std::size_t size);

  /// Injected kills so far (disconnects + resets).
  [[nodiscard]] std::uint64_t cuts() const { return cuts_; }

 private:
  ChaosSpec spec_;
  prng::SplitMix64 stream_;
  std::uint64_t cuts_ = 0;
};

}  // namespace hotspots::serve
