#include "serve/load_client.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "prng/splitmix.h"
#include "serve/protocol.h"
#include "serve/wire.h"
#include "trace/format.h"
#include "trace/record_codec.h"

namespace hotspots::serve {
namespace {

using trace::detail::LoadU32;
using trace::detail::LoadU64;

[[noreturn]] void FailErrno(const std::string& what) {
  throw std::runtime_error("load: " + what + ": " + std::strerror(errno));
}

int ConnectTo(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) FailErrno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("load: bad host address " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    FailErrno("connect " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

void WriteAll(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a server that rejects the feed (fingerprint mismatch,
    // protocol violation) closes mid-stream; that must surface as an EPIPE
    // exception on this thread, never a process-wide SIGPIPE the host
    // process may not have masked.
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      FailErrno("write");
    }
    sent += static_cast<std::size_t>(n);
  }
}

void ReadAll(int fd, std::uint8_t* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, data + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      FailErrno("read");
    }
    if (n == 0) {
      throw std::runtime_error(
          "load: server closed the connection before the ACK");
    }
    got += static_cast<std::size_t>(n);
  }
}

/// Blocking read of the server's reply to a flagged HELLO.  Returns the
/// fold low-water mark from a PROGRESS frame; turns an ERROR frame into
/// LoadRefused carrying the server's own one-line reason.
std::uint64_t ReadSendWindow(int fd) {
  std::uint8_t head[kFrameHeaderBytes];
  ReadAll(fd, head, sizeof head);
  const std::uint32_t length = LoadU32(head);
  const std::uint32_t type = LoadU32(head + 4);
  if (type == static_cast<std::uint32_t>(FrameType::kProgress)) {
    return LoadU64(head + 8);
  }
  if (type == static_cast<std::uint32_t>(FrameType::kError) &&
      length <= kMaxErrorPayloadBytes) {
    std::string reason(length, '\0');
    ReadAll(fd, reinterpret_cast<std::uint8_t*>(reason.data()), length);
    throw LoadRefused("server refused the session: " + reason);
  }
  throw std::runtime_error("load: expected PROGRESS or ERROR after HELLO, "
                           "got frame type " + std::to_string(type));
}

double UnitDouble(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

CorpusIndex::CorpusIndex(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    throw trace::TraceError("trace: cannot open " + path + ": " +
                            std::strerror(errno));
  }
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  bytes_.resize(size > 0 ? static_cast<std::size_t>(size) : 0);
  if (!bytes_.empty() &&
      std::fread(bytes_.data(), 1, bytes_.size(), file) != bytes_.size()) {
    std::fclose(file);
    throw trace::TraceError("trace: short read on " + path);
  }
  std::fclose(file);

  if (bytes_.size() < trace::kHeaderBytes ||
      std::memcmp(bytes_.data(), trace::kMagic, sizeof trace::kMagic) != 0) {
    throw trace::TraceError("trace: " + path +
                            " is not a hotspots.trace.v1 file");
  }

  // Frame walk only: offsets and declared sizes.  The daemon CRC-checks
  // and decodes every block on receipt, so indexing stays I/O-cheap.
  std::size_t offset = trace::kHeaderBytes;
  for (;;) {
    if (offset + trace::kBlockFrameBytes > bytes_.size()) {
      throw trace::TraceError("trace: " + path + " @byte " +
                              std::to_string(offset) +
                              ": truncated block frame");
    }
    const std::uint32_t records = LoadU32(bytes_.data() + offset);
    const std::uint32_t payload = LoadU32(bytes_.data() + offset + 4);
    if (records > trace::kMaxBlockRecords ||
        payload > trace::kMaxBlockPayloadBytes) {
      throw trace::TraceError("trace: " + path + " @byte " +
                              std::to_string(offset) +
                              ": frame exceeds the format ceiling");
    }
    const std::size_t end = offset + trace::kBlockFrameBytes + payload;
    if (end > bytes_.size()) {
      throw trace::TraceError("trace: " + path + " @byte " +
                              std::to_string(offset) +
                              ": truncated block payload");
    }
    if (records == 0) {
      if (payload != trace::kTrailerPayloadBytes) {
        throw trace::TraceError("trace: " + path + " @byte " +
                                std::to_string(offset) +
                                ": truncated trailer payload");
      }
      last_time_bits_ =
          LoadU64(bytes_.data() + offset + trace::kBlockFrameBytes + 16);
      if (end != bytes_.size()) {
        throw trace::TraceError("trace: " + path +
                                ": trailing bytes after the trailer");
      }
      break;
    }
    blocks_.push_back(BlockSpan{offset, trace::kBlockFrameBytes + payload,
                                records});
    total_records_ += records;
    offset = end;
  }
}

LoadReport RunLoad(const CorpusIndex& corpus, const LoadOptions& options) {
  if (options.connections == 0) {
    throw std::runtime_error("load: need at least one connection");
  }
  if (options.loops == 0) {
    throw std::runtime_error("load: need at least one loop");
  }
  const std::uint32_t fanout = options.connections;
  const std::uint64_t corpus_blocks = corpus.blocks().size();
  const double per_connection_rate =
      options.rate > 0.0 ? options.rate / fanout : 0.0;

  struct ConnResult {
    std::uint64_t records = 0;  ///< Counts for the final (acked) attempt.
    std::uint64_t blocks = 0;
    std::uint64_t bytes = 0;
    double ack_latency = 0.0;
    std::uint64_t reconnects = 0;
    std::uint64_t chaos_cuts = 0;
    std::string error;
  };
  std::vector<ConnResult> results(fanout);

  // One connection attempt: HELLO (awaiting a window), stream the stripe
  // from the server's low-water mark, FIN, wait for the ACK.  Per-attempt
  // counts reset so the FIN trailer declares exactly what THIS connection
  // carried — the per-connection decoder reconciles against that.
  const auto attempt_stripe = [&](std::uint32_t c, std::uint32_t attempt,
                                  ConnResult& result) {
    result.records = 0;
    result.blocks = 0;
    int fd = ConnectTo(options.host, options.port);
    try {
      ChaosWriter chaos{options.chaos, c, attempt};
      std::vector<std::uint8_t> buffer;
      AppendHello(buffer, c, fanout, {corpus.header(), trace::kHeaderBytes},
                  kHelloFlagAwaitWindow);
      WriteAll(fd, buffer.data(), buffer.size());
      result.bytes += buffer.size();
      const std::uint64_t window = ReadSendWindow(fd);

      const auto pace_start = std::chrono::steady_clock::now();
      for (std::uint32_t loop = 0; loop < options.loops; ++loop) {
        for (std::uint64_t i = c; i < corpus_blocks; i += fanout) {
          const std::uint64_t sequence =
              static_cast<std::uint64_t>(loop) * corpus_blocks + i;
          // Already committed server-side (or queued by a prior attempt
          // whose overlap the fold will dedup): resume past it.
          if (sequence < window) continue;
          const CorpusIndex::BlockSpan& span = corpus.blocks()[i];
          buffer.clear();
          AppendBlock(buffer, sequence,
                      {corpus.bytes().data() + span.offset, span.size});
          chaos.WriteFrame(fd, buffer.data(), buffer.size());
          result.bytes += buffer.size();
          result.records += span.records;
          ++result.blocks;
          if (per_connection_rate > 0.0) {
            // Pace against the schedule, not the previous send, so a
            // slow write does not compound into permanent lag.
            const double due =
                static_cast<double>(result.records) / per_connection_rate;
            const auto due_at =
                pace_start + std::chrono::duration_cast<
                                 std::chrono::steady_clock::duration>(
                                 std::chrono::duration<double>(due));
            std::this_thread::sleep_until(due_at);
          }
        }
      }

      buffer.clear();
      const std::vector<std::uint8_t> trailer = BuildConnectionTrailer(
          result.records, result.blocks, corpus.last_time_bits());
      AppendFin(buffer, trailer);
      const auto fin_at = std::chrono::steady_clock::now();
      chaos.WriteFrame(fd, buffer.data(), buffer.size());
      result.bytes += buffer.size();

      std::uint8_t ack[kFrameHeaderBytes];
      ReadAll(fd, ack, sizeof ack);
      if (LoadU32(ack + 4) != static_cast<std::uint32_t>(FrameType::kAck)) {
        throw std::runtime_error("load: expected ACK, got frame type " +
                                 std::to_string(LoadU32(ack + 4)));
      }
      result.ack_latency =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        fin_at)
              .count();
    } catch (...) {
      if (fd >= 0) ::close(fd);
      throw;
    }
    ::close(fd);
  };

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(fanout);
  for (std::uint32_t c = 0; c < fanout; ++c) {
    threads.emplace_back([&, c] {
      ConnResult& result = results[c];
      // Client-private jitter stream: reconnect timing must never leak
      // into (or depend on) any server-side deterministic state.
      prng::SplitMix64 jitter{
          prng::Mix64(options.retry_seed ^ (std::uint64_t{c} + 1))};
      const std::uint32_t max_attempts =
          options.max_attempts == 0 ? 1 : options.max_attempts;
      for (std::uint32_t attempt = 0;; ++attempt) {
        try {
          attempt_stripe(c, attempt, result);
          break;
        } catch (const LoadRefused& refusal) {
          // The server said no in-band; retrying cannot change its mind.
          result.error = refusal.what();
          break;
        } catch (const std::exception& error) {
          if (dynamic_cast<const ChaosCut*>(&error) != nullptr) {
            ++result.chaos_cuts;
          }
          if (attempt + 1 >= max_attempts) {
            result.error = error.what();
            break;
          }
          ++result.reconnects;
          const double exp_backoff =
              options.backoff_base_seconds *
              static_cast<double>(std::uint64_t{1} << (attempt < 20 ? attempt
                                                                    : 20));
          const double capped = exp_backoff < options.backoff_cap_seconds
                                    ? exp_backoff
                                    : options.backoff_cap_seconds;
          const double factor = 0.5 + 0.5 * UnitDouble(jitter.Next());
          std::this_thread::sleep_for(
              std::chrono::duration<double>(capped * factor));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  LoadReport report;
  for (std::uint32_t c = 0; c < fanout; ++c) {
    if (!results[c].error.empty()) {
      throw std::runtime_error("load: connection " + std::to_string(c) +
                               ": " + results[c].error);
    }
    report.records_sent += results[c].records;
    report.blocks_sent += results[c].blocks;
    report.bytes_sent += results[c].bytes;
    report.ack_latency_seconds.push_back(results[c].ack_latency);
    report.reconnects += results[c].reconnects;
    report.chaos_cuts += results[c].chaos_cuts;
  }
  report.wall_seconds = wall;
  report.records_per_sec =
      wall > 0.0 ? static_cast<double>(report.records_sent) / wall : 0.0;
  return report;
}

}  // namespace hotspots::serve
