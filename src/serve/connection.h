// One accepted socket: protocol sniffing, ingest decode, HTTP snapshots.
//
// The server listens on a single port; the first bytes of a connection
// decide what it is.  "GET " means an HTTP/1.0 metrics poll (the four
// bytes can never open an ingest frame — they would decode as a payload
// length far above the protocol ceiling); anything else is treated as an
// `hotspots.ingest.v1` peer.  Each ingest connection owns a FrameParser
// (frame reassembly from arbitrary socket fragments) and, after HELLO, a
// trace::StreamDecoder fed the handshake's embedded trace header, every
// BLOCK payload, and the FIN trailer — so the exact validation the trace
// tests pin for files guards the network path too, including the
// trailer's per-connection record/block reconciliation.
//
// All methods run on the server's I/O thread.  The fold thread never
// touches a Connection; its resume/ack decisions travel through the
// server's wake pipe and arrive here as ResumeReads()/QueueAck() calls
// on the I/O thread.
//
// Buffer bounds: input is bounded by the fold pipeline's per-slot depth
// cap (when Submit() reports the cap, want_read() drops and the kernel's
// receive buffer takes the back-pressure); output is bounded by
// Hooks::max_output_buffer — a consumer that stops reading past that is
// closed and counted in `serve.slow_consumer_closes`.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "serve/fold.h"
#include "serve/wire.h"
#include "trace/stream_decoder.h"

namespace hotspots::serve {

class Connection {
 public:
  struct Hooks {
    FoldPipeline* fold = nullptr;
    /// Body of GET /metrics (hotspots.metrics.v1 JSON).
    std::function<std::string()> metrics_json;
    /// Body of GET /metrics.prom (Prometheus text exposition).
    std::function<std::string()> metrics_prom;
    /// Session admission check, called once per HELLO; throw IngestError
    /// to reject (e.g. a scenario-fingerprint mismatch).
    std::function<void(const Hello&)> on_hello;
    std::size_t max_output_buffer = std::size_t{1} << 20;
  };

  /// Takes ownership of the (non-blocking) fd.
  Connection(int fd, std::uint64_t id, Hooks hooks);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] std::uint64_t id() const { return id_; }

  /// Poller interest, recomputed by the server after every dispatch.
  [[nodiscard]] bool want_read() const { return !closed_ && !paused_; }
  [[nodiscard]] bool want_write() const {
    return !closed_ && out_pos_ < out_.size();
  }
  [[nodiscard]] bool closed() const { return closed_; }

  /// An ingest peer whose stream is not yet complete (no ACK flushed and
  /// no EOF) — the graceful-drain path waits for these.
  [[nodiscard]] bool ingest_unfinished() const {
    return slot_ >= 0 && !closed_ && !(acked_ && out_pos_ >= out_.size());
  }

  /// Fold slot id once HELLO registered, else -1.
  [[nodiscard]] std::int64_t slot() const { return slot_; }

  void OnReadable();
  void OnWritable();
  void OnError();

  /// Fold drained this connection's queue below the resume mark.
  void ResumeReads() { paused_ = false; }
  /// Every submitted block folded after FIN: send the ACK.
  void QueueAck();

  /// Why the connection closed ("eof", "done", or an error message).
  [[nodiscard]] const std::string& close_reason() const {
    return close_reason_;
  }

 private:
  enum class Kind { kSniffing, kIngest, kHttp };

  void HandleBytes(const std::uint8_t* data, std::size_t size);
  void HandleIngestBytes(const std::uint8_t* data, std::size_t size);
  void HandleFrame(const Frame& frame);
  void HandleHttpBytes(const std::uint8_t* data, std::size_t size);
  void QueueHttpResponse(int status, const char* reason,
                         const char* content_type, const std::string& body);
  void HandleEof();
  void FlushOut();
  void Close(const std::string& reason);

  int fd_;
  std::uint64_t id_;
  Hooks hooks_;

  Kind kind_ = Kind::kSniffing;
  std::vector<std::uint8_t> sniff_;  ///< First bytes until the kind is known.
  std::string http_in_;

  FrameParser parser_;
  std::unique_ptr<trace::StreamDecoder> decoder_;
  std::int64_t slot_ = -1;
  bool rejected_ = false;  ///< Admission refused; ERROR frame queued.
  bool fin_seen_ = false;
  bool acked_ = false;
  bool eof_seen_ = false;
  bool paused_ = false;
  bool close_after_flush_ = false;

  std::vector<std::uint8_t> out_;
  std::size_t out_pos_ = 0;

  bool closed_ = false;
  std::string close_reason_;
};

}  // namespace hotspots::serve
