// Readiness-notification abstraction for the telescope server.
//
// The server's event loop only needs four verbs — watch an fd, change
// what you're watching for, stop watching, wait — so that is the whole
// interface.  Two implementations exist:
//
//   * EpollPoller (Linux): O(ready) wakeups via epoll, level-triggered.
//     Level triggering is deliberate: the server's back-pressure story
//     relies on *not* draining a socket when the fold queue is full, and
//     level-triggered readiness re-arms that socket for free once
//     reading resumes.  Edge triggering would force a drain-everything
//     discipline that fights the bounded-buffer design.
//   * PollPoller (portable): poll(2) over a dense array.  O(watched) per
//     wait, fine for tests and modest fan-in, and the only option on
//     non-Linux hosts.
//
// Create() picks epoll when the platform has it, unless the caller (or
// the HOTSPOTS_SERVE_POLLER=poll environment override) forces the
// fallback — which is how CI exercises both paths on one machine.
#pragma once

#include <memory>
#include <vector>

namespace hotspots::serve {

struct PollEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  /// Error/hangup on the fd; the owner should tear the connection down.
  bool error = false;
};

class Poller {
 public:
  virtual ~Poller() = default;

  /// Starts watching `fd`.  Watching neither direction is legal — the fd
  /// stays registered (errors are still reported) but never wakes the
  /// loop for I/O; this is the paused state back-pressure uses.
  virtual void Add(int fd, bool want_read, bool want_write) = 0;
  /// Changes the watched directions of a registered fd.
  virtual void Update(int fd, bool want_read, bool want_write) = 0;
  /// Stops watching `fd` (must precede close(fd)).
  virtual void Remove(int fd) = 0;

  /// Blocks up to `timeout_ms` (-1 = forever) and appends ready fds to
  /// `out` (which is cleared first).  Returns the number of events; 0 on
  /// timeout.  EINTR is absorbed and reported as a timeout so signal
  /// delivery (SIGTERM → self-pipe) never surfaces as an error.
  virtual int Wait(std::vector<PollEvent>& out, int timeout_ms) = 0;

  /// "epoll" or "poll" — logged at startup so a run records which
  /// readiness path it exercised.
  [[nodiscard]] virtual const char* name() const = 0;

  /// Builds the best poller for this platform: epoll on Linux, poll
  /// elsewhere.  `force_poll` (or HOTSPOTS_SERVE_POLLER=poll in the
  /// environment) selects the portable fallback explicitly.
  static std::unique_ptr<Poller> Create(bool force_poll = false);
};

}  // namespace hotspots::serve
