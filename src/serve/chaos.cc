#include "serve/chaos.h"

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

namespace hotspots::serve {
namespace {

/// Domain separator: chaos draws must never collide with the fault
/// schedule's simulation-side streams even under an equal seed.
constexpr std::uint64_t kChaosSalt = 0xC4A05B17E5ull;

double UnitDouble(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

[[noreturn]] void BadDirective(const std::string& token,
                               const std::string& why) {
  throw std::invalid_argument("chaos spec: bad directive \"" + token +
                              "\": " + why);
}

double ParseRate(const std::string& token, const std::string& text) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || !(value >= 0.0) || !(value <= 1.0)) {
    BadDirective(token, "want a probability in [0, 1]");
  }
  return value;
}

void WriteAllRaw(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("chaos: write: ") +
                               std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

ChaosSpec ParseChaosSpec(const std::string& spec) {
  ChaosSpec parsed;
  bool seen[5] = {};  // seed, disconnect, reset, stall, shortwrite
  std::size_t cursor = 0;
  while (cursor < spec.size()) {
    std::size_t semi = spec.find(';', cursor);
    if (semi == std::string::npos) semi = spec.size();
    const std::string token = spec.substr(cursor, semi - cursor);
    cursor = semi + 1;
    if (token.empty()) continue;

    std::vector<std::string> parts;
    std::size_t start = 0;
    for (;;) {
      const std::size_t colon = token.find(':', start);
      if (colon == std::string::npos) {
        parts.push_back(token.substr(start));
        break;
      }
      parts.push_back(token.substr(start, colon - start));
      start = colon + 1;
    }
    const auto require_unseen = [&](int index) {
      if (seen[index]) BadDirective(token, "duplicate key");
      seen[index] = true;
    };
    if (parts[0] == "seed" && parts.size() == 2) {
      require_unseen(0);
      try {
        parsed.seed = std::stoull(parts[1]);
      } catch (const std::exception&) {
        BadDirective(token, "want seed:<u64>");
      }
    } else if (parts[0] == "disconnect" && parts.size() == 2) {
      require_unseen(1);
      parsed.disconnect_rate = ParseRate(token, parts[1]);
    } else if (parts[0] == "reset" && parts.size() == 2) {
      require_unseen(2);
      parsed.reset_rate = ParseRate(token, parts[1]);
    } else if (parts[0] == "stall" && parts.size() == 3) {
      require_unseen(3);
      parsed.stall_rate = ParseRate(token, parts[1]);
      char* end = nullptr;
      parsed.stall_seconds = std::strtod(parts[2].c_str(), &end);
      if (end == nullptr || *end != '\0' || !(parsed.stall_seconds >= 0.0) ||
          !std::isfinite(parsed.stall_seconds)) {
        BadDirective(token, "want stall:<p>:<seconds>");
      }
    } else if (parts[0] == "shortwrite" && parts.size() == 2) {
      require_unseen(4);
      parsed.short_write_rate = ParseRate(token, parts[1]);
    } else {
      BadDirective(token,
                   "want seed:<n>, disconnect:<p>, reset:<p>, "
                   "stall:<p>:<secs>, or shortwrite:<p>");
    }
  }
  if (parsed.disconnect_rate + parsed.reset_rate > 1.0) {
    throw std::invalid_argument(
        "chaos spec: disconnect + reset rates exceed 1");
  }
  return parsed;
}

ChaosWriter::ChaosWriter(const ChaosSpec& spec, std::uint32_t connection,
                         std::uint32_t attempt)
    : spec_(spec),
      stream_(prng::Mix64(
          spec.seed ^ kChaosSalt ^
          ((static_cast<std::uint64_t>(connection) << 32) | attempt))) {}

void ChaosWriter::WriteFrame(int& fd, const std::uint8_t* data,
                             std::size_t size) {
  if (!spec_.any() || size == 0) {
    WriteAllRaw(fd, data, size);
    return;
  }
  // One verdict draw per frame, then fault-specific draws — a fixed
  // consumption pattern, so frame k's fate never depends on what faults
  // earlier frames happened to draw.
  const double verdict = UnitDouble(stream_.Next());
  const std::uint64_t detail = stream_.Next();

  double threshold = spec_.disconnect_rate;
  if (verdict < threshold) {
    // Mid-frame disconnect: a strict prefix of the frame reaches the
    // wire, then the socket dies — the server must park the fragment in
    // its parser and survive the EOF.
    const std::size_t partial =
        size > 1 ? 1 + static_cast<std::size_t>(detail % (size - 1)) : 0;
    if (partial > 0) WriteAllRaw(fd, data, partial);
    ::close(fd);
    fd = -1;
    ++cuts_;
    throw ChaosCut("chaos: mid-frame disconnect after " +
                   std::to_string(partial) + " of " + std::to_string(size) +
                   " bytes");
  }
  threshold += spec_.reset_rate;
  if (verdict < threshold) {
    // Hard reset: zero linger makes close() send RST, so the server sees
    // ECONNRESET instead of an orderly EOF.
    const linger hard{1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof hard);
    ::close(fd);
    fd = -1;
    ++cuts_;
    throw ChaosCut("chaos: connection reset before frame write");
  }
  threshold += spec_.stall_rate;
  if (verdict < threshold) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(spec_.stall_seconds));
    WriteAllRaw(fd, data, size);
    return;
  }
  threshold += spec_.short_write_rate;
  if (verdict < threshold && size > 1) {
    // Fragmented write: split at a drawn point inside the frame so the
    // server's parser sees headers and payloads torn across reads.
    const std::size_t split = 1 + static_cast<std::size_t>(detail % (size - 1));
    WriteAllRaw(fd, data, split);
    WriteAllRaw(fd, data + split, size - split);
    return;
  }
  WriteAllRaw(fd, data, size);
}

}  // namespace hotspots::serve
