#include "prng/lcg_cycles.h"

#include <algorithm>
#include <bit>
#include <set>
#include <stdexcept>

namespace hotspots::prng {

int Valuation2(std::uint32_t value, int cap) {
  if (value == 0) return cap;
  return std::min(cap, std::countr_zero(value));
}

LcgCycleAnalyzer::LcgCycleAnalyzer(LcgParams params)
    : params_(params), m_(params.modulus_bits) {
  if (m_ < 3 || m_ > 32) {
    throw std::invalid_argument("LcgCycleAnalyzer: modulus_bits must be in [3,32]");
  }
  if (params.multiplier % 4 != 1 || params.multiplier == 1) {
    throw std::invalid_argument(
        "LcgCycleAnalyzer: multiplier must be ≡ 1 (mod 4) and ≠ 1");
  }
  a_minus_1_ = (params.multiplier - 1) & params.Mask();
  e_ = Valuation2(a_minus_1_, m_);
  if (e_ >= m_) {
    throw std::invalid_argument(
        "LcgCycleAnalyzer: multiplier is ≡ 1 (mod 2^m); map is a translation");
  }
}

std::uint32_t LcgCycleAnalyzer::YOf(std::uint32_t x) const {
  return (a_minus_1_ * x + params_.increment) & params_.Mask();
}

int LcgCycleAnalyzer::ValuationOf(std::uint32_t y) const {
  return Valuation2(y, m_);
}

std::uint64_t LcgCycleAnalyzer::CycleLength(std::uint32_t x) const {
  const int v = ValuationOf(YOf(x));
  return v >= m_ ? 1 : (std::uint64_t{1} << (m_ - v));
}

CycleId LcgCycleAnalyzer::IdOf(std::uint32_t x) const {
  x &= params_.Mask();
  const std::uint32_t y = YOf(x);
  const int v = ValuationOf(y);
  if (v >= m_ - e_) {
    // Short cycles (length ≤ 2^e): the algebraic coset invariant no longer
    // separates distinct cycles inside one y-fibre, so canonicalize by
    // walking the whole (tiny) orbit and taking its minimum element.
    std::uint32_t min_element = x;
    std::uint32_t cursor = params_.Step(x);
    // Orbit length is 2^(m−v) ≤ 2^e; bound the walk defensively anyway.
    for (int step = 0; step < (1 << e_) && cursor != x; ++step) {
      min_element = std::min(min_element, cursor);
      cursor = params_.Step(cursor);
    }
    return CycleId{v, min_element};
  }
  const std::uint32_t odd_part = y >> v;
  // Same cycle ⇔ same v and odd parts agree modulo 2^min(e, m−v); here
  // m−v > e so the modulus is 2^e.
  return CycleId{v, odd_part & ((1u << e_) - 1)};
}

std::vector<CycleClass> LcgCycleAnalyzer::Census() const {
  std::vector<CycleClass> census;
  const int vb = ValuationOf(params_.increment & params_.Mask());
  const auto points_total = std::uint64_t{1} << m_;

  if (vb < e_) {
    // v₂(y) = v₂(b) for every x: a single class of maximal cycles.
    const std::uint64_t length = std::uint64_t{1} << (m_ - vb);
    census.push_back(CycleClass{length, points_total / length, points_total});
    return census;
  }

  // v₂(y) = e + v₂(w) with w uniform over Z_2^(m−e) (fibre multiplicity 2^e).
  const int me = m_ - e_;
  for (int j = 0; j < me; ++j) {
    const std::uint64_t w_count = std::uint64_t{1} << (me - j - 1);
    const std::uint64_t points = w_count << e_;
    const int v = e_ + j;
    const std::uint64_t length = std::uint64_t{1} << (m_ - v);
    census.push_back(CycleClass{length, points / length, points});
  }
  // w = 0 ⇒ y ≡ 0 (mod 2^m): 2^e fixed points, each its own cycle.
  census.push_back(CycleClass{1, std::uint64_t{1} << e_, std::uint64_t{1} << e_});

  std::sort(census.begin(), census.end(),
            [](const CycleClass& a, const CycleClass& b) {
              return a.length > b.length;
            });
  return census;
}

std::uint64_t LcgCycleAnalyzer::TotalCycles() const {
  std::uint64_t total = 0;
  for (const CycleClass& cls : Census()) total += cls.num_cycles;
  return total;
}

double LcgCycleAnalyzer::HitProbability(std::uint32_t x) const {
  return static_cast<double>(CycleLength(x)) /
         static_cast<double>(std::uint64_t{1} << m_);
}

std::uint64_t LcgCycleAnalyzer::SumCycleLengthsThrough(
    const net::Prefix& block) const {
  std::set<CycleId> seen;
  std::uint64_t sum = 0;
  for (std::uint64_t i = 0; i < block.size(); ++i) {
    const std::uint32_t x = block.AddressAt(i).value() & params_.Mask();
    const CycleId id = IdOf(x);
    if (seen.insert(id).second) sum += CycleLength(x);
    // Once both maximal cycles and everything shorter intersecting the block
    // have been found, further scanning cannot add: no early exit — blocks
    // are small (≤ /17 in the experiments) and this is not a hot path.
  }
  return sum;
}

double LcgCycleAnalyzer::ExpectedUniqueSources(const net::Prefix& block,
                                               std::uint64_t population) const {
  const double p = static_cast<double>(SumCycleLengthsThrough(block)) /
                   static_cast<double>(std::uint64_t{1} << m_);
  return static_cast<double>(population) * p;
}

}  // namespace hotspots::prng
