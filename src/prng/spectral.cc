#include "prng/spectral.h"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace hotspots::prng {
namespace {

struct Vec {
  std::int64_t x = 0;
  std::int64_t y = 0;

  [[nodiscard]] double NormSquared() const {
    return static_cast<double>(x) * static_cast<double>(x) +
           static_cast<double>(y) * static_cast<double>(y);
  }
};

}  // namespace

SpectralResult SpectralTest2D(const LcgParams& params) {
  if ((params.multiplier & 1u) == 0) {
    throw std::invalid_argument("SpectralTest2D: multiplier must be odd");
  }
  if (params.modulus_bits < 2 || params.modulus_bits > 32) {
    throw std::invalid_argument("SpectralTest2D: modulus_bits in [2,32]");
  }
  const std::int64_t modulus = std::int64_t{1} << params.modulus_bits;

  // Lattice basis: u = (1, a), v = (0, 2^m).  Gaussian reduction: swap so
  // |u| ≤ |v|, subtract the nearest-integer multiple, repeat.
  Vec u{1, static_cast<std::int64_t>(params.multiplier)};
  Vec v{0, modulus};
  for (;;) {
    if (u.NormSquared() > v.NormSquared()) std::swap(u, v);
    // μ = round(<v,u> / <u,u>)
    const double dot = static_cast<double>(v.x) * u.x +
                       static_cast<double>(v.y) * u.y;
    const double mu = std::nearbyint(dot / u.NormSquared());
    if (mu == 0.0) break;
    v.x -= static_cast<std::int64_t>(mu) * u.x;
    v.y -= static_cast<std::int64_t>(mu) * u.y;
  }
  const Vec shortest = u.NormSquared() <= v.NormSquared() ? u : v;

  SpectralResult result;
  result.shortest_x = shortest.x;
  result.shortest_y = shortest.y;
  result.nu2 = std::sqrt(shortest.NormSquared());
  // The densest possible 2-D lattice of determinant 2^m (hexagonal) has
  // shortest vector sqrt(2^m · 2/sqrt(3)).
  result.merit =
      result.nu2 / std::sqrt(static_cast<double>(modulus) * 2.0 /
                             std::sqrt(3.0));
  return result;
}

}  // namespace hotspots::prng
