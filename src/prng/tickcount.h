// Model of GetTickCount() as a (bad) entropy source.
//
// Blaster seeds srand() with GetTickCount(), the number of milliseconds
// since boot.  Because the worm is launched from a registry run key, the
// tick count at launch is just the boot duration — and Section 4.2.2 of the
// paper measured boot durations across three hardware generations at a mean
// of ≈30 s with ≈1 s standard deviation.  The seed is therefore confined to
// a tiny slice of the 32-bit space, which is the root cause of the Blaster
// hotspots in Figure 1.
//
// This module reproduces both the paper's measurement (a simulated
// reboot-loop experiment) and the resulting launch-time seed distribution,
// including the longer tail of hosts that reboot, run for a while, and only
// then get (re)infected.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "prng/xoshiro.h"

namespace hotspots::prng {

/// Boot-duration statistics for one hardware generation, as measured by the
/// paper's reboot-loop program.
struct HardwareGeneration {
  std::string name;
  double boot_mean_seconds = 30.0;
  double boot_stddev_seconds = 1.0;
  double weight = 1.0;  ///< Relative share of the infected population.
};

/// The three generations the paper measured (Pentium II/III/IV), all with a
/// mean boot time of about 30 s and a 1 s standard deviation.
[[nodiscard]] std::vector<HardwareGeneration> PaperHardwareGenerations();

/// Distribution of GetTickCount() values observed at worm launch.
class BootEntropyModel {
 public:
  /// `reboot_start_fraction` is the share of infections whose worm process
  /// starts right at boot (registry run key after a reboot); the remainder
  /// are hosts infected `uptime` into a session, where uptime is sampled
  /// log-uniformly between `min_uptime_seconds` and `max_uptime_seconds`.
  /// `tick_resolution_ms` models GetTickCount()'s coarse timer granularity
  /// (~16 ms on the measured hardware): returned ticks are quantized to it,
  /// which is what funnels thousands of rebooting hosts onto *identical*
  /// seeds and makes the Figure-1 spikes so tall.
  BootEntropyModel(std::vector<HardwareGeneration> generations,
                   double reboot_start_fraction = 0.85,
                   double min_uptime_seconds = 60.0,
                   double max_uptime_seconds = 7.0 * 24 * 3600,
                   std::uint32_t tick_resolution_ms = 16);

  /// Model with the paper's measured hardware generations.
  [[nodiscard]] static BootEntropyModel Paper();

  /// Samples a GetTickCount() value (milliseconds since boot) at the moment
  /// the worm calls srand().
  [[nodiscard]] std::uint32_t SampleTickCount(Xoshiro256& rng) const;

  /// Simulates the paper's measurement program: reboot `trials` times and
  /// log GetTickCount() at launch; returns the tick values (ms).  Used by
  /// the fig1 bench to reproduce the "mean ≈ 30 s, σ ≈ 1 s" observation.
  [[nodiscard]] std::vector<std::uint32_t> RebootLoopExperiment(
      const HardwareGeneration& generation, int trials, Xoshiro256& rng) const;

  [[nodiscard]] const std::vector<HardwareGeneration>& generations() const {
    return generations_;
  }
  [[nodiscard]] double reboot_start_fraction() const {
    return reboot_start_fraction_;
  }
  [[nodiscard]] std::uint32_t tick_resolution_ms() const {
    return tick_resolution_ms_;
  }

 private:
  [[nodiscard]] double SampleBootSeconds(const HardwareGeneration& generation,
                                         Xoshiro256& rng) const;

  std::vector<HardwareGeneration> generations_;
  std::vector<double> cumulative_weights_;
  double reboot_start_fraction_;
  double min_uptime_seconds_;
  double max_uptime_seconds_;
  std::uint32_t tick_resolution_ms_;
};

}  // namespace hotspots::prng
