#include "prng/cycle_finder.h"

#include <algorithm>
#include <stdexcept>

namespace hotspots::prng {

std::vector<FoundCycle> FindAllCycles(int domain_bits, const StepFn& step) {
  if (domain_bits < 1 || domain_bits > 26) {
    throw std::invalid_argument("FindAllCycles: domain_bits must be in [1,26]");
  }
  const std::uint64_t domain = std::uint64_t{1} << domain_bits;
  const std::uint32_t mask = static_cast<std::uint32_t>(domain - 1);
  std::vector<bool> visited(domain, false);
  std::vector<FoundCycle> cycles;

  for (std::uint64_t start = 0; start < domain; ++start) {
    if (visited[start]) continue;
    // Because the map is a permutation and `start` is the smallest
    // unvisited element, the trajectory from `start` must return to `start`
    // without touching any visited element.
    std::uint64_t length = 0;
    std::uint32_t smallest = static_cast<std::uint32_t>(start);
    std::uint32_t cursor = static_cast<std::uint32_t>(start);
    do {
      if (visited[cursor]) {
        throw std::invalid_argument("FindAllCycles: step is not a permutation");
      }
      visited[cursor] = true;
      smallest = std::min(smallest, cursor);
      cursor = step(cursor) & mask;
      ++length;
    } while (cursor != start);
    cycles.push_back(FoundCycle{smallest, length});
  }
  return cycles;
}

std::vector<std::uint32_t> CollectOrbit(std::uint32_t start, const StepFn& step,
                                        std::uint64_t max_steps) {
  std::vector<std::uint32_t> orbit;
  orbit.push_back(start);
  std::uint32_t cursor = start;
  for (std::uint64_t i = 0; i < max_steps; ++i) {
    cursor = step(cursor);
    if (cursor == start) break;
    orbit.push_back(cursor);
  }
  return orbit;
}

std::uint64_t CountOrbitHitsInBlock(std::uint32_t start, const StepFn& step,
                                    std::uint64_t max_steps,
                                    const net::Prefix& block) {
  std::uint64_t hits = 0;
  std::uint32_t cursor = start;
  for (std::uint64_t i = 0; i < max_steps; ++i) {
    cursor = step(cursor);
    if (block.Contains(net::Ipv4{cursor})) ++hits;
    if (cursor == start) break;
  }
  return hits;
}

}  // namespace hotspots::prng
