// Linear congruential generators over power-of-two moduli.
//
// Nearly every worm the paper studies derives its targets from an LCG of the
// form  s ← a·s + b  (mod 2^m).  `Lcg` is the exact, reusable model of that
// recurrence: it exposes the raw state sequence (what Slammer uses directly)
// rather than any truncated output (see msvc_rand.h for the truncated
// Windows CRT variant Blaster uses).
#pragma once

#include <cstdint>
#include <stdexcept>

namespace hotspots::prng {

/// Parameters of an LCG  s ← a·s + b  (mod 2^modulus_bits).
struct LcgParams {
  std::uint32_t multiplier = 0;   ///< a
  std::uint32_t increment = 0;    ///< b
  int modulus_bits = 32;          ///< m in [1, 32]

  /// Bitmask selecting the low `modulus_bits` bits.
  [[nodiscard]] constexpr std::uint32_t Mask() const {
    return modulus_bits == 32 ? ~std::uint32_t{0}
                              : (std::uint32_t{1} << modulus_bits) - 1;
  }

  /// One application of the recurrence to `state`.
  [[nodiscard]] constexpr std::uint32_t Step(std::uint32_t state) const {
    return (multiplier * state + increment) & Mask();
  }

  friend constexpr bool operator==(const LcgParams&, const LcgParams&) = default;
};

/// A running LCG instance.
class Lcg {
 public:
  constexpr Lcg(LcgParams params, std::uint32_t seed)
      : params_(Validated(params)), state_(seed & params_.Mask()) {}

  /// Advances one step and returns the new state.
  constexpr std::uint32_t Next() {
    state_ = params_.Step(state_);
    return state_;
  }

  [[nodiscard]] constexpr std::uint32_t state() const { return state_; }
  [[nodiscard]] constexpr const LcgParams& params() const { return params_; }

 private:
  /// Throws before Mask() can shift by an out-of-range bit count.
  static constexpr LcgParams Validated(LcgParams params) {
    if (params.modulus_bits < 1 || params.modulus_bits > 32) {
      throw std::invalid_argument("Lcg: modulus_bits must be in [1,32]");
    }
    return params;
  }

  LcgParams params_;
  std::uint32_t state_;
};

/// The multiplier shared by the Microsoft CRT rand() and the Slammer worm.
inline constexpr std::uint32_t kMsvcMultiplier = 214013;
/// The increment of the Microsoft CRT rand().
inline constexpr std::uint32_t kMsvcIncrement = 2531011;

}  // namespace hotspots::prng
