// The Microsoft Visual C runtime rand()/srand() pair.
//
// Blaster calls srand(GetTickCount()) and then uses rand() to choose its
// starting /24 (Section 4.2.2 of the paper).  The CRT generator is the LCG
// s ← 214013·s + 2531011 (mod 2^32) with 15-bit truncated output
// (s >> 16) & 0x7FFF, so the *observable* behaviour of Blaster depends on
// both the LCG flaw structure and the truncation.
#pragma once

#include <cstdint>

#include "prng/lcg.h"

namespace hotspots::prng {

/// Faithful model of msvcrt's rand().
class MsvcRand {
 public:
  /// RAND_MAX of the Microsoft CRT.
  static constexpr std::uint32_t kRandMax = 0x7FFF;

  /// Equivalent of srand(seed).
  constexpr explicit MsvcRand(std::uint32_t seed) : state_(seed) {}

  /// Equivalent of rand(): advances the LCG, returns 15 bits in [0, 0x7FFF].
  constexpr std::uint32_t Next() {
    state_ = state_ * kMsvcMultiplier + kMsvcIncrement;
    return (state_ >> 16) & kRandMax;
  }

  /// rand() % bound, exactly as worm code does it (with its modulo bias).
  constexpr std::uint32_t NextMod(std::uint32_t bound) {
    return Next() % bound;
  }

  [[nodiscard]] constexpr std::uint32_t state() const { return state_; }

 private:
  std::uint32_t state_;
};

}  // namespace hotspots::prng
