// Brute-force cycle enumeration for permutations of small power-of-two
// domains.
//
// This is the ground truth used to validate the algebraic analyzer in
// lcg_cycles.h: at moduli up to ~2^24 we can explicitly enumerate every
// cycle of T(x) = a·x + b and compare lengths, counts, and membership with
// the O(1) algebra.  It also provides the generic trajectory helpers used by
// the forensics tooling (orbit collection, orbit/block intersection).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/prefix.h"

namespace hotspots::prng {

/// One enumerated cycle of a permutation.
struct FoundCycle {
  std::uint32_t representative = 0;  ///< Smallest element of the cycle.
  std::uint64_t length = 0;
};

/// Step function over [0, 2^domain_bits).
using StepFn = std::function<std::uint32_t(std::uint32_t)>;

/// Enumerates every cycle of the permutation `step` over [0, 2^domain_bits).
/// Requires domain_bits ≤ 26 (memory guard: the visited bitmap is
/// 2^domain_bits bits).  Throws std::invalid_argument beyond that, and
/// std::invalid_argument if `step` is detected not to be a permutation
/// (a trajectory re-enters a visited element other than its start).
[[nodiscard]] std::vector<FoundCycle> FindAllCycles(int domain_bits,
                                                    const StepFn& step);

/// Collects the forward orbit of `start` under `step`, stopping after the
/// orbit closes or `max_steps` applications.  The returned vector begins
/// with `start` and contains no duplicates.
[[nodiscard]] std::vector<std::uint32_t> CollectOrbit(std::uint32_t start,
                                                      const StepFn& step,
                                                      std::uint64_t max_steps);

/// Walks the orbit of `start` for at most `max_steps` applications and
/// counts how many visited states fall inside `block`.  This is how a
/// quarantined Slammer host's probes are attributed to sensor blocks.
[[nodiscard]] std::uint64_t CountOrbitHitsInBlock(std::uint32_t start,
                                                  const StepFn& step,
                                                  std::uint64_t max_steps,
                                                  const net::Prefix& block);

}  // namespace hotspots::prng
