#include "prng/tickcount.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace hotspots::prng {

std::vector<HardwareGeneration> PaperHardwareGenerations() {
  // The paper reports "a mean boot time of about 30 seconds with a 1 second
  // standard deviation" across three generations; we give each generation a
  // slightly different mean inside that envelope.
  return {
      HardwareGeneration{"Pentium II", 31.5, 1.0, 1.0},
      HardwareGeneration{"Pentium III", 30.0, 1.0, 1.0},
      HardwareGeneration{"Pentium IV", 28.5, 1.0, 1.0},
  };
}

BootEntropyModel::BootEntropyModel(std::vector<HardwareGeneration> generations,
                                   double reboot_start_fraction,
                                   double min_uptime_seconds,
                                   double max_uptime_seconds,
                                   std::uint32_t tick_resolution_ms)
    : generations_(std::move(generations)),
      reboot_start_fraction_(reboot_start_fraction),
      min_uptime_seconds_(min_uptime_seconds),
      max_uptime_seconds_(max_uptime_seconds),
      tick_resolution_ms_(tick_resolution_ms) {
  if (tick_resolution_ms == 0) {
    throw std::invalid_argument("BootEntropyModel: zero tick resolution");
  }
  if (generations_.empty()) {
    throw std::invalid_argument("BootEntropyModel: no hardware generations");
  }
  if (reboot_start_fraction < 0.0 || reboot_start_fraction > 1.0) {
    throw std::invalid_argument(
        "BootEntropyModel: reboot_start_fraction outside [0,1]");
  }
  if (min_uptime_seconds <= 0 || max_uptime_seconds < min_uptime_seconds) {
    throw std::invalid_argument("BootEntropyModel: bad uptime bounds");
  }
  double total = 0.0;
  for (const HardwareGeneration& generation : generations_) {
    if (generation.weight < 0) {
      throw std::invalid_argument("BootEntropyModel: negative weight");
    }
    total += generation.weight;
    cumulative_weights_.push_back(total);
  }
  if (total <= 0) {
    throw std::invalid_argument("BootEntropyModel: zero total weight");
  }
  for (double& w : cumulative_weights_) w /= total;
}

BootEntropyModel BootEntropyModel::Paper() {
  return BootEntropyModel{PaperHardwareGenerations()};
}

double BootEntropyModel::SampleBootSeconds(
    const HardwareGeneration& generation, Xoshiro256& rng) const {
  // Box–Muller; boot times are tightly clustered so a normal is adequate.
  const double u1 = rng.NextDouble();
  const double u2 = rng.NextDouble();
  const double z =
      std::sqrt(-2.0 * std::log(u1 + 1e-300)) *
      std::cos(2.0 * std::numbers::pi * u2);
  return std::max(1.0, generation.boot_mean_seconds +
                           z * generation.boot_stddev_seconds);
}

std::uint32_t BootEntropyModel::SampleTickCount(Xoshiro256& rng) const {
  const double pick = rng.NextDouble();
  std::size_t index = 0;
  while (index + 1 < cumulative_weights_.size() &&
         pick > cumulative_weights_[index]) {
    ++index;
  }
  double seconds = SampleBootSeconds(generations_[index], rng);
  if (!rng.Bernoulli(reboot_start_fraction_)) {
    // Host was up for a while before the worm started: add a log-uniform
    // uptime, which produces the paper's tail of seeds out to tens of
    // minutes and beyond.
    const double log_min = std::log(min_uptime_seconds_);
    const double log_max = std::log(max_uptime_seconds_);
    seconds += std::exp(log_min + (log_max - log_min) * rng.NextDouble());
  }
  // GetTickCount wraps at 2^32 ms (~49.7 days) and advances in coarse
  // timer-interrupt steps; model both faithfully.
  const double ticks = seconds * 1000.0;
  const auto raw = static_cast<std::uint32_t>(std::fmod(ticks, 4294967296.0));
  return raw - raw % tick_resolution_ms_;
}

std::vector<std::uint32_t> BootEntropyModel::RebootLoopExperiment(
    const HardwareGeneration& generation, int trials, Xoshiro256& rng) const {
  if (trials < 0) throw std::invalid_argument("RebootLoopExperiment: trials<0");
  std::vector<std::uint32_t> ticks;
  ticks.reserve(static_cast<std::size_t>(trials));
  for (int i = 0; i < trials; ++i) {
    const auto raw = static_cast<std::uint32_t>(
        SampleBootSeconds(generation, rng) * 1000.0);
    ticks.push_back(raw - raw % tick_resolution_ms_);
  }
  return ticks;
}

}  // namespace hotspots::prng
