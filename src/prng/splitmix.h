// SplitMix64 — the canonical seeding generator.
//
// Used to expand a single 64-bit seed into the larger states of the
// simulation RNGs, and as a cheap stateless mixer.  Reference:
// Steele, Lea, Flood, "Fast Splittable Pseudorandom Number Generators",
// OOPSLA 2014.
#pragma once

#include <cstdint>

namespace hotspots::prng {

/// Stateful SplitMix64 stream.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next 64 pseudo-random bits.
  constexpr std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// One-shot mix of a 64-bit value (finalizer of SplitMix64).
[[nodiscard]] constexpr std::uint64_t Mix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace hotspots::prng
