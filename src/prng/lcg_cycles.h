// Exact algebraic cycle analysis of LCGs over power-of-two moduli.
//
// The Slammer analysis in Section 4.2.3 of the paper rests entirely on the
// cycle structure of the map T(x) = a·x + b (mod 2^m): each infected host is
// trapped on one cycle forever, so the set of addresses a host can ever
// target is exactly the cycle containing its seed, and the expected number
// of distinct infected sources observed at an address t is
// N · len(cycle(t)) / 2^m.
//
// For odd `a` the map is a permutation.  Substituting y = (a−1)x + b turns T
// into pure multiplication, y ← a·y, which makes the cycle structure fully
// computable in O(1) per point for a ≡ 1 (mod 4) (which covers the
// msvcrt/Slammer multiplier a = 214013):
//
//   * With e = v₂(a−1) (e ≥ 2), the lifting-the-exponent lemma gives
//     v₂(aᵏ−1) = e + v₂(k), so the partial geometric sums satisfy
//     v₂(Sₖ) = v₂(k), where Sₖ = 1 + a + … + a^{k−1}.
//   * T^k(x) = x  ⇔  Sₖ·y ≡ 0 (mod 2^m), so the cycle length of x is
//     2^max(0, m − v₂(y)).
//   * Two points are on the same cycle iff their y values have the same
//     2-adic valuation v and the odd parts agree modulo 2^min(e, m−v).
//     (For v ≥ m−e, where cycles are shorter than the y-fibre, we fall back
//     to explicitly walking the ≤ 2^e-step orbit.)
//
// The census this module derives — (m−e)·2^{e−1} classes of 2^{e−1} cycles
// plus 2^e fixed points when v₂(b) ≥ e — yields exactly 64 cycles for the
// Slammer parameters (m=32, e=2), matching the paper's count.  Everything
// here is verified against the brute-force permutation cycle finder in
// cycle_finder.h at small moduli (see tests/prng_lcg_cycles_test.cc).
#pragma once

#include <compare>
#include <cstdint>
#include <vector>

#include "net/prefix.h"
#include "prng/lcg.h"

namespace hotspots::prng {

/// A complete cycle-membership invariant: two states are on the same cycle
/// of the LCG iff their CycleIds compare equal.
struct CycleId {
  int valuation = 0;          ///< v₂(y), capped at m.
  std::uint32_t residue = 0;  ///< Coset/representative discriminator.

  friend constexpr auto operator<=>(const CycleId&, const CycleId&) = default;
};

/// One equivalence class of cycles sharing a length.
struct CycleClass {
  std::uint64_t length = 0;      ///< Period of each cycle in the class.
  std::uint64_t num_cycles = 0;  ///< How many distinct cycles have it.
  std::uint64_t num_points = 0;  ///< length × num_cycles.
};

/// Exact cycle analysis of T(x) = a·x + b (mod 2^m) for a ≡ 1 (mod 4).
class LcgCycleAnalyzer {
 public:
  /// Throws std::invalid_argument unless params.multiplier ≡ 1 (mod 4)
  /// (and ≠ 1, which would make T a degenerate translation).
  explicit LcgCycleAnalyzer(LcgParams params);

  /// Length of the cycle through `x`.  O(1).
  [[nodiscard]] std::uint64_t CycleLength(std::uint32_t x) const;

  /// Complete cycle-membership invariant of `x`.  O(1) except for points
  /// within 2^e of a fixed point, where it walks the ≤ 2^e-step orbit.
  [[nodiscard]] CycleId IdOf(std::uint32_t x) const;

  /// True iff `x` and `y` lie on the same cycle.
  [[nodiscard]] bool SameCycle(std::uint32_t x, std::uint32_t y) const {
    return IdOf(x) == IdOf(y);
  }

  /// The full cycle census (sorted by decreasing length).  Sum of
  /// num_points over all classes is exactly 2^m.
  [[nodiscard]] std::vector<CycleClass> Census() const;

  /// Total number of distinct cycles (the paper reports 64 for Slammer).
  [[nodiscard]] std::uint64_t TotalCycles() const;

  /// Probability that a uniformly seeded instance ever targets `x`:
  /// len(cycle(x)) / 2^m.
  [[nodiscard]] double HitProbability(std::uint32_t x) const;

  /// Sum of the lengths of all *distinct* cycles that pass through the
  /// block — the statistic the paper computes for the D/H/I sensor blocks.
  /// Also equals 2^m × (probability that a uniformly seeded instance ever
  /// targets *some* address of the block).
  [[nodiscard]] std::uint64_t SumCycleLengthsThrough(
      const net::Prefix& block) const;

  /// Expected number of distinct infected sources observed anywhere in
  /// `block`, given `population` instances with independent uniform seeds.
  [[nodiscard]] double ExpectedUniqueSources(const net::Prefix& block,
                                             std::uint64_t population) const;

  [[nodiscard]] const LcgParams& params() const { return params_; }
  /// e = v₂(a−1).
  [[nodiscard]] int increment_valuation_of_multiplier() const { return e_; }

 private:
  /// y = (a−1)x + b reduced mod 2^m.
  [[nodiscard]] std::uint32_t YOf(std::uint32_t x) const;
  /// v₂(y) capped at m.
  [[nodiscard]] int ValuationOf(std::uint32_t y) const;

  LcgParams params_;
  int m_;                  ///< Modulus bits.
  int e_;                  ///< v₂(a−1).
  std::uint32_t a_minus_1_;
};

/// 2-adic valuation of a 32-bit value; `cap` is returned for zero.
[[nodiscard]] int Valuation2(std::uint32_t value, int cap);

}  // namespace hotspots::prng
