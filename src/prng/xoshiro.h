// xoshiro256** — the library's fast, high-quality simulation RNG.
//
// This generator drives everything that is *supposed* to be uniform:
// population placement, Poisson scan jitter, the uniform-scanning baseline
// worm.  The deliberately *flawed* generators the paper studies (msvcrt
// rand, the Slammer LCG) live in their own modules.  Satisfies the
// std::uniform_random_bit_generator concept so it composes with <random>.
//
// Reference: Blackman & Vigna, "Scrambled linear pseudorandom number
// generators", ACM TOMS 2021.
#pragma once

#include <cstdint>

#include "prng/splitmix.h"

namespace hotspots::prng {

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from a single 64-bit seed via SplitMix64.
  constexpr explicit Xoshiro256(std::uint64_t seed = 0xD1B54A32D192ED03ull) {
    SplitMix64 mixer{seed};
    for (auto& word : state_) word = mixer.Next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  constexpr result_type operator()() { return Next(); }

  /// Next 64 random bits.
  constexpr std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Next 32 random bits (upper half of the 64-bit output).
  constexpr std::uint32_t NextU32() {
    return static_cast<std::uint32_t>(Next() >> 32);
  }

  /// Uniform double in [0, 1).
  constexpr double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  constexpr std::uint32_t UniformBelow(std::uint32_t bound) {
    // Multiply-shift; the tiny residual bias (< 2^-32) is irrelevant at
    // simulation scale but we reject the short range anyway for exactness.
    std::uint64_t product =
        static_cast<std::uint64_t>(NextU32()) * static_cast<std::uint64_t>(bound);
    auto low = static_cast<std::uint32_t>(product);
    if (low < bound) {
      const std::uint32_t threshold = (0u - bound) % bound;
      while (low < threshold) {
        product = static_cast<std::uint64_t>(NextU32()) *
                  static_cast<std::uint64_t>(bound);
        low = static_cast<std::uint32_t>(product);
      }
    }
    return static_cast<std::uint32_t>(product >> 32);
  }

  /// Bernoulli trial with success probability `p`.
  constexpr bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace hotspots::prng
