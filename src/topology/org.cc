#include "topology/org.h"

#include <stdexcept>

namespace hotspots::topology {

std::string_view ToString(OrgKind kind) {
  switch (kind) {
    case OrgKind::kEnterprise: return "enterprise";
    case OrgKind::kBroadbandIsp: return "broadband-isp";
    case OrgKind::kAcademic: return "academic";
    case OrgKind::kOther: return "other";
  }
  return "unknown";
}

std::uint64_t Organization::TotalAddresses() const {
  std::uint64_t total = 0;
  for (const net::Prefix& prefix : prefixes) total += prefix.size();
  return total;
}

OrgId AllocationRegistry::AddOrg(std::string name, OrgKind kind,
                                 std::vector<net::Prefix> prefixes,
                                 bool perimeter_filtered) {
  const OrgId id = static_cast<OrgId>(orgs_.size());
  Organization org;
  org.id = id;
  org.name = std::move(name);
  org.kind = kind;
  org.prefixes = std::move(prefixes);
  org.perimeter_filtered = perimeter_filtered;
  for (const net::Prefix& prefix : org.prefixes) {
    by_address_.Add(prefix, id);
  }
  orgs_.push_back(std::move(org));
  built_ = false;
  return id;
}

void AllocationRegistry::Build() {
  by_address_.Build();  // Throws on overlap.
  built_ = true;
}

OrgId AllocationRegistry::OrgOf(net::Ipv4 address) const {
  if (!built_) throw std::logic_error("AllocationRegistry: Build() not called");
  const OrgId* id = by_address_.Lookup(address);
  return id == nullptr ? kInvalidOrg : *id;
}

const Organization& AllocationRegistry::Get(OrgId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= orgs_.size()) {
    throw std::out_of_range("AllocationRegistry: bad OrgId");
  }
  return orgs_[static_cast<std::size_t>(id)];
}

}  // namespace hotspots::topology
