// Routing and filtering policy (environmental factor #1).
//
// Two filtering mechanisms from the paper:
//   * Perimeter firewalls at enterprises (Table 2): probes crossing an
//     organization boundary in either direction are dropped when that
//     organization filters; intra-organization probes always pass — which
//     is exactly why "vulnerable but firewalled" hosts can still be infected
//     from inside.
//   * Upstream provider ACLs (Figure 2): the M sensor block saw *zero*
//     Slammer packets because its upstream blocked the worm's port.  We
//     model this as per-destination-prefix ingress ACLs attached to a
//     threat.
#pragma once

#include <vector>

#include "net/interval_set.h"
#include "net/prefix.h"
#include "topology/org.h"

namespace hotspots::topology {

/// Destination-side ACLs installed in the network for one threat (e.g.
/// "upstream of M drops UDP/1434").
class IngressAclSet {
 public:
  /// Drops all probes of the threat destined into `prefix`.
  void Block(const net::Prefix& prefix) {
    blocked_.Add(prefix);
    built_ = false;
  }

  /// Finalizes; must be called before Blocks().
  void Build() {
    blocked_.Build();
    built_ = true;
  }

  /// True if a probe to `dst` is dropped by an ACL.  An empty set never
  /// blocks and does not require Build().
  [[nodiscard]] bool Blocks(net::Ipv4 dst) const {
    if (blocked_.empty()) return false;
    if (!built_) throw std::logic_error("IngressAclSet: Build() not called");
    return blocked_.Contains(dst);
  }

  [[nodiscard]] bool empty() const { return blocked_.empty(); }
  [[nodiscard]] bool built() const { return blocked_.built(); }

  /// Coverage of [interval.lo, interval.hi] by the installed ACLs, used by
  /// Reachability to precompute its per-/16 classification table.  An empty
  /// set covers nothing; otherwise requires Build().
  [[nodiscard]] net::Coverage CoverageOf(net::Interval interval) const {
    return blocked_.CoverageOf(interval);
  }

 private:
  net::IntervalSet blocked_;
  bool built_ = false;
};

/// Perimeter-firewall decision for a probe between two organizations.
/// `src_org` / `dst_org` may be kInvalidOrg for unallocated space.
[[nodiscard]] bool PerimeterBlocks(const AllocationRegistry& registry,
                                   OrgId src_org, OrgId dst_org);

}  // namespace hotspots::topology
