// Organizations and address allocations.
//
// The Table-2 experiment needs a registry mapping address space to the
// organization that holds it (Fortune-100 enterprise vs broadband ISP vs
// academic), because filtering policy in this library is an *organizational*
// property: enterprises firewall their perimeter, broadband providers do
// not.  The paper built this map from ARIN; we build an equivalent synthetic
// registry.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/interval_set.h"
#include "net/ipv4.h"
#include "net/prefix.h"

namespace hotspots::topology {

/// Opaque organization handle; kInvalidOrg means "no organization".
using OrgId = std::int32_t;
inline constexpr OrgId kInvalidOrg = -1;

/// Broad organizational categories with different default policies.
enum class OrgKind {
  kEnterprise,    ///< Fortune-100-style: egress+ingress perimeter firewall.
  kBroadbandIsp,  ///< Customer space, effectively unfiltered.
  kAcademic,      ///< Large, mostly open network.
  kOther,
};

[[nodiscard]] std::string_view ToString(OrgKind kind);

/// One organization and its address holdings.
struct Organization {
  OrgId id = kInvalidOrg;
  std::string name;
  OrgKind kind = OrgKind::kOther;
  std::vector<net::Prefix> prefixes;
  /// True if a perimeter firewall drops worm probes crossing the boundary
  /// (either direction).  Probes between two hosts of the same organization
  /// are never affected.
  bool perimeter_filtered = false;

  /// Total addresses held.
  [[nodiscard]] std::uint64_t TotalAddresses() const;
};

/// Registry of organizations with O(log n) address→org lookup.
class AllocationRegistry {
 public:
  /// Registers an organization; returns its id.  Prefixes of different
  /// organizations must not overlap (enforced by Build()).
  OrgId AddOrg(std::string name, OrgKind kind, std::vector<net::Prefix> prefixes,
               bool perimeter_filtered);

  /// Finalizes the registry for lookups.  Throws on overlapping holdings.
  void Build();

  /// The organization holding `address`, or kInvalidOrg.
  [[nodiscard]] OrgId OrgOf(net::Ipv4 address) const;

  [[nodiscard]] const Organization& Get(OrgId id) const;
  [[nodiscard]] const std::vector<Organization>& orgs() const { return orgs_; }
  [[nodiscard]] std::size_t size() const { return orgs_.size(); }

 private:
  std::vector<Organization> orgs_;
  net::IntervalMap<OrgId> by_address_;
  bool built_ = false;
};

}  // namespace hotspots::topology
