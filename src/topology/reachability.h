// Composite end-to-end reachability (the environmental-factor pipeline).
//
// The paper defines environmental factors as everything along the path
// between an infected host and its target: routing & filtering policy,
// failures/misconfiguration, and topology (NAT/private space).  This module
// composes those into a single `Deliverable()` decision evaluated for every
// probe the simulator emits:
//
//   non-targetable dst (0/8, loopback, multicast, class E)  → drop
//   NAT routing (private dst outside the source's site)     → drop
//   upstream ingress ACL covering dst                       → drop
//   perimeter firewall crossing (enterprise boundary)       → drop
//   random network failure (loss_rate)                      → drop
//   otherwise                                               → deliver
//
// The hot probe loop calls Decide() billions of times per Section-5 run, so
// the destination-only factors are folded into a 65,536-entry per-/16
// classification table at construction: every special range is /16-aligned,
// and a /16 either fully inside or fully outside the ingress ACLs resolves
// with a single indexed load.  Only /16s *partially* covered by an ACL fall
// through to DecideReference(), the original factor-by-factor chain, which
// is retained as the differential-test oracle.
#pragma once

#include <array>
#include <cstdint>

#include "net/special_ranges.h"
#include "prng/xoshiro.h"
#include "topology/filtering.h"
#include "topology/nat.h"
#include "topology/org.h"

namespace hotspots::topology {

/// Everything the network needs to know about a probe.
struct Probe {
  net::Ipv4 src;
  net::Ipv4 dst;
  SiteId src_site = kPublicSite;
  OrgId src_org = kInvalidOrg;
};

/// Why a probe did or did not arrive.  Kept as an enum so experiments can
/// attribute drops to individual environmental factors.
enum class Delivery : std::uint8_t {
  kDelivered,
  kNonTargetable,     ///< Destination can never be a unicast target.
  kNatUnroutable,     ///< Private destination not inside the source's site.
  kIngressFiltered,   ///< Upstream ACL covering the destination.
  kPerimeterFiltered, ///< Enterprise firewall on either side.
  kNetworkLoss,       ///< Random failure/misconfiguration/congestion.
};

[[nodiscard]] std::string_view ToString(Delivery delivery);

/// The composed reachability function for one threat.
class Reachability {
 public:
  /// All dependencies are optional: pass nullptr to disable a factor.
  /// `loss_rate` models failures and misconfiguration as Bernoulli drops.
  /// A non-empty ingress ACL set should be Build()-t before this
  /// constructor runs; if it is not, every public /16 stays on the slow
  /// path, which re-raises the original "Build() not called" error on the
  /// first Decide().
  Reachability(const AllocationRegistry* orgs, const NatDirectory* nats,
               const IngressAclSet* ingress_acls, double loss_rate = 0.0);

  /// Full decision with drop attribution.  Table-driven: destination-only
  /// factors cost one indexed load; bit-identical to DecideReference().
  [[nodiscard]] Delivery Decide(const Probe& probe,
                                prng::Xoshiro256& rng) const {
    switch (static_cast<Class16>(class16_[probe.dst.value() >> 16])) {
      case Class16::kNonTargetable:
        return Delivery::kNonTargetable;
      case Class16::kIngressBlocked:
        return Delivery::kIngressFiltered;
      case Class16::kPrivate:
        // Private destinations only route inside the source's own NAT
        // site; intra-site delivery bypasses all Internet-path factors.
        if (nats_ == nullptr || !nats_->Routable(probe.src_site, probe.dst)) {
          return Delivery::kNatUnroutable;
        }
        return Delivery::kDelivered;
      case Class16::kSlowPath:
        return DecideReference(probe, rng);
      case Class16::kCleanPublic:
        break;
    }
    return DecidePublicTail(probe, rng);
  }

  /// The original factor-by-factor decision chain.  Semantically identical
  /// to Decide() (enforced by a differential test); kept as the oracle and
  /// as the slow path for partially-ACL-covered /16s.
  [[nodiscard]] Delivery DecideReference(const Probe& probe,
                                         prng::Xoshiro256& rng) const;

  /// Convenience: Decide() == kDelivered.
  [[nodiscard]] bool Deliverable(const Probe& probe,
                                 prng::Xoshiro256& rng) const {
    return Decide(probe, rng) == Delivery::kDelivered;
  }

  /// The organization holding `address` (kInvalidOrg when the registry is
  /// absent or the space unallocated).  Exposed so callers can precompute
  /// src_org once per infected host instead of per probe.
  [[nodiscard]] OrgId OrgOf(net::Ipv4 address) const {
    return orgs_ == nullptr ? kInvalidOrg : orgs_->OrgOf(address);
  }

  [[nodiscard]] double loss_rate() const { return loss_rate_; }

 private:
  /// Per-/16 destination classification, precomputed at construction.
  enum class Class16 : std::uint8_t {
    kCleanPublic,    ///< Public, targetable, no ACL: only org/loss remain.
    kNonTargetable,  ///< Whole /16 can never be a unicast target.
    kPrivate,        ///< Whole /16 is RFC 1918 space: NAT routing decides.
    kIngressBlocked, ///< Whole /16 behind an ingress ACL.
    kSlowPath,       ///< Mixed (partial ACL): defer to DecideReference().
  };

  void BuildClass16Table();

  /// Source-dependent factors for a clean public destination: perimeter
  /// firewalls, then random loss.
  [[nodiscard]] Delivery DecidePublicTail(const Probe& probe,
                                          prng::Xoshiro256& rng) const;

  const AllocationRegistry* orgs_;
  const NatDirectory* nats_;
  const IngressAclSet* ingress_acls_;
  double loss_rate_;
  std::array<std::uint8_t, 65536> class16_{};
};

}  // namespace hotspots::topology
