// Composite end-to-end reachability (the environmental-factor pipeline).
//
// The paper defines environmental factors as everything along the path
// between an infected host and its target: routing & filtering policy,
// failures/misconfiguration, and topology (NAT/private space).  This module
// composes those into a single `Deliverable()` decision evaluated for every
// probe the simulator emits:
//
//   non-targetable dst (0/8, loopback, multicast, class E)  → drop
//   NAT routing (private dst outside the source's site)     → drop
//   upstream ingress ACL covering dst                       → drop
//   perimeter firewall crossing (enterprise boundary)       → drop
//   random network failure (loss_rate)                      → drop
//   otherwise                                               → deliver
//
// The struct is deliberately cheap: the hot probe loop calls this billions
// of times in the Section-5 simulations.
#pragma once

#include <cstdint>

#include "net/special_ranges.h"
#include "prng/xoshiro.h"
#include "topology/filtering.h"
#include "topology/nat.h"
#include "topology/org.h"

namespace hotspots::topology {

/// Everything the network needs to know about a probe.
struct Probe {
  net::Ipv4 src;
  net::Ipv4 dst;
  SiteId src_site = kPublicSite;
  OrgId src_org = kInvalidOrg;
};

/// Why a probe did or did not arrive.  Kept as an enum so experiments can
/// attribute drops to individual environmental factors.
enum class Delivery : std::uint8_t {
  kDelivered,
  kNonTargetable,     ///< Destination can never be a unicast target.
  kNatUnroutable,     ///< Private destination not inside the source's site.
  kIngressFiltered,   ///< Upstream ACL covering the destination.
  kPerimeterFiltered, ///< Enterprise firewall on either side.
  kNetworkLoss,       ///< Random failure/misconfiguration/congestion.
};

[[nodiscard]] std::string_view ToString(Delivery delivery);

/// The composed reachability function for one threat.
class Reachability {
 public:
  /// All dependencies are optional: pass nullptr to disable a factor.
  /// `loss_rate` models failures and misconfiguration as Bernoulli drops.
  Reachability(const AllocationRegistry* orgs, const NatDirectory* nats,
               const IngressAclSet* ingress_acls, double loss_rate = 0.0);

  /// Full decision with drop attribution.
  [[nodiscard]] Delivery Decide(const Probe& probe,
                                prng::Xoshiro256& rng) const;

  /// Convenience: Decide() == kDelivered.
  [[nodiscard]] bool Deliverable(const Probe& probe,
                                 prng::Xoshiro256& rng) const {
    return Decide(probe, rng) == Delivery::kDelivered;
  }

  /// The organization holding `address` (kInvalidOrg when the registry is
  /// absent or the space unallocated).  Exposed so callers can precompute
  /// src_org once per infected host instead of per probe.
  [[nodiscard]] OrgId OrgOf(net::Ipv4 address) const {
    return orgs_ == nullptr ? kInvalidOrg : orgs_->OrgOf(address);
  }

  [[nodiscard]] double loss_rate() const { return loss_rate_; }

 private:
  const AllocationRegistry* orgs_;
  const NatDirectory* nats_;
  const IngressAclSet* ingress_acls_;
  double loss_rate_;
};

}  // namespace hotspots::topology
