#include "topology/filtering.h"

namespace hotspots::topology {

bool PerimeterBlocks(const AllocationRegistry& registry, OrgId src_org,
                     OrgId dst_org) {
  if (src_org == dst_org) return false;  // Intra-org traffic never filtered.
  if (src_org != kInvalidOrg && registry.Get(src_org).perimeter_filtered) {
    return true;  // Egress filter at the source organization.
  }
  if (dst_org != kInvalidOrg && registry.Get(dst_org).perimeter_filtered) {
    return true;  // Ingress filter at the destination organization.
  }
  return false;
}

}  // namespace hotspots::topology
