// NAT sites and private address space.
//
// Section 4.3.1 of the paper shows that a CodeRedII host behind a NAT — a
// host whose *own* address is 192.168.x.y — aims its local-preference
// scanning at 192.0.0.0/8, and every probe outside 192.168.0.0/16 leaks to
// the public Internet, producing the M-block hotspot.  Section 5.3 then puts
// 15 % of the vulnerable population behind such NATs and measures the effect
// on detection.
//
// A `NatSite` is one private network: it owns a private prefix (usually
// 192.168.0.0/16) and a set of member hosts.  Inside a site, private
// addresses route normally; probes from a NATed host to public addresses
// leak out; probes *to* private addresses from outside any site are
// unroutable and die.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "net/prefix.h"
#include "net/special_ranges.h"

namespace hotspots::topology {

/// Opaque NAT site handle; kPublicSite means "not behind a NAT".
using SiteId = std::int32_t;
inline constexpr SiteId kPublicSite = -1;

/// One private network behind a NAT device.
struct NatSite {
  SiteId id = kPublicSite;
  net::Prefix private_prefix{net::kPrivate192};
  /// The NAT device's public side: outbound probes from the site appear to
  /// come from this address.
  net::Ipv4 public_address;
};

/// Registry of NAT sites.
class NatDirectory {
 public:
  /// Creates a site using `private_prefix` (must be RFC 1918 space) whose
  /// outbound traffic is translated to `public_address`.
  SiteId AddSite(net::Prefix private_prefix = net::kPrivate192,
                 net::Ipv4 public_address = net::Ipv4{});

  [[nodiscard]] const NatSite& Get(SiteId id) const;
  [[nodiscard]] std::size_t size() const { return sites_.size(); }

  /// Routing decision for a probe from a host in `src_site` (kPublicSite if
  /// public) to destination `dst`:
  ///   * dst private, src in a site whose prefix covers dst → delivered
  ///     inside that site (returns true; the caller resolves which internal
  ///     host owns the address).
  ///   * dst private otherwise → unroutable.
  ///   * dst public → routable (the NAT translates outbound traffic).
  [[nodiscard]] bool Routable(SiteId src_site, net::Ipv4 dst) const {
    if (!net::IsPrivate(dst)) return true;
    if (src_site == kPublicSite) return false;
    return Get(src_site).private_prefix.Contains(dst);
  }

 private:
  std::vector<NatSite> sites_;
};

}  // namespace hotspots::topology
