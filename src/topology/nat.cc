#include "topology/nat.h"

namespace hotspots::topology {

SiteId NatDirectory::AddSite(net::Prefix private_prefix,
                             net::Ipv4 public_address) {
  if (!net::kPrivate10.Contains(private_prefix) &&
      !net::kPrivate172.Contains(private_prefix) &&
      !net::kPrivate192.Contains(private_prefix)) {
    throw std::invalid_argument(
        "NatDirectory: site prefix must be RFC 1918 private space");
  }
  const SiteId id = static_cast<SiteId>(sites_.size());
  sites_.push_back(NatSite{id, private_prefix, public_address});
  return id;
}

const NatSite& NatDirectory::Get(SiteId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= sites_.size()) {
    throw std::out_of_range("NatDirectory: bad SiteId");
  }
  return sites_[static_cast<std::size_t>(id)];
}

}  // namespace hotspots::topology
