#include "topology/reachability.h"

#include <stdexcept>

namespace hotspots::topology {

std::string_view ToString(Delivery delivery) {
  switch (delivery) {
    case Delivery::kDelivered: return "delivered";
    case Delivery::kNonTargetable: return "non-targetable";
    case Delivery::kNatUnroutable: return "nat-unroutable";
    case Delivery::kIngressFiltered: return "ingress-filtered";
    case Delivery::kPerimeterFiltered: return "perimeter-filtered";
    case Delivery::kNetworkLoss: return "network-loss";
  }
  return "unknown";
}

Reachability::Reachability(const AllocationRegistry* orgs,
                           const NatDirectory* nats,
                           const IngressAclSet* ingress_acls, double loss_rate)
    : orgs_(orgs), nats_(nats), ingress_acls_(ingress_acls),
      loss_rate_(loss_rate) {
  if (loss_rate < 0.0 || loss_rate >= 1.0) {
    throw std::invalid_argument("Reachability: loss_rate outside [0,1)");
  }
}

Delivery Reachability::Decide(const Probe& probe, prng::Xoshiro256& rng) const {
  if (net::IsNonTargetable(probe.dst)) return Delivery::kNonTargetable;

  if (net::IsPrivate(probe.dst)) {
    // Private destinations only route inside the source's own NAT site.
    if (nats_ == nullptr || !nats_->Routable(probe.src_site, probe.dst)) {
      return Delivery::kNatUnroutable;
    }
    // Intra-site delivery bypasses all Internet-path factors below.
    return Delivery::kDelivered;
  }

  if (ingress_acls_ != nullptr && ingress_acls_->Blocks(probe.dst)) {
    return Delivery::kIngressFiltered;
  }

  if (orgs_ != nullptr) {
    const OrgId dst_org = orgs_->OrgOf(probe.dst);
    if (PerimeterBlocks(*orgs_, probe.src_org, dst_org)) {
      return Delivery::kPerimeterFiltered;
    }
  }

  if (loss_rate_ > 0.0 && rng.Bernoulli(loss_rate_)) {
    return Delivery::kNetworkLoss;
  }
  return Delivery::kDelivered;
}

}  // namespace hotspots::topology
