#include "topology/reachability.h"

#include <stdexcept>

namespace hotspots::topology {

std::string_view ToString(Delivery delivery) {
  switch (delivery) {
    case Delivery::kDelivered: return "delivered";
    case Delivery::kNonTargetable: return "non-targetable";
    case Delivery::kNatUnroutable: return "nat-unroutable";
    case Delivery::kIngressFiltered: return "ingress-filtered";
    case Delivery::kPerimeterFiltered: return "perimeter-filtered";
    case Delivery::kNetworkLoss: return "network-loss";
  }
  return "unknown";
}

Reachability::Reachability(const AllocationRegistry* orgs,
                           const NatDirectory* nats,
                           const IngressAclSet* ingress_acls, double loss_rate)
    : orgs_(orgs), nats_(nats), ingress_acls_(ingress_acls),
      loss_rate_(loss_rate) {
  if (loss_rate < 0.0 || loss_rate >= 1.0) {
    throw std::invalid_argument("Reachability: loss_rate outside [0,1)");
  }
  BuildClass16Table();
}

void Reachability::BuildClass16Table() {
  const bool have_acls = ingress_acls_ != nullptr && !ingress_acls_->empty();
  const bool acls_built = have_acls && ingress_acls_->built();
  for (std::uint32_t w = 0; w < 65536; ++w) {
    const net::Ipv4 first{w << 16};
    Class16 cls = Class16::kCleanPublic;
    // Every special range is a /16-aligned prefix (length ≤ 16), so the
    // first address of a /16 classifies the whole block exactly.
    if (net::IsNonTargetable(first)) {
      cls = Class16::kNonTargetable;
    } else if (net::IsPrivate(first)) {
      cls = Class16::kPrivate;
    } else if (have_acls) {
      if (!acls_built) {
        // An un-built non-empty ACL set cannot be classified; keep the
        // original error timing by deferring to the reference chain.
        cls = Class16::kSlowPath;
      } else {
        switch (ingress_acls_->CoverageOf(
            net::Interval{w << 16, (w << 16) | 0xFFFFu})) {
          case net::Coverage::kFull: cls = Class16::kIngressBlocked; break;
          case net::Coverage::kPartial: cls = Class16::kSlowPath; break;
          case net::Coverage::kNone: break;
        }
      }
    }
    class16_[w] = static_cast<std::uint8_t>(cls);
  }
}

Delivery Reachability::DecidePublicTail(const Probe& probe,
                                        prng::Xoshiro256& rng) const {
  if (orgs_ != nullptr) {
    const OrgId dst_org = orgs_->OrgOf(probe.dst);
    if (PerimeterBlocks(*orgs_, probe.src_org, dst_org)) {
      return Delivery::kPerimeterFiltered;
    }
  }
  if (loss_rate_ > 0.0 && rng.Bernoulli(loss_rate_)) {
    return Delivery::kNetworkLoss;
  }
  return Delivery::kDelivered;
}

Delivery Reachability::DecideReference(const Probe& probe,
                                       prng::Xoshiro256& rng) const {
  if (net::IsNonTargetable(probe.dst)) return Delivery::kNonTargetable;

  if (net::IsPrivate(probe.dst)) {
    // Private destinations only route inside the source's own NAT site.
    if (nats_ == nullptr || !nats_->Routable(probe.src_site, probe.dst)) {
      return Delivery::kNatUnroutable;
    }
    // Intra-site delivery bypasses all Internet-path factors below.
    return Delivery::kDelivered;
  }

  if (ingress_acls_ != nullptr && ingress_acls_->Blocks(probe.dst)) {
    return Delivery::kIngressFiltered;
  }

  return DecidePublicTail(probe, rng);
}

}  // namespace hotspots::topology
