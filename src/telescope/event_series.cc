#include "telescope/event_series.h"

#include <algorithm>
#include <cmath>

namespace hotspots::telescope {

EventSeries::EventSeries(double bucket_seconds, double horizon_seconds)
    : bucket_seconds_(bucket_seconds) {
  if (bucket_seconds <= 0.0 || horizon_seconds <= 0.0 ||
      horizon_seconds < bucket_seconds) {
    throw std::invalid_argument("EventSeries: bad bucket/horizon");
  }
  const auto count =
      static_cast<std::size_t>(std::ceil(horizon_seconds / bucket_seconds));
  buckets_.assign(count, 0);
}

void EventSeries::Record(double t) {
  if (t < 0.0) throw std::invalid_argument("EventSeries: negative time");
  auto index = static_cast<std::size_t>(t / bucket_seconds_);
  index = std::min(index, buckets_.size() - 1);
  ++buckets_[index];
  ++total_;
}

BurstReport EventSeries::Summarize() const {
  BurstReport report;
  const double n = static_cast<double>(buckets_.size());
  report.mean_rate = static_cast<double>(total_) / n;
  std::size_t silent = 0;
  double variance = 0.0;
  for (const std::uint64_t count : buckets_) {
    report.peak_rate =
        std::max(report.peak_rate, static_cast<double>(count));
    if (count == 0) ++silent;
    const double diff = static_cast<double>(count) - report.mean_rate;
    variance += diff * diff;
  }
  variance /= n;
  report.peak_to_mean =
      report.mean_rate > 0 ? report.peak_rate / report.mean_rate : 0.0;
  report.silent_fraction = static_cast<double>(silent) / n;
  report.dispersion = report.mean_rate > 0 ? variance / report.mean_rate : 0.0;
  return report;
}

void EventSeries::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  total_ = 0;
}

}  // namespace hotspots::telescope
