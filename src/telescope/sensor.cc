#include "telescope/sensor.h"

#include <algorithm>
#include <stdexcept>

namespace hotspots::telescope {

SensorBlock::SensorBlock(std::string label, net::Prefix block,
                         SensorOptions options)
    : label_(std::move(label)), block_(block), options_(options),
      first_slash24_(block.first().Slash24()) {
  if (options_.track_per_slash24) {
    // One dense cell per /24 the block touches (a sub-/24 block still gets
    // one cell).  Sized once here; never reallocated.
    per_slash24_.resize(block.last().Slash24() - first_slash24_ + 1);
  }
}

void SensorBlock::Record(double time, net::Ipv4 src, net::Ipv4 dst,
                         bool identified) {
  if (!identified) {
    // The packet reached the darknet but the threat cannot be named: it
    // only shows up as anonymous background radiation.
    ++unidentified_probes_;
    return;
  }
  ++probes_;
  if (options_.alert_threshold > 0 && !alert_time_ &&
      probes_ >= options_.alert_threshold) {
    alert_time_ = time;
  }
  if (options_.track_unique_sources) sources_.Insert(src.value());
  if (options_.track_per_slash24) {
    PerSlash24& cell = per_slash24_[dst.Slash24() - first_slash24_];
    ++cell.probes;
    cell.sources.Insert(src.value());
  }
}

bool SensorBlock::ApplyStepDelta(std::uint64_t identified,
                                 std::uint64_t unidentified,
                                 std::uint64_t outage_missed, double time) {
  unidentified_probes_ += unidentified;
  outage_missed_probes_ += outage_missed;
  if (identified == 0) return false;
  probes_ += identified;
  if (options_.alert_threshold > 0 && !alert_time_ &&
      probes_ >= options_.alert_threshold) {
    alert_time_ = time;
    return true;
  }
  return false;
}

void SensorBlock::AbsorbSources(const sim::FlatSet<std::uint32_t>& sources) {
  if (!options_.track_unique_sources) return;
  sources.ForEach([this](std::uint32_t src) { sources_.Insert(src); });
}

void SensorBlock::AbsorbSlash24Cell(
    std::size_t cell, std::uint64_t probes,
    const sim::FlatSet<std::uint32_t>& sources) {
  if (!options_.track_per_slash24) return;
  PerSlash24& target = per_slash24_[cell];
  target.probes += probes;
  sources.ForEach(
      [&target](std::uint32_t src) { target.sources.Insert(src); });
}

bool SensorBlock::InOutageAt(double time) const {
  // First window whose upper bound is still ahead of `time`; inside it iff
  // the window has already started.
  const auto it = std::upper_bound(
      outages_.begin(), outages_.end(), time,
      [](double t, const std::pair<double, double>& window) {
        return t < window.second;
      });
  return it != outages_.end() && time >= it->first;
}

std::vector<Slash24Row> SensorBlock::Histogram() const {
  std::vector<Slash24Row> rows;
  if (!options_.track_per_slash24) {
    // No per-/24 tracking: still emit the all-zero x-axis rows so callers
    // get a complete (if empty) histogram, as before.
    const std::uint32_t count = block_.last().Slash24() - first_slash24_ + 1;
    rows.resize(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      rows[i].slash24 = first_slash24_ + i;
    }
    return rows;
  }
  rows.reserve(per_slash24_.size());
  for (std::size_t i = 0; i < per_slash24_.size(); ++i) {
    Slash24Row row;
    row.slash24 = first_slash24_ + static_cast<std::uint32_t>(i);
    row.stats.probes = per_slash24_[i].probes;
    row.stats.unique_sources =
        static_cast<std::uint32_t>(per_slash24_[i].sources.size());
    rows.push_back(row);
  }
  return rows;
}

void SensorBlock::SetOutageWindows(
    std::vector<std::pair<double, double>> windows) {
  // Drop empty/inverted windows, then sort and merge overlaps so InOutage's
  // monotone cursor sees disjoint ascending intervals.
  std::erase_if(windows,
                [](const auto& window) { return !(window.second > window.first); });
  std::sort(windows.begin(), windows.end());
  outages_.clear();
  for (const auto& window : windows) {
    if (!outages_.empty() && window.first <= outages_.back().second) {
      outages_.back().second = std::max(outages_.back().second, window.second);
    } else {
      outages_.push_back(window);
    }
  }
  outage_cursor_ = 0;
  outage_missed_probes_ = 0;
}

double SensorBlock::DownSeconds(double horizon) const {
  double total = 0.0;
  for (const auto& [down, up] : outages_) {
    if (horizon > 0.0) {
      total += std::max(0.0, std::min(up, horizon) - std::min(down, horizon));
    } else {
      total += up - down;
    }
  }
  return total;
}

void SensorBlock::Reset() {
  probes_ = 0;
  unidentified_probes_ = 0;
  // Outage windows stay (they are schedule state); the cursor and the
  // missed tally are per-trial.
  outage_cursor_ = 0;
  outage_missed_probes_ = 0;
  alert_time_.reset();
  sources_.Clear();
  for (PerSlash24& cell : per_slash24_) {
    cell.probes = 0;
    cell.sources.Clear();
  }
}

}  // namespace hotspots::telescope
