#include "telescope/sensor.h"

#include <algorithm>
#include <stdexcept>

namespace hotspots::telescope {

SensorBlock::SensorBlock(std::string label, net::Prefix block,
                         SensorOptions options)
    : label_(std::move(label)), block_(block), options_(options) {}

void SensorBlock::Record(double time, net::Ipv4 src, net::Ipv4 dst,
                         bool identified) {
  if (!identified) {
    // The packet reached the darknet but the threat cannot be named: it
    // only shows up as anonymous background radiation.
    ++unidentified_probes_;
    return;
  }
  ++probes_;
  if (options_.alert_threshold > 0 && !alert_time_ &&
      probes_ >= options_.alert_threshold) {
    alert_time_ = time;
  }
  if (options_.track_unique_sources) sources_.insert(src.value());
  if (options_.track_per_slash24) {
    PerSlash24& cell = per_slash24_[dst.Slash24()];
    ++cell.probes;
    cell.sources.insert(src.value());
  }
}

std::vector<Slash24Row> SensorBlock::Histogram() const {
  std::vector<Slash24Row> rows;
  const std::uint32_t first = block_.first().Slash24();
  const std::uint32_t last = block_.last().Slash24();
  rows.reserve(last - first + 1);
  for (std::uint32_t s24 = first; s24 <= last; ++s24) {
    Slash24Row row;
    row.slash24 = s24;
    const auto it = per_slash24_.find(s24);
    if (it != per_slash24_.end()) {
      row.stats.probes = it->second.probes;
      row.stats.unique_sources =
          static_cast<std::uint32_t>(it->second.sources.size());
    }
    rows.push_back(row);
    if (s24 == last) break;  // Guard against /0-style wrap (s24 overflow).
  }
  return rows;
}

void SensorBlock::Reset() {
  probes_ = 0;
  unidentified_probes_ = 0;
  alert_time_.reset();
  sources_.clear();
  per_slash24_.clear();
}

}  // namespace hotspots::telescope
