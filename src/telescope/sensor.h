// A darknet sensor block.
//
// Darknets are blocks of unused address space: any arriving packet is
// misconfiguration, backscatter, or scanning (Section 4.1).  A SensorBlock
// records, for the traffic delivered into its prefix: total probes, the set
// of unique source addresses, per-destination-/24 probe counts and unique
// source counts (the paper's Figures 1, 2 and 4 are exactly these
// histograms), and the time at which the probe count crossed the alert
// threshold (Section 5's "alert after observing n worm payloads").
//
// Record() is on the per-probe hot path, so every structure is flat and
// allocation-free at steady state: unique sources live in open-addressing
// FlatSets, and the per-/24 statistics are a dense array indexed by the
// destination's offset within the block (the block size is fixed at
// construction).  Reset() keeps all capacity so trial loops reuse storage.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "net/ipv4.h"
#include "net/prefix.h"
#include "sim/flat_table.h"

namespace hotspots::telescope {

/// What a sensor keeps track of.  Large fleets (the 10,000-sensor
/// experiments) disable the per-source and per-/24 structures to stay lean.
struct SensorOptions {
  bool track_unique_sources = true;
  bool track_per_slash24 = true;
  /// Alert after this many observed payloads; 0 disables alerting.
  std::uint64_t alert_threshold = 0;
  /// Active sensors answer TCP SYNs with SYN-ACK to elicit the first data
  /// payload (the IMS design, Section 4.1).  Passive sensors still *count*
  /// probes of handshake-requiring (TCP) threats but can never identify
  /// them — so those probes don't feed the histograms, unique-source sets,
  /// or payload-based alerting.
  bool active_responder = true;
};

/// Per-destination-/24 statistics.
struct Slash24Stats {
  std::uint64_t probes = 0;
  std::uint32_t unique_sources = 0;
};

/// A labelled row of a per-/24 histogram, for report printing.
struct Slash24Row {
  std::uint32_t slash24 = 0;  ///< Global /24 index (address >> 8).
  Slash24Stats stats;
};

class SensorBlock {
 public:
  SensorBlock(std::string label, net::Prefix block, SensorOptions options);

  /// Records one delivered probe (dst must be inside block()).
  /// `identified` is false when the threat required a handshake and this
  /// sensor is passive: the packet is tallied but carries no payload, so it
  /// contributes nothing to identification-based statistics.
  void Record(double time, net::Ipv4 src, net::Ipv4 dst,
              bool identified = true);

  // -- Two-phase (sharded) fold support ----------------------------------
  // Worker threads accumulate per-shard counter deltas and source sets
  // against this sensor without touching it; the deltas are applied here,
  // serially, in shard order.  Because every probe of one engine step
  // carries the step's timestamp, applying a whole step's count delta at
  // once crosses the alert threshold at exactly the time the serial
  // per-probe path would have.

  /// Applies one shard's step deltas.  Returns true when this delta
  /// crossed the alert threshold (alert_time_ becomes `time`).
  bool ApplyStepDelta(std::uint64_t identified, std::uint64_t unidentified,
                      std::uint64_t outage_missed, double time);

  /// Unions a shard's unique-source partial into the sensor (end of run).
  void AbsorbSources(const sim::FlatSet<std::uint32_t>& sources);

  /// Folds a shard's per-/24 cell partial into the sensor (end of run).
  void AbsorbSlash24Cell(std::size_t cell, std::uint64_t probes,
                         const sim::FlatSet<std::uint32_t>& sources);

  /// Dense per-/24 cell count (0 when track_per_slash24 is off).
  [[nodiscard]] std::size_t Slash24CellCount() const {
    return per_slash24_.size();
  }
  /// Global /24 index of the block's first address; a destination's cell
  /// is `dst.Slash24() - first_slash24()`.
  [[nodiscard]] std::uint32_t first_slash24() const { return first_slash24_; }

  /// Probes that arrived but could not be identified (passive sensor vs a
  /// TCP threat).
  [[nodiscard]] std::uint64_t unidentified_probes() const {
    return unidentified_probes_;
  }

  [[nodiscard]] const std::string& label() const { return label_; }
  [[nodiscard]] const net::Prefix& block() const { return block_; }
  [[nodiscard]] const SensorOptions& options() const { return options_; }
  [[nodiscard]] std::uint64_t probe_count() const { return probes_; }

  /// Number of distinct sources seen (requires track_unique_sources).
  [[nodiscard]] std::size_t UniqueSourceCount() const {
    return sources_.size();
  }

  /// Time the alert threshold was crossed, if it was.
  [[nodiscard]] std::optional<double> alert_time() const { return alert_time_; }
  [[nodiscard]] bool alerted() const { return alert_time_.has_value(); }

  /// Per-/24 histogram rows in ascending /24 order, including zero rows for
  /// /24s of the block that saw nothing (so plots have a complete x-axis).
  [[nodiscard]] std::vector<Slash24Row> Histogram() const;

  // -- Outage windows (fault injection; see src/fault) -------------------
  /// Replaces the sensor's outage windows with [down, up) intervals,
  /// normalized here so InOutage()'s monotone cursor only ever sees
  /// disjoint ascending windows: zero-length ([t,t)) and inverted windows
  /// are dropped, and overlapping *or exactly abutting* windows ([a,b),
  /// [b,c)) merge into one — a probe at the seam t==b is down, with no
  /// one-probe up-flicker between the halves.  While down, the sensor
  /// records nothing — the block has been withdrawn BGP-flap-style.
  /// Windows survive Reset() (they belong to the fault schedule, not to
  /// per-trial state).
  void SetOutageWindows(std::vector<std::pair<double, double>> windows);
  [[nodiscard]] bool has_outages() const { return !outages_.empty(); }

  /// True when `time` falls inside an outage window.  Advances a monotone
  /// cursor, so `time` must be non-decreasing between Reset()s — exactly
  /// the probe-stream contract.  O(1) amortized.
  [[nodiscard]] bool InOutage(double time) {
    while (outage_cursor_ < outages_.size() &&
           time >= outages_[outage_cursor_].second) {
      ++outage_cursor_;
    }
    return outage_cursor_ < outages_.size() &&
           time >= outages_[outage_cursor_].first;
  }

  /// Cursor-free InOutage() for concurrent readers (the sharded pre-fold
  /// queries from worker threads): binary search over the merged windows,
  /// identical verdicts to InOutage() for any monotone probe stream.
  [[nodiscard]] bool InOutageAt(double time) const;

  /// Tallies one probe that arrived while the sensor was down.
  void TallyOutageMiss() { ++outage_missed_probes_; }
  [[nodiscard]] std::uint64_t outage_missed_probes() const {
    return outage_missed_probes_;
  }

  /// Scheduled downtime overlapping [0, horizon] ([0, ∞) when horizon ≤ 0).
  [[nodiscard]] double DownSeconds(double horizon = 0.0) const;

  /// Resets all counters (between experiment phases).  Capacity is kept, so
  /// resetting between trials is allocation-free.
  void Reset();

 private:
  std::string label_;
  net::Prefix block_;
  SensorOptions options_;
  /// Global /24 index of the block's first address; per-/24 cells are
  /// indexed by `dst.Slash24() - first_slash24_`.
  std::uint32_t first_slash24_ = 0;

  std::uint64_t probes_ = 0;
  std::uint64_t unidentified_probes_ = 0;
  /// Sorted, merged [down, up) outage windows plus the monotone cursor of
  /// the current/next window and the count of probes lost to downtime.
  std::vector<std::pair<double, double>> outages_;
  std::size_t outage_cursor_ = 0;
  std::uint64_t outage_missed_probes_ = 0;
  std::optional<double> alert_time_;
  sim::FlatSet<std::uint32_t> sources_;
  // Dense per-/24 statistics (Figures 1/2/4 plot probes *and* unique
  // sources per destination /24, so each cell carries its own source set).
  struct PerSlash24 {
    std::uint64_t probes = 0;
    sim::FlatSet<std::uint32_t> sources;
  };
  std::vector<PerSlash24> per_slash24_;
};

}  // namespace hotspots::telescope
