// Temporal observation series — "temporal characteristics of traffic
// patterns also differed" (Pang et al., via Section 2).
//
// Accumulates per-time-bucket event counts and summarizes burstiness, so
// experiments can compare *when* sensors see traffic, not just how much.
// Used alongside SensorBlock for the temporal side of the cross-darknet
// comparisons.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace hotspots::telescope {

/// Burstiness summary of a time series.
struct BurstReport {
  double mean_rate = 0.0;        ///< Events per bucket.
  double peak_rate = 0.0;        ///< Busiest bucket.
  double peak_to_mean = 0.0;
  /// Fraction of buckets with zero events (silence share).
  double silent_fraction = 0.0;
  /// Index of dispersion (variance/mean): 1 ≈ Poisson, ≫1 bursty.
  double dispersion = 0.0;
};

class EventSeries {
 public:
  /// `bucket_seconds` is the aggregation width; `horizon_seconds` bounds
  /// the series (events beyond it are clamped into the last bucket).
  EventSeries(double bucket_seconds, double horizon_seconds);

  /// Records one event at time `t` (seconds, ≥ 0).
  void Record(double t);

  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const {
    return buckets_;
  }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double bucket_seconds() const { return bucket_seconds_; }

  /// Burstiness statistics over the whole series.
  [[nodiscard]] BurstReport Summarize() const;

  void Reset();

 private:
  double bucket_seconds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

}  // namespace hotspots::telescope
