#include "telescope/alerting.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hotspots::telescope {

std::vector<AlertCurvePoint> AlertFractionCurve(std::vector<double> alert_times,
                                                std::size_t total_sensors,
                                                double horizon, int points) {
  if (total_sensors == 0) {
    throw std::invalid_argument("AlertFractionCurve: no sensors");
  }
  if (points < 2) throw std::invalid_argument("AlertFractionCurve: points<2");
  if (horizon <= 0) throw std::invalid_argument("AlertFractionCurve: horizon<=0");
  std::sort(alert_times.begin(), alert_times.end());

  std::vector<AlertCurvePoint> curve;
  curve.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double t =
        horizon * static_cast<double>(i) / static_cast<double>(points - 1);
    const auto alerted = static_cast<std::size_t>(
        std::upper_bound(alert_times.begin(), alert_times.end(), t) -
        alert_times.begin());
    curve.push_back(AlertCurvePoint{
        t, static_cast<double>(alerted) / static_cast<double>(total_sensors)});
  }
  return curve;
}

std::optional<double> QuorumDetectionTime(std::vector<double> alert_times,
                                          std::size_t total_sensors,
                                          double quorum_fraction) {
  if (total_sensors == 0) {
    throw std::invalid_argument("QuorumDetectionTime: no sensors");
  }
  if (quorum_fraction <= 0.0 || quorum_fraction > 1.0) {
    throw std::invalid_argument("QuorumDetectionTime: bad quorum fraction");
  }
  const auto needed = static_cast<std::size_t>(
      std::ceil(quorum_fraction * static_cast<double>(total_sensors)));
  if (needed == 0 || alert_times.size() < needed) return std::nullopt;
  std::sort(alert_times.begin(), alert_times.end());
  return alert_times[needed - 1];
}

}  // namespace hotspots::telescope
