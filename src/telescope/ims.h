// The 11 IMS-like darknet blocks.
//
// The paper's measurements come from 11 anonymized address blocks at 9
// organizations, named by size: A/23, B/24, C/24, D/20, E/21, F/22, G/25,
// H/18, I/17, M/22, Z/8.  The real base addresses were never published, so
// we place synthetic blocks with the two properties the analyses depend on:
//   * M lies inside 192.0.0.0/8 but outside 192.168.0.0/16 (the CodeRedII
//     NAT hotspot lands on it);
//   * the blocks are spread across the space and are pairwise disjoint.
// Blocks are deliberately chosen in otherwise-unpopulated space; scenario
// builders must not place vulnerable hosts inside them.
#pragma once

#include <string>
#include <vector>

#include "net/prefix.h"
#include "telescope/telescope.h"

namespace hotspots::telescope {

/// One IMS block: anonymized label + synthetic placement.
struct ImsBlock {
  std::string label;  ///< "A/23", ..., "Z/8".
  net::Prefix block;
};

/// The 11 synthetic IMS blocks, in the paper's label order.
[[nodiscard]] const std::vector<ImsBlock>& ImsBlocks();

/// Convenience: a telescope pre-loaded with the 11 IMS blocks (already
/// Build()-t).
[[nodiscard]] Telescope MakeImsTelescope(SensorOptions options = {});

}  // namespace hotspots::telescope
