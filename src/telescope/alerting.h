// Quorum / global detection analysis over sensor alert times.
//
// Section 5 evaluates distributed detection by asking, over the course of an
// outbreak, what fraction of deployed sensors have individually alerted —
// and whether a quorum-based global detector (which requires some fraction
// of sensors to agree) would ever fire.  This module turns per-sensor
// first-alert times into those curves and decisions.
#pragma once

#include <optional>
#include <vector>

namespace hotspots::telescope {

/// Fraction of `total_sensors` whose alert time is ≤ t, evaluated on a
/// uniform grid [0, horizon] with `points` samples.  `alert_times` holds
/// only the sensors that alerted.
struct AlertCurvePoint {
  double time = 0.0;
  double fraction_alerted = 0.0;
};

[[nodiscard]] std::vector<AlertCurvePoint> AlertFractionCurve(
    std::vector<double> alert_times, std::size_t total_sensors, double horizon,
    int points);

/// A quorum-based global detector: fires at the first instant at least
/// `quorum_fraction` of all sensors have alerted.  Returns the firing time,
/// or nullopt if the quorum is never reached — the paper's headline failure
/// mode for hotspot-ridden threats.
[[nodiscard]] std::optional<double> QuorumDetectionTime(
    std::vector<double> alert_times, std::size_t total_sensors,
    double quorum_fraction);

}  // namespace hotspots::telescope
