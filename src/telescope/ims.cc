#include "telescope/ims.h"

namespace hotspots::telescope {

const std::vector<ImsBlock>& ImsBlocks() {
  using net::Ipv4;
  using net::Prefix;
  static const std::vector<ImsBlock> kBlocks = {
      {"A/23", Prefix{Ipv4{24, 10, 4, 0}, 23}},
      {"B/24", Prefix{Ipv4{61, 30, 9, 0}, 24}},
      {"C/24", Prefix{Ipv4{67, 44, 200, 0}, 24}},
      {"D/20", Prefix{Ipv4{84, 16, 32, 0}, 20}},
      {"E/21", Prefix{Ipv4{131, 90, 8, 0}, 21}},
      {"F/22", Prefix{Ipv4{150, 140, 40, 0}, 22}},
      {"G/25", Prefix{Ipv4{166, 77, 5, 0}, 25}},
      {"H/18", Prefix{Ipv4{198, 51, 64, 0}, 18}},
      {"I/17", Prefix{Ipv4{205, 13, 128, 0}, 17}},
      // Inside 192/8 but outside 192.168/16: the CodeRedII NAT hotspot
      // (Section 4.3.1) lands here.
      {"M/22", Prefix{Ipv4{192, 88, 16, 0}, 22}},
      {"Z/8", Prefix{Ipv4{96, 0, 0, 0}, 8}},
  };
  return kBlocks;
}

Telescope MakeImsTelescope(SensorOptions options) {
  Telescope telescope{options};
  for (const ImsBlock& ims : ImsBlocks()) {
    telescope.AddSensor(ims.label, ims.block);
  }
  telescope.Build();
  return telescope;
}

}  // namespace hotspots::telescope
