#include "telescope/telescope.h"

#include <stdexcept>

namespace hotspots::telescope {

int Telescope::AddSensor(std::string label, net::Prefix block) {
  return AddSensor(std::move(label), block, default_options_);
}

int Telescope::AddSensor(std::string label, net::Prefix block,
                         SensorOptions options) {
  const int index = static_cast<int>(sensors_.size());
  sensors_.push_back(
      std::make_unique<SensorBlock>(std::move(label), block, options));
  by_address_.Add(block, index);
  built_ = false;
  return index;
}

void Telescope::Build() {
  if (built_) return;          // Idempotent until the next AddSensor().
  by_address_.Build();         // Throws if blocks overlap.
  built_ = true;
}

void Telescope::RequireBuilt() const {
  if (!built_) throw std::logic_error("Telescope: Build() not called");
}

void Telescope::OnAttach() { RequireBuilt(); }

const Telescope::RegistryHandles& Telescope::Handles() {
  if (handles_.events == nullptr) {
    auto& registry = obs::Registry::Global();
    handles_.events = &registry.GetCounter("telescope.events");
    handles_.delivered = &registry.GetCounter("telescope.delivered");
    handles_.recorded = &registry.GetCounter("telescope.recorded");
    handles_.alerts = &registry.GetCounter("telescope.alerts");
    handles_.first_alert = &registry.GetGauge("telescope.first_alert_seconds");
  }
  return handles_;
}

void Telescope::OnProbe(const sim::ProbeEvent& event) {
  const RegistryHandles& handles = Handles();
  handles.events->Increment();
  if (event.delivery != topology::Delivery::kDelivered) return;
  RequireBuilt();
  handles.delivered->Increment();
  const unsigned outcome = ObserveBuilt(event.time, event.src_address,
                                        event.dst);
  if (outcome & kRecorded) handles.recorded->Increment();
  if (outcome & kNewAlert) {
    handles.alerts->Increment();
    handles.first_alert->SetMin(event.time);
  }
}

void Telescope::OnProbeBatch(std::span<const sim::ProbeEvent> events) {
  RequireBuilt();  // Once per batch; the attach check makes this redundant
                   // on the engine path, but direct callers batch too.
  // Metrics are tallied into locals and folded into the registry once per
  // batch — the per-event cost of observability here is two integer adds.
  std::uint64_t delivered = 0;
  std::uint64_t recorded = 0;
  std::uint64_t new_alerts = 0;
  double first_alert_time = 0.0;
  // Overlap the (random-access) sensor-index loads of upcoming events with
  // the processing of the current one.
  constexpr std::size_t kPrefetchAhead = 8;
  const std::size_t count = events.size();
  for (std::size_t i = 0; i < count; ++i) {
    if (i + kPrefetchAhead < count) {
      const sim::ProbeEvent& ahead = events[i + kPrefetchAhead];
      if (ahead.delivery == topology::Delivery::kDelivered) {
        by_address_.PrefetchLookup(ahead.dst);
      }
    }
    const sim::ProbeEvent& event = events[i];
    if (event.delivery != topology::Delivery::kDelivered) continue;
    ++delivered;
    const unsigned outcome = ObserveBuilt(event.time, event.src_address,
                                          event.dst);
    recorded += outcome & kRecorded;
    if (outcome & kNewAlert) {
      if (new_alerts == 0) first_alert_time = event.time;
      ++new_alerts;
    }
  }
  const RegistryHandles& handles = Handles();
  handles.events->Add(count);
  if (delivered > 0) handles.delivered->Add(delivered);
  if (recorded > 0) handles.recorded->Add(recorded);
  if (new_alerts > 0) {
    handles.alerts->Add(new_alerts);
    handles.first_alert->SetMin(first_alert_time);
  }
}

void Telescope::Observe(double time, net::Ipv4 src, net::Ipv4 dst) {
  RequireBuilt();
  ObserveBuilt(time, src, dst);
}

// -- Two-phase sharded fold ----------------------------------------------
//
// The worker-thread fold only ever *reads* telescope state that is
// immutable during a run (the address index, sensor options, outage
// windows) and writes into its own ShardState.  Sensors are mutated on the
// serial paths only: MergeShardStates applies each step's flat counter
// deltas in shard order — reconstructing exactly the serial per-probe
// fold, because all events of a step share one timestamp — and
// FinalizeShardStates unions the order-free set partials once per run.

class Telescope::ShardState final : public sim::ObserverShardState {
 public:
  explicit ShardState(std::size_t sensor_count) : accums(sensor_count) {}

  struct Cell {
    std::uint64_t probes = 0;
    sim::FlatSet<std::uint32_t> sources;
  };
  struct Accum {
    // Step-scoped counter deltas, consumed by every merge.
    std::uint64_t step_identified = 0;
    std::uint64_t step_unidentified = 0;
    std::uint64_t step_outage_missed = 0;
    bool in_step_list = false;
    // Run-scoped set partials, consumed by the finalize.
    bool in_run_list = false;
    sim::FlatSet<std::uint32_t> sources;
    std::vector<Cell> cells;  ///< Lazily sized to the sensor's cell count.
  };

  std::vector<Accum> accums;     ///< Dense by sensor index.
  std::vector<int> step_touched;  ///< Sensors with pending step deltas.
  std::vector<int> run_touched;   ///< Sensors with pending set partials.
  double step_time = 0.0;
  // Run-scoped registry tallies (events/delivered/recorded fold totals).
  std::uint64_t events = 0;
  std::uint64_t delivered = 0;
  std::uint64_t recorded = 0;
};

std::unique_ptr<sim::ObserverShardState> Telescope::ForkShardState(
    int /*shard*/) {
  RequireBuilt();
  return std::make_unique<ShardState>(sensors_.size());
}

void Telescope::OnShardBatch(sim::ObserverShardState& state_base,
                             std::span<const sim::ProbeEvent> events) {
  auto& state = static_cast<ShardState&>(state_base);
  state.events += events.size();
  if (!events.empty()) state.step_time = events.front().time;
  constexpr std::size_t kPrefetchAhead = 8;
  const std::size_t count = events.size();
  for (std::size_t i = 0; i < count; ++i) {
    if (i + kPrefetchAhead < count) {
      const sim::ProbeEvent& ahead = events[i + kPrefetchAhead];
      if (ahead.delivery == topology::Delivery::kDelivered) {
        by_address_.PrefetchLookup(ahead.dst);
      }
    }
    const sim::ProbeEvent& event = events[i];
    if (event.delivery != topology::Delivery::kDelivered) continue;
    ++state.delivered;
    const int* index = by_address_.Lookup(event.dst);
    if (index == nullptr) continue;
    const auto sensor_index = static_cast<std::size_t>(*index);
    const SensorBlock& sensor = *sensors_[sensor_index];
    ShardState::Accum& accum = state.accums[sensor_index];
    if (!accum.in_step_list) {
      accum.in_step_list = true;
      state.step_touched.push_back(*index);
    }
    if (outages_present_ && sensor.has_outages() &&
        sensor.InOutageAt(event.time)) {
      ++accum.step_outage_missed;
      continue;
    }
    ++state.recorded;
    const bool identified =
        !threat_requires_handshake_ || sensor.options().active_responder;
    if (!identified) {
      ++accum.step_unidentified;
      continue;
    }
    ++accum.step_identified;
    if (!accum.in_run_list) {
      accum.in_run_list = true;
      state.run_touched.push_back(*index);
    }
    if (sensor.options().track_unique_sources) {
      accum.sources.Insert(event.src_address.value());
    }
    if (sensor.options().track_per_slash24) {
      if (accum.cells.empty()) accum.cells.resize(sensor.Slash24CellCount());
      ShardState::Cell& cell =
          accum.cells[event.dst.Slash24() - sensor.first_slash24()];
      ++cell.probes;
      cell.sources.Insert(event.src_address.value());
    }
  }
}

void Telescope::MergeShardStates(
    std::span<sim::ObserverShardState* const> states) {
  std::uint64_t new_alerts = 0;
  double first_alert_time = 0.0;
  for (sim::ObserverShardState* state_base : states) {
    auto& state = static_cast<ShardState&>(*state_base);
    for (const int index : state.step_touched) {
      const auto sensor_index = static_cast<std::size_t>(index);
      ShardState::Accum& accum = state.accums[sensor_index];
      const bool new_alert = sensors_[sensor_index]->ApplyStepDelta(
          accum.step_identified, accum.step_unidentified,
          accum.step_outage_missed, state.step_time);
      if (new_alert) {
        if (new_alerts == 0) first_alert_time = state.step_time;
        ++new_alerts;
      }
      accum.step_identified = 0;
      accum.step_unidentified = 0;
      accum.step_outage_missed = 0;
      accum.in_step_list = false;
    }
    state.step_touched.clear();
  }
  if (new_alerts > 0) {
    const RegistryHandles& handles = Handles();
    handles.alerts->Add(new_alerts);
    handles.first_alert->SetMin(first_alert_time);
  }
}

void Telescope::FinalizeShardStates(
    std::span<sim::ObserverShardState* const> states) {
  std::uint64_t events = 0;
  std::uint64_t delivered = 0;
  std::uint64_t recorded = 0;
  for (sim::ObserverShardState* state_base : states) {
    auto& state = static_cast<ShardState&>(*state_base);
    events += state.events;
    delivered += state.delivered;
    recorded += state.recorded;
    state.events = state.delivered = state.recorded = 0;
    for (const int index : state.run_touched) {
      const auto sensor_index = static_cast<std::size_t>(index);
      ShardState::Accum& accum = state.accums[sensor_index];
      SensorBlock& sensor = *sensors_[sensor_index];
      sensor.AbsorbSources(accum.sources);
      accum.sources.Clear();
      for (std::size_t cell = 0; cell < accum.cells.size(); ++cell) {
        if (accum.cells[cell].probes == 0) continue;
        sensor.AbsorbSlash24Cell(cell, accum.cells[cell].probes,
                                 accum.cells[cell].sources);
        accum.cells[cell].probes = 0;
        accum.cells[cell].sources.Clear();
      }
      accum.in_run_list = false;
    }
    state.run_touched.clear();
  }
  const RegistryHandles& handles = Handles();
  if (events > 0) handles.events->Add(events);
  if (delivered > 0) handles.delivered->Add(delivered);
  if (recorded > 0) handles.recorded->Add(recorded);
}

unsigned Telescope::ObserveBuilt(double time, net::Ipv4 src, net::Ipv4 dst) {
  const int* index = by_address_.Lookup(dst);
  if (index == nullptr) return 0;
  SensorBlock& sensor = *sensors_[static_cast<std::size_t>(*index)];
  if (outages_present_ && sensor.has_outages() && sensor.InOutage(time)) {
    // The block is withdrawn: the probe reached dead air.
    sensor.TallyOutageMiss();
    return 0;
  }
  const bool identified =
      !threat_requires_handshake_ || sensor.options().active_responder;
  const bool was_alerted = sensor.alerted();
  sensor.Record(time, src, dst, identified);
  return kRecorded |
         (sensor.alerted() != was_alerted ? kNewAlert : 0u);
}

void Telescope::SetSensorOutages(
    int index, std::vector<std::pair<double, double>> windows) {
  SensorBlock& target = sensor(index);
  target.SetOutageWindows(std::move(windows));
  if (target.has_outages()) {
    outages_present_ = true;
  } else {
    // This sensor's windows were cleared/empty: re-derive the fleet flag.
    outages_present_ = SensorsWithOutages() > 0;
  }
}

std::uint64_t Telescope::OutageMissedProbes() const {
  std::uint64_t missed = 0;
  for (const auto& sensor : sensors_) missed += sensor->outage_missed_probes();
  return missed;
}

std::size_t Telescope::SensorsWithOutages() const {
  std::size_t count = 0;
  for (const auto& sensor : sensors_) {
    if (sensor->has_outages()) ++count;
  }
  return count;
}

const SensorBlock* Telescope::FindByLabel(std::string_view label) const {
  for (const auto& sensor : sensors_) {
    if (sensor->label() == label) return sensor.get();
  }
  return nullptr;
}

std::size_t Telescope::AlertedCount() const {
  std::size_t count = 0;
  for (const auto& sensor : sensors_) {
    if (sensor->alerted()) ++count;
  }
  return count;
}

std::vector<double> Telescope::AlertTimes() const {
  std::vector<double> times;
  for (const auto& sensor : sensors_) {
    if (sensor->alerted()) times.push_back(*sensor->alert_time());
  }
  return times;
}

void Telescope::ResetAll() {
  for (const auto& sensor : sensors_) sensor->Reset();
}

void Telescope::PublishSensorMetrics(double sim_duration) const {
  auto& registry = obs::Registry::Global();
  for (const auto& sensor : sensors_) {
    const std::string prefix = "telescope.sensor." + sensor->label();
    registry.GetGauge(prefix + ".probes")
        .Set(static_cast<double>(sensor->probe_count()));
    if (sensor->options().track_unique_sources) {
      registry.GetGauge(prefix + ".unique_sources")
          .Set(static_cast<double>(sensor->UniqueSourceCount()));
    }
    if (sensor->alerted()) {
      registry.GetGauge(prefix + ".alert_seconds").Set(*sensor->alert_time());
    }
    if (sim_duration > 0.0) {
      registry.GetGauge(prefix + ".rate_per_sec")
          .Set(static_cast<double>(sensor->probe_count()) / sim_duration);
    }
    if (sensor->has_outages()) {
      registry.GetGauge(prefix + ".outage_missed_probes")
          .Set(static_cast<double>(sensor->outage_missed_probes()));
      registry.GetGauge(prefix + ".outage_down_seconds")
          .Set(sensor->DownSeconds(sim_duration));
    }
  }
  if (outages_present_) {
    registry.GetGauge("telescope.outage.sensors")
        .Set(static_cast<double>(SensorsWithOutages()));
    registry.GetGauge("telescope.outage.missed_probes")
        .Set(static_cast<double>(OutageMissedProbes()));
  }
}

}  // namespace hotspots::telescope
