#include "telescope/telescope.h"

#include <stdexcept>

namespace hotspots::telescope {

int Telescope::AddSensor(std::string label, net::Prefix block) {
  return AddSensor(std::move(label), block, default_options_);
}

int Telescope::AddSensor(std::string label, net::Prefix block,
                         SensorOptions options) {
  const int index = static_cast<int>(sensors_.size());
  sensors_.push_back(
      std::make_unique<SensorBlock>(std::move(label), block, options));
  by_address_.Add(block, index);
  built_ = false;
  return index;
}

void Telescope::Build() {
  if (built_) return;          // Idempotent until the next AddSensor().
  by_address_.Build();         // Throws if blocks overlap.
  built_ = true;
}

void Telescope::RequireBuilt() const {
  if (!built_) throw std::logic_error("Telescope: Build() not called");
}

void Telescope::OnAttach() { RequireBuilt(); }

const Telescope::RegistryHandles& Telescope::Handles() {
  if (handles_.events == nullptr) {
    auto& registry = obs::Registry::Global();
    handles_.events = &registry.GetCounter("telescope.events");
    handles_.delivered = &registry.GetCounter("telescope.delivered");
    handles_.recorded = &registry.GetCounter("telescope.recorded");
    handles_.alerts = &registry.GetCounter("telescope.alerts");
    handles_.first_alert = &registry.GetGauge("telescope.first_alert_seconds");
  }
  return handles_;
}

void Telescope::OnProbe(const sim::ProbeEvent& event) {
  const RegistryHandles& handles = Handles();
  handles.events->Increment();
  if (event.delivery != topology::Delivery::kDelivered) return;
  RequireBuilt();
  handles.delivered->Increment();
  const unsigned outcome = ObserveBuilt(event.time, event.src_address,
                                        event.dst);
  if (outcome & kRecorded) handles.recorded->Increment();
  if (outcome & kNewAlert) {
    handles.alerts->Increment();
    handles.first_alert->SetMin(event.time);
  }
}

void Telescope::OnProbeBatch(std::span<const sim::ProbeEvent> events) {
  RequireBuilt();  // Once per batch; the attach check makes this redundant
                   // on the engine path, but direct callers batch too.
  // Metrics are tallied into locals and folded into the registry once per
  // batch — the per-event cost of observability here is two integer adds.
  std::uint64_t delivered = 0;
  std::uint64_t recorded = 0;
  std::uint64_t new_alerts = 0;
  double first_alert_time = 0.0;
  // Overlap the (random-access) sensor-index loads of upcoming events with
  // the processing of the current one.
  constexpr std::size_t kPrefetchAhead = 8;
  const std::size_t count = events.size();
  for (std::size_t i = 0; i < count; ++i) {
    if (i + kPrefetchAhead < count) {
      const sim::ProbeEvent& ahead = events[i + kPrefetchAhead];
      if (ahead.delivery == topology::Delivery::kDelivered) {
        by_address_.PrefetchLookup(ahead.dst);
      }
    }
    const sim::ProbeEvent& event = events[i];
    if (event.delivery != topology::Delivery::kDelivered) continue;
    ++delivered;
    const unsigned outcome = ObserveBuilt(event.time, event.src_address,
                                          event.dst);
    recorded += outcome & kRecorded;
    if (outcome & kNewAlert) {
      if (new_alerts == 0) first_alert_time = event.time;
      ++new_alerts;
    }
  }
  const RegistryHandles& handles = Handles();
  handles.events->Add(count);
  if (delivered > 0) handles.delivered->Add(delivered);
  if (recorded > 0) handles.recorded->Add(recorded);
  if (new_alerts > 0) {
    handles.alerts->Add(new_alerts);
    handles.first_alert->SetMin(first_alert_time);
  }
}

void Telescope::Observe(double time, net::Ipv4 src, net::Ipv4 dst) {
  RequireBuilt();
  ObserveBuilt(time, src, dst);
}

unsigned Telescope::ObserveBuilt(double time, net::Ipv4 src, net::Ipv4 dst) {
  const int* index = by_address_.Lookup(dst);
  if (index == nullptr) return 0;
  SensorBlock& sensor = *sensors_[static_cast<std::size_t>(*index)];
  if (outages_present_ && sensor.has_outages() && sensor.InOutage(time)) {
    // The block is withdrawn: the probe reached dead air.
    sensor.TallyOutageMiss();
    return 0;
  }
  const bool identified =
      !threat_requires_handshake_ || sensor.options().active_responder;
  const bool was_alerted = sensor.alerted();
  sensor.Record(time, src, dst, identified);
  return kRecorded |
         (sensor.alerted() != was_alerted ? kNewAlert : 0u);
}

void Telescope::SetSensorOutages(
    int index, std::vector<std::pair<double, double>> windows) {
  SensorBlock& target = sensor(index);
  target.SetOutageWindows(std::move(windows));
  if (target.has_outages()) {
    outages_present_ = true;
  } else {
    // This sensor's windows were cleared/empty: re-derive the fleet flag.
    outages_present_ = SensorsWithOutages() > 0;
  }
}

std::uint64_t Telescope::OutageMissedProbes() const {
  std::uint64_t missed = 0;
  for (const auto& sensor : sensors_) missed += sensor->outage_missed_probes();
  return missed;
}

std::size_t Telescope::SensorsWithOutages() const {
  std::size_t count = 0;
  for (const auto& sensor : sensors_) {
    if (sensor->has_outages()) ++count;
  }
  return count;
}

const SensorBlock* Telescope::FindByLabel(std::string_view label) const {
  for (const auto& sensor : sensors_) {
    if (sensor->label() == label) return sensor.get();
  }
  return nullptr;
}

std::size_t Telescope::AlertedCount() const {
  std::size_t count = 0;
  for (const auto& sensor : sensors_) {
    if (sensor->alerted()) ++count;
  }
  return count;
}

std::vector<double> Telescope::AlertTimes() const {
  std::vector<double> times;
  for (const auto& sensor : sensors_) {
    if (sensor->alerted()) times.push_back(*sensor->alert_time());
  }
  return times;
}

void Telescope::ResetAll() {
  for (const auto& sensor : sensors_) sensor->Reset();
}

void Telescope::PublishSensorMetrics(double sim_duration) const {
  auto& registry = obs::Registry::Global();
  for (const auto& sensor : sensors_) {
    const std::string prefix = "telescope.sensor." + sensor->label();
    registry.GetGauge(prefix + ".probes")
        .Set(static_cast<double>(sensor->probe_count()));
    if (sensor->options().track_unique_sources) {
      registry.GetGauge(prefix + ".unique_sources")
          .Set(static_cast<double>(sensor->UniqueSourceCount()));
    }
    if (sensor->alerted()) {
      registry.GetGauge(prefix + ".alert_seconds").Set(*sensor->alert_time());
    }
    if (sim_duration > 0.0) {
      registry.GetGauge(prefix + ".rate_per_sec")
          .Set(static_cast<double>(sensor->probe_count()) / sim_duration);
    }
    if (sensor->has_outages()) {
      registry.GetGauge(prefix + ".outage_missed_probes")
          .Set(static_cast<double>(sensor->outage_missed_probes()));
      registry.GetGauge(prefix + ".outage_down_seconds")
          .Set(sensor->DownSeconds(sim_duration));
    }
  }
  if (outages_present_) {
    registry.GetGauge("telescope.outage.sensors")
        .Set(static_cast<double>(SensorsWithOutages()));
    registry.GetGauge("telescope.outage.missed_probes")
        .Set(static_cast<double>(OutageMissedProbes()));
  }
}

}  // namespace hotspots::telescope
