#include "telescope/telescope.h"

#include <stdexcept>

namespace hotspots::telescope {

int Telescope::AddSensor(std::string label, net::Prefix block) {
  return AddSensor(std::move(label), block, default_options_);
}

int Telescope::AddSensor(std::string label, net::Prefix block,
                         SensorOptions options) {
  const int index = static_cast<int>(sensors_.size());
  sensors_.push_back(
      std::make_unique<SensorBlock>(std::move(label), block, options));
  by_address_.Add(block, index);
  built_ = false;
  return index;
}

void Telescope::Build() {
  if (built_) return;          // Idempotent until the next AddSensor().
  by_address_.Build();         // Throws if blocks overlap.
  built_ = true;
}

void Telescope::RequireBuilt() const {
  if (!built_) throw std::logic_error("Telescope: Build() not called");
}

void Telescope::OnAttach() { RequireBuilt(); }

void Telescope::OnProbe(const sim::ProbeEvent& event) {
  if (event.delivery != topology::Delivery::kDelivered) return;
  RequireBuilt();
  ObserveBuilt(event.time, event.src_address, event.dst);
}

void Telescope::OnProbeBatch(std::span<const sim::ProbeEvent> events) {
  RequireBuilt();  // Once per batch; the attach check makes this redundant
                   // on the engine path, but direct callers batch too.
  // Overlap the (random-access) sensor-index loads of upcoming events with
  // the processing of the current one.
  constexpr std::size_t kPrefetchAhead = 8;
  const std::size_t count = events.size();
  for (std::size_t i = 0; i < count; ++i) {
    if (i + kPrefetchAhead < count) {
      const sim::ProbeEvent& ahead = events[i + kPrefetchAhead];
      if (ahead.delivery == topology::Delivery::kDelivered) {
        by_address_.PrefetchLookup(ahead.dst);
      }
    }
    const sim::ProbeEvent& event = events[i];
    if (event.delivery != topology::Delivery::kDelivered) continue;
    ObserveBuilt(event.time, event.src_address, event.dst);
  }
}

void Telescope::Observe(double time, net::Ipv4 src, net::Ipv4 dst) {
  RequireBuilt();
  ObserveBuilt(time, src, dst);
}

void Telescope::ObserveBuilt(double time, net::Ipv4 src, net::Ipv4 dst) {
  const int* index = by_address_.Lookup(dst);
  if (index == nullptr) return;
  SensorBlock& sensor = *sensors_[static_cast<std::size_t>(*index)];
  const bool identified =
      !threat_requires_handshake_ || sensor.options().active_responder;
  sensor.Record(time, src, dst, identified);
}

const SensorBlock* Telescope::FindByLabel(std::string_view label) const {
  for (const auto& sensor : sensors_) {
    if (sensor->label() == label) return sensor.get();
  }
  return nullptr;
}

std::size_t Telescope::AlertedCount() const {
  std::size_t count = 0;
  for (const auto& sensor : sensors_) {
    if (sensor->alerted()) ++count;
  }
  return count;
}

std::vector<double> Telescope::AlertTimes() const {
  std::vector<double> times;
  for (const auto& sensor : sensors_) {
    if (sensor->alerted()) times.push_back(*sensor->alert_time());
  }
  return times;
}

void Telescope::ResetAll() {
  for (const auto& sensor : sensors_) sensor->Reset();
}

}  // namespace hotspots::telescope
