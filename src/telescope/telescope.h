// A fleet of darknet sensors attached to the probe stream.
//
// Implements sim::ProbeObserver: every probe the engine emits that is
// *delivered* and lands inside a sensor block is recorded by that sensor.
// (Probes dropped by environmental factors — upstream ACLs, perimeter
// firewalls, NAT unroutability, loss — never reach a darknet, which is
// precisely how environmental hotspots blind distributed detection.)
//
// The engine feeds probes through OnProbeBatch(); the telescope validates
// its built state once per attach/batch and walks the events with a
// prefetch window over the address index, so the per-probe cost is one
// (overlapped) indexed load plus, on a hit, an allocation-free record.
//
// Observability: the ProbeObserver entry points (OnProbe/OnProbeBatch)
// tally events, delivered probes, sensor hits, and alert transitions into
// local counts and fold them into obs::Registry::Global() under
// "telescope.*" once per batch; the first alert also sets the
// "telescope.first_alert_seconds" gauge (sim time).  The raw Observe()
// feed — used by harnesses replaying canned streams — records into
// sensors only and stays registry-free, so microbenchmarks of the record
// path measure the record path.  PublishSensorMetrics() exports
// per-sensor probe counts and event rates as gauges on demand.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "net/slash16_index.h"
#include "obs/metrics.h"
#include "sim/observer.h"
#include "telescope/sensor.h"

namespace hotspots::telescope {

class Telescope final : public sim::ProbeObserver,
                        public sim::MergeableObserver {
 public:
  explicit Telescope(SensorOptions default_options = {})
      : default_options_(default_options) {}

  /// Adds a sensor block; blocks must be pairwise disjoint.
  /// Returns the sensor index.
  int AddSensor(std::string label, net::Prefix block);
  int AddSensor(std::string label, net::Prefix block, SensorOptions options);

  /// Finalizes the address index.  Must be called before observing.
  /// Idempotent: calling it again without new sensors is a no-op.
  void Build();

  /// Fails fast (std::logic_error) if Build() was not called, so an
  /// un-built telescope is rejected once at attach time rather than
  /// branching+throwing per probe.
  void OnAttach() override;

  void OnProbe(const sim::ProbeEvent& event) override;
  void OnProbeBatch(std::span<const sim::ProbeEvent> events) override;

  // -- Two-phase sharded fold (sim::MergeableObserver) -------------------
  // Worker threads fold each shard's events into flat per-sensor counter
  // deltas + source-set partials; the serial merge applies count deltas in
  // shard order per step (alert thresholds cross there, so first-alert
  // times are bit-identical to the serial path), and the unique-source /
  // per-/24 set partials union once at end of run.
  [[nodiscard]] sim::MergeableObserver* AsMergeable() override { return this; }
  [[nodiscard]] std::unique_ptr<sim::ObserverShardState> ForkShardState(
      int shard) override;
  void OnShardBatch(sim::ObserverShardState& state,
                    std::span<const sim::ProbeEvent> events) override;
  void MergeShardStates(
      std::span<sim::ObserverShardState* const> states) override;
  void FinalizeShardStates(
      std::span<sim::ObserverShardState* const> states) override;

  /// Feeds a probe directly (for harnesses not using the engine).
  void Observe(double time, net::Ipv4 src, net::Ipv4 dst);

  /// Declares whether the observed threat's payload needs a transport
  /// handshake (TCP worms).  When true, *passive* sensors tally such
  /// probes as unidentified background radiation instead of identified
  /// threat observations.  Typically set from Worm::requires_handshake().
  void SetThreatRequiresHandshake(bool requires_handshake) {
    threat_requires_handshake_ = requires_handshake;
  }

  [[nodiscard]] std::size_t size() const { return sensors_.size(); }
  [[nodiscard]] const SensorBlock& sensor(int index) const {
    return *sensors_[static_cast<std::size_t>(index)];
  }
  [[nodiscard]] SensorBlock& sensor(int index) {
    return *sensors_[static_cast<std::size_t>(index)];
  }

  /// Sensor with the given label, or nullptr.
  [[nodiscard]] const SensorBlock* FindByLabel(std::string_view label) const;

  // -- Outage injection (fault schedules; see src/fault) -----------------
  /// Applies outage windows to sensor `index` (replacing previous ones).
  /// Probes arriving during a window are counted as missed, not recorded,
  /// so alerting and aggregation degrade instead of lying.  Fault-free
  /// fleets pay one hoisted-bool branch per recorded probe.
  void SetSensorOutages(int index,
                        std::vector<std::pair<double, double>> windows);
  /// Fleet-wide probes lost to outages.
  [[nodiscard]] std::uint64_t OutageMissedProbes() const;
  /// Sensors that currently carry at least one outage window.
  [[nodiscard]] std::size_t SensorsWithOutages() const;

  /// Number of sensors that have alerted.
  [[nodiscard]] std::size_t AlertedCount() const;

  /// First-alert times of all sensors that alerted (unsorted).
  [[nodiscard]] std::vector<double> AlertTimes() const;

  /// Resets every sensor's counters.
  void ResetAll();

  /// Folds per-sensor statistics into the global metrics registry as
  /// gauges: "telescope.sensor.<label>.probes", ".unique_sources",
  /// ".alert_seconds" (alerted sensors only), and — when `sim_duration`
  /// is positive — ".rate_per_sec" (probes per simulated second).  Cold
  /// path, call once per run; fleets are caller-bounded, so so is the
  /// metric count.
  void PublishSensorMetrics(double sim_duration = 0.0) const;

 private:
  /// Per-shard fold partial (defined in telescope.cc).
  class ShardState;

  /// Outcome flags of one observed probe (hot-path result, branch-free to
  /// tally): bit 0 = recorded by a sensor, bit 1 = that record crossed the
  /// sensor's alert threshold.
  static constexpr unsigned kRecorded = 1u;
  static constexpr unsigned kNewAlert = 2u;

  void RequireBuilt() const;
  /// Hot path shared by Observe()/OnProbe()/OnProbeBatch(); assumes built.
  unsigned ObserveBuilt(double time, net::Ipv4 src, net::Ipv4 dst);
  /// Lazily resolved registry handles for the batch-fold counters.
  struct RegistryHandles {
    obs::Counter* events = nullptr;
    obs::Counter* delivered = nullptr;
    obs::Counter* recorded = nullptr;
    obs::Counter* alerts = nullptr;
    obs::Gauge* first_alert = nullptr;
  };
  const RegistryHandles& Handles();

  SensorOptions default_options_;
  RegistryHandles handles_;
  std::vector<std::unique_ptr<SensorBlock>> sensors_;
  // Per-/16 direct map: the address→sensor lookup runs once per delivered
  // probe, and this backend is far faster than interval binary search at
  // 10,000-sensor fleet sizes (see bench/micro_primitives: ~5.5 ns vs
  // ~108 ns per lookup at 10,000 sensors, ~20×).
  net::Slash16Index<int> by_address_;
  bool built_ = false;
  bool threat_requires_handshake_ = false;
  /// Hoisted "any sensor has outage windows" flag: the per-probe outage
  /// check is skipped entirely on fault-free fleets.
  bool outages_present_ = false;
};

}  // namespace hotspots::telescope
