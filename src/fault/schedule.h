// Deterministic fault schedules (`hotspots.faults.v1`).
//
// The paper's environmental root causes of hotspots include *failures and
// misconfiguration*: sensor blocks that go dark (BGP-style block
// withdrawal), filtering policy that drifts, and plain packet loss.  A
// FaultSchedule scripts those degradations for one experiment: scripted
// per-sensor outage windows, probabilistic delivery faults (extra loss,
// duplication), scripted ACL-drift events, and injected trial failures for
// exercising the study runner's quarantine path.
//
// Every probabilistic fault draws from a schedule-private SplitMix64
// stream — mirroring the TraceWriter sampling design — so injection never
// perturbs engine RNG state: a run with an *empty* schedule is bit-identical
// to a run with no fault layer at all, and identical (seed, schedule) pairs
// reproduce bit-identical fault decisions on any thread count.
//
// Text spec grammar (the `hotspots.faults.v1` schema, also accepted by the
// benches' --faults flag); directives are ';'-separated:
//
//   seed:<u64>                     fault-stream seed (decimal or 0x hex)
//   outage:<label>:<down>:<up>     sensor outage window [down, up) seconds;
//                                  label "*" matches every sensor; <up> may
//                                  be "inf"
//   outages:<fraction>:<horizon>   staggered random outages: every sensor
//                                  gets one window of length
//                                  fraction*horizon, start drawn from the
//                                  fault stream (materialized per fleet)
//   loss:<p>                       extra Bernoulli loss on delivered probes
//   dup:<p>                        Bernoulli duplication of delivered probes
//   acl:<cidr>@<t>                 the /16s of <cidr> become
//                                  ingress-filtered at time <t> (policy
//                                  drift); <cidr> must be /16 or shorter
//   trialfail:<p>                  per-attempt probability that a study
//                                  trial is fault-killed (throws TrialKilled)
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/prefix.h"

namespace hotspots::fault {

/// Schema identifier used in sidecars, specs, and diagnostics.
inline constexpr const char* kFaultSchema = "hotspots.faults.v1";

/// One scripted sensor outage: the sensor labelled `sensor` records nothing
/// in [down_at, up_at).  "*" matches every sensor of the fleet.
struct OutageWindow {
  std::string sensor;
  double down_at = 0.0;
  double up_at = std::numeric_limits<double>::infinity();
};

/// Staggered probabilistic outages: every sensor goes dark once for
/// `down_fraction * horizon` seconds, the start drawn uniformly from the
/// schedule's fault stream.  Materialized against a concrete fleet by
/// ApplySensorOutages() / StaggeredOutages().
struct StaggeredOutageConfig {
  double down_fraction = 0.0;
  double horizon = 0.0;
};

/// Probabilistic faults layered on the delivery decision (DeliveryFaults).
struct DeliveryFaultConfig {
  /// Extra Bernoulli loss applied to probes the topology delivered.
  double loss_rate = 0.0;
  /// Probability a delivered probe is duplicated in flight.
  double duplication_rate = 0.0;
};

/// One ACL-drift event: at time `at`, every /16 touched by `block` becomes
/// ingress-filtered (misconfigured policy that widened).  Blocks must be
/// /16 or shorter — drift is modelled at the classification table's
/// granularity, like the paper's coarse upstream ACLs.
struct AclDriftEvent {
  double at = 0.0;
  net::Prefix block;
};

/// Study-level fault injection (exercises retry/quarantine).
struct TrialFaultConfig {
  /// Per-attempt probability that the trial is killed before it runs.
  double failure_rate = 0.0;
};

/// A complete, deterministic fault schedule for one experiment.
struct FaultSchedule {
  /// Seed of the schedule-private SplitMix64 stream(s).
  std::uint64_t seed = 0xFA017ED5EEDull;
  std::vector<OutageWindow> outages;
  StaggeredOutageConfig staggered;
  DeliveryFaultConfig delivery;
  std::vector<AclDriftEvent> acl_drift;
  TrialFaultConfig trials;

  /// True when the schedule injects nothing — runs must then be
  /// bit-identical to runs with no fault layer attached.
  [[nodiscard]] bool empty() const;
  /// True when any delivery-layer fault (loss, duplication, drift) is set.
  [[nodiscard]] bool HasDeliveryFaults() const;
};

/// Parses a `hotspots.faults.v1` text spec (grammar above).  Throws
/// std::invalid_argument naming the offending directive.
[[nodiscard]] FaultSchedule ParseFaultSpec(const std::string& spec);

/// Materializes staggered outage windows for `labels`: every sensor gets
/// one window of length `down_fraction * horizon`, start drawn from
/// SplitMix64(seed) in label order.  Deterministic in (labels, seed).
[[nodiscard]] std::vector<OutageWindow> StaggeredOutages(
    const std::vector<std::string>& labels, double horizon,
    double down_fraction, std::uint64_t seed);

/// Raised by MaybeKillTrial for fault-injected trial failures, so tests and
/// benches can tell injected kills from real bugs.
class TrialKilled : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Deterministic per-(trial, seed) draw against
/// `schedule.trials.failure_rate`.  The trial seed differs per retry
/// attempt (sim::TrialAttemptSeed), so a killed attempt can succeed on
/// retry — exactly the transient-failure shape the retry path exists for.
[[nodiscard]] bool ShouldKillTrial(const FaultSchedule& schedule, int trial,
                                   std::uint64_t trial_seed);

/// Throws TrialKilled when ShouldKillTrial() says so; no-op otherwise.
void MaybeKillTrial(const FaultSchedule& schedule, int trial,
                    std::uint64_t trial_seed);

}  // namespace hotspots::fault
