// Deterministic fault schedules (`hotspots.faults.v2`).
//
// The paper's environmental root causes of hotspots include *failures and
// misconfiguration*: sensor blocks that go dark (BGP-style block
// withdrawal), filtering policy that drifts, and plain packet loss.  A
// FaultSchedule scripts those degradations for one experiment: scripted
// per-sensor outage windows, probabilistic delivery faults (extra loss,
// duplication), scripted ACL-drift events, and injected trial failures for
// exercising the study runner's quarantine path.
//
// v2 extends the independent per-event draws of v1 with *correlated*
// failure models — the regime real degradations live in: group outages
// that darken a whole prefix slice of the fleet at once (a BGP withdrawal,
// not N independent sensor reboots), a two-state Gilbert–Elliott loss
// channel for bursty congestion, piecewise diurnal loss profiles, and
// detector-side alert-propagation delay.  Every v1 spec string parses
// unchanged and reproduces its v1 fault decisions bit-for-bit.
//
// Every probabilistic fault draws from a schedule-private SplitMix64
// stream — mirroring the TraceWriter sampling design — so injection never
// perturbs engine RNG state: a run with an *empty* schedule is bit-identical
// to a run with no fault layer at all, and identical (seed, schedule) pairs
// reproduce bit-identical fault decisions on any thread count.
//
// Text spec grammar (the `hotspots.faults.v2` schema, also accepted by the
// benches' --faults flag); directives are ';'-separated.  v1 verbs:
//
//   seed:<u64>                     fault-stream seed (decimal or 0x hex)
//   outage:<label>:<down>:<up>     sensor outage window [down, up) seconds;
//                                  label "*" matches every sensor; <up> may
//                                  be "inf"
//   outages:<fraction>:<horizon>   staggered random outages: every sensor
//                                  gets one window of length
//                                  fraction*horizon, start drawn from the
//                                  fault stream (materialized per fleet)
//   loss:<p>                       extra Bernoulli loss on delivered probes
//   dup:<p>                        Bernoulli duplication of delivered probes
//   acl:<cidr>@<t>                 the /16s of <cidr> become
//                                  ingress-filtered at time <t> (policy
//                                  drift); <cidr> must be /16 or shorter
//   trialfail:<p>                  per-attempt probability that a study
//                                  trial is fault-killed (throws TrialKilled)
//
// v2 verbs (correlated failures):
//
//   group:<name>=<l1>,<l2>,...     names a sensor set for groupoutage
//   groupoutage:<cidr>:<down>:<up> one outage window shared by every sensor
//                                  whose block lies inside <cidr>
//   groupoutage:@<name>:<down>:<up> same, keyed by a named sensor set
//   groupoutages:<bits>:<fraction>:<horizon>
//                                  correlated staggered outages: sensors
//                                  are grouped by the top <bits> bits of
//                                  their block base (/8 → bits=8) and each
//                                  *group* gets one shared window of length
//                                  fraction*horizon — equal per-sensor
//                                  down-time to `outages:`, correlated
//                                  within a group
//   gilbert:<good>:<bad>:<enter>:<exit>[:<tick>]
//                                  two-state Gilbert–Elliott loss channel:
//                                  loss rate <good>/<bad> per state,
//                                  per-tick transition probabilities
//                                  P(good→bad)=<enter>, P(bad→good)=<exit>,
//                                  tick length <tick> seconds (default 1)
//   profile:<t0>=<p0>,<t1>=<p1>,...[@<period>]
//                                  piecewise-constant diurnal loss profile
//                                  (t0 must be 0; optional repeat period)
//   alertdelay:<min>:<max>         deterministic per-sensor alert
//                                  propagation delay in [min, max] seconds
//
// Duplicate scalar directives (seed, outages, loss, dup, trialfail,
// gilbert, profile, alertdelay, groupoutages) are rejected explicitly;
// parse errors name the offending token and its byte offset.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/prefix.h"

namespace hotspots::fault {

/// Schema identifier used in sidecars, specs, and diagnostics.
inline constexpr const char* kFaultSchema = "hotspots.faults.v2";
/// The v1 schema every pre-v2 spec was written against; still accepted in
/// full by ParseFaultSpec (v2 is a strict grammar superset).
inline constexpr const char* kFaultSchemaV1 = "hotspots.faults.v1";

/// One scripted sensor outage: the sensor labelled `sensor` records nothing
/// in [down_at, up_at).  "*" matches every sensor of the fleet.
struct OutageWindow {
  std::string sensor;
  double down_at = 0.0;
  double up_at = std::numeric_limits<double>::infinity();
};

/// Staggered probabilistic outages: every sensor goes dark once for
/// `down_fraction * horizon` seconds, the start drawn uniformly from the
/// schedule's fault stream.  Materialized against a concrete fleet by
/// ApplySensorOutages() / StaggeredOutages().
struct StaggeredOutageConfig {
  double down_fraction = 0.0;
  double horizon = 0.0;
};

/// Probabilistic faults layered on the delivery decision (DeliveryFaults).
struct DeliveryFaultConfig {
  /// Extra Bernoulli loss applied to probes the topology delivered.
  double loss_rate = 0.0;
  /// Probability a delivered probe is duplicated in flight.
  double duplication_rate = 0.0;
};

/// Two-state Gilbert–Elliott loss channel: the channel is `good` or `bad`,
/// each state carrying its own Bernoulli loss rate for delivered probes;
/// transitions are drawn once per `tick_seconds` from a schedule-private
/// sub-stream, so the state sequence is a pure function of (schedule seed,
/// engine seed, time) — shard-count-invariant by construction.  The channel
/// starts `good` at t = 0.
struct GilbertElliottConfig {
  double good_loss = 0.0;  ///< Loss rate while the channel is good.
  double bad_loss = 0.0;   ///< Loss rate while the channel is bad (burst).
  double enter_bad = 0.0;  ///< Per-tick P(good → bad).
  double exit_bad = 0.0;   ///< Per-tick P(bad → good).
  double tick_seconds = 1.0;

  /// True when the channel can ever lose a probe.
  [[nodiscard]] bool Active() const {
    return good_loss > 0.0 || bad_loss > 0.0;
  }
};

/// One knot of a piecewise-constant loss profile.
struct LossProfilePoint {
  double at = 0.0;    ///< Knot time (seconds; profile-local when periodic).
  double loss = 0.0;  ///< Loss rate from this knot until the next.
};

/// Piecewise-constant (diurnal) loss profile.  The rate at time t is the
/// value of the last knot with `at <= t` (knots are sorted, the first knot
/// is required at t = 0).  When `period > 0` the profile repeats:
/// evaluation uses fmod(t, period).
struct LossProfile {
  std::vector<LossProfilePoint> points;
  double period = 0.0;  ///< 0 = aperiodic.

  [[nodiscard]] bool Active() const {
    for (const LossProfilePoint& point : points) {
      if (point.loss > 0.0) return true;
    }
    return false;
  }
  /// Loss rate at time `time` (0 when the profile has no knots).
  [[nodiscard]] double LossAt(double time) const;
};

/// A named sensor set usable as a group-outage key (`groupoutage:@name`).
struct NamedSensorGroup {
  std::string name;
  std::vector<std::string> labels;
};

/// One correlated outage: every member of the group shares the *same*
/// window [down_at, up_at).  Membership is by named set (`group`
/// non-empty) or by prefix containment (`block`): a sensor belongs when
/// its whole block lies inside `block`.
struct GroupOutage {
  std::string group;  ///< Named-set key; empty = prefix-keyed.
  net::Prefix block;  ///< Prefix key (when `group` is empty).
  double down_at = 0.0;
  double up_at = std::numeric_limits<double>::infinity();
};

/// Correlated staggered outages: sensors are grouped by the top
/// `prefix_bits` bits of their block base, and each *group* draws one
/// shared window of length `down_fraction * horizon` — the correlated
/// counterpart of StaggeredOutageConfig at equal per-sensor down-time.
struct GroupStaggeredConfig {
  int prefix_bits = 0;  ///< 0 = disabled; 1..32 otherwise.
  double down_fraction = 0.0;
  double horizon = 0.0;
};

/// Detector-side alert propagation delay: a sensor that senses its alert
/// at time t *reports* it at t + delay, with delay drawn deterministically
/// per sensor index from [min_delay, max_delay] (see
/// detect::AlertDelayQueue).
struct AlertDelayConfig {
  double min_delay = 0.0;
  double max_delay = 0.0;

  [[nodiscard]] bool Active() const { return max_delay > 0.0; }
};

/// One ACL-drift event: at time `at`, every /16 touched by `block` becomes
/// ingress-filtered (misconfigured policy that widened).  Blocks must be
/// /16 or shorter — drift is modelled at the classification table's
/// granularity, like the paper's coarse upstream ACLs.
struct AclDriftEvent {
  double at = 0.0;
  net::Prefix block;
};

/// Study-level fault injection (exercises retry/quarantine).
struct TrialFaultConfig {
  /// Per-attempt probability that the trial is killed before it runs.
  double failure_rate = 0.0;
};

/// A complete, deterministic fault schedule for one experiment.
struct FaultSchedule {
  /// Seed of the schedule-private SplitMix64 stream(s).
  std::uint64_t seed = 0xFA017ED5EEDull;
  std::vector<OutageWindow> outages;
  StaggeredOutageConfig staggered;
  DeliveryFaultConfig delivery;
  std::vector<AclDriftEvent> acl_drift;
  TrialFaultConfig trials;

  // -- v2 correlated-failure clauses ------------------------------------
  std::vector<NamedSensorGroup> groups;
  std::vector<GroupOutage> group_outages;
  GroupStaggeredConfig group_staggered;
  GilbertElliottConfig gilbert;
  LossProfile loss_profile;
  AlertDelayConfig alert_delay;

  /// True when the schedule injects nothing — runs must then be
  /// bit-identical to runs with no fault layer attached.  (Named groups
  /// alone inject nothing: they only key groupoutage directives.)
  [[nodiscard]] bool empty() const;
  /// True when any delivery-layer fault (loss, duplication, drift, bursty
  /// channel, loss profile) is set.
  [[nodiscard]] bool HasDeliveryFaults() const;
};

/// Parses a `hotspots.faults.v2` text spec (grammar above; every v1 spec
/// is valid v2).  Throws std::invalid_argument naming the offending token
/// and its byte offset in the spec, and rejects duplicate scalar
/// directives explicitly.
[[nodiscard]] FaultSchedule ParseFaultSpec(const std::string& spec);

/// Materializes staggered outage windows for `labels`: every sensor gets
/// one window of length `down_fraction * horizon`, start drawn from
/// SplitMix64(seed) in label order.  Deterministic in (labels, seed).
[[nodiscard]] std::vector<OutageWindow> StaggeredOutages(
    const std::vector<std::string>& labels, double horizon,
    double down_fraction, std::uint64_t seed);

/// Materializes *correlated* staggered windows: one window of length
/// `down_fraction * horizon` per distinct group key, drawn in ascending
/// key order from a salted sub-stream of `seed`, shared by every index
/// mapped to that key.  Returns one window per input key (aligned by
/// position).  Deterministic in (keys, seed) and independent of how many
/// sensors share a group.
[[nodiscard]] std::vector<OutageWindow> GroupStaggeredOutages(
    const std::vector<std::uint32_t>& group_keys, double horizon,
    double down_fraction, std::uint64_t seed);

/// Raised by MaybeKillTrial for fault-injected trial failures, so tests and
/// benches can tell injected kills from real bugs.
class TrialKilled : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Deterministic per-(trial, seed) draw against
/// `schedule.trials.failure_rate`.  The trial seed differs per retry
/// attempt (sim::TrialAttemptSeed), so a killed attempt can succeed on
/// retry — exactly the transient-failure shape the retry path exists for.
[[nodiscard]] bool ShouldKillTrial(const FaultSchedule& schedule, int trial,
                                   std::uint64_t trial_seed);

/// Throws TrialKilled when ShouldKillTrial() says so; no-op otherwise.
void MaybeKillTrial(const FaultSchedule& schedule, int trial,
                    std::uint64_t trial_seed);

}  // namespace hotspots::fault
