#include "fault/delivery.h"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.h"

namespace hotspots::fault {

DeliveryFaults::DeliveryFaults(const FaultSchedule& schedule)
    : loss_rate_(schedule.delivery.loss_rate),
      duplication_rate_(schedule.delivery.duplication_rate),
      drift_events_(schedule.acl_drift), schedule_seed_(schedule.seed),
      stream_(schedule.seed) {
  // ParseFaultSpec sorts; programmatic schedules may not have.
  std::sort(drift_events_.begin(), drift_events_.end(),
            [](const AclDriftEvent& a, const AclDriftEvent& b) {
              return a.at < b.at;
            });
  for (const AclDriftEvent& event : drift_events_) {
    if (event.block.length() > 16) {
      throw std::invalid_argument(
          "DeliveryFaults: ACL drift blocks must be /16 or shorter, got " +
          event.block.ToString());
    }
  }
}

void DeliveryFaults::OnRunStart(std::uint64_t engine_seed) {
  stream_salt_ = prng::Mix64(schedule_seed_ ^ prng::Mix64(engine_seed));
  stream_ = prng::SplitMix64{stream_salt_};
  drifted_.fill(0);
  drift_cursor_ = 0;
  any_drift_active_ = false;
  injected_losses_ = 0;
  injected_duplicates_ = 0;
  drift_filtered_ = 0;
}

void DeliveryFaults::ActivateDriftsDueBy(double time) {
  // Time is monotone within a run, so a cursor suffices.
  while (drift_cursor_ < drift_events_.size() &&
         drift_events_[drift_cursor_].at <= time) {
    const net::Prefix& block = drift_events_[drift_cursor_].block;
    const std::uint32_t first = block.first().value() >> 16;
    const std::uint32_t last = block.last().value() >> 16;
    for (std::uint32_t slash16 = first; slash16 <= last; ++slash16) {
      drifted_[slash16] = 1;
    }
    any_drift_active_ = true;
    ++drift_cursor_;
  }
}

DeliveryFaults::Outcome DeliveryFaults::OnProbeVerdict(
    double time, net::Ipv4 dst, topology::Delivery verdict) {
  ActivateDriftsDueBy(time);

  Outcome outcome;
  outcome.verdict = verdict;
  if (verdict != topology::Delivery::kDelivered) return outcome;

  // Faults only degrade delivered probes, in a fixed order (drift, then
  // loss, then duplication) so draw sequences are well-defined.
  if (any_drift_active_ && drifted_[dst.value() >> 16] != 0) {
    ++drift_filtered_;
    outcome.verdict = topology::Delivery::kIngressFiltered;
    return outcome;
  }
  if (loss_rate_ > 0.0 && NextUnit() < loss_rate_) {
    ++injected_losses_;
    outcome.verdict = topology::Delivery::kNetworkLoss;
    return outcome;
  }
  if (duplication_rate_ > 0.0 && NextUnit() < duplication_rate_) {
    ++injected_duplicates_;
    outcome.duplicate = true;
  }
  return outcome;
}

DeliveryFaults::Outcome DeliveryFaults::ShardProbeVerdict(
    double /*time*/, net::Ipv4 dst, topology::Delivery verdict,
    prng::Xoshiro256& stream) const {
  Outcome outcome;
  outcome.verdict = verdict;
  if (verdict != topology::Delivery::kDelivered) return outcome;

  // Same degrade order as the serial path (drift, loss, duplication); the
  // engine tallies which branch fired and folds via FoldShardTallies.
  if (any_drift_active_ && drifted_[dst.value() >> 16] != 0) {
    outcome.verdict = topology::Delivery::kIngressFiltered;
    return outcome;
  }
  if (loss_rate_ > 0.0 && stream.NextDouble() < loss_rate_) {
    outcome.verdict = topology::Delivery::kNetworkLoss;
    return outcome;
  }
  if (duplication_rate_ > 0.0 && stream.NextDouble() < duplication_rate_) {
    outcome.duplicate = true;
  }
  return outcome;
}

void DeliveryFaults::PublishMetrics() const {
  auto& registry = obs::Registry::Global();
  if (injected_losses_ > 0) {
    registry.GetCounter("fault.delivery.injected_losses")
        .Add(injected_losses_);
  }
  if (injected_duplicates_ > 0) {
    registry.GetCounter("fault.delivery.injected_duplicates")
        .Add(injected_duplicates_);
  }
  if (drift_filtered_ > 0) {
    registry.GetCounter("fault.delivery.drift_filtered").Add(drift_filtered_);
  }
}

}  // namespace hotspots::fault
