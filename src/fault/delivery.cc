#include "fault/delivery.h"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.h"

namespace hotspots::fault {
namespace {

/// Domain separator for the Gilbert–Elliott transition sub-stream: channel
/// ticks must never share draws with the per-probe loss/dup stream, or the
/// channel's tick count would depend on the probe volume.
constexpr std::uint64_t kGilbertSalt = 0xB0257E11A907ull;

}  // namespace

DeliveryFaults::DeliveryFaults(const FaultSchedule& schedule)
    : loss_rate_(schedule.delivery.loss_rate),
      duplication_rate_(schedule.delivery.duplication_rate),
      drift_events_(schedule.acl_drift), gilbert_(schedule.gilbert),
      profile_(schedule.loss_profile), schedule_seed_(schedule.seed),
      stream_(schedule.seed) {
  // ParseFaultSpec sorts; programmatic schedules may not have.
  std::sort(drift_events_.begin(), drift_events_.end(),
            [](const AclDriftEvent& a, const AclDriftEvent& b) {
              return a.at < b.at;
            });
  for (const AclDriftEvent& event : drift_events_) {
    if (event.block.length() > 16) {
      throw std::invalid_argument(
          "DeliveryFaults: ACL drift blocks must be /16 or shorter, got " +
          event.block.ToString());
    }
  }
  // Usable before any OnRunStart (callers that drive the hook directly):
  // mirror the legacy schedule-seed-only stream arming.
  time_varying_loss_ = gilbert_.Active() || profile_.Active();
  gilbert_stream_ = prng::SplitMix64{prng::Mix64(schedule_seed_ ^ kGilbertSalt)};
  RecomposeEffectiveLoss(0.0);
}

void DeliveryFaults::OnRunStart(std::uint64_t engine_seed) {
  stream_salt_ = prng::Mix64(schedule_seed_ ^ prng::Mix64(engine_seed));
  stream_ = prng::SplitMix64{stream_salt_};
  drifted_.fill(0);
  drift_cursor_ = 0;
  any_drift_active_ = false;
  injected_losses_ = 0;
  injected_duplicates_ = 0;
  drift_filtered_ = 0;
  gilbert_stream_ = prng::SplitMix64{prng::Mix64(stream_salt_ ^ kGilbertSalt)};
  gilbert_ticks_ = 0;
  gilbert_bad_ = false;
  bad_ticks_ = 0;
  cursor_time_ = 0.0;
  RecomposeEffectiveLoss(0.0);
}

void DeliveryFaults::RecomposeEffectiveLoss(double time) {
  if (!time_varying_loss_) {
    // Exact assignment: 1-(1-p) is not p in floating point, and a changed
    // threshold would silently re-draw every v1 loss decision.
    effective_loss_ = loss_rate_;
    return;
  }
  const double channel =
      gilbert_.Active() ? (gilbert_bad_ ? gilbert_.bad_loss : gilbert_.good_loss)
                        : 0.0;
  const double diurnal = profile_.LossAt(time);
  const double keep = (1.0 - loss_rate_) * (1.0 - channel) * (1.0 - diurnal);
  effective_loss_ = std::min(1.0, std::max(0.0, 1.0 - keep));
}

void DeliveryFaults::AdvanceTimeTo(double time) {
  ActivateDriftsDueBy(time);
  if (!time_varying_loss_ || time == cursor_time_) return;
  cursor_time_ = time;
  if (gilbert_.Active()) {
    // Exactly one transition draw per elapsed tick, in either state: the
    // channel state is a pure function of the tick index, so serial and
    // sharded evaluation (and any shard count) see the same state at the
    // same step time.
    while (static_cast<double>(gilbert_ticks_ + 1) * gilbert_.tick_seconds <=
           time) {
      const double draw =
          static_cast<double>(gilbert_stream_.Next() >> 11) * 0x1.0p-53;
      if (gilbert_bad_) {
        if (draw < gilbert_.exit_bad) gilbert_bad_ = false;
      } else {
        if (draw < gilbert_.enter_bad) gilbert_bad_ = true;
      }
      ++gilbert_ticks_;
      if (gilbert_bad_) ++bad_ticks_;
    }
  }
  RecomposeEffectiveLoss(time);
}

void DeliveryFaults::ActivateDriftsDueBy(double time) {
  // Time is monotone within a run, so a cursor suffices.
  while (drift_cursor_ < drift_events_.size() &&
         drift_events_[drift_cursor_].at <= time) {
    const net::Prefix& block = drift_events_[drift_cursor_].block;
    const std::uint32_t first = block.first().value() >> 16;
    const std::uint32_t last = block.last().value() >> 16;
    for (std::uint32_t slash16 = first; slash16 <= last; ++slash16) {
      drifted_[slash16] = 1;
    }
    any_drift_active_ = true;
    ++drift_cursor_;
  }
}

DeliveryFaults::Outcome DeliveryFaults::OnProbeVerdict(
    double time, net::Ipv4 dst, topology::Delivery verdict) {
  AdvanceTimeTo(time);

  Outcome outcome;
  outcome.verdict = verdict;
  if (verdict != topology::Delivery::kDelivered) return outcome;

  // Faults only degrade delivered probes, in a fixed order (drift, then
  // loss, then duplication) so draw sequences are well-defined.  The loss
  // draw is consumed iff the *effective* rate at this step is positive —
  // time-dependent under v2 clauses, but identical for every probe of a
  // step and therefore identical across evaluation modes and shard counts.
  if (any_drift_active_ && drifted_[dst.value() >> 16] != 0) {
    ++drift_filtered_;
    outcome.verdict = topology::Delivery::kIngressFiltered;
    return outcome;
  }
  if (effective_loss_ > 0.0 && NextUnit() < effective_loss_) {
    ++injected_losses_;
    outcome.verdict = topology::Delivery::kNetworkLoss;
    return outcome;
  }
  if (duplication_rate_ > 0.0 && NextUnit() < duplication_rate_) {
    ++injected_duplicates_;
    outcome.duplicate = true;
  }
  return outcome;
}

DeliveryFaults::Outcome DeliveryFaults::ShardProbeVerdict(
    double /*time*/, net::Ipv4 dst, topology::Delivery verdict,
    prng::Xoshiro256& stream) const {
  Outcome outcome;
  outcome.verdict = verdict;
  if (verdict != topology::Delivery::kDelivered) return outcome;

  // Same degrade order as the serial path (drift, loss, duplication); the
  // engine tallies which branch fired and folds via FoldShardTallies.
  if (any_drift_active_ && drifted_[dst.value() >> 16] != 0) {
    outcome.verdict = topology::Delivery::kIngressFiltered;
    return outcome;
  }
  if (effective_loss_ > 0.0 && stream.NextDouble() < effective_loss_) {
    outcome.verdict = topology::Delivery::kNetworkLoss;
    return outcome;
  }
  if (duplication_rate_ > 0.0 && stream.NextDouble() < duplication_rate_) {
    outcome.duplicate = true;
  }
  return outcome;
}

void DeliveryFaults::PublishMetrics() const {
  auto& registry = obs::Registry::Global();
  if (injected_losses_ > 0) {
    registry.GetCounter("fault.delivery.injected_losses")
        .Add(injected_losses_);
  }
  if (injected_duplicates_ > 0) {
    registry.GetCounter("fault.delivery.injected_duplicates")
        .Add(injected_duplicates_);
  }
  if (drift_filtered_ > 0) {
    registry.GetCounter("fault.delivery.drift_filtered").Add(drift_filtered_);
  }
  if (bad_ticks_ > 0) {
    registry.GetCounter("fault.delivery.bursty_bad_ticks").Add(bad_ticks_);
  }
}

}  // namespace hotspots::fault
