// Telescope-side fault application.
//
// Materializes a FaultSchedule's outage windows against a concrete sensor
// fleet: scripted windows match sensors by label ("*" matches every
// sensor), and the staggered-outage config draws one window per sensor
// from the schedule's private stream.  Idempotent per (schedule, fleet):
// applying the same schedule twice yields the same windows.
#pragma once

#include "fault/schedule.h"
#include "telescope/telescope.h"

namespace hotspots::fault {

/// Applies the schedule's outage windows to a built (or buildable)
/// telescope.  Returns the number of sensors that ended up with at least
/// one *normalized* window (zero-length and inverted windows are dropped,
/// overlapping and abutting ones merged — see SensorBlock::
/// SetOutageWindows), so the count always agrees with
/// Telescope::SensorsWithOutages().  Throws std::invalid_argument when a
/// scripted window names a label that matches no sensor — a silently
/// ignored outage would make the experiment lie.
int ApplySensorOutages(const FaultSchedule& schedule,
                       telescope::Telescope& fleet);

}  // namespace hotspots::fault
