#include "fault/inject.h"

#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace hotspots::fault {
namespace {

/// Appends a shared window to every member of a named sensor set.  Throws
/// when a member label matches no sensor — a silently ignored correlated
/// outage would make the experiment lie about its darkness.
void ApplyNamedGroupOutage(
    const GroupOutage& outage, const NamedSensorGroup& group,
    const std::unordered_map<std::string_view, int>& by_label,
    std::vector<std::vector<std::pair<double, double>>>& windows) {
  for (const std::string& label : group.labels) {
    const auto found = by_label.find(label);
    if (found == by_label.end()) {
      throw std::invalid_argument(
          "ApplySensorOutages: group \"" + group.name +
          "\" names unknown sensor \"" + label + "\"");
    }
    windows[static_cast<std::size_t>(found->second)].emplace_back(
        outage.down_at, outage.up_at);
  }
}

}  // namespace

int ApplySensorOutages(const FaultSchedule& schedule,
                       telescope::Telescope& fleet) {
  const int sensors = static_cast<int>(fleet.size());
  std::vector<std::vector<std::pair<double, double>>> windows(
      static_cast<std::size_t>(sensors));

  std::unordered_map<std::string_view, int> by_label;
  by_label.reserve(static_cast<std::size_t>(sensors));
  for (int i = 0; i < sensors; ++i) {
    by_label.emplace(fleet.sensor(i).label(), i);
  }

  for (const OutageWindow& outage : schedule.outages) {
    if (outage.sensor == "*") {
      for (auto& sensor_windows : windows) {
        sensor_windows.emplace_back(outage.down_at, outage.up_at);
      }
      continue;
    }
    const auto found = by_label.find(outage.sensor);
    if (found == by_label.end()) {
      throw std::invalid_argument(
          "ApplySensorOutages: outage names unknown sensor \"" +
          outage.sensor + "\"");
    }
    windows[static_cast<std::size_t>(found->second)].emplace_back(
        outage.down_at, outage.up_at);
  }

  // Correlated scripted outages: one window shared by a whole fleet slice,
  // keyed by prefix containment or a named sensor set.
  for (const GroupOutage& outage : schedule.group_outages) {
    if (!outage.group.empty()) {
      const NamedSensorGroup* group = nullptr;
      for (const NamedSensorGroup& candidate : schedule.groups) {
        if (candidate.name == outage.group) {
          group = &candidate;
          break;
        }
      }
      if (group == nullptr) {
        throw std::invalid_argument(
            "ApplySensorOutages: groupoutage names undefined group \"@" +
            outage.group + "\"");
      }
      ApplyNamedGroupOutage(outage, *group, by_label, windows);
      continue;
    }
    int matched = 0;
    for (int i = 0; i < sensors; ++i) {
      if (!outage.block.Contains(fleet.sensor(i).block())) continue;
      windows[static_cast<std::size_t>(i)].emplace_back(outage.down_at,
                                                        outage.up_at);
      ++matched;
    }
    if (matched == 0) {
      throw std::invalid_argument(
          "ApplySensorOutages: groupoutage block " + outage.block.ToString() +
          " contains no sensor");
    }
  }

  if (schedule.staggered.down_fraction > 0.0 &&
      schedule.staggered.horizon > 0.0) {
    std::vector<std::string> labels;
    labels.reserve(static_cast<std::size_t>(sensors));
    for (int i = 0; i < sensors; ++i) {
      labels.push_back(fleet.sensor(i).label());
    }
    // StaggeredOutages draws one window per label *in label order*, so
    // window i belongs to sensor i by position.  Mapping back through the
    // label table instead would send every window of a duplicated label to
    // the first sensor carrying it.
    const std::vector<OutageWindow> staggered =
        StaggeredOutages(labels, schedule.staggered.horizon,
                         schedule.staggered.down_fraction, schedule.seed);
    for (std::size_t i = 0; i < staggered.size(); ++i) {
      windows[i].emplace_back(staggered[i].down_at, staggered[i].up_at);
    }
  }

  if (schedule.group_staggered.prefix_bits > 0 &&
      schedule.group_staggered.down_fraction > 0.0 &&
      schedule.group_staggered.horizon > 0.0) {
    // Group key = the top `prefix_bits` bits of the sensor block's base:
    // every sensor of a /8 (bits = 8) shares one window, so a scheduled
    // event darkens a correlated fleet slice at the same per-sensor
    // down-time as the uniform `outages:` stagger.
    const int shift = 32 - schedule.group_staggered.prefix_bits;
    std::vector<std::uint32_t> keys;
    keys.reserve(static_cast<std::size_t>(sensors));
    for (int i = 0; i < sensors; ++i) {
      keys.push_back(fleet.sensor(i).block().first().value() >> shift);
    }
    const std::vector<OutageWindow> staggered = GroupStaggeredOutages(
        keys, schedule.group_staggered.horizon,
        schedule.group_staggered.down_fraction, schedule.seed);
    for (std::size_t i = 0; i < staggered.size(); ++i) {
      windows[i].emplace_back(staggered[i].down_at, staggered[i].up_at);
    }
  }

  int affected = 0;
  for (int i = 0; i < sensors; ++i) {
    auto& sensor_windows = windows[static_cast<std::size_t>(i)];
    if (sensor_windows.empty()) continue;
    fleet.SetSensorOutages(i, std::move(sensor_windows));
    // Count what *survived normalization*: SetOutageWindows drops
    // zero-length/inverted windows and merges overlaps, so a sensor whose
    // windows all normalize away is not affected — keep this tally in
    // agreement with has_outages() and SensorsWithOutages().
    if (fleet.sensor(i).has_outages()) ++affected;
  }
  return affected;
}

}  // namespace hotspots::fault
