#include "fault/inject.h"

#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace hotspots::fault {

int ApplySensorOutages(const FaultSchedule& schedule,
                       telescope::Telescope& fleet) {
  const int sensors = static_cast<int>(fleet.size());
  std::vector<std::vector<std::pair<double, double>>> windows(
      static_cast<std::size_t>(sensors));

  std::unordered_map<std::string_view, int> by_label;
  by_label.reserve(static_cast<std::size_t>(sensors));
  for (int i = 0; i < sensors; ++i) {
    by_label.emplace(fleet.sensor(i).label(), i);
  }

  for (const OutageWindow& outage : schedule.outages) {
    if (outage.sensor == "*") {
      for (auto& sensor_windows : windows) {
        sensor_windows.emplace_back(outage.down_at, outage.up_at);
      }
      continue;
    }
    const auto found = by_label.find(outage.sensor);
    if (found == by_label.end()) {
      throw std::invalid_argument(
          "ApplySensorOutages: outage names unknown sensor \"" +
          outage.sensor + "\"");
    }
    windows[static_cast<std::size_t>(found->second)].emplace_back(
        outage.down_at, outage.up_at);
  }

  if (schedule.staggered.down_fraction > 0.0 &&
      schedule.staggered.horizon > 0.0) {
    std::vector<std::string> labels;
    labels.reserve(static_cast<std::size_t>(sensors));
    for (int i = 0; i < sensors; ++i) {
      labels.push_back(fleet.sensor(i).label());
    }
    // StaggeredOutages draws one window per label *in label order*, so
    // window i belongs to sensor i by position.  Mapping back through the
    // label table instead would send every window of a duplicated label to
    // the first sensor carrying it.
    const std::vector<OutageWindow> staggered =
        StaggeredOutages(labels, schedule.staggered.horizon,
                         schedule.staggered.down_fraction, schedule.seed);
    for (std::size_t i = 0; i < staggered.size(); ++i) {
      windows[i].emplace_back(staggered[i].down_at, staggered[i].up_at);
    }
  }

  int affected = 0;
  for (int i = 0; i < sensors; ++i) {
    auto& sensor_windows = windows[static_cast<std::size_t>(i)];
    if (sensor_windows.empty()) continue;
    fleet.SetSensorOutages(i, std::move(sensor_windows));
    // Count what *survived normalization*: SetOutageWindows drops
    // zero-length/inverted windows and merges overlaps, so a sensor whose
    // windows all normalize away is not affected — keep this tally in
    // agreement with has_outages() and SensorsWithOutages().
    if (fleet.sensor(i).has_outages()) ++affected;
  }
  return affected;
}

}  // namespace hotspots::fault
