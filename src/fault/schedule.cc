#include "fault/schedule.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string_view>

#include "prng/splitmix.h"

namespace hotspots::fault {
namespace {

/// Maps a 64-bit draw to a double in [0, 1).
double UnitDouble(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

std::vector<std::string_view> Split(std::string_view text, char separator) {
  std::vector<std::string_view> parts;
  while (true) {
    const std::size_t at = text.find(separator);
    if (at == std::string_view::npos) {
      parts.push_back(text);
      return parts;
    }
    parts.push_back(text.substr(0, at));
    text.remove_prefix(at + 1);
  }
}

[[noreturn]] void BadDirective(std::string_view directive,
                               const std::string& why) {
  throw std::invalid_argument("fault spec (" + std::string(kFaultSchema) +
                              "): bad directive \"" + std::string(directive) +
                              "\": " + why);
}

double ParseDouble(std::string_view text, std::string_view directive) {
  if (text == "inf") return std::numeric_limits<double>::infinity();
  char* end = nullptr;
  const std::string owned{text};
  const double value = std::strtod(owned.c_str(), &end);
  if (owned.empty() || end != owned.c_str() + owned.size()) {
    BadDirective(directive, "expected a number, got \"" + owned + "\"");
  }
  return value;
}

double ParseProbability(std::string_view text, std::string_view directive) {
  const double p = ParseDouble(text, directive);
  if (!(p >= 0.0 && p <= 1.0)) {
    BadDirective(directive, "probability outside [0, 1]");
  }
  return p;
}

std::uint64_t ParseU64(std::string_view text, std::string_view directive) {
  const std::string owned{text};
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(owned.c_str(), &end, 0);
  if (owned.empty() || end != owned.c_str() + owned.size()) {
    BadDirective(directive, "expected an integer, got \"" + owned + "\"");
  }
  return value;
}

}  // namespace

bool FaultSchedule::empty() const {
  return outages.empty() && staggered.down_fraction == 0.0 &&
         !HasDeliveryFaults() && trials.failure_rate == 0.0;
}

bool FaultSchedule::HasDeliveryFaults() const {
  return delivery.loss_rate > 0.0 || delivery.duplication_rate > 0.0 ||
         !acl_drift.empty();
}

FaultSchedule ParseFaultSpec(const std::string& spec) {
  FaultSchedule schedule;
  for (std::string_view directive : Split(spec, ';')) {
    if (directive.empty()) continue;  // Tolerates "a;;b" and trailing ';'.
    const std::size_t colon = directive.find(':');
    if (colon == std::string_view::npos) {
      BadDirective(directive, "missing ':'");
    }
    const std::string_view verb = directive.substr(0, colon);
    const std::string_view rest = directive.substr(colon + 1);
    if (verb == "seed") {
      schedule.seed = ParseU64(rest, directive);
    } else if (verb == "outage") {
      const auto parts = Split(rest, ':');
      if (parts.size() != 3 || parts[0].empty()) {
        BadDirective(directive, "want outage:<label>:<down>:<up>");
      }
      OutageWindow window;
      window.sensor = std::string(parts[0]);
      window.down_at = ParseDouble(parts[1], directive);
      window.up_at = ParseDouble(parts[2], directive);
      if (!(window.up_at > window.down_at)) {
        BadDirective(directive, "window must satisfy down < up");
      }
      schedule.outages.push_back(std::move(window));
    } else if (verb == "outages") {
      const auto parts = Split(rest, ':');
      if (parts.size() != 2) {
        BadDirective(directive, "want outages:<fraction>:<horizon>");
      }
      schedule.staggered.down_fraction = ParseProbability(parts[0], directive);
      schedule.staggered.horizon = ParseDouble(parts[1], directive);
      if (!(schedule.staggered.horizon > 0.0)) {
        BadDirective(directive, "horizon must be positive");
      }
    } else if (verb == "loss") {
      schedule.delivery.loss_rate = ParseProbability(rest, directive);
    } else if (verb == "dup") {
      schedule.delivery.duplication_rate = ParseProbability(rest, directive);
    } else if (verb == "acl") {
      const std::size_t at_sign = rest.find('@');
      if (at_sign == std::string_view::npos) {
        BadDirective(directive, "want acl:<cidr>@<t>");
      }
      const auto block = net::Prefix::Parse(rest.substr(0, at_sign));
      if (!block) {
        BadDirective(directive, "unparseable CIDR block");
      }
      if (block->length() > 16) {
        BadDirective(directive,
                     "ACL drift operates on /16 or shorter blocks");
      }
      AclDriftEvent event;
      event.block = *block;
      event.at = ParseDouble(rest.substr(at_sign + 1), directive);
      schedule.acl_drift.push_back(event);
    } else if (verb == "trialfail") {
      schedule.trials.failure_rate = ParseProbability(rest, directive);
    } else {
      BadDirective(directive, "unknown verb");
    }
  }
  std::sort(schedule.acl_drift.begin(), schedule.acl_drift.end(),
            [](const AclDriftEvent& a, const AclDriftEvent& b) {
              return a.at < b.at;
            });
  return schedule;
}

std::vector<OutageWindow> StaggeredOutages(
    const std::vector<std::string>& labels, double horizon,
    double down_fraction, std::uint64_t seed) {
  std::vector<OutageWindow> windows;
  if (down_fraction <= 0.0 || horizon <= 0.0) return windows;
  const double length = std::min(down_fraction, 1.0) * horizon;
  prng::SplitMix64 stream{seed};
  windows.reserve(labels.size());
  for (const std::string& label : labels) {
    const double start = UnitDouble(stream.Next()) * (horizon - length);
    windows.push_back(OutageWindow{label, start, start + length});
  }
  return windows;
}

bool ShouldKillTrial(const FaultSchedule& schedule, int trial,
                     std::uint64_t trial_seed) {
  const double rate = schedule.trials.failure_rate;
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  // Pure function of (schedule seed, trial, attempt seed): retries see a
  // fresh draw because TrialAttemptSeed changes per attempt, while the same
  // (seed, schedule) pair replays the same kills on any thread count.
  const std::uint64_t bits = prng::Mix64(
      schedule.seed ^ prng::Mix64(trial_seed + static_cast<unsigned>(trial)));
  return UnitDouble(bits) < rate;
}

void MaybeKillTrial(const FaultSchedule& schedule, int trial,
                    std::uint64_t trial_seed) {
  if (ShouldKillTrial(schedule, trial, trial_seed)) {
    throw TrialKilled("fault-injected trial failure (trial " +
                      std::to_string(trial) + ", schedule " +
                      std::string(kFaultSchema) + ")");
  }
}

}  // namespace hotspots::fault
