#include "fault/schedule.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <string_view>

#include "prng/splitmix.h"

namespace hotspots::fault {
namespace {

/// Domain separator for the correlated-outage sub-stream: group windows
/// must not share draws with the per-sensor staggered stream, or adding a
/// `groupoutages:` clause would silently reshuffle `outages:` windows.
constexpr std::uint64_t kGroupStaggerSalt = 0x6707A6E5A17ull;

/// Maps a 64-bit draw to a double in [0, 1).
double UnitDouble(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

std::vector<std::string_view> Split(std::string_view text, char separator) {
  std::vector<std::string_view> parts;
  while (true) {
    const std::size_t at = text.find(separator);
    if (at == std::string_view::npos) {
      parts.push_back(text);
      return parts;
    }
    parts.push_back(text.substr(0, at));
    text.remove_prefix(at + 1);
  }
}

/// Diagnostics carry the offending token *and* its byte offset in the
/// original spec string, so a bad clause deep inside a long --faults
/// argument is findable without bisecting the spec by hand.
[[noreturn]] void BadToken(std::string_view token, std::size_t offset,
                           const std::string& why) {
  throw std::invalid_argument("fault spec (" + std::string(kFaultSchema) +
                              "): bad directive \"" + std::string(token) +
                              "\" at byte " + std::to_string(offset) + ": " +
                              why);
}

double ParseDouble(std::string_view text, std::string_view directive,
                   std::size_t offset) {
  if (text == "inf") return std::numeric_limits<double>::infinity();
  char* end = nullptr;
  const std::string owned{text};
  const double value = std::strtod(owned.c_str(), &end);
  if (owned.empty() || end != owned.c_str() + owned.size()) {
    BadToken(directive, offset, "expected a number, got \"" + owned + "\"");
  }
  return value;
}

double ParseProbability(std::string_view text, std::string_view directive,
                        std::size_t offset) {
  const double p = ParseDouble(text, directive, offset);
  if (!(p >= 0.0 && p <= 1.0)) {
    BadToken(directive, offset, "probability outside [0, 1]");
  }
  return p;
}

std::uint64_t ParseU64(std::string_view text, std::string_view directive,
                       std::size_t offset) {
  const std::string owned{text};
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(owned.c_str(), &end, 0);
  if (owned.empty() || end != owned.c_str() + owned.size()) {
    BadToken(directive, offset, "expected an integer, got \"" + owned + "\"");
  }
  return value;
}

}  // namespace

double LossProfile::LossAt(double time) const {
  if (points.empty()) return 0.0;
  double local = time;
  if (period > 0.0) {
    local = std::fmod(time, period);
    if (local < 0.0) local += period;
  }
  // Knots are sorted with the first at t = 0, so the scan always lands.
  double loss = points.front().loss;
  for (const LossProfilePoint& point : points) {
    if (point.at > local) break;
    loss = point.loss;
  }
  return loss;
}

bool FaultSchedule::empty() const {
  return outages.empty() && staggered.down_fraction == 0.0 &&
         !HasDeliveryFaults() && trials.failure_rate == 0.0 &&
         group_outages.empty() && group_staggered.prefix_bits == 0 &&
         !alert_delay.Active();
}

bool FaultSchedule::HasDeliveryFaults() const {
  return delivery.loss_rate > 0.0 || delivery.duplication_rate > 0.0 ||
         !acl_drift.empty() || gilbert.Active() || loss_profile.Active();
}

FaultSchedule ParseFaultSpec(const std::string& spec) {
  FaultSchedule schedule;
  const std::string_view text{spec};
  // Scalar directives may appear once; a silent last-wins overwrite turns
  // a typo'd experiment into a different experiment.
  std::map<std::string, std::size_t> seen_scalar;
  const auto require_unseen = [&](std::string_view verb,
                                  std::string_view directive,
                                  std::size_t offset) {
    const auto [it, inserted] = seen_scalar.emplace(std::string(verb), offset);
    if (!inserted) {
      BadToken(directive, offset,
               "duplicate \"" + std::string(verb) + "\" directive (first at byte " +
                   std::to_string(it->second) + ")");
    }
  };

  std::size_t cursor = 0;
  while (cursor <= text.size()) {
    const std::size_t semi = text.find(';', cursor);
    const std::size_t end = semi == std::string_view::npos ? text.size() : semi;
    const std::string_view directive = text.substr(cursor, end - cursor);
    const std::size_t offset = cursor;
    cursor = end + 1;
    if (directive.empty()) continue;  // Tolerates "a;;b" and trailing ';'.

    const std::size_t colon = directive.find(':');
    if (colon == std::string_view::npos) {
      BadToken(directive, offset, "missing ':'");
    }
    const std::string_view verb = directive.substr(0, colon);
    const std::string_view rest = directive.substr(colon + 1);
    if (verb == "seed") {
      require_unseen(verb, directive, offset);
      schedule.seed = ParseU64(rest, directive, offset);
    } else if (verb == "outage") {
      const auto parts = Split(rest, ':');
      if (parts.size() != 3 || parts[0].empty()) {
        BadToken(directive, offset, "want outage:<label>:<down>:<up>");
      }
      OutageWindow window;
      window.sensor = std::string(parts[0]);
      window.down_at = ParseDouble(parts[1], directive, offset);
      window.up_at = ParseDouble(parts[2], directive, offset);
      if (!(window.up_at > window.down_at)) {
        BadToken(directive, offset, "window must satisfy down < up");
      }
      schedule.outages.push_back(std::move(window));
    } else if (verb == "outages") {
      require_unseen(verb, directive, offset);
      const auto parts = Split(rest, ':');
      if (parts.size() != 2) {
        BadToken(directive, offset, "want outages:<fraction>:<horizon>");
      }
      schedule.staggered.down_fraction =
          ParseProbability(parts[0], directive, offset);
      schedule.staggered.horizon = ParseDouble(parts[1], directive, offset);
      if (!(schedule.staggered.horizon > 0.0)) {
        BadToken(directive, offset, "horizon must be positive");
      }
    } else if (verb == "loss") {
      require_unseen(verb, directive, offset);
      schedule.delivery.loss_rate = ParseProbability(rest, directive, offset);
    } else if (verb == "dup") {
      require_unseen(verb, directive, offset);
      schedule.delivery.duplication_rate =
          ParseProbability(rest, directive, offset);
    } else if (verb == "acl") {
      const std::size_t at_sign = rest.find('@');
      if (at_sign == std::string_view::npos) {
        BadToken(directive, offset, "want acl:<cidr>@<t>");
      }
      const auto block = net::Prefix::Parse(rest.substr(0, at_sign));
      if (!block) {
        BadToken(directive, offset, "unparseable CIDR block");
      }
      if (block->length() > 16) {
        BadToken(directive, offset,
                 "ACL drift operates on /16 or shorter blocks");
      }
      AclDriftEvent event;
      event.block = *block;
      event.at = ParseDouble(rest.substr(at_sign + 1), directive, offset);
      schedule.acl_drift.push_back(event);
    } else if (verb == "trialfail") {
      require_unseen(verb, directive, offset);
      schedule.trials.failure_rate =
          ParseProbability(rest, directive, offset);
    } else if (verb == "group") {
      const std::size_t equals = rest.find('=');
      if (equals == std::string_view::npos || equals == 0) {
        BadToken(directive, offset, "want group:<name>=<label>,<label>,...");
      }
      NamedSensorGroup group;
      group.name = std::string(rest.substr(0, equals));
      for (const NamedSensorGroup& existing : schedule.groups) {
        if (existing.name == group.name) {
          BadToken(directive, offset,
                   "duplicate group name \"" + group.name + "\"");
        }
      }
      for (std::string_view label : Split(rest.substr(equals + 1), ',')) {
        if (label.empty()) {
          BadToken(directive, offset, "empty label in group member list");
        }
        group.labels.emplace_back(label);
      }
      schedule.groups.push_back(std::move(group));
    } else if (verb == "groupoutage") {
      const auto parts = Split(rest, ':');
      if (parts.size() != 3 || parts[0].empty()) {
        BadToken(directive, offset,
                 "want groupoutage:<cidr>|@<name>:<down>:<up>");
      }
      GroupOutage outage;
      if (parts[0].front() == '@') {
        outage.group = std::string(parts[0].substr(1));
        if (outage.group.empty()) {
          BadToken(directive, offset, "empty group name after '@'");
        }
      } else {
        const auto block = net::Prefix::Parse(parts[0]);
        if (!block) {
          BadToken(directive, offset, "unparseable CIDR group key");
        }
        outage.block = *block;
      }
      outage.down_at = ParseDouble(parts[1], directive, offset);
      outage.up_at = ParseDouble(parts[2], directive, offset);
      if (!(outage.up_at > outage.down_at)) {
        BadToken(directive, offset, "window must satisfy down < up");
      }
      schedule.group_outages.push_back(std::move(outage));
    } else if (verb == "groupoutages") {
      require_unseen(verb, directive, offset);
      const auto parts = Split(rest, ':');
      if (parts.size() != 3) {
        BadToken(directive, offset,
                 "want groupoutages:<bits>:<fraction>:<horizon>");
      }
      const std::uint64_t bits = ParseU64(parts[0], directive, offset);
      if (bits < 1 || bits > 32) {
        BadToken(directive, offset, "prefix bits must be in [1, 32]");
      }
      schedule.group_staggered.prefix_bits = static_cast<int>(bits);
      schedule.group_staggered.down_fraction =
          ParseProbability(parts[1], directive, offset);
      schedule.group_staggered.horizon =
          ParseDouble(parts[2], directive, offset);
      if (!(schedule.group_staggered.horizon > 0.0)) {
        BadToken(directive, offset, "horizon must be positive");
      }
    } else if (verb == "gilbert") {
      require_unseen(verb, directive, offset);
      const auto parts = Split(rest, ':');
      if (parts.size() != 4 && parts.size() != 5) {
        BadToken(directive, offset,
                 "want gilbert:<good>:<bad>:<enter>:<exit>[:<tick>]");
      }
      schedule.gilbert.good_loss =
          ParseProbability(parts[0], directive, offset);
      schedule.gilbert.bad_loss = ParseProbability(parts[1], directive, offset);
      schedule.gilbert.enter_bad =
          ParseProbability(parts[2], directive, offset);
      schedule.gilbert.exit_bad = ParseProbability(parts[3], directive, offset);
      if (parts.size() == 5) {
        schedule.gilbert.tick_seconds =
            ParseDouble(parts[4], directive, offset);
        if (!(schedule.gilbert.tick_seconds > 0.0)) {
          BadToken(directive, offset, "tick must be positive");
        }
      }
    } else if (verb == "profile") {
      require_unseen(verb, directive, offset);
      std::string_view body = rest;
      const std::size_t at_sign = body.rfind('@');
      if (at_sign != std::string_view::npos) {
        schedule.loss_profile.period =
            ParseDouble(body.substr(at_sign + 1), directive, offset);
        if (!(schedule.loss_profile.period > 0.0)) {
          BadToken(directive, offset, "period must be positive");
        }
        body = body.substr(0, at_sign);
      }
      for (std::string_view knot : Split(body, ',')) {
        const std::size_t equals = knot.find('=');
        if (equals == std::string_view::npos) {
          BadToken(directive, offset,
                   "want profile:<t0>=<p0>,<t1>=<p1>,...[@<period>]");
        }
        LossProfilePoint point;
        point.at = ParseDouble(knot.substr(0, equals), directive, offset);
        point.loss =
            ParseProbability(knot.substr(equals + 1), directive, offset);
        if (!schedule.loss_profile.points.empty() &&
            !(point.at > schedule.loss_profile.points.back().at)) {
          BadToken(directive, offset, "knot times must strictly increase");
        }
        schedule.loss_profile.points.push_back(point);
      }
      if (schedule.loss_profile.points.empty() ||
          schedule.loss_profile.points.front().at != 0.0) {
        BadToken(directive, offset, "first knot must be at t=0");
      }
      if (schedule.loss_profile.period > 0.0 &&
          schedule.loss_profile.period <=
              schedule.loss_profile.points.back().at) {
        BadToken(directive, offset, "period must exceed the last knot time");
      }
    } else if (verb == "alertdelay") {
      require_unseen(verb, directive, offset);
      const auto parts = Split(rest, ':');
      if (parts.size() != 2) {
        BadToken(directive, offset, "want alertdelay:<min>:<max>");
      }
      schedule.alert_delay.min_delay =
          ParseDouble(parts[0], directive, offset);
      schedule.alert_delay.max_delay =
          ParseDouble(parts[1], directive, offset);
      if (!(schedule.alert_delay.min_delay >= 0.0) ||
          !(schedule.alert_delay.max_delay >=
            schedule.alert_delay.min_delay) ||
          !std::isfinite(schedule.alert_delay.max_delay)) {
        BadToken(directive, offset,
                 "want 0 <= min <= max with finite max (bounded delay)");
      }
    } else {
      BadToken(directive, offset, "unknown verb");
    }
  }
  std::sort(schedule.acl_drift.begin(), schedule.acl_drift.end(),
            [](const AclDriftEvent& a, const AclDriftEvent& b) {
              return a.at < b.at;
            });
  return schedule;
}

std::vector<OutageWindow> StaggeredOutages(
    const std::vector<std::string>& labels, double horizon,
    double down_fraction, std::uint64_t seed) {
  std::vector<OutageWindow> windows;
  if (down_fraction <= 0.0 || horizon <= 0.0) return windows;
  const double length = std::min(down_fraction, 1.0) * horizon;
  prng::SplitMix64 stream{seed};
  windows.reserve(labels.size());
  for (const std::string& label : labels) {
    const double start = UnitDouble(stream.Next()) * (horizon - length);
    windows.push_back(OutageWindow{label, start, start + length});
  }
  return windows;
}

std::vector<OutageWindow> GroupStaggeredOutages(
    const std::vector<std::uint32_t>& group_keys, double horizon,
    double down_fraction, std::uint64_t seed) {
  std::vector<OutageWindow> windows;
  if (down_fraction <= 0.0 || horizon <= 0.0) return windows;
  const double length = std::min(down_fraction, 1.0) * horizon;

  // One draw per *distinct* key, in ascending key order: the window a
  // group gets depends only on (key, seed), never on fleet size, sensor
  // order, or how many sensors share the group.
  std::vector<std::uint32_t> distinct = group_keys;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  prng::SplitMix64 stream{prng::Mix64(seed ^ kGroupStaggerSalt)};
  std::map<std::uint32_t, std::pair<double, double>> window_by_key;
  for (const std::uint32_t key : distinct) {
    const double start = UnitDouble(stream.Next()) * (horizon - length);
    window_by_key.emplace(key, std::make_pair(start, start + length));
  }

  windows.reserve(group_keys.size());
  for (const std::uint32_t key : group_keys) {
    const auto& [down, up] = window_by_key.at(key);
    windows.push_back(OutageWindow{std::string{}, down, up});
  }
  return windows;
}

bool ShouldKillTrial(const FaultSchedule& schedule, int trial,
                     std::uint64_t trial_seed) {
  const double rate = schedule.trials.failure_rate;
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  // Pure function of (schedule seed, trial, attempt seed): retries see a
  // fresh draw because TrialAttemptSeed changes per attempt, while the same
  // (seed, schedule) pair replays the same kills on any thread count.
  const std::uint64_t bits = prng::Mix64(
      schedule.seed ^ prng::Mix64(trial_seed + static_cast<unsigned>(trial)));
  return UnitDouble(bits) < rate;
}

void MaybeKillTrial(const FaultSchedule& schedule, int trial,
                    std::uint64_t trial_seed) {
  if (ShouldKillTrial(schedule, trial, trial_seed)) {
    throw TrialKilled("fault-injected trial failure (trial " +
                      std::to_string(trial) + ", schedule " +
                      std::string(kFaultSchema) + ")");
  }
}

}  // namespace hotspots::fault
