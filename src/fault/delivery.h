// Delivery-fault injector (sim::DeliveryFaultHook implementation).
//
// Layers a FaultSchedule's probabilistic loss/duplication and scripted
// ACL-drift events on top of the verdicts the table-driven
// topology::Reachability::Decide already produced — the classification
// table itself is never touched, so the fault-free hot path keeps its
// single-indexed-load cost and fault-free runs stay bit-identical.
//
// RNG isolation: no draw ever consults the engine RNG, so identical
// (engine seed, schedule) pairs replay identical fault decisions.  The
// injector supports both hook evaluation modes:
//
//  * Serial OnProbeVerdict draws from a private SplitMix64 stream seeded
//    from Mix64(schedule seed, engine seed) at OnRunStart (legacy path;
//    still used by callers that drive the hook directly).
//  * Sharded ShardProbeVerdict (the engine's default) is a const pure
//    function drawing from an engine-owned per-scanner stream whose seed
//    mixes in ShardStreamSalt() = the same Mix64(schedule, engine) value.
//    Per-scanner streams make the draw sequence independent of the shard
//    partition, so faulted fingerprints are bit-identical at any shard
//    count (a per-(shard, step) stream would not be: the engine adapts its
//    shard split to the step's probe volume).
//
// ACL drift is modelled at /16 granularity (the same granularity as the
// reachability table): when a drift event's time arrives, every /16 the
// block touches flips to ingress-filtered for delivered probes.  Events
// are applied with a monotone time cursor — serially inside OnProbeVerdict,
// or from the engine's serial BeginStep in sharded mode — so the per-probe
// cost while no event is pending is one comparison.
//
// Bursty and diurnal loss (v2): a Gilbert–Elliott channel and a piecewise
// loss profile compose with the flat loss rate into one effective per-step
// Bernoulli rate, 1 - (1-flat)(1-channel(t))(1-profile(t)).  Channel state
// advances only on the same serial time cursor (one transition draw per
// tick, from a salted sub-stream), so the state — and therefore the
// effective rate — is a pure function of time: per-probe draws stay on the
// per-scanner streams and fingerprints stay shard-count-invariant.  When
// neither v2 clause is present the effective rate *is* the flat rate (no
// recomposition), so v1 schedules reproduce their draws bit-for-bit.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "fault/schedule.h"
#include "prng/splitmix.h"
#include "prng/xoshiro.h"
#include "sim/fault_hook.h"

namespace hotspots::fault {

class DeliveryFaults : public sim::DeliveryFaultHook {
 public:
  explicit DeliveryFaults(const FaultSchedule& schedule);

  /// Re-arms the private stream for a run: stream seed is
  /// Mix64(schedule seed ^ Mix64(engine seed)); drift cursor and counters
  /// reset so one injector can serve many runs.
  void OnRunStart(std::uint64_t engine_seed) override;

  [[nodiscard]] Outcome OnProbeVerdict(double time, net::Ipv4 dst,
                                       topology::Delivery verdict) override;

  // -- Sharded evaluation (see sim/fault_hook.h) -------------------------
  [[nodiscard]] bool SupportsShardedVerdicts() const override { return true; }
  [[nodiscard]] std::uint64_t ShardStreamSalt() const override {
    return stream_salt_;
  }
  void BeginStep(double time) override { AdvanceTimeTo(time); }
  [[nodiscard]] Outcome ShardProbeVerdict(
      double time, net::Ipv4 dst, topology::Delivery verdict,
      prng::Xoshiro256& stream) const override;
  void FoldShardTallies(std::uint64_t drift_filtered,
                        std::uint64_t injected_losses,
                        std::uint64_t injected_duplicates) override {
    drift_filtered_ += drift_filtered;
    injected_losses_ += injected_losses;
    injected_duplicates_ += injected_duplicates;
  }

  // -- Accounting (since the last OnRunStart) ----------------------------
  [[nodiscard]] std::uint64_t injected_losses() const {
    return injected_losses_;
  }
  [[nodiscard]] std::uint64_t injected_duplicates() const {
    return injected_duplicates_;
  }
  [[nodiscard]] std::uint64_t drift_filtered() const {
    return drift_filtered_;
  }
  /// Gilbert–Elliott ticks spent in the bad (burst) state so far.
  [[nodiscard]] std::uint64_t bursty_bad_ticks() const {
    return bad_ticks_;
  }
  /// The composed per-probe loss rate at the current time cursor.
  [[nodiscard]] double effective_loss_rate() const { return effective_loss_; }

  /// Folds the counters into the global registry ("fault.delivery.*").
  void PublishMetrics() const;

 private:
  [[nodiscard]] double NextUnit() {
    return static_cast<double>(stream_.Next() >> 11) * 0x1.0p-53;
  }

  /// Flips the /16 bitmap for every drift event due by `time` (monotone
  /// cursor; serial caller only).
  void ActivateDriftsDueBy(double time);
  /// Advances every time-indexed layer (drift bitmap, Gilbert–Elliott
  /// ticks, diurnal profile) to `time` and recomposes the effective loss
  /// rate.  Monotone cursor; serial caller only (BeginStep in sharded
  /// mode, OnProbeVerdict itself in serial mode).
  void AdvanceTimeTo(double time);
  /// Recomposes effective_loss_ from the flat rate and the time-varying
  /// layers.  Exact passthrough when no v2 clause is active.
  void RecomposeEffectiveLoss(double time);

  double loss_rate_;
  double duplication_rate_;
  std::vector<AclDriftEvent> drift_events_;  ///< Sorted by activation time.
  GilbertElliottConfig gilbert_;
  LossProfile profile_;
  std::uint64_t schedule_seed_;
  prng::SplitMix64 stream_;
  std::uint64_t stream_salt_ = 0;  ///< Mix64(schedule ^ Mix64(engine seed)).

  /// Gilbert–Elliott channel state (serial cursor only).  Transition
  /// draws come from a salted private sub-stream — one draw per tick in
  /// either state — so the state sequence is a pure function of
  /// (stream salt, tick index) and never perturbs per-probe draws.
  prng::SplitMix64 gilbert_stream_{0};
  std::uint64_t gilbert_ticks_ = 0;
  bool gilbert_bad_ = false;
  std::uint64_t bad_ticks_ = 0;
  /// Composed per-probe loss rate at the current time cursor.  With no v2
  /// clause active this is loss_rate_ *exactly* (assigned, not recomposed
  /// through 1-(1-p)), preserving v1 draw thresholds bit-for-bit.
  double effective_loss_ = 0.0;
  bool time_varying_loss_ = false;  ///< Any GE/profile clause active.
  double cursor_time_ = 0.0;  ///< Last time the effective rate was composed.

  /// /16s currently ingress-filtered by drift; bitmap mirrors the
  /// reachability table's indexing (dst >> 16).
  std::array<std::uint8_t, 65536> drifted_{};
  std::size_t drift_cursor_ = 0;
  bool any_drift_active_ = false;

  std::uint64_t injected_losses_ = 0;
  std::uint64_t injected_duplicates_ = 0;
  std::uint64_t drift_filtered_ = 0;
};

}  // namespace hotspots::fault
