#include "sim/study.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace_span.h"
#include "prng/splitmix.h"

namespace hotspots::sim {

double StudyTelemetry::MeanTrialSeconds() const {
  return trial_wall_seconds.empty()
             ? 0.0
             : TotalTrialSeconds() /
                   static_cast<double>(trial_wall_seconds.size());
}

double StudyTelemetry::TotalTrialSeconds() const {
  double total = 0.0;
  for (const double seconds : trial_wall_seconds) total += seconds;
  return total;
}

SummaryStats StudyTelemetry::TrialLatencyStats() const {
  return Summarize(trial_wall_seconds, {0.5, 0.95});
}

SummaryStats StudyTelemetry::QueueWaitStats() const {
  return Summarize(trial_queue_wait_seconds, {0.5, 0.95});
}

const StudySegment* StudyTelemetry::SegmentOf(int trial) const {
  for (const StudySegment& segment : segments) {
    if (trial >= segment.trial_offset &&
        trial < segment.trial_offset + segment.trials) {
      return &segment;
    }
  }
  return nullptr;
}

namespace {

/// Pads the fault-accounting vectors to `trials` entries (defaults: one
/// attempt, not quarantined) so telemetry assembled before this PR — or by
/// hand in tests — merges cleanly with telemetry that carries them.
void NormalizeFaultVectors(StudyTelemetry& telemetry) {
  telemetry.trial_attempts.resize(
      static_cast<std::size_t>(std::max(telemetry.trials, 0)), 1);
  telemetry.trial_quarantined.resize(
      static_cast<std::size_t>(std::max(telemetry.trials, 0)), 0);
}

}  // namespace

void StudyTelemetry::Merge(const StudyTelemetry& other) {
  NormalizeFaultVectors(*this);
  // Shift the incoming segments past our trials *before* the trial count
  // grows, so merged indices keep pointing at the right sweep point.
  const int offset = trials;
  for (const StudySegment& segment : other.segments) {
    segments.push_back(StudySegment{segment.label,
                                    segment.trial_offset + offset,
                                    segment.trials, segment.lost_trials});
  }
  trials += other.trials;
  threads_used = std::max(threads_used, other.threads_used);
  peak_concurrent_trials =
      std::max(peak_concurrent_trials, other.peak_concurrent_trials);
  wall_seconds += other.wall_seconds;
  trial_wall_seconds.insert(trial_wall_seconds.end(),
                            other.trial_wall_seconds.begin(),
                            other.trial_wall_seconds.end());
  trial_queue_wait_seconds.insert(trial_queue_wait_seconds.end(),
                                  other.trial_queue_wait_seconds.begin(),
                                  other.trial_queue_wait_seconds.end());
  trial_attempts.insert(trial_attempts.end(), other.trial_attempts.begin(),
                        other.trial_attempts.end());
  trial_quarantined.insert(trial_quarantined.end(),
                           other.trial_quarantined.begin(),
                           other.trial_quarantined.end());
  NormalizeFaultVectors(*this);  // Pads a hand-built `other`'s entries.
  quarantined_trials += other.quarantined_trials;
  retries += other.retries;
  failure_messages.insert(failure_messages.end(),
                          other.failure_messages.begin(),
                          other.failure_messages.end());
}

std::vector<std::uint64_t> TrialSeeds(std::uint64_t master_seed, int count) {
  if (count < 0) throw std::invalid_argument("TrialSeeds: count < 0");
  prng::SplitMix64 stream{master_seed};
  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(count));
  for (std::uint64_t& seed : seeds) seed = stream.Next();
  return seeds;
}

std::uint64_t TrialAttemptSeed(std::uint64_t master_seed, int trial,
                               int attempt) {
  if (trial < 0 || attempt < 0) {
    throw std::invalid_argument("TrialAttemptSeed: negative index");
  }
  // Attempt 0 must equal the classic TrialSeeds()[trial] so retry-free
  // studies stay bit-identical to the pre-retry runner.
  prng::SplitMix64 stream{master_seed};
  std::uint64_t base = 0;
  for (int i = 0; i <= trial; ++i) base = stream.Next();
  if (attempt == 0) return base;
  // Retries mix (base, attempt) statelessly: independent of thread count
  // and of how many *other* trials retried.
  return prng::Mix64(base ^ prng::Mix64(static_cast<std::uint64_t>(attempt)));
}

int ResolveStudyThreads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("HOTSPOTS_THREADS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value > 0 && value < 1 << 16) {
      return static_cast<int>(value);
    }
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

StudyTelemetry RunTrials(
    const StudyOptions& options, int trials,
    const std::function<void(int, std::uint64_t)>& run_trial) {
  if (trials < 0) throw std::invalid_argument("RunTrials: trials < 0");
  if (options.max_attempts < 1) {
    throw std::invalid_argument("RunTrials: max_attempts < 1");
  }

  StudyTelemetry telemetry;
  telemetry.trials = trials;
  telemetry.trial_wall_seconds.assign(static_cast<std::size_t>(trials), 0.0);
  telemetry.trial_queue_wait_seconds.assign(static_cast<std::size_t>(trials),
                                            0.0);
  telemetry.trial_attempts.assign(static_cast<std::size_t>(trials), 1);
  telemetry.trial_quarantined.assign(static_cast<std::size_t>(trials), 0);
  telemetry.segments = {StudySegment{options.label, 0, trials}};
  telemetry.threads_used =
      std::max(1, std::min(ResolveStudyThreads(options.threads), trials));
  if (trials == 0) {
    telemetry.threads_used = 0;
    return telemetry;
  }

  const std::vector<std::uint64_t> seeds =
      TrialSeeds(options.master_seed, trials);

  std::atomic<int> active{0};
  std::atomic<int> peak{0};
  std::atomic<int> total_retries{0};
  std::mutex failure_mutex;
  std::exception_ptr failure;
  // Quarantine diagnostics are staged per trial index and compacted after
  // the join, so failure_messages is in trial order on any thread count.
  std::vector<std::string> quarantine_reasons(
      static_cast<std::size_t>(trials));

  // Retry backoff is deadline-based: a backing-off trial is *parked* in
  // this queue with its resume deadline and the worker moves on, so a
  // retrying trial never holds a worker hostage while other trials queue
  // (the serial-era code slept on the pool thread here).  Workers prefer
  // the earliest due parked retry, then fresh trials, and only block —
  // until the earliest deadline — when neither exists.
  struct ParkedRetry {
    std::chrono::steady_clock::time_point due;
    int trial = 0;
    int attempt = 0;        ///< Next attempt index to run.
    int attempts_done = 0;  ///< Attempts already consumed.
    double work_seconds = 0.0;
    std::exception_ptr last_error;
  };
  const auto later_due = [](const ParkedRetry& a, const ParkedRetry& b) {
    if (a.due != b.due) return a.due > b.due;
    return a.trial > b.trial;  // Deterministic pop order on deadline ties.
  };
  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::vector<ParkedRetry> parked;  // Min-heap ordered by later_due.
  int next_trial = 0;
  int outstanding = trials;  ///< Trials not yet finalized (incl. parked).

  const auto study_start = std::chrono::steady_clock::now();
  // One span per trial attempt on the running worker's lane; nested engine
  // spans (the trial body) sit inside it in the exported timeline.
  static const std::uint32_t kTrialSpanId = obs::InternSpanName("study.trial");
  const auto worker = [&] {
    const bool tracing = obs::TracingEnabled();
    for (;;) {
      ParkedRetry item;
      {
        std::unique_lock lock{queue_mutex};
        for (;;) {
          if (outstanding == 0) return;
          const auto now = std::chrono::steady_clock::now();
          if (!parked.empty() && parked.front().due <= now) {
            std::pop_heap(parked.begin(), parked.end(), later_due);
            item = parked.back();
            parked.pop_back();
            break;
          }
          if (next_trial < trials) {
            item = ParkedRetry{};
            item.trial = next_trial++;
            break;
          }
          if (parked.empty()) {
            // Running trials may yet park or finish; wait for either.
            queue_cv.wait(lock);
          } else {
            queue_cv.wait_until(lock, parked.front().due);
          }
        }
      }
      const int trial = item.trial;
      const int in_flight = active.fetch_add(1, std::memory_order_relaxed) + 1;
      int observed_peak = peak.load(std::memory_order_relaxed);
      while (in_flight > observed_peak &&
             !peak.compare_exchange_weak(observed_peak, in_flight,
                                         std::memory_order_relaxed)) {
      }
      if (item.attempt == 0) {
        telemetry.trial_queue_wait_seconds[static_cast<std::size_t>(trial)] =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          study_start)
                .count();
      }
      bool reparked = false;
      for (int attempt = item.attempt; attempt < options.max_attempts;
           ++attempt) {
        const auto start = std::chrono::steady_clock::now();
        ++item.attempts_done;
        {
          obs::TraceSpan trial_span{kTrialSpanId, tracing};
          try {
            // Attempt 0 uses the precomputed classic seed; retries derive a
            // fresh one from (trial, attempt) — see TrialAttemptSeed().
            run_trial(trial,
                      attempt == 0
                          ? seeds[static_cast<std::size_t>(trial)]
                          : TrialAttemptSeed(options.master_seed, trial,
                                             attempt));
            item.last_error = nullptr;
          } catch (...) {
            item.last_error = std::current_exception();
          }
        }
        item.work_seconds +=
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        if (!item.last_error) break;
        if (attempt + 1 >= options.max_attempts) break;
        if (options.retry_backoff_seconds > 0.0) {
          // Park until the exponential-backoff deadline; some worker (not
          // necessarily this one) resumes the trial when it comes due.
          item.attempt = attempt + 1;
          item.due = std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(
                         std::chrono::duration<double>(
                             options.retry_backoff_seconds *
                             static_cast<double>(1u << attempt)));
          {
            const std::scoped_lock lock{queue_mutex};
            parked.push_back(item);
            std::push_heap(parked.begin(), parked.end(), later_due);
          }
          // Wake waiters so their deadline accounts for the new entry.
          queue_cv.notify_all();
          reparked = true;
          break;
        }
        // No backoff configured: retry immediately, inline (legacy path).
      }
      active.fetch_sub(1, std::memory_order_relaxed);
      if (reparked) continue;

      telemetry.trial_attempts[static_cast<std::size_t>(trial)] =
          item.attempts_done;
      if (item.attempts_done > 1) {
        total_retries.fetch_add(item.attempts_done - 1,
                                std::memory_order_relaxed);
      }
      if (item.last_error) {
        if (options.quarantine_failures) {
          telemetry.trial_quarantined[static_cast<std::size_t>(trial)] = 1;
          std::string what = "unknown error";
          try {
            std::rethrow_exception(item.last_error);
          } catch (const std::exception& error) {
            what = error.what();
          } catch (...) {
          }
          quarantine_reasons[static_cast<std::size_t>(trial)] =
              "trial " + std::to_string(trial) + ": " + what + " (" +
              std::to_string(item.attempts_done) + " attempts)";
        } else {
          const std::scoped_lock lock{failure_mutex};
          if (!failure) failure = item.last_error;
        }
      }
      telemetry.trial_wall_seconds[static_cast<std::size_t>(trial)] =
          item.work_seconds;
      {
        const std::scoped_lock lock{queue_mutex};
        --outstanding;
      }
      queue_cv.notify_all();
    }
  };

  if (telemetry.threads_used <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(telemetry.threads_used));
    for (int i = 0; i < telemetry.threads_used; ++i) {
      pool.emplace_back([&worker, i] {
        if (obs::TracingEnabled()) {
          obs::SpanCollector::Global().SetThreadLane(
              "study-" + std::to_string(i));
        }
        worker();
      });
    }
    for (std::thread& thread : pool) thread.join();
  }
  telemetry.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    study_start)
          .count();
  telemetry.peak_concurrent_trials = peak.load();
  telemetry.retries = total_retries.load();
  for (int trial = 0; trial < trials; ++trial) {
    if (telemetry.trial_quarantined[static_cast<std::size_t>(trial)] != 0) {
      ++telemetry.quarantined_trials;
      telemetry.failure_messages.push_back(
          std::move(quarantine_reasons[static_cast<std::size_t>(trial)]));
    }
  }
  telemetry.segments.front().lost_trials = telemetry.quarantined_trials;
  if (failure) std::rethrow_exception(failure);

  // Study-level observability: fold once per study, after the workers have
  // joined (so histogram observations never race the trials themselves).
  auto& registry = obs::Registry::Global();
  registry.GetCounter("study.studies").Increment();
  registry.GetCounter("study.trials")
      .Add(static_cast<std::uint64_t>(trials));
  registry.GetGauge("study.threads")
      .Set(static_cast<double>(telemetry.threads_used));
  registry.GetGauge("study.peak_concurrent_trials")
      .SetMax(static_cast<double>(telemetry.peak_concurrent_trials));
  if (telemetry.retries > 0) {
    registry.GetCounter("study.retries")
        .Add(static_cast<std::uint64_t>(telemetry.retries));
  }
  if (telemetry.quarantined_trials > 0) {
    registry.GetCounter("study.quarantined_trials")
        .Add(static_cast<std::uint64_t>(telemetry.quarantined_trials));
  }
  // 1 ms … ~2.3 h trial latencies; 1 µs … ~4.8 h queue waits.
  static const std::vector<double> kLatencyBounds =
      obs::ExponentialBounds(1e-3, 2.0, 24);
  static const std::vector<double> kQueueBounds =
      obs::ExponentialBounds(1e-6, 4.0, 17);
  auto& latency =
      registry.GetHistogram("study.trial_seconds", kLatencyBounds);
  for (const double seconds : telemetry.trial_wall_seconds) {
    latency.Observe(seconds);
  }
  auto& queue_wait =
      registry.GetHistogram("study.queue_wait_seconds", kQueueBounds);
  for (const double seconds : telemetry.trial_queue_wait_seconds) {
    queue_wait.Observe(seconds);
  }
  return telemetry;
}

SummaryStats Summarize(const std::vector<double>& values,
                       const std::vector<double>& quantiles) {
  SummaryStats stats;
  std::vector<double> kept;
  kept.reserve(values.size());
  for (const double value : values) {
    if (!std::isnan(value)) kept.push_back(value);
  }
  stats.count = static_cast<int>(kept.size());
  if (kept.empty()) {
    for (const double q : quantiles) stats.quantiles.emplace_back(q, 0.0);
    return stats;
  }

  double sum = 0.0;
  stats.min = kept.front();
  stats.max = kept.front();
  for (const double value : kept) {
    sum += value;
    stats.min = std::min(stats.min, value);
    stats.max = std::max(stats.max, value);
  }
  stats.mean = sum / static_cast<double>(kept.size());
  if (kept.size() > 1) {
    double squares = 0.0;
    for (const double value : kept) {
      const double delta = value - stats.mean;
      squares += delta * delta;
    }
    stats.stddev = std::sqrt(squares / static_cast<double>(kept.size() - 1));
  }

  std::sort(kept.begin(), kept.end());
  for (const double q : quantiles) {
    const double clamped = std::clamp(q, 0.0, 1.0);
    const double position =
        clamped * static_cast<double>(kept.size() - 1);
    const auto low = static_cast<std::size_t>(position);
    const std::size_t high = std::min(low + 1, kept.size() - 1);
    const double weight = position - static_cast<double>(low);
    stats.quantiles.emplace_back(
        q, kept[low] * (1.0 - weight) + kept[high] * weight);
  }
  return stats;
}

double TimeToInfectedFraction(const RunResult& result, double fraction) {
  const double target =
      fraction * static_cast<double>(result.eligible_population);
  for (const SamplePoint& point : result.series) {
    if (static_cast<double>(point.infected) >= target) return point.time;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

double InfectedAt(const RunResult& result, double time) {
  double infected = 0.0;
  for (const SamplePoint& point : result.series) {
    if (point.time > time) break;
    infected = static_cast<double>(point.infected);
  }
  return infected;
}

std::vector<double> MeanInfectedAtTimes(const std::vector<RunResult>& runs,
                                        const std::vector<double>& times) {
  std::vector<double> means(times.size(), 0.0);
  if (runs.empty()) return means;
  for (const RunResult& run : runs) {
    for (std::size_t i = 0; i < times.size(); ++i) {
      means[i] += InfectedAt(run, times[i]);
    }
  }
  for (double& mean : means) mean /= static_cast<double>(runs.size());
  return means;
}

}  // namespace hotspots::sim
