// The host population and its address indexes.
//
// Holds every simulated host and answers the two lookups the probe loop
// needs: "which host owns this public address?" and "which host owns this
// private address inside NAT site S?".  Both are O(1) hash lookups.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/flat_table.h"
#include "sim/host.h"
#include "topology/org.h"

namespace hotspots::sim {

class Population {
 public:
  /// Adds a host.  For NATed hosts, `address` is the private address and
  /// `site` identifies the NAT site; duplicate (site, address) pairs throw.
  HostId AddHost(net::Ipv4 address,
                 topology::SiteId site = topology::kPublicSite);

  /// Resolves each host's organization from `orgs` (may be nullptr for
  /// "no allocation registry").  Must be called after the last AddHost().
  void Build(const topology::AllocationRegistry* orgs);

  /// Host owning a public address, or kInvalidHost.
  [[nodiscard]] HostId FindPublic(net::Ipv4 address) const {
    return Find(topology::kPublicSite, address);
  }

  /// Host owning `address` inside NAT site `site`, or kInvalidHost.
  /// Pass kPublicSite for public addresses (== FindPublic).
  [[nodiscard]] HostId FindInSite(topology::SiteId site,
                                  net::Ipv4 address) const {
    return Find(site, address);
  }

  /// Prefetches the hash slot a subsequent FindInSite/FindPublic for the
  /// same (site, address) will touch.  The engine issues these a few
  /// lookups ahead while flushing its delivered-probe batch, overlapping
  /// the near-certain cache miss per random address.
  void PrefetchFind(topology::SiteId site, net::Ipv4 address) const {
    by_address_.PrefetchFind(Key(site, address));
  }

  [[nodiscard]] Host& host(HostId id) { return hosts_[id]; }
  [[nodiscard]] const Host& host(HostId id) const { return hosts_[id]; }
  [[nodiscard]] std::size_t size() const { return hosts_.size(); }
  [[nodiscard]] const std::vector<Host>& hosts() const { return hosts_; }

  /// Number of hosts currently in `state`.
  [[nodiscard]] std::size_t CountInState(HostState state) const;

  /// Returns every host to the vulnerable population (between experiment
  /// runs that reuse one population).
  void ResetAllToVulnerable();

 private:
  [[nodiscard]] static std::uint64_t Key(topology::SiteId site,
                                         net::Ipv4 address) {
    // Site −1 (public) maps to 0; sites are otherwise ≥ 0.
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(site + 1))
            << 32) |
           address.value();
  }
  [[nodiscard]] HostId Find(topology::SiteId site, net::Ipv4 address) const {
    return by_address_.Find(Key(site, address), kInvalidHost);
  }

  std::vector<Host> hosts_;
  FlatTable by_address_;
};

}  // namespace hotspots::sim
