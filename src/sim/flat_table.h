// Minimal open-addressing hash containers for the per-probe hot paths.
//
// The probe loop performs billions of hash lookups and inserts per
// experiment: (site, address) → host victim lookups in the engine, and
// unique-source membership inserts in every darknet sensor.  Node-based
// std::unordered_{map,set} cost two dependent cache misses plus an
// allocation per insert; these flat, linear-probing tables cost one probe
// chain and never allocate after reaching steady-state capacity.
//
// `FlatMap<Key, Value>` maps non-zero integral keys to values (key 0 is
// reserved as the empty-slot sentinel).  `FlatSet<Key>` is a set of
// integral keys that additionally admits key 0 via a side flag, so raw
// IPv4 addresses (including 0.0.0.0) can be stored directly.  Both grow by
// doubling at a ≤0.5 load factor, and `Clear()` retains capacity so
// per-trial `Reset()` loops reuse their storage instead of reallocating.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <type_traits>
#include <vector>

namespace hotspots::sim {

namespace detail {
/// SplitMix64 finalizer: full-avalanche, cheap.
[[nodiscard]] constexpr std::size_t HashKey(std::uint64_t key) {
  key = (key ^ (key >> 30)) * 0xBF58476D1CE4E5B9ull;
  key = (key ^ (key >> 27)) * 0x94D049BB133111EBull;
  return static_cast<std::size_t>(key ^ (key >> 31));
}
}  // namespace detail

/// Maps non-zero integral keys to values.  Key 0 is reserved as the empty
/// sentinel (the population never stores address 0.0.0.0 outside a site,
/// which is non-targetable anyway).
template <typename Key, typename Value>
class FlatMap {
  static_assert(std::is_integral_v<Key> && sizeof(Key) <= 8,
                "FlatMap requires integral keys up to 64 bits");

 public:
  FlatMap() = default;

  /// Rebuilds the table for `expected` entries.
  void Reserve(std::size_t expected) {
    std::size_t capacity = 16;
    while (capacity < expected * 2 + 1) capacity <<= 1;
    slots_.assign(capacity, Slot{});
    mask_ = capacity - 1;
    size_ = 0;
  }

  /// Inserts `key` → `value`.  Returns false if the key already exists
  /// (value unchanged).  Grows when the load factor passes 1/2.
  bool Insert(Key key, Value value) {
    if (key == 0) throw std::invalid_argument("FlatMap: key 0 is reserved");
    if (slots_.empty() || (size_ + 1) * 2 > slots_.size()) {
      Grow();
    }
    std::size_t index = detail::HashKey(static_cast<std::uint64_t>(key)) & mask_;
    while (slots_[index].key != 0) {
      if (slots_[index].key == key) return false;
      index = (index + 1) & mask_;
    }
    slots_[index] = Slot{key, value};
    ++size_;
    return true;
  }

  /// Returns the value for `key`, or `not_found`.
  [[nodiscard]] Value Find(Key key, Value not_found) const {
    if (slots_.empty()) return not_found;
    std::size_t index = detail::HashKey(static_cast<std::uint64_t>(key)) & mask_;
    while (slots_[index].key != 0) {
      if (slots_[index].key == key) return slots_[index].value;
      index = (index + 1) & mask_;
    }
    return not_found;
  }

  /// Prefetches the first slot `key` hashes to.  Issued a few iterations
  /// ahead of Find() in batched lookup loops, it overlaps the (all but
  /// guaranteed) cache miss with other work.
  void PrefetchFind(Key key) const {
    if (slots_.empty()) return;
    const std::size_t index =
        detail::HashKey(static_cast<std::uint64_t>(key)) & mask_;
    __builtin_prefetch(&slots_[index], 0, 1);
  }

  /// Drops all entries but keeps the allocated capacity.
  void Clear() {
    slots_.assign(slots_.size(), Slot{});
    size_ = 0;
  }

  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  struct Slot {
    Key key = 0;
    Value value{};
  };

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    Reserve(old.empty() ? 16 : old.size());
    for (const Slot& slot : old) {
      if (slot.key != 0) {
        std::size_t index =
            detail::HashKey(static_cast<std::uint64_t>(slot.key)) & mask_;
        while (slots_[index].key != 0) index = (index + 1) & mask_;
        slots_[index] = slot;
        ++size_;
      }
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

/// A set of integral keys.  Key 0 is tracked by a side flag so the full key
/// domain (e.g. every IPv4 address) is storable.
template <typename Key>
class FlatSet {
  static_assert(std::is_integral_v<Key> && sizeof(Key) <= 8,
                "FlatSet requires integral keys up to 64 bits");

 public:
  FlatSet() = default;

  void Reserve(std::size_t expected) {
    std::size_t capacity = 16;
    while (capacity < expected * 2 + 1) capacity <<= 1;
    slots_.assign(capacity, Key{0});
    mask_ = capacity - 1;
    size_ = 0;
    has_zero_ = false;
  }

  /// Inserts `key`; returns true if it was not already present.
  bool Insert(Key key) {
    if (key == 0) {
      if (has_zero_) return false;
      has_zero_ = true;
      ++size_;
      return true;
    }
    if (slots_.empty() || (NonZeroCount() + 1) * 2 > slots_.size()) {
      Grow();
    }
    std::size_t index = detail::HashKey(static_cast<std::uint64_t>(key)) & mask_;
    while (slots_[index] != 0) {
      if (slots_[index] == key) return false;
      index = (index + 1) & mask_;
    }
    slots_[index] = key;
    ++size_;
    return true;
  }

  [[nodiscard]] bool Contains(Key key) const {
    if (key == 0) return has_zero_;
    if (slots_.empty()) return false;
    std::size_t index = detail::HashKey(static_cast<std::uint64_t>(key)) & mask_;
    while (slots_[index] != 0) {
      if (slots_[index] == key) return true;
      index = (index + 1) & mask_;
    }
    return false;
  }

  /// Drops all entries but keeps the allocated capacity.
  void Clear() {
    if (size_ == 0) return;
    slots_.assign(slots_.size(), Key{0});
    has_zero_ = false;
    size_ = 0;
  }

  /// Visits every stored key, in unspecified order (set unions when
  /// per-shard observer partials are absorbed into the run totals).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (has_zero_) fn(Key{0});
    for (const Key key : slots_) {
      if (key != 0) fn(key);
    }
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

 private:
  [[nodiscard]] std::size_t NonZeroCount() const {
    return size_ - (has_zero_ ? 1 : 0);
  }

  void Grow() {
    std::vector<Key> old = std::move(slots_);
    const std::size_t target = old.empty() ? 16 : old.size();
    std::size_t capacity = 16;
    while (capacity < target * 2 + 1) capacity <<= 1;
    slots_.assign(capacity, Key{0});
    mask_ = capacity - 1;
    for (const Key key : old) {
      if (key != 0) {
        std::size_t index =
            detail::HashKey(static_cast<std::uint64_t>(key)) & mask_;
        while (slots_[index] != 0) index = (index + 1) & mask_;
        slots_[index] = key;
      }
    }
  }

  std::vector<Key> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  bool has_zero_ = false;
};

/// The engine's (site, address) → host table (historical name).
using FlatTable = FlatMap<std::uint64_t, std::uint32_t>;

}  // namespace hotspots::sim
