// A minimal open-addressing hash table for the probe loop's victim lookup.
//
// The engine performs one (site, address) → host lookup per delivered probe
// — billions per experiment.  std::unordered_map's node-based buckets cost
// two dependent cache misses per lookup; this flat, linear-probing table
// costs one.  It is append-only (hosts are never removed) and sized at
// Build() time for a fixed ≤0.5 load factor.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace hotspots::sim {

/// Maps non-zero 64-bit keys to 32-bit values.  Key 0 is reserved as the
/// empty sentinel (the population never stores address 0.0.0.0 outside a
/// site, which is non-targetable anyway).
class FlatTable {
 public:
  FlatTable() = default;

  /// Rebuilds the table for `expected` entries.
  void Reserve(std::size_t expected) {
    std::size_t capacity = 16;
    while (capacity < expected * 2 + 1) capacity <<= 1;
    slots_.assign(capacity, Slot{});
    mask_ = capacity - 1;
    size_ = 0;
  }

  /// Inserts `key` → `value`.  Returns false if the key already exists
  /// (value unchanged).  Grows when the load factor passes 1/2.
  bool Insert(std::uint64_t key, std::uint32_t value) {
    if (key == 0) throw std::invalid_argument("FlatTable: key 0 is reserved");
    if (slots_.empty() || (size_ + 1) * 2 > slots_.size()) {
      Grow();
    }
    std::size_t index = Hash(key) & mask_;
    while (slots_[index].key != 0) {
      if (slots_[index].key == key) return false;
      index = (index + 1) & mask_;
    }
    slots_[index] = Slot{key, value};
    ++size_;
    return true;
  }

  /// Returns the value for `key`, or `not_found`.
  [[nodiscard]] std::uint32_t Find(std::uint64_t key,
                                   std::uint32_t not_found) const {
    if (slots_.empty()) return not_found;
    std::size_t index = Hash(key) & mask_;
    while (slots_[index].key != 0) {
      if (slots_[index].key == key) return slots_[index].value;
      index = (index + 1) & mask_;
    }
    return not_found;
  }

  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::uint32_t value = 0;
  };

  [[nodiscard]] static std::size_t Hash(std::uint64_t key) {
    // SplitMix64 finalizer: full-avalanche, cheap.
    key = (key ^ (key >> 30)) * 0xBF58476D1CE4E5B9ull;
    key = (key ^ (key >> 27)) * 0x94D049BB133111EBull;
    return static_cast<std::size_t>(key ^ (key >> 31));
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    Reserve(old.empty() ? 16 : old.size());
    for (const Slot& slot : old) {
      if (slot.key != 0) {
        std::size_t index = Hash(slot.key) & mask_;
        while (slots_[index].key != 0) index = (index + 1) & mask_;
        slots_[index] = slot;
        ++size_;
      }
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace hotspots::sim
