// Probe observation interface.
//
// The engine reports every emitted probe through one ProbeObserver
// reference; observer *composition* is the tee's job, not the engine's.
// Any number of consumers — the darknet telescope (src/telescope), the
// quarantine histogrammer, a TRW gateway (src/detect), a trace capture
// writer (src/trace) — attach together through a TeeObserver, which is the
// single multiplexing attach path.  Observers see the probe *and* the
// delivery verdict so they can model either on-path sensors (see
// everything routable to them) or end-host sensors.
//
// Delivery is batched: the engine buffers probes and flushes them through
// OnProbeBatch() once per step (or when the buffer fills), which amortizes
// the virtual dispatch and lets observers process a cache-resident run of
// events.  The default OnProbeBatch() loops OnProbe(), so observers that
// only care about individual probes implement just that.
#pragma once

#include <initializer_list>
#include <span>
#include <vector>

#include "net/ipv4.h"
#include "sim/host.h"
#include "topology/reachability.h"

namespace hotspots::sim {

/// One emitted probe, as seen by observers.
struct ProbeEvent {
  double time = 0.0;
  HostId src_host = kInvalidHost;
  net::Ipv4 src_address;        ///< Public-facing source (post-NAT) address.
  net::Ipv4 dst;
  topology::Delivery delivery = topology::Delivery::kDelivered;
};

/// Observer of the probe stream.
class ProbeObserver {
 public:
  virtual ~ProbeObserver() = default;

  /// Called once by Engine::Run (and trace::Replay) before the first probe
  /// is delivered.  Observers validate their configuration here (e.g. an
  /// un-built telescope fails at attach time instead of per probe).
  virtual void OnAttach() {}

  virtual void OnProbe(const ProbeEvent& event) = 0;

  /// Receives a run of probes in emission order.  The default forwards each
  /// event to OnProbe(); hot observers override this to process the whole
  /// batch without per-probe virtual dispatch.
  virtual void OnProbeBatch(std::span<const ProbeEvent> events) {
    for (const ProbeEvent& event : events) OnProbe(event);
  }
};

/// Observer that ignores everything.
class NullObserver final : public ProbeObserver {
 public:
  void OnProbe(const ProbeEvent&) override {}
  void OnProbeBatch(std::span<const ProbeEvent>) override {}
};

/// The multiplexing observer: forwards attach and every batch, in order,
/// to each child.  This is how capture + telescope + detectors compose on
/// one engine run without bespoke forwarding glue — each child still gets
/// the whole-batch fast path.  Children are borrowed, must outlive the
/// tee, and receive batches in Add() order (observers are side-effect
/// sinks, so ordering only matters for reproducible diagnostics).
class TeeObserver final : public ProbeObserver {
 public:
  TeeObserver() = default;
  TeeObserver(std::initializer_list<ProbeObserver*> children) {
    for (ProbeObserver* child : children) Add(child);
  }

  /// Adds a child; nullptr is ignored so callers can pass optional sinks
  /// (e.g. a trace writer that exists only when --trace-out was given).
  void Add(ProbeObserver* child) {
    if (child != nullptr) children_.push_back(child);
  }

  [[nodiscard]] std::size_t size() const { return children_.size(); }

  void OnAttach() override {
    for (ProbeObserver* child : children_) child->OnAttach();
  }

  void OnProbe(const ProbeEvent& event) override {
    for (ProbeObserver* child : children_) child->OnProbe(event);
  }

  void OnProbeBatch(std::span<const ProbeEvent> events) override {
    for (ProbeObserver* child : children_) child->OnProbeBatch(events);
  }

 private:
  std::vector<ProbeObserver*> children_;
};

/// Observer that copies every event into a vector (tests, small captures).
class RecordingObserver final : public ProbeObserver {
 public:
  void OnProbe(const ProbeEvent& event) override { events_.push_back(event); }

  [[nodiscard]] const std::vector<ProbeEvent>& events() const {
    return events_;
  }
  void clear() { events_.clear(); }

 private:
  std::vector<ProbeEvent> events_;
};

}  // namespace hotspots::sim
