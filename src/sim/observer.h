// Probe observation interface.
//
// The engine reports every emitted probe to a single observer.  The darknet
// telescope (src/telescope) implements this to feed its sensor blocks; the
// quarantine harness implements it to histogram a single host's scan
// targets.  Observers see the probe *and* the delivery verdict so they can
// model either on-path sensors (see everything routable to them) or
// end-host sensors.
//
// Delivery is batched: the engine buffers probes and flushes them through
// OnProbeBatch() once per step (or when the buffer fills), which amortizes
// the virtual dispatch and lets observers process a cache-resident run of
// events.  The default OnProbeBatch() loops OnProbe(), so observers that
// only care about individual probes implement just that.
#pragma once

#include <span>

#include "net/ipv4.h"
#include "sim/host.h"
#include "topology/reachability.h"

namespace hotspots::sim {

/// One emitted probe, as seen by observers.
struct ProbeEvent {
  double time = 0.0;
  HostId src_host = kInvalidHost;
  net::Ipv4 src_address;        ///< Public-facing source (post-NAT) address.
  net::Ipv4 dst;
  topology::Delivery delivery = topology::Delivery::kDelivered;
};

/// Observer of the probe stream.
class ProbeObserver {
 public:
  virtual ~ProbeObserver() = default;

  /// Called once by Engine::Run before the first probe is emitted.
  /// Observers validate their configuration here (e.g. an un-built
  /// telescope fails at attach time instead of per probe).
  virtual void OnAttach() {}

  virtual void OnProbe(const ProbeEvent& event) = 0;

  /// Receives a run of probes in emission order.  The default forwards each
  /// event to OnProbe(); hot observers override this to process the whole
  /// batch without per-probe virtual dispatch.
  virtual void OnProbeBatch(std::span<const ProbeEvent> events) {
    for (const ProbeEvent& event : events) OnProbe(event);
  }
};

/// Observer that ignores everything.
class NullObserver final : public ProbeObserver {
 public:
  void OnProbe(const ProbeEvent&) override {}
  void OnProbeBatch(std::span<const ProbeEvent>) override {}
};

}  // namespace hotspots::sim
