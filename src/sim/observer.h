// Probe observation interface.
//
// The engine reports every emitted probe to a single observer.  The darknet
// telescope (src/telescope) implements this to feed its sensor blocks; the
// quarantine harness implements it to histogram a single host's scan
// targets.  Observers see the probe *and* the delivery verdict so they can
// model either on-path sensors (see everything routable to them) or
// end-host sensors.
#pragma once

#include "net/ipv4.h"
#include "sim/host.h"
#include "topology/reachability.h"

namespace hotspots::sim {

/// One emitted probe, as seen by observers.
struct ProbeEvent {
  double time = 0.0;
  HostId src_host = kInvalidHost;
  net::Ipv4 src_address;        ///< Public-facing source (post-NAT) address.
  net::Ipv4 dst;
  topology::Delivery delivery = topology::Delivery::kDelivered;
};

/// Observer of the probe stream.
class ProbeObserver {
 public:
  virtual ~ProbeObserver() = default;
  virtual void OnProbe(const ProbeEvent& event) = 0;
};

/// Observer that ignores everything.
class NullObserver final : public ProbeObserver {
 public:
  void OnProbe(const ProbeEvent&) override {}
};

}  // namespace hotspots::sim
