// Probe observation interface.
//
// The engine reports every emitted probe through one ProbeObserver
// reference; observer *composition* is the tee's job, not the engine's.
// Any number of consumers — the darknet telescope (src/telescope), the
// quarantine histogrammer, a TRW gateway (src/detect), a trace capture
// writer (src/trace) — attach together through a TeeObserver, which is the
// single multiplexing attach path.  Observers see the probe *and* the
// delivery verdict so they can model either on-path sensors (see
// everything routable to them) or end-host sensors.
//
// Delivery is batched: the engine buffers probes and flushes them through
// OnProbeBatch() once per step (or when the buffer fills), which amortizes
// the virtual dispatch and lets observers process a cache-resident run of
// events.  The default OnProbeBatch() loops OnProbe(), so observers that
// only care about individual probes implement just that.
//
// Sharded runs add a second, two-phase protocol (MergeableObserver):
// observers that can fold into per-shard partial state implement
// ForkShardState/OnShardBatch/MergeShardStates and have their fold run on
// the engine's worker threads, with only a small deterministic merge left
// on the serial commit path.  Observers that need the totally-ordered
// event stream (trace capture, user callbacks) simply don't implement it
// and keep receiving ordered OnProbeBatch spans at commit time.
#pragma once

#include <initializer_list>
#include <memory>
#include <span>
#include <vector>

#include "net/ipv4.h"
#include "sim/host.h"
#include "topology/reachability.h"

namespace hotspots::sim {

/// One emitted probe, as seen by observers.
struct ProbeEvent {
  double time = 0.0;
  HostId src_host = kInvalidHost;
  net::Ipv4 src_address;        ///< Public-facing source (post-NAT) address.
  net::Ipv4 dst;
  topology::Delivery delivery = topology::Delivery::kDelivered;
};

/// Opaque per-shard partial state owned by a MergeableObserver.  The engine
/// only ever holds these by pointer and hands them back to the observer
/// that forked them; concrete layouts live in the observer's .cc file.
class ObserverShardState {
 public:
  virtual ~ObserverShardState() = default;
};

/// Two-phase fold extension for observers whose state is mergeable.
///
/// Protocol, per Engine::Run with a mergeable observer attached:
///   1. ForkShardState(shard) once per shard before the first step.
///   2. OnShardBatch(state, span) once per shard per step, **on the worker
///      thread that owns the shard**.  The observer must only read shared
///      state that is immutable during the run (sensor maps, watch lists)
///      and write through `state`.  Events within one step all carry the
///      same timestamp, and concatenating the spans shard-major
///      reconstructs the exact serial emission order.
///   3. MergeShardStates(states) once per step on the serial commit path,
///      with the states in shard order.  Ordered side effects — alert
///      threshold crossings, first-alert times — happen here, so they are
///      bit-identical to a 1-shard (or pre-shard serial) run.
///   4. FinalizeShardStates(states) once at end of run, for run-scoped
///      state that needs no per-step ordering (unique-source sets,
///      registry counter totals).
///
/// Observers that also need the ordered event stream (e.g. a tee with a
/// serial-only child) return true from WantsSerialSpans() and receive the
/// committed spans through OnCommittedSpan() in emission order.
class MergeableObserver {
 public:
  virtual ~MergeableObserver() = default;

  [[nodiscard]] virtual std::unique_ptr<ObserverShardState> ForkShardState(
      int shard) = 0;

  /// Worker-thread fold of one shard's staged events into `state`.
  virtual void OnShardBatch(ObserverShardState& state,
                            std::span<const ProbeEvent> events) = 0;

  /// Serial, per-step merge of all shard states, in shard order.
  virtual void MergeShardStates(
      std::span<ObserverShardState* const> states) = 0;

  /// Serial, end-of-run fold of run-scoped partial state.
  virtual void FinalizeShardStates(
      std::span<ObserverShardState* const> /*states*/) {}

  /// True when the observer (or one of its children) still needs ordered
  /// event spans on the commit path in addition to the two-phase fold.
  [[nodiscard]] virtual bool WantsSerialSpans() const { return false; }

  /// Ordered committed span, delivered only when WantsSerialSpans().
  virtual void OnCommittedSpan(std::span<const ProbeEvent> /*events*/) {}
};

/// Observer of the probe stream.
class ProbeObserver {
 public:
  virtual ~ProbeObserver() = default;

  /// Called once by Engine::Run (and trace::Replay) before the first probe
  /// is delivered.  Observers validate their configuration here (e.g. an
  /// un-built telescope fails at attach time instead of per probe).
  virtual void OnAttach() {}

  virtual void OnProbe(const ProbeEvent& event) = 0;

  /// Receives a run of probes in emission order.  The default forwards each
  /// event to OnProbe(); hot observers override this to process the whole
  /// batch without per-probe virtual dispatch.
  virtual void OnProbeBatch(std::span<const ProbeEvent> events) {
    for (const ProbeEvent& event : events) OnProbe(event);
  }

  /// Non-null when this observer supports the two-phase sharded fold.  The
  /// engine uses it only for its own sharded runs; replay and serial paths
  /// keep calling OnProbeBatch, which must remain equivalent.
  [[nodiscard]] virtual MergeableObserver* AsMergeable() { return nullptr; }
};

/// Observer that ignores everything.
class NullObserver final : public ProbeObserver {
 public:
  void OnProbe(const ProbeEvent&) override {}
  void OnProbeBatch(std::span<const ProbeEvent>) override {}
};

/// The multiplexing observer: forwards attach and every batch, in order,
/// to each child.  This is how capture + telescope + detectors compose on
/// one engine run without bespoke forwarding glue — each child still gets
/// the whole-batch fast path.  Children are borrowed, must outlive the
/// tee, and receive batches in Add() order (observers are side-effect
/// sinks, so ordering only matters for reproducible diagnostics).
///
/// On sharded runs the tee splits its children by capability: mergeable
/// children ride the two-phase fork/merge path (their fold runs on worker
/// threads), serial-only children receive the committed spans in emission
/// order via OnCommittedSpan.  Either way every child sees exactly the
/// events a serial run would have shown it.
class TeeObserver final : public ProbeObserver, public MergeableObserver {
 public:
  TeeObserver() = default;
  TeeObserver(std::initializer_list<ProbeObserver*> children) {
    for (ProbeObserver* child : children) Add(child);
  }

  /// Adds a child; nullptr is ignored so callers can pass optional sinks
  /// (e.g. a trace writer that exists only when --trace-out was given).
  void Add(ProbeObserver* child) {
    if (child != nullptr) children_.push_back(child);
  }

  [[nodiscard]] std::size_t size() const { return children_.size(); }

  void OnAttach() override {
    for (ProbeObserver* child : children_) child->OnAttach();
  }

  void OnProbe(const ProbeEvent& event) override {
    for (ProbeObserver* child : children_) child->OnProbe(event);
  }

  void OnProbeBatch(std::span<const ProbeEvent> events) override {
    for (ProbeObserver* child : children_) child->OnProbeBatch(events);
  }

  /// Mergeable iff at least one child is; a tee of only serial children
  /// stays on the plain span path with zero overhead.
  [[nodiscard]] MergeableObserver* AsMergeable() override {
    for (ProbeObserver* child : children_) {
      if (child->AsMergeable() != nullptr) return this;
    }
    return nullptr;
  }

  [[nodiscard]] std::unique_ptr<ObserverShardState> ForkShardState(
      int shard) override {
    auto state = std::make_unique<TeeShardState>();
    for (ProbeObserver* child : children_) {
      if (MergeableObserver* mergeable = child->AsMergeable()) {
        state->children.emplace_back(mergeable,
                                     mergeable->ForkShardState(shard));
      }
    }
    return state;
  }

  void OnShardBatch(ObserverShardState& state,
                    std::span<const ProbeEvent> events) override {
    auto& tee_state = static_cast<TeeShardState&>(state);
    for (auto& [child, child_state] : tee_state.children) {
      child->OnShardBatch(*child_state, events);
    }
  }

  void MergeShardStates(std::span<ObserverShardState* const> states) override {
    ForwardToChildren(states, [](MergeableObserver* child,
                                 std::span<ObserverShardState* const> slice) {
      child->MergeShardStates(slice);
    });
  }

  void FinalizeShardStates(
      std::span<ObserverShardState* const> states) override {
    ForwardToChildren(states, [](MergeableObserver* child,
                                 std::span<ObserverShardState* const> slice) {
      child->FinalizeShardStates(slice);
    });
  }

  [[nodiscard]] bool WantsSerialSpans() const override {
    for (ProbeObserver* child : children_) {
      MergeableObserver* mergeable =
          const_cast<ProbeObserver*>(child)->AsMergeable();
      if (mergeable == nullptr || mergeable->WantsSerialSpans()) return true;
    }
    return false;
  }

  void OnCommittedSpan(std::span<const ProbeEvent> events) override {
    for (ProbeObserver* child : children_) {
      MergeableObserver* mergeable = child->AsMergeable();
      if (mergeable == nullptr) {
        child->OnProbeBatch(events);
      } else if (mergeable->WantsSerialSpans()) {
        mergeable->OnCommittedSpan(events);
      }
    }
  }

 private:
  struct TeeShardState final : ObserverShardState {
    std::vector<std::pair<MergeableObserver*,
                          std::unique_ptr<ObserverShardState>>>
        children;
  };

  /// Regroups the shard-major state list child-major and forwards one
  /// shard-ordered slice per mergeable child.
  template <typename Fn>
  void ForwardToChildren(std::span<ObserverShardState* const> states,
                         Fn&& forward) {
    if (states.empty()) return;
    const auto& first = static_cast<TeeShardState&>(*states[0]);
    for (std::size_t child = 0; child < first.children.size(); ++child) {
      scratch_states_.clear();
      for (ObserverShardState* state : states) {
        auto& tee_state = static_cast<TeeShardState&>(*state);
        scratch_states_.push_back(tee_state.children[child].second.get());
      }
      forward(first.children[child].first,
              std::span<ObserverShardState* const>(scratch_states_));
    }
  }

  std::vector<ProbeObserver*> children_;
  /// Merge-path scratch (serial commit only); reused across steps.
  std::vector<ObserverShardState*> scratch_states_;
};

/// Observer that copies every event into a vector (tests, small captures).
class RecordingObserver final : public ProbeObserver {
 public:
  void OnProbe(const ProbeEvent& event) override { events_.push_back(event); }

  [[nodiscard]] const std::vector<ProbeEvent>& events() const {
    return events_;
  }
  void clear() { events_.clear(); }

 private:
  std::vector<ProbeEvent> events_;
};

}  // namespace hotspots::sim
