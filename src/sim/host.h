// Host model shared across the simulator.
//
// The paper's epidemic model has three populations — vulnerable, infected,
// immune — and a host belongs to exactly one at a time.  A host here also
// carries its network context (NAT site, organization), because that context
// is what environmental factors act on, and it is handed to the worm's
// targeting code, because *algorithmic* factors (CodeRedII local preference)
// read the local address.
#pragma once

#include <cstdint>

#include "net/ipv4.h"
#include "topology/nat.h"
#include "topology/org.h"

namespace hotspots::sim {

/// Index into the Population's host table.
using HostId = std::uint32_t;
inline constexpr HostId kInvalidHost = ~HostId{0};

/// Which of the paper's three populations the host is in.
enum class HostState : std::uint8_t {
  kVulnerable,
  kInfected,
  kImmune,
};

/// One host.
struct Host {
  /// The address the host itself sees (private if behind a NAT).  This is
  /// the address worm code reads for local preference.
  net::Ipv4 address;
  topology::SiteId nat_site = topology::kPublicSite;
  topology::OrgId org = topology::kInvalidOrg;
  HostState state = HostState::kVulnerable;
  /// Simulation time of infection; meaningful only when infected.
  double infected_at = -1.0;

  [[nodiscard]] bool behind_nat() const {
    return nat_site != topology::kPublicSite;
  }
};

}  // namespace hotspots::sim
