// Intra-run sharding primitives for the epidemic engine.
//
// The engine parallelizes ONE outbreak by splitting the actively scanning
// population into contiguous shards, generating and classifying each
// shard's probes optimistically on worker threads, and then committing the
// staged side effects in deterministic shard-major order (sim/engine.cc).
// This header holds the two pieces that are independent of the engine's
// step loop: shard-count resolution and the fork-join worker pool.
//
// ShardPool is deliberately minimal: one blocking Run(job) per step, shard
// 0 always on the calling thread, workers parked on a condition variable
// between steps.  The engine's determinism does not depend on the pool at
// all — every shard's output is a pure function of (shard range, per-
// scanner RNG streams, read-only step state) — so the pool only has to be
// *correct*, never ordered.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hotspots::sim {

/// Resolves the engine shard count: `requested` if positive, else the
/// HOTSPOTS_SHARDS environment variable, else 1 (serial).  Clamped to
/// [1, 1024].  Unlike HOTSPOTS_THREADS (which fans out *trials*), shards
/// parallelize a single outbreak; the two multiply, so studies normally
/// leave HOTSPOTS_SHARDS unset.
[[nodiscard]] int ResolveEngineShards(int requested);

/// Fork-join pool for the engine's per-step generate phase.
///
/// Construction spawns `shards - 1` worker threads (none for 1 shard);
/// Run(job) executes job(shard) for every shard in [0, shards), shard 0 on
/// the calling thread, and returns when all shards have finished.  A job
/// that throws is captured and rethrown on the calling thread after the
/// join — when several shards throw, the lowest shard index wins, so the
/// surfaced error is deterministic.
class ShardPool {
 public:
  explicit ShardPool(int shards);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  [[nodiscard]] int shards() const { return shards_; }

  /// Runs job(0) … job(shards-1) concurrently and blocks until every
  /// shard has returned.  Not reentrant; call from one thread at a time.
  void Run(const std::function<void(int)>& job);

 private:
  void WorkerLoop(int shard);

  const int shards_;
  std::mutex mutex_;
  std::condition_variable work_cv_;   ///< Signals a new generation (or stop).
  std::condition_variable done_cv_;   ///< Signals the last shard finishing.
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  int remaining_ = 0;
  bool stop_ = false;
  std::vector<std::exception_ptr> errors_;  ///< One slot per shard.
  std::vector<std::thread> workers_;        ///< Shards 1 … shards-1.
};

}  // namespace hotspots::sim
