// Multi-threaded Monte-Carlo study runner.
//
// The paper's Section-5 results are statistical: detection-time and
// sensor-visibility numbers averaged over many independent outbreak trials.
// This module fans a trial count out across a std::thread pool while
// keeping the statistics *bit-identical to serial execution*:
//
//   * every trial gets a deterministic seed derived from the study's master
//     seed by SplitMix64, indexed by trial number — never by scheduling
//     order;
//   * each trial owns all of its mutable state (its Population, Engine and
//     observers are created inside the trial callback);
//   * results land in a vector slot keyed by trial index, so aggregation
//     never depends on completion order.
//
// Thread count defaults to std::thread::hardware_concurrency and can be
// overridden per study (StudyOptions::threads) or globally with the
// HOTSPOTS_THREADS environment variable.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.h"

namespace hotspots::sim {

struct SummaryStats;

/// Knobs of a Monte-Carlo study.
struct StudyOptions {
  /// Worker threads; 0 means "resolve automatically": HOTSPOTS_THREADS if
  /// set, otherwise std::thread::hardware_concurrency().  Never more
  /// threads than trials are started.
  int threads = 0;
  /// Master seed; per-trial seeds are SplitMix64 outputs of this value.
  std::uint64_t master_seed = 0x5EED;
  /// Sweep-point label carried into the telemetry's segment list, so
  /// merged telemetry can attribute each trial back to the study that ran
  /// it (benches use e.g. "list-1000" per hit-list size).
  std::string label;

  // -- Trial isolation (defaults preserve legacy fail-fast behaviour) ----
  /// Attempts per trial (≥ 1).  A trial that throws is retried up to this
  /// many times, each attempt on a fresh seed from TrialAttemptSeed(), so
  /// a transient fault cannot freeze a study on a poisoned draw.
  int max_attempts = 1;
  /// Base delay before retry k: base · 2^(k−1) seconds (exponential
  /// backoff); 0 retries immediately.  A backing-off trial is *parked* —
  /// its retry deadline goes into a queue and the worker moves on to other
  /// trials — so backoff never starves an idle worker.  Workers only
  /// sleep when every runnable trial is claimed and only until the
  /// earliest parked deadline.  Backoff wait time is excluded from the
  /// trial's wall-seconds telemetry (it measures work, not parking).
  double retry_backoff_seconds = 0.0;
  /// When true, a trial that exhausts its attempts is *quarantined* — the
  /// study completes, the loss is recorded in the telemetry (per-trial
  /// flags, quarantined_trials, failure_messages) and in the segment's
  /// lost_trials — instead of rethrowing after the pool joins.
  bool quarantine_failures = false;
};

/// One study's slice of a merged telemetry: trials
/// [trial_offset, trial_offset + trials) of the merged per-trial vectors
/// came from the study labelled `label`.
struct StudySegment {
  std::string label;
  int trial_offset = 0;
  int trials = 0;
  /// Trials of this segment quarantined after exhausting their attempts —
  /// the explicit loss accounting behind any partial aggregate.
  int lost_trials = 0;
};

/// Wall-clock instrumentation of one study (or, after Merge, of a sweep of
/// studies — `segments` maps merged trial indices back to sweep points).
struct StudyTelemetry {
  int trials = 0;
  int threads_used = 0;
  /// Highest number of trials observed in flight at once.
  int peak_concurrent_trials = 0;
  /// Whole-study wall clock (seconds).
  double wall_seconds = 0.0;
  /// Per-trial wall clock, by trial index.
  std::vector<double> trial_wall_seconds;
  /// Per-trial wait between study start and the trial being picked up by a
  /// worker, by trial index — the scheduling-delay component of latency.
  std::vector<double> trial_queue_wait_seconds;
  /// Originating studies of the per-trial vectors, in merge order.  A
  /// freshly run study has one segment covering all its trials.
  std::vector<StudySegment> segments;

  // -- Fault tolerance accounting ----------------------------------------
  /// Attempts consumed per trial, by trial index (1 everywhere on a clean
  /// run).
  std::vector<int> trial_attempts;
  /// 1 when the trial exhausted its attempts and was quarantined.
  std::vector<std::uint8_t> trial_quarantined;
  /// Count of quarantined trials (== sum of trial_quarantined).
  int quarantined_trials = 0;
  /// Retries beyond each trial's first attempt, study-wide.
  int retries = 0;
  /// One "trial N: <what> (k attempts)" line per quarantined trial, in
  /// trial order — deterministic regardless of scheduling.
  std::vector<std::string> failure_messages;

  [[nodiscard]] bool TrialQuarantined(int trial) const {
    return trial >= 0 &&
           static_cast<std::size_t>(trial) < trial_quarantined.size() &&
           trial_quarantined[static_cast<std::size_t>(trial)] != 0;
  }
  /// Trials that produced a result (trials − quarantined_trials).
  [[nodiscard]] int CompletedTrials() const {
    return trials - quarantined_trials;
  }

  [[nodiscard]] double MeanTrialSeconds() const;
  /// Sum of per-trial wall clocks — the serial-equivalent cost; the ratio
  /// to wall_seconds is the realized parallel speedup.
  [[nodiscard]] double TotalTrialSeconds() const;
  /// Per-trial wall-clock summary with p50/p95 quantiles.
  [[nodiscard]] SummaryStats TrialLatencyStats() const;
  /// Queue-wait summary with p50/p95 quantiles.
  [[nodiscard]] SummaryStats QueueWaitStats() const;
  /// The segment owning merged trial index `trial`, or nullptr.
  [[nodiscard]] const StudySegment* SegmentOf(int trial) const;

  /// Folds another study's telemetry in (benches run one study per sweep
  /// point and report a combined throughput line): trial counts and wall
  /// clocks add, thread/peak-concurrency figures take the max, and the
  /// other study's segments are appended with their trial offsets shifted
  /// past this study's trials — per-trial attribution survives the merge.
  void Merge(const StudyTelemetry& other);
};

/// The deterministic per-trial seed sequence: `count` successive SplitMix64
/// outputs of `master_seed`.  Trial i always receives seeds[i], no matter
/// which thread runs it or when.
[[nodiscard]] std::vector<std::uint64_t> TrialSeeds(std::uint64_t master_seed,
                                                    int count);

/// The seed for attempt `attempt` (0-based) of trial `trial`: attempt 0 is
/// exactly TrialSeeds(master_seed, trial+1)[trial], and each retry derives
/// a fresh seed by SplitMix64-mixing (base seed, attempt).  Both inputs are
/// pure indices — never scheduling order — so aggregates are thread-count-
/// and retry-invariant: a trial that succeeds on attempt k produces the
/// same result whether its earlier failures happened on one thread or
/// sixteen.
[[nodiscard]] std::uint64_t TrialAttemptSeed(std::uint64_t master_seed,
                                             int trial, int attempt);

/// Resolves the worker-thread count: `requested` if positive, else the
/// HOTSPOTS_THREADS environment variable, else hardware_concurrency
/// (minimum 1).
[[nodiscard]] int ResolveStudyThreads(int requested);

/// Runs `run_trial(trial_index, trial_seed)` once for every trial index in
/// [0, trials) across the study's thread pool and returns the telemetry.
/// `run_trial` must confine its mutable state to the call (each trial owns
/// its population/engine/observer); it may write its result into a
/// per-index slot of a caller-owned vector without locking.
///
/// Failure policy: a throwing trial is retried up to options.max_attempts
/// times on fresh TrialAttemptSeed() seeds (with exponential backoff).  A
/// trial that exhausts its attempts is either quarantined — the study
/// completes with the loss recorded in the telemetry and its segment
/// (options.quarantine_failures) — or, by default, the first such
/// exception is rethrown on the calling thread after all workers join.
StudyTelemetry RunTrials(
    const StudyOptions& options, int trials,
    const std::function<void(int, std::uint64_t)>& run_trial);

/// Typed study results: per-trial values (by trial index) + telemetry.
template <typename Result>
struct StudyResults {
  std::vector<Result> trials;
  StudyTelemetry telemetry;
};

/// Convenience wrapper: collects `fn(trial_index, trial_seed)` returns into
/// a by-index vector.  `Result` must be default-constructible and movable.
template <typename Fn>
auto RunStudy(const StudyOptions& options, int trials, Fn&& fn)
    -> StudyResults<decltype(fn(0, std::uint64_t{}))> {
  using Result = decltype(fn(0, std::uint64_t{}));
  StudyResults<Result> study;
  study.trials.resize(static_cast<std::size_t>(trials > 0 ? trials : 0));
  study.telemetry =
      RunTrials(options, trials, [&](int trial, std::uint64_t seed) {
        study.trials[static_cast<std::size_t>(trial)] = fn(trial, seed);
      });
  return study;
}

// ---------------------------------------------------------------------------
// Order-insensitive aggregation helpers.

/// Summary statistics of one per-trial scalar.
struct SummaryStats {
  int count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< Sample standard deviation (n-1); 0 when n < 2.
  double min = 0.0;
  double max = 0.0;
  /// Requested (quantile, value) pairs, linearly interpolated.
  std::vector<std::pair<double, double>> quantiles;
};

/// Summarizes `values` (one entry per trial, by index).  Entries that are
/// NaN — "this trial never reached the milestone" — are excluded from the
/// statistics; `count` reports how many were kept.
[[nodiscard]] SummaryStats Summarize(const std::vector<double>& values,
                                     const std::vector<double>& quantiles = {});

/// First sampled time at which `result`'s infected count reaches
/// `fraction` × eligible_population, or NaN if the run never got there.
[[nodiscard]] double TimeToInfectedFraction(const RunResult& result,
                                            double fraction);

/// Infected count at the last sample taken at or before `time` (staircase
/// interpolation, matching how the figure benches read their curves).
[[nodiscard]] double InfectedAt(const RunResult& result, double time);

/// Mean infected count across `runs` at each grid time (staircase).
[[nodiscard]] std::vector<double> MeanInfectedAtTimes(
    const std::vector<RunResult>& runs, const std::vector<double>& times);

}  // namespace hotspots::sim
