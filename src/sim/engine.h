// The epidemic simulation engine.
//
// A time-stepped discrete simulator of worm propagation, matching the
// platform described in Section 5.1 of the paper: every infected host emits
// probes at a fixed scan rate (the paper uses 10 probes/second), each probe
// picks a target via the worm's (possibly hotspot-ridden) targeting
// algorithm, travels through the environmental-factor pipeline
// (topology::Reachability), and, if it lands on a vulnerable host, converts
// it to the infected population.  Hosts infected during a step start
// scanning at the next step.
//
// The step size defaults to 1/scan_rate so each infected host emits exactly
// one probe per step; fractional configurations are handled with per-step
// probe credit.  The engine is deterministic given (population order,
// config.seed) — *independent of the shard count*.
//
// Sharding (EngineConfig::shards / HOTSPOTS_SHARDS): one outbreak is
// parallelized by splitting the actively scanning population into
// contiguous shards each step.  Workers generate and classify their
// shard's probes optimistically — targeting state is per scanner, loss
// draws come from per-scanner RNG streams, victim candidates resolve
// against the immutable population index — and stage every side effect
// (events, delivery tallies, victims) into per-shard buffers.  A serial
// commit phase then merges the staged buffers in shard-major order, which
// reproduces exactly the serial engine's scanner-major emission order, so
// observers, fault hooks, trace writers, and infections all see one
// deterministic stream: run output is bit-identical at 1, 2, 8, or N
// shards.
//
// Two-phase observer fold: observers that implement MergeableObserver
// (telescope, detect folds, tees containing them) have their fold run on
// the worker threads too — each shard folds its staged events into a
// forked ObserverShardState during generation, and the serial commit only
// merges the small partials in shard order (alert thresholds cross at
// merge time, so first-alert times stay bit-identical).  Serial-only
// observers (trace capture, user callbacks) keep receiving ordered spans
// on the commit path.
//
// Fault hooks: hooks that support sharded verdicts (SupportsShardedVerdicts,
// e.g. fault::DeliveryFaults) have their loss/dup/ACL draws evaluated in
// the parallel generate phase against engine-owned per-scanner fault
// streams — seeded from the scanner's activation entropy, so draw
// sequences are partition-independent and faulted fingerprints are
// shard-count-invariant.  Legacy serial hooks still get OnProbeVerdict at
// commit over the committed order (which also disables the observer
// pre-fold for that run, since staged verdicts are pre-fault).
//
// Observability: every Run() folds its accounting (steps, probes,
// infections, the delivery-verdict breakdown) into the process-wide
// obs::Registry under "engine.*" once at run end, and — only when
// HOTSPOTS_OBS_TIMERS=1 — per-stage wall-clock totals under
// "engine.stage.*.nanos" (targeting, decide, observe_flush, victim_flush,
// lifecycle, plus the phase view: generate = parallel-phase wall, fault /
// prefold = summed per-shard work, commit = serial merge wall).  The
// commit/run ratio is the serial fraction micro_hotpath reports.  Metrics
// never feed back into simulation state, so results are bit-identical
// with observability on or off.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "prng/xoshiro.h"
#include "sim/fault_hook.h"
#include "sim/observer.h"
#include "sim/population.h"
#include "sim/targeting.h"
#include "topology/nat.h"
#include "topology/reachability.h"

namespace hotspots::sim {

/// Engine parameters.  Defaults reproduce the paper's platform.
struct EngineConfig {
  /// Probes per second per infected host (paper: 10).
  double scan_rate = 10.0;
  /// Step size in seconds; 0 means 1/scan_rate.
  double dt = 0.0;
  /// Hard stop (simulated seconds).
  double end_time = 3600.0;
  /// Hard stop (total probes emitted), as a runaway guard.
  std::uint64_t max_probes = ~std::uint64_t{0};
  /// Stop once this fraction of the vulnerable population is infected.
  double stop_at_infected_fraction = 1.0;
  /// Metrics sampling interval (simulated seconds).
  double sample_interval = 1.0;
  /// Master seed for the engine RNG (scanner entropy, loss draws).
  std::uint64_t seed = 0x5EED;
  /// Worker shards for one outbreak: 0 resolves HOTSPOTS_SHARDS (default
  /// 1 = serial).  Any value yields bit-identical results; see file
  /// comment.  Shards multiply with study-level trial threads, so studies
  /// normally leave this at the serial default.
  int shards = 0;

  // -- Host-lifecycle extensions (all default off) ----------------------
  /// Per-second probability that a vulnerable host is patched (moves to
  /// the immune population without ever being infected).
  double patch_rate = 0.0;
  /// Per-second probability that an infected host is cleaned up (moves to
  /// the immune population and stops scanning).
  double disinfect_rate = 0.0;
  /// Delay between a successful infection and the first probe the new
  /// instance emits (exploit + install latency).
  double infection_latency = 0.0;
  /// Aggregate network capacity in probes/second shared by all infected
  /// hosts; 0 disables.  Models the self-induced congestion the paper
  /// notes for Slammer ("which can be self-induced by the outbreak"):
  /// once #infected × scan_rate exceeds this, every host's effective scan
  /// rate drops to capacity / #infected.
  double global_bandwidth_probes_per_sec = 0.0;
};

/// One metrics sample.
struct SamplePoint {
  double time = 0.0;
  std::uint64_t infected = 0;
  std::uint64_t probes = 0;
};

/// Result of a run.
struct RunResult {
  std::vector<SamplePoint> series;
  std::uint64_t total_probes = 0;
  /// Probe outcomes indexed by topology::Delivery.
  std::array<std::uint64_t, 6> delivery_counts{};
  double end_time = 0.0;
  /// Vulnerable + already-infected hosts at the start of the run, i.e. the
  /// paper's "vulnerable population" (seeds included).
  std::uint64_t eligible_population = 0;
  /// Hosts ever infected during (or seeded before) the run, including any
  /// later disinfected.
  std::uint64_t final_infected = 0;
  /// Hosts in the immune population at the end (patched or disinfected).
  std::uint64_t final_immune = 0;
  /// Delivered probes a fault hook degraded to a drop (0 without faults).
  std::uint64_t fault_injected_drops = 0;
  /// In-flight duplicates a fault hook requested.  Duplicates are reported
  /// to observers (and can infect), but are not part of total_probes;
  /// delivery_counts tallies observer-visible events, so with duplicates
  /// its sum exceeds total_probes by exactly this value.
  std::uint64_t fault_duplicates = 0;

  [[nodiscard]] double FinalInfectedFraction() const {
    return eligible_population == 0
               ? 0.0
               : static_cast<double>(final_infected) /
                     static_cast<double>(eligible_population);
  }
};

/// Accounting invariants the engine must uphold regardless of shard count
/// or fault configuration.  The engine asserts these itself at every shard
/// commit and at run end in debug builds; tests and harnesses call them on
/// final results in any build.
struct EngineAudit {
  /// The conservation invariant: every emitted probe gets exactly one
  /// verdict, and every fault duplicate exactly one more, so
  /// Σ delivery_counts == total_probes + fault_duplicates.  A sharded
  /// merge that dropped or double-counted a staged probe breaks this.
  [[nodiscard]] static bool ConservationHolds(const RunResult& result) {
    std::uint64_t verdicts = 0;
    for (const std::uint64_t count : result.delivery_counts) {
      verdicts += count;
    }
    return verdicts == result.total_probes + result.fault_duplicates;
  }

  /// Throws std::logic_error with the offending tallies when conservation
  /// is violated.
  static void CheckConservation(const RunResult& result);
};

class Engine {
 public:
  /// `nats` may be nullptr when the scenario has no NAT sites.  The
  /// population must already be Build()-t.
  Engine(Population& population, const Worm& worm,
         const topology::Reachability& reachability,
         const topology::NatDirectory* nats, EngineConfig config);

  /// Infects `host` at time 0 (before Run()).  No-op if already infected.
  void SeedInfection(HostId host);

  /// Infects `count` distinct random vulnerable hosts (paper: 25 seeds).
  void SeedRandomInfections(int count);

  /// Attaches a delivery-fault hook (nullptr detaches).  The hook adjusts
  /// verdicts *after* Reachability::Decide from its own private RNG stream
  /// (see sim/fault_hook.h), so runs without a hook are bit-identical to
  /// the hook-free engine.  Not owned; must outlive Run().
  void SetDeliveryFaults(DeliveryFaultHook* hook) { fault_hook_ = hook; }

  /// Runs to completion; reports every probe to `observer` (batched
  /// through ProbeObserver::OnProbeBatch in emission order).  `observer`
  /// may be — and for composed pipelines should be — a TeeObserver; the
  /// engine itself assumes nothing about how many consumers sit behind
  /// the reference.
  RunResult Run(ProbeObserver& observer);

  /// Runs with several observers attached through the standard tee path:
  /// every listed observer (nullptrs are skipped) sees each batch in list
  /// order.  `Run({&telescope, &trace_writer, &gateway})` is the idiom for
  /// capture + observation + detection on one run.
  RunResult Run(std::initializer_list<ProbeObserver*> observers);

  /// Runs with no observer.
  RunResult Run();

  [[nodiscard]] const Population& population() const { return population_; }

 private:
  /// Side effects one shard stages during the optimistic generate phase,
  /// merged serially (shard 0 first) by the commit phase.  Everything a
  /// shard writes lands here or in its own scanner_rngs_ entries — shards
  /// never touch engine or population state, which is what makes the
  /// generate phase lock- and race-free.
  struct ShardStage {
    /// Staged probe events with pre-fault verdicts, in emission order.
    std::vector<ProbeEvent> events;
    /// Victim-lookup keys (site, dst), one per *pre-fault delivered* event
    /// in event order; scratch for the in-shard resolution below.
    std::vector<std::pair<topology::SiteId, net::Ipv4>> victim_keys;
    /// Victim HostId per *pre-fault delivered* event, in event order
    /// (kInvalidHost when nothing lives at the target).  Resolved during
    /// generation so the hash lookups parallelize and prefetch.
    std::vector<HostId> victims;
    /// Verdict tallies and probe count for this shard's events.
    std::array<std::uint64_t, 6> delivery_counts{};
    std::uint64_t probes = 0;
    /// Sharded-fault tallies (post-fault verdicts are staged directly):
    /// delivered probes degraded to kIngressFiltered (ACL drift), degraded
    /// to any other drop (injected loss), and requested duplicates.  The
    /// commit folds them into RunResult and the hook (FoldShardTallies).
    std::uint64_t fault_drift = 0;
    std::uint64_t fault_losses = 0;
    std::uint64_t fault_duplicates = 0;
    /// Stage-timer accumulators (HOTSPOTS_OBS_TIMERS): each shard times
    /// its own targeting/decide/victim/fault/pre-fold work; the commit
    /// folds the per-shard values into the run totals.
    std::uint64_t targeting_ns = 0;
    std::uint64_t decide_ns = 0;
    std::uint64_t victim_ns = 0;
    std::uint64_t fault_ns = 0;
    std::uint64_t prefold_ns = 0;

    void Clear() {
      events.clear();
      victim_keys.clear();
      victims.clear();
      delivery_counts.fill(0);
      probes = 0;
      fault_drift = fault_losses = fault_duplicates = 0;
      targeting_ns = decide_ns = victim_ns = fault_ns = prefold_ns = 0;
    }
  };

  void Infect(HostId host, double time);
  void ActivateDue(double time);
  void ApplyLifecycleEvents(double time, double dt);
  [[nodiscard]] net::Ipv4 PublicFacingAddress(const Host& host) const;

  Population& population_;
  const Worm& worm_;
  const topology::Reachability& reachability_;
  const topology::NatDirectory* nats_;
  EngineConfig config_;
  prng::Xoshiro256 rng_;
  DeliveryFaultHook* fault_hook_ = nullptr;

  /// Actively scanning hosts, their per-host targeting state, their
  /// public-facing (post-NAT) source address — resolved once at activation
  /// instead of per probe — their private probe-RNG stream (loss draws),
  /// their activation entropy (kept so fault streams can be derived when a
  /// run attaches a sharded hook after activation), and — only while a
  /// sharded fault hook is attached — their private fault-draw stream.
  /// All streams are seeded from the scanner's activation entropy so probe
  /// classification and fault draws are independent of which shard runs
  /// them (parallel vectors; disinfection swap-removes from all of them).
  std::vector<HostId> infected_;
  std::vector<std::unique_ptr<HostScanner>> scanners_;
  std::vector<net::Ipv4> scanner_sources_;
  std::vector<prng::Xoshiro256> scanner_rngs_;
  std::vector<std::uint64_t> scanner_entropies_;
  std::vector<prng::Xoshiro256> scanner_fault_rngs_;
  /// Run-scoped sharded-fault wiring (set at Run start; see fault_hook.h).
  bool sharded_faults_active_ = false;
  std::uint64_t fault_stream_salt_ = 0;
  /// Per-shard staging buffers, reused across steps.
  std::vector<ShardStage> shard_stages_;
  /// Probe-event staging buffer for fault-mode commits, where staged
  /// verdicts are rewritten (and duplicates spliced in) before the
  /// observer sees them; flushed when full so virtual dispatch stays
  /// amortized.  Fault-free commits forward each shard's staged events as
  /// one zero-copy span instead.
  std::vector<ProbeEvent> event_buffer_;
  /// Infected hosts waiting out the infection latency, in activation-time
  /// order (time is monotone, so appends keep it sorted).
  struct PendingActivation {
    double activate_at;
    HostId host;
  };
  std::vector<PendingActivation> pending_;
  std::size_t pending_cursor_ = 0;

  std::uint64_t ever_infected_ = 0;
  std::uint64_t immune_ = 0;
  std::uint64_t vulnerable_ = 0;  ///< Maintained during Run().
  double patch_credit_ = 0.0;
  double disinfect_credit_ = 0.0;
};

}  // namespace hotspots::sim
