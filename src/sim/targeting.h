// Targeting interfaces: how an infected host chooses its next victim.
//
// The paper's taxonomy of algorithmic factors lives behind these two
// interfaces.  A `Worm` describes a threat species; when a host becomes
// infected the engine asks the worm for a `HostScanner` — the per-host
// targeting state (PRNG state, sweep cursor, hit-list position).  Keeping
// scanner state per host is essential: the whole point of the Blaster and
// Slammer case studies is that *individual instances* are biased by their
// local seeds and cycles.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/ipv4.h"
#include "prng/xoshiro.h"
#include "sim/host.h"

namespace hotspots::sim {

/// Per-infected-host targeting state.
class HostScanner {
 public:
  virtual ~HostScanner() = default;

  /// The next address this host will probe.  `rng` is the simulator's
  /// well-behaved RNG; faithful worm models ignore it and use their own
  /// (deliberately flawed) generators seeded at construction.
  [[nodiscard]] virtual net::Ipv4 NextTarget(prng::Xoshiro256& rng) = 0;
};

/// A threat species: a factory for per-host scanners.
class Worm {
 public:
  virtual ~Worm() = default;

  /// Human-readable name ("CodeRedII", "Slammer", ...).
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Creates the scanner for a newly infected host.  `host` provides local
  /// context (its own address — possibly private — is what local-preference
  /// code reads).  `entropy` is a per-infection random value the worm may
  /// use to seed its internal PRNG the way the real malware would
  /// (e.g. Blaster derives its seed from the tick-count model instead).
  [[nodiscard]] virtual std::unique_ptr<HostScanner> MakeScanner(
      const Host& host, std::uint64_t entropy) const = 0;

  /// True when the threat's first payload only travels after a transport
  /// handshake (TCP worms like Blaster/CodeRed).  A *passive* darknet sees
  /// such probes but can never identify the threat; the IMS sensors the
  /// paper used answered SYNs precisely to elicit these payloads.  UDP
  /// threats (Slammer) carry their payload in the first packet.
  [[nodiscard]] virtual bool requires_handshake() const { return false; }
};

}  // namespace hotspots::sim
