// Delivery-fault hook interface.
//
// The engine's probe loop is fault-agnostic: when a hook is attached
// (Engine::SetDeliveryFaults), every emitted probe's verdict is offered to
// the hook *after* topology::Reachability::Decide, and the hook may degrade
// it (injected loss, drifted ACLs) or request an in-flight duplicate.  The
// concrete injector lives in src/fault (fault::DeliveryFaults); sim only
// sees this interface, keeping the dependency edge fault → sim.
//
// Contract: the hook must be a pure function of (its own private RNG
// stream, the probe sequence) — it must never touch the engine RNG, so a
// run with no hook attached is bit-identical to the pre-fault engine, and
// (engine seed, schedule) pairs reproduce exactly.
#pragma once

#include <cstdint>

#include "net/ipv4.h"
#include "topology/reachability.h"

namespace hotspots::sim {

class DeliveryFaultHook {
 public:
  virtual ~DeliveryFaultHook() = default;

  /// What the fault layer decided for one probe.
  struct Outcome {
    topology::Delivery verdict = topology::Delivery::kDelivered;
    /// Request an identical duplicate event (only honoured for probes that
    /// are still delivered after fault adjustment).
    bool duplicate = false;
  };

  /// Called once per Run() before the first probe, with the engine seed, so
  /// injectors can derive a run-salted private stream.
  virtual void OnRunStart(std::uint64_t engine_seed) = 0;

  /// Adjusts one probe's verdict.  `verdict` is what the topology decided;
  /// the hook may only degrade delivered probes or pass verdicts through —
  /// it never resurrects a dropped probe.
  [[nodiscard]] virtual Outcome OnProbeVerdict(double time, net::Ipv4 dst,
                                               topology::Delivery verdict) = 0;
};

}  // namespace hotspots::sim
