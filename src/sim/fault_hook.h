// Delivery-fault hook interface.
//
// The engine's probe loop is fault-agnostic: when a hook is attached
// (Engine::SetDeliveryFaults), every emitted probe's verdict is offered to
// the hook *after* topology::Reachability::Decide, and the hook may degrade
// it (injected loss, drifted ACLs) or request an in-flight duplicate.  The
// concrete injector lives in src/fault (fault::DeliveryFaults); sim only
// sees this interface, keeping the dependency edge fault → sim.
//
// Contract: the hook must be a pure function of (its own private RNG
// stream, the probe sequence) — it must never touch the engine RNG, so a
// run with no hook attached is bit-identical to the pre-fault engine, and
// (engine seed, schedule) pairs reproduce exactly.
//
// Two evaluation modes:
//
//  * Serial (legacy): the engine calls OnProbeVerdict at commit time, in
//    committed emission order, so one private stream covers the run.
//  * Sharded: hooks that return true from SupportsShardedVerdicts() have
//    their draws evaluated in the parallel generate phase instead.  The
//    engine owns one fault stream *per scanner* (seeded from the scanner's
//    activation entropy xor ShardStreamSalt()), so draw sequences are a
//    function of the scanner, not of the shard partition — fingerprints
//    stay bit-identical at any shard count.  The engine calls BeginStep()
//    serially before each step (time-indexed state such as ACL drift
//    activates here), then ShardProbeVerdict() concurrently from worker
//    threads — it must be const and touch no hook state — and finally
//    FoldShardTallies() with the per-step counter deltas on the commit
//    path, so published fault counters remain exact.
#pragma once

#include <cstdint>

#include "net/ipv4.h"
#include "prng/xoshiro.h"
#include "topology/reachability.h"

namespace hotspots::sim {

class DeliveryFaultHook {
 public:
  virtual ~DeliveryFaultHook() = default;

  /// What the fault layer decided for one probe.
  struct Outcome {
    topology::Delivery verdict = topology::Delivery::kDelivered;
    /// Request an identical duplicate event (only honoured for probes that
    /// are still delivered after fault adjustment).
    bool duplicate = false;
  };

  /// Called once per Run() before the first probe, with the engine seed, so
  /// injectors can derive a run-salted private stream.
  virtual void OnRunStart(std::uint64_t engine_seed) = 0;

  /// Adjusts one probe's verdict.  `verdict` is what the topology decided;
  /// the hook may only degrade delivered probes or pass verdicts through —
  /// it never resurrects a dropped probe.
  [[nodiscard]] virtual Outcome OnProbeVerdict(double time, net::Ipv4 dst,
                                               topology::Delivery verdict) = 0;

  // --- Sharded evaluation (opt-in) -------------------------------------

  /// True when the hook supports ShardProbeVerdict(); the engine then
  /// evaluates fault draws in the parallel phase against engine-owned
  /// per-scanner streams and never calls OnProbeVerdict().
  [[nodiscard]] virtual bool SupportsShardedVerdicts() const { return false; }

  /// Run-scoped salt mixed into every per-scanner fault stream seed.
  /// Valid after OnRunStart(); must depend on the hook's private seed (and
  /// the engine seed) so distinct schedules draw distinct sequences.
  [[nodiscard]] virtual std::uint64_t ShardStreamSalt() const { return 0; }

  /// Serial, once per engine step before any worker runs: advance
  /// time-indexed hook state (e.g. activate ACL-drift events due by
  /// `time`) so ShardProbeVerdict() can stay read-only.
  virtual void BeginStep(double /*time*/) {}

  /// Thread-safe verdict adjustment for one *delivered* probe (the engine
  /// skips the call for probes the topology already dropped — fault layers
  /// only degrade, so non-delivered verdicts pass through draw-free, which
  /// matches the serial path's draw consumption exactly).  Must not mutate
  /// hook state; all randomness comes from `stream`.
  [[nodiscard]] virtual Outcome ShardProbeVerdict(
      double /*time*/, net::Ipv4 /*dst*/, topology::Delivery verdict,
      prng::Xoshiro256& /*stream*/) const {
    return Outcome{verdict, false};
  }

  /// Serial commit-path fold of the counters the workers tallied, so
  /// hook-published metrics stay exact without atomics on the hot path.
  virtual void FoldShardTallies(std::uint64_t /*drift_filtered*/,
                                std::uint64_t /*injected_losses*/,
                                std::uint64_t /*injected_duplicates*/) {}
};

}  // namespace hotspots::sim
