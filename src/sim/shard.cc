#include "sim/shard.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "obs/trace_span.h"

namespace hotspots::sim {

namespace {

/// Interned span names for worker lifecycle waits.
struct PoolSpanIds {
  std::uint32_t park = obs::InternSpanName("shard.park");
  std::uint32_t join = obs::InternSpanName("shard.join");
};

const PoolSpanIds& SpanIds() {
  static const PoolSpanIds ids;
  return ids;
}

}  // namespace

int ResolveEngineShards(int requested) {
  int shards = requested;
  if (shards <= 0) {
    shards = 1;
    if (const char* env = std::getenv("HOTSPOTS_SHARDS")) {
      char* end = nullptr;
      const long value = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && value > 0) {
        shards = static_cast<int>(std::min(value, long{1 << 10}));
      }
    }
  }
  return std::clamp(shards, 1, 1 << 10);
}

ShardPool::ShardPool(int shards)
    : shards_(std::max(1, shards)),
      errors_(static_cast<std::size_t>(shards_)) {
  workers_.reserve(static_cast<std::size_t>(shards_ - 1));
  for (int shard = 1; shard < shards_; ++shard) {
    workers_.emplace_back([this, shard] { WorkerLoop(shard); });
  }
}

ShardPool::~ShardPool() {
  {
    const std::scoped_lock lock{mutex_};
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ShardPool::WorkerLoop(int shard) {
  // Label this worker's timeline lane; the engine's generate/prefold spans
  // land on it.  Tracing off: the branch is the only cost.
  const bool tracing = obs::TracingEnabled();
  if (tracing) {
    obs::SpanCollector::Global().SetThreadLane("shard-" +
                                               std::to_string(shard));
  }
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      // Park span: time this worker spends waiting for the next fan-out.
      // Declared before the lock so the record is pushed after unlock.
      obs::TraceSpan park_span{SpanIds().park, tracing};
      std::unique_lock lock{mutex_};
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    try {
      (*job)(shard);
    } catch (...) {
      // Slot write is safe lock-free: one writer per shard per generation,
      // and the caller only reads after the done_cv_ join below.
      errors_[static_cast<std::size_t>(shard)] = std::current_exception();
    }
    {
      const std::scoped_lock lock{mutex_};
      if (--remaining_ == 0) done_cv_.notify_one();
    }
  }
}

void ShardPool::Run(const std::function<void(int)>& job) {
  if (shards_ == 1) {
    job(0);  // Serial: no atomics, no wakeups, exceptions propagate as-is.
    return;
  }
  {
    const std::scoped_lock lock{mutex_};
    job_ = &job;
    remaining_ = shards_ - 1;
    ++generation_;
  }
  work_cv_.notify_all();
  try {
    job(0);
  } catch (...) {
    errors_[0] = std::current_exception();
  }
  {
    // Join span: serial-thread time spent waiting for the slowest worker
    // (the fork/join imbalance perf_report quantifies).
    obs::TraceSpan join_span{SpanIds().join, obs::TracingEnabled()};
    std::unique_lock lock{mutex_};
    done_cv_.wait(lock, [&] { return remaining_ == 0; });
    job_ = nullptr;
  }
  for (std::exception_ptr& error : errors_) {
    if (error) {
      const std::exception_ptr first = error;
      for (std::exception_ptr& slot : errors_) slot = nullptr;
      std::rethrow_exception(first);
    }
  }
}

}  // namespace hotspots::sim
